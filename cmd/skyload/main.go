// Command skyload drives a running skylined with a seeded workload
// and reports what it measured — the load harness half of the
// serving tier (internal/load is the shared engine; skybench's E19
// runs the same code in-process for the CI-gated numbers).
//
// Usage:
//
//	skyload -base http://127.0.0.1:8787 -ns demo -ops 20000 \
//	        -read-frac 0.9 -conc 8 [-qps 5000] [-zipf 1.2] \
//	        [-seed 42] [-csv skyload.csv] [-metric-id E19]
//
// Closed loop by default (-conc workers issuing back-to-back
// requests); -qps switches to an open loop that schedules arrivals at
// the target rate and measures latency from the SCHEDULED start, so
// queueing delay lands in the tail instead of being coordinated away.
//
// Output: a human summary, optional deterministic <id>-METRIC lines
// (simulated-I/O percentiles — meaningful only when the server runs
// with measure_io and the run is -conc 1 with no -qps) plus <id>-WALL
// lines (wall-clock qps and latency percentiles, never gated), and an
// optional CSV artifact.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/load"
)

func main() {
	var (
		flagBase   = flag.String("base", "http://127.0.0.1:8787", "server base URL")
		flagNS     = flag.String("ns", "demo", "namespace")
		flagOps    = flag.Int("ops", 10000, "total operations")
		flagConc   = flag.Int("conc", 1, "closed-loop concurrency")
		flagQPS    = flag.Float64("qps", 0, "open-loop target QPS (0: closed loop)")
		flagRead   = flag.Float64("read-frac", 0.9, "fraction of ops that are queries")
		flagZipf   = flag.Float64("zipf", 0, "query-anchor Zipf skew s (>1; 0: uniform)")
		flagSpan   = flag.Int64("span", 1<<20, "coordinate universe [0,span)")
		flagSeed   = flag.Int64("seed", 1, "workload seed")
		flagCSV    = flag.String("csv", "", "write a CSV artifact here")
		flagMetric = flag.String("metric-id", "", "emit <id>-METRIC/<id>-WALL lines (e.g. E19)")
	)
	flag.Parse()
	res, err := load.Run(load.Config{
		BaseURL:   *flagBase,
		Namespace: *flagNS,
		Ops:       *flagOps,
		Conc:      *flagConc,
		TargetQPS: *flagQPS,
		ReadFrac:  *flagRead,
		ZipfS:     *flagZipf,
		Span:      *flagSpan,
		Seed:      *flagSeed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyload: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("skyload: %d ops (%d reads, %d inserts, %d deletes) in %.2fs = %.0f qps\n",
		res.Ops, res.Reads, res.Inserts, res.Deletes, res.Elapsed.Seconds(), res.QPS())
	fmt.Printf("skyload: wall latency p50=%v p99=%v p999=%v\n",
		res.WallPercentile(50), res.WallPercentile(99), res.WallPercentile(99.9))
	if len(res.IOs) > 0 {
		fmt.Printf("skyload: simulated I/O per query p50=%d p99=%d p999=%d\n",
			res.IOPercentile(50), res.IOPercentile(99), res.IOPercentile(99.9))
	}
	fmt.Printf("skyload: errors=%d backpressure_429=%d\n", res.Errors, res.Backpressure)

	if id := *flagMetric; id != "" {
		// METRIC values carry a decimal point (gated); run facts are
		// integer labels. Only deterministic quantities may appear
		// here — wall-clock numbers go to the <id>-WALL lines below,
		// which cmd/benchguard never gates.
		fmt.Printf("%s-METRIC leg=mixed ops=%d conc=%d iop50=%.1f iop99=%.1f iop999=%.1f errors=%.1f\n",
			id, res.Ops, *flagConc,
			float64(res.IOPercentile(50)), float64(res.IOPercentile(99)), float64(res.IOPercentile(99.9)),
			float64(res.Errors))
		fmt.Printf("%s-WALL ops=%d conc=%d qps=%.0f p50us=%.0f p99us=%.0f p999us=%.0f\n",
			id, res.Ops, *flagConc, res.QPS(),
			float64(res.WallPercentile(50).Microseconds()),
			float64(res.WallPercentile(99).Microseconds()),
			float64(res.WallPercentile(99.9).Microseconds()))
	}
	if *flagCSV != "" {
		if err := res.WriteCSV(*flagCSV); err != nil {
			fmt.Fprintf(os.Stderr, "skyload: csv: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("skyload: wrote %s\n", *flagCSV)
	}
	if res.Errors > 0 {
		os.Exit(2)
	}
}
