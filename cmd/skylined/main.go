// Command skylined serves skyline indexes over HTTP/JSON — the
// network front end of the repository (docs/API.md documents the wire
// protocol; internal/serve implements it).
//
// Usage:
//
//	skylined -config skylined.json [-listen :8787]
//
// The config file is an internal/serve.Config: a map of namespaces —
// each one core.DB with its own options (shards, mirrors, cache,
// async queue, durable directory) — plus the serving knobs
// (batch_window_us, snapshot_ttl_ms, measure_io). Minimal example:
//
//	{
//	  "listen": ":8787",
//	  "namespaces": {
//	    "demo": {"shards": 4, "workers": 4, "cache_entries": 256,
//	             "async_writes": true, "max_buffered": 8, "shed_writes": true}
//	  }
//	}
//
// Shutdown is graceful: on SIGINT/SIGTERM the listener stops accepting
// and in-flight requests finish (http.Server.Shutdown), then every
// namespace is closed — async queues drain, durable ones checkpoint —
// so a client that got a 200 never loses that write to a graceful
// restart. Admission control is the engine's, surfaced: 429 +
// Retry-After when the async queue sheds, 503 read-only when a fatal
// storage error degrades a namespace.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		flagConfig = flag.String("config", "", "path to the JSON config (required)")
		flagListen = flag.String("listen", "", "listen address (overrides the config's)")
	)
	flag.Parse()
	if err := run(*flagConfig, *flagListen); err != nil {
		fmt.Fprintf(os.Stderr, "skylined: %v\n", err)
		os.Exit(1)
	}
}

func run(configPath, listen string) error {
	if configPath == "" {
		return fmt.Errorf("-config is required")
	}
	blob, err := os.ReadFile(configPath)
	if err != nil {
		return err
	}
	var cfg serve.Config
	if err := json.Unmarshal(blob, &cfg); err != nil {
		return fmt.Errorf("parsing %s: %w", configPath, err)
	}
	if listen != "" {
		cfg.Listen = listen
	}
	if cfg.Listen == "" {
		cfg.Listen = ":8787"
	}

	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	hs := &http.Server{Addr: cfg.Listen, Handler: srv.Handler()}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("skylined: serving %d namespace(s) on %s\n", len(cfg.Namespaces), cfg.Listen)

	select {
	case sig := <-sigc:
		fmt.Printf("skylined: %v: draining\n", sig)
	case err := <-errc:
		srv.Close() //errlint:ok listener already failed; best-effort cleanup before reporting it
		return err
	}

	// Shutdown ordering matters: stop ADMITTING first (Shutdown waits
	// out in-flight requests), close the namespaces SECOND (drain +
	// checkpoint) — the other order would drop acknowledged writes
	// still sitting in a handler.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "skylined: shutdown: %v\n", err)
	}
	if err := srv.Close(); err != nil {
		return fmt.Errorf("closing namespaces: %w", err)
	}
	fmt.Println("skylined: drained and checkpointed")
	return nil
}
