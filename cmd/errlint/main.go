// Command errlint is the repository's dropped-error linter: it flags
// call statements and all-blank assignments that discard a returned
// error. Silent error drops are exactly how a storage fault turns into
// silent data loss, so the rule here is the one the durable stack
// documents — every error is handled, latched, or EXPLICITLY waived
// with an //errlint:ok comment naming the reason.
//
// Usage:
//
//	go run ./cmd/errlint [packages...]   (default ./...)
//
// A finding is either
//
//	f()          // expression statement whose result includes an error
//	_, _ = g()   // assignment discarding every result, one an error
//
// in a non-test file. Waivers: a line containing //errlint:ok (with a
// reason) or //nolint:errcheck is skipped. A small allowlist covers
// APIs whose error results are documented never to fail or to be
// write-to-memory only (fmt print family, strings.Builder,
// bytes.Buffer).
//
// The linter is self-contained: types come from export data produced
// by `go list -export`, so it needs nothing outside the standard
// library and the go toolchain.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listedPackage is the slice of `go list -json` output errlint reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// allowlist are call prefixes whose dropped errors are fine by
// convention: the fmt print family (stdout/stderr diagnostics),
// strings.Builder and bytes.Buffer (documented to never return a
// non-nil error).
var allowlist = []string{
	"fmt.Print",
	"fmt.Fprint",
	"fmt.Sprint", // Sprint has no error, but a future refactor keeps this harmless
	"(*strings.Builder).",
	"(*bytes.Buffer).",
}

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "errlint: %v\n", err)
		os.Exit(2)
	}
	exports := make(map[string]string)
	var targets []listedPackage
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	findings := 0
	for _, p := range targets {
		n, err := lintPackage(p, exports)
		if err != nil {
			fmt.Fprintf(os.Stderr, "errlint: %s: %v\n", p.ImportPath, err)
			os.Exit(2)
		}
		findings += n
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "errlint: %d dropped error(s)\n", findings)
		os.Exit(1)
	}
}

// goList runs `go list -export -deps -json` over the patterns and
// decodes the package stream. -export compiles export data for every
// package, which is what the type-checker imports from.
func goList(patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decode go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// lintPackage type-checks one package from source (imports resolved
// from export data) and reports dropped errors in its non-test files.
func lintPackage(p listedPackage, exports map[string]string) (int, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	srcs := make(map[string][]string) // filename -> lines, for waiver comments
	for _, name := range p.GoFiles {
		path := filepath.Join(p.Dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return 0, err
		}
		f, err := parser.ParseFile(fset, path, data, parser.ParseComments)
		if err != nil {
			return 0, err
		}
		files = append(files, f)
		srcs[path] = strings.Split(string(data), "\n")
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	})
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: imp}
	if _, err := conf.Check(p.ImportPath, fset, files, info); err != nil {
		return 0, fmt.Errorf("typecheck: %w", err)
	}

	findings := 0
	report := func(n ast.Node, call *ast.CallExpr, what string) {
		pos := fset.Position(n.Pos())
		if waived(srcs[pos.Filename], pos.Line) || allowed(info, call) {
			return
		}
		fmt.Printf("%s:%d: %s\n", pos.Filename, pos.Line, what)
		findings++
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok && returnsError(info, call) {
					report(s, call, "result includes an error; handle it or waive with //errlint:ok <reason>")
				}
			case *ast.AssignStmt:
				// Only all-blank assignments: `n, err := f()` with err
				// used later is the type-checker's business, and a
				// deliberately named-but-unused err already fails to
				// compile.
				if len(s.Rhs) != 1 || !allBlank(s.Lhs) {
					return true
				}
				if call, ok := s.Rhs[0].(*ast.CallExpr); ok && returnsError(info, call) {
					report(s, call, "error discarded into _; handle it or waive with //errlint:ok <reason>")
				}
			}
			return true
		})
	}
	return findings, nil
}

// returnsError reports whether the call's result type includes error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isError(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isError(tv.Type)
}

var errorType = types.Universe.Lookup("error").Type()

func isError(t types.Type) bool { return types.Identical(t, errorType) }

// allBlank reports whether every assignment target is the blank
// identifier.
func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// allowed reports whether the callee is on the allowlist.
func allowed(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := info.Uses[sel.Sel]
	if !ok {
		return false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	name := fn.FullName()
	for _, prefix := range allowlist {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// waived reports whether the 1-based line carries a waiver comment.
func waived(lines []string, line int) bool {
	if line < 1 || line > len(lines) {
		return false
	}
	text := lines[line-1]
	return strings.Contains(text, "errlint:ok") || strings.Contains(text, "nolint:errcheck")
}
