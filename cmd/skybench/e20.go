// E20: online shard rebalancing (Options.Rebalance) under a skewed
// insert stream. The stream's x-density decays quartically — over half
// its mass lands in the leftmost ~12% of the key space — while the
// fixed partition's cuts come from the uniform base seed, so a static
// 8-shard engine funnels most inserts into its leftmost shard. The
// rebalancing engine notices the skew (per-shard load counters,
// checked every RebalanceEvery ops), splits hot x-ranges and merges
// cold neighbors, and the same stream spreads across the partition.
//
// The stream is STATIONARY: the skewed point pool is consumed in a
// seeded random order, so the spatial insert distribution does not
// drift over time. That matters — a load-adaptive policy tracks recent
// traffic, so only a stationary stream makes "final cuts vs the whole
// stream" a fair report card.
//
// Two legs run the identical stream:
//
//   - fixed: Shards=8, no rebalancing — the baseline whose load ratio
//     shows what the skew does to a static partition;
//   - rebal: the same index with Rebalance on (MaxShardSkew=2.0).
//
// The gated numbers are per-insert simulated-I/O percentiles (the
// rebal leg's include the transitions' rebuild cost — that is the
// price being measured) and the offline load ratio: the stream's
// insert x's binned against each engine's FINAL cuts, max/mean over
// shards. The run panics unless the rebal ratio is <= 2.0 and the
// fixed ratio is at least 1.5x worse — the experiment must demonstrate
// the mechanism, not just run it. Everything is seeded and sequential
// on simulated disks, so every metric is deterministic and gates
// strictly (cmd/benchguard).
package main

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
)

// e20Percentile reads the p-th percentile from a sorted cost slice.
func e20Percentile(sorted []uint64, p float64) uint64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p / 100 * float64(len(sorted)-1))
	return sorted[i]
}

// e20LoadRatio bins xs against cuts and returns max/mean over the
// len(cuts)+1 shards — the offline shard-load ratio of the stream
// under that partition.
func e20LoadRatio(xs []geom.Coord, cuts []geom.Coord) float64 {
	counts := make([]int, len(cuts)+1)
	for _, x := range xs {
		counts[sort.Search(len(cuts), func(i int) bool { return x <= cuts[i] })]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	mean := float64(len(xs)) / float64(len(counts))
	return float64(max) / mean
}

// e20Pool builds the skewed insert pool: N points whose i-th x is
// 2*(i + (span-N)*(i/N)^4) + 1 — strictly increasing (distinct), dense
// near zero and quartically sparser to the right, so the stream's mass
// concentrates at low x. Coordinates are odd; the base seed's are made
// even, so the two sets can never collide.
func e20Pool(N int, span int64, seed int64) []geom.Point {
	stretch := float64(span - int64(N))
	ys := make([]geom.Coord, N)
	stride := span / int64(N)
	if stride < 1 {
		stride = 1
	}
	for i := range ys {
		ys[i] = geom.Coord(2*int64(i)*stride + 1)
	}
	rand.New(rand.NewSource(seed)).Shuffle(N, func(i, j int) { ys[i], ys[j] = ys[j], ys[i] })
	pool := make([]geom.Point, N)
	for i := range pool {
		frac := float64(i) / float64(N)
		x := int64(i) + int64(stretch*frac*frac*frac*frac)
		pool[i] = geom.Point{X: geom.Coord(2*x + 1), Y: ys[i]}
	}
	return pool
}

func e20() {
	fmt.Println("E20 online shard rebalancing (Options.Rebalance): skewed insert stream")
	fmt.Println("    The stream's x-density decays quartically while the fixed cuts come from a")
	fmt.Println("    uniform base, so a static 8-shard partition funnels most inserts into its")
	fmt.Println("    leftmost shard; the rebalancing engine splits hot x-ranges and merges cold")
	fmt.Println("    neighbors until the same stream spreads out. loadratio bins the stream")
	fmt.Println("    against each engine's final cuts (max/mean over shards); the I/O percentiles")
	fmt.Println("    include the transitions' rebuild cost. All numbers are seeded, sequential")
	fmt.Println("    and simulated, so they gate strictly (cmd/benchguard).")

	n := sizes([]int{1 << 12}, []int{1 << 13})[0]
	streamLen := sizes([]int{12000}, []int{24000})[0]
	span := int64(n) * 32

	// Base: uniform over the key space, coords doubled to even so the
	// odd-coordinate pool can never collide with it.
	base := geom.GenUniform(n, span, 97)
	for i := range base {
		base[i].X *= 2
		base[i].Y *= 2
	}
	geom.SortByX(base)

	pool := e20Pool(streamLen, span, 99)
	xs := make([]geom.Coord, len(pool))
	for i, p := range pool {
		xs[i] = p.X
	}
	// Stationary stream: the pool in a seeded random order.
	order := rand.New(rand.NewSource(101)).Perm(len(pool))

	open := func(rebalance bool) *core.DB {
		o := core.Options{Machine: cfg, Dynamic: true, Shards: 8, Workers: 4}
		if rebalance {
			o.Rebalance = true
			o.MaxShardSkew = 2.0
		}
		db, err := core.Open(o, base)
		if err != nil {
			panic(err)
		}
		return db
	}
	fixed, rebal := open(false), open(true)

	fmt.Printf("    %d quartic-skew inserts over an n=%d uniform seed, 8 shards, skew trigger 2.0\n",
		len(pool), n)
	fmt.Printf("%8s %8s %8s %8s %10s %8s %8s %8s\n",
		"leg", "iop50", "iop99", "worst", "loadratio", "shards", "splits", "merges")

	ratios := map[string]float64{}
	for _, leg := range []struct {
		name string
		db   *core.DB
	}{{"fixed", fixed}, {"rebal", rebal}} {
		db := leg.db
		db.ResetStats()
		costs := make([]uint64, 0, len(order))
		before := db.Stats().IOs()
		for _, idx := range order {
			if err := db.Insert(pool[idx]); err != nil {
				panic(fmt.Sprintf("E20 %s insert: %v", leg.name, err))
			}
			after := db.Stats().IOs()
			costs = append(costs, after-before)
			before = after
		}
		sort.Slice(costs, func(i, j int) bool { return costs[i] < costs[j] })
		ratio := e20LoadRatio(xs, db.Sharded().Cuts())
		ratios[leg.name] = ratio
		st := db.RebalanceStats()
		shards := db.Sharded().NumShards()
		fmt.Printf("%8s %8d %8d %8d %10.2f %8d %8d %8d\n",
			leg.name, e20Percentile(costs, 50), e20Percentile(costs, 99),
			costs[len(costs)-1], ratio, shards, st.Splits, st.Merges)
		// splits/merges/shards are integer labels; the percentiles and
		// the ratio carry decimals and gate (all bigger-is-worse).
		fmt.Printf("E20-METRIC leg=%s n=%d shards=%d splits=%d merges=%d iop50=%.1f iop99=%.1f loadratio=%.2f\n",
			leg.name, n, shards, st.Splits, st.Merges,
			float64(e20Percentile(costs, 50)), float64(e20Percentile(costs, 99)), ratio)
	}

	// The experiment's point, enforced: rebalancing must tame the skew
	// and the fixed partition must demonstrably suffer it.
	if r := ratios["rebal"]; r > 2.0 {
		panic(fmt.Sprintf("E20: rebalanced load ratio %.2f > 2.0 — the policy failed to tame the skew", r))
	}
	if f, r := ratios["fixed"], ratios["rebal"]; f < 1.5*r {
		panic(fmt.Sprintf("E20: fixed ratio %.2f not measurably worse than rebalanced %.2f", f, r))
	}
	if rebal.RebalanceStats().Splits == 0 {
		panic("E20: the rebal leg completed no splits — the stream never tripped the policy")
	}
	if s := rebal.RebalanceStats().Skew; math.IsNaN(s) || s < 0 {
		panic(fmt.Sprintf("E20: malformed live skew %v", s))
	}

	// Answers must not depend on where the cuts sit: cross-check a
	// seeded query mix byte for byte between the two legs (the
	// differential harness enforces the same under forced transitions).
	qrng := rand.New(rand.NewSource(103))
	for i := 0; i < 64; i++ {
		q := e14Rect(qrng, i%9, n, 2*span)
		e14Check("E20", q, rebal.RangeSkyline(q), fixed.RangeSkyline(q))
	}

	for _, db := range []*core.DB{fixed, rebal} {
		if err := db.Close(); err != nil {
			panic(err)
		}
	}
}
