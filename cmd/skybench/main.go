// Command skybench regenerates the paper's evaluation artifacts: one
// experiment per row of Table 1 plus the Theorem 3, SABE and baseline
// claims, and the engine-level scaling studies (experiments E1–E12 of
// EXPERIMENTS.md). Each experiment prints a table of measured I/O costs
// whose growth shape is the reproduced result; absolute constants depend
// on the simulator, the shapes do not.
//
// Usage:
//
//	skybench                       # run everything
//	skybench -e E1,E4              # run selected experiments
//	skybench -quick                # smaller sweeps
//	skybench -json BENCH_run.json  # also record a machine-readable artifact
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cpqa"
	"repro/internal/dyntop"
	"repro/internal/emio"
	"repro/internal/engine"
	"repro/internal/extsort"
	"repro/internal/foursided"
	"repro/internal/geom"
	"repro/internal/lowerbound"
	"repro/internal/ppb"
	"repro/internal/rankspace"
	"repro/internal/shard"
	"repro/internal/skyline"
	"repro/internal/topopen"
	"repro/internal/vfs"
)

var (
	flagExp   = flag.String("e", "", "comma-separated experiment ids (default: all)")
	flagQuick = flag.Bool("quick", false, "smaller parameter sweeps")
	flagJSON  = flag.String("json", "", "write a JSON artifact of every experiment's output and timing (e.g. BENCH_smoke.json)")
)

var cfg = emio.Config{B: 64, M: 64 * 64}

// result is one experiment's record in the -json artifact.
type result struct {
	ID      string  `json:"id"`
	Quick   bool    `json:"quick"`
	Seconds float64 `json:"seconds"`
	Output  string  `json:"output"`
}

// capture runs fn with os.Stdout teed into a buffer, returning what it
// printed. Output streams to the real stdout live (io.MultiWriter), so
// long experiments stay watchable in -json mode; stdout is restored
// even if fn panics.
func capture(fn func()) string {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		fn() // no capture, but still run
		return ""
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		var b strings.Builder
		io.Copy(io.MultiWriter(&b, old), r) //errlint:ok best-effort tee; a broken pipe just ends capture
		r.Close()                           //errlint:ok read side of our own pipe
		done <- b.String()
	}()
	defer func() {
		w.Close() //errlint:ok second Close after the one below is a no-op on panic-free paths
		os.Stdout = old
	}()
	fn()
	w.Close() //errlint:ok in-memory pipe; Close only signals EOF to the tee
	os.Stdout = old
	return <-done
}

func main() {
	flag.Parse()
	want := map[string]bool{}
	for _, e := range strings.Split(*flagExp, ",") {
		if e != "" {
			want[strings.ToUpper(strings.TrimSpace(e))] = true
		}
	}
	results := []result{} // non-nil so -json writes [] when nothing runs
	run := func(id string, fn func()) {
		if len(want) > 0 && !want[id] {
			return
		}
		start := time.Now()
		if *flagJSON != "" {
			out := capture(fn)
			results = append(results, result{
				ID:      id,
				Quick:   *flagQuick,
				Seconds: time.Since(start).Seconds(),
				Output:  out,
			})
		} else {
			fn()
		}
		fmt.Println()
	}
	run("E1", e1)
	run("E2", e2)
	run("E3", e3)
	run("E4", e4)
	run("E5", e5)
	run("E6", e6)
	run("E7", e7)
	run("E8", e8)
	run("E9", e9)
	run("E10", e10)
	run("E11", e11)
	run("E12", e12)
	run("E13", e13)
	run("E14", e14)
	run("E15", e15)
	run("E16", e16)
	run("E17", e17)
	run("E18", e18)
	run("E19", e19)
	run("E20", e20)
	if *flagJSON != "" {
		blob, err := json.MarshalIndent(results, "", "  ")
		if err == nil {
			err = os.WriteFile(*flagJSON, append(blob, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "skybench: writing %s: %v\n", *flagJSON, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d experiments)\n", *flagJSON, len(results))
	}
}

func sizes(quickSizes, fullSizes []int) []int {
	if *flagQuick {
		return quickSizes
	}
	return fullSizes
}

// avgWorst runs queries and returns (mean I/Os, worst I/Os, mean k).
func measure(d *emio.Disk, rounds int, fn func() int) (mean, worst, meanK float64) {
	var tot, wk, kk uint64
	for i := 0; i < rounds; i++ {
		st := d.Measure(func() { kk += uint64(fn()) })
		tot += st.IOs()
		if st.IOs() > wk {
			wk = st.IOs()
		}
	}
	return float64(tot) / float64(rounds), float64(wk), float64(kk) / float64(rounds)
}

func e1() {
	fmt.Println("E1  static top-open (Theorem 1): query ~ log_B n + k/B")
	fmt.Printf("%10s %12s %12s %10s\n", "n", "mean I/Os", "worst I/Os", "mean k")
	for _, n := range sizes([]int{1 << 12, 1 << 14}, []int{1 << 12, 1 << 14, 1 << 16, 1 << 18}) {
		d := emio.NewDisk(cfg)
		pts := geom.GenUniform(n, int64(n)*16, int64(n))
		geom.SortByX(pts)
		ix := topopen.Build(d, extsort.FromSlice(d, 2, pts))
		rng := rand.New(rand.NewSource(1))
		mean, worst, k := measure(d, 60, func() int {
			x1 := geom.Coord(rng.Int63n(int64(n) * 16))
			return len(ix.Query(x1, x1+int64(n), geom.Coord(rng.Int63n(int64(n)*16))))
		})
		fmt.Printf("%10d %12.1f %12.0f %10.1f\n", n, mean, worst, k)
	}
}

func e2() {
	fmt.Println("E2  grid top-open (Corollary 1): query ~ log log_B U + k/B")
	fmt.Printf("%10s %12s %12s\n", "log2 U", "mean I/Os", "worst I/Os")
	n := 1 << 12
	for _, lu := range sizes([]int{20, 40}, []int{16, 24, 32, 40, 56}) {
		u := int64(1) << lu
		d := emio.NewDisk(cfg)
		pts := geom.GenUniform(n, u, 3)
		g := rankspace.BuildGrid(d, u, pts)
		rng := rand.New(rand.NewSource(2))
		mean, worst, _ := measure(d, 40, func() int {
			x1 := geom.Coord(rng.Int63n(u))
			return len(g.Query(x1, x1+u/16, geom.Coord(rng.Int63n(u))))
		})
		fmt.Printf("%10d %12.1f %12.0f\n", lu, mean, worst)
	}
}

func e3() {
	fmt.Println("E3  rank-space top-open (Theorem 2): query ~ 1 + k/B (flat in n)")
	fmt.Printf("%10s %12s %12s %10s\n", "n", "mean I/Os", "worst I/Os", "mean k")
	for _, n := range sizes([]int{1 << 11, 1 << 13}, []int{1 << 11, 1 << 13, 1 << 15}) {
		d := emio.NewDisk(cfg)
		pts := geom.GenPermutation(n, int64(n))
		ix := rankspace.Build(d, int64(n), pts)
		rng := rand.New(rand.NewSource(4))
		mean, worst, k := measure(d, 40, func() int {
			x1 := geom.Coord(rng.Int63n(int64(n)))
			return len(ix.Query(x1, x1+64, geom.Coord(rng.Int63n(int64(n)))))
		})
		fmt.Printf("%10d %12.1f %12.0f %10.1f\n", n, mean, worst, k)
	}
}

func e4() {
	fmt.Println("E4  anti-dominance on the Lemma 8 workload (Theorem 5):")
	fmt.Println("    cost grows polynomially in n at linear space ((2,ω)-favorability verified)")
	fmt.Printf("%10s %8s %12s %14s\n", "n", "queries", "mean I/Os", "(n/B)^0.5 ref")
	for _, lam := range sizes([]int{2, 3}, []int{2, 3, 4}) {
		omega := 16
		pts := lowerbound.Input(omega, lam)
		qs := lowerbound.Queries(omega, lam)
		if ok, worst := lowerbound.Verify(omega, pts, qs); !ok {
			fmt.Printf("    favorability FAILED (overlap %d)\n", worst)
			continue
		}
		d := emio.NewDisk(cfg)
		ix := foursided.Build(d, 0.5, pts)
		i := 0
		mean, _, _ := measure(d, min(len(qs), 60), func() int {
			r := qs[i%len(qs)]
			i++
			return len(ix.Query(r))
		})
		nb := float64(len(pts)) / float64(cfg.B)
		fmt.Printf("%10d %8d %12.1f %14.1f\n", len(pts), len(qs), mean, math.Sqrt(nb))
	}
}

func e5() {
	fmt.Println("E5  static 4-sided (Theorem 6): query ~ (n/B)^eps + k/B")
	fmt.Printf("%10s %12s %12s %10s\n", "n", "mean I/Os", "worst I/Os", "mean k")
	for _, n := range sizes([]int{1 << 12, 1 << 14}, []int{1 << 12, 1 << 14, 1 << 16}) {
		d := emio.NewDisk(cfg)
		pts := geom.GenUniform(n, int64(n)*16, 7)
		ix := foursided.Build(d, 0.5, pts)
		rng := rand.New(rand.NewSource(8))
		mean, worst, k := measure(d, 30, func() int {
			x1 := geom.Coord(rng.Int63n(int64(n) * 16))
			y1 := geom.Coord(rng.Int63n(int64(n) * 16))
			return len(ix.Query(geom.Rect{X1: x1, X2: x1 + int64(n)*2, Y1: y1, Y2: y1 + int64(n)*2}))
		})
		fmt.Printf("%10d %12.1f %12.0f %10.1f\n", n, mean, worst, k)
	}
}

func e6() {
	fmt.Println("E6  dynamic top-open (Theorem 4): eps trades query vs update")
	fmt.Printf("%6s %14s %14s\n", "eps", "query I/Os", "update I/Os")
	n := 1 << 14
	for _, eps := range []float64{0, 0.25, 0.5, 0.75, 1} {
		d := emio.NewDisk(cfg)
		pts := geom.GenUniform(n, int64(n)*16, 9)
		geom.SortByX(pts)
		tr := dyntop.BuildSABE(d, eps, pts)
		rng := rand.New(rand.NewSource(10))
		qMean, _, _ := measure(d, 30, func() int {
			x1 := geom.Coord(rng.Int63n(int64(n) * 16))
			return len(tr.Query(x1, x1+int64(n), geom.Coord(rng.Int63n(int64(n)*16))))
		})
		uMean, _, _ := measure(d, 30, func() int {
			p := geom.Point{X: int64(n)*32 + rng.Int63n(1<<30), Y: int64(n)*32 + rng.Int63n(1<<30)}
			tr.Insert(p)
			tr.Delete(p)
			return 0
		})
		fmt.Printf("%6.2f %14.1f %14.1f\n", eps, qMean, uMean/2)
	}
}

func e7() {
	fmt.Println("E7  dynamic 4-sided (Theorem 6): updates ~ log(n/B) amortized")
	fmt.Printf("%10s %16s\n", "n", "amortized I/Os")
	for _, n := range sizes([]int{1 << 12}, []int{1 << 12, 1 << 14}) {
		d := emio.NewDisk(cfg)
		pts := geom.GenUniform(n, int64(n)*16, 13)
		ix := foursided.Build(d, 0.5, pts)
		rng := rand.New(rand.NewSource(14))
		d.ResetStats()
		rounds := n / 4
		for i := 0; i < rounds; i++ {
			p := geom.Point{X: int64(n)*32 + rng.Int63n(1<<30), Y: int64(n)*32 + rng.Int63n(1<<30)}
			ix.Insert(p)
		}
		fmt.Printf("%10d %16.1f\n", n, float64(d.Stats().IOs())/float64(rounds))
	}
}

func e8() {
	fmt.Println("E8  I/O-CPQA (Theorem 3): worst-case O(1), amortized o(1) per op")
	fmt.Printf("%6s %16s %16s\n", "b", "worst I/Os (M=0)", "amortized I/Os")
	for _, b := range []int{1, 8, 64} {
		// Worst case: no cache at all.
		d0 := emio.NewDisk(emio.Config{B: 64, M: 0})
		q := cpqa.New(d0, b)
		rng := rand.New(rand.NewSource(15))
		var worst uint64
		for op := 0; op < 4000; op++ {
			before := d0.Stats().IOs()
			if rng.Intn(3) == 0 {
				_, nq, _ := q.DeleteMin()
				q = nq
			} else {
				q = q.InsertAndAttrite(cpqa.Elem{Key: rng.Int63n(1 << 30)})
			}
			if c := d0.Stats().IOs() - before; c > worst {
				worst = c
			}
		}
		// Amortized: criticals resident.
		d1 := emio.NewDisk(emio.Config{B: 64, M: 1 << 24})
		q2 := cpqa.New(d1, b)
		d1.ResetStats()
		const ops = 20000
		for op := 0; op < ops; op++ {
			if rng.Intn(3) == 0 {
				_, nq, _ := q2.DeleteMin()
				q2 = nq
			} else {
				q2 = q2.InsertAndAttrite(cpqa.Elem{Key: rng.Int63n(1 << 30)})
			}
		}
		fmt.Printf("%6d %16d %16.3f\n", b, worst, float64(d1.Stats().IOs())/ops)
	}
}

func e9() {
	fmt.Println("E9  PPB-tree loading (§2.3): SABE O(n/B) vs classic O(n log_B n)")
	fmt.Printf("%10s %12s %12s %8s\n", "n", "SABE I/Os", "classic I/Os", "ratio")
	for _, n := range sizes([]int{1 << 12, 1 << 14}, []int{1 << 12, 1 << 14, 1 << 16}) {
		pts := geom.GenUniform(n, int64(n)*8, 17)
		geom.SortByX(pts)
		cost := func(mode ppb.Mode) uint64 {
			d := emio.NewDisk(cfg)
			f := extsort.FromSlice(d, 2, pts)
			d.DropCache()
			d.ResetStats()
			if mode == ppb.SABE {
				ppb.BuildSABE(d, f)
			} else {
				ppb.BuildClassic(d, f)
			}
			d.DropCache()
			return d.Stats().IOs()
		}
		s, c := cost(ppb.SABE), cost(ppb.Classic)
		fmt.Printf("%10d %12d %12d %8.1f\n", n, s, c, float64(c)/float64(s))
	}
}

func e10() {
	fmt.Println("E10 naive baseline (§1.2) vs Theorem 1 index, same queries")
	fmt.Printf("%10s %14s %14s %10s\n", "n", "naive I/Os", "index I/Os", "speedup")
	for _, n := range sizes([]int{1 << 12}, []int{1 << 12, 1 << 14, 1 << 16}) {
		d := emio.NewDisk(cfg)
		pts := geom.GenUniform(n, int64(n)*16, 18)
		geom.SortByX(pts)
		f := extsort.FromSlice(d, 2, pts)
		ix := topopen.Build(d, f)
		rng := rand.New(rand.NewSource(19))
		x1 := geom.Coord(rng.Int63n(int64(n) * 16))
		x2 := x1 + int64(n)
		beta := geom.Coord(rng.Int63n(int64(n) * 16))
		naive, _, _ := measure(d, 5, func() int {
			return len(skyline.NaiveRangeSkyline(d, f, geom.TopOpen(x1, x2, beta)))
		})
		indexed, _, _ := measure(d, 5, func() int {
			return len(ix.Query(x1, x2, beta))
		})
		fmt.Printf("%10d %14.1f %14.1f %10.1f\n", n, naive, indexed, naive/indexed)
	}
}

func e11() {
	fmt.Println("E11 sharded concurrent engine (internal/shard): throughput scaling")
	n := sizes([]int{1 << 12}, []int{1 << 14})[0]
	nq := sizes([]int{400}, []int{2000})[0]
	const clients = 8
	all := geom.GenUniform(n+n/2, int64(n)*32, 21)
	base := append([]geom.Point(nil), all[:n]...)
	extra := all[n:]
	geom.SortByX(base)
	span := int64(n) * 32

	build := func(shards, workers int) *shard.Engine {
		eng, err := shard.New(shard.Options{Machine: cfg, Shards: shards, Workers: workers, Dynamic: true}, base)
		if err != nil {
			panic(err)
		}
		return eng
	}

	fmt.Printf("    %d clients, %d queries over n=%d points\n", clients, nq, n)
	fmt.Printf("%8s %8s %12s %12s %12s\n", "shards", "workers", "queries/s", "I/Os/query", "mean k")
	for _, sw := range [][2]int{{1, 1}, {2, 2}, {4, 4}, {8, 4}, {8, 8}} {
		eng := build(sw[0], sw[1])
		eng.ResetStats()
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for q := 0; q < nq/clients; q++ {
					x1 := rng.Int63n(span)
					eng.TopOpen(x1, x1+int64(n), rng.Int63n(span))
				}
			}(int64(c))
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		ctr := eng.Counters()
		fmt.Printf("%8d %8d %12.0f %12.1f %12.1f\n", sw[0], sw[1],
			float64(ctr.Queries)/elapsed,
			float64(eng.Stats().IOs())/float64(ctr.Queries),
			float64(ctr.Points)/float64(ctr.Queries))
	}

	fmt.Println("    loading: batched inserts vs single-point updates (8 shards)")
	fmt.Printf("%12s %12s %12s\n", "mode", "points/s", "I/Os/point")
	for _, batched := range []bool{false, true} {
		eng := build(8, 8)
		eng.ResetStats()
		start := time.Now()
		if batched {
			if err := eng.BatchInsert(extra); err != nil {
				panic(err)
			}
		} else {
			for _, p := range extra {
				if err := eng.Insert(p); err != nil {
					panic(err)
				}
			}
		}
		elapsed := time.Since(start).Seconds()
		mode := "single"
		if batched {
			mode = "batched"
		}
		fmt.Printf("%12s %12.0f %12.1f\n", mode,
			float64(len(extra))/elapsed,
			float64(eng.Stats().IOs())/float64(len(extra)))
	}
}

func e12() {
	fmt.Println("E12 sharded 4-sided family + batched updates (internal/shard)")
	n := sizes([]int{1 << 12}, []int{1 << 14})[0]
	nq := sizes([]int{400}, []int{2000})[0]
	const clients = 8
	all := geom.GenUniform(n+n/2, int64(n)*32, 27)
	base := append([]geom.Point(nil), all[:n]...)
	extra := all[n:]
	geom.SortByX(base)
	span := int64(n) * 32

	build := func(shards, workers int) *shard.Engine {
		eng, err := shard.New(shard.Options{Machine: cfg, Shards: shards, Workers: workers, Dynamic: true}, base)
		if err != nil {
			panic(err)
		}
		return eng
	}

	// randFour draws from the 4-sided family: 4-sided, left-open,
	// right-open, bottom-open, anti-dominance.
	randFour := func(rng *rand.Rand) geom.Rect {
		x1 := rng.Int63n(span)
		y1 := rng.Int63n(span)
		r := geom.Rect{X1: x1, X2: x1 + int64(n)*2, Y1: y1, Y2: y1 + int64(n)*2}
		switch rng.Intn(5) {
		case 0:
			r.X1 = geom.NegInf
		case 1:
			r.Y1 = geom.NegInf
		case 2:
			r.X2 = geom.PosInf
		case 3:
			r.X1, r.Y1 = geom.NegInf, geom.NegInf
		}
		return r
	}

	fmt.Printf("    %d clients, %d 4-sided-family queries over n=%d points\n", clients, nq, n)
	fmt.Printf("%8s %8s %12s %12s %12s\n", "shards", "workers", "queries/s", "I/Os/query", "mean k")
	for _, sw := range [][2]int{{1, 1}, {2, 2}, {4, 4}, {8, 8}} {
		eng := build(sw[0], sw[1])
		eng.ResetStats()
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for q := 0; q < nq/clients; q++ {
					eng.FourSided(randFour(rng))
				}
			}(int64(c + 100))
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		ctr := eng.Counters()
		fmt.Printf("%8d %8d %12.0f %12.1f %12.1f\n", sw[0], sw[1],
			float64(ctr.Queries)/elapsed,
			float64(eng.Stats().IOs())/float64(ctr.Queries),
			float64(ctr.Points)/float64(ctr.Queries))
	}

	// Best of three trials per mode: the quantity of interest is
	// coordination overhead (lock round-trips, fan-out), and a best-of
	// run suppresses host scheduler noise the same way testing.B's
	// -count does.
	const trials = 3
	fmt.Println("    batched vs single-point updates, 8 shards (insert all, delete all)")
	fmt.Printf("%12s %12s %12s %12s\n", "mode", "insert pts/s", "delete pts/s", "I/Os/point")
	var rate [2][2]float64 // [single|batched][insert|delete]
	for mi, batched := range []bool{false, true} {
		var bestIns, bestDel float64
		var ios float64
		for trial := 0; trial < trials; trial++ {
			eng := build(8, 8)
			eng.ResetStats()
			startIns := time.Now()
			if batched {
				if err := eng.BatchInsert(extra); err != nil {
					panic(err)
				}
			} else {
				for _, p := range extra {
					if err := eng.Insert(p); err != nil {
						panic(err)
					}
				}
			}
			insElapsed := time.Since(startIns).Seconds()
			startDel := time.Now()
			if batched {
				if got, err := eng.BatchDelete(extra); err != nil || got != len(extra) {
					panic(fmt.Sprintf("BatchDelete = %d, %v", got, err))
				}
			} else {
				for _, p := range extra {
					if ok, err := eng.Delete(p); err != nil || !ok {
						panic(fmt.Sprintf("Delete(%v) = %t, %v", p, ok, err))
					}
				}
			}
			delElapsed := time.Since(startDel).Seconds()
			if v := float64(len(extra)) / insElapsed; v > bestIns {
				bestIns = v
			}
			if v := float64(len(extra)) / delElapsed; v > bestDel {
				bestDel = v
			}
			ios = float64(eng.Stats().IOs()) / float64(2*len(extra))
		}
		mode := "single"
		if batched {
			mode = "batched"
		}
		rate[mi][0], rate[mi][1] = bestIns, bestDel
		fmt.Printf("%12s %12.0f %12.0f %12.1f\n", mode, bestIns, bestDel, ios)
	}
	// The batch's structural win — one lock acquisition per shard per
	// batch plus parallel shard loading — needs real cores to show in
	// wall-clock; on a single-CPU host the ratio sits at ~1.0 because
	// the structures' own work dominates coordination cost.
	fmt.Printf("    speedup batched/single: insert %.2fx, delete %.2fx (GOMAXPROCS-bound)\n",
		rate[1][0]/rate[0][0], rate[1][1]/rate[0][1])
}

func e13() {
	fmt.Println("E13 mirrored fast paths (Options.Mirrors): transposed top-open structures")
	fmt.Println("    right-open drops from the Theorem 6 (n/B)^eps cost to the Theorem 1 log_B n cost;")
	fmt.Println("    bottom-open/left-open/anti-dominance cannot move (Theorem 5 lower bound at linear")
	fmt.Println("    space: no other axis reflection preserves dominance) and stay byte-identical on")
	fmt.Println("    the Theorem 6 path with or without mirrors.")
	type shapeGen struct {
		name string
		make func(rng *rand.Rand, n int, span int64) geom.Rect
	}
	shapes := []shapeGen{
		{"right-open", func(rng *rand.Rand, n int, span int64) geom.Rect {
			y1 := rng.Int63n(span)
			return geom.RightOpen(rng.Int63n(span), y1, y1+int64(n)*2)
		}},
		{"bottom-open", func(rng *rand.Rand, n int, span int64) geom.Rect {
			x1 := rng.Int63n(span)
			return geom.BottomOpen(x1, x1+int64(n)*2, rng.Int63n(span))
		}},
		{"left-open", func(rng *rand.Rand, n int, span int64) geom.Rect {
			y1 := rng.Int63n(span)
			return geom.LeftOpen(rng.Int63n(span), y1, y1+int64(n)*2)
		}},
		{"anti-dominance", func(rng *rand.Rand, n int, span int64) geom.Rect {
			return geom.AntiDominance(rng.Int63n(span), rng.Int63n(span))
		}},
	}
	ns := sizes([]int{1 << 12, 1 << 14}, []int{1 << 12, 1 << 14, 1 << 16})
	const rounds = 40
	type row struct {
		plain, mirrored, k float64
		served             string
	}
	results := make(map[string]map[int]row)
	for _, g := range shapes {
		results[g.name] = make(map[int]row)
	}
	for _, n := range ns {
		span := int64(n) * 16
		pts := geom.GenUniform(n, span, int64(n)+29)
		for _, g := range shapes {
			// Fresh indexes per shape: reusing one pair across shapes
			// would let an earlier shape's queries warm one DB's cache
			// and not the other's, skewing the comparison.
			plain, err := core.Open(core.Options{Machine: cfg}, pts)
			if err != nil {
				panic(err)
			}
			mirrored, err := core.Open(core.Options{Machine: cfg, Mirrors: true}, pts)
			if err != nil {
				panic(err)
			}
			rng := rand.New(rand.NewSource(int64(n) + 31))
			qs := make([]geom.Rect, rounds)
			for i := range qs {
				qs[i] = g.make(rng, n, span)
			}
			// Measure both paths before the cross-check loop, so
			// neither benefits from a cache the other's verification
			// pass warmed.
			mirrored.ResetStats()
			for _, q := range qs {
				mirrored.RangeSkyline(q)
			}
			mirroredIOs := float64(mirrored.Stats().IOs()) / rounds
			var k uint64
			plain.ResetStats()
			for _, q := range qs {
				k += uint64(len(plain.RangeSkyline(q)))
			}
			plainIOs := float64(plain.Stats().IOs()) / rounds
			for _, q := range qs {
				// Byte-identical is the contract the differential
				// harness enforces; re-check it on the fly here so a
				// benchmark can never report a fast-but-wrong path.
				got, want := mirrored.RangeSkyline(q), plain.RangeSkyline(q)
				if len(got) != len(want) {
					panic(fmt.Sprintf("E13: answers diverge on %v", q))
				}
				for j := range got {
					if got[j] != want[j] {
						panic(fmt.Sprintf("E13: answers diverge on %v", q))
					}
				}
			}
			served := "thm6"
			if _, ok := mirrored.Planner().Route(qs[0]).(*engine.MirrorBackend); ok {
				served = "mirror"
			}
			results[g.name][n] = row{plain: plainIOs, mirrored: mirroredIOs,
				k: float64(k) / rounds, served: served}
		}
	}
	for _, g := range shapes {
		fmt.Printf("    shape %s\n", g.name)
		fmt.Printf("%10s %12s %14s %10s %10s %10s %10s\n",
			"n", "thm6 I/Os", "mirrored I/Os", "served-by", "mean k", "log_B n", "(n/B)^.5")
		for _, n := range ns {
			r := results[g.name][n]
			fmt.Printf("%10d %12.1f %14.1f %10s %10.1f %10.1f %10.1f\n",
				n, r.plain, r.mirrored, r.served, r.k,
				math.Log(float64(n))/math.Log(float64(cfg.B)),
				math.Sqrt(float64(n)/float64(cfg.B)))
			// Machine-parsable, host-independent (simulated I/Os are
			// deterministic): cmd/benchguard compares these against the
			// committed BENCH_e13.json baseline.
			fmt.Printf("E13-METRIC shape=%s n=%d thm6=%.1f mirrored=%.1f\n",
				g.name, n, r.plain, r.mirrored)
		}
	}
}

// e14Rect draws rectangle i of the E14 query pool: shape cycles through
// all seven Figure-2 shapes plus whole-plane and general 4-sided, so
// the cache is exercised across the full routing surface (top-open
// family, mirror family, Theorem 6 shapes).
func e14Rect(rng *rand.Rand, shape, n int, span int64) geom.Rect {
	x1 := rng.Int63n(span)
	x2 := x1 + int64(n)*2
	y1 := rng.Int63n(span)
	y2 := y1 + int64(n)*2
	switch shape {
	case 0:
		return geom.TopOpen(x1, x2, y1)
	case 1:
		return geom.RightOpen(x1, y1, y2)
	case 2:
		return geom.BottomOpen(x1, x2, y2)
	case 3:
		return geom.LeftOpen(x2, y1, y2)
	case 4:
		return geom.Dominance(x1, y1)
	case 5:
		return geom.AntiDominance(x2, y2)
	case 6:
		return geom.Contour(x2)
	case 7:
		return geom.Rect{X1: geom.NegInf, X2: geom.PosInf, Y1: geom.NegInf, Y2: geom.PosInf}
	default:
		return geom.Rect{X1: x1, X2: x2, Y1: y1, Y2: y2}
	}
}

// e14Check panics unless got and want are byte-identical: a cache that
// is fast but wrong must never survive a benchmark run.
func e14Check(ctx string, q geom.Rect, got, want []geom.Point) {
	if len(got) != len(want) {
		panic(fmt.Sprintf("E14 %s: answers diverge on %v (%d vs %d points)", ctx, q, len(got), len(want)))
	}
	for i := range got {
		if got[i] != want[i] {
			panic(fmt.Sprintf("E14 %s: answers diverge on %v at %d", ctx, q, i))
		}
	}
}

func e14() {
	fmt.Println("E14 read-through skyline cache (Options.CacheEntries): Zipf-skewed query streams")
	fmt.Println("    Hot rectangles are re-answered from memory at zero simulated I/O; every cached")
	fmt.Println("    answer is cross-checked byte-identical to the uncached engines. All rates and")
	fmt.Println("    I/O counts below are deterministic (simulated disks, seeded streams), so the")
	fmt.Println("    E14-METRIC lines compare exactly across hosts (cmd/benchguard -strict-io).")
	n := sizes([]int{1 << 12}, []int{1 << 14})[0]
	span := int64(n) * 16
	poolSize := sizes([]int{256}, []int{512})[0]
	nQueries := sizes([]int{4000}, []int{16000})[0]

	all := geom.GenUniform(n+n/4, span, 57)
	base := append([]geom.Point(nil), all[:n]...)
	writePool := all[n:]
	geom.SortByX(base)

	rng := rand.New(rand.NewSource(59))
	qpool := make([]geom.Rect, poolSize)
	for i := range qpool {
		qpool[i] = e14Rect(rng, i%9, n, span)
	}

	refStatic, err := core.Open(core.Options{Machine: cfg, Shards: 8, Workers: 4, Mirrors: true}, base)
	if err != nil {
		panic(err)
	}

	fmt.Printf("    part 1: read-only Zipf streams over a %d-rect pool, %d queries, n=%d\n",
		poolSize, nQueries, n)
	fmt.Printf("    (static, 8 shards, mirrors; entries=0 is the uncached reference)\n")
	fmt.Printf("%8s %10s %10s %12s %12s\n", "zipf s", "entries", "hit rate", "I/Os/query", "evictions")
	for _, skew := range []float64{1.1, 1.5} {
		for _, entries := range []int{0, poolSize / 8, poolSize} {
			db, err := core.Open(core.Options{
				Machine: cfg, Shards: 8, Workers: 4, Mirrors: true, CacheEntries: entries,
			}, base)
			if err != nil {
				panic(err)
			}
			zipf := rand.NewZipf(rand.New(rand.NewSource(61)), skew, 1, uint64(poolSize-1))
			db.ResetStats()
			for q := 0; q < nQueries; q++ {
				db.RangeSkyline(qpool[zipf.Uint64()])
			}
			ios := float64(db.Stats().IOs()) / float64(nQueries)
			hitRate, missRate := 0.0, 1.0
			var evictions uint64
			if entries > 0 {
				ctr := db.Cache().Counters()
				hitRate = float64(ctr.Hits) / float64(ctr.Hits+ctr.Misses)
				missRate = 1 - hitRate
				evictions = ctr.Evictions
				// The whole pool is answerable from the cached DB;
				// every answer must match the uncached reference bit
				// for bit (the differential harness enforces the same
				// under updates).
				for _, q := range qpool {
					e14Check("part1", q, db.RangeSkyline(q), refStatic.RangeSkyline(q))
				}
				if entries == poolSize && hitRate < 0.90 {
					panic(fmt.Sprintf("E14: full-cache hit rate %.3f < 0.90 at zipf s=%.1f", hitRate, skew))
				}
			}
			fmt.Printf("%8.1f %10d %10.3f %12.2f %12d\n", skew, entries, hitRate, ios, evictions)
			// zipf=s1.1 and entries=4096 parse as labels (no lone
			// decimal number), missrate/ios as metrics — and missrate,
			// unlike hit rate, regresses UPWARD, matching benchguard's
			// bigger-is-worse comparison.
			fmt.Printf("E14-METRIC mix=zipf zipf=s%.1f entries=%d n=%d missrate=%.4f ios=%.2f\n",
				skew, entries, n, missRate, ios)
		}
	}

	fmt.Println("    part 2: 5% writes interleaved (insert/delete cycle), zipf s=1.1 —")
	fmt.Println("    shard-aware invalidation (8 shards: only the written slab is evicted,")
	fmt.Println("    cuts learned via engine.Partitioned) vs full flush (1 shard: no cuts)")
	streamLen := sizes([]int{3000}, []int{10000})[0]
	entries2 := poolSize / 2
	// A slab-local working set: the bounded-x shapes (top-open,
	// bottom-open, 4-sided), whose rectangles touch one or two shards.
	// The grounded-x shapes of part 1 intersect every slab, so no
	// partition knowledge can save their entries from a write — for
	// them, shard-aware and flush-all invalidation coincide.
	rng2 := rand.New(rand.NewSource(63))
	qpool2 := make([]geom.Rect, poolSize)
	for i := range qpool2 {
		qpool2[i] = e14Rect(rng2, []int{0, 2, 8}[i%3], n, span)
	}
	refRW, err := core.Open(core.Options{Machine: cfg, Dynamic: true, Shards: 8, Workers: 4}, base)
	if err != nil {
		panic(err)
	}
	flat, err := core.Open(core.Options{Machine: cfg, Dynamic: true, CacheEntries: entries2}, base)
	if err != nil {
		panic(err)
	}
	sharded, err := core.Open(core.Options{
		Machine: cfg, Dynamic: true, Shards: 8, Workers: 4, CacheEntries: entries2,
	}, base)
	if err != nil {
		panic(err)
	}
	dbs := []*core.DB{refRW, flat, sharded}
	zipf := rand.NewZipf(rand.New(rand.NewSource(67)), 1.1, 1, uint64(poolSize-1))
	for _, db := range dbs {
		db.ResetStats()
	}
	var inserted []geom.Point
	wi := 0
	queries := 0
	for op := 0; op < streamLen; op++ {
		if op%20 == 19 {
			if len(inserted) > 0 && wi%2 == 1 {
				p := inserted[0]
				inserted = inserted[1:]
				for _, db := range dbs {
					if ok, err := db.Delete(p); err != nil || !ok {
						panic(fmt.Sprintf("E14: Delete(%v) = %t, %v", p, ok, err))
					}
				}
			} else {
				p := writePool[wi%len(writePool)]
				for _, db := range dbs {
					if err := db.Insert(p); err != nil {
						panic(err)
					}
				}
				inserted = append(inserted, p)
			}
			wi++
			continue
		}
		q := qpool2[zipf.Uint64()]
		want := refRW.RangeSkyline(q)
		e14Check("part2 flat", q, flat.RangeSkyline(q), want)
		e14Check("part2 sharded", q, sharded.RangeSkyline(q), want)
		queries++
	}
	fmt.Printf("%12s %10s %12s %14s %12s\n", "layout", "hit rate", "I/Os/query", "invalidations", "entries")
	for _, row := range []struct {
		name   string
		shards int
		db     *core.DB
	}{{"1 shard", 1, flat}, {"8 shards", 8, sharded}} {
		ctr := row.db.Cache().Counters()
		hitRate := float64(ctr.Hits) / float64(ctr.Hits+ctr.Misses)
		ios := float64(row.db.Stats().IOs()) / float64(queries)
		fmt.Printf("%12s %10.3f %12.2f %14d %12d\n",
			row.name, hitRate, ios, ctr.Invalidations, entries2)
		fmt.Printf("E14-METRIC mix=readwrite shards=%d entries=%d n=%d missrate=%.4f ios=%.2f\n",
			row.shards, entries2, n, 1-hitRate, ios)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// e16 exercises the real-storage layer (Options.Dir): unlike E1–E15,
// whose simulated I/O counts are deterministic, its numbers are WALL
// CLOCK on real files and vary by host — BENCH_e16.json is compared
// warn-only (no -strict-io) in CI.
func e16() {
	fmt.Println("E16 durable storage (Options.Dir): file-backed pager + WAL, wall clock")
	fmt.Println("    Every acknowledged write is WAL-appended before it is applied; Flush/Close")
	fmt.Println("    checkpoint the live set into 4 KB pages and truncate the WAL; reopening")
	fmt.Println("    replays the tail. Durability modes: sync logs per op, async logs one record")
	fmt.Println("    per drain batch (acknowledged = drained). Wall-clock numbers are host-")
	fmt.Println("    dependent; the replayed-record and WAL-size columns are deterministic.")
	n := sizes([]int{1 << 12}, []int{1 << 14})[0]
	ops := sizes([]int{2000}, []int{10000})[0]
	span := int64(n) * 16

	all := geom.GenUniform(n+ops, span, 83)
	base := append([]geom.Point(nil), all[:n]...)
	ingest := all[n:]
	geom.SortByX(base)

	tmp, err := os.MkdirTemp("", "skybench-e16-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(tmp)

	open := func(dir string, async bool) *core.DB {
		o := core.Options{Machine: cfg, Dynamic: true, Dir: dir}
		if async {
			o.AsyncWrites = true
			o.FlushPoints = 256
			o.FlushInterval = -1
		}
		db, err := core.Open(o, base)
		if err != nil {
			panic(err)
		}
		return db
	}
	walSize := func(dir string) int64 {
		st, err := os.Stat(dir + "/skyline.wal")
		if err != nil {
			return 0
		}
		return st.Size()
	}

	fmt.Printf("    ingest %d points over a %d-point seed, then checkpoint and recover\n", ops, n)
	fmt.Printf("%8s %12s %12s %14s %14s %10s\n",
		"mode", "ingest/s", "WAL KiB", "checkpoint ms", "recover ms", "replayed")
	for _, mode := range []string{"sync", "async"} {
		dir := tmp + "/" + mode
		db := open(dir, mode == "async")
		start := time.Now()
		for _, p := range ingest {
			if err := db.Insert(p); err != nil {
				panic(err)
			}
		}
		if mode == "async" {
			// Drain (making the writes durable WAL records) without
			// checkpointing, as the background drainer would.
			if err := db.Queue().Flush(); err != nil {
				panic(err)
			}
		}
		ingestSec := time.Since(start).Seconds()
		walKiB := float64(walSize(dir)) / 1024

		start = time.Now()
		if err := db.Flush(); err != nil { // checkpoint: snapshot + WAL truncate
			panic(err)
		}
		checkpointMS := time.Since(start).Seconds() * 1000
		if err := db.Close(); err != nil {
			panic(err)
		}

		start = time.Now()
		re, err := core.Open(core.Options{Machine: cfg, Dynamic: true, Dir: dir}, nil)
		if err != nil {
			panic(err)
		}
		recoverMS := time.Since(start).Seconds() * 1000
		rec := re.Recover()
		if got, want := re.Len(), n+len(ingest); got != want {
			panic(fmt.Sprintf("E16 %s: recovered Len %d, want %d", mode, got, want))
		}
		if err := re.Close(); err != nil {
			panic(err)
		}
		fmt.Printf("%8s %12.0f %12.1f %14.2f %14.2f %10d\n",
			mode, float64(ops)/ingestSec, walKiB, checkpointMS, recoverMS, rec.RecordsReplayed)
		// All four values carry decimals on purpose: benchguard reads
		// integer-valued fields as labels, decimal ones as metrics.
		fmt.Printf("E16-METRIC mode=%s n=%d ingestpersec=%.1f walkib=%.1f checkpointms=%.2f recoverms=%.2f\n",
			mode, n, float64(ops)/ingestSec, walKiB, checkpointMS, recoverMS)
	}

	// Crash-shaped recovery: ingest without any checkpoint, abandon the
	// handle (no Close — the crash), and time the replay-heavy reopen.
	dir := tmp + "/crash"
	db := open(dir, false)
	for _, p := range ingest {
		if err := db.Insert(p); err != nil {
			panic(err)
		}
	}
	// Deliberately NOT closed: the files hold every op as WAL records.
	start := time.Now()
	re, err := core.Open(core.Options{Machine: cfg, Dynamic: true, Dir: dir}, nil)
	if err != nil {
		panic(err)
	}
	replayMS := time.Since(start).Seconds() * 1000
	rec := re.Recover()
	if rec.RecordsReplayed != len(ingest) {
		panic(fmt.Sprintf("E16 crash: replayed %d records, want %d", rec.RecordsReplayed, len(ingest)))
	}
	if got, want := re.Len(), n+len(ingest); got != want {
		panic(fmt.Sprintf("E16 crash: recovered Len %d, want %d", got, want))
	}
	if err := re.Close(); err != nil {
		panic(err)
	}
	fmt.Printf("    crash recovery (no checkpoint): %d records replayed in %.2f ms\n",
		rec.RecordsReplayed, replayMS)
	fmt.Printf("E16-METRIC mode=crash n=%d replayed=%d recoverms=%.2f\n",
		n, rec.RecordsReplayed, replayMS)
}

// e15op is one precomputed operation of an E15 stream: the same
// sequence is applied in lockstep to the synchronous reference and
// every queued index, so answers can be cross-checked byte for byte.
type e15op struct {
	write bool
	del   bool
	p     geom.Point
	q     geom.Rect
}

// e15Stream precomputes a deterministic op stream: writeFrac of the ops
// are writes (inserts of fresh points, deletes of recently-inserted
// points — the coalescing candidates — deletes of old points, and a few
// guaranteed misses), the rest are queries drawn from a recurring
// rectangle pool spanning all nine shapes.
func e15Stream(streamLen int, writeFrac float64, n int, span int64, base, pool []geom.Point, seed int64) []e15op {
	rng := rand.New(rand.NewSource(seed))
	qpool := make([]geom.Rect, 128)
	for i := range qpool {
		qpool[i] = e14Rect(rng, i%9, n, span)
	}
	liveOld := append([]geom.Point(nil), base...)
	var recent []geom.Point
	next := 0
	ops := make([]e15op, 0, streamLen)
	for len(ops) < streamLen {
		if rng.Float64() < writeFrac {
			r := rng.Float64()
			switch {
			case r < 0.10 && len(liveOld) > 0:
				// Guaranteed miss: resolves to nothing at drain.
				ops = append(ops, e15op{write: true, del: true,
					p: geom.Point{X: span + int64(len(ops)) + 1, Y: span + int64(len(ops)) + 1}})
			case r < 0.35 && len(recent) > 0:
				// Delete the newest insert: very likely still buffered
				// on the queued indexes, so the pair coalesces.
				p := recent[len(recent)-1]
				recent = recent[:len(recent)-1]
				ops = append(ops, e15op{write: true, del: true, p: p})
			case r < 0.55 && len(liveOld) > 0:
				j := rng.Intn(len(liveOld))
				p := liveOld[j]
				liveOld = append(liveOld[:j], liveOld[j+1:]...)
				ops = append(ops, e15op{write: true, del: true, p: p})
			default:
				if next >= len(pool) {
					continue
				}
				p := pool[next]
				next++
				recent = append(recent, p)
				if len(recent) > 16 {
					liveOld = append(liveOld, recent[0])
					recent = recent[1:]
				}
				ops = append(ops, e15op{write: true, p: p})
			}
		} else {
			ops = append(ops, e15op{q: qpool[rng.Intn(len(qpool))]})
		}
	}
	return ops
}

func e15() {
	fmt.Println("E15 async update queue (Options.AsyncWrites): buffered per-shard writes")
	fmt.Println("    Writes append to per-shard buffers and return without touching any structure;")
	fmt.Println("    buffers drain through the batched paths at FlushPoints or when a read's")
	fmt.Println("    rectangle intersects them (drain-on-read), so every answer below is")
	fmt.Println("    cross-checked byte-identical to the synchronous reference. The background")
	fmt.Println("    drainer is disabled and size-triggered drains run inline, so the drain,")
	fmt.Println("    coalesce and simulated-I/O numbers are deterministic across hosts and the")
	fmt.Println("    E15-METRIC lines gate regressions exactly (cmd/benchguard -strict-io).")
	n := sizes([]int{1 << 12}, []int{1 << 14})[0]
	span := int64(n) * 16
	streamLen := sizes([]int{4000}, []int{12000})[0]

	all := geom.GenUniform(n+streamLen, span, 71)
	base := append([]geom.Point(nil), all[:n]...)
	writePool := all[n:]
	geom.SortByX(base)

	streams := []struct {
		name      string
		writeFrac float64
	}{
		{"writeheavy", 0.70},
		{"mixed", 0.20},
	}
	for _, stream := range streams {
		ops := e15Stream(streamLen, stream.writeFrac, n, span, base, writePool, 73)
		writes, reads := 0, 0
		for _, op := range ops {
			if op.write {
				writes++
			} else {
				reads++
			}
		}
		fmt.Printf("    stream %s: %d ops (%d writes, %d reads), n=%d, 8 shards\n",
			stream.name, len(ops), writes, reads, n)

		ref, err := core.Open(core.Options{Machine: cfg, Dynamic: true, Shards: 8, Workers: 4}, base)
		if err != nil {
			panic(err)
		}
		queued, err := core.Open(core.Options{
			Machine: cfg, Dynamic: true, Shards: 8, Workers: 4,
			AsyncWrites: true, FlushPoints: 64, FlushInterval: -1,
		}, base)
		if err != nil {
			panic(err)
		}
		qcached, err := core.Open(core.Options{
			Machine: cfg, Dynamic: true, Shards: 8, Workers: 4, CacheEntries: 128,
			AsyncWrites: true, FlushPoints: 64, FlushInterval: -1,
		}, base)
		if err != nil {
			panic(err)
		}
		dbs := []*core.DB{ref, queued, qcached}
		for _, db := range dbs {
			db.ResetStats()
		}
		for _, op := range ops {
			switch {
			case op.write && op.del:
				for _, db := range dbs {
					if _, err := db.Delete(op.p); err != nil {
						panic(err)
					}
				}
			case op.write:
				for _, db := range dbs {
					if err := db.Insert(op.p); err != nil {
						panic(err)
					}
				}
			default:
				want := ref.RangeSkyline(op.q)
				e14Check("E15 queued", op.q, queued.RangeSkyline(op.q), want)
				e14Check("E15 queued+cache", op.q, qcached.RangeSkyline(op.q), want)
			}
		}
		for _, db := range dbs[1:] {
			if err := db.Flush(); err != nil {
				panic(err)
			}
			if db.Len() != ref.Len() {
				panic(fmt.Sprintf("E15 %s: Len %d, want %d", stream.name, db.Len(), ref.Len()))
			}
		}
		fmt.Printf("%14s %12s %10s %10s %10s %12s\n",
			"mode", "I/Os/op", "drainfrac", "coalesced", "forced", "cache hits")
		for _, row := range []struct {
			mode string
			db   *core.DB
		}{{"sync", ref}, {"queued", queued}, {"queued+cache", qcached}} {
			ios := float64(row.db.Stats().IOs()) / float64(len(ops))
			ctr := row.db.QueueCounters()
			if row.db.Queue() == nil {
				fmt.Printf("%14s %12.2f %10s %10s %10s %12s\n", row.mode, ios, "-", "-", "-", "-")
				fmt.Printf("E15-METRIC mix=%s mode=sync n=%d ios=%.2f\n", stream.name, n, ios)
				continue
			}
			if ctr.Enqueued != ctr.Drained+ctr.Coalesced {
				panic(fmt.Sprintf("E15 %s %s: quiescent invariant violated: %+v", stream.name, row.mode, ctr))
			}
			if stream.name == "writeheavy" && ctr.Coalesced == 0 {
				panic(fmt.Sprintf("E15 %s: write-heavy stream coalesced nothing: %+v", row.mode, ctr))
			}
			drainFrac := float64(ctr.Drained) / float64(ctr.Enqueued)
			hits := "-"
			if c := row.db.Cache(); c != nil {
				hits = fmt.Sprintf("%d", c.Counters().Hits)
			}
			fmt.Printf("%14s %12.2f %10.4f %10d %10d %12s\n",
				row.mode, ios, drainFrac, ctr.Coalesced, ctr.ForcedDrains, hits)
			// drainfrac regresses UPWARD when coalescing degrades
			// (fewer ops cancelled in-buffer), forced when reads stall
			// on drains more often — both, like ios, are deterministic
			// and bigger-is-worse, matching benchguard's comparison.
			mode := "queued"
			if row.db.Cache() != nil {
				mode = "queuedcache"
			}
			fmt.Printf("E15-METRIC mix=%s mode=%s n=%d ios=%.2f drainfrac=%.4f forced=%.1f\n",
				stream.name, mode, n, ios, drainFrac, float64(ctr.ForcedDrains))
		}
	}
}

// e17op is one write of the hot-writer stream.
type e17op struct {
	del bool
	p   geom.Point
}

// e17Bursts precomputes the hot write stream: per burst, Zipf-ranked
// inserts from the low-x-sorted pool (so the lowest-x shards absorb
// most of the traffic) mixed with deletes of recently inserted hot
// points. Precomputing keeps the drain and snapshot runs on the exact
// same ops.
func e17Bursts(bursts, perBurst int, pool []geom.Point, seed int64) [][]e17op {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(pool)-1))
	used := make([]bool, len(pool))
	var recent []geom.Point
	out := make([][]e17op, 0, bursts)
	for b := 0; b < bursts; b++ {
		ops := make([]e17op, 0, perBurst)
		for len(ops) < perBurst {
			if rng.Float64() < 0.35 && len(recent) > 8 {
				p := recent[0]
				recent = recent[1:]
				ops = append(ops, e17op{del: true, p: p})
				continue
			}
			idx := int(zipf.Uint64())
			for idx < len(pool) && used[idx] {
				idx++
			}
			if idx >= len(pool) {
				if len(recent) == 0 {
					break
				}
				p := recent[0]
				recent = recent[1:]
				ops = append(ops, e17op{del: true, p: p})
				continue
			}
			used[idx] = true
			recent = append(recent, pool[idx])
			ops = append(ops, e17op{p: pool[idx]})
		}
		out = append(out, ops)
	}
	return out
}

// e17Rects draws the reader's rectangle pool: narrow top-open
// rectangles over the hot low-x region — the slabs the writer keeps
// dirty, so a drain-on-read pays a forced drain on almost every query
// while the query itself stays cheap (Theorem 4 logarithmic search,
// small output). Mode-independent query cost would only dilute the
// drain-vs-pin comparison, so the pool stays hot and narrow.
func e17Rects(rng *rand.Rand, n int, span int64) []geom.Rect {
	pool := make([]geom.Rect, 64)
	for i := range pool {
		x1 := rng.Int63n(span / 8)
		x2 := x1 + span/32
		pool[i] = geom.TopOpen(x1, x2, rng.Int63n(span))
	}
	return pool
}

// e17Open opens the E17 configuration: sharded, async, FlushPoints 64
// — small enough that in snapshot mode the WRITE path absorbs drains
// at batch boundaries (size-triggered, inline) while in drain-on-read
// mode the frequent reads drain first, charging the same work to the
// read path.
func e17Open(base []geom.Point) *core.DB {
	db, err := core.Open(core.Options{
		Machine: cfg, Dynamic: true, Shards: 8, Workers: 4,
		AsyncWrites: true, FlushPoints: 64, FlushInterval: -1,
	}, base)
	if err != nil {
		panic(err)
	}
	return db
}

func e17() {
	fmt.Println("E17 snapshot reads (DB.Snapshot): point-in-time views vs drain-on-read")
	fmt.Println("    A hot Zipf writer keeps the lowest-x shards dirty while a reader asks")
	fmt.Println("    mostly-hot rectangles. Drain-on-read readers pay the forced drains of")
	fmt.Println("    every slab their rectangles touch; snapshot readers pin a view (one")
	fmt.Println("    flush per pin, refreshed every few bursts) and then query pinned roots")
	fmt.Println("    with no locks and no drains. Part 1 is single-caller and deterministic:")
	fmt.Println("    the E17-METRIC read-path I/O totals gate exactly (cmd/benchguard")
	fmt.Println("    -strict-io), and snapcost = snapshot/drain read I/Os must stay <= 0.5 —")
	fmt.Println("    the >=2x reader-throughput claim in simulated I/Os. Part 2 (E17-WALL,")
	fmt.Println("    warn-only) races live goroutines for wall-clock throughput and p99.")
	n := sizes([]int{1 << 12}, []int{1 << 13})[0]
	span := int64(n) * 16
	bursts := sizes([]int{120}, []int{240})[0]
	const writesPerBurst, readsPerBurst, refreshEvery = 32, 8, 4

	all := geom.GenUniform(n+8*bursts*writesPerBurst, span, 171)
	base := append([]geom.Point(nil), all[:n]...)
	pool := append([]geom.Point(nil), all[n:]...)
	geom.SortByX(base)
	geom.SortByX(pool)
	stream := e17Bursts(bursts, writesPerBurst, pool, 173)
	qpool := e17Rects(rand.New(rand.NewSource(175)), n, span)

	fmt.Printf("    part 1: %d bursts x (%d writes + %d reads), n=%d, 8 shards, refresh every %d bursts\n",
		bursts, writesPerBurst, readsPerBurst, n, refreshEvery)
	readIOs := map[string]float64{}
	for _, mode := range []string{"drain", "snapshot"} {
		db := e17Open(base)
		ref, err := core.Open(core.Options{Machine: cfg, Dynamic: true, Shards: 8, Workers: 4}, base)
		if err != nil {
			panic(err)
		}
		var snap *core.Snapshot
		rng := rand.New(rand.NewSource(177))
		ios, reads, pins := uint64(0), 0, 0
		for b, ops := range stream {
			for _, op := range ops {
				dbs := []*core.DB{db, ref}
				for _, d := range dbs {
					if op.del {
						if _, err := d.Delete(op.p); err != nil {
							panic(err)
						}
					} else if err := d.Insert(op.p); err != nil {
						panic(err)
					}
				}
			}
			io0 := db.Stats().IOs()
			refreshed := false
			if mode == "snapshot" && b%refreshEvery == 0 {
				if snap != nil {
					snap.Close()
				}
				var err error
				if snap, err = db.Snapshot(); err != nil {
					panic(err)
				}
				pins++
				refreshed = true
			}
			burstQs := make([]geom.Rect, readsPerBurst)
			for r := range burstQs {
				burstQs[r] = qpool[rng.Intn(len(qpool))]
			}
			for _, q := range burstQs {
				if mode == "snapshot" {
					_ = snap.RangeSkyline(q)
				} else {
					e14Check("E17 drain", q, db.RangeSkyline(q), ref.RangeSkyline(q))
				}
			}
			ios += db.Stats().IOs() - io0
			reads += readsPerBurst
			// At a fresh pin no write separates the view from the live
			// index, so the answers must be byte-identical (the drained
			// live read costs nothing extra: the pin just flushed).
			if refreshed {
				for _, q := range burstQs[:2] {
					e14Check("E17 pin boundary", q, snap.RangeSkyline(q), db.RangeSkyline(q))
				}
			}
		}
		if snap != nil {
			snap.Close()
		}
		if err := db.Flush(); err != nil {
			panic(err)
		}
		if db.Len() != ref.Len() {
			panic(fmt.Sprintf("E17 %s: Len %d, want %d", mode, db.Len(), ref.Len()))
		}
		if got := db.DeferredBlocks(); got != 0 {
			panic(fmt.Sprintf("E17 %s: %d deferred blocks leaked", mode, got))
		}
		ctr := db.QueueCounters()
		perRead := float64(ios) / float64(reads)
		readIOs[mode] = perRead
		fmt.Printf("    mode %-8s  read I/Os/query %8.2f  readdrains %7d  pins %3d\n",
			mode, perRead, ctr.ReadDrains, pins)
		// readdrains prints with a decimal point so benchguard gates
		// it as a metric (like E15's forced), not a label.
		fmt.Printf("E17-METRIC mode=%s n=%d readios=%.2f readdrains=%.1f\n",
			mode, n, perRead, float64(ctr.ReadDrains))
		if mode == "drain" && ctr.ReadDrains == 0 {
			panic("E17 drain: hot stream forced no read drains")
		}
		if err := db.Close(); err != nil {
			panic(err)
		}
	}
	snapcost := readIOs["snapshot"] / readIOs["drain"]
	// Smaller is better, and benchguard's bigger-is-worse gate holds
	// the ratio down; the paper-level claim is >=2x reader throughput,
	// i.e. snapcost <= 0.5.
	fmt.Printf("E17-METRIC n=%d snapcost=%.4f\n", n, snapcost)
	if snapcost > 0.5 {
		panic(fmt.Sprintf("E17: snapshot reads cost %.2fx of drain-on-read, want <= 0.5x", snapcost))
	}

	// Part 2: wall clock. Live goroutines — warn-only numbers, printed
	// as E17-WALL so benchguard's strict gate ignores them.
	readers := 3
	queriesPerReader := sizes([]int{600}, []int{2000})[0]
	fmt.Printf("    part 2: %d readers x %d queries racing a hot writer (wall clock, warn-only)\n",
		readers, queriesPerReader)
	for _, mode := range []string{"drain", "snapshot"} {
		db := e17Open(base)
		stop := make(chan struct{})
		var writes int64
		var wwg sync.WaitGroup
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			// Endless hot stream: Zipf-ranked toggles (insert the point
			// if absent, delete it if live) keep the low-x shards dirty
			// without exhausting the pool.
			rng := rand.New(rand.NewSource(179))
			zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(pool)-1))
			inserted := make([]bool, len(pool))
			for {
				select {
				case <-stop:
					return
				default:
				}
				idx := int(zipf.Uint64())
				if inserted[idx] {
					if _, err := db.Delete(pool[idx]); err != nil {
						panic(err)
					}
				} else if err := db.Insert(pool[idx]); err != nil {
					panic(err)
				}
				inserted[idx] = !inserted[idx]
				writes++
			}
		}()
		lats := make([][]time.Duration, readers)
		start := time.Now()
		var rwg sync.WaitGroup
		for g := 0; g < readers; g++ {
			g := g
			rwg.Add(1)
			go func() {
				defer rwg.Done()
				rng := rand.New(rand.NewSource(181 + int64(g)))
				var snap *core.Snapshot
				if mode == "snapshot" {
					var err error
					if snap, err = db.Snapshot(); err != nil {
						panic(err)
					}
					defer func() { snap.Close() }()
				}
				lat := make([]time.Duration, 0, queriesPerReader)
				for q := 0; q < queriesPerReader; q++ {
					if mode == "snapshot" && q > 0 && q%250 == 0 {
						snap.Close()
						var err error
						if snap, err = db.Snapshot(); err != nil {
							panic(err)
						}
					}
					r := qpool[rng.Intn(len(qpool))]
					t0 := time.Now()
					if mode == "snapshot" {
						_ = snap.RangeSkyline(r)
					} else {
						_ = db.RangeSkyline(r)
					}
					lat = append(lat, time.Since(t0))
				}
				lats[g] = lat
			}()
		}
		rwg.Wait()
		elapsed := time.Since(start)
		close(stop)
		wwg.Wait()
		if err := db.Close(); err != nil {
			panic(err)
		}
		var flat []time.Duration
		for _, l := range lats {
			flat = append(flat, l...)
		}
		sortDurations(flat)
		p99 := flat[len(flat)*99/100]
		qps := float64(len(flat)) / elapsed.Seconds()
		fmt.Printf("E17-WALL mode=%s readers=%d qps=%.0f p99us=%.0f writes=%d\n",
			mode, readers, qps, float64(p99.Microseconds()), writes)
	}
}

// e18 measures the resilience layer (ISSUE PR 8): a steady durable
// ingest with deterministic transient fault bursts injected under the
// pager and WAL through vfs.FaultFS, and a backpressure leg driving the
// async queue into its MaxBuffered cap. Every injection rule is
// count-based (Every/Nth) with a seeded generator and the retry
// policy's Sleep is a no-op, so the injected/retried/shed counters and
// the lost-acknowledgment count are bit-deterministic — benchguard
// gates them strictly. The acceptance bar printed as lostacks: a write
// acknowledged through a fault burst is never lost, so the metric must
// stay exactly 0.
func e18() {
	fmt.Println("E18 fault resilience: injected transient bursts, retried I/O, zero lost acks")
	fmt.Println("    A FaultFS under the pager and WAL fails every k-th write/sync/read with a")
	fmt.Println("    transient error (plus periodic torn writes); the storage stack retries with")
	fmt.Println("    bounded backoff and the workload never sees an error. The shed leg caps the")
	fmt.Println("    async queue's buffers and counts rejected (ErrBackpressure) admissions.")
	fmt.Println("    All counters are seeded and count-based: deterministic across hosts.")
	n := sizes([]int{1 << 11}, []int{1 << 13})[0]
	ops := sizes([]int{1500}, []int{6000})[0]
	span := int64(n) * 16

	all := geom.GenUniform(n+ops, span, 181)
	base := append([]geom.Point(nil), all[:n]...)
	ingest := all[n:]
	geom.SortByX(base)

	tmp, err := os.MkdirTemp("", "skybench-e18-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(tmp)
	noSleep := func(time.Duration) {}

	// Reopen plain (no faults) and count how many acknowledged writes
	// the recovered index is missing; the whole point of the layer is
	// that this is zero even though the ingest ran through fault bursts.
	lostAcks := func(dir string, want int) int {
		re, err := core.Open(core.Options{Machine: cfg, Dynamic: true, Dir: dir}, nil)
		if err != nil {
			panic(fmt.Sprintf("E18 recovery open: %v", err))
		}
		got := re.Len()
		if err := re.Close(); err != nil {
			panic(err)
		}
		return want - got
	}

	fmt.Printf("    ingest %d points over a %d-point seed through the fault schedule below\n", ops, n)
	fmt.Printf("%8s %10s %10s %10s %10s %10s\n",
		"leg", "injected", "retried", "exhausted", "shed", "lostacks")

	// Burst leg: periodic transient failures (and torn writes) on the
	// durable files; sync WAL mode so every op is an acknowledged
	// record. The workload must complete error-free: every fault is
	// absorbed by a retry, none exhausts the budget.
	{
		dir := tmp + "/burst"
		ffs := vfs.NewFaultFS(vfs.OS, 18,
			vfs.Fault{Op: vfs.OpWriteAt, Every: 7},
			vfs.Fault{Op: vfs.OpWriteAt, Every: 97, Short: true},
			vfs.Fault{Op: vfs.OpSync, Every: 5},
			vfs.Fault{Op: vfs.OpReadAt, Every: 3},
		)
		db, err := core.Open(core.Options{Machine: cfg, Dynamic: true, Dir: dir,
			FS: ffs, Retry: vfs.RetryPolicy{Sleep: noSleep}, SyncWAL: true}, base)
		if err != nil {
			panic(fmt.Sprintf("E18 burst open: %v", err))
		}
		for _, p := range ingest {
			if err := db.Insert(p); err != nil {
				panic(fmt.Sprintf("E18 burst insert surfaced a retried fault: %v", err))
			}
		}
		if err := db.Flush(); err != nil {
			panic(fmt.Sprintf("E18 burst checkpoint: %v", err))
		}
		rs := db.Resilience()
		if err := db.Close(); err != nil {
			panic(fmt.Sprintf("E18 burst close: %v", err))
		}
		if rs.Exhausted != 0 || rs.Degraded {
			panic(fmt.Sprintf("E18 burst degraded under a pure-transient schedule: %+v", rs))
		}
		lost := lostAcks(dir, n+len(ingest))
		fmt.Printf("%8s %10d %10d %10d %10d %10d\n",
			"burst", ffs.Injected(), rs.Retried, rs.Exhausted, rs.Shed, lost)
		fmt.Printf("E18-METRIC leg=burst n=%d ops=%d injected=%.1f retried=%.1f exhausted=%.1f lostacks=%.1f\n",
			n, ops, float64(ffs.Injected()), float64(rs.Retried), float64(rs.Exhausted), float64(lost))
	}

	// Shed leg: async writes behind a small MaxBuffered cap with the
	// shed policy and no other drain trigger, so every cap hit is a
	// deterministic ErrBackpressure; the writer flushes and re-submits,
	// losing nothing. The same transient write-fault burst runs
	// underneath to show retry and backpressure compose.
	{
		dir := tmp + "/shed"
		ffs := vfs.NewFaultFS(vfs.OS, 19,
			vfs.Fault{Op: vfs.OpWriteAt, Every: 11},
		)
		db, err := core.Open(core.Options{Machine: cfg, Dynamic: true, Dir: dir,
			FS: ffs, Retry: vfs.RetryPolicy{Sleep: noSleep},
			AsyncWrites: true, FlushPoints: 1 << 20, FlushInterval: -1,
			MaxBuffered: 64, ShedWrites: true}, base)
		if err != nil {
			panic(fmt.Sprintf("E18 shed open: %v", err))
		}
		for _, p := range ingest {
			err := db.Insert(p)
			if errors.Is(err, core.ErrBackpressure) {
				if err := db.Flush(); err != nil {
					panic(fmt.Sprintf("E18 shed flush: %v", err))
				}
				err = db.Insert(p)
			}
			if err != nil {
				panic(fmt.Sprintf("E18 shed insert: %v", err))
			}
		}
		if err := db.Flush(); err != nil {
			panic(fmt.Sprintf("E18 shed checkpoint: %v", err))
		}
		rs := db.Resilience()
		if err := db.Close(); err != nil {
			panic(fmt.Sprintf("E18 shed close: %v", err))
		}
		if rs.Shed == 0 {
			panic("E18 shed leg never hit the cap: the backpressure path went unmeasured")
		}
		if rs.Exhausted != 0 || rs.Degraded {
			panic(fmt.Sprintf("E18 shed degraded under a pure-transient schedule: %+v", rs))
		}
		lost := lostAcks(dir, n+len(ingest))
		fmt.Printf("%8s %10d %10d %10d %10d %10d\n",
			"shed", ffs.Injected(), rs.Retried, rs.Exhausted, rs.Shed, lost)
		fmt.Printf("E18-METRIC leg=shed n=%d ops=%d injected=%.1f retried=%.1f shed=%.1f lostacks=%.1f\n",
			n, ops, float64(ffs.Injected()), float64(rs.Retried), float64(rs.Shed), float64(lost))
	}
}

func sortDurations(d []time.Duration) {
	for i := 1; i < len(d); i++ {
		for j := i; j > 0 && d[j] < d[j-1]; j-- {
			d[j], d[j-1] = d[j-1], d[j]
		}
	}
}
