// E19: the serving tier end to end — internal/serve behind a real
// HTTP listener, driven by internal/load (the same engine cmd/skyload
// runs). Three legs:
//
//   - mixed: read-heavy seeded workload against an in-memory sharded
//     namespace with measure_io on; the per-query simulated-I/O
//     percentiles are deterministic (closed loop, concurrency 1) and
//     gate strictly.
//   - zipf: the same workload with Zipf-skewed query anchors against a
//     cached namespace — the hot-spot case the cache exists for; the
//     percentiles gate strictly too.
//   - drain: write-heavy workload against a durable async namespace,
//     then a graceful server Close (drain + checkpoint) and a reopen of
//     the directory; lostacks counts acknowledged writes the reopened
//     index is missing, and its 0.0 baseline is the serving tier's
//     no-lost-acks contract under graceful shutdown.
//
// Wall-clock throughput/latency go to E19-WALL lines, which
// cmd/benchguard never gates (host-dependent).
package main

import (
	"fmt"
	"net/http/httptest"
	"os"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/load"
	"repro/internal/serve"
)

func e19() {
	fmt.Println("E19 serving tier: skylined over HTTP, seeded load, graceful-drain acks")
	fmt.Println("    internal/serve behind a real listener, driven by internal/load exactly")
	fmt.Println("    as cmd/skyload drives a production process. Simulated-I/O percentiles")
	fmt.Println("    and the drain leg's lostacks count are seeded and deterministic; wall")
	fmt.Println("    clock reports as E19-WALL (never gated).")

	ops := sizes([]int{4000}, []int{16000})[0]
	drainOps := sizes([]int{2000}, []int{8000})[0]
	span := int64(1 << 16)

	fmt.Printf("%8s %8s %8s %8s %8s %10s %10s\n",
		"leg", "ops", "iop50", "iop99", "iop999", "errors", "lostacks")

	// Mixed and zipf legs share one in-memory two-namespace server.
	{
		srv, err := serve.New(serve.Config{
			MeasureIO: true,
			Namespaces: map[string]serve.NamespaceConfig{
				"mixed": {B: cfg.B, M: cfg.M, Shards: 4, Workers: 4},
				"zipf":  {B: cfg.B, M: cfg.M, Shards: 4, Workers: 4, CacheEntries: 256},
			},
		})
		if err != nil {
			panic(fmt.Sprintf("E19 serve.New: %v", err))
		}
		hs := httptest.NewServer(srv.Handler())
		legs := []struct {
			name string
			zipf float64
		}{{"mixed", 0}, {"zipf", 1.3}}
		for _, leg := range legs {
			res, err := load.Run(load.Config{
				BaseURL:   hs.URL,
				Namespace: leg.name,
				Ops:       ops,
				Conc:      1,
				ReadFrac:  0.9,
				ZipfS:     leg.zipf,
				Span:      span,
				Seed:      191,
			})
			if err != nil {
				panic(fmt.Sprintf("E19 %s run: %v", leg.name, err))
			}
			if res.Errors > 0 {
				panic(fmt.Sprintf("E19 %s leg saw %d request errors", leg.name, res.Errors))
			}
			if len(res.IOs) == 0 {
				panic("E19 measure_io returned no per-query costs: the gated metrics would be vacuous")
			}
			fmt.Printf("%8s %8d %8d %8d %8d %10d %10s\n",
				leg.name, res.Ops, res.IOPercentile(50), res.IOPercentile(99),
				res.IOPercentile(99.9), res.Errors, "-")
			fmt.Printf("E19-METRIC leg=%s ops=%d conc=1 iop50=%.1f iop99=%.1f iop999=%.1f errors=%.1f\n",
				leg.name, res.Ops,
				float64(res.IOPercentile(50)), float64(res.IOPercentile(99)),
				float64(res.IOPercentile(99.9)), float64(res.Errors))
			fmt.Printf("E19-WALL leg=%s ops=%d qps=%.0f p50us=%.0f p99us=%.0f p999us=%.0f\n",
				leg.name, res.Ops, res.QPS(),
				float64(res.WallPercentile(50).Microseconds()),
				float64(res.WallPercentile(99).Microseconds()),
				float64(res.WallPercentile(99.9).Microseconds()))
		}
		hs.Close()
		if err := srv.Close(); err != nil {
			panic(fmt.Sprintf("E19 close: %v", err))
		}
	}

	// Drain leg: acknowledged writes must survive a graceful shutdown.
	{
		tmp, err := os.MkdirTemp("", "skybench-e19-")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(tmp)
		srv, err := serve.New(serve.Config{
			Namespaces: map[string]serve.NamespaceConfig{
				"drain": {B: cfg.B, M: cfg.M, Dir: tmp,
					AsyncWrites: true, FlushPoints: 128, FlushIntervalMS: -1},
			},
		})
		if err != nil {
			panic(fmt.Sprintf("E19 drain serve.New: %v", err))
		}
		hs := httptest.NewServer(srv.Handler())
		res, err := load.Run(load.Config{
			BaseURL:   hs.URL,
			Namespace: "drain",
			Ops:       drainOps,
			Conc:      1,
			ReadFrac:  0.3,
			Span:      span,
			Seed:      193,
		})
		if err != nil {
			panic(fmt.Sprintf("E19 drain run: %v", err))
		}
		if res.Errors > 0 {
			panic(fmt.Sprintf("E19 drain leg saw %d request errors", res.Errors))
		}
		// Graceful shutdown: listener first, then drain + checkpoint.
		hs.Close()
		if err := srv.Close(); err != nil {
			panic(fmt.Sprintf("E19 drain close: %v", err))
		}
		// Reopen the directory cold and diff against every acknowledged
		// write: the count must match, and a seeded sample must answer
		// point-membership queries.
		want := res.Expected()
		re, err := core.Open(core.Options{Machine: cfg, Dynamic: true, Dir: tmp}, nil)
		if err != nil {
			panic(fmt.Sprintf("E19 drain reopen: %v", err))
		}
		lost := len(want) - re.Len()
		probed := 0
		for p := range want {
			if probed >= 200 {
				break
			}
			probed++
			hit := re.RangeSkyline(geom.Rect{X1: p.X, X2: p.X, Y1: p.Y, Y2: p.Y})
			if len(hit) != 1 || hit[0] != p {
				panic(fmt.Sprintf("E19 drain: acknowledged insert %v missing after reopen", p))
			}
		}
		if err := re.Close(); err != nil {
			panic(err)
		}
		fmt.Printf("%8s %8d %8s %8s %8s %10d %10d\n",
			"drain", res.Ops, "-", "-", "-", res.Errors, lost)
		fmt.Printf("E19-METRIC leg=drain ops=%d acked=%d lostacks=%.1f errors=%.1f\n",
			res.Ops, len(want), float64(lost), float64(res.Errors))
	}
}
