// Command benchguard compares two skybench -json artifacts against the
// committed baseline. It is the benchstat-style gate of the CI bench
// job, with two severities:
//
//   - Warn-only (the default, and always the rule for wall-clock
//     comparisons): regressions surface as GitHub workflow warnings on
//     the job summary, because wall-clock on shared runners is noisy.
//   - Failing (-strict-io): the deterministic I/O metrics compare
//     exactly across hosts — a simulated block transfer does not care
//     what machine CI landed on — so a metric regression, or a metric
//     that vanished from the current run, is a real algorithmic
//     regression and exits non-zero with ::error:: annotations.
//
// Regardless of mode, a gate that compares NOTHING is a broken gate: a
// missing, malformed or empty baseline (for example a renamed
// BENCH_*.json, or an -e filter that matches no experiment) exits
// non-zero instead of silently passing. And a run that passes is not
// silent either: every performed comparison is printed as a delta table
// (baseline, current, relative change), so a green build still shows
// what moved.
//
// Two kinds of comparison, per experiment ID:
//
//   - Deterministic I/O metrics: any output line of the form
//     "<ID>-METRIC key=value ...". Fields with a decimal point are the
//     metrics (thm6=13.1 mirrored=4.0); every other field — strings and
//     integers alike — labels the measurement (shape=right-open
//     n=4096). Simulated block transfers do not depend on the host, so
//     these compare exactly across machines; a metric regression is a
//     real algorithmic regression.
//   - Wall-clock seconds, as a fallback for experiments that emit no
//     metric lines.
//
// Usage:
//
//	benchguard [-threshold 0.30] [-strict-io] baseline.json[,more.json...] current.json
//
// The baseline argument is a comma-separated list of artifact files
// merged by experiment ID — the committed BENCH_*.json files each
// carry one experiment, and one gate invocation covers them all. The
// same experiment in two baseline files is ambiguous and fails the
// run. Every row of the delta table names the baseline file its
// metric came from, so a regression message traces straight to the
// artifact to regenerate.
//
// Exit status: 0 when comparisons ran and (in -strict-io mode) no
// deterministic metric regressed; 1 for unreadable or malformed
// inputs, duplicate baseline experiments, zero performed comparisons,
// or strict-mode metric failures.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

var (
	flagThreshold = flag.Float64("threshold", 0.30, "relative regression that triggers a warning")
	flagStrictIO  = flag.Bool("strict-io", false,
		"fail (exit 1) on deterministic I/O-metric regressions and on baseline metrics missing from the current run; wall-clock comparisons stay warn-only")
)

// result mirrors cmd/skybench's -json record.
type result struct {
	ID      string  `json:"id"`
	Quick   bool    `json:"quick"`
	Seconds float64 `json:"seconds"`
	Output  string  `json:"output"`
}

// metric is one labelled measurement parsed from a METRIC line.
type metric struct {
	labels string // canonical "k=v k=v" string of the non-numeric fields
	values map[string]float64
}

// parseMetrics extracts "<ID>-METRIC" lines from an experiment's
// captured output, keyed by their label set.
func parseMetrics(id, output string) map[string]metric {
	out := make(map[string]metric)
	prefix := id + "-METRIC"
	for _, line := range strings.Split(output, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		var labels []string
		values := make(map[string]float64)
		for _, tok := range strings.Fields(line[len(prefix):]) {
			k, v, ok := strings.Cut(tok, "=")
			if !ok {
				continue
			}
			// Decimal point ⇒ metric; integers (like n=4096) and
			// strings are labels identifying the measurement.
			if f, err := strconv.ParseFloat(v, 64); err == nil && strings.Contains(v, ".") {
				values[k] = f
			} else {
				labels = append(labels, tok)
			}
		}
		if len(values) > 0 {
			key := strings.Join(labels, " ")
			out[key] = metric{labels: key, values: values}
		}
	}
	return out
}

func load(path string) (map[string]result, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []result
	if err := json.Unmarshal(blob, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]result, len(rs))
	for _, r := range rs {
		out[r.ID] = r
	}
	return out, nil
}

// sourced pairs a baseline record with the file it came from, so every
// delta row and regression message names its provenance.
type sourced struct {
	result
	file string
}

// loadBaselines merges a comma-separated list of baseline artifacts by
// experiment ID. The same experiment in two files would make "which
// baseline gated this" ambiguous, so duplicates are an error rather
// than a silent override.
func loadBaselines(arg string) (map[string]sourced, error) {
	out := make(map[string]sourced)
	for _, path := range strings.Split(arg, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		rs, err := load(path)
		if err != nil {
			return nil, err
		}
		for id, r := range rs {
			if prev, ok := out[id]; ok {
				return nil, fmt.Errorf("experiment %s in both %s and %s", id, prev.file, path)
			}
			out[id] = sourced{result: r, file: path}
		}
	}
	return out, nil
}

// warn prints a GitHub-Actions warning annotation (a plain line off CI).
func warn(format string, args ...any) {
	fmt.Printf("::warning::benchguard: "+format+"\n", args...)
}

// failed is set by fail; main exits non-zero when it is.
var failed bool

// fail prints a GitHub-Actions error annotation and marks the run
// failed. Deterministic-metric problems route here in -strict-io mode,
// and warn otherwise.
func fail(format string, args ...any) {
	failed = true
	fmt.Printf("::error::benchguard: "+format+"\n", args...)
}

// metricProblem reports a deterministic-metric regression or gap:
// failing in -strict-io mode, a warning otherwise.
func metricProblem(format string, args ...any) {
	if *flagStrictIO {
		fail(format, args...)
	} else {
		warn(format, args...)
	}
}

// regressed is the slack math of the metric gate: a regression needs
// BOTH a relative excursion beyond threshold AND an absolute movement
// of more than one printed-precision step (metrics print with >= 0.1
// granularity), so a near-zero baseline cannot trip on its last rounded
// digit — but nothing looser: these metrics are deterministic, and a
// wider slack would quietly exempt small baselines from the documented
// threshold contract.
func regressed(base, cur, threshold float64) bool {
	return cur > base*(1+threshold) && cur-base > 0.1
}

// deltaRow is one performed comparison, kept for the summary table.
// src is the baseline file the compared metric came from.
type deltaRow struct {
	id, labels, name, src string
	base, cur             float64
	bad                   bool
}

// printDelta renders every performed comparison — regressed or not — so
// a green run still shows exactly what moved and by how much, and from
// which baseline file, instead of passing silently.
func printDelta(rows []deltaRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Printf("%-4s %-44s %-10s %10s %10s %8s  %s\n",
		"exp", "labels", "metric", "baseline", "current", "delta", "source")
	for _, r := range rows {
		delta := "0.0%"
		switch {
		case r.base != 0:
			delta = fmt.Sprintf("%+.1f%%", 100*(r.cur/r.base-1))
		case r.cur != 0:
			delta = "new"
		}
		mark := ""
		if r.bad {
			mark = "  <-- regressed"
		}
		fmt.Printf("%-4s %-44s %-10s %10.2f %10.2f %8s  %s%s\n",
			r.id, r.labels, r.name, r.base, r.cur, delta, r.src, mark)
	}
}

func main() {
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchguard [-threshold 0.30] baseline.json[,more.json...] current.json")
		os.Exit(1)
	}
	baseline, err := loadBaselines(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
	current, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
	compared, regressions := 0, 0
	var table []deltaRow
	for id, base := range baseline {
		cur, ok := current[id]
		if !ok {
			metricProblem("experiment %s (baseline %s) missing from current run", id, base.file)
			continue
		}
		if base.Quick != cur.Quick {
			warn("experiment %s: baseline %s quick=%t vs current quick=%t; comparison skipped",
				id, base.file, base.Quick, cur.Quick)
			continue
		}
		bm, cm := parseMetrics(id, base.Output), parseMetrics(id, cur.Output)
		if len(bm) == 0 {
			// Fallback: wall clock, host-dependent and noisy — hence
			// warn-only by design.
			compared++
			bad := cur.Seconds > base.Seconds*(1+*flagThreshold)
			table = append(table, deltaRow{
				id: id, labels: "(wall clock)", name: "seconds", src: base.file,
				base: base.Seconds, cur: cur.Seconds, bad: bad,
			})
			if bad {
				regressions++
				warn("%s wall clock %.2fs vs baseline %.2fs (%s, +%.0f%%)",
					id, cur.Seconds, base.Seconds, base.file, 100*(cur.Seconds/base.Seconds-1))
			}
			continue
		}
		for key, b := range bm {
			c, ok := cm[key]
			if !ok {
				metricProblem("%s metric line [%s] (baseline %s) missing from current run", id, key, base.file)
				continue
			}
			for name, bv := range b.values {
				cv, ok := c.values[name]
				if !ok {
					metricProblem("%s [%s] metric %s (baseline %s) missing from current run", id, key, name, base.file)
					continue
				}
				compared++
				bad := regressed(bv, cv, *flagThreshold)
				table = append(table, deltaRow{id: id, labels: key, name: name, src: base.file, base: bv, cur: cv, bad: bad})
				if bad {
					regressions++
					metricProblem("%s [%s] %s=%.2f vs baseline %.2f (%s, +%.0f%%)",
						id, key, name, cv, bv, base.file, 100*(cv/bv-1))
				}
			}
		}
	}
	sort.Slice(table, func(i, j int) bool {
		if table[i].id != table[j].id {
			return table[i].id < table[j].id
		}
		if table[i].labels != table[j].labels {
			return table[i].labels < table[j].labels
		}
		return table[i].name < table[j].name
	})
	printDelta(table)
	if compared == 0 {
		// A renamed baseline, an empty artifact or a filter matching
		// nothing would otherwise disable the gate without a trace.
		fail("no comparisons performed: baseline %s provides nothing to compare against %s",
			flag.Arg(0), flag.Arg(1))
	}
	mode := "warn-only"
	if *flagStrictIO {
		mode = "strict-io"
	}
	fmt.Printf("benchguard: %d comparisons, %d regressions beyond %.0f%% (%s)\n",
		compared, regressions, 100**flagThreshold, mode)
	if failed {
		os.Exit(1)
	}
}
