package main

import "testing"

// TestRegressedSlack pins the metric gate's slack math: a regression
// needs BOTH a relative excursion beyond the threshold AND an absolute
// movement beyond one printed-precision step (0.1), so sub-1.0 metrics
// can regress on real movement but not on their last rounded digit.
func TestRegressedSlack(t *testing.T) {
	const threshold = 0.30
	cases := []struct {
		name      string
		base, cur float64
		want      bool
	}{
		{"clear regression", 10, 13.5, true},
		{"exactly at threshold is not beyond it", 10, 13, false},
		{"under threshold", 10, 12.9, false},
		{"improvement", 10, 7, false},
		{"equal", 10, 10, false},
		// The absolute floor: big relative jumps on tiny baselines are
		// rounding noise until they move a full printed step.
		{"tiny baseline, tiny absolute move", 0.01, 0.05, false},
		{"tiny baseline, barely one step", 0.01, 0.11, false}, // 0.10 not > 0.1
		{"tiny baseline, real move", 0.01, 0.25, true},
		{"zero baseline, sub-step current", 0, 0.1, false},
		{"zero baseline, real current", 0, 0.2, true},
		// Sub-1.0 metrics (miss rates, drain fractions) must still be
		// able to regress — the reason the floor is one step and no
		// looser.
		{"missrate 0.30 to 0.45", 0.30, 0.45, true},
		{"missrate 0.30 to 0.38", 0.30, 0.38, false}, // abs 0.08 < 0.1
		{"drainfrac 0.60 to 0.95", 0.60, 0.95, true},
	}
	for _, c := range cases {
		if got := regressed(c.base, c.cur, threshold); got != c.want {
			t.Errorf("%s: regressed(%v, %v, %v) = %t, want %t",
				c.name, c.base, c.cur, threshold, got, c.want)
		}
	}
	// A wider threshold widens the relative gate but not the floor.
	if regressed(10, 14, 0.50) {
		t.Error("regressed(10, 14, 0.50) = true, want false (40% < 50%)")
	}
	if !regressed(10, 16, 0.50) {
		t.Error("regressed(10, 16, 0.50) = false, want true")
	}
}

// TestParseMetrics pins the METRIC-line grammar: fields with a decimal
// point are metrics, everything else (strings AND integers) labels the
// measurement, and lines of other experiments are ignored.
func TestParseMetrics(t *testing.T) {
	out := `E15 async update queue
E15-METRIC mix=writeheavy mode=queued n=4096 ios=25.24 drainfrac=0.7719 forced=1116.0
E15-METRIC mix=mixed mode=sync n=4096 ios=16.97
E14-METRIC mix=zipf entries=64 missrate=0.1 ios=2.0
not a metric line
E15-METRIC malformed-no-values mix=writeheavy
`
	ms := parseMetrics("E15", out)
	if len(ms) != 2 {
		t.Fatalf("parsed %d metric lines, want 2 (got %v)", len(ms), ms)
	}
	m, ok := ms["mix=writeheavy mode=queued n=4096"]
	if !ok {
		t.Fatalf("label key missing; keys: %v", ms)
	}
	if m.values["ios"] != 25.24 || m.values["drainfrac"] != 0.7719 || m.values["forced"] != 1116.0 {
		t.Fatalf("values = %v", m.values)
	}
	if _, ok := m.values["n"]; ok {
		t.Fatal("integer field n=4096 parsed as a metric, want label")
	}
	if _, ok := ms["mix=mixed mode=sync n=4096"]; !ok {
		t.Fatalf("second line missing; keys: %v", ms)
	}
}
