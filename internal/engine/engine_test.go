package engine

import (
	"strings"
	"testing"

	"repro/internal/emio"
	"repro/internal/geom"
)

func TestClassify(t *testing.T) {
	ni, pi := geom.NegInf, geom.PosInf
	cases := []struct {
		r    geom.Rect
		want Shape
	}{
		{geom.TopOpen(1, 9, 3), TopOpenShape},
		{geom.RightOpen(1, 2, 8), RightOpenShape},
		{geom.BottomOpen(1, 9, 5), BottomOpenShape},
		{geom.LeftOpen(7, 2, 8), LeftOpenShape},
		{geom.Dominance(4, 4), DominanceShape},
		{geom.AntiDominance(4, 4), AntiDominanceShape},
		{geom.Contour(6), ContourShape},
		{geom.Rect{X1: 1, X2: 9, Y1: 2, Y2: 8}, FourSided},
		{geom.Rect{X1: ni, X2: pi, Y1: ni, Y2: pi}, WholePlane},
		// Unnamed grounded combinations fall back by top edge.
		{geom.Rect{X1: ni, X2: pi, Y1: 2, Y2: pi}, TopOpenShape},
		{geom.Rect{X1: ni, X2: pi, Y1: 2, Y2: 8}, FourSided},
		{geom.Rect{X1: ni, X2: 9, Y1: 2, Y2: pi}, TopOpenShape},
	}
	for _, c := range cases {
		if got := Classify(c.r); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.r, got, c.want)
		}
	}
}

func TestTopOpenFamilyMatchesIsTopOpen(t *testing.T) {
	ni, pi := geom.NegInf, geom.PosInf
	rects := []geom.Rect{
		geom.TopOpen(1, 9, 3), geom.RightOpen(1, 2, 8), geom.BottomOpen(1, 9, 5),
		geom.LeftOpen(7, 2, 8), geom.Dominance(4, 4), geom.AntiDominance(4, 4),
		geom.Contour(6), {X1: 1, X2: 9, Y1: 2, Y2: 8}, {X1: ni, X2: pi, Y1: ni, Y2: pi},
	}
	for _, r := range rects {
		if got := Classify(r).TopOpenFamily(); got != r.IsTopOpen() {
			t.Errorf("%v: TopOpenFamily() = %t, IsTopOpen() = %t", r, got, r.IsTopOpen())
		}
	}
}

// fakeBackend records calls; presence is driven by the pts set.
type fakeBackend struct {
	name    string
	pts     map[geom.Point]bool
	inserts []geom.Point
	deletes []geom.Point
	batches int
}

func newFake(name string, pts ...geom.Point) *fakeBackend {
	f := &fakeBackend{name: name, pts: map[geom.Point]bool{}}
	for _, p := range pts {
		f.pts[p] = true
	}
	return f
}

func (f *fakeBackend) RangeSkyline(geom.Rect) []geom.Point { return nil }
func (f *fakeBackend) Insert(p geom.Point) error {
	f.inserts = append(f.inserts, p)
	f.pts[p] = true
	return nil
}
func (f *fakeBackend) Delete(p geom.Point) (bool, error) {
	if !f.pts[p] {
		return false, nil
	}
	delete(f.pts, p)
	f.deletes = append(f.deletes, p)
	return true, nil
}
func (f *fakeBackend) BatchInsert(pts []geom.Point) error {
	f.batches++
	for _, p := range pts {
		f.pts[p] = true
	}
	return nil
}
func (f *fakeBackend) BatchDelete(pts []geom.Point) (int, error) {
	f.batches++
	removed := 0
	for _, p := range pts {
		if f.pts[p] {
			delete(f.pts, p)
			removed++
		}
	}
	return removed, nil
}
func (f *fakeBackend) Stats() emio.Stats { return emio.Stats{} }
func (f *fakeBackend) ResetStats()       {}

func TestRoute(t *testing.T) {
	top, gen := newFake("top"), newFake("gen")
	var pl Planner
	pl.RegisterTopOpen(top)
	pl.RegisterGeneral(gen)
	if b := pl.Route(geom.TopOpen(1, 9, 3)); b != Backend(top) {
		t.Fatalf("top-open routed to %v", b)
	}
	if b := pl.Route(geom.Dominance(4, 4)); b != Backend(top) {
		t.Fatalf("dominance routed to %v", b)
	}
	if b := pl.Route(geom.LeftOpen(7, 2, 8)); b != Backend(gen) {
		t.Fatalf("left-open routed to %v", b)
	}
	if b := pl.Route(geom.Rect{X1: 1, X2: 9, Y1: 2, Y2: 8}); b != Backend(gen) {
		t.Fatalf("4-sided routed to %v", b)
	}

	// With only a general backend, everything routes there.
	var solo Planner
	solo.RegisterGeneral(gen)
	if b := solo.Route(geom.TopOpen(1, 9, 3)); b != Backend(gen) {
		t.Fatalf("solo top-open routed to %v", b)
	}
	if got := len(solo.Backends()); got != 1 {
		t.Fatalf("solo backends = %d, want 1", got)
	}
}

func TestRegisterSameBackendOnce(t *testing.T) {
	b := newFake("both", geom.Point{X: 1, Y: 1})
	var pl Planner
	pl.RegisterTopOpen(b)
	pl.RegisterGeneral(b)
	if got := len(pl.Backends()); got != 1 {
		t.Fatalf("backends = %d, want 1 (same backend registered twice)", got)
	}
	// A delete must only reach the backend once.
	if ok, err := pl.Delete(geom.Point{X: 1, Y: 1}); !ok || err != nil {
		t.Fatalf("Delete = %t, %v", ok, err)
	}
}

func TestDeletePresenceCheckFirst(t *testing.T) {
	p := geom.Point{X: 5, Y: 5}
	primary := newFake("primary") // does NOT hold p
	secondary := newFake("secondary", p)
	var pl Planner
	pl.RegisterTopOpen(primary)
	pl.RegisterGeneral(secondary)

	ok, err := pl.Delete(p)
	if ok || err != nil {
		t.Fatalf("Delete = %t, %v; want miss without error", ok, err)
	}
	// The miss must not have mutated the secondary backend.
	if !secondary.pts[p] {
		t.Fatalf("secondary backend mutated on a primary miss")
	}
	if len(secondary.deletes) != 0 {
		t.Fatalf("secondary saw %d deletes, want 0", len(secondary.deletes))
	}
}

func TestDeleteDisagreementReported(t *testing.T) {
	p := geom.Point{X: 5, Y: 5}
	primary := newFake("primary", p)
	secondary := newFake("secondary") // corrupted: lost p
	var pl Planner
	pl.RegisterTopOpen(primary)
	pl.RegisterGeneral(secondary)
	ok, err := pl.Delete(p)
	if err == nil || !strings.Contains(err.Error(), "disagree") {
		t.Fatalf("Delete err = %v, want disagreement", err)
	}
	// The primary did remove the point; the bool must say so even
	// alongside the error, so callers keep size accounting consistent.
	if !ok {
		t.Fatal("Delete reported false although the primary removed the point")
	}
}

func TestBatchFanOut(t *testing.T) {
	a, b := newFake("a"), newFake("b")
	var pl Planner
	pl.RegisterTopOpen(a)
	pl.RegisterGeneral(b)
	pts := []geom.Point{{X: 1, Y: 4}, {X: 2, Y: 3}, {X: 3, Y: 9}}
	if err := pl.BatchInsert(pts); err != nil {
		t.Fatal(err)
	}
	if a.batches != 1 || b.batches != 1 {
		t.Fatalf("batches a=%d b=%d, want 1 each", a.batches, b.batches)
	}
	removed, err := pl.BatchDelete(append(pts, geom.Point{X: 9, Y: 9}))
	if err != nil || removed != len(pts) {
		t.Fatalf("BatchDelete = %d, %v; want %d", removed, err, len(pts))
	}
	if len(a.pts) != 0 || len(b.pts) != 0 {
		t.Fatalf("points left after batch delete: a=%d b=%d", len(a.pts), len(b.pts))
	}
}

func TestBatchDeleteDisagreementReported(t *testing.T) {
	p := geom.Point{X: 5, Y: 5}
	a := newFake("a", p)
	b := newFake("b")
	var pl Planner
	pl.RegisterTopOpen(a)
	pl.RegisterGeneral(b)
	removed, err := pl.BatchDelete([]geom.Point{p})
	if err == nil || !strings.Contains(err.Error(), "disagree") {
		t.Fatalf("BatchDelete err = %v, want disagreement", err)
	}
	// The primary's removal count survives the error.
	if removed != 1 {
		t.Fatalf("BatchDelete removed = %d, want 1 alongside the error", removed)
	}
}
