package engine

import (
	"errors"
	"testing"
	"time"

	"repro/internal/geom"
)

// memLog is an in-memory UpdateLog: it records batches, and can be
// made to fail to pin the write-ahead rule.
type memLog struct {
	batches []memBatch
	err     error
}

type memBatch struct {
	dels, inss []geom.Point
}

func (m *memLog) LogBatch(dels, inss []geom.Point) error {
	if m.err != nil {
		return m.err
	}
	m.batches = append(m.batches, memBatch{
		dels: append([]geom.Point(nil), dels...),
		inss: append([]geom.Point(nil), inss...),
	})
	return nil
}

// TestLogBackendWriteAhead: every mutation appends exactly one record,
// and a failed append means the structures never see the write — the
// write-ahead rule in both directions.
func TestLogBackendWriteAhead(t *testing.T) {
	inner := newFake("inner")
	ml := &memLog{}
	lb := NewLogBackend(inner, ml, nil)

	p1, p2, p3 := geom.Point{X: 1, Y: 9}, geom.Point{X: 2, Y: 8}, geom.Point{X: 3, Y: 7}
	if err := lb.Insert(p1); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := lb.BatchInsert([]geom.Point{p2, p3}); err != nil {
		t.Fatalf("BatchInsert: %v", err)
	}
	if ok, err := lb.Delete(p2); !ok || err != nil {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if len(ml.batches) != 3 {
		t.Fatalf("logged %d batches, want 3", len(ml.batches))
	}
	if len(ml.batches[2].dels) != 1 || ml.batches[2].dels[0] != p2 {
		t.Fatalf("delete batch = %+v", ml.batches[2])
	}

	// A failing log blocks the apply entirely.
	ml.err = errors.New("disk full")
	preIns, preDel := len(inner.inserts), len(inner.deletes)
	if err := lb.Insert(geom.Point{X: 4, Y: 6}); err == nil {
		t.Fatalf("Insert with failing log succeeded")
	}
	if _, err := lb.Delete(p1); err == nil {
		t.Fatalf("Delete with failing log succeeded")
	}
	if err := lb.BatchInsert([]geom.Point{{X: 5, Y: 5}}); err == nil {
		t.Fatalf("BatchInsert with failing log succeeded")
	}
	if _, err := lb.BatchDelete([]geom.Point{p1}); err == nil {
		t.Fatalf("BatchDelete with failing log succeeded")
	}
	if len(inner.inserts) != preIns || len(inner.deletes) != preDel {
		t.Fatalf("unlogged writes reached the structures")
	}
	if lb.Live() != 2 {
		t.Fatalf("Live = %d after rejected writes, want 2", lb.Live())
	}
}

// TestLogBackendDeleteMissLogged: a delete miss is still logged (the
// log cannot know presence), returns false, and leaves the live set
// alone — replaying the spurious record is a no-op.
func TestLogBackendDeleteMissLogged(t *testing.T) {
	inner := newFake("inner")
	ml := &memLog{}
	lb := NewLogBackend(inner, ml, nil)
	if ok, err := lb.Delete(geom.Point{X: 9, Y: 9}); ok || err != nil {
		t.Fatalf("Delete miss = %v, %v", ok, err)
	}
	if len(ml.batches) != 1 {
		t.Fatalf("miss not logged")
	}
	if lb.Live() != 0 {
		t.Fatalf("Live = %d after miss", lb.Live())
	}
}

// TestLogBackendLiveSetAndCheckpoint: the live set tracks applied
// writes exactly, and Checkpoint hands fn the x-sorted set.
func TestLogBackendLiveSetAndCheckpoint(t *testing.T) {
	inner := newFake("inner")
	initial := []geom.Point{{X: 10, Y: 1}, {X: 20, Y: 2}}
	lb := NewLogBackend(inner, &memLog{}, initial)
	inner.BatchInsert(initial) // inner holds the initial set too

	lb.Insert(geom.Point{X: 5, Y: 3})
	lb.BatchInsert([]geom.Point{{X: 30, Y: 4}, {X: 15, Y: 5}})
	if n, err := lb.BatchDelete([]geom.Point{{X: 20, Y: 2}, {X: 99, Y: 99}}); n != 1 || err != nil {
		t.Fatalf("BatchDelete = %d, %v", n, err)
	}
	want := []geom.Point{{X: 5, Y: 3}, {X: 10, Y: 1}, {X: 15, Y: 5}, {X: 30, Y: 4}}
	if lb.Live() != len(want) {
		t.Fatalf("Live = %d, want %d", lb.Live(), len(want))
	}
	var got []geom.Point
	if err := lb.Checkpoint(func(live []geom.Point) error {
		got = append(got, live...)
		return nil
	}); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("checkpoint has %d points, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("checkpoint[%d] = %v, want %v (x-sorted)", i, got[i], want[i])
		}
	}
}

// TestLogBackendReplayDoesNotRelog: recovery's Replay applies records
// to the structures and the live set without appending them again —
// otherwise every recovery would double the log.
func TestLogBackendReplayDoesNotRelog(t *testing.T) {
	inner := newFake("inner", geom.Point{X: 1, Y: 1})
	ml := &memLog{}
	lb := NewLogBackend(inner, ml, []geom.Point{{X: 1, Y: 1}})
	hits, err := lb.Replay(
		[]geom.Point{{X: 1, Y: 1}, {X: 7, Y: 7}}, // second is a miss
		[]geom.Point{{X: 2, Y: 2}, {X: 3, Y: 3}},
	)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if hits != 1 {
		t.Fatalf("Replay hits = %d, want 1", hits)
	}
	if len(ml.batches) != 0 {
		t.Fatalf("Replay logged %d batches", len(ml.batches))
	}
	if lb.Live() != 2 {
		t.Fatalf("Live after replay = %d, want 2", lb.Live())
	}
	if !inner.pts[geom.Point{X: 2, Y: 2}] || inner.pts[geom.Point{X: 1, Y: 1}] {
		t.Fatalf("replayed record not applied to inner")
	}
}

// TestLearnCutsWalksLogBackend: a LogBackend between the queue and a
// partitioned engine must be transparent to cut discovery — otherwise
// the queue in a durable stack degrades to a single slab.
func TestLearnCutsWalksLogBackend(t *testing.T) {
	part := &fakePartitioned{cuts: []geom.Coord{10, 20, 30}}
	lb := NewLogBackend(part, &memLog{}, nil)
	xcuts, _ := learnCuts(lb)
	if len(xcuts) != 3 {
		t.Fatalf("learnCuts through LogBackend found %d cuts, want 3", len(xcuts))
	}
}

// fakePartitioned is a fakeBackend that also reports partition cuts.
type fakePartitioned struct {
	fakeBackend
	cuts []geom.Coord
}

func (f *fakePartitioned) Cuts() []geom.Coord { return f.cuts }

// errBackend fails every batched apply with a programmable error.
type errBackend struct {
	fakeBackend
	err error
}

func (e *errBackend) BatchInsert([]geom.Point) error        { return e.err }
func (e *errBackend) BatchDelete([]geom.Point) (int, error) { return 0, e.err }

// TestQueueStickyFirstError: a drain error from a path whose caller
// cannot see it (drain-on-read) is latched and surfaced by the next
// Flush — and keeps being surfaced: Len-style callers discard Flush's
// return, so the latch must never clear. First error wins.
func TestQueueStickyFirstError(t *testing.T) {
	errA, errB := errors.New("apply failed A"), errors.New("apply failed B")
	inner := &errBackend{err: errA}
	inner.pts = map[geom.Point]bool{}
	q, err := NewAsyncQueue(inner, QueueOptions{FlushInterval: -1 * time.Millisecond, FlushPoints: 1 << 20})
	if err != nil {
		t.Fatalf("NewAsyncQueue: %v", err)
	}
	if err := q.Insert(geom.Point{X: 1, Y: 1}); err != nil {
		t.Fatalf("Insert (buffered) errored: %v", err)
	}
	// Drain-on-read hits the failing backend; RangeSkyline has no error
	// return, so without the latch the failure would vanish here.
	q.RangeSkyline(geom.Rect{X1: geom.NegInf, X2: geom.PosInf, Y1: geom.NegInf, Y2: geom.PosInf})
	if got := q.Err(); !errors.Is(got, errA) {
		t.Fatalf("Err after failed drain-on-read = %v, want %v", got, errA)
	}
	if got := q.Flush(); !errors.Is(got, errA) {
		t.Fatalf("Flush = %v, want latched %v", got, errA)
	}

	// Later, different failures do not displace the first…
	inner.err = errB
	q.Insert(geom.Point{X: 2, Y: 2})
	if got := q.Flush(); !errors.Is(got, errA) {
		t.Fatalf("Flush after second failure = %v, want first error %v", got, errA)
	}
	// …and a clean pass does not clear it: the latch is permanent.
	inner.err = nil
	if got := q.Flush(); !errors.Is(got, errA) {
		t.Fatalf("Flush after clean pass = %v, want latched %v", got, errA)
	}
	if got := q.Close(); !errors.Is(got, errA) {
		t.Fatalf("Close = %v, want latched %v", got, errA)
	}
}
