package engine_test

import (
	"errors"
	"testing"

	"repro/internal/engine"
	"repro/internal/geom"
)

// Admission-control tests: the MaxBuffered cap on the async queue's
// slab buffers, under both overflow policies (shed with a typed
// ErrBackpressure; block by draining the writer's own slab inline),
// and the freeze-on-fatal interaction when the inline drain fails.

// capped returns queue options with a MaxBuffered cap and no other
// drain trigger (huge FlushPoints, no background drainer).
func capped(max int, shed bool) engine.QueueOptions {
	return engine.QueueOptions{FlushPoints: 1 << 20, FlushInterval: -1, MaxBuffered: max, ShedWrites: shed}
}

func bp(i int) geom.Point { return geom.Point{X: geom.Coord(10 * i), Y: geom.Coord(1000 - i)} }

func TestQueueShedPolicy(t *testing.T) {
	fake := newFake("shed")
	q, err := engine.NewAsyncQueue(fake, capped(2, true))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if err := q.Insert(bp(1)); err != nil {
		t.Fatalf("Insert under cap: %v", err)
	}
	if err := q.Insert(bp(2)); err != nil {
		t.Fatalf("Insert at cap: %v", err)
	}
	if err := q.Insert(bp(3)); !errors.Is(err, engine.ErrBackpressure) {
		t.Fatalf("Insert over cap = %v, want ErrBackpressure", err)
	}
	c := q.Counters()
	if c.Shed != 1 || c.Blocked != 0 || c.Enqueued != 2 {
		t.Fatalf("Counters = %+v, want Shed 1, Enqueued 2 (a shed write is never accepted)", c)
	}
	// A state transition of an already-buffered point adds no depth and
	// is admitted at the cap: deleting buffered bp(1) coalesces the pair
	// away, freeing a slot.
	if _, err := q.Delete(bp(1)); err != nil {
		t.Fatalf("Delete of buffered point at cap: %v", err)
	}
	if err := q.Insert(bp(3)); err != nil {
		t.Fatalf("Insert after coalesce freed a slot: %v", err)
	}
	// Draining empties the slab and lifts the cap.
	if err := q.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := q.Insert(bp(4)); err != nil {
		t.Fatalf("Insert after Flush: %v", err)
	}
	if !fake.pts[bp(2)] || !fake.pts[bp(3)] || fake.pts[bp(1)] {
		t.Fatalf("drained state wrong: %v", fake.pts)
	}
}

func TestQueueBlockPolicy(t *testing.T) {
	fake := newFake("block")
	q, err := engine.NewAsyncQueue(fake, capped(2, false))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	for i := 1; i <= 2; i++ {
		if err := q.Insert(bp(i)); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	// The third write hits the cap, drains its own slab inline, and is
	// then admitted — backpressure as latency, not as an error.
	if err := q.Insert(bp(3)); err != nil {
		t.Fatalf("Insert over cap under block policy: %v", err)
	}
	c := q.Counters()
	if c.Blocked != 1 || c.Shed != 0 || c.Enqueued != 3 {
		t.Fatalf("Counters = %+v, want Blocked 1, Enqueued 3", c)
	}
	if got := q.Buffered(); got != 1 {
		t.Fatalf("Buffered = %d, want 1 (only the just-admitted write)", got)
	}
	if got := q.AppliedDelta(); got != 2 {
		t.Fatalf("AppliedDelta = %d, want the 2 inline-drained inserts", got)
	}
	if !fake.pts[bp(1)] || !fake.pts[bp(2)] {
		t.Fatalf("inline drain did not apply: %v", fake.pts)
	}
}

func TestQueueBlockPolicyDegraded(t *testing.T) {
	fb := &failBackend{fakeBackend: newFake("fail")}
	q, err := engine.NewAsyncQueue(fb, capped(1, false))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if err := q.Insert(bp(1)); err != nil {
		t.Fatal(err)
	}
	fb.fail = errors.New("disk on fire")
	// The blocked writer's inline drain fails: the write is rejected
	// with ErrDegraded instead of spinning on a frozen, forever-full
	// slab.
	err = q.Insert(bp(2))
	if !errors.Is(err, engine.ErrDegraded) {
		t.Fatalf("Insert with failing inline drain = %v, want ErrDegraded", err)
	}
	if c := q.Counters(); c.Blocked != 1 {
		t.Fatalf("Counters = %+v, want Blocked 1", c)
	}
	// The queue is frozen: every further write is rejected under the
	// same sentinel, the sticky error persists, and nothing was applied
	// (the failed batch is abandoned whole — crash semantics: an
	// undrained write is unacknowledged).
	if err := q.Insert(bp(3)); !errors.Is(err, engine.ErrDegraded) {
		t.Fatalf("Insert on frozen queue = %v, want ErrDegraded", err)
	}
	if q.Err() == nil {
		t.Fatal("sticky drain error cleared")
	}
	if got := q.AppliedDelta(); got != 0 {
		t.Fatalf("AppliedDelta = %d after failed drain, want 0", got)
	}
	if len(fb.pts) != 0 {
		t.Fatalf("failed drain applied points: %v", fb.pts)
	}
	// Flush and Close keep surfacing the sticky error.
	if err := q.Flush(); err == nil {
		t.Fatal("Flush on frozen queue returned nil, want the sticky error")
	}
	if err := q.Close(); err == nil {
		t.Fatal("Close on frozen queue returned nil")
	}
}

func TestQueueShedPolicyDegradedWins(t *testing.T) {
	// A frozen queue rejects with ErrDegraded even under the shed
	// policy: degradation is checked before admission, so callers see
	// the fatal condition, not a retryable-looking ErrBackpressure.
	fb := &failBackend{fakeBackend: newFake("fail")}
	q, err := engine.NewAsyncQueue(fb, capped(1, true))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if err := q.Insert(bp(1)); err != nil {
		t.Fatal(err)
	}
	fb.fail = errors.New("disk on fire")
	if err := q.Flush(); err == nil {
		t.Fatal("Flush through failing backend succeeded")
	}
	err = q.Insert(bp(2))
	if !errors.Is(err, engine.ErrDegraded) || errors.Is(err, engine.ErrBackpressure) {
		t.Fatalf("Insert on frozen shed-policy queue = %v, want ErrDegraded (not ErrBackpressure)", err)
	}
	if c := q.Counters(); c.Shed != 0 {
		t.Fatalf("Counters = %+v: a degraded rejection must not count as shed", c)
	}
}

// failBackend wraps fakeBackend with switchable batch-path failures —
// the queue only ever drains through the batched paths.
type failBackend struct {
	*fakeBackend
	fail error
}

func (f *failBackend) BatchInsert(pts []geom.Point) error {
	if f.fail != nil {
		return f.fail
	}
	return f.fakeBackend.BatchInsert(pts)
}

func (f *failBackend) BatchDelete(pts []geom.Point) (int, error) {
	if f.fail != nil {
		return 0, f.fail
	}
	return f.fakeBackend.BatchDelete(pts)
}
