package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dyntop"
	"repro/internal/emio"
	"repro/internal/extsort"
	"repro/internal/foursided"
	"repro/internal/geom"
	"repro/internal/topopen"
)

var mirrorCfg = emio.Config{B: 32, M: 32 * 32}

// buildMirror returns a transpose mirror over pts: a dyntop tree on its
// own disk, indexing the reflected point set.
func buildMirror(t *testing.T, pts []geom.Point) (*MirrorBackend, *emio.Disk) {
	t.Helper()
	ref := geom.ReflectSwapXY
	mpts := ref.Pts(pts)
	geom.SortByX(mpts)
	d := emio.NewDisk(mirrorCfg)
	m, err := NewMirror(ref, NewDynTop(dyntop.BuildSABE(d, 0.5, mpts), d))
	if err != nil {
		t.Fatal(err)
	}
	return m, d
}

// TestNewMirrorRejectsUnsoundReflections pins the dominance gate: the
// reflections that would serve bottom-open / left-open / anti-dominance
// rectangles are exactly the ones that compute the wrong staircase, and
// NewMirror refuses to build them (Theorem 5 says any correct structure
// for those shapes pays Ω((n/B)^ε) at linear space).
func TestNewMirrorRejectsUnsoundReflections(t *testing.T) {
	d := emio.NewDisk(mirrorCfg)
	inner := NewDynTop(dyntop.BuildSABE(d, 0.5, nil), d)
	for _, ref := range []geom.Reflection{geom.ReflectNegY, geom.ReflectAntiTranspose} {
		if _, err := NewMirror(ref, inner); err == nil {
			t.Fatalf("NewMirror(%v) should refuse a dominance-breaking reflection", ref)
		}
	}
	if _, err := NewMirror(geom.ReflectSwapXY, inner); err != nil {
		t.Fatalf("NewMirror(swap-xy): %v", err)
	}
}

// TestMirrorAnswersGroundedRightFamily cross-checks the mirror against
// the oracle and a Theorem 6 structure on every grounded-right-edge
// rectangle shape, including after updates flow through both.
func TestMirrorAnswersGroundedRightFamily(t *testing.T) {
	const n = 250
	span := geom.Coord(n * 16)
	for seed := int64(0); seed < 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			all := geom.GenUniform(n+80, span, seed+2100)
			pts := append([]geom.Point(nil), all[:n]...)
			pool := all[n:]
			geom.SortByX(pts)
			m, _ := buildMirror(t, pts)
			four := foursided.Build(emio.NewDisk(mirrorCfg), 0.5, pts)
			ref := append([]geom.Point(nil), pts...)

			rng := rand.New(rand.NewSource(seed))
			check := func(q geom.Rect, ctx string) {
				t.Helper()
				if !m.Serves(q) {
					t.Fatalf("%s: mirror should serve %v", ctx, q)
				}
				got := m.RangeSkyline(q)
				want := four.Query(q)
				oracle := geom.RangeSkyline(ref, q)
				if len(got) != len(want) || len(got) != len(oracle) {
					t.Fatalf("%s %v: mirror %v, foursided %v, oracle %v", ctx, q, got, want, oracle)
				}
				for i := range got {
					if got[i] != want[i] || got[i] != oracle[i] {
						t.Fatalf("%s %v: point %d mirror %v, foursided %v, oracle %v",
							ctx, q, i, got[i], want[i], oracle[i])
					}
				}
			}
			queries := func(round int) {
				for i := 0; i < 30; i++ {
					x := rng.Int63n(span)
					y1 := rng.Int63n(span)
					y2 := y1 + rng.Int63n(span/2+1)
					ctx := fmt.Sprintf("round=%d i=%d", round, i)
					check(geom.RightOpen(x, y1, y2), ctx+" right-open")
					// Right+bottom grounded quadrant [x,∞) × (-∞,y2].
					check(geom.Rect{X1: x, X2: geom.PosInf, Y1: geom.NegInf, Y2: y2}, ctx+" lower-right")
					// Horizontal band (-∞,∞) × [y1,y2].
					check(geom.Rect{X1: geom.NegInf, X2: geom.PosInf, Y1: y1, Y2: y2}, ctx+" band")
					// Horizontal contour (-∞,∞) × (-∞,y2].
					check(geom.Rect{X1: geom.NegInf, X2: geom.PosInf, Y1: geom.NegInf, Y2: y2}, ctx+" h-contour")
				}
			}
			queries(0)
			// Updates: single-point and batched, fanned to mirror and
			// Theorem 6 structure alike.
			half := len(pool) / 2
			for _, p := range pool[:half] {
				if err := m.Insert(p); err != nil {
					t.Fatal(err)
				}
				four.Insert(p)
				ref = append(ref, p)
			}
			queries(1)
			if err := m.BatchInsert(pool[half:]); err != nil {
				t.Fatal(err)
			}
			for _, p := range pool[half:] {
				four.Insert(p)
			}
			ref = append(ref, pool[half:]...)
			queries(2)
			var victims []geom.Point
			for i := 0; i < len(pool); i += 2 {
				victims = append(victims, pool[i])
			}
			if removed, err := m.BatchDelete(victims); err != nil || removed != len(victims) {
				t.Fatalf("BatchDelete = %d, %v; want %d", removed, err, len(victims))
			}
			for _, p := range victims {
				if !four.Delete(p) {
					t.Fatalf("foursided lost %v", p)
				}
			}
			alive := ref[:0]
			dead := make(map[geom.Point]bool, len(victims))
			for _, p := range victims {
				dead[p] = true
			}
			for _, p := range ref {
				if !dead[p] {
					alive = append(alive, p)
				}
			}
			ref = alive
			queries(3)
		})
	}
}

// TestPlannerMirrorRouting pins the routing table: for every Figure-2
// shape, the planner serves it from the asymptotically best backend —
// top-open family native, grounded-right family via the mirror,
// everything else via the general (Theorem 6) backend.
func TestPlannerMirrorRouting(t *testing.T) {
	pts := geom.GenUniform(100, 100*16, 9)
	geom.SortByX(pts)
	d := emio.NewDisk(mirrorCfg)
	top := NewDynTop(dyntop.BuildSABE(d, 0.5, pts), d)
	four := NewFourSided(foursided.Build(d, 0.5, pts), d)
	m, _ := buildMirror(t, pts)

	var pl Planner
	pl.RegisterTopOpen(top)
	pl.RegisterMirror(m)
	pl.RegisterGeneral(four)

	ni, pi := geom.NegInf, geom.PosInf
	cases := []struct {
		name string
		q    geom.Rect
		want Backend
	}{
		{"top-open", geom.TopOpen(1, 9, 3), top},
		{"dominance", geom.Dominance(4, 4), top},
		{"contour", geom.Contour(6), top},
		{"whole-plane", geom.Rect{X1: ni, X2: pi, Y1: ni, Y2: pi}, top},
		{"right-open", geom.RightOpen(1, 2, 8), m},
		{"lower-right quadrant", geom.Rect{X1: 1, X2: pi, Y1: ni, Y2: 8}, m},
		{"horizontal band", geom.Rect{X1: ni, X2: pi, Y1: 2, Y2: 8}, m},
		{"horizontal contour", geom.Rect{X1: ni, X2: pi, Y1: ni, Y2: 8}, m},
		{"4-sided", geom.Rect{X1: 1, X2: 9, Y1: 2, Y2: 8}, four},
		{"bottom-open", geom.BottomOpen(1, 9, 5), four},
		{"left-open", geom.LeftOpen(7, 2, 8), four},
		{"anti-dominance", geom.AntiDominance(4, 4), four},
	}
	for _, c := range cases {
		if got := pl.Route(c.q); got != c.want {
			t.Errorf("%s %v routed to %T, want %T", c.name, c.q, got, c.want)
		}
	}
	if len(pl.Mirrors()) != 1 || pl.Mirrors()[0] != m {
		t.Fatalf("Mirrors() = %v, want [m]", pl.Mirrors())
	}
}

// TestPlannerStatsAggregation pins the Stats/ResetStats contract: every
// distinct disk is counted exactly once — the unsharded adapters share
// one disk and must not double-count, while a mirror's private disk
// must be included — and ResetStats zeroes them all.
func TestPlannerStatsAggregation(t *testing.T) {
	pts := geom.GenUniform(400, 400*16, 11)
	geom.SortByX(pts)
	shared := emio.NewDisk(mirrorCfg)
	f := extsort.FromSlice(shared, 2, pts)
	top := NewTopOpen(topopen.Build(shared, f), shared)
	f.Free()
	four := NewFourSided(foursided.Build(shared, 0.5, pts), shared)
	m, mirrorDisk := buildMirror(t, pts)

	var pl Planner
	pl.RegisterTopOpen(top)
	pl.RegisterMirror(m)
	pl.RegisterGeneral(four)

	pl.ResetStats()
	if got := pl.Stats(); got.IOs() != 0 {
		t.Fatalf("after ResetStats, Stats().IOs() = %d, want 0", got.IOs())
	}
	// Touch all three paths: top-open (shared disk), right-open
	// (mirror disk), 4-sided (shared disk).
	pl.RangeSkyline(geom.TopOpen(0, 400*16, 0))
	pl.RangeSkyline(geom.RightOpen(0, 0, 400*16))
	pl.RangeSkyline(geom.Rect{X1: 10, X2: 4000, Y1: 10, Y2: 4000})

	want := shared.Stats().Add(mirrorDisk.Stats())
	if got := pl.Stats(); got != want {
		t.Fatalf("Stats() = %+v, want shared+mirror = %+v", got, want)
	}
	if shared.Stats().IOs() == 0 || mirrorDisk.Stats().IOs() == 0 {
		t.Fatalf("expected I/Os on both disks (shared %d, mirror %d)",
			shared.Stats().IOs(), mirrorDisk.Stats().IOs())
	}
	// The naive per-backend sum double-counts the shared disk; Stats()
	// must be strictly below it.
	var naive uint64
	for _, b := range pl.Backends() {
		naive += b.Stats().IOs()
	}
	if got := pl.Stats().IOs(); got >= naive {
		t.Fatalf("Stats().IOs() = %d should dedup below naive sum %d", got, naive)
	}
	pl.ResetStats()
	if got := pl.Stats(); got.IOs() != 0 {
		t.Fatalf("after second ResetStats, Stats().IOs() = %d, want 0", got.IOs())
	}
}

// TestMirrorBatchDeleteAgreement drives the multi-backend batched
// delete path: duplicates and absentees in the batch must yield
// agreeing removal counts across backends (no corruption error), with
// the engine staying byte-identical afterwards.
func TestMirrorBatchDeleteAgreement(t *testing.T) {
	pts := geom.GenUniform(300, 300*16, 13)
	geom.SortByX(pts)
	d := emio.NewDisk(mirrorCfg)
	top := NewDynTop(dyntop.BuildSABE(d, 0.5, pts), d)
	four := NewFourSided(foursided.Build(d, 0.5, pts), d)
	m, _ := buildMirror(t, pts)
	var pl Planner
	pl.RegisterTopOpen(top)
	pl.RegisterMirror(m)
	pl.RegisterGeneral(four)

	rng := rand.New(rand.NewSource(17))
	perm := rng.Perm(len(pts))[:100]
	sort.Ints(perm)
	var batch []geom.Point
	for _, i := range perm {
		batch = append(batch, pts[i])
	}
	batch = append(batch, batch[0])                           // duplicate: second is a miss
	batch = append(batch, geom.Point{X: 1 << 40, Y: 1 << 40}) // absentee
	removed, err := pl.BatchDelete(batch)
	if err != nil || removed != len(perm) {
		t.Fatalf("BatchDelete = %d, %v; want %d, nil", removed, err, len(perm))
	}
	ref := pts[:0:0]
	del := make(map[geom.Point]bool)
	for _, p := range batch {
		del[p] = true
	}
	for _, p := range pts {
		if !del[p] {
			ref = append(ref, p)
		}
	}
	for i := 0; i < 40; i++ {
		x := rng.Int63n(300 * 16)
		y1 := rng.Int63n(300 * 16)
		q := geom.RightOpen(x, y1, y1+rng.Int63n(2000))
		got := pl.RangeSkyline(q)
		want := geom.RangeSkyline(ref, q)
		if len(got) != len(want) {
			t.Fatalf("q=%v: got %v, want %v", q, got, want)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("q=%v: point %d = %v, want %v", q, j, got[j], want[j])
			}
		}
	}
}
