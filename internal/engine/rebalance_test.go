// Tests for the cut-change propagation paths a rebalancing engine
// drives through its wrappers: the cache's re-tagging and late-fill
// drop (SetXCuts/SetYCuts), the queue's slab migration with coalescing
// state intact (SetCuts), and the per-slab adaptive drain threshold.
package engine_test

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/shard"
)

// gateBackend blocks RangeSkyline until released, so a test can hold a
// cache fill mid-flight while the cuts move underneath it.
type gateBackend struct {
	*fakeBackend
	enter   chan struct{}
	release chan struct{}
	ans     []geom.Point
}

func (g *gateBackend) RangeSkyline(geom.Rect) []geom.Point {
	g.enter <- struct{}{}
	<-g.release
	return g.ans
}

// TestCacheLateFillDroppedOnCutChange pins the fill-vs-rebalance race:
// a read-through whose answer was computed against one partition must
// not be installed after SetXCuts moved the cuts — its slab tags and
// generation snapshot describe a partition that no longer exists.
func TestCacheLateFillDroppedOnCutChange(t *testing.T) {
	gate := &gateBackend{
		fakeBackend: newFake("gate"),
		enter:       make(chan struct{}, 4),
		release:     make(chan struct{}),
		ans:         []geom.Point{{X: 3, Y: 7}},
	}
	c, err := engine.NewCache(gate, 8)
	if err != nil {
		t.Fatal(err)
	}
	q := geom.Rect{X1: 0, X2: 100, Y1: 0, Y2: 100}
	done := make(chan []geom.Point)
	go func() { done <- c.RangeSkyline(q) }()
	<-gate.enter // the fill is computing against the current cuts
	c.SetXCuts([]geom.Coord{50})
	close(gate.release)
	got := <-done
	if len(got) != 1 || got[0] != gate.ans[0] {
		t.Fatalf("late fill returned %v, want the computed answer %v", got, gate.ans)
	}
	if c.Len() != 0 {
		t.Fatalf("late fill was installed across a cut change (Len = %d)", c.Len())
	}
	// With the cuts stable again the same query installs normally.
	if c.RangeSkyline(q); c.Len() != 1 {
		t.Fatalf("clean fill not installed (Len = %d)", c.Len())
	}
	ctr := c.Counters()
	if ctr.Misses != 2 || ctr.Hits != 0 {
		t.Fatalf("counters = %+v, want 2 misses, 0 hits", ctr)
	}
}

// TestCacheSetCutsRetagsEntries checks that SetXCuts/SetYCuts keep the
// memoized ANSWERS (a cut move changes where points live, not what a
// rectangle contains) and recompute only the slab tags invalidation
// matches writes against.
func TestCacheSetCutsRetagsEntries(t *testing.T) {
	c, err := engine.NewCache(newFake("flat"), 8)
	if err != nil {
		t.Fatal(err)
	}
	qA := geom.Rect{X1: 0, X2: 10, Y1: 0, Y2: 100}
	qB := geom.Rect{X1: 50, X2: 60, Y1: 0, Y2: 100}
	c.SetXCuts([]geom.Coord{25})
	c.RangeSkyline(qA)
	c.RangeSkyline(qB)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	// A write right of the cut must drop only the right entry.
	if err := c.Insert(geom.Point{X: 55, Y: 5}); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after slab-1 write, want qA alone", c.Len())
	}
	hits := c.Counters().Hits
	c.RangeSkyline(qA)
	if c.Counters().Hits != hits+1 {
		t.Fatal("qA did not survive a write outside its slabs")
	}
	// Move the cut right of both entries: they now share slab 0, and a
	// write beyond the new cut invalidates neither.
	c.SetXCuts([]geom.Coord{70})
	c.RangeSkyline(qB)
	if err := c.Insert(geom.Point{X: 90, Y: 6}); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d after out-of-slab write, want 2", c.Len())
	}
	// Move the cut left of both: one slab-1 write now hits both tags.
	c.SetXCuts([]geom.Coord{5})
	if err := c.Insert(geom.Point{X: 8, Y: 7}); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after shared-slab write, want 0", c.Len())
	}

	// The y axis behaves identically through SetYCuts (the transpose
	// mirror's rebalance moves these).
	c.SetYCuts([]geom.Coord{50})
	qLow := geom.Rect{X1: 0, X2: 4, Y1: 0, Y2: 40}
	qHigh := geom.Rect{X1: 0, X2: 4, Y1: 60, Y2: 100}
	c.RangeSkyline(qLow)
	c.RangeSkyline(qHigh)
	if err := c.Insert(geom.Point{X: 2, Y: 80}); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after high-y write, want qLow alone", c.Len())
	}
}

// TestCacheCutChangeRace hammers a sharded cache with concurrent fills,
// writes and cut changes — the propagation path a rebalancing engine
// drives — then verifies every answer against the oracle.
func TestCacheCutChangeRace(t *testing.T) {
	const n = 400
	span := geom.Coord((n + 200) * 16)
	all := geom.GenUniform(n+200, span, 7300)
	base := append([]geom.Point(nil), all[:n]...)
	pool := all[n:]
	geom.SortByX(base)
	eng, err := shard.New(shard.Options{Machine: cacheCfg, Shards: 4, Workers: 2, Dynamic: true}, base)
	if err != nil {
		t.Fatal(err)
	}
	c, err := engine.NewCache(eng, 64)
	if err != nil {
		t.Fatal(err)
	}
	coarse := eng.Cuts()[1:2] // a deliberately different tag partition
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		seed := int64(7301 + g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				x1 := geom.Coord(rng.Int63n(int64(span)))
				y1 := geom.Coord(rng.Int63n(int64(span)))
				c.RangeSkyline(geom.Rect{X1: x1, X2: x1 + span/4, Y1: y1, Y2: y1 + span/4})
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, p := range pool {
			if err := c.Insert(p); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		if i%2 == 0 {
			c.SetXCuts(coarse)
		} else {
			c.SetXCuts(eng.Cuts())
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	ref := append(append([]geom.Point(nil), base...), pool...)
	rng := rand.New(rand.NewSource(7310))
	for q := 0; q < 40; q++ {
		x1 := geom.Coord(rng.Int63n(int64(span)))
		y1 := geom.Coord(rng.Int63n(int64(span)))
		r := geom.Rect{X1: x1, X2: x1 + span/3, Y1: y1, Y2: y1 + span/3}
		got := c.RangeSkyline(r)
		want := geom.RangeSkyline(ref, r)
		if len(got) != len(want) {
			t.Fatalf("q=%d %v: %d points, want %d", q, r, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("q=%d %v: point %d = %v, want %v", q, r, i, got[i], want[i])
			}
		}
	}
}

// waitSlabs polls until the queue's deferred reshape lands.
func waitSlabs(t *testing.T, q *engine.AsyncQueue, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for q.NumSlabs() != want {
		if time.Now().After(deadline) {
			t.Fatalf("reshape never landed: NumSlabs = %d, want %d", q.NumSlabs(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestQueueSetCutsMigratesCoalescingState walks the coalescing truth
// table across a slab migration: a buffered insert, a buffered delete,
// a delete-then-reinsert pair, and a cancelled insert/delete pair are
// buffered into one slab, the cuts change underneath them, and every
// state must land in its new slab intact — drains and later coalescing
// behave exactly as they would have against the original buffer.
func TestQueueSetCutsMigratesCoalescingState(t *testing.T) {
	ins := geom.Point{X: 10, Y: 1}    // buffered insert
	del := geom.Point{X: 20, Y: 2}    // buffered delete of a live point
	delIns := geom.Point{X: 30, Y: 3} // delete-then-reinsert, both must drain
	cancel := geom.Point{X: 40, Y: 4} // insert-then-delete, a pure no-op
	inner := newFake("seeded", del, delIns)
	q, err := engine.NewAsyncQueue(inner, noTimer)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if err := q.Insert(ins); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Delete(del); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Delete(delIns); err != nil {
		t.Fatal(err)
	}
	if err := q.Insert(delIns); err != nil {
		t.Fatal(err)
	}
	if err := q.Insert(cancel); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Delete(cancel); err != nil {
		t.Fatal(err)
	}
	if got := q.Buffered(); got != 3 {
		t.Fatalf("Buffered = %d before reshape, want 3", got)
	}

	// Split the single slab at x=25: ins and del belong left, delIns
	// right; the cancelled pair must not resurface anywhere.
	q.SetCuts([]geom.Coord{25})
	waitSlabs(t, q, 2)
	ctr := q.Counters()
	if ctr.Slabs[0].Depth != 2 || ctr.Slabs[1].Depth != 1 {
		t.Fatalf("post-reshape depths = %d/%d, want 2/1", ctr.Slabs[0].Depth, ctr.Slabs[1].Depth)
	}

	// Coalescing keeps working against migrated state: a fresh
	// insert/delete pair in the new right slab cancels in-buffer.
	late := geom.Point{X: 90, Y: 9}
	if err := q.Insert(late); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Delete(late); err != nil {
		t.Fatal(err)
	}
	if got := q.Buffered(); got != 3 {
		t.Fatalf("Buffered = %d after cancelled pair, want 3", got)
	}

	if err := q.Flush(); err != nil {
		t.Fatal(err)
	}
	if !inner.pts[ins] {
		t.Fatal("buffered insert lost in migration")
	}
	if inner.pts[del] {
		t.Fatal("buffered delete lost in migration")
	}
	if !inner.pts[delIns] {
		t.Fatal("delete-then-reinsert did not leave the point live")
	}
	if inner.pts[cancel] || inner.pts[late] {
		t.Fatal("a cancelled pair reached the backend")
	}
	ctr = q.Counters()
	if ctr.Enqueued != 8 || ctr.Coalesced != 4 || ctr.Drained != 4 {
		t.Fatalf("counters = %+v, want Enqueued 8 = Drained 4 + Coalesced 4", ctr)
	}
}

// TestQueueAdaptiveFlush pins the per-slab threshold dynamics: two
// consecutive size-triggered drains double the slab's threshold up to
// 8 × FlushPoints, and any read-triggered drain halves it back toward
// the floor.
func TestQueueAdaptiveFlush(t *testing.T) {
	const base = 4
	q, err := engine.NewAsyncQueue(newFake("flat"), engine.QueueOptions{
		FlushPoints: base, FlushInterval: -1, AdaptiveFlush: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	flushAt := func() int { return q.Counters().Slabs[0].FlushAt }

	next := 0
	fill := func(k int) {
		t.Helper()
		for i := 0; i < k; i++ {
			next++
			if err := q.Insert(geom.Point{X: geom.Coord(next), Y: geom.Coord(-next)}); err != nil {
				t.Fatal(err)
			}
		}
	}

	fill(base) // first size drain: streak 1, threshold unchanged
	if got := flushAt(); got != base {
		t.Fatalf("FlushAt = %d after one size drain, want %d", got, base)
	}
	fill(base) // second consecutive: doubles
	if got := flushAt(); got != 2*base {
		t.Fatalf("FlushAt = %d after streak, want %d", got, 2*base)
	}
	// Keep streaking: the threshold must saturate at 8 × FlushPoints.
	for i := 0; i < 8; i++ {
		fill(flushAt())
	}
	if got := flushAt(); got != 8*base {
		t.Fatalf("FlushAt = %d after saturation, want %d", got, 8*base)
	}
	// Read-triggered drains shrink it back toward the floor, one halving
	// per drain, never below FlushPoints.
	for want := 4 * base; want >= base; want /= 2 {
		fill(1) // the drain must find something pending to adjust
		q.RangeSkyline(wholePlane)
		if got := flushAt(); got != want {
			t.Fatalf("FlushAt = %d after read drain, want %d", got, want)
		}
	}
	fill(1)
	q.RangeSkyline(wholePlane)
	if got := flushAt(); got != base {
		t.Fatalf("FlushAt = %d, must not shrink below FlushPoints %d", got, base)
	}
}
