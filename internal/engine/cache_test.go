package engine_test

import (
	"testing"

	"repro/internal/emio"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/shard"
)

var cacheCfg = emio.Config{B: 32, M: 32 * 32}

// buildShardedCache builds a dynamic sharded engine over n uniform
// points and wraps it in a cache of the given capacity.
func buildShardedCache(t *testing.T, n, shards, entries int, seed int64) (*engine.CacheBackend, *shard.Engine, []geom.Point) {
	t.Helper()
	pts := geom.GenUniform(n, int64(n)*16, seed)
	geom.SortByX(pts)
	eng, err := shard.New(shard.Options{Machine: cacheCfg, Shards: shards, Workers: 2, Dynamic: true}, pts)
	if err != nil {
		t.Fatal(err)
	}
	c, err := engine.NewCache(eng, entries)
	if err != nil {
		t.Fatal(err)
	}
	return c, eng, pts
}

// slabRect returns a rectangle lying strictly inside shard i's x-slab.
func slabRect(t *testing.T, cuts []geom.Coord, i int, span geom.Coord) geom.Rect {
	t.Helper()
	lo, hi := geom.Coord(0), span
	if i > 0 {
		lo = cuts[i-1] + 1
	}
	if i < len(cuts) {
		hi = cuts[i]
	}
	if lo > hi {
		t.Fatalf("shard %d owns an empty x-slab", i)
	}
	return geom.Rect{X1: lo, X2: hi, Y1: 0, Y2: span}
}

// TestCacheReadThrough pins the core contract: a miss reads through and
// costs I/O, a hit is answered from memory byte-identically at zero
// simulated I/O, and the canonical key collapses all empty rectangles
// onto one entry.
func TestCacheReadThrough(t *testing.T) {
	c, eng, _ := buildShardedCache(t, 400, 4, 16, 41)
	span := geom.Coord(400 * 16)
	q := geom.TopOpen(span/8, span/2, span/4)
	first := c.RangeSkyline(q)
	if got := c.Counters(); got.Hits != 0 || got.Misses != 1 {
		t.Fatalf("after miss: counters = %+v", got)
	}
	before := eng.Stats().IOs()
	second := c.RangeSkyline(q)
	if got := eng.Stats().IOs(); got != before {
		t.Fatalf("hit cost %d I/Os, want 0", got-before)
	}
	if got := c.Counters(); got.Hits != 1 || got.Misses != 1 {
		t.Fatalf("after hit: counters = %+v", got)
	}
	if len(first) != len(second) {
		t.Fatalf("hit answer diverges: %d vs %d points", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("hit answer diverges at %d: %v vs %v", i, second[i], first[i])
		}
	}
	// Every empty rectangle shares the canonical key.
	if got := c.RangeSkyline(geom.Rect{X1: 9, X2: 3, Y1: 0, Y2: span}); len(got) != 0 {
		t.Fatalf("empty rect answered %v", got)
	}
	if got := c.RangeSkyline(geom.Rect{X1: 0, X2: span, Y1: 7, Y2: 2}); len(got) != 0 {
		t.Fatalf("empty rect answered %v", got)
	}
	if got := c.Counters(); got.Hits != 2 || got.Misses != 2 {
		t.Fatalf("empty rects should share one canonical entry: counters = %+v", got)
	}
}

// TestCacheDeleteMissDoesNotEvict pins the invalidation edge case: a
// Delete (or BatchDelete) that misses every backend changed no answer
// and must leave every memoized entry in place.
func TestCacheDeleteMissDoesNotEvict(t *testing.T) {
	c, _, pts := buildShardedCache(t, 400, 4, 16, 43)
	span := geom.Coord(400 * 16)
	qs := []geom.Rect{
		geom.TopOpen(0, span, span/4),
		geom.RightOpen(span/2, 0, span),
		{X1: span / 8, X2: span / 2, Y1: span / 8, Y2: span / 2},
	}
	for _, q := range qs {
		c.RangeSkyline(q)
	}
	if c.Len() != len(qs) {
		t.Fatalf("cache holds %d entries, want %d", c.Len(), len(qs))
	}
	absent := geom.Point{X: span + 1, Y: span + 1}
	if ok, err := c.Delete(absent); ok || err != nil {
		t.Fatalf("Delete(absent) = %t, %v", ok, err)
	}
	if got, err := c.BatchDelete([]geom.Point{absent, {X: span + 2, Y: span + 2}}); got != 0 || err != nil {
		t.Fatalf("BatchDelete(absentees) = %d, %v", got, err)
	}
	if got := c.Counters(); got.Invalidations != 0 {
		t.Fatalf("misses invalidated %d entries", got.Invalidations)
	}
	if c.Len() != len(qs) {
		t.Fatalf("cache holds %d entries after misses, want %d", c.Len(), len(qs))
	}
	// A delete that HITS must invalidate the entries containing it.
	victim := pts[len(pts)/2]
	if ok, err := c.Delete(victim); !ok || err != nil {
		t.Fatalf("Delete(%v) = %t, %v", victim, ok, err)
	}
	if got := c.Counters(); got.Invalidations == 0 {
		t.Fatal("confirmed delete invalidated nothing")
	}
}

// TestCacheShardAwareInvalidation pins the tentpole claim: with the
// engine's x-cuts known, a write evicts only the entries whose
// rectangles intersect the written point's slab, and a batch spanning
// every shard evicts across all of them.
func TestCacheShardAwareInvalidation(t *testing.T) {
	c, eng, _ := buildShardedCache(t, 400, 4, 16, 47)
	span := geom.Coord(400 * 16)
	cuts := eng.Cuts()
	if len(cuts) != 3 {
		t.Fatalf("Cuts() = %v, want 3 cuts", cuts)
	}
	if got := c.XCuts(); len(got) != 3 {
		t.Fatalf("cache learned x-cuts %v, want 3", got)
	}
	perShard := make([]geom.Rect, 4)
	for i := range perShard {
		perShard[i] = slabRect(t, cuts, i, span)
		c.RangeSkyline(perShard[i])
	}
	wide := geom.TopOpen(geom.NegInf, geom.PosInf, span/4)
	c.RangeSkyline(wide)
	if c.Len() != 5 {
		t.Fatalf("cache holds %d entries, want 5", c.Len())
	}

	// A write into shard 0: the shard-0 entry and the wide entry go,
	// the entries confined to shards 1..3 survive.
	if err := c.Insert(geom.Point{X: cuts[0] - 2, Y: span + 10}); err != nil {
		t.Fatal(err)
	}
	if got := c.Counters(); got.Invalidations != 2 {
		t.Fatalf("shard-0 write invalidated %d entries, want 2 (slab 0 + wide)", got.Invalidations)
	}
	if c.Len() != 3 {
		t.Fatalf("cache holds %d entries after shard-0 write, want 3", c.Len())
	}
	before := c.Counters()
	for i := 1; i < 4; i++ {
		c.RangeSkyline(perShard[i])
	}
	if got := c.Counters(); got.Hits != before.Hits+3 {
		t.Fatalf("surviving shards should all hit: counters %+v -> %+v", before, got)
	}

	// A batch spanning all shards evicts across all of them.
	for i := range perShard {
		c.RangeSkyline(perShard[i])
	}
	batch := []geom.Point{
		{X: cuts[0] - 4, Y: span + 20},
		{X: cuts[0] + 1, Y: span + 21},
		{X: cuts[1] + 1, Y: span + 22},
		{X: cuts[2] + 1, Y: span + 23},
	}
	if err := c.BatchInsert(batch); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatalf("batch spanning all shards left %d entries cached", c.Len())
	}
}

// TestCacheYCutRefinement builds the full planner shape core.Open
// assembles (sharded primary + transposed sharded mirror) and pins the
// y-axis refinement: the mirror's cuts are in the transposed frame, so
// they partition the original y-axis, and an entry whose rectangle
// spans every x-slab but misses the written point's y-slab survives.
func TestCacheYCutRefinement(t *testing.T) {
	const n = 400
	span := geom.Coord(n * 16)
	pts := geom.GenUniform(n, span, 53)
	geom.SortByX(pts)
	primary, err := shard.New(shard.Options{Machine: cacheCfg, Shards: 4, Workers: 2, Dynamic: true}, pts)
	if err != nil {
		t.Fatal(err)
	}
	mirrored := geom.ReflectSwapXY.Pts(pts)
	geom.SortByX(mirrored)
	inner, err := shard.New(shard.Options{Machine: cacheCfg, Shards: 4, Workers: 2, Dynamic: true, TopOnly: true}, mirrored)
	if err != nil {
		t.Fatal(err)
	}
	m, err := engine.NewMirror(geom.ReflectSwapXY, inner)
	if err != nil {
		t.Fatal(err)
	}
	pl := new(engine.Planner)
	pl.RegisterTopOpen(primary)
	pl.RegisterGeneral(primary)
	pl.RegisterMirror(m)
	c, err := engine.NewCache(pl, 16)
	if err != nil {
		t.Fatal(err)
	}
	ycuts := c.YCuts()
	if len(ycuts) != 3 {
		t.Fatalf("cache learned y-cuts %v, want 3 (from the mirror's inner engine)", ycuts)
	}

	// A horizontal band above the last y-cut: its x-range meets every
	// x-slab, so only the y-cuts can save it from a low write.
	band := geom.Rect{X1: geom.NegInf, X2: geom.PosInf, Y1: ycuts[2] + 1, Y2: span + 1000}
	c.RangeSkyline(band)
	low := geom.Point{X: span + 10, Y: ycuts[0] - 2}
	if err := c.Insert(low); err != nil {
		t.Fatal(err)
	}
	if got := c.Counters(); got.Invalidations != 0 {
		t.Fatalf("low write invalidated %d entries; the band misses its y-slab", got.Invalidations)
	}
	before := c.Counters().Hits
	c.RangeSkyline(band)
	if got := c.Counters().Hits; got != before+1 {
		t.Fatal("band entry did not survive the low write")
	}
	high := geom.Point{X: span + 11, Y: span + 500}
	if err := c.Insert(high); err != nil {
		t.Fatal(err)
	}
	if got := c.Counters(); got.Invalidations != 1 {
		t.Fatalf("high write invalidated %d entries, want 1 (the band)", got.Invalidations)
	}

	// engine.CacheCounters aggregation: register the cache for both planner
	// roles; the StatsKey dedup counts it once.
	outer := new(engine.Planner)
	outer.RegisterTopOpen(c)
	outer.RegisterGeneral(c)
	want := c.Counters()
	if got := outer.CacheCounters(); got != want {
		t.Fatalf("Planner.CacheCounters = %+v, want %+v (deduped)", got, want)
	}
}

// TestCacheLRUBound pins the capacity bound: the cache never holds more
// than its capacity and evicts least-recently-used first.
func TestCacheLRUBound(t *testing.T) {
	c, _, _ := buildShardedCache(t, 400, 4, 4, 59)
	span := geom.Coord(400 * 16)
	qs := make([]geom.Rect, 6)
	for i := range qs {
		qs[i] = geom.TopOpen(geom.Coord(i)*100, span, geom.Coord(i)*50)
		c.RangeSkyline(qs[i])
	}
	if c.Len() != 4 {
		t.Fatalf("cache holds %d entries, want capacity 4", c.Len())
	}
	if got := c.Counters(); got.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", got.Evictions)
	}
	// qs[0] and qs[1] were evicted; qs[5] is resident.
	before := c.Counters()
	c.RangeSkyline(qs[5])
	c.RangeSkyline(qs[0])
	got := c.Counters()
	if got.Hits != before.Hits+1 || got.Misses != before.Misses+1 {
		t.Fatalf("LRU order wrong: counters %+v -> %+v", before, got)
	}
	if _, err := engine.NewCache(c.Inner(), 0); err == nil {
		t.Fatal("engine.NewCache accepted capacity 0")
	}
}

// TestCacheResetStatsKeepsEntries pins the ResetStats contract: the
// hit/miss/eviction/invalidation counters are zeroed, the wrapped
// backend's I/O counters are zeroed, and the memoized entries stay —
// the next query still hits.
func TestCacheResetStatsKeepsEntries(t *testing.T) {
	c, eng, _ := buildShardedCache(t, 400, 4, 16, 61)
	span := geom.Coord(400 * 16)
	q := geom.TopOpen(0, span, span/3)
	c.RangeSkyline(q)
	c.RangeSkyline(q)
	if got := c.Counters(); got.Hits == 0 && got.Misses == 0 {
		t.Fatal("warm-up recorded nothing")
	}
	c.ResetStats()
	if got := c.Counters(); got != (engine.CacheCounters{}) {
		t.Fatalf("counters after ResetStats = %+v, want zero", got)
	}
	if got := eng.Stats().IOs(); got != 0 {
		t.Fatalf("inner I/O counters after ResetStats = %d, want 0", got)
	}
	if c.Len() != 1 {
		t.Fatalf("ResetStats dropped entries: Len = %d, want 1", c.Len())
	}
	c.RangeSkyline(q)
	if got := c.Counters(); got.Hits != 1 || got.Misses != 0 {
		t.Fatalf("entry did not survive ResetStats: counters = %+v", got)
	}
	if got := eng.Stats().IOs(); got != 0 {
		t.Fatalf("post-reset hit cost %d I/Os, want 0", got)
	}
}
