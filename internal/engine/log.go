// LogBackend: the write-ahead-logging layer of the engine. It wraps
// any Backend and appends every update batch to an UpdateLog BEFORE
// applying it — the write-ahead rule — so a crash after an
// acknowledged write can always be replayed. In core.DB's durable
// stack it sits between the async queue and the cache:
//
//	AsyncQueue → LogBackend → CacheBackend → Planner
//
// which makes the queue's drain batches the natural log unit: one
// record per BatchInsert/BatchDeleteRemoved a drain applies, exactly
// the granularity the structures take their locks at. Reads pass
// straight through.
//
// The backend also maintains the live point set — the content of the
// next checkpoint snapshot. Tracking it here (rather than asking the
// structures to enumerate themselves) costs one map update per applied
// write and gives Checkpoint a consistent cut: the mutex that
// serializes log-append + apply + live-set update is the one
// Checkpoint holds while materializing the snapshot, so a snapshot at
// sequence S contains exactly the effects of records 1..S.
//
// The write-ahead rule has a deliberate asymmetry on failure: the
// record becomes durable BEFORE the apply, so when the apply then
// fails the caller gets an error — the write is NOT acknowledged —
// while the log still holds the record. A crash before the next
// checkpoint replays that record, so an unacknowledged write can
// appear after recovery (a phantom); a checkpoint instead drops it for
// good (the live set never absorbed it, and the truncate discards the
// record). The alternative — logging after applying — would lose
// ACKNOWLEDGED writes on a crash between the two, which is strictly
// worse, and compensating records would buy exactness only at the
// price of a second append on every failure path. Apply errors in this
// repository mean structure corruption; callers observing one should
// treat rebuild-from-log (reopen) as the recovery, which is exactly
// why core skips checkpoints while a drain error is latched.
//
// Serializing writes through one mutex is a deliberate simplification:
// a write-ahead log is a single append stream anyway, batches amortize
// the serialization exactly as they amortize the structure locks, and
// only the durable configuration pays it (a DB without Options.Dir has
// no LogBackend in its stack).
package engine

import (
	"sort"
	"sync"

	"repro/internal/emio"
	"repro/internal/geom"
)

// UpdateLog is the sink a LogBackend appends update batches to before
// applying them. core.DB implements it over internal/wal; tests
// implement it in memory.
type UpdateLog interface {
	// LogBatch durably records one batch — dels applying before inss.
	// An error means the batch is NOT acknowledged: the backend will
	// not apply it.
	LogBatch(dels, inss []geom.Point) error
}

// LogBackend is a write-ahead-logging Backend wrapper. It implements
// Backend (and the removed-subset batch-delete the queue's drains
// prefer); every mutation is logged, applied, and folded into the
// live point set under one mutex.
type LogBackend struct {
	inner Backend
	log   UpdateLog

	mu   sync.Mutex
	live map[geom.Point]struct{}
}

// NewLogBackend wraps inner, logging to log. initial is the point set
// inner currently holds (the snapshot recovery loaded plus whatever it
// replayed, for core's durable open).
func NewLogBackend(inner Backend, log UpdateLog, initial []geom.Point) *LogBackend {
	lb := &LogBackend{
		inner: inner,
		log:   log,
		live:  make(map[geom.Point]struct{}, len(initial)),
	}
	for _, p := range initial {
		lb.live[p] = struct{}{}
	}
	return lb
}

// Inner returns the wrapped backend.
func (lb *LogBackend) Inner() Backend { return lb.inner }

// Live returns the current live point count.
func (lb *LogBackend) Live() int {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return len(lb.live)
}

// RangeSkyline passes through: reads are not logged.
func (lb *LogBackend) RangeSkyline(q geom.Rect) []geom.Point {
	return lb.inner.RangeSkyline(q)
}

// Insert logs then applies a single insert. On apply failure the
// logged record persists and a pre-checkpoint crash replays it; see
// the failure-asymmetry note in the package comment.
func (lb *LogBackend) Insert(p geom.Point) error {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	if err := lb.log.LogBatch(nil, []geom.Point{p}); err != nil {
		return err
	}
	if err := lb.inner.Insert(p); err != nil {
		return err
	}
	lb.live[p] = struct{}{}
	return nil
}

// Delete logs then applies a single delete. A miss is logged too — the
// log cannot know presence ahead of the structures — and replaying a
// miss through the presence-check-first paths applies nothing, so the
// spurious record is harmless.
func (lb *LogBackend) Delete(p geom.Point) (bool, error) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	if err := lb.log.LogBatch([]geom.Point{p}, nil); err != nil {
		return false, err
	}
	ok, err := lb.inner.Delete(p)
	if ok {
		delete(lb.live, p)
	}
	return ok, err
}

// BatchInsert logs then applies the batch.
func (lb *LogBackend) BatchInsert(pts []geom.Point) error {
	if len(pts) == 0 {
		return nil
	}
	lb.mu.Lock()
	defer lb.mu.Unlock()
	if err := lb.log.LogBatch(nil, pts); err != nil {
		return err
	}
	if err := lb.inner.BatchInsert(pts); err != nil {
		return err
	}
	for _, p := range pts {
		lb.live[p] = struct{}{}
	}
	return nil
}

// BatchDelete logs then applies the batch, reporting how many points
// were present and removed.
func (lb *LogBackend) BatchDelete(pts []geom.Point) (int, error) {
	removed, err := lb.BatchDeleteRemoved(pts)
	return len(removed), err
}

// BatchDeleteRemoved logs then applies the batch, reporting the
// removed subset (the queue's drains and the planner's fan-out need
// it; the live set needs it too, which is why the count-only form
// funnels through here).
func (lb *LogBackend) BatchDeleteRemoved(pts []geom.Point) ([]geom.Point, error) {
	if len(pts) == 0 {
		return nil, nil
	}
	lb.mu.Lock()
	defer lb.mu.Unlock()
	if err := lb.log.LogBatch(pts, nil); err != nil {
		return nil, err
	}
	removed, err := lb.applyDeletes(pts)
	for _, p := range removed {
		delete(lb.live, p)
	}
	return removed, err
}

// applyDeletes applies a delete batch to inner, reporting the removed
// subset: through the inner backend's removed-subset path when it has
// one (every stack core builds does), point-by-point otherwise.
func (lb *LogBackend) applyDeletes(pts []geom.Point) ([]geom.Point, error) {
	if rep, ok := lb.inner.(batchDeleteReporter); ok {
		return rep.BatchDeleteRemoved(pts)
	}
	var removed []geom.Point
	var firstErr error
	for _, p := range pts {
		ok, err := lb.inner.Delete(p)
		if ok {
			removed = append(removed, p)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return removed, firstErr
}

// Replay applies one recovered log record — dels before inss, the
// order drains use — WITHOUT logging it again, and folds it into the
// live set. It returns how many deletes hit. Recovery calls it for
// every record after the checkpoint sequence.
func (lb *LogBackend) Replay(dels, inss []geom.Point) (int, error) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	var removed []geom.Point
	var firstErr error
	if len(dels) > 0 {
		removed, firstErr = lb.applyDeletes(dels)
		for _, p := range removed {
			delete(lb.live, p)
		}
	}
	if len(inss) > 0 {
		err := lb.inner.BatchInsert(inss)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
		} else {
			for _, p := range inss {
				lb.live[p] = struct{}{}
			}
		}
	}
	return len(removed), firstErr
}

// Checkpoint materializes the live point set — sorted by x, the order
// every build path expects — and passes it to fn while holding the
// write mutex, so the snapshot fn persists is a consistent cut: no
// log append can land between the set being read and fn returning.
func (lb *LogBackend) Checkpoint(fn func(live []geom.Point) error) error {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	pts := make([]geom.Point, 0, len(lb.live))
	for p := range lb.live {
		pts = append(pts, p)
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
	return fn(pts)
}

// Stats forwards to the wrapped backend: logging performs no simulated
// I/O (the log is real storage, measured by its own layer).
func (lb *LogBackend) Stats() emio.Stats { return lb.inner.Stats() }

// ResetStats forwards to the wrapped backend.
func (lb *LogBackend) ResetStats() { lb.inner.ResetStats() }

// StatsKey dedups stats through to the wrapped backend, like the
// cache and the queue.
func (lb *LogBackend) StatsKey() any { return statsKey(lb.inner) }

// assert interface satisfaction, including the removed-subset path the
// queue's drains prefer.
var _ Backend = (*LogBackend)(nil)
var _ batchDeleteReporter = (*LogBackend)(nil)
