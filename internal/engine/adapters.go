// Backend adapters for the paper's single-disk structures. Each adapter
// pairs one structure with the disk charged for its I/Os; structures
// sharing a disk (as in an unsharded core.DB) share the counters, so
// callers aggregating stats across backends must sum over distinct
// disks, not distinct backends — each adapter exposes its disk through
// StatsKey and Planner.Stats dedups on it. The sharded engine
// (internal/shard) implements Backend natively and needs no adapter.
package engine

import (
	"fmt"

	"repro/internal/dyntop"
	"repro/internal/emio"
	"repro/internal/foursided"
	"repro/internal/geom"
	"repro/internal/topopen"
)

// errStatic is returned by every update method of a static backend.
func errStatic(kind string) error {
	return fmt.Errorf("engine: %s backend is static; reopen with Options.Dynamic", kind)
}

// TopOpenBackend serves the top-open family from the Theorem 1 static
// index. All update methods fail.
type TopOpenBackend struct {
	ix   *topopen.Index
	disk *emio.Disk
}

// NewTopOpen wraps a Theorem 1 index and the disk it lives on.
func NewTopOpen(ix *topopen.Index, d *emio.Disk) *TopOpenBackend {
	return &TopOpenBackend{ix: ix, disk: d}
}

func (b *TopOpenBackend) RangeSkyline(q geom.Rect) []geom.Point {
	if !q.IsTopOpen() {
		panic("engine: topopen backend requires a top-open rectangle")
	}
	return b.ix.Query(q.X1, q.X2, q.Y1)
}

func (b *TopOpenBackend) Insert(geom.Point) error         { return errStatic("topopen") }
func (b *TopOpenBackend) Delete(geom.Point) (bool, error) { return false, errStatic("topopen") }
func (b *TopOpenBackend) BatchInsert([]geom.Point) error  { return errStatic("topopen") }
func (b *TopOpenBackend) BatchDelete([]geom.Point) (int, error) {
	return 0, errStatic("topopen")
}
func (b *TopOpenBackend) Stats() emio.Stats { return b.disk.Stats() }
func (b *TopOpenBackend) ResetStats()       { b.disk.ResetStats() }

// StatsKey identifies the disk charged for this backend's I/Os, so
// Planner.Stats counts structures sharing a disk once.
func (b *TopOpenBackend) StatsKey() any { return b.disk }

// DynTopBackend serves the top-open family from the Theorem 4 dynamic
// tree.
type DynTopBackend struct {
	tree *dyntop.Tree
	disk *emio.Disk
}

// NewDynTop wraps a Theorem 4 tree and the disk it lives on.
func NewDynTop(tree *dyntop.Tree, d *emio.Disk) *DynTopBackend {
	return &DynTopBackend{tree: tree, disk: d}
}

func (b *DynTopBackend) RangeSkyline(q geom.Rect) []geom.Point {
	if !q.IsTopOpen() {
		panic("engine: dyntop backend requires a top-open rectangle")
	}
	return b.tree.Query(q.X1, q.X2, q.Y1)
}

func (b *DynTopBackend) Insert(p geom.Point) error { b.tree.Insert(p); return nil }

func (b *DynTopBackend) Delete(p geom.Point) (bool, error) { return b.tree.Delete(p), nil }

func (b *DynTopBackend) BatchInsert(pts []geom.Point) error {
	for _, p := range pts {
		b.tree.Insert(p)
	}
	return nil
}

func (b *DynTopBackend) BatchDelete(pts []geom.Point) (int, error) {
	removed, err := b.BatchDeleteRemoved(pts)
	return len(removed), err
}

// BatchDeleteRemoved reports the removed subset itself, letting the
// planner fan only confirmed-present points out to the other backends.
func (b *DynTopBackend) BatchDeleteRemoved(pts []geom.Point) ([]geom.Point, error) {
	var removed []geom.Point
	for _, p := range pts {
		if b.tree.Delete(p) {
			removed = append(removed, p)
		}
	}
	return removed, nil
}

func (b *DynTopBackend) Stats() emio.Stats { return b.disk.Stats() }
func (b *DynTopBackend) ResetStats()       { b.disk.ResetStats() }

// StatsKey identifies the disk charged for this backend's I/Os.
func (b *DynTopBackend) StatsKey() any { return b.disk }

// FourSidedBackend serves every rectangle shape from the Theorem 6
// structure. It is always dynamic (the structure has no static mode).
type FourSidedBackend struct {
	ix   *foursided.Index
	disk *emio.Disk
}

// NewFourSided wraps a Theorem 6 index and the disk it lives on.
func NewFourSided(ix *foursided.Index, d *emio.Disk) *FourSidedBackend {
	return &FourSidedBackend{ix: ix, disk: d}
}

func (b *FourSidedBackend) RangeSkyline(q geom.Rect) []geom.Point { return b.ix.Query(q) }

func (b *FourSidedBackend) Insert(p geom.Point) error { b.ix.Insert(p); return nil }

func (b *FourSidedBackend) Delete(p geom.Point) (bool, error) { return b.ix.Delete(p), nil }

func (b *FourSidedBackend) BatchInsert(pts []geom.Point) error {
	for _, p := range pts {
		b.ix.Insert(p)
	}
	return nil
}

func (b *FourSidedBackend) BatchDelete(pts []geom.Point) (int, error) {
	removed := 0
	for _, p := range pts {
		if b.ix.Delete(p) {
			removed++
		}
	}
	return removed, nil
}

func (b *FourSidedBackend) Stats() emio.Stats { return b.disk.Stats() }
func (b *FourSidedBackend) ResetStats()       { b.disk.ResetStats() }

// StatsKey identifies the disk charged for this backend's I/Os.
func (b *FourSidedBackend) StatsKey() any { return b.disk }
