// Package engine defines the query-execution seam of the repository: a
// Backend interface every range skyline engine implements, a Figure-2
// shape classifier, and a small Planner that routes each query rectangle
// to the best registered backend and fans updates out to every backend.
//
// The paper's structures divide the seven Figure-2 query shapes into two
// families. The top-open family (any rectangle whose top edge is
// grounded: top-open, dominance, contour, whole-plane)
// is answered by the Theorem 1/4 structures in O(log) I/Os; everything
// with a bounded top edge (4-sided, left-open, right-open, bottom-open,
// anti-dominance) needs the Theorem 6 structure, whose Ω((n/B)^ε) cost
// is optimal at linear space by Theorem 5. The Planner encodes exactly
// that split: a backend registered for the top-open family takes the
// cheap shapes, the general backend takes the rest — and when only a
// general backend is registered (for example the sharded engine, which
// serves both families itself), it takes everything.
//
// One refinement cuts across the two families: a MirrorBackend holds a
// top-open structure over the transposed (x↔y) point set, and because
// the transpose preserves dominance, it serves every rectangle whose
// RIGHT edge is grounded — right-open queries and the unnamed
// right-grounded shapes — in the top-open bounds. The planner offers
// those rectangles to the mirrors before falling back to the general
// backend. The remaining bounded-top shapes (4-sided, left-open,
// bottom-open, anti-dominance) stay on the general backend by
// necessity, not omission: no other axis reflection preserves
// dominance, and Theorem 5's lower bound pins them to Ω((n/B)^ε) at
// linear space.
//
// Updates flow through the same seam. core.DB registers one backend per
// physical structure; Insert/Delete/BatchInsert/BatchDelete apply to all
// of them so every backend sees the same point set. The first registered
// backend is the primary: Delete consults it first and touches the
// others only after the primary confirms presence, so a miss never
// mutates any backend (see core.DB.Delete's regression test).
package engine

import (
	"fmt"

	"repro/internal/emio"
	"repro/internal/geom"
)

// Backend is one range skyline engine: a structure (or a composite, like
// the sharded engine) that answers some family of Figure-2 rectangles
// and, when dynamic, accepts single and batched updates. Static backends
// return an error from every update method without mutating anything.
type Backend interface {
	// RangeSkyline reports the maximal points of P ∩ q in
	// increasing-x order.
	RangeSkyline(q geom.Rect) []geom.Point
	// Insert adds a point (general position is the caller's contract).
	Insert(p geom.Point) error
	// Delete removes a point, reporting whether it was present. A miss
	// must not mutate the backend.
	Delete(p geom.Point) (bool, error)
	// BatchInsert adds many points, amortizing per-call overhead
	// (lock acquisitions, fan-out) across the batch.
	BatchInsert(pts []geom.Point) error
	// BatchDelete removes many points, reporting how many were
	// present and removed.
	BatchDelete(pts []geom.Point) (int, error)
	// Stats returns the backend's I/O counters since the last
	// ResetStats.
	Stats() emio.Stats
	// ResetStats zeroes the backend's I/O counters.
	ResetStats()
}

// Shape names the seven query rectangle shapes of Figure 2 plus the
// general 4-sided rectangle of Figure 1b.
type Shape int

const (
	// FourSided is a rectangle bounded on all four sides (Figure 1b).
	FourSided Shape = iota
	// TopOpenShape is [x1,x2] × [y,∞) (Figure 2a).
	TopOpenShape
	// RightOpenShape is [x,∞) × [y1,y2] (Figure 2b).
	RightOpenShape
	// BottomOpenShape is [x1,x2] × (-∞,y] (Figure 2c).
	BottomOpenShape
	// LeftOpenShape is (-∞,x] × [y1,y2] (Figure 2d).
	LeftOpenShape
	// DominanceShape is [x,∞) × [y,∞) (Figure 2e).
	DominanceShape
	// AntiDominanceShape is (-∞,x] × (-∞,y] (Figure 2f).
	AntiDominanceShape
	// ContourShape is (-∞,x] × (-∞,∞) (Figure 2g).
	ContourShape
	// WholePlane is (-∞,∞) × (-∞,∞): the skyline of the whole set.
	WholePlane
)

var shapeNames = map[Shape]string{
	FourSided:          "4-sided",
	TopOpenShape:       "top-open",
	RightOpenShape:     "right-open",
	BottomOpenShape:    "bottom-open",
	LeftOpenShape:      "left-open",
	DominanceShape:     "dominance",
	AntiDominanceShape: "anti-dominance",
	ContourShape:       "contour",
	WholePlane:         "whole-plane",
}

func (s Shape) String() string { return shapeNames[s] }

// Classify names the Figure-2 shape of q from its grounded sides.
func Classify(q geom.Rect) Shape {
	left := q.X1 == geom.NegInf
	right := q.X2 == geom.PosInf
	bottom := q.Y1 == geom.NegInf
	top := q.Y2 == geom.PosInf
	switch {
	case left && right && bottom && top:
		return WholePlane
	case left && top && bottom:
		return ContourShape
	case right && top && !left && !bottom:
		return DominanceShape
	case left && bottom && !right && !top:
		return AntiDominanceShape
	case top && !left && !right && !bottom:
		return TopOpenShape
	case bottom && !left && !right && !top:
		return BottomOpenShape
	case left && !right && !top && !bottom:
		return LeftOpenShape
	case right && !left && !top && !bottom:
		return RightOpenShape
	default:
		// Remaining grounded combinations (e.g. left+right, or
		// bottom+right) have no Figure-2 name; they are answered as
		// general rectangles.
		if top {
			return TopOpenShape
		}
		return FourSided
	}
}

// TopOpenFamily reports whether the shape is answerable by the top-open
// structures (Theorems 1 and 4): exactly the rectangles whose top edge
// is grounded.
func (s Shape) TopOpenFamily() bool {
	switch s {
	case TopOpenShape, DominanceShape, ContourShape, WholePlane:
		return true
	}
	return false
}

// Planner routes queries to the best registered backend and fans updates
// out to every backend. It is not itself safe for concurrent
// registration; register all backends before use (queries and updates
// then inherit whatever concurrency the backends support).
//
// Routing order: the top-open family goes to the top-open backend;
// everything else is offered to the registered mirrors (a mirror takes
// a rectangle when its reflection is top-open — the transpose mirror
// takes the whole grounded-right-edge family, O(log) instead of the
// general backend's Ω((n/B)^ε)); what remains goes to the general
// backend. Bottom-open, left-open and anti-dominance rectangles never
// match a mirror: the only dominance-preserving reflection is the
// transpose, and Theorem 5 proves those shapes are stuck on the general
// structure at linear space.
type Planner struct {
	topOpen  Backend // answers the top-open family; may be nil
	general  Backend // answers every shape; may be nil
	mirrors  []*MirrorBackend
	backends []Backend
}

// RegisterTopOpen installs the backend serving the top-open query family
// (top-open, dominance, contour, whole-plane).
func (pl *Planner) RegisterTopOpen(b Backend) {
	pl.topOpen = b
	pl.addBackend(b)
}

// RegisterGeneral installs the backend serving every rectangle shape.
// It answers the top-open family too when no top-open backend is
// registered.
func (pl *Planner) RegisterGeneral(b Backend) {
	pl.general = b
	pl.addBackend(b)
}

// RegisterMirror installs a reflected fast path. Mirrors are consulted
// in registration order for every rectangle outside the top-open
// family; the first whose reflection grounds the top edge serves it.
func (pl *Planner) RegisterMirror(m *MirrorBackend) {
	pl.mirrors = append(pl.mirrors, m)
	pl.addBackend(m)
}

func (pl *Planner) addBackend(b Backend) {
	for _, have := range pl.backends {
		if have == b {
			return
		}
	}
	pl.backends = append(pl.backends, b)
}

// Backends returns the distinct registered backends in registration
// order. The first is the primary consulted by Delete.
func (pl *Planner) Backends() []Backend { return pl.backends }

// Route returns the backend that should answer q: the top-open backend
// for the top-open family, then the first mirror whose reflection
// grounds q's top edge, then the general backend. It returns nil when
// no registered backend can answer q.
func (pl *Planner) Route(q geom.Rect) Backend {
	if Classify(q).TopOpenFamily() && pl.topOpen != nil {
		return pl.topOpen
	}
	for _, m := range pl.mirrors {
		if m.Serves(q) {
			return m
		}
	}
	return pl.general
}

// Mirrors returns the registered mirrored fast paths in registration
// order.
func (pl *Planner) Mirrors() []*MirrorBackend { return pl.mirrors }

// RangeSkyline answers q through the routed backend.
func (pl *Planner) RangeSkyline(q geom.Rect) []geom.Point {
	b := pl.Route(q)
	if b == nil {
		panic(fmt.Sprintf("engine: no backend registered for %v (%v)", q, Classify(q)))
	}
	return b.RangeSkyline(q)
}

// Insert applies p to every backend so they index the same point set.
func (pl *Planner) Insert(p geom.Point) error {
	for _, b := range pl.backends {
		if err := b.Insert(p); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes p, presence-check-first: the primary (first registered)
// backend is consulted first, and the remaining backends are only
// mutated after it confirms presence. A miss therefore mutates nothing,
// and a backend disagreeing with the primary's verdict is reported as
// corruption. On an error after the primary confirmed presence the
// reported bool is still true — the point was removed from the primary —
// so callers can keep their size accounting consistent with it.
func (pl *Planner) Delete(p geom.Point) (bool, error) {
	if len(pl.backends) == 0 {
		return false, fmt.Errorf("engine: no backends registered")
	}
	present, err := pl.backends[0].Delete(p)
	if err != nil || !present {
		return present, err
	}
	for _, b := range pl.backends[1:] {
		ok, err := b.Delete(p)
		if err != nil {
			return true, err
		}
		if !ok {
			return true, fmt.Errorf("engine: backends disagree on presence of %v", p)
		}
	}
	return true, nil
}

// BatchInsert applies the batch to every backend through its batched
// path, so each backend amortizes its per-call overhead (the sharded
// backend takes each shard lock once per batch, not once per point).
func (pl *Planner) BatchInsert(pts []geom.Point) error {
	for _, b := range pl.backends {
		if err := b.BatchInsert(pts); err != nil {
			return err
		}
	}
	return nil
}

// batchDeleteReporter is the optional batched analogue of
// presence-check-first: a backend that can report WHICH points a batch
// delete removed, not just how many. Both dynamic primaries implement
// it (DynTopBackend and shard.Engine).
type batchDeleteReporter interface {
	BatchDeleteRemoved(pts []geom.Point) ([]geom.Point, error)
}

// BatchDelete removes the batch through every backend's batched path,
// returning how many points were present and removed. It is
// presence-check-first, like Delete: the primary resolves the batch
// first and reports the subset it actually removed, and only that
// confirmed subset is fanned out to the remaining backends — so a miss
// mutates nothing anywhere, and concurrent overlapping batches (legal
// on the sharded layouts, where the primary serializes per shard and
// resolves every contended point to exactly one caller) fan out
// disjoint subsets instead of tripping false corruption reports. A
// secondary backend disagreeing on a confirmed-present point is real
// corruption; as for Delete, the returned count stays meaningful
// alongside the error. Every backend runs its batched path — one lock
// per shard per batch on the sharded engine and the sharded mirror.
// (A primary without BatchDeleteRemoved — not a configuration core.Open
// builds — falls back to unfiltered fan-out with count cross-checking,
// which assumes no concurrent overlapping batches.)
func (pl *Planner) BatchDelete(pts []geom.Point) (int, error) {
	if len(pl.backends) == 0 {
		return 0, fmt.Errorf("engine: no backends registered")
	}
	if len(pl.backends) == 1 {
		// No secondaries to confirm the subset to; skip materializing
		// the removed-points slice.
		return pl.backends[0].BatchDelete(pts)
	}
	if _, ok := pl.backends[0].(batchDeleteReporter); ok {
		removed, err := pl.BatchDeleteRemoved(pts)
		return len(removed), err
	}
	removed, err := pl.backends[0].BatchDelete(pts)
	if err != nil {
		return removed, err
	}
	for _, b := range pl.backends[1:] {
		got, err := b.BatchDelete(pts)
		if err != nil {
			return removed, err
		}
		if got != removed {
			return removed, fmt.Errorf(
				"engine: backends disagree on batch presence (%d vs %d removed)", got, removed)
		}
	}
	return removed, nil
}

// BatchDeleteRemoved is BatchDelete reporting the removed points
// themselves: the primary resolves the batch, the confirmed subset is
// fanned out to the secondaries, and that subset is returned. A
// CacheBackend wrapping the planner uses it to invalidate exactly the
// removed points — a batch of all misses then evicts nothing. It
// requires a primary that can report its removed subset (every dynamic
// configuration core.Open builds has one).
func (pl *Planner) BatchDeleteRemoved(pts []geom.Point) ([]geom.Point, error) {
	if len(pl.backends) == 0 {
		return nil, fmt.Errorf("engine: no backends registered")
	}
	rep, ok := pl.backends[0].(batchDeleteReporter)
	if !ok {
		return nil, fmt.Errorf("engine: primary backend cannot report removed points")
	}
	confirmed, err := rep.BatchDeleteRemoved(pts)
	if err != nil {
		return confirmed, err
	}
	for _, b := range pl.backends[1:] {
		got, err := b.BatchDelete(confirmed)
		if err != nil {
			return confirmed, err
		}
		if got != len(confirmed) {
			return confirmed, fmt.Errorf(
				"engine: backends disagree on batch presence (%d vs %d removed)", got, len(confirmed))
		}
	}
	return confirmed, nil
}

// statsKeyer lets a backend name the storage its Stats method counts,
// so aggregation can dedup backends sharing a disk (the unsharded
// layout charges its top-open and 4-sided structures to one disk).
type statsKeyer interface{ StatsKey() any }

// statsKey returns the dedup key for a backend's I/O counters: its
// declared storage key when it has one, the backend itself otherwise.
func statsKey(b Backend) any {
	if k, ok := b.(statsKeyer); ok {
		return k.StatsKey()
	}
	return b
}

// Stats aggregates the I/O counters of every registered backend,
// counting each distinct underlying disk once — backends sharing a disk
// (the unsharded adapters) do not double-count, and every mirror's
// private storage is included, so skybench-style measurements through
// the planner stay truthful.
func (pl *Planner) Stats() emio.Stats {
	var total emio.Stats
	seen := make(map[any]bool, len(pl.backends))
	for _, b := range pl.backends {
		k := statsKey(b)
		if seen[k] {
			continue
		}
		seen[k] = true
		total = total.Add(b.Stats())
	}
	return total
}

// ResetStats zeroes the I/O counters of every registered backend
// (resetting a shared disk twice is harmless).
func (pl *Planner) ResetStats() {
	for _, b := range pl.backends {
		b.ResetStats()
	}
}
