package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dyntop"
	"repro/internal/emio"
	"repro/internal/extsort"
	"repro/internal/foursided"
	"repro/internal/geom"
	"repro/internal/topopen"
)

// buildStaticTopOpen builds a Theorem 1 backend over pts on its own disk.
func buildStaticTopOpen(t *testing.T, pts []geom.Point) (*TopOpenBackend, *emio.Disk) {
	t.Helper()
	d := emio.NewDisk(mirrorCfg)
	f := extsort.FromSlice(d, 2, pts)
	return NewTopOpen(topopen.Build(d, f), d), d
}

// buildSnapPlanner assembles the full unsharded routing table over one
// shared primary disk — dyntop for the top-open family, foursided for
// the rest, a transpose mirror on its own disk — mirroring what
// core.Open builds in dynamic mode.
func buildSnapPlanner(t *testing.T, pts []geom.Point) (*Planner, *emio.Disk) {
	t.Helper()
	d := emio.NewDisk(mirrorCfg)
	pl := &Planner{}
	pl.RegisterTopOpen(NewDynTop(dyntop.BuildSABE(d, 0.5, pts), d))
	pl.RegisterGeneral(NewFourSided(foursided.Build(d, 0.5, pts), d))
	m, _ := buildMirror(t, pts)
	pl.RegisterMirror(m)
	return pl, d
}

// snapShapes is one query per Figure-2 shape over the given span, so a
// pinned view exercises every routing arm.
func snapShapes(span geom.Coord) []geom.Rect {
	mid, q3 := span/2, 3*span/4
	return []geom.Rect{
		geom.TopOpen(span/4, q3, span/8),
		geom.Rect{X1: span / 4, X2: q3, Y1: span / 8, Y2: q3},
		geom.LeftOpen(mid, span/8, q3),
		geom.RightOpen(mid, span/8, q3),
		geom.BottomOpen(span/4, q3, mid),
		geom.Dominance(mid, mid),
		geom.AntiDominance(mid, mid),
	}
}

// TestSnapshotStackFrozen pins a view through the whole wrapped stack —
// AsyncQueue over LogBackend over CacheBackend over the Planner — and
// asserts the view's answers for every shape stay byte-identical to the
// oracle frozen at the pin while later writes flow, drain and change the
// live answers. Release must return every retention and deferred block.
func TestSnapshotStackFrozen(t *testing.T) {
	const n = 220
	span := geom.Coord(n * 16)
	all := geom.GenUniform(n+120, span, 4400)
	pts := append([]geom.Point(nil), all[:n]...)
	pool := all[n:]
	geom.SortByX(pts)

	pl, _ := buildSnapPlanner(t, pts)
	cache, err := NewCache(pl, 64)
	if err != nil {
		t.Fatal(err)
	}
	lb := NewLogBackend(cache, &memLog{}, pts)
	q, err := NewAsyncQueue(lb, QueueOptions{FlushPoints: 1 << 20, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}

	ref := append([]geom.Point(nil), pts...)
	// Buffered writes the pin's flush must make visible.
	for _, p := range pool[:20] {
		if err := q.Insert(p); err != nil {
			t.Fatal(err)
		}
		ref = append(ref, p)
	}

	view, err := q.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	frozen := append([]geom.Point(nil), ref...)
	if got := pl.Retained(); got == 0 {
		t.Fatal("Retained() = 0 with a pinned view open")
	}

	check := func(stage string) {
		t.Helper()
		for _, r := range snapShapes(span) {
			got, want := view.RangeSkyline(r), geom.RangeSkyline(frozen, r)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("%s: view %v = %v, frozen oracle %v", stage, r, got, want)
			}
		}
	}
	check("at pin")

	// Mutate through the queue: inserts, deletes of pinned points, and a
	// flush so the drains retire spans the view still references.
	for _, p := range pool[20:] {
		if err := q.Insert(p); err != nil {
			t.Fatal(err)
		}
		ref = append(ref, p)
	}
	for _, victim := range frozen[:40] {
		if _, err := q.Delete(victim); err != nil {
			t.Fatal(err)
		}
		ref = diffPoints(ref, victim)
	}
	if err := q.Flush(); err != nil {
		t.Fatal(err)
	}
	check("after writes drained")

	// The live index moved on; the view did not.
	liveQ := geom.TopOpen(0, span, 0)
	if fmt.Sprint(q.RangeSkyline(liveQ)) != fmt.Sprint(geom.RangeSkyline(ref, liveQ)) {
		t.Fatal("live answer diverged from the live oracle")
	}
	if fmt.Sprint(view.RangeSkyline(liveQ)) != fmt.Sprint(geom.RangeSkyline(frozen, liveQ)) {
		t.Fatal("pinned answer moved with the live index")
	}
	if pl.DeferredBlocks() == 0 {
		t.Fatal("deletes of pinned points retired no blocks — the retention is not holding anything")
	}

	view.Release()
	view.Release() // idempotent
	if got := pl.Retained(); got != 0 {
		t.Fatalf("Retained() = %d after release", got)
	}
	if got := pl.DeferredBlocks(); got != 0 {
		t.Fatalf("DeferredBlocks() = %d after release — retired spans leaked", got)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
}

// diffPoints removes one point from a slice (order not preserved).
func diffPoints(pts []geom.Point, victim geom.Point) []geom.Point {
	for i, p := range pts {
		if p == victim {
			pts[i] = pts[len(pts)-1]
			return pts[:len(pts)-1]
		}
	}
	return pts
}

// TestSnapshotStaticTopOpen pins the static Theorem 1 backend: the
// handle is the immutable index itself, and the retention opens and
// closes around it.
func TestSnapshotStaticTopOpen(t *testing.T) {
	const n = 180
	span := geom.Coord(n * 16)
	pts := geom.GenUniform(n, span, 4500)
	geom.SortByX(pts)
	top, d := buildStaticTopOpen(t, pts)

	view, err := top.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if d.Retained() != 1 {
		t.Fatalf("Retained() = %d, want 1", d.Retained())
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		x1 := geom.Coord(rng.Int63n(int64(span)))
		q := geom.TopOpen(x1, x1+span/4, geom.Coord(rng.Int63n(int64(span))))
		got, want := view.RangeSkyline(q), geom.RangeSkyline(pts, q)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("%v: view %v, oracle %v", q, got, want)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("4-sided rect on a topopen view should panic")
			}
		}()
		view.RangeSkyline(geom.Rect{X1: 0, X2: span, Y1: 0, Y2: span / 2})
	}()
	view.Release()
	if d.Retained() != 0 {
		t.Fatalf("Retained() = %d after release", d.Retained())
	}
}

// TestPlanViewRouting freezes a full routing table and asserts the
// PlanView routes each shape the same way the live planner does:
// top-open family to the pinned top-open view, grounded-right-edge
// rectangles to the pinned mirror, the rest to the pinned general view.
func TestPlanViewRouting(t *testing.T) {
	const n = 150
	span := geom.Coord(n * 16)
	pts := geom.GenUniform(n, span, 4600)
	geom.SortByX(pts)
	pl, _ := buildSnapPlanner(t, pts)

	view, err := pl.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer view.Release()
	pv := view.(*PlanView)

	for _, tc := range []struct {
		q    geom.Rect
		want string
	}{
		{geom.TopOpen(0, span, span/2), "topopen"},
		{geom.Dominance(span/2, span/2), "topopen"},
		{geom.RightOpen(span/2, span/8, span/2), "mirror"},
		{geom.Rect{X1: span / 4, X2: span / 2, Y1: span / 8, Y2: span / 2}, "mirror"},
		{geom.LeftOpen(span/2, span/8, span/2), "general"},
		{geom.BottomOpen(0, span, span/2), "general"},
		{geom.AntiDominance(span/2, span/2), "general"},
	} {
		routed := pv.Route(tc.q)
		var got string
		switch {
		case routed == pv.topOpen:
			got = "topopen"
		case routed == pv.general:
			got = "general"
		default:
			got = "mirror"
		}
		want := tc.want
		if tc.want == "mirror" {
			// A bounded 4-sided rectangle only routes to the mirror when
			// its reflection is top-open; mirror routing must agree with
			// the live planner either way.
			if _, isMirror := pl.Route(tc.q).(*MirrorBackend); !isMirror {
				want = "general"
			}
		}
		if got != want {
			t.Fatalf("Route(%v) = %s, want %s", tc.q, got, want)
		}
		lgot, lwant := fmt.Sprint(pv.RangeSkyline(tc.q)), fmt.Sprint(geom.RangeSkyline(pts, tc.q))
		if lgot != lwant {
			t.Fatalf("PlanView %v = %s, oracle %s", tc.q, lgot, lwant)
		}
	}
}

// TestSnapshotNotSnapshottable pins the error path of every wrapping
// layer: a backend without Snapshot support propagates a typed error up
// through planner, cache, log and queue, and a mid-pin failure releases
// the views already taken.
func TestSnapshotNotSnapshottable(t *testing.T) {
	fake := newFake("plain", geom.Point{X: 1, Y: 1})

	pl := &Planner{}
	pl.RegisterGeneral(fake)
	if _, err := pl.Snapshot(); err == nil {
		t.Fatal("Planner.Snapshot over a non-snapshottable backend should fail")
	}

	cache, err := NewCache(fake, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Snapshot(); err == nil {
		t.Fatal("CacheBackend.Snapshot should propagate the inner failure")
	}
	if _, err := NewLogBackend(fake, &memLog{}, nil).Snapshot(); err == nil {
		t.Fatal("LogBackend.Snapshot should propagate the inner failure")
	}
	q, err := NewAsyncQueue(fake, QueueOptions{FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Snapshot(); err == nil {
		t.Fatal("AsyncQueue.Snapshot should propagate the inner failure")
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	// Mid-pin failure: the snapshottable backend pinned before the
	// failing one must be released again.
	pts := geom.GenUniform(50, 800, 4700)
	geom.SortByX(pts)
	d := emio.NewDisk(mirrorCfg)
	dyn := NewDynTop(dyntop.BuildSABE(d, 0.5, pts), d)
	mixed := &Planner{}
	mixed.RegisterTopOpen(dyn)
	mixed.RegisterGeneral(fake)
	if _, err := mixed.Snapshot(); err == nil {
		t.Fatal("mixed planner Snapshot should fail on the fake backend")
	}
	if got := d.Retained(); got != 0 {
		t.Fatalf("Retained() = %d after failed pin — partial views leaked", got)
	}
}
