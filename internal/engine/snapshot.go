// Snapshot views: the read-only seam of the engine. A View is a pinned
// point-in-time answerer for some family of rectangles; Snapshottable
// is the optional interface of backends that can produce one. The
// stack threads snapshots the same way it threads queries:
//
//	AsyncQueue.Snapshot  — flushes every buffer ONCE to establish the
//	                       drain boundary, then pins the inner backend
//	LogBackend.Snapshot  — passes through (reads are not logged)
//	CacheBackend.Snapshot— passes through (the cache memoizes LIVE
//	                       answers; a snapshot's answers are frozen by
//	                       construction, so caching them buys nothing
//	                       and sharing entries with the live index
//	                       would serve post-pin answers)
//	Planner.Snapshot     — pins every registered backend once and
//	                       freezes the routing table into a PlanView
//	MirrorBackend        — pins the inner (reflected) backend and keeps
//	                       rewriting rectangles at query time
//	adapters             — open an emio retention, then capture the
//	                       structure's immutable root handle
//
// The retention-before-capture order is load-bearing: once RetainFrees
// returns, no span the captured roots reference can be reclaimed until
// the view is released, and captures are performed by the caller while
// it still holds whatever lock serializes writers (core's engineMu,
// a shard's mutex), so no free can slip between the two.
//
// Copy-on-pin vs epoch-retired roots: both were candidates for the
// 4-sided secondaries. Copy-on-pin (what dyntop.Snapshot and
// foursided.Snapshot do) clones the node graph in host RAM — zero
// simulated I/Os, O(n/B) pointer copies — while epoch-retiring whole
// roots would make every UPDATE copy its root-to-leaf path. Measured
// on the E17 workload the clone costs microseconds per pin and nothing
// per update, so copy-on-pin wins at every update:snapshot ratio
// above ~1:1 and is what ships; the emio retention supplies the epoch
// machinery for the spans either way.
package engine

import (
	"fmt"

	"repro/internal/emio"
	"repro/internal/geom"
)

// View is a pinned point-in-time RangeSkyline answerer. Answers are
// byte-identical to what the live backend would have answered at the
// pin point, regardless of writes applied since. Release unpins the
// view — idempotent, and required: an unreleased view holds retired
// storage spans (emio deferred frees) alive forever. Concurrent
// RangeSkyline calls on one View are safe when the underlying disks
// are guarded (emio.NewConcurrentDisk), because a view's state is
// immutable.
type View interface {
	RangeSkyline(q geom.Rect) []geom.Point
	Release()
}

// Snapshottable is the optional interface of backends that can pin a
// point-in-time View of themselves. Every backend core.Open builds
// implements it; purely test-local backends need not.
type Snapshottable interface {
	Snapshot() (View, error)
}

// errNotSnapshottable reports a backend that cannot pin a view.
func errNotSnapshottable(b Backend) error {
	return fmt.Errorf("engine: backend %T does not support snapshots", b)
}

// retainedView pairs a pinned answerer with the retention holding its
// spans alive. query is the shape-checked delegate.
type retainedView struct {
	query func(q geom.Rect) []geom.Point
	ret   *emio.Retention
}

func (v *retainedView) RangeSkyline(q geom.Rect) []geom.Point { return v.query(q) }
func (v *retainedView) Release()                              { v.ret.Release() }

// Snapshot pins the static Theorem 1 index: the handle is the index
// itself (it never mutates), and the retention guards against a
// concurrent Free/Close retiring its spans mid-query.
func (b *TopOpenBackend) Snapshot() (View, error) {
	ret := b.disk.RetainFrees()
	h := b.ix.Snapshot()
	return &retainedView{
		query: func(q geom.Rect) []geom.Point {
			if !q.IsTopOpen() {
				panic("engine: topopen snapshot requires a top-open rectangle")
			}
			return h.Query(q.X1, q.X2, q.Y1)
		},
		ret: ret,
	}, nil
}

// Snapshot pins the Theorem 4 tree: retention first, then the O(n/B)
// host-pointer root clone (zero simulated I/Os). The caller must hold
// whatever lock serializes writers on this tree across the call.
func (b *DynTopBackend) Snapshot() (View, error) {
	ret := b.disk.RetainFrees()
	h := b.tree.Snapshot()
	return &retainedView{
		query: func(q geom.Rect) []geom.Point {
			if !q.IsTopOpen() {
				panic("engine: dyntop snapshot requires a top-open rectangle")
			}
			return h.Query(q.X1, q.X2, q.Y1)
		},
		ret: ret,
	}, nil
}

// Snapshot pins the Theorem 6 structure, secondaries included (each
// internal node's dyntop is pinned through its own Snapshot).
func (b *FourSidedBackend) Snapshot() (View, error) {
	ret := b.disk.RetainFrees()
	h := b.ix.Snapshot()
	return &retainedView{
		query: func(q geom.Rect) []geom.Point { return h.Query(q) },
		ret:   ret,
	}, nil
}

// MirrorView serves queries whose reflection is top-open from a pinned
// view of the reflected point set — the frozen counterpart of
// MirrorBackend, same rewriting at query time.
type MirrorView struct {
	ref   geom.Reflection
	inner View
}

// Serves reports whether q reflects onto the top-open family, exactly
// like the live mirror's Serves.
func (m *MirrorView) Serves(q geom.Rect) bool { return m.ref.Rect(q).IsTopOpen() }

// RangeSkyline rewrites q into the mirrored frame, queries the pinned
// inner view, and maps the answer back into increasing-x order.
func (m *MirrorView) RangeSkyline(q geom.Rect) []geom.Point {
	return m.ref.SkylineToOriginal(m.inner.RangeSkyline(m.ref.Rect(q)))
}

// Release unpins the inner view.
func (m *MirrorView) Release() { m.inner.Release() }

// Snapshot pins the mirror: the inner (reflected) backend is pinned
// and the reflection keeps being applied per query.
func (m *MirrorBackend) Snapshot() (View, error) {
	s, ok := m.inner.(Snapshottable)
	if !ok {
		return nil, errNotSnapshottable(m.inner)
	}
	v, err := s.Snapshot()
	if err != nil {
		return nil, err
	}
	return &MirrorView{ref: m.ref, inner: v}, nil
}

// Snapshot passes through: the cache memoizes live answers; snapshot
// answers are frozen by construction and must not share entries with
// the live index (a hit filled after the pin would serve a post-pin
// answer).
func (c *CacheBackend) Snapshot() (View, error) {
	s, ok := c.inner.(Snapshottable)
	if !ok {
		return nil, errNotSnapshottable(c.inner)
	}
	return s.Snapshot()
}

// Snapshot passes through: reads are never logged, so a pinned view
// needs nothing from the WAL.
func (lb *LogBackend) Snapshot() (View, error) {
	s, ok := lb.inner.(Snapshottable)
	if !ok {
		return nil, errNotSnapshottable(lb.inner)
	}
	return s.Snapshot()
}

// Snapshot establishes the drain boundary: every buffer is flushed
// ONCE — the only drain a snapshot ever costs — and the fully-applied
// inner backend is pinned. Writers that enqueue after the flush land
// beyond the boundary and are invisible to the view, exactly the
// point-in-time contract.
//
// A degraded (frozen) queue still snapshots: the flush returns the
// sticky drain error without swapping anything, and the view pins the
// applied state — every batch that failed was abandoned whole, so the
// applied state is consistent and identical to what a reopen-replay of
// the WAL reconstructs. Stranded buffered writes were never
// acknowledged as drained and are invisible, exactly like writes
// enqueued after the boundary. This is the "reads and Snapshot keep
// serving" half of the degradation contract.
func (q *AsyncQueue) Snapshot() (View, error) {
	q.Flush() //errlint:ok degraded queues pin the applied state; error stays latched for writers
	s, ok := q.inner.(Snapshottable)
	if !ok {
		return nil, errNotSnapshottable(q.inner)
	}
	return s.Snapshot()
}

// PlanView is a frozen Planner: the same routing table (top-open
// family → top-open view, reflected shapes → mirror views, rest →
// general view) over pinned views instead of live backends.
type PlanView struct {
	topOpen View
	general View
	mirrors []*MirrorView
	views   []View // distinct views, for Release
}

// Snapshot pins every registered backend once — a backend registered
// for several roles (the sharded engine serves both families) is
// pinned a single time, so the roles answer from the SAME point in
// time — and freezes the routing table. On any failure the views
// already pinned are released. The returned View is a *PlanView; the
// interface return type is what lets the wrapping layers (queue, WAL,
// cache) pass Snapshot calls through to the planner uniformly.
func (pl *Planner) Snapshot() (View, error) {
	views := make(map[Backend]View, len(pl.backends))
	pv := &PlanView{}
	for _, b := range pl.backends {
		s, ok := b.(Snapshottable)
		if !ok {
			pv.Release()
			return nil, errNotSnapshottable(b)
		}
		v, err := s.Snapshot()
		if err != nil {
			pv.Release()
			return nil, err
		}
		views[b] = v
		pv.views = append(pv.views, v)
	}
	if pl.topOpen != nil {
		pv.topOpen = views[pl.topOpen]
	}
	if pl.general != nil {
		pv.general = views[pl.general]
	}
	for _, m := range pl.mirrors {
		pv.mirrors = append(pv.mirrors, views[m].(*MirrorView))
	}
	return pv, nil
}

// Route returns the view that answers q, mirroring Planner.Route:
// top-open family to the top-open view, then the first mirror whose
// reflection grounds q's top edge, then the general view.
func (pv *PlanView) Route(q geom.Rect) View {
	if Classify(q).TopOpenFamily() && pv.topOpen != nil {
		return pv.topOpen
	}
	for _, m := range pv.mirrors {
		if m.Serves(q) {
			return m
		}
	}
	return pv.general
}

// RangeSkyline answers q through the routed view.
func (pv *PlanView) RangeSkyline(q geom.Rect) []geom.Point {
	v := pv.Route(q)
	if v == nil {
		panic(fmt.Sprintf("engine: no view pinned for %v (%v)", q, Classify(q)))
	}
	return v.RangeSkyline(q)
}

// Release unpins every view. Idempotent (each underlying retention
// release is).
func (pv *PlanView) Release() {
	for _, v := range pv.views {
		v.Release()
	}
}

// retirementCounter is what a storage unit (an emio.Disk, or the
// sharded engine summing its shard disks) reports about snapshot
// retirement: blocks freed by the live index but deferred for open
// retentions, and the number of open retentions.
type retirementCounter interface {
	DeferredBlocks() int
	Retained() int
}

// DeferredBlocks sums the deferred-free queues of every distinct
// storage unit behind the planner — blocks the live index has retired
// that are held alive for open snapshots. Zero once every snapshot is
// released: the no-leak invariant of the generation accounting.
func (pl *Planner) DeferredBlocks() int {
	return pl.sumRetirement(func(rc retirementCounter) int { return rc.DeferredBlocks() })
}

// Retained sums the open retentions of every distinct storage unit
// behind the planner (one per unit per unreleased snapshot).
func (pl *Planner) Retained() int {
	return pl.sumRetirement(func(rc retirementCounter) int { return rc.Retained() })
}

func (pl *Planner) sumRetirement(get func(retirementCounter) int) int {
	total := 0
	seen := make(map[any]bool, len(pl.backends))
	for _, b := range pl.backends {
		k := statsKey(b)
		if seen[k] {
			continue
		}
		seen[k] = true
		if rc, ok := k.(retirementCounter); ok {
			total += get(rc)
		}
	}
	return total
}

// assert the stack's layers all thread snapshots.
var (
	_ Snapshottable = (*TopOpenBackend)(nil)
	_ Snapshottable = (*DynTopBackend)(nil)
	_ Snapshottable = (*FourSidedBackend)(nil)
	_ Snapshottable = (*MirrorBackend)(nil)
	_ Snapshottable = (*CacheBackend)(nil)
	_ Snapshottable = (*LogBackend)(nil)
	_ Snapshottable = (*AsyncQueue)(nil)
	_ Snapshottable = (*Planner)(nil)
	_ View          = (*PlanView)(nil)
	_ View          = (*MirrorView)(nil)
)
