// AsyncQueue: the buffered write path of the engine. It wraps any
// Backend — in core.DB the read-through cache over the planner, or the
// planner itself — and turns Insert/Delete into appends to per-x-slab
// buffers that return without touching the underlying structures, so
// writer latency is independent of structure rebuild costs (the dyntop
// global rebuilds, the Theorem 6 reconstruction cascades). Buffers are
// drained through the existing batched paths — BatchInsert and
// BatchDeleteRemoved — which take each shard lock once per batch and,
// when the drain sink is a CacheBackend, fire ONE shard-aware
// invalidation sweep per drained batch instead of one per point.
//
// Slabbing mirrors the cache's: when the wrapped backend exposes x-cuts
// through the Partitioned interface (shard.Engine does, and CacheBackend
// forwards what it learned), each buffer covers one x-slab, so a drain
// is a batch localized to one shard. Without partition information the
// whole axis is one slab and one buffer.
//
// Consistency contract — drain-on-read: RangeSkyline first drains every
// buffer whose x-slab intersects the query rectangle, then queries the
// wrapped backend, so queued answers are byte-identical to a synchronous
// engine that applied every accepted write immediately. The rectangle
// can only contain points whose x lies inside it, and every such point's
// buffered writes live in an intersecting slab, so draining those slabs
// is sufficient — buffered writes in other slabs cannot change the
// answer. Deletes are first-class: a buffered delete drains before the
// read, so a deleted point is never visible as live, even though the
// delete itself returned before touching any structure.
//
// Per-point coalescing: opposite buffered writes against the same point
// cancel without ever reaching the structures. The state machine is
// exact about the one asymmetry: insert-then-delete of a buffered point
// is a pure no-op (the point never existed), but delete-then-insert must
// keep BOTH ops — the delete may hit a point the structures already
// hold, and replaying delete-before-insert is what makes the re-insert
// legal either way. Drains therefore apply each batch's deletes before
// its inserts; across distinct points the order is irrelevant (general
// position makes batches sets).
//
// Draining is triggered three ways: a buffer reaching FlushPoints is
// drained inline by the writer that filled it (amortized: one batch
// apply per FlushPoints accepted writes — and deliberately synchronous,
// so a single-threaded workload drains at deterministic points and the
// E15 benchguard gate can compare drain counters and simulated I/Os
// exactly across hosts); a background drainer flushes idle buffers every
// FlushInterval; and Flush/Close drain everything on demand.
package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/emio"
	"repro/internal/geom"
)

// QueueOptions configures an AsyncQueue.
type QueueOptions struct {
	// FlushPoints is the per-buffer threshold: a buffer holding this
	// many pending points is drained inline by the writer that filled
	// it. Zero means 128; negative is an error.
	FlushPoints int
	// FlushInterval is the background drainer's period: every interval
	// it flushes whatever the size and read triggers left buffered.
	// Zero means 100ms; negative disables the background drainer
	// entirely (reads, FlushPoints and explicit Flush still drain —
	// the deterministic configuration the E15 gate runs).
	FlushInterval time.Duration
	// MaxBuffered is the admission-control cap: the maximum number of
	// distinct points one slab buffer may hold. A write that would
	// push a slab past the cap either blocks (default: the writer
	// drains the slab inline and retries — backpressure as latency) or
	// is shed with ErrBackpressure (ShedWrites true — backpressure as
	// load shedding). Zero means unlimited; negative is an error.
	// MaxBuffered below FlushPoints is legal but pointless: the
	// FlushPoints trigger drains first.
	MaxBuffered int
	// ShedWrites selects the shed policy for MaxBuffered overflow:
	// reject the write with ErrBackpressure instead of blocking the
	// writer behind an inline drain.
	ShedWrites bool
	// AdaptiveFlush lets each slab adapt its own drain threshold to its
	// traffic: two consecutive size-triggered drains double the slab's
	// threshold (up to 8 × FlushPoints — hot slabs drain bigger
	// batches, amortizing structure work), and any read- or
	// timer-triggered drain halves it back toward FlushPoints (a slab
	// that readers keep draining should stay shallow). Off by default:
	// the adjustment is deterministic per slab, but workloads gated on
	// exact drain counts (skybench E15) want the fixed threshold.
	AdaptiveFlush bool
}

// QueueCounters are an AsyncQueue's operation totals. At quiescence
// (after Flush, with no writers in flight) they satisfy
// Enqueued == Drained + Coalesced.
type QueueCounters struct {
	// Enqueued counts accepted writes: every Insert and Delete call
	// (batched ops count one per point).
	Enqueued uint64
	// Drained counts buffered writes applied to the wrapped backend
	// (a drained delete that misses still counts: it was applied).
	Drained uint64
	// Coalesced counts buffered writes cancelled in-buffer and never
	// applied: an insert/delete pair against the same point counts
	// two, a duplicate buffered delete (a guaranteed miss) counts one.
	Coalesced uint64
	// ForcedDrains counts non-empty drains forced by reads — the
	// drain-on-read consistency rule paying its cost. Size-, timer-
	// and Flush-triggered drains are not forced.
	ForcedDrains uint64
	// ReadDrains counts buffered writes applied by read-forced drains:
	// the slice of Drained charged to readers rather than to the size,
	// timer or Flush triggers. It is the work a reader had to perform
	// inline before its query could run — exactly the contention a
	// snapshot read (which never drains) removes, and what skybench E17
	// measures.
	ReadDrains uint64
	// Shed counts writes rejected with ErrBackpressure by the
	// MaxBuffered cap under the shed policy. A shed write was never
	// accepted — it is absent from Enqueued.
	Shed uint64
	// Blocked counts writes that hit the MaxBuffered cap under the
	// block policy and had to drain their slab inline before being
	// accepted (each admission retry counts one).
	Blocked uint64
	// Slabs holds the per-slab depth/drain breakdown — the telemetry
	// the rebalance policy reads, surfaced for operators. Slab i covers
	// the queue's i-th x-slab; a rebalance reshape replaces the slabs,
	// so per-slab totals restart at each cut change (pending writes
	// migrate and stay visible in Depth).
	Slabs []SlabQueueCounters
}

// SlabQueueCounters are one x-slab buffer's totals since the slab was
// created (queue construction, or the last cut change).
type SlabQueueCounters struct {
	// Depth is the number of points with pending buffered writes.
	Depth int
	// Enqueued counts writes accepted into this slab.
	Enqueued uint64
	// Drained counts buffered writes this slab applied to the backend.
	Drained uint64
	// FlushAt is the slab's current drain threshold (FlushPoints unless
	// AdaptiveFlush moved it).
	FlushAt int
}

// pendingState is a point's buffered-write state inside one slab.
type pendingState int8

const (
	// pendingIns: one buffered insert.
	pendingIns pendingState = iota + 1
	// pendingDel: one buffered delete.
	pendingDel
	// pendingDelIns: a buffered delete followed by a buffered
	// re-insert. Both must drain, delete first: the delete may hit a
	// point the structures hold, and removing it first is what makes
	// the re-insert legal.
	pendingDelIns
)

// slabBuf is one x-slab's write buffer. mu guards the pending map and
// the arrival order; drainMu serializes whole drains (swap + apply), so
// a reader that acquires it observes every previously swapped batch
// fully applied — the lock the drain-on-read exactness rests on.
// Writers only ever take mu, so enqueues never wait for an apply.
type slabBuf struct {
	drainMu sync.Mutex
	mu      sync.Mutex
	pending map[geom.Point]pendingState
	// order records first-arrival order so drains replay
	// deterministically (map iteration would not); cancelled points
	// stay in the slice and are skipped at drain.
	order []geom.Point
	// flushAt is the slab's drain threshold; fixed at FlushPoints
	// unless AdaptiveFlush adjusts it. sizeStreak counts consecutive
	// size-triggered drains (the grow signal). Both guarded by mu.
	flushAt    int
	sizeStreak int
	// enqueued/drained are this slab's telemetry counters.
	enqueued atomic.Uint64
	drained  atomic.Uint64
}

func newSlabBuf(flushAt int) *slabBuf {
	return &slabBuf{pending: make(map[geom.Point]pendingState), flushAt: flushAt}
}

// drainReason tags what triggered a drain: the FlushPoints size
// threshold, a read (drain-on-read), or everything else (timer, explicit
// Flush, Close, admission control). AdaptiveFlush grows a slab's
// threshold on consecutive size triggers and shrinks it on the rest.
type drainReason int8

const (
	drainSize drainReason = iota
	drainRead
	drainTimer
)

// AsyncQueue is a buffering write-behind layer over any Backend. It
// implements Backend: writes are buffered per x-slab and applied in
// batches; reads drain the slabs they intersect first, so answers are
// byte-identical to a synchronous engine's.
type AsyncQueue struct {
	inner Backend
	opts  QueueOptions
	// topoMu guards cuts and slabs as a pair. Every public operation
	// holds it shared for its full duration — enqueue through any inline
	// drain, drain-on-read through the inner query — and a cut change
	// (reshape) takes it exclusively, so no read can observe the window
	// where buffered ops are mid-migration between slab sets. The write
	// lock is only ever taken by the reshape goroutine (never on a
	// caller's stack, which may already hold the read side through a
	// drain), so the read side cannot self-deadlock.
	topoMu sync.RWMutex
	cuts   []geom.Coord
	slabs  []*slabBuf

	// reshapeMu guards the pending-cuts mailbox; reshaper reports
	// whether the goroutine applying mailbox entries is running.
	reshapeMu sync.Mutex
	wantCuts  []geom.Coord
	haveWant  bool
	reshaper  bool

	// applied is the net point-count delta the drains have applied:
	// +1 per drained insert, -1 per drained delete that hit. With all
	// buffers drained, initial size + applied is the exact live count.
	applied atomic.Int64

	enqueued    atomic.Uint64
	drained     atomic.Uint64
	coalesced   atomic.Uint64
	forced      atomic.Uint64
	readDrained atomic.Uint64
	shed        atomic.Uint64
	blocked     atomic.Uint64

	closed atomic.Bool
	// closeMu serializes Close callers, so a second Close cannot
	// return before the first finished draining.
	closeMu sync.Mutex
	stop    chan struct{}
	done    chan struct{}

	// firstErr latches the first apply error any drain ever hit —
	// background tick, drain-on-read, or explicit Flush. It is never
	// cleared: callers like core.DB.Len legitimately discard Flush's
	// return value, so a take-and-clear would silently lose the error.
	// Every later Flush and Close keeps returning it.
	errMu    sync.Mutex
	firstErr error
}

// NewAsyncQueue wraps inner with an asynchronous write queue. Partition
// cuts are discovered from the wrapped backend exactly like the cache's
// (a CacheBackend in the stack forwards the cuts it learned), so the
// queue's slabs coincide with the engine's shards. The background
// drainer starts immediately unless opts.FlushInterval is negative;
// callers owning a queue must Close it to stop that goroutine.
func NewAsyncQueue(inner Backend, opts QueueOptions) (*AsyncQueue, error) {
	if opts.FlushPoints < 0 {
		return nil, fmt.Errorf("engine: queue FlushPoints %d < 0", opts.FlushPoints)
	}
	if opts.MaxBuffered < 0 {
		return nil, fmt.Errorf("engine: queue MaxBuffered %d < 0", opts.MaxBuffered)
	}
	if opts.FlushPoints == 0 {
		opts.FlushPoints = 128
	}
	if opts.FlushInterval == 0 {
		opts.FlushInterval = 100 * time.Millisecond
	}
	xcuts, _ := learnCuts(inner)
	q := &AsyncQueue{
		inner: inner,
		opts:  opts,
		cuts:  xcuts,
		slabs: make([]*slabBuf, len(xcuts)+1),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	for i := range q.slabs {
		q.slabs[i] = newSlabBuf(opts.FlushPoints)
	}
	if opts.FlushInterval > 0 {
		go q.drainLoop()
	} else {
		close(q.done)
	}
	return q, nil
}

// drainLoop is the background drainer: every FlushInterval it flushes
// whatever the size and read triggers left buffered, so an idle index
// converges to fully-applied state without waiting for the next read.
func (q *AsyncQueue) drainLoop() {
	defer close(q.done)
	t := time.NewTicker(q.opts.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-q.stop:
			return
		case <-t.C:
			// Errors are not lost here: drainSlab latches the first one
			// and the next explicit Flush or Close surfaces it.
			q.Flush() //errlint:ok error latches sticky; surfaced by Flush/Close/Err
		}
	}
}

// Inner returns the wrapped backend drains apply to.
func (q *AsyncQueue) Inner() Backend { return q.inner }

// NumSlabs returns the number of per-x-slab buffers (the wrapped
// engine's shard count, or 1 without partition information).
func (q *AsyncQueue) NumSlabs() int {
	q.topoMu.RLock()
	defer q.topoMu.RUnlock()
	return len(q.slabs)
}

// SetCuts re-learns the slab partition after the wrapped engine
// rebalanced its cuts, migrating every buffered op — coalescing state
// intact — into the slab set the new cuts define. The reshape is
// deferred to a dedicated goroutine because SetCuts may be called from
// a cuts listener firing underneath one of this queue's own drains,
// whose caller already holds the topology lock the reshape must take
// exclusively. Consecutive calls coalesce to the latest cut set; until
// the reshape lands, the old slabs keep serving — slab/cut misalignment
// affects drain granularity only, never answers (drain-on-read drains
// every slab whose x-range intersects the query, under either cut set).
func (q *AsyncQueue) SetCuts(cuts []geom.Coord) {
	q.reshapeMu.Lock()
	q.wantCuts = append([]geom.Coord(nil), cuts...)
	q.haveWant = true
	if !q.reshaper {
		q.reshaper = true
		go q.reshapeLoop()
	}
	q.reshapeMu.Unlock()
}

// reshapeLoop applies mailbox entries until the mailbox is empty, then
// exits. SetCuts restarts it on demand.
func (q *AsyncQueue) reshapeLoop() {
	for {
		q.reshapeMu.Lock()
		if !q.haveWant {
			q.reshaper = false
			q.reshapeMu.Unlock()
			return
		}
		cuts := q.wantCuts
		q.wantCuts, q.haveWant = nil, false
		q.reshapeMu.Unlock()
		q.applyCuts(cuts)
	}
}

// applyCuts performs one reshape under the exclusive topology lock:
// build empty slabs for the new cuts, then move every pending op across
// in arrival order. Each point lives in exactly one old slab (the old
// cuts routed it deterministically), so its state lands in an empty
// spot in its new slab and the coalescing state machine carries over
// verbatim — a pendingDelIns stays a delete-then-reinsert, and later
// enqueues coalesce against the migrated state exactly as they would
// have against the original buffer.
func (q *AsyncQueue) applyCuts(cuts []geom.Coord) {
	q.topoMu.Lock()
	defer q.topoMu.Unlock()
	old := q.slabs
	q.cuts = append([]geom.Coord(nil), cuts...)
	q.slabs = make([]*slabBuf, len(q.cuts)+1)
	for i := range q.slabs {
		q.slabs[i] = newSlabBuf(q.opts.FlushPoints)
	}
	for _, s := range old {
		for _, p := range s.order {
			st, ok := s.pending[p]
			if !ok {
				continue // coalesced away before the reshape
			}
			delete(s.pending, p)
			d := q.slabs[bucketFor(q.cuts, p.X)]
			d.pending[p] = st
			d.order = append(d.order, p)
		}
	}
}

// FlushPoints returns the per-buffer drain threshold in effect.
func (q *AsyncQueue) FlushPoints() int { return q.opts.FlushPoints }

// Counters returns the queue's operation totals, including the
// per-slab breakdown. Safe to call while operations are in flight.
func (q *AsyncQueue) Counters() QueueCounters {
	ctr := QueueCounters{
		Enqueued:     q.enqueued.Load(),
		Drained:      q.drained.Load(),
		Coalesced:    q.coalesced.Load(),
		ForcedDrains: q.forced.Load(),
		ReadDrains:   q.readDrained.Load(),
		Shed:         q.shed.Load(),
		Blocked:      q.blocked.Load(),
	}
	q.topoMu.RLock()
	defer q.topoMu.RUnlock()
	ctr.Slabs = make([]SlabQueueCounters, len(q.slabs))
	for i, s := range q.slabs {
		s.mu.Lock()
		ctr.Slabs[i] = SlabQueueCounters{
			Depth:    len(s.pending),
			Enqueued: s.enqueued.Load(),
			Drained:  s.drained.Load(),
			FlushAt:  s.flushAt,
		}
		s.mu.Unlock()
	}
	return ctr
}

// Buffered returns the number of points with pending buffered writes
// across all slabs (a delete-then-reinsert pair counts one point).
func (q *AsyncQueue) Buffered() int {
	q.topoMu.RLock()
	defer q.topoMu.RUnlock()
	n := 0
	for _, s := range q.slabs {
		s.mu.Lock()
		n += len(s.pending)
		s.mu.Unlock()
	}
	return n
}

// AppliedDelta returns the net point-count change the drains have
// applied so far: +1 per drained insert, -1 per drained delete that
// hit a live point. After a Flush with no writers in flight,
// initial size + AppliedDelta is the exact number of live points —
// this is how core.DB keeps Len exact over buffered deletes whose
// hit-or-miss resolution only happens at drain time.
func (q *AsyncQueue) AppliedDelta() int64 { return q.applied.Load() }

// errQueueClosed is returned by writes arriving after Close.
func errQueueClosed() error { return fmt.Errorf("engine: async queue rejects write: %w", ErrClosed) }

// enqueue buffers one write (del=false for insert) and reports the
// buffer's pending size so the caller can apply the FlushPoints
// trigger. The per-point state machine coalesces opposite writes: see
// the package comment for why delete-then-insert keeps both ops while
// insert-then-delete cancels outright. The closed check runs UNDER the
// slab lock: Close sets the flag before its final flush, and that
// flush must take this same lock to swap the buffer — so a write
// racing Close is either rejected here or included in the final flush,
// never accepted into a buffer nothing will ever drain. A latched
// drain error rejects the write with ErrDegraded under the same lock,
// so no write is ever accepted into a frozen buffer. The MaxBuffered
// admission check applies only to writes that would add a NEW point
// (state transitions of already-buffered points change no depth):
// under the shed policy the write is rejected with ErrBackpressure;
// under the block policy the writer drains the slab inline and
// retries — it pays the latency its own backlog created.
// Caller holds topoMu shared.
func (q *AsyncQueue) enqueue(p geom.Point, del bool) (s *slabBuf, size, flushAt int, err error) {
	slab := bucketFor(q.cuts, p.X)
	s = q.slabs[slab]
	s.mu.Lock()
	for {
		if q.closed.Load() {
			s.mu.Unlock()
			return s, 0, 0, errQueueClosed()
		}
		if derr := q.Err(); derr != nil {
			s.mu.Unlock()
			return s, 0, 0, fmt.Errorf("%w: %w", ErrDegraded, derr)
		}
		_, buffered := s.pending[p]
		if q.opts.MaxBuffered <= 0 || buffered || len(s.pending) < q.opts.MaxBuffered {
			break
		}
		s.mu.Unlock()
		if q.opts.ShedWrites {
			q.shed.Add(1)
			return s, 0, 0, fmt.Errorf("engine: slab %d at MaxBuffered %d: %w",
				slab, q.opts.MaxBuffered, ErrBackpressure)
		}
		q.blocked.Add(1)
		if derr := q.drainSlab(s, drainTimer); derr != nil {
			// The drain failed and latched; the write was never
			// accepted. Without this return the loop would spin on a
			// frozen, forever-full slab.
			return s, 0, 0, fmt.Errorf("%w: %w", ErrDegraded, derr)
		}
		s.mu.Lock()
	}
	st, buffered := s.pending[p]
	if !del {
		switch {
		case !buffered:
			s.pending[p] = pendingIns
			s.order = append(s.order, p)
		case st == pendingDel:
			s.pending[p] = pendingDelIns
		default:
			// A buffered insert already exists: a duplicate insert of
			// a live point violates general position (the caller's
			// contract, as everywhere in the repository); dropping it
			// keeps the buffer a set.
		}
	} else {
		switch {
		case !buffered:
			s.pending[p] = pendingDel
			s.order = append(s.order, p)
		case st == pendingIns:
			// Insert-then-delete of a point the structures never saw:
			// a pure no-op, both writes cancel.
			delete(s.pending, p)
			q.coalesced.Add(2)
		case st == pendingDelIns:
			// The trailing re-insert cancels against this delete; the
			// original delete stays pending.
			s.pending[p] = pendingDel
			q.coalesced.Add(2)
		default:
			// Duplicate buffered delete: the second is a guaranteed
			// miss (the first already claims the point), drop it.
			q.coalesced.Add(1)
		}
	}
	size, flushAt = len(s.pending), s.flushAt
	s.mu.Unlock()
	s.enqueued.Add(1)
	q.enqueued.Add(1)
	return s, size, flushAt, nil
}

// drainSlab flushes slab i's buffer through the wrapped backend's
// batched paths. It holds the slab's drain lock across swap AND apply,
// so when it returns every write buffered in that slab before the call
// is fully applied — including batches swapped out by concurrent
// drains, which must finish before this one can acquire the lock.
// reason tags the trigger: drainRead marks a drain forced by a read
// (counted only when the buffer was non-empty), and with AdaptiveFlush
// the reason steers the slab's threshold — consecutive drainSize
// triggers grow it, drainRead/drainTimer shrink it back.
//
// Once a drain error latches, the queue is FROZEN: drainSlab returns
// the sticky error without swapping any buffer, so no further batch is
// ever pushed at a backend whose last batch failed. Whatever is
// buffered stays buffered (stranded, unacknowledged — enqueue rejects
// new writes with ErrDegraded), and reads serve the applied state,
// which is exactly the state a reopen-replay of the WAL reconstructs.
func (q *AsyncQueue) drainSlab(s *slabBuf, reason drainReason) error {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if err := q.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	if len(s.pending) == 0 {
		// Nothing pending; cancelled stragglers in order are dead.
		s.order = s.order[:0]
		s.mu.Unlock()
		return nil
	}
	if q.opts.AdaptiveFlush {
		base := q.opts.FlushPoints
		if reason == drainSize {
			s.sizeStreak++
			if s.sizeStreak >= 2 {
				s.sizeStreak = 0
				if s.flushAt < 8*base {
					s.flushAt = min(2*s.flushAt, 8*base)
				}
			}
		} else {
			s.sizeStreak = 0
			s.flushAt = max(base, s.flushAt/2)
		}
	}
	order, pending := s.order, s.pending
	s.order = nil
	s.pending = make(map[geom.Point]pendingState)
	s.mu.Unlock()

	var dels, inss []geom.Point
	for _, p := range order {
		st, ok := pending[p]
		if !ok {
			continue // cancelled, or already emitted (re-added point)
		}
		delete(pending, p)
		if st == pendingDel || st == pendingDelIns {
			dels = append(dels, p)
		}
		if st == pendingIns || st == pendingDelIns {
			inss = append(inss, p)
		}
	}
	if reason == drainRead {
		q.forced.Add(1)
		q.readDrained.Add(uint64(len(dels) + len(inss)))
	}
	// Deletes before inserts: a pendingDelIns point must leave the
	// structures before its re-insert. Across distinct points the
	// order is irrelevant (batches are sets in general position).
	var firstErr error
	if len(dels) > 0 {
		if rep, ok := q.inner.(batchDeleteReporter); ok {
			removed, err := rep.BatchDeleteRemoved(dels)
			q.applied.Add(-int64(len(removed)))
			firstErr = err
		} else {
			n, err := q.inner.BatchDelete(dels)
			q.applied.Add(-int64(n))
			firstErr = err
		}
		if firstErr == nil {
			q.drained.Add(uint64(len(dels)))
			s.drained.Add(uint64(len(dels)))
		}
	}
	// The insert half runs only if the delete half applied: a failed
	// dels batch followed by an applied inss batch could re-insert a
	// pendingDelIns point whose delete never happened — resurrecting a
	// point the caller deleted. On a dels failure the whole batch is
	// abandoned (the WAL-first rule makes the failed half all-or-
	// nothing, so nothing partial was applied either). Applied/drained
	// counters move only on success for the same reason: a failed batch
	// applied NOTHING, and core.Len leans on AppliedDelta being exact in
	// degraded mode.
	if len(inss) > 0 && firstErr == nil {
		err := q.inner.BatchInsert(inss)
		if err == nil {
			q.applied.Add(int64(len(inss)))
			q.drained.Add(uint64(len(inss)))
			s.drained.Add(uint64(len(inss)))
		}
		firstErr = err
	}
	q.recordErr(firstErr)
	return firstErr
}

// recordErr latches err as the queue's sticky first error. nil and
// later errors are ignored.
func (q *AsyncQueue) recordErr(err error) {
	if err == nil {
		return
	}
	q.errMu.Lock()
	if q.firstErr == nil {
		q.firstErr = err
	}
	q.errMu.Unlock()
}

// Err returns the sticky first drain error, or nil if every drain so
// far applied cleanly.
func (q *AsyncQueue) Err() error {
	q.errMu.Lock()
	defer q.errMu.Unlock()
	return q.firstErr
}

// drainFor drains every slab whose x-range intersects r — the
// drain-on-read rule. An empty rectangle contains no points, so no
// buffered write can change its (empty) answer and nothing drains.
// Caller holds topoMu shared.
func (q *AsyncQueue) drainFor(r geom.Rect) error {
	key := CanonicalQuery(r)
	if key.X1 > key.X2 {
		return nil
	}
	lo, hi := buckets(q.cuts, key.X1, key.X2)
	var firstErr error
	for i := lo; i <= hi; i++ {
		if err := q.drainSlab(q.slabs[i], drainRead); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Flush drains every buffer. Its error is the queue's sticky first
// drain error — which covers this pass, but also any earlier background
// or drain-on-read failure whose original caller could not see it. It
// is safe to call concurrently with reads, writes and other flushes,
// and is a no-op on an already-empty queue.
func (q *AsyncQueue) Flush() error {
	q.topoMu.RLock()
	for _, s := range q.slabs {
		q.drainSlab(s, drainTimer) //errlint:ok errors latch; surfaced below
	}
	q.topoMu.RUnlock()
	return q.Err()
}

// Close stops the background drainer, waits for it to exit, and drains
// every remaining buffer. Further writes are rejected, and the
// rejection is airtight: the closed flag is checked under the slab
// lock the final flush must take, so a write racing Close is either
// included in that flush or rejected — never accepted into a buffer
// nothing will drain. Reads keep working against the fully-applied
// state. Close is idempotent, and concurrent callers serialize: none
// returns before the draining finishes.
func (q *AsyncQueue) Close() error {
	q.closeMu.Lock()
	defer q.closeMu.Unlock()
	if !q.closed.Swap(true) {
		close(q.stop)
	}
	<-q.done
	return q.Flush()
}

// RangeSkyline drains every buffer whose slab intersects q, then
// answers from the wrapped backend — byte-identical to a synchronous
// engine, buffered deletes included.
func (q *AsyncQueue) RangeSkyline(r geom.Rect) []geom.Point {
	// A drain error cannot be surfaced from a query; the planner
	// convention applies (corruption errors panic in tests via the
	// differential harness, and the read still reflects every write
	// the drain managed to apply). On a frozen (degraded) queue the
	// drain is a no-op and the read serves the applied state.
	q.topoMu.RLock()
	defer q.topoMu.RUnlock()
	q.drainFor(r) //errlint:ok reads cannot surface drain errors; error latches sticky
	return q.inner.RangeSkyline(r)
}

// Insert buffers p and returns. When the buffer reaches its threshold
// the writer drains it inline — one batch apply per threshold's worth
// of accepted writes, at deterministic points in the op stream.
func (q *AsyncQueue) Insert(p geom.Point) error {
	q.topoMu.RLock()
	defer q.topoMu.RUnlock()
	s, size, flushAt, err := q.enqueue(p, false)
	if err != nil {
		return err
	}
	if size >= flushAt {
		return q.drainSlab(s, drainSize)
	}
	return nil
}

// Delete buffers the delete and returns. The reported bool means
// ACCEPTED, not present: hit-or-miss resolution happens at drain time
// through the batched presence-check-first path, and a miss applies
// nothing anywhere. Callers needing synchronous presence must use an
// unqueued engine.
func (q *AsyncQueue) Delete(p geom.Point) (bool, error) {
	q.topoMu.RLock()
	defer q.topoMu.RUnlock()
	s, size, flushAt, err := q.enqueue(p, true)
	if err != nil {
		return false, err
	}
	if size >= flushAt {
		return true, q.drainSlab(s, drainSize)
	}
	return true, nil
}

// BatchInsert buffers the batch — one buffer lock per touched slab, not
// per point — then applies the FlushPoints trigger to each touched slab.
func (q *AsyncQueue) BatchInsert(pts []geom.Point) error {
	return q.enqueueBatch(pts, false)
}

// BatchDelete buffers the batch of deletes, returning len(pts): the
// accepted count, as for Delete. Misses resolve (to nothing) at drain.
func (q *AsyncQueue) BatchDelete(pts []geom.Point) (int, error) {
	return len(pts), q.enqueueBatch(pts, true)
}

// enqueueBatch buffers pts, then drains the slabs the batch pushed
// past FlushPoints. A batch racing Close stops at the first rejected
// point; the points enqueued before it are in the final flush's scope,
// exactly like single writes.
func (q *AsyncQueue) enqueueBatch(pts []geom.Point, del bool) error {
	q.topoMu.RLock()
	defer q.topoMu.RUnlock()
	full := make(map[*slabBuf]bool)
	var firstErr error
	for _, p := range pts {
		// Per-point enqueue keeps the state machine in one place; the
		// slab mutex is uncontended in the common single-writer case
		// and the batch's win — one structure lock per shard per
		// drain — is preserved regardless.
		s, size, flushAt, err := q.enqueue(p, del)
		if err != nil {
			firstErr = err
			break
		}
		if size >= flushAt {
			full[s] = true
		}
	}
	for s := range full {
		if err := q.drainSlab(s, drainSize); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Stats returns the wrapped backend's I/O counters: buffering performs
// no simulated I/O until a drain applies the batch.
func (q *AsyncQueue) Stats() emio.Stats { return q.inner.Stats() }

// ResetStats zeroes the wrapped backend's I/O counters. Queue counters
// are cumulative and unaffected (they are operation totals, not
// measurement state).
func (q *AsyncQueue) ResetStats() { q.inner.ResetStats() }

// StatsKey dedups stats through to the wrapped backend, like the cache
// and the mirrors.
func (q *AsyncQueue) StatsKey() any { return statsKey(q.inner) }
