package engine_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/emio"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/shard"
)

// buildShardedQueue builds a dynamic sharded engine over n uniform
// points and wraps it in an engine.AsyncQueue with the given options.
func buildShardedQueue(t *testing.T, n, shards int, opts engine.QueueOptions, seed int64) (*engine.AsyncQueue, *shard.Engine, []geom.Point) {
	t.Helper()
	pts := geom.GenUniform(n, int64(n)*16, seed)
	geom.SortByX(pts)
	eng, err := shard.New(shard.Options{Machine: cacheCfg, Shards: shards, Workers: 2, Dynamic: true}, pts)
	if err != nil {
		t.Fatal(err)
	}
	q, err := engine.NewAsyncQueue(eng, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { q.Close() })
	return q, eng, pts
}

// noTimer disables the background drainer so tests control every drain.
var noTimer = engine.QueueOptions{FlushPoints: 1 << 20, FlushInterval: -1}

// wholePlane is the query that drains every slab.
var wholePlane = geom.Rect{X1: geom.NegInf, X2: geom.PosInf, Y1: geom.NegInf, Y2: geom.PosInf}

func TestQueueSlabsMatchShards(t *testing.T) {
	q, eng, _ := buildShardedQueue(t, 256, 4, noTimer, 11)
	if q.NumSlabs() != eng.NumShards() {
		t.Fatalf("NumSlabs = %d, want %d", q.NumSlabs(), eng.NumShards())
	}
	single, err := engine.NewAsyncQueue(newFake("flat"), noTimer)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if single.NumSlabs() != 1 {
		t.Fatalf("unpartitioned NumSlabs = %d, want 1", single.NumSlabs())
	}
}

// TestQueueBuffersUntilDrain pins the buffering contract: writes cost no
// simulated I/O and do not change the engine until a trigger drains
// them, and a read drains exactly the slabs it intersects.
func TestQueueBuffersUntilDrain(t *testing.T) {
	q, eng, pts := buildShardedQueue(t, 256, 4, noTimer, 13)
	span := geom.Coord(256 * 16)
	fresh := geom.Point{X: span + 10, Y: span + 10} // lands in the last slab
	eng.ResetStats()
	if err := q.Insert(fresh); err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().IOs(); got != 0 {
		t.Fatalf("buffered insert cost %d I/Os, want 0", got)
	}
	if eng.Len() != len(pts) {
		t.Fatalf("engine Len = %d after buffered insert, want %d", eng.Len(), len(pts))
	}
	if q.Buffered() != 1 {
		t.Fatalf("Buffered = %d, want 1", q.Buffered())
	}
	// A query over the FIRST slab only must not drain the last slab's
	// buffer...
	cuts := eng.Cuts()
	q.RangeSkyline(geom.Rect{X1: geom.NegInf, X2: cuts[0], Y1: geom.NegInf, Y2: geom.PosInf})
	if q.Buffered() != 1 {
		t.Fatalf("slab-0 read drained a slab-3 write (Buffered = %d)", q.Buffered())
	}
	// ...while a query containing the point's slab must make it visible.
	sky := q.RangeSkyline(geom.Dominance(span, span))
	if len(sky) != 1 || sky[0] != fresh {
		t.Fatalf("post-drain dominance skyline = %v, want [%v]", sky, fresh)
	}
	if q.Buffered() != 0 {
		t.Fatalf("Buffered = %d after drain-on-read, want 0", q.Buffered())
	}
	if eng.Len() != len(pts)+1 {
		t.Fatalf("engine Len = %d after drain, want %d", eng.Len(), len(pts)+1)
	}
	ctr := q.Counters()
	if ctr.Enqueued != 1 || ctr.Drained != 1 || ctr.ForcedDrains != 1 {
		t.Fatalf("counters %+v, want 1 enqueued, 1 drained, 1 forced", ctr)
	}
}

// TestQueueDeleteNotVisible pins delete-aware drain-on-read: a buffered
// delete must never be visible as a live point, even though the delete
// returned before touching any structure.
func TestQueueDeleteNotVisible(t *testing.T) {
	q, eng, pts := buildShardedQueue(t, 128, 4, noTimer, 17)
	victim := pts[len(pts)/2]
	if ok, err := q.Delete(victim); !ok || err != nil {
		t.Fatalf("Delete = %t, %v", ok, err)
	}
	if eng.Len() != len(pts) {
		t.Fatal("buffered delete reached the engine before any drain")
	}
	for _, p := range q.RangeSkyline(wholePlane) {
		if p == victim {
			t.Fatalf("buffered-deleted point %v visible as live", victim)
		}
	}
	if eng.Len() != len(pts)-1 {
		t.Fatalf("engine Len = %d after drain, want %d", eng.Len(), len(pts)-1)
	}
	if got := q.AppliedDelta(); got != -1 {
		t.Fatalf("AppliedDelta = %d, want -1", got)
	}
}

// TestQueueCoalescing pins the per-point state machine: insert+delete of
// a never-applied point cancels outright; delete+insert keeps BOTH ops
// (the delete may hit a live point) and nets out to presence whether the
// point existed or not; a duplicate buffered delete is dropped as a
// guaranteed miss.
func TestQueueCoalescing(t *testing.T) {
	q, eng, pts := buildShardedQueue(t, 128, 1, noTimer, 19)
	span := geom.Coord(128 * 16)

	// insert → delete of a fresh point: pure no-op.
	fresh := geom.Point{X: span + 1, Y: span + 1}
	q.Insert(fresh)
	q.Delete(fresh)
	if err := q.Flush(); err != nil {
		t.Fatal(err)
	}
	ctr := q.Counters()
	if ctr.Coalesced != 2 || ctr.Drained != 0 {
		t.Fatalf("insert+delete: counters %+v, want 2 coalesced, 0 drained", ctr)
	}
	if eng.Len() != len(pts) {
		t.Fatalf("insert+delete leaked into the engine (Len %d)", eng.Len())
	}

	// delete → insert of a LIVE point: both ops drain, point survives.
	live := pts[3]
	q.Delete(live)
	q.Insert(live)
	if err := q.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := q.Counters().Drained; got != 2 {
		t.Fatalf("delete+reinsert of live point: drained %d ops, want 2", got)
	}
	if eng.Len() != len(pts) {
		t.Fatalf("delete+reinsert: engine Len = %d, want %d", eng.Len(), len(pts))
	}
	found := false
	for _, p := range q.RangeSkyline(geom.Rect{X1: live.X, X2: live.X, Y1: live.Y, Y2: live.Y}) {
		found = found || p == live
	}
	if !found {
		t.Fatalf("delete+reinsert lost live point %v", live)
	}

	// delete → insert of an ABSENT point: the delete misses, the
	// insert lands — the case where cancelling both would be wrong.
	fresh2 := geom.Point{X: span + 2, Y: span + 2}
	q.Delete(fresh2)
	q.Insert(fresh2)
	if err := q.Flush(); err != nil {
		t.Fatal(err)
	}
	if eng.Len() != len(pts)+1 {
		t.Fatalf("delete-miss+insert: engine Len = %d, want %d", eng.Len(), len(pts)+1)
	}

	// duplicate buffered delete: second is dropped.
	before := q.Counters().Coalesced
	q.Delete(pts[5])
	q.Delete(pts[5])
	if got := q.Counters().Coalesced - before; got != 1 {
		t.Fatalf("duplicate delete coalesced %d ops, want 1", got)
	}
	if err := q.Flush(); err != nil {
		t.Fatal(err)
	}
	if eng.Len() != len(pts) {
		t.Fatalf("duplicate delete: engine Len = %d, want %d", eng.Len(), len(pts))
	}

	// Quiescent invariant: every accepted op either drained or
	// coalesced.
	ctr = q.Counters()
	if ctr.Enqueued != ctr.Drained+ctr.Coalesced || q.Buffered() != 0 {
		t.Fatalf("quiescent invariant violated: %+v, %d buffered", ctr, q.Buffered())
	}
}

// TestQueueFlushPointsTrigger pins the size trigger: the write that
// fills a buffer to FlushPoints drains it inline, and earlier writes do
// not.
func TestQueueFlushPointsTrigger(t *testing.T) {
	q, eng, pts := buildShardedQueue(t, 128, 1, engine.QueueOptions{FlushPoints: 4, FlushInterval: -1}, 23)
	span := geom.Coord(128 * 16)
	for i := 0; i < 3; i++ {
		if err := q.Insert(geom.Point{X: span + geom.Coord(i) + 1, Y: span + geom.Coord(i) + 1}); err != nil {
			t.Fatal(err)
		}
	}
	if q.Buffered() != 3 || eng.Len() != len(pts) {
		t.Fatalf("below threshold: Buffered %d, engine Len %d", q.Buffered(), eng.Len())
	}
	if err := q.Insert(geom.Point{X: span + 4, Y: span + 4}); err != nil {
		t.Fatal(err)
	}
	if q.Buffered() != 0 || eng.Len() != len(pts)+4 {
		t.Fatalf("at threshold: Buffered %d, engine Len %d, want 0 and %d",
			q.Buffered(), eng.Len(), len(pts)+4)
	}
	if got := q.Counters().ForcedDrains; got != 0 {
		t.Fatalf("size-triggered drain counted as forced (%d)", got)
	}
}

// TestQueueBackgroundDrainer pins the FlushInterval trigger: an idle
// queue converges to fully-applied state without any read or explicit
// Flush.
func TestQueueBackgroundDrainer(t *testing.T) {
	q, eng, pts := buildShardedQueue(t, 128, 2, engine.QueueOptions{FlushPoints: 1 << 20, FlushInterval: time.Millisecond}, 29)
	span := geom.Coord(128 * 16)
	if err := q.Insert(geom.Point{X: span + 1, Y: span + 1}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for eng.Len() != len(pts)+1 {
		if time.Now().After(deadline) {
			t.Fatalf("background drainer never applied the write (engine Len %d)", eng.Len())
		}
		time.Sleep(time.Millisecond)
	}
	if q.Buffered() != 0 {
		t.Fatalf("Buffered = %d after background drain", q.Buffered())
	}
}

// TestQueueClose pins shutdown: Close drains everything, stops the
// drainer, rejects further writes, keeps serving reads, and is
// idempotent.
func TestQueueClose(t *testing.T) {
	q, eng, pts := buildShardedQueue(t, 128, 2, engine.QueueOptions{FlushPoints: 1 << 20, FlushInterval: time.Hour}, 31)
	span := geom.Coord(128 * 16)
	fresh := geom.Point{X: span + 1, Y: span + 1}
	if err := q.Insert(fresh); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if eng.Len() != len(pts)+1 {
		t.Fatalf("Close did not drain (engine Len %d, want %d)", eng.Len(), len(pts)+1)
	}
	if err := q.Insert(geom.Point{X: span + 2, Y: span + 2}); err == nil {
		t.Fatal("Insert after Close succeeded")
	}
	if ok, err := q.Delete(fresh); ok || err == nil {
		t.Fatalf("Delete after Close = %t, %v; want rejection", ok, err)
	}
	if got := len(q.RangeSkyline(geom.Dominance(span, span))); got != 1 {
		t.Fatalf("read after Close returned %d points, want 1", got)
	}
	if err := q.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestQueueCacheComposition pins the stacking order core.Open uses —
// queue outside, cache inside — and the invalidation amortization: a
// drained batch localized to one slab fires ONE eviction sweep, and a
// cache hit can never serve an answer missing a buffered write, because
// the read's drain (through the cache's batched paths) invalidates the
// stale entry before the cache is consulted.
func TestQueueCacheComposition(t *testing.T) {
	pts := geom.GenUniform(256, 256*16, 37)
	geom.SortByX(pts)
	eng, err := shard.New(shard.Options{Machine: cacheCfg, Shards: 4, Workers: 2, Dynamic: true}, pts)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := engine.NewCache(eng, 16)
	if err != nil {
		t.Fatal(err)
	}
	q, err := engine.NewAsyncQueue(cache, noTimer)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if q.NumSlabs() != eng.NumShards() {
		t.Fatalf("queue over cache learned %d slabs, want %d (cuts must pass through the cache)",
			q.NumSlabs(), eng.NumShards())
	}
	span := geom.Coord(256 * 16)
	hot := geom.Rect{X1: 0, X2: span, Y1: 0, Y2: span}
	q.RangeSkyline(hot) // fill
	q.RangeSkyline(hot) // hit
	if ctr := cache.Counters(); ctr.Hits != 1 {
		t.Fatalf("cache under queue served %d hits, want 1 (%+v)", ctr.Hits, ctr)
	}
	// Buffer a batch of writes in one slab, then re-query the hot
	// rectangle: the drain must invalidate the entry (one sweep) and
	// the answer must include the new points.
	top := geom.Point{X: span + 1, Y: span + 1}
	batch := []geom.Point{{X: span + 2, Y: span - 2}, {X: span + 3, Y: span - 3}, top}
	if err := q.BatchInsert(batch); err != nil {
		t.Fatal(err)
	}
	if ctr := cache.Counters(); ctr.Invalidations != 0 {
		t.Fatalf("buffered batch already invalidated %d entries (should wait for the drain)",
			ctr.Invalidations)
	}
	wide := geom.Rect{X1: 0, X2: span + 8, Y1: 0, Y2: span + 8}
	sky := q.RangeSkyline(wide)
	if len(sky) != 3 || sky[0] != top {
		t.Fatalf("post-drain skyline %v, want exactly the drained batch led by %v", sky, top)
	}
	ctr := cache.Counters()
	if ctr.Invalidations == 0 {
		t.Fatal("drain fired no cache invalidation")
	}
	// The stale hot entry must be gone: a re-query is a miss that now
	// sees the drained points.
	miss := ctr.Misses
	sky = q.RangeSkyline(hot)
	if got := cache.Counters().Misses; got != miss+1 {
		t.Fatalf("hot entry survived the drain (misses %d, want %d)", got, miss+1)
	}
	for _, p := range sky {
		if p == top {
			t.Fatalf("hot rectangle %v must not contain %v", hot, top)
		}
	}
}

// TestQueueOptionValidation pins constructor errors and defaults.
func TestQueueOptionValidation(t *testing.T) {
	if _, err := engine.NewAsyncQueue(newFake("f"), engine.QueueOptions{FlushPoints: -1}); err == nil {
		t.Fatal("negative FlushPoints accepted")
	}
	q, err := engine.NewAsyncQueue(newFake("f"), engine.QueueOptions{FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if q.FlushPoints() != 128 {
		t.Fatalf("default FlushPoints = %d, want 128", q.FlushPoints())
	}
}

// TestQueueCloseRacingWriters pins the accept-or-flush guarantee:
// writes racing Close are either rejected or included in the final
// flush — never accepted into a buffer nothing will drain — and
// concurrent Close callers all block until draining finished. Every
// write that returned nil must be in the engine once every Close has
// returned.
func TestQueueCloseRacingWriters(t *testing.T) {
	for round := 0; round < 8; round++ {
		q, eng, base := buildShardedQueue(t, 128, 4, engine.QueueOptions{FlushPoints: 1 << 20, FlushInterval: -1}, 41)
		span := geom.Coord(128 * 16)
		const nWriters, perWriter = 4, 64
		accepted := make([]int, nWriters)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < nWriters; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < perWriter; i++ {
					p := geom.Point{
						X: span + geom.Coord(w*perWriter+i) + 1,
						Y: span + geom.Coord(w*perWriter+i) + 1,
					}
					if err := q.Insert(p); err != nil {
						return // rejected by Close: must NOT be applied
					}
					accepted[w]++
				}
			}()
		}
		closeErrs := make([]error, 2)
		for c := 0; c < 2; c++ {
			c := c
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				closeErrs[c] = q.Close()
			}()
		}
		close(start)
		wg.Wait()
		for c, err := range closeErrs {
			if err != nil {
				t.Fatalf("round %d: Close %d: %v", round, c, err)
			}
		}
		total := 0
		for _, n := range accepted {
			total += n
		}
		if q.Buffered() != 0 {
			t.Fatalf("round %d: %d writes stranded in closed buffers", round, q.Buffered())
		}
		if eng.Len() != len(base)+total {
			t.Fatalf("round %d: engine Len = %d, want %d base + %d accepted",
				round, eng.Len(), len(base), total)
		}
	}
}

// fakeBackend is a minimal unpartitioned Backend for queue plumbing
// tests (constructor validation, slab counting); the external test
// package cannot reuse the in-package fake.
type fakeBackend struct{ pts map[geom.Point]bool }

func newFake(_ string, pts ...geom.Point) *fakeBackend {
	f := &fakeBackend{pts: make(map[geom.Point]bool)}
	for _, p := range pts {
		f.pts[p] = true
	}
	return f
}

func (f *fakeBackend) RangeSkyline(geom.Rect) []geom.Point { return nil }

func (f *fakeBackend) Insert(p geom.Point) error {
	f.pts[p] = true
	return nil
}

func (f *fakeBackend) Delete(p geom.Point) (bool, error) {
	ok := f.pts[p]
	delete(f.pts, p)
	return ok, nil
}

func (f *fakeBackend) BatchInsert(pts []geom.Point) error {
	for _, p := range pts {
		f.pts[p] = true
	}
	return nil
}

func (f *fakeBackend) BatchDelete(pts []geom.Point) (int, error) {
	n := 0
	for _, p := range pts {
		if f.pts[p] {
			delete(f.pts, p)
			n++
		}
	}
	return n, nil
}

func (f *fakeBackend) Stats() emio.Stats { return emio.Stats{} }
func (f *fakeBackend) ResetStats()       {}
