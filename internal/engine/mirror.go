// MirrorBackend: the reflected fast path. It wraps a top-open-family
// backend built over a reflected copy of the point set and serves every
// rectangle whose reflection has a grounded top edge, rewriting the
// query into the mirrored frame and mapping the answer back into
// increasing-x order. With the transpose reflection this turns the
// whole grounded-right-edge family — right-open (Figure 2b) and the
// unnamed right-grounded rectangles — from Theorem 6's Ω((n/B)^ε) into
// the Theorem 1/4 O(log) bounds, at the cost of one extra top-open
// structure's space.
//
// Only dominance-preserving reflections are accepted: a reflection that
// changes the dominance order would make the mirrored structure report
// a different staircase than the range skyline (see
// geom.Reflection.PreservesDominance and TestReflectionFallacy). That
// gate is what keeps bottom-open, left-open and anti-dominance queries
// on the Theorem 6 backend, where Theorem 5 proves they must stay at
// linear space.
package engine

import (
	"fmt"

	"repro/internal/emio"
	"repro/internal/geom"
)

// MirrorBackend serves queries whose reflection is top-open from a
// backend indexing the reflected point set. It implements Backend; the
// inner backend sees only mirrored points and mirrored rectangles.
type MirrorBackend struct {
	ref   geom.Reflection
	inner Backend
}

// NewMirror wraps inner — a backend over the ref-reflected point set —
// as a fast path for rectangles whose reflection is top-open. It
// rejects reflections that do not preserve dominance, because their
// mirrored answers are not range skylines of the original frame.
func NewMirror(ref geom.Reflection, inner Backend) (*MirrorBackend, error) {
	if !ref.PreservesDominance() {
		return nil, fmt.Errorf("engine: reflection %v does not preserve dominance; "+
			"a mirrored structure would answer the wrong staircase (Theorem 5)", ref)
	}
	return &MirrorBackend{ref: ref, inner: inner}, nil
}

// Reflection returns the reflection between the original and mirrored
// frames.
func (m *MirrorBackend) Reflection() geom.Reflection { return m.ref }

// Inner returns the backend serving the mirrored frame.
func (m *MirrorBackend) Inner() Backend { return m.inner }

// Serves reports whether q reflects onto the top-open family, i.e.
// whether this mirror can answer it in the top-open bounds. For the
// transpose mirror this is exactly the grounded-right-edge family
// (q.X2 == +∞ with a bounded top edge once the planner has peeled off
// the native top-open family).
func (m *MirrorBackend) Serves(q geom.Rect) bool {
	return m.ref.Rect(q).IsTopOpen()
}

// RangeSkyline rewrites q into the mirrored frame, queries the inner
// top-open structure, and maps the answer back into increasing-x order.
// Because the reflection preserves dominance, the result is
// byte-identical to what a Theorem 6 structure reports for q.
func (m *MirrorBackend) RangeSkyline(q geom.Rect) []geom.Point {
	return m.ref.SkylineToOriginal(m.inner.RangeSkyline(m.ref.Rect(q)))
}

// Insert adds the reflected point, keeping the mirror synchronized with
// the primary structures.
func (m *MirrorBackend) Insert(p geom.Point) error {
	return m.inner.Insert(m.ref.Point(p))
}

// Delete removes the reflected point, reporting presence.
func (m *MirrorBackend) Delete(p geom.Point) (bool, error) {
	return m.inner.Delete(m.ref.Point(p))
}

// BatchInsert reflects the batch and applies it through the inner
// backend's batched path (the sharded mirror takes each mirrored-shard
// lock once per batch, exactly like the primary engine).
func (m *MirrorBackend) BatchInsert(pts []geom.Point) error {
	return m.inner.BatchInsert(m.ref.Pts(pts))
}

// BatchDelete reflects the batch and removes it through the inner
// backend's batched path, returning how many points were present.
func (m *MirrorBackend) BatchDelete(pts []geom.Point) (int, error) {
	return m.inner.BatchDelete(m.ref.Pts(pts))
}

// BatchDeleteRemoved forwards the inner backend's removed-subset report
// (when it has one), mapping the subset back into the original frame,
// so a mirror can serve as a presence-confirming primary too.
func (m *MirrorBackend) BatchDeleteRemoved(pts []geom.Point) ([]geom.Point, error) {
	rep, ok := m.inner.(batchDeleteReporter)
	if !ok {
		return nil, fmt.Errorf("engine: mirror's inner backend cannot report removed points")
	}
	removed, err := rep.BatchDeleteRemoved(m.ref.Pts(pts))
	return m.ref.Inverse().Pts(removed), err
}

// Stats returns the mirror's I/O counters (the inner backend's disks).
func (m *MirrorBackend) Stats() emio.Stats { return m.inner.Stats() }

// ResetStats zeroes the mirror's I/O counters.
func (m *MirrorBackend) ResetStats() { m.inner.ResetStats() }

// StatsKey dedups stats through to the inner backend's disk, so a
// mirror never double-counts with a backend it shares storage with.
func (m *MirrorBackend) StatsKey() any { return statsKey(m.inner) }
