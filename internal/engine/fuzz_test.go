package engine

import (
	"testing"

	"repro/internal/dyntop"
	"repro/internal/emio"
	"repro/internal/foursided"
	"repro/internal/geom"
)

var cacheCfg = emio.Config{B: 32, M: 32 * 32}

// FuzzCanonicalQuery fuzzes the shape classifier and the cache-key
// canonicalization over arbitrary rectangles. The invariants:
//
//   - Classify is total and agrees with IsTopOpen on the top-open
//     family (the planner's routing predicate);
//   - CanonicalQuery is idempotent;
//   - q and CanonicalQuery(q) contain exactly the same points and have
//     byte-identical range skylines — the property that makes the
//     canonical rectangle a sound cache key.
//
// The seed corpus pins the Theorem-5 counterexample rectangles of
// TestReflectionFallacy (the anti-dominance query whose neg-y and
// anti-transpose images are top-open but answer the wrong staircase):
// exactly the family where a routing or keying bug would silently trade
// correctness for speed.
func FuzzCanonicalQuery(f *testing.F) {
	antiDom := geom.AntiDominance(3, 3)
	add := func(q geom.Rect) { f.Add(q.X1, q.X2, q.Y1, q.Y2) }
	add(antiDom)
	add(geom.ReflectNegY.Rect(antiDom))
	add(geom.ReflectAntiTranspose.Rect(antiDom))
	add(geom.TopOpen(1, 2, 1))
	add(geom.RightOpen(1, 1, 2))
	add(geom.BottomOpen(1, 2, 2))
	add(geom.LeftOpen(2, 1, 2))
	add(geom.Dominance(1, 1))
	add(geom.Contour(2))
	add(geom.Rect{X1: geom.NegInf, X2: geom.PosInf, Y1: geom.NegInf, Y2: geom.PosInf})
	add(geom.Rect{X1: 9, X2: 3, Y1: 0, Y2: 5}) // empty in x
	add(geom.Rect{X1: 0, X2: 5, Y1: 9, Y2: 3}) // empty in y
	add(geom.Rect{X1: 2, X2: 2, Y1: 2, Y2: 2}) // degenerate point
	f.Fuzz(func(t *testing.T, x1, x2, y1, y2 geom.Coord) {
		q := geom.Rect{X1: x1, X2: x2, Y1: y1, Y2: y2}
		if got, want := Classify(q).TopOpenFamily(), q.IsTopOpen(); got != want {
			t.Fatalf("%v: Classify(q).TopOpenFamily() = %t, IsTopOpen = %t", q, got, want)
		}
		c := CanonicalQuery(q)
		if again := CanonicalQuery(c); again != c {
			t.Fatalf("%v: canonicalization not idempotent: %v -> %v", q, c, again)
		}
		if (q.X1 > q.X2 || q.Y1 > q.Y2) != (c == geom.Rect{X1: 0, X2: -1, Y1: 0, Y2: -1}) {
			t.Fatalf("%v: canonical form %v does not match emptiness", q, c)
		}
		// Membership equivalence on a probe set built from the
		// rectangle's own corners (the only places behavior can flip)
		// plus the Theorem-5 counterexample points.
		probes := []geom.Point{
			{X: 1, Y: 1}, {X: 2, Y: 2},
			{X: x1, Y: y1}, {X: x1, Y: y2}, {X: x2, Y: y1}, {X: x2, Y: y2},
			{X: x1/2 + x2/2, Y: y1/2 + y2/2},
			{X: x1 + 1, Y: y1 + 1}, {X: x2 - 1, Y: y2 - 1},
		}
		for _, p := range probes {
			if q.Contains(p) != c.Contains(p) {
				t.Fatalf("%v vs canonical %v disagree on membership of %v", q, c, p)
			}
		}
		// Answer equivalence: the canonical rectangle is only a sound
		// cache key if every point set yields byte-identical skylines.
		got := geom.RangeSkyline(probes, c)
		want := geom.RangeSkyline(probes, q)
		if len(got) != len(want) {
			t.Fatalf("%v vs canonical %v: %d vs %d skyline points", q, c, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v vs canonical %v: skyline point %d = %v, want %v", q, c, i, got[i], want[i])
			}
		}
	})
}

// fuzzQueueRect decodes three bytes into a query rectangle covering
// every Figure-2 shape plus the general 4-sided one, so the fuzzer
// sweeps the whole routing surface behind the queue.
func fuzzQueueRect(a, b, c byte, span geom.Coord) geom.Rect {
	x1 := geom.Coord(a) * span / 256
	y1 := geom.Coord(b) * span / 256
	w := (geom.Coord(c>>4) + 1) * span / 16
	r := geom.Rect{X1: x1, X2: x1 + w, Y1: y1, Y2: y1 + w}
	switch c % 9 {
	case 0:
		r.Y2 = geom.PosInf
	case 1:
		r.X2 = geom.PosInf
	case 2:
		r.Y1 = geom.NegInf
	case 3:
		r.X1 = geom.NegInf
	case 4:
		r.X2, r.Y2 = geom.PosInf, geom.PosInf
	case 5:
		r.X1, r.Y1 = geom.NegInf, geom.NegInf
	case 6:
		r.X1, r.Y1, r.Y2 = geom.NegInf, geom.NegInf, geom.PosInf
	case 7:
		r.X1, r.X2, r.Y1, r.Y2 = geom.NegInf, geom.PosInf, geom.NegInf, geom.PosInf
	}
	return r
}

// FuzzAsyncQueue interleaves enqueues, drains and queries decoded from
// the fuzz input against a synchronous twin engine and the in-memory
// oracle. The invariants:
//
//   - every query through the queue is byte-identical to the
//     synchronous planner's answer and to geom.RangeSkyline over the
//     reference set (drain-on-read exactness, buffered deletes never
//     visible);
//   - after a final Flush the quiescent counter invariant holds
//     (enqueued == drained + coalesced, nothing buffered) and the
//     whole-plane skylines agree.
//
// FlushPoints is tiny (4) so size-triggered drains interleave with
// reads and coalescing pairs; the background drainer is disabled to
// keep failures replayable.
func FuzzAsyncQueue(f *testing.F) {
	f.Add([]byte{0, 0, 3, 10, 20, 4, 1, 2, 7, 3, 99, 99, 8})
	f.Add([]byte{5, 5, 5, 2, 9, 3, 0, 0, 0, 4, 3, 1, 2, 3})
	f.Add([]byte{2, 4, 0, 1, 3, 200, 100, 50, 5, 2, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			data = data[:256]
		}
		const nBase, nPool = 48, 160
		span := geom.Coord((nBase + nPool) * 16)
		all := geom.GenUniform(nBase+nPool, int64(span), 4242)
		base := append([]geom.Point(nil), all[:nBase]...)
		geom.SortByX(base)
		pool := all[nBase:]

		build := func() *Planner {
			pl := new(Planner)
			d := emio.NewDisk(cacheCfg)
			pl.RegisterTopOpen(NewDynTop(dyntop.BuildSABE(d, 0.5, base), d))
			d4 := emio.NewDisk(cacheCfg)
			pl.RegisterGeneral(NewFourSided(foursided.Build(d4, 0.5, base), d4))
			return pl
		}
		syncPl := build()
		q, err := NewAsyncQueue(build(), QueueOptions{FlushPoints: 4, FlushInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		defer q.Close()

		ref := append([]geom.Point(nil), base...)
		check := func(r geom.Rect) {
			want := geom.RangeSkyline(ref, r)
			for name, got := range map[string][]geom.Point{
				"queued": q.RangeSkyline(r), "sync": syncPl.RangeSkyline(r),
			} {
				if len(got) != len(want) {
					t.Fatalf("%s %v: %d points, want %d (%v vs %v)", name, r, len(got), len(want), got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s %v: point %d = %v, want %v", name, r, i, got[i], want[i])
					}
				}
			}
		}

		next, i := 0, 0
		readByte := func() byte {
			if i >= len(data) {
				return 0
			}
			b := data[i]
			i++
			return b
		}
		for i < len(data) {
			switch readByte() % 6 {
			case 0, 1: // insert a fresh point
				if next >= len(pool) {
					continue
				}
				p := pool[next]
				next++
				if err := syncPl.Insert(p); err != nil {
					t.Fatal(err)
				}
				if err := q.Insert(p); err != nil {
					t.Fatal(err)
				}
				ref = append(ref, p)
			case 2: // delete: live, or a guaranteed absentee
				sel := int(readByte())
				if sel%4 == 0 || len(ref) == 0 {
					absent := geom.Point{X: span + geom.Coord(sel) + 1, Y: span + geom.Coord(sel) + 1}
					if ok, err := syncPl.Delete(absent); ok || err != nil {
						t.Fatalf("sync Delete(absent) = %t, %v", ok, err)
					}
					if _, err := q.Delete(absent); err != nil {
						t.Fatal(err)
					}
					continue
				}
				j := sel % len(ref)
				p := ref[j]
				ref = append(ref[:j], ref[j+1:]...)
				if ok, err := syncPl.Delete(p); !ok || err != nil {
					t.Fatalf("sync Delete(%v) = %t, %v", p, ok, err)
				}
				if ok, err := q.Delete(p); !ok || err != nil {
					t.Fatalf("queued Delete(%v) = %t, %v", p, ok, err)
				}
			case 3: // query
				check(fuzzQueueRect(readByte(), readByte(), readByte(), span))
			case 4: // explicit flush
				if err := q.Flush(); err != nil {
					t.Fatal(err)
				}
			case 5: // coalescing pair: insert fresh, delete immediately
				if next >= len(pool) {
					continue
				}
				p := pool[next]
				next++
				if err := q.Insert(p); err != nil {
					t.Fatal(err)
				}
				if err := syncPl.Insert(p); err != nil {
					t.Fatal(err)
				}
				if ok, err := q.Delete(p); !ok || err != nil {
					t.Fatalf("queued Delete(%v) = %t, %v", p, ok, err)
				}
				if ok, err := syncPl.Delete(p); !ok || err != nil {
					t.Fatalf("sync Delete(%v) = %t, %v", p, ok, err)
				}
			}
		}
		if err := q.Flush(); err != nil {
			t.Fatal(err)
		}
		check(geom.Rect{X1: geom.NegInf, X2: geom.PosInf, Y1: geom.NegInf, Y2: geom.PosInf})
		ctr := q.Counters()
		if ctr.Enqueued != ctr.Drained+ctr.Coalesced || q.Buffered() != 0 {
			t.Fatalf("quiescent invariant violated: %+v, %d buffered", ctr, q.Buffered())
		}
	})
}
