package engine

import (
	"testing"

	"repro/internal/geom"
)

// FuzzCanonicalQuery fuzzes the shape classifier and the cache-key
// canonicalization over arbitrary rectangles. The invariants:
//
//   - Classify is total and agrees with IsTopOpen on the top-open
//     family (the planner's routing predicate);
//   - CanonicalQuery is idempotent;
//   - q and CanonicalQuery(q) contain exactly the same points and have
//     byte-identical range skylines — the property that makes the
//     canonical rectangle a sound cache key.
//
// The seed corpus pins the Theorem-5 counterexample rectangles of
// TestReflectionFallacy (the anti-dominance query whose neg-y and
// anti-transpose images are top-open but answer the wrong staircase):
// exactly the family where a routing or keying bug would silently trade
// correctness for speed.
func FuzzCanonicalQuery(f *testing.F) {
	antiDom := geom.AntiDominance(3, 3)
	add := func(q geom.Rect) { f.Add(q.X1, q.X2, q.Y1, q.Y2) }
	add(antiDom)
	add(geom.ReflectNegY.Rect(antiDom))
	add(geom.ReflectAntiTranspose.Rect(antiDom))
	add(geom.TopOpen(1, 2, 1))
	add(geom.RightOpen(1, 1, 2))
	add(geom.BottomOpen(1, 2, 2))
	add(geom.LeftOpen(2, 1, 2))
	add(geom.Dominance(1, 1))
	add(geom.Contour(2))
	add(geom.Rect{X1: geom.NegInf, X2: geom.PosInf, Y1: geom.NegInf, Y2: geom.PosInf})
	add(geom.Rect{X1: 9, X2: 3, Y1: 0, Y2: 5}) // empty in x
	add(geom.Rect{X1: 0, X2: 5, Y1: 9, Y2: 3}) // empty in y
	add(geom.Rect{X1: 2, X2: 2, Y1: 2, Y2: 2}) // degenerate point
	f.Fuzz(func(t *testing.T, x1, x2, y1, y2 geom.Coord) {
		q := geom.Rect{X1: x1, X2: x2, Y1: y1, Y2: y2}
		if got, want := Classify(q).TopOpenFamily(), q.IsTopOpen(); got != want {
			t.Fatalf("%v: Classify(q).TopOpenFamily() = %t, IsTopOpen = %t", q, got, want)
		}
		c := CanonicalQuery(q)
		if again := CanonicalQuery(c); again != c {
			t.Fatalf("%v: canonicalization not idempotent: %v -> %v", q, c, again)
		}
		if (q.X1 > q.X2 || q.Y1 > q.Y2) != (c == geom.Rect{X1: 0, X2: -1, Y1: 0, Y2: -1}) {
			t.Fatalf("%v: canonical form %v does not match emptiness", q, c)
		}
		// Membership equivalence on a probe set built from the
		// rectangle's own corners (the only places behavior can flip)
		// plus the Theorem-5 counterexample points.
		probes := []geom.Point{
			{X: 1, Y: 1}, {X: 2, Y: 2},
			{X: x1, Y: y1}, {X: x1, Y: y2}, {X: x2, Y: y1}, {X: x2, Y: y2},
			{X: x1/2 + x2/2, Y: y1/2 + y2/2},
			{X: x1 + 1, Y: y1 + 1}, {X: x2 - 1, Y: y2 - 1},
		}
		for _, p := range probes {
			if q.Contains(p) != c.Contains(p) {
				t.Fatalf("%v vs canonical %v disagree on membership of %v", q, c, p)
			}
		}
		// Answer equivalence: the canonical rectangle is only a sound
		// cache key if every point set yields byte-identical skylines.
		got := geom.RangeSkyline(probes, c)
		want := geom.RangeSkyline(probes, q)
		if len(got) != len(want) {
			t.Fatalf("%v vs canonical %v: %d vs %d skyline points", q, c, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v vs canonical %v: skyline point %d = %v, want %v", q, c, i, got[i], want[i])
			}
		}
	})
}
