// CacheBackend: the read-through memoization layer of the engine. It
// wraps any Backend — the full Planner in core.DB, a sharded engine, a
// mirror, or a single-disk adapter — and caches RangeSkyline answers in
// an LRU map keyed by the canonicalized query rectangle, so hot
// rectangles are re-answered from memory instead of re-walking the
// dyntop/top-open or Theorem 6 machinery. Because the key is the
// ORIGINAL rectangle (canonicalized, never the mirror-rewritten one),
// the same entry serves a query whether the planner under the cache
// routes it to the general backend, the top-open backend, or a
// transposed mirror.
//
// Correctness rests on one geometric fact: RangeSkyline(q) depends only
// on the points inside q, so an Insert or Delete of point p can change
// the answer of a cached rectangle only if that rectangle contains p.
// Invalidation exploits it twice:
//
//   - Exactly: only entries whose rectangle could contain a written
//     point are evicted; a Delete that misses every backend changes no
//     answer and evicts nothing.
//   - Shard-aware: when the wrapped backend exposes its x-cuts through
//     the optional Partitioned interface (shard.Engine does), entries
//     are tagged with the range of x-slabs their rectangle intersects,
//     and a write only scans out entries intersecting the written
//     point's slab — the rest of the cache survives the write. A
//     transposed mirror's inner engine partitions by original y, so its
//     cuts refine invalidation on the other axis: an entry is evicted
//     only when its rectangle intersects the affected x-slab AND the
//     affected y-slab. Without partition information the whole cache is
//     one slab and every applied write flushes it.
//
// Concurrent readers and invalidating writers are safe: fills are
// guarded by per-x-slab generation counters. A miss snapshots the
// generations of the slabs its rectangle intersects before querying the
// wrapped backend, and installs the answer only if none changed —
// writers bump the generations AFTER the underlying write completes, so
// an answer computed concurrently with a write that could have affected
// it is returned to its caller but never cached.
package engine

import (
	"container/list"
	"fmt"
	"sort"
	"sync"

	"repro/internal/emio"
	"repro/internal/geom"
)

// Partitioned is the optional interface of backends that partition
// their point set into contiguous x-ranges (shard.Engine). Cuts returns
// the partition boundaries in the backend's own frame: cut i is the
// largest x owned by partition i, so partition i covers
// (cuts[i-1], cuts[i]] and the last partition covers (cuts[K-2], +∞).
// A CacheBackend uses the cuts to evict only the entries a write can
// affect instead of flushing everything.
type Partitioned interface {
	Cuts() []geom.Coord
}

// CanonicalQuery maps q to the representative of its answer-equivalence
// class used as the cache key: every rectangle containing no point at
// all — X1 > X2 or Y1 > Y2 — collapses onto one canonical empty
// rectangle, and every non-empty rectangle is its own representative.
// The invariant (fuzzed by FuzzCanonicalQuery) is that q and
// CanonicalQuery(q) contain exactly the same points, hence have
// byte-identical range skylines.
func CanonicalQuery(q geom.Rect) geom.Rect {
	if q.X1 > q.X2 || q.Y1 > q.Y2 {
		return geom.Rect{X1: 0, X2: -1, Y1: 0, Y2: -1}
	}
	return q
}

// CacheCounters are a cache's operation totals since the last
// ResetStats.
type CacheCounters struct {
	// Hits counts queries answered from the cache.
	Hits uint64
	// Misses counts queries that fell through to the wrapped backend.
	Misses uint64
	// Evictions counts entries dropped to respect the capacity bound.
	Evictions uint64
	// Invalidations counts entries dropped because a write could have
	// changed their answer.
	Invalidations uint64
}

// Add returns the element-wise sum c + o.
func (c CacheCounters) Add(o CacheCounters) CacheCounters {
	return CacheCounters{
		Hits:          c.Hits + o.Hits,
		Misses:        c.Misses + o.Misses,
		Evictions:     c.Evictions + o.Evictions,
		Invalidations: c.Invalidations + o.Invalidations,
	}
}

// cacheEntry is one memoized answer plus the bucket rectangle its query
// intersects: x-slabs [xLo, xHi] and y-slabs [yLo, yHi]. The canonical
// empty rectangle maps to whatever slab owns the origin; evicting it is
// unnecessary (its answer is empty under every point set) but harmless.
type cacheEntry struct {
	key    geom.Rect
	answer []geom.Point
	xLo    int
	xHi    int
	yLo    int
	yHi    int
}

// CacheBackend is a read-through RangeSkyline cache over any Backend.
// It implements Backend: queries are memoized, updates pass through to
// the wrapped backend and invalidate the affected entries. Answers
// returned from the cache are shared slices and must not be mutated by
// callers — the same contract every structure's Query already has.
type CacheBackend struct {
	inner Backend
	cap   int

	mu sync.Mutex
	// xcuts/ycuts are the partition boundaries learned from the wrapped
	// backend (nil = one slab covering the whole axis). Learned at
	// construction; a rebalancing engine moves them through
	// SetXCuts/SetYCuts. Guarded by mu.
	xcuts   []geom.Coord
	ycuts   []geom.Coord
	entries map[geom.Rect]*list.Element
	lru     *list.List // front = most recently used
	// genX[i] counts the applied writes that touched x-slab i; fills
	// are dropped when a slab generation moved under them.
	genX []uint64
	// cutsGen counts SetXCuts/SetYCuts calls: a fill whose slab tags
	// were computed against old cuts must be dropped, never installed
	// with stale coordinates (the per-slab generations it snapshotted
	// index a genX that no longer exists).
	cutsGen uint64

	hits          uint64
	misses        uint64
	evictions     uint64
	invalidations uint64
}

// NewCache wraps inner with a read-through cache holding at most
// entries memoized answers (entries < 1 is an error — a cache that can
// hold nothing should not be built). Partition cuts are discovered from
// the wrapped backend: a Planner is walked backend by backend, a
// Partitioned backend contributes the x-cuts, and a transpose mirror
// whose inner backend is Partitioned contributes the y-cuts (the
// mirrored frame's x is the original frame's y).
func NewCache(inner Backend, entries int) (*CacheBackend, error) {
	if entries < 1 {
		return nil, fmt.Errorf("engine: cache capacity %d < 1", entries)
	}
	c := &CacheBackend{
		inner:   inner,
		cap:     entries,
		entries: make(map[geom.Rect]*list.Element, entries),
		lru:     list.New(),
	}
	c.xcuts, c.ycuts = learnCuts(inner)
	c.genX = make([]uint64, len(c.xcuts)+1)
	return c, nil
}

// learnCuts harvests partition cuts from b: x-cuts from the first
// Partitioned backend, y-cuts from a transpose mirror over one (the
// mirrored frame's x is the original frame's y). Wrapping layers — a
// Planner, a CacheBackend, an AsyncQueue, a LogBackend — are walked
// through to the backends they wrap, so the cache and the write queue
// slab on the same shard boundaries regardless of stacking order.
func learnCuts(b Backend) (xcuts, ycuts []geom.Coord) {
	var walk func(Backend)
	walk = func(b Backend) {
		switch v := b.(type) {
		case *Planner:
			for _, bk := range v.Backends() {
				walk(bk)
			}
		case *CacheBackend:
			walk(v.inner)
		case *AsyncQueue:
			walk(v.inner)
		case *LogBackend:
			walk(v.inner)
		case *MirrorBackend:
			if v.ref != geom.ReflectSwapXY {
				return
			}
			if p, ok := v.inner.(Partitioned); ok && ycuts == nil {
				ycuts = append([]geom.Coord(nil), p.Cuts()...)
			}
		default:
			if p, ok := b.(Partitioned); ok && xcuts == nil {
				xcuts = append([]geom.Coord(nil), p.Cuts()...)
			}
		}
	}
	walk(b)
	return xcuts, ycuts
}

// Inner returns the wrapped backend.
func (c *CacheBackend) Inner() Backend { return c.inner }

// Cap returns the capacity bound (maximum memoized answers).
func (c *CacheBackend) Cap() int { return c.cap }

// Len returns the number of memoized answers currently held.
func (c *CacheBackend) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// XCuts returns the x-partition boundaries invalidation is aware of
// (nil when the wrapped backend exposed none).
func (c *CacheBackend) XCuts() []geom.Coord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]geom.Coord(nil), c.xcuts...)
}

// YCuts returns the y-partition boundaries invalidation is aware of.
func (c *CacheBackend) YCuts() []geom.Coord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]geom.Coord(nil), c.ycuts...)
}

// SetXCuts replaces the x-partition boundaries after the wrapped engine
// rebalanced. Every resident entry is re-tagged against the new cuts —
// the memoized ANSWERS stay valid (a cut move changes where points
// live, not what a rectangle contains), only the slab coordinates used
// for invalidation change — and the per-slab generations restart at a
// new cuts generation, so any in-flight fill tagged under the old cuts
// is dropped instead of installed stale.
func (c *CacheBackend) SetXCuts(cuts []geom.Coord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.xcuts = append([]geom.Coord(nil), cuts...)
	c.genX = make([]uint64, len(c.xcuts)+1)
	c.cutsGen++
	c.retagLocked()
}

// SetYCuts is SetXCuts for the transpose mirror's axis: the mirrored
// engine partitions by original y, so its rebalance moves the y-slab
// tags.
func (c *CacheBackend) SetYCuts(cuts []geom.Coord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ycuts = append([]geom.Coord(nil), cuts...)
	c.cutsGen++
	c.retagLocked()
}

// retagLocked recomputes every entry's slab interval from the current
// cuts. Caller holds mu.
func (c *CacheBackend) retagLocked() {
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		e.xLo, e.xHi = buckets(c.xcuts, e.key.X1, e.key.X2)
		e.yLo, e.yHi = buckets(c.ycuts, e.key.Y1, e.key.Y2)
	}
}

// Counters returns the cache's operation totals since the last
// ResetStats. Safe to call while operations are in flight.
func (c *CacheBackend) Counters() CacheCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheCounters{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
	}
}

// bucketFor returns the index of the slab owning x: the smallest i with
// x <= cuts[i], or len(cuts) when x lies beyond the last cut.
func bucketFor(cuts []geom.Coord, x geom.Coord) int {
	return sort.Search(len(cuts), func(i int) bool { return x <= cuts[i] })
}

// buckets returns the slab interval [lo, hi] a coordinate range
// intersects. An empty range (x1 > x2) yields hi < lo.
func buckets(cuts []geom.Coord, x1, x2 geom.Coord) (lo, hi int) {
	return bucketFor(cuts, x1), bucketFor(cuts, x2)
}

// RangeSkyline answers q from the cache when a memoized entry exists,
// and reads through to the wrapped backend otherwise. The answer is
// byte-identical to the wrapped backend's: a hit returns exactly the
// slice a previous read-through stored, and invalidation guarantees no
// stored answer survives a write that could have changed it.
func (c *CacheBackend) RangeSkyline(q geom.Rect) []geom.Point {
	key := CanonicalQuery(q)

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		ans := el.Value.(*cacheEntry).answer
		c.mu.Unlock()
		return ans
	}
	c.misses++
	xLo, xHi := buckets(c.xcuts, key.X1, key.X2)
	cutsGen := c.cutsGen
	// Snapshot the generations of every x-slab the rectangle
	// intersects: a write inside the rectangle must land in one of
	// them, so an unchanged snapshot proves no such write raced the
	// read-through below.
	var gens []uint64
	if xLo <= xHi {
		gens = append(gens, c.genX[xLo:xHi+1]...)
	}
	c.mu.Unlock()

	ans := c.inner.RangeSkyline(q)

	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		// A concurrent reader installed the same key first; keep its
		// entry (the two answers agree — no invalidating write came
		// between, or both fills would have been dropped).
		return ans
	}
	if c.cutsGen != cutsGen {
		// The cuts moved while the answer was being computed: the slab
		// tags and generation snapshot describe a partition that no
		// longer exists. Late fill against a moved cut — drop it.
		return ans
	}
	for i := xLo; i <= xHi; i++ {
		if c.genX[i] != gens[i-xLo] {
			// An invalidating write landed in one of our slabs while
			// the answer was being computed; it may predate the write.
			return ans
		}
	}
	e := &cacheEntry{key: key, answer: ans, xLo: xLo, xHi: xHi}
	e.yLo, e.yHi = buckets(c.ycuts, key.Y1, key.Y2)
	if c.lru.Len() >= c.cap {
		c.dropLocked(c.lru.Back())
		c.evictions++
	}
	c.entries[key] = c.lru.PushFront(e)
	return ans
}

// dropLocked removes an LRU element from both indexes. Caller holds mu.
func (c *CacheBackend) dropLocked(el *list.Element) {
	delete(c.entries, el.Value.(*cacheEntry).key)
	c.lru.Remove(el)
}

// invalidate drops every entry whose rectangle could contain one of the
// applied writes and bumps the touched slab generations. It must be
// called AFTER the underlying write completed: the generation bump is
// what tells concurrent read-throughs their answer may be stale, and
// bumping early would let a fill started after the bump cache an answer
// computed before the write landed.
func (c *CacheBackend) invalidate(pts []geom.Point) {
	if len(pts) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Dedup the touched (x-slab, y-slab) pairs: a batch localized to
	// one shard scans the cache once, not once per point. Single-point
	// writes — the Insert/Delete hot path — skip the maps entirely.
	// Computed under mu so the pairs and the entry tags they are matched
	// against always describe the same cuts.
	type slabPair struct{ x, y int }
	var touched []slabPair
	if len(pts) == 1 {
		touched = []slabPair{{bucketFor(c.xcuts, pts[0].X), bucketFor(c.ycuts, pts[0].Y)}}
	} else {
		set := make(map[slabPair]bool, len(pts))
		for _, p := range pts {
			pair := slabPair{bucketFor(c.xcuts, p.X), bucketFor(c.ycuts, p.Y)}
			if !set[pair] {
				set[pair] = true
				touched = append(touched, pair)
			}
		}
	}
	bumped := -1 // touched is grouped enough that a last-seen check dedups most bumps
	for _, pair := range touched {
		if pair.x != bumped {
			bumped = pair.x
			c.genX[pair.x]++
		}
	}
	var next *list.Element
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*cacheEntry)
		for _, pair := range touched {
			if e.xLo <= pair.x && pair.x <= e.xHi && e.yLo <= pair.y && pair.y <= e.yHi {
				c.dropLocked(el)
				c.invalidations++
				break
			}
		}
	}
}

// Insert applies p through the wrapped backend and evicts the entries
// whose rectangles could contain p — even when the backend reports an
// error, because a planner error can arrive AFTER the primary applied
// the write (the same conservatism Delete applies to corruption
// errors). An error from a backend that mutated nothing (a static
// index) makes the invalidation unnecessary, never wrong.
func (c *CacheBackend) Insert(p geom.Point) error {
	err := c.inner.Insert(p)
	c.invalidate([]geom.Point{p})
	return err
}

// Delete removes p through the wrapped backend. A miss changed no
// answer and therefore evicts nothing; only a confirmed removal
// invalidates (even alongside a corruption error — the primary did
// remove the point, so cached answers containing it are stale).
func (c *CacheBackend) Delete(p geom.Point) (bool, error) {
	present, err := c.inner.Delete(p)
	if present {
		c.invalidate([]geom.Point{p})
	}
	return present, err
}

// BatchInsert applies the batch through the wrapped backend's batched
// path and invalidates every inserted point's slab pair in one scan —
// on error too, since part of the batch may have been applied (see
// Insert).
func (c *CacheBackend) BatchInsert(pts []geom.Point) error {
	err := c.inner.BatchInsert(pts)
	c.invalidate(pts)
	return err
}

// BatchDelete removes the batch through the wrapped backend's batched
// path. When the backend reports WHICH points it removed (the planner
// and both sharded/dynamic primaries do), only those drive
// invalidation — a batch of all misses evicts nothing. A backend
// without the report falls back to invalidating every requested point
// once anything was removed: a superset, never a miss.
func (c *CacheBackend) BatchDelete(pts []geom.Point) (int, error) {
	if rep, ok := c.inner.(batchDeleteReporter); ok {
		removed, err := rep.BatchDeleteRemoved(pts)
		c.invalidate(removed)
		return len(removed), err
	}
	n, err := c.inner.BatchDelete(pts)
	if n > 0 {
		c.invalidate(pts)
	}
	return n, err
}

// BatchDeleteRemoved forwards the wrapped backend's removed-subset
// report, invalidating exactly that subset, so a cache composes with
// the planner's presence-check-first batch fan-out.
func (c *CacheBackend) BatchDeleteRemoved(pts []geom.Point) ([]geom.Point, error) {
	rep, ok := c.inner.(batchDeleteReporter)
	if !ok {
		return nil, fmt.Errorf("engine: cache's inner backend cannot report removed points")
	}
	removed, err := rep.BatchDeleteRemoved(pts)
	c.invalidate(removed)
	return removed, err
}

// Stats returns the wrapped backend's I/O counters: the cache itself
// performs no simulated I/O, which is the whole point — hits cost zero.
func (c *CacheBackend) Stats() emio.Stats { return c.inner.Stats() }

// ResetStats zeroes the cache counters and the wrapped backend's I/O
// counters WITHOUT dropping the memoized entries: resetting measurement
// state must not change what the next query costs.
func (c *CacheBackend) ResetStats() {
	c.mu.Lock()
	c.hits, c.misses, c.evictions, c.invalidations = 0, 0, 0, 0
	c.mu.Unlock()
	c.inner.ResetStats()
}

// StatsKey dedups stats through to the wrapped backend, so a registered
// cache never double-counts I/Os with the backend it wraps (exactly
// like MirrorBackend).
func (c *CacheBackend) StatsKey() any { return statsKey(c.inner) }

// cacheCounterer is implemented by backends carrying cache counters
// (CacheBackend; a future tiered cache would too).
type cacheCounterer interface{ Counters() CacheCounters }

// CacheCounters aggregates the hit/miss/eviction counters of every
// registered caching backend, deduped by StatsKey like Stats, so a
// cache registered for several roles (top-open and general, say) is
// counted once.
func (pl *Planner) CacheCounters() CacheCounters {
	var total CacheCounters
	seen := make(map[any]bool, len(pl.backends))
	for _, b := range pl.backends {
		cc, ok := b.(cacheCounterer)
		if !ok {
			continue
		}
		k := statsKey(b)
		if seen[k] {
			continue
		}
		seen[k] = true
		total = total.Add(cc.Counters())
	}
	return total
}
