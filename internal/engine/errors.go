// Typed sentinel errors of the engine's write path. Callers match them
// with errors.Is; every path that returns one wraps it with context
// (which slab, what latched), so the sentinel match and the diagnostic
// text are both available. core and the repro root re-export all three
// so applications never import internal packages to classify failures.
package engine

import "errors"

var (
	// ErrClosed rejects writes arriving after Close. The index is gone
	// on purpose; nothing about the data is wrong.
	ErrClosed = errors.New("engine: index is closed")

	// ErrDegraded rejects writes after a fatal storage error latched:
	// the queue froze with the error sticky, reads and snapshots keep
	// serving the applied (WAL-replayable) state, and a reopen-replay
	// recovers every acknowledged write. The chain carries the latched
	// error too, so errors.Is sees both.
	ErrDegraded = errors.New("engine: degraded read-only mode (storage error latched)")

	// ErrBackpressure sheds a write whose slab buffer is at
	// MaxBuffered under the shed policy. The write was NOT accepted;
	// the caller may retry after a Flush or with backoff.
	ErrBackpressure = errors.New("engine: write shed by queue backpressure")
)
