// Package vfs is the fault seam of the durable storage stack: a small
// filesystem interface covering exactly the operations the pager and
// the WAL perform (open, positional read/write, fsync, truncate,
// rename, remove, directory sync), an OsFS passthrough to the real
// filesystem, and a deterministic, seedable fault injector (FaultFS)
// that can fail any of those operations on demand — error on the Nth
// op, probabilistically, with ENOSPC, with a short (torn) write, with
// a failing fsync, or with added latency.
//
// Everything internal/pager and internal/wal do to the host filesystem
// goes through an FS, so a test (or skybench's E18 resilience
// experiment) can stand a FaultFS between the storage stack and the
// disk and exercise every failure path the real filesystem could take,
// deterministically. This generalizes the ad-hoc crash hook the
// snapshot-install tests began with: a crash window is "the op stream
// up to here", a fault is "this op fails instead".
//
// The package also fixes the error taxonomy of the storage stack:
//
//   - every failing operation is wrapped in an *OpError naming the
//     operation and the path, so layers above can recognize a storage
//     fault (IsStorageErr) without string matching;
//   - Transient classifies an error as retryable (EINTR, EAGAIN, torn
//     writes, injected transient faults) or fatal (ENOSPC, EIO,
//     corruption — everything else);
//   - RetryPolicy.Do retries transient failures with bounded
//     exponential backoff, counting retries and marking budget
//     exhaustion with ErrRetryExhausted.
//
// The contract the layers above rely on: a transient fault is absorbed
// below this seam (retried until it clears or the budget is spent); an
// error that escapes the retry loop is fatal, and core.DB reacts by
// latching degraded read-only mode rather than limping on.
package vfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"syscall"
)

// File is the slice of *os.File the storage stack uses: positional
// reads and writes (never offset-carrying Write), fsync, truncate.
type File interface {
	io.ReaderAt
	io.WriterAt
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Truncate changes the file's size.
	Truncate(size int64) error
	// Size returns the file's current size.
	Size() (int64, error)
	// Close releases the descriptor.
	Close() error
}

// FS is the filesystem the durable storage stack runs on. OsFS is the
// real one; FaultFS wraps any FS with deterministic fault injection.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath (rename(2)).
	Rename(oldpath, newpath string) error
	// Remove deletes name; removing a missing file is an error
	// (callers that do not care ignore os.IsNotExist).
	Remove(name string) error
	// Stat describes name.
	Stat(name string) (os.FileInfo, error)
	// SyncDir fsyncs the directory at dir, making renames and removes
	// inside it durable.
	SyncDir(dir string) error
}

// Op names one filesystem operation class — the injection points a
// FaultFS can fire on. AllOps enumerates them for coverage sweeps.
type Op uint8

const (
	// OpOpen is FS.OpenFile.
	OpOpen Op = iota
	// OpReadAt is File.ReadAt.
	OpReadAt
	// OpWriteAt is File.WriteAt.
	OpWriteAt
	// OpSync is File.Sync.
	OpSync
	// OpTruncate is File.Truncate.
	OpTruncate
	// OpSize is File.Size.
	OpSize
	// OpClose is File.Close.
	OpClose
	// OpRename is FS.Rename.
	OpRename
	// OpRemove is FS.Remove.
	OpRemove
	// OpStat is FS.Stat.
	OpStat
	// OpSyncDir is FS.SyncDir.
	OpSyncDir
)

var opNames = [...]string{
	OpOpen:     "open",
	OpReadAt:   "readat",
	OpWriteAt:  "writeat",
	OpSync:     "sync",
	OpTruncate: "truncate",
	OpSize:     "size",
	OpClose:    "close",
	OpRename:   "rename",
	OpRemove:   "remove",
	OpStat:     "stat",
	OpSyncDir:  "syncdir",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// AllOps enumerates every injection point, in declaration order. The
// fault-sweep harness iterates it to prove each point fired at least
// once.
func AllOps() []Op {
	return []Op{OpOpen, OpReadAt, OpWriteAt, OpSync, OpTruncate, OpSize,
		OpClose, OpRename, OpRemove, OpStat, OpSyncDir}
}

// OpError wraps every error the storage stack's filesystem layer
// returns, naming the operation and the path. Layers above recognize
// storage faults with IsStorageErr instead of string matching.
type OpError struct {
	Op   Op
	Path string
	Err  error
}

func (e *OpError) Error() string {
	return fmt.Sprintf("vfs: %s %s: %v", e.Op, e.Path, e.Err)
}

func (e *OpError) Unwrap() error { return e.Err }

// wrapOp wraps err (non-nil) in an *OpError unless it already is one
// (FaultFS over OsFS must not double-wrap).
func wrapOp(op Op, path string, err error) error {
	var oe *OpError
	if errors.As(err, &oe) {
		return err
	}
	return &OpError{Op: op, Path: path, Err: err}
}

// IsStorageErr reports whether err originated in the filesystem layer
// (it chains through an *OpError). core.DB uses it to decide that a
// failed write is a storage fault — grounds for degraded mode — rather
// than a caller-contract violation.
func IsStorageErr(err error) bool {
	var oe *OpError
	return errors.As(err, &oe)
}

// ErrInjected is the default error a FaultFS rule injects. It is
// classified transient: the retry loop absorbs it.
var ErrInjected = errors.New("injected transient fault")

// Transient reports whether err is worth retrying: the interrupted-
// or-busy syscall flavors (EINTR, EAGAIN), a short/torn write (the
// rewrite at the same offset is idempotent — the storage stack only
// writes positionally), and injected transient faults. Everything
// else — ENOSPC, EIO, EBADF, checksum mismatches, closed files — is
// fatal: retrying cannot help, and the caller must fail the operation.
func Transient(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, syscall.EINTR), errors.Is(err, syscall.EAGAIN):
		return true
	case errors.Is(err, io.ErrShortWrite):
		return true
	case errors.Is(err, ErrInjected):
		return true
	}
	return false
}

// OS is the real filesystem.
var OS FS = osFS{}

// osFS passes through to package os, wrapping failures in OpError.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, wrapOp(OpOpen, name, err)
	}
	return osFile{f}, nil
}

func (osFS) Rename(oldpath, newpath string) error {
	if err := os.Rename(oldpath, newpath); err != nil {
		return wrapOp(OpRename, oldpath, err)
	}
	return nil
}

func (osFS) Remove(name string) error {
	if err := os.Remove(name); err != nil {
		return wrapOp(OpRemove, name, err)
	}
	return nil
}

func (osFS) Stat(name string) (os.FileInfo, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return nil, wrapOp(OpStat, name, err)
	}
	return fi, nil
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return wrapOp(OpSyncDir, dir, err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		return wrapOp(OpSyncDir, dir, err)
	}
	return nil
}

// osFile wraps *os.File into the File slice, wrapping errors.
type osFile struct{ f *os.File }

func (o osFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := o.f.ReadAt(p, off)
	if err != nil {
		return n, wrapOp(OpReadAt, o.f.Name(), err)
	}
	return n, nil
}

func (o osFile) WriteAt(p []byte, off int64) (int, error) {
	n, err := o.f.WriteAt(p, off)
	if err != nil {
		return n, wrapOp(OpWriteAt, o.f.Name(), err)
	}
	return n, nil
}

func (o osFile) Sync() error {
	if err := o.f.Sync(); err != nil {
		return wrapOp(OpSync, o.f.Name(), err)
	}
	return nil
}

func (o osFile) Truncate(size int64) error {
	if err := o.f.Truncate(size); err != nil {
		return wrapOp(OpTruncate, o.f.Name(), err)
	}
	return nil
}

func (o osFile) Size() (int64, error) {
	st, err := o.f.Stat()
	if err != nil {
		return 0, wrapOp(OpSize, o.f.Name(), err)
	}
	return st.Size(), nil
}

func (o osFile) Close() error {
	if err := o.f.Close(); err != nil {
		return wrapOp(OpClose, o.f.Name(), err)
	}
	return nil
}
