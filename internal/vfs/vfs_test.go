package vfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// TestOsFSRoundTrip drives the whole File surface through OsFS and
// checks errors come back wrapped in OpError.
func TestOsFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	f, err := OS.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("hello world"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 6); err != nil || string(buf) != "world" {
		t.Fatalf("ReadAt = %q, %v", buf, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if n, err := f.Size(); err != nil || n != 11 {
		t.Fatalf("Size = %d, %v", n, err)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	newPath := filepath.Join(dir, "g")
	if err := OS.Rename(path, newPath); err != nil {
		t.Fatal(err)
	}
	if fi, err := OS.Stat(newPath); err != nil || fi.Size() != 5 {
		t.Fatalf("Stat after rename: %v, %v", fi, err)
	}
	if err := OS.Remove(newPath); err != nil {
		t.Fatal(err)
	}

	// Failures are OpErrors: both the sentinel and the syscall detail
	// survive the wrap.
	_, err = OS.Stat(newPath)
	if err == nil || !IsStorageErr(err) {
		t.Fatalf("Stat of removed file: %v, want a storage OpError", err)
	}
	var oe *OpError
	if !errors.As(err, &oe) || oe.Op != OpStat {
		t.Fatalf("OpError.Op = %v, want stat", err)
	}
	if !os.IsNotExist(err) && !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("wrapped error lost os.ErrNotExist: %v", err)
	}
}

// TestTransientClassification pins the retryable-vs-fatal split.
func TestTransientClassification(t *testing.T) {
	transient := []error{
		syscall.EINTR,
		syscall.EAGAIN,
		io.ErrShortWrite,
		ErrInjected,
		&OpError{Op: OpWriteAt, Path: "x", Err: syscall.EINTR},
		&OpError{Op: OpSync, Path: "x", Err: ErrInjected},
	}
	for _, err := range transient {
		if !Transient(err) {
			t.Errorf("Transient(%v) = false, want true", err)
		}
	}
	fatal := []error{
		nil,
		syscall.ENOSPC,
		syscall.EIO,
		syscall.EBADF,
		errors.New("pager: checksum mismatch"),
		&OpError{Op: OpWriteAt, Path: "x", Err: syscall.ENOSPC},
	}
	for _, err := range fatal {
		if Transient(err) {
			t.Errorf("Transient(%v) = true, want false", err)
		}
	}
}

// TestRetryAbsorbsTransient: a fault that clears within the budget is
// invisible to the caller; the counters record the work.
func TestRetryAbsorbsTransient(t *testing.T) {
	var c RetryCounters
	fails := 3
	calls := 0
	err := RetryPolicy{Sleep: func(time.Duration) {}}.Do(&c, func() error {
		calls++
		if calls <= fails {
			return &OpError{Op: OpWriteAt, Path: "x", Err: syscall.EINTR}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("retry did not absorb transient failures: %v", err)
	}
	if calls != fails+1 || c.Retried() != uint64(fails) || c.Exhausted() != 0 {
		t.Fatalf("calls=%d retried=%d exhausted=%d", calls, c.Retried(), c.Exhausted())
	}
}

// TestRetryExhausted: a fault that never clears surfaces
// ErrRetryExhausted with the cause still in the chain.
func TestRetryExhausted(t *testing.T) {
	var c RetryCounters
	calls := 0
	err := RetryPolicy{MaxRetries: 2, Sleep: func(time.Duration) {}}.Do(&c, func() error {
		calls++
		return &OpError{Op: OpSync, Path: "x", Err: syscall.EINTR}
	})
	if !errors.Is(err, ErrRetryExhausted) {
		t.Fatalf("err = %v, want ErrRetryExhausted", err)
	}
	if !IsStorageErr(err) {
		t.Fatalf("exhausted error lost the OpError chain: %v", err)
	}
	if calls != 3 || c.Exhausted() != 1 {
		t.Fatalf("calls=%d exhausted=%d, want 3 attempts and 1 exhaustion", calls, c.Exhausted())
	}
}

// TestRetryFatalNoRetry: fatal errors return immediately, unretried.
func TestRetryFatalNoRetry(t *testing.T) {
	var c RetryCounters
	calls := 0
	fatal := &OpError{Op: OpWriteAt, Path: "x", Err: syscall.ENOSPC}
	err := RetryPolicy{Sleep: func(time.Duration) {}}.Do(&c, func() error {
		calls++
		return fatal
	})
	if !errors.Is(err, syscall.ENOSPC) || calls != 1 || c.Retried() != 0 {
		t.Fatalf("fatal error was retried: calls=%d err=%v", calls, err)
	}
	if errors.Is(err, ErrRetryExhausted) {
		t.Fatalf("fatal error mislabeled as exhaustion: %v", err)
	}
}

// TestFaultFSNth: an error-on-Nth-op rule fires exactly once, at the
// right op, and the coverage counters record it.
func TestFaultFSNth(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(OS, 1, Fault{Op: OpWriteAt, Nth: 3})
	f, err := fs.OpenFile(filepath.Join(dir, "f"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 5; i++ {
		_, err := f.WriteAt([]byte("x"), int64(i))
		if (i == 2) != (err != nil) {
			t.Fatalf("write %d: err = %v (rule targets the 3rd)", i, err)
		}
		if i == 2 && !Transient(err) {
			t.Fatalf("default injected fault should be transient: %v", err)
		}
	}
	if got := fs.Injected(); got != 1 {
		t.Fatalf("Injected = %d, want 1", got)
	}
	if ops := fs.FiredOps(); len(ops) != 1 || ops[0] != OpWriteAt {
		t.Fatalf("FiredOps = %v", ops)
	}
	if fs.OpCount(OpWriteAt) != 5 {
		t.Fatalf("OpCount(writeat) = %d, want 5", fs.OpCount(OpWriteAt))
	}
}

// TestFaultFSEveryAndPath: Every-periodic rules respect the path
// filter, and After offsets the phase.
func TestFaultFSEveryAndPath(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(OS, 1, Fault{Op: OpSync, Path: "b", After: 1, Every: 2})
	open := func(name string) File {
		f, err := fs.OpenFile(filepath.Join(dir, name), os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	a, b := open("a"), open("b")
	defer a.Close()
	defer b.Close()
	for i := 0; i < 6; i++ {
		if err := a.Sync(); err != nil {
			t.Fatalf("sync of unmatched path faulted: %v", err)
		}
	}
	var errs []bool
	for i := 0; i < 6; i++ {
		errs = append(errs, b.Sync() != nil)
	}
	// seen=1 skipped (After), then every 2nd: fires at seen 3, 5.
	want := []bool{false, false, true, false, true, false}
	for i := range want {
		if errs[i] != want[i] {
			t.Fatalf("sync fire pattern %v, want %v", errs, want)
		}
	}
}

// TestFaultFSProbDeterministic: the same seed over the same op stream
// fires at the same ops.
func TestFaultFSProbDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		dir := t.TempDir()
		fs := NewFaultFS(OS, seed, Fault{Op: OpWriteAt, Prob: 0.5})
		f, err := fs.OpenFile(filepath.Join(dir, "f"), os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		var fires []bool
		for i := 0; i < 64; i++ {
			_, err := f.WriteAt([]byte("x"), int64(i))
			fires = append(fires, err != nil)
		}
		return fires
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("different seeds produced identical fire patterns (suspicious)")
	}
}

// TestFaultFSShortWrite: a torn write leaves half the buffer, and the
// idempotent retry at the same offset repairs it.
func TestFaultFSShortWrite(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(OS, 1, Fault{Op: OpWriteAt, Nth: 1, Short: true})
	path := filepath.Join(dir, "f")
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	payload := []byte("0123456789abcdef")
	n, werr := f.WriteAt(payload, 0)
	if werr == nil || n != len(payload)/2 {
		t.Fatalf("torn write: n=%d err=%v, want half the buffer and an error", n, werr)
	}
	if !Transient(werr) {
		t.Fatalf("torn write error should be transient: %v", werr)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload[:len(payload)/2]) {
		t.Fatalf("file holds %q after tear", got)
	}
	// The retry: same buffer, same offset.
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	got, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("file holds %q after retry, want full payload", got)
	}
}

// TestFaultFSFatalInjection: an injected ENOSPC is fatal and keeps its
// identity through the OpError wrap.
func TestFaultFSFatalInjection(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(OS, 1, Fault{Op: OpWriteAt, Err: syscall.ENOSPC})
	f, err := fs.OpenFile(filepath.Join(dir, "f"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, werr := f.WriteAt([]byte("x"), 0)
	if !errors.Is(werr, syscall.ENOSPC) || Transient(werr) || !IsStorageErr(werr) {
		t.Fatalf("injected ENOSPC misclassified: %v", werr)
	}
}

// TestFaultFSLimitAndClear: Limit caps fires; ClearFaults heals the
// disk.
func TestFaultFSLimitAndClear(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(OS, 1, Fault{Op: OpSync, Limit: 2})
	f, err := fs.OpenFile(filepath.Join(dir, "f"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fails := 0
	for i := 0; i < 5; i++ {
		if f.Sync() != nil {
			fails++
		}
	}
	if fails != 2 {
		t.Fatalf("Limit 2 rule fired %d times", fails)
	}
	fs.AddFault(Fault{Op: OpSync})
	if f.Sync() == nil {
		t.Fatal("added permanent rule did not fire")
	}
	fs.ClearFaults()
	if err := f.Sync(); err != nil {
		t.Fatalf("cleared FS still faults: %v", err)
	}
}

// TestFaultFSHook observes the op stream in order.
func TestFaultFSHook(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(OS, 1)
	var ops []Op
	fs.Hook = func(op Op, path string) { ops = append(ops, op) }
	f, err := fs.OpenFile(filepath.Join(dir, "f"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	want := []Op{OpOpen, OpWriteAt, OpSync, OpClose}
	if len(ops) != len(want) {
		t.Fatalf("hook saw %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("hook saw %v, want %v", ops, want)
		}
	}
}
