package vfs

import (
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"
)

// Fault is one injection rule: which operation class it targets, when
// it fires, and what happens then. The zero trigger fields mean "every
// matching operation" — a permanent failure; Nth, Every and Prob make
// it one-shot, periodic or probabilistic (first non-zero wins, in that
// order). All matching is counted per rule, so two rules on the same
// op fire independently.
type Fault struct {
	// Op is the operation class the rule targets.
	Op Op
	// Path, when non-empty, restricts the rule to paths containing it
	// as a substring (e.g. ".wal" to fault only the log).
	Path string
	// After skips the first After matching operations before the
	// trigger logic runs — "the burst starts mid-workload".
	After uint64
	// Nth fires exactly once, on the Nth matching operation past
	// After (1-based).
	Nth uint64
	// Every fires on every Every-th matching operation past After.
	Every uint64
	// Prob fires each matching operation past After with this
	// probability, drawn from the FaultFS's seeded generator —
	// deterministic for a fixed seed and op stream.
	Prob float64
	// Limit caps the total number of fires; 0 means unlimited (Nth
	// rules fire once regardless).
	Limit int
	// Err is the injected error; nil means ErrInjected (transient).
	// Inject syscall.ENOSPC, syscall.EIO, … for fatal faults.
	Err error
	// Short makes a WriteAt rule write roughly half the buffer before
	// failing — a torn write. The retry at the same offset repairs it.
	Short bool
	// Latency sleeps this long whenever the rule fires, before any
	// error is returned. A rule with Latency alone (no Err, no Short)
	// injects pure slowness.
	Latency time.Duration

	seen  uint64
	fired int
}

// fire decides whether the rule triggers for its (already matched)
// seen-counter value; rng is the FaultFS's seeded generator.
func (f *Fault) fire(rng *rand.Rand) bool {
	f.seen++
	if f.seen <= f.After {
		return false
	}
	if f.Limit > 0 && f.fired >= f.Limit {
		return false
	}
	hit := false
	switch {
	case f.Nth > 0:
		hit = f.seen == f.After+f.Nth
	case f.Every > 0:
		hit = (f.seen-f.After)%f.Every == 0
	case f.Prob > 0:
		hit = rng.Float64() < f.Prob
	default:
		hit = true
	}
	if hit {
		f.fired++
	}
	return hit
}

// FaultFS wraps an FS with deterministic fault injection. A fixed seed
// and a fixed operation stream produce the same faults every run, so
// sweeps are reproducible and benchguard can gate on injected-fault
// metrics. Safe for concurrent use.
type FaultFS struct {
	inner FS

	// Hook, when non-nil, observes every operation before the fault
	// rules run — crash-style tests os.Exit inside it to die at an
	// exact point in the op stream. Set it before handing the FS to
	// the storage stack.
	Hook func(op Op, path string)

	mu       sync.Mutex
	rng      *rand.Rand
	faults   []*Fault
	opSeen   map[Op]uint64
	opFired  map[Op]uint64
	injected uint64
}

// NewFaultFS wraps inner with the given rules. seed fixes the
// probabilistic rules' generator.
func NewFaultFS(inner FS, seed int64, faults ...Fault) *FaultFS {
	fs := &FaultFS{
		inner:   inner,
		rng:     rand.New(rand.NewSource(seed)),
		opSeen:  make(map[Op]uint64),
		opFired: make(map[Op]uint64),
	}
	for i := range faults {
		f := faults[i]
		fs.faults = append(fs.faults, &f)
	}
	return fs
}

// AddFault installs another rule; its counters start at zero.
func (fs *FaultFS) AddFault(f Fault) {
	fs.mu.Lock()
	fs.faults = append(fs.faults, &f)
	fs.mu.Unlock()
}

// ClearFaults drops every rule — "the disk recovered".
func (fs *FaultFS) ClearFaults() {
	fs.mu.Lock()
	fs.faults = nil
	fs.mu.Unlock()
}

// Injected returns the total number of faults fired so far.
func (fs *FaultFS) Injected() uint64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.injected
}

// OpCount returns how many operations of class op the stack performed
// through this FS.
func (fs *FaultFS) OpCount(op Op) uint64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.opSeen[op]
}

// FiredOps returns the operation classes at which at least one fault
// fired, in AllOps order — the coverage record the fault-sweep harness
// asserts over.
func (fs *FaultFS) FiredOps() []Op {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var out []Op
	for _, op := range AllOps() {
		if fs.opFired[op] > 0 {
			out = append(out, op)
		}
	}
	return out
}

// check runs the hook and the rules for one operation. It returns the
// injected error (nil when no rule fired, or for a latency-only rule)
// and whether a torn write was requested.
func (fs *FaultFS) check(op Op, path string) (error, bool) {
	if h := fs.Hook; h != nil {
		h(op, path)
	}
	fs.mu.Lock()
	fs.opSeen[op]++
	var latency time.Duration
	var injected error
	short := false
	for _, f := range fs.faults {
		if f.Op != op || (f.Path != "" && !strings.Contains(path, f.Path)) {
			continue
		}
		if !f.fire(fs.rng) {
			continue
		}
		fs.opFired[op]++
		fs.injected++
		if f.Latency > latency {
			latency = f.Latency
		}
		if f.Short {
			short = true
		}
		if injected == nil && (f.Err != nil || f.Short || f.Latency == 0) {
			injected = f.Err
			if injected == nil {
				injected = ErrInjected
			}
		}
	}
	fs.mu.Unlock()
	if latency > 0 {
		time.Sleep(latency)
	}
	if injected != nil {
		return wrapOp(op, path, injected), short
	}
	return nil, false
}

func (fs *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err, _ := fs.check(OpOpen, name); err != nil {
		return nil, err
	}
	f, err := fs.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: fs, path: name, inner: f}, nil
}

func (fs *FaultFS) Rename(oldpath, newpath string) error {
	if err, _ := fs.check(OpRename, oldpath); err != nil {
		return err
	}
	return fs.inner.Rename(oldpath, newpath)
}

func (fs *FaultFS) Remove(name string) error {
	if err, _ := fs.check(OpRemove, name); err != nil {
		return err
	}
	return fs.inner.Remove(name)
}

func (fs *FaultFS) Stat(name string) (os.FileInfo, error) {
	if err, _ := fs.check(OpStat, name); err != nil {
		return nil, err
	}
	return fs.inner.Stat(name)
}

func (fs *FaultFS) SyncDir(dir string) error {
	if err, _ := fs.check(OpSyncDir, dir); err != nil {
		return err
	}
	return fs.inner.SyncDir(dir)
}

// faultFile threads every file operation back through the rules.
type faultFile struct {
	fs    *FaultFS
	path  string
	inner File
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if err, _ := f.fs.check(OpReadAt, f.path); err != nil {
		return 0, err
	}
	return f.inner.ReadAt(p, off)
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	err, short := f.fs.check(OpWriteAt, f.path)
	if err != nil {
		if short && len(p) > 1 {
			// Torn write: half the buffer lands before the failure, as
			// a real partial write would leave it. The caller's retry
			// rewrites the whole buffer at the same offset.
			n, werr := f.inner.WriteAt(p[:len(p)/2], off)
			if werr != nil {
				return n, werr
			}
			return n, err
		}
		return 0, err
	}
	return f.inner.WriteAt(p, off)
}

func (f *faultFile) Sync() error {
	if err, _ := f.fs.check(OpSync, f.path); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	if err, _ := f.fs.check(OpTruncate, f.path); err != nil {
		return err
	}
	return f.inner.Truncate(size)
}

func (f *faultFile) Size() (int64, error) {
	if err, _ := f.fs.check(OpSize, f.path); err != nil {
		return 0, err
	}
	return f.inner.Size()
}

func (f *faultFile) Close() error {
	if err, _ := f.fs.check(OpClose, f.path); err != nil {
		return err
	}
	return f.inner.Close()
}

var _ FS = (*FaultFS)(nil)
