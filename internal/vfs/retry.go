package vfs

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrRetryExhausted marks an operation that kept failing transiently
// until the retry budget ran out. The chain also carries the last
// underlying error (and its *OpError), so IsStorageErr still holds.
var ErrRetryExhausted = errors.New("vfs: retry budget exhausted")

// RetryPolicy bounds how the storage stack retries transient failures:
// up to MaxRetries re-attempts with exponential backoff from BaseDelay
// capped at MaxDelay. Fatal errors (see Transient) never retry.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the first failure.
	// Zero means DefaultRetryPolicy's budget when the policy is the
	// zero value; set Disabled to retry nothing.
	MaxRetries int
	// BaseDelay is the first backoff; it doubles per retry.
	BaseDelay time.Duration
	// MaxDelay caps the backoff.
	MaxDelay time.Duration
	// Disabled turns retrying off entirely (a zero policy otherwise
	// means DefaultRetryPolicy).
	Disabled bool
	// Sleep replaces time.Sleep; tests and deterministic benchmarks
	// set it to a no-op so backoff costs no wall clock.
	Sleep func(time.Duration)
}

// DefaultRetryPolicy is the budget pager and WAL use when the caller
// passes a zero policy: 4 retries backing off 500µs → 4ms, under 8ms
// of worst-case sleep per operation.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 4, BaseDelay: 500 * time.Microsecond, MaxDelay: 4 * time.Millisecond}
}

// orDefault resolves the zero value to DefaultRetryPolicy and fills
// missing fields.
func (p RetryPolicy) orDefault() RetryPolicy {
	if p.Disabled {
		return RetryPolicy{Disabled: true, Sleep: p.Sleep}
	}
	d := DefaultRetryPolicy()
	if p.MaxRetries == 0 {
		p.MaxRetries = d.MaxRetries
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = d.MaxDelay
	}
	return p
}

// RetryCounters counts what a retry loop absorbed. One instance lives
// in the pager and one in the WAL; DB.Resilience aggregates them.
type RetryCounters struct {
	retried   atomic.Uint64
	exhausted atomic.Uint64
}

// Retried counts transient failures that were retried (each backoff
// sleep counts one, whether or not the retry then succeeded).
func (c *RetryCounters) Retried() uint64 { return c.retried.Load() }

// Exhausted counts operations that failed transiently past the whole
// budget and surfaced ErrRetryExhausted.
func (c *RetryCounters) Exhausted() uint64 { return c.exhausted.Load() }

// Do runs op, retrying transient failures with exponential backoff
// until it succeeds, fails fatally, or the budget is spent (then the
// returned error chains ErrRetryExhausted AND the last failure). c may
// be nil.
func (p RetryPolicy) Do(c *RetryCounters, op func() error) error {
	p = p.orDefault()
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	delay := p.BaseDelay
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil || !Transient(err) {
			return err
		}
		if p.Disabled || attempt >= p.MaxRetries {
			if c != nil {
				c.exhausted.Add(1)
			}
			return fmt.Errorf("%w (%d attempts): %w", ErrRetryExhausted, attempt+1, err)
		}
		if c != nil {
			c.retried.Add(1)
		}
		sleep(delay)
		if delay *= 2; delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
}
