package cpqa

// This file implements the auxiliary operations Bias and Fill of §4.1.
// Bias improves the credit balance ∆(Q) = |C| − Σ|Di| − k by at least one
// when the queue holds any records, resolving lazy attrition
// incrementally; Fill restores invariant I.8 (F holds at least b elements
// unless the whole queue is small).

// Accessors returning (value, ok) for the boundary elements used by the
// case conditions. They do not charge I/Os; callers touch the records
// they actually restructure.

func maxLastC(q *Queue) (Elem, bool) {
	if q.c.empty() {
		return Elem{}, false
	}
	return q.c.last().max(), true
}

func minFirstB(q *Queue) (Elem, bool) {
	if q.bq.empty() {
		return Elem{}, false
	}
	return q.bq.first().min(), true
}

func minFirstD1(q *Queue) (Elem, bool) {
	if len(q.d) == 0 || q.d[0].empty() {
		return Elem{}, false
	}
	return q.d[0].first().min(), true
}

func minL(q *Queue) (Elem, bool) {
	if len(q.l) == 0 {
		return Elem{}, false
	}
	return q.l[0], true
}

// fill restores I.8: if |F| < b while the queue holds at least b
// elements, elements are promoted from the head of C (running Bias to
// replenish C from B, the dirty deques, or L as needed). Each step is
// O(1) I/Os and the loop runs O(1) times per call site.
func (q *Queue) fill() *Queue {
	b := q.b
	cur := q
	for guard := 0; len(cur.f) < b && cur.size > len(cur.f); guard++ {
		if guard > 64 {
			panic("cpqa: fill failed to converge")
		}
		if !cur.c.empty() {
			r := cur.c.first()
			cur.touch(r)
			nq := cur.derive()
			if len(r.buf) >= 2*b {
				nq.f = mergeSorted(cur.f, r.buf[:b])
				nr := nq.newRecord(append([]Elem(nil), r.buf[b:]...), nil)
				nq.c = cur.c.rest().pushFront(nr)
				cur = nq.finish()
			} else {
				nq.f = mergeSorted(cur.f, r.buf)
				nq.c = cur.c.rest()
				cur = nq.finish()
				cur = bias(cur)
			}
			continue
		}
		// C is empty: Bias promotes content toward C / F.
		next := bias(cur)
		if next == cur {
			// No records anywhere: remaining elements are in L.
			nq := cur.derive()
			take := b
			if take > len(cur.l) {
				take = len(cur.l)
			}
			nq.f = mergeSorted(cur.f, cur.l[:take])
			nq.l = cur.l[take:]
			cur = nq.finish()
			continue
		}
		cur = next
	}
	return cur
}

// bias is the paper's Bias(Q). It returns a new queue version with
// ∆ improved by at least 1 whenever Q contains records and lazy work
// remains; it returns q itself when there is nothing to do.
func bias(q *Queue) *Queue {
	b := q.b

	// ---- Case 1: |B(Q)| > 0 ----
	if !q.bq.empty() {
		if q.k() == 0 {
			// 1.1: attrition of B's head by min(L), if any.
			r1 := q.bq.first()
			q.touch(r1)
			eL, haveL := minL(q)
			var l1p []Elem
			if haveL {
				l1p = attriteSorted(r1.buf, eL)
			} else {
				l1p = r1.buf
			}
			nq := q.derive()
			if len(l1p) == len(r1.buf) {
				// Nothing attrited: move r1 to the clean deque.
				nq.bq = q.bq.rest()
				nq.c = q.c.pushBack(r1)
				return nq.finish()
			}
			// Attrition happened: the rest of B is >= max(l1) >=
			// min(L) and hence fully attrited (I.2).
			nq.bq = nil
			if len(l1p) >= b {
				nq.c = q.c.pushBack(nq.newRecord(append([]Elem(nil), l1p...), nil))
				return nq.finish()
			}
			if len(l1p)+len(q.l) <= 3*b {
				nq.l = mergeSorted(l1p, q.l)
				out := nq.finish()
				return bias(out) // r1 was discarded; recurse once
			}
			comb := mergeSorted(l1p, q.l)
			nq.c = q.c.pushBack(nq.newRecord(append([]Elem(nil), comb[:2*b]...), nil))
			nq.l = comb[2*b:]
			return nq.finish()
		}
		// 1.2: k >= 1; attrition of B's head by min(first(D1)).
		e, _ := minFirstD1(q)
		r1 := q.bq.first()
		q.touch(r1)
		l1p := attriteSorted(r1.buf, e)
		nq := q.derive()
		if len(l1p) == len(r1.buf) || len(l1p) >= b {
			nq.bq = q.bq.rest()
			if len(l1p) < len(r1.buf) {
				nq.bq = nil
				nq.c = q.c.pushBack(nq.newRecord(append([]Elem(nil), l1p...), nil))
			} else {
				nq.c = q.c.pushBack(r1)
			}
			return nq.finish()
		}
		// |l1'| < b: merge the survivors into first(D1).
		nq.bq = nil
		r2 := q.d[0].first()
		q.touch(r2)
		nd := append([]rdeq(nil), q.d...)
		if len(l1p)+len(r2.buf) <= 4*b {
			nr := nq.newRecord(mergeSorted(l1p, r2.buf), r2.child)
			nd[0] = q.d[0].rest().pushFront(nr)
			nq.d = nd
			out := nq.finish()
			return bias(out) // r1 discarded; recurse once
		}
		comb := mergeSorted(l1p, r2.buf)
		nq.c = q.c.pushBack(nq.newRecord(append([]Elem(nil), comb[:2*b]...), nil))
		nr := nq.newRecord(append([]Elem(nil), comb[2*b:]...), r2.child)
		nd[0] = q.d[0].rest().pushFront(nr)
		nq.d = nd
		// Restore I.5 if the resolution exposed a fully-attrited
		// dirty region.
		if eL, haveL := minL(nq); haveL {
			if v, ok := minFirstD1(nq); ok && eL.Key <= v.Key {
				nq.d = nil
			}
		}
		return nq.finish()
	}

	// ---- Case 2: |B(Q)| == 0 ----
	switch {
	case q.k() > 1:
		return biasManyDirty(q)
	case q.k() == 1:
		return biasOneDirty(q)
	default: // k == 0
		// 2.3: with no records at all, promote L into F.
		if q.c.empty() && len(q.l) > 0 && len(q.f) <= 2*b {
			nq := q.derive()
			take := b
			if take > len(q.l) {
				take = len(q.l)
			}
			nq.f = mergeSorted(q.f, q.l[:take])
			nq.l = q.l[take:]
			return nq.finish()
		}
		return q
	}
}

// biasManyDirty is Bias case 2.1 (k > 1): merge or discard work at the
// boundary of the last two dirty deques.
func biasManyDirty(q *Queue) *Queue {
	b := q.b
	kq := q.k()
	dk := q.d[kq-1]
	dk1 := q.d[kq-2]

	// If min(L) <= min(first(Dk)), the whole of Dk is attrited.
	if eL, haveL := minL(q); haveL && !dk.empty() && eL.Key <= dk.first().min().Key {
		nq := q.derive()
		nq.d = append([]rdeq(nil), q.d[:kq-1]...)
		return nq.finish()
	}
	e := dk.first().min()
	last1 := dk1.last()
	q.touch(last1)

	if e.Key <= last1.min().Key {
		// last(Dk-1) fully attrited (child included, I.1).
		nq := q.derive()
		nd := append([]rdeq(nil), q.d...)
		if len(dk1) == 1 {
			// Deque empties: concatenate implicitly by dropping it.
			nd = append(nd[:kq-2], nd[kq-1])
		} else {
			nd[kq-2] = dk1.front()
		}
		nq.d = nd
		return nq.finish()
	}
	if e.Key <= last1.max().Key {
		// Partial attrition of last(Dk-1)'s buffer; its child is
		// fully attrited (elements exceed max(buf) >= e).
		l1p := attriteSorted(last1.buf, e)
		r2 := dk.first()
		q.touch(r2)
		nq := q.derive()
		nd := append([]rdeq(nil), q.d[:kq-2]...)
		if len(l1p)+len(r2.buf) <= 4*b {
			nr := nq.newRecord(mergeSorted(l1p, r2.buf), r2.child)
			merged := dk1.front().concat(dk.rest().pushFront(nr))
			nd = append(nd, merged)
		} else {
			comb := mergeSorted(l1p, r2.buf)
			half := len(comb) / 2
			nr1 := nq.newRecord(append([]Elem(nil), comb[:half]...), nil)
			nr2 := nq.newRecord(append([]Elem(nil), comb[half:]...), r2.child)
			merged := dk1.front().pushBack(nr1).concat(dk.rest().pushFront(nr2))
			nd = append(nd, merged)
		}
		nq.d = nd
		return nq.finish()
	}
	// max(last(Dk-1)) < e: plain concatenation of the two deques.
	nq := q.derive()
	nd := append([]rdeq(nil), q.d[:kq-2]...)
	nd = append(nd, dk1.concat(dk))
	nq.d = nd
	return nq.finish()
}

// biasOneDirty is Bias case 2.2 (k == 1, B empty): promote the head of
// D1 into C, merging its child queue into Q when necessary (Figure 9).
func biasOneDirty(q *Queue) *Queue {
	b := q.b
	d1 := q.d[0]
	r := d1.first()
	q.touch(r)

	// If min(L) <= min(first(rest(D1))), everything dirty beyond r is
	// attrited.
	if eL, haveL := minL(q); haveL && len(d1) > 1 && eL.Key <= d1.rest().first().min().Key {
		nq := q.derive()
		nq.d = []rdeq{{r}}
		return nq.finish()
	}
	if eL, haveL := minL(q); haveL && eL.Key <= r.max().Key {
		// r is the only survivor and even it is partially attrited;
		// its child and the other dirty records die.
		lp := attriteSorted(r.buf, eL)
		nq := q.derive()
		nq.d = nil
		if len(lp)+len(q.l) <= 3*b {
			nq.l = mergeSorted(lp, q.l)
			return nq.finish()
		}
		comb := mergeSorted(lp, q.l)
		nq.c = q.c.pushBack(nq.newRecord(append([]Elem(nil), comb[:2*b]...), nil))
		nq.l = comb[2*b:]
		return nq.finish()
	}

	// max(buf) < min(L): promote r's buffer to the clean deque.
	nq := q.derive()
	nq.c = q.c.pushBack(nq.newRecord(append([]Elem(nil), r.buf...), nil))
	rest := d1.rest()
	if r.child == nil {
		if rest.empty() {
			nq.d = nil
		} else {
			nq.d = []rdeq{rest}
		}
		return nq.finish()
	}

	// r is not simple: merge Q and its child Q' (Figure 9). The
	// attrition bound for Q' is the smallest element that follows it
	// in queue order.
	qp := r.child
	e := Elem{Key: int64(1) << 62}
	haveE := false
	if !rest.empty() {
		e, haveE = rest.first().min(), true
	}
	if eL, haveL := minL(q); haveL && (!haveE || eL.Key < e.Key) {
		e, haveE = eL, true
	}

	var restDeq []rdeq
	if !rest.empty() {
		restDeq = []rdeq{rest}
	}

	if haveE {
		if m, ok := qp.minValue(); ok && e.Key <= m.Key {
			// Q' is fully attrited.
			nq.d = restDeq
			return nq.finish()
		}
		if v, ok := maxLastC(qp); !ok || e.Key <= v.Key {
			// e cuts inside C(Q') (or Q' has only C): keep C(Q')
			// as the new buffer deque for lazy attrition; the rest
			// of Q' dies.
			nq.bq = qp.c
			nq.d = restDeq
			return nq.finish()
		}
		if v, ok := minFirstD1(qp); !ok || e.Key <= v.Key {
			// C(Q') survives whole; Q''s dirty deques die; B(Q')
			// survives if its head is below e.
			nq.c = nq.c.concat(qp.c)
			if v2, ok2 := minFirstB(qp); ok2 && v2.Key < e.Key {
				nq.bq = qp.bq
			}
			nq.d = restDeq
			return nq.finish()
		}
	}
	// min(first(D1(Q'))) < e (or nothing follows Q'): adopt Q'
	// wholesale: its C extends C(Q), its B becomes B(Q), its dirty
	// deques precede the remainder of D1(Q).
	nq.c = nq.c.concat(qp.c)
	nq.bq = qp.bq
	nd := append([]rdeq(nil), qp.d...)
	nd = append(nd, restDeq...)
	if len(nd) == 0 {
		nq.d = nil
	} else {
		nq.d = nd
	}
	return nq.finish()
}
