package cpqa

import (
	"math/rand"
	"testing"

	"repro/internal/emio"
	"repro/internal/pqa"
)

func TestStressSweep(t *testing.T) {
	for _, b := range []int{1, 2, 3, 5, 8, 16} {
		for seed := int64(0); seed < 30; seed++ {
			d := emio.NewDisk(emio.Config{B: 16, M: 1 << 20})
			rng := rand.New(rand.NewSource(seed*1000 + int64(b)))
			q := New(d, b)
			model := pqa.New()
			for op := 0; op < 800; op++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4:
					k := rng.Int63n(1 << 14)
					q = q.InsertAndAttrite(Elem{Key: k})
					model.InsertAndAttrite(Elem{Key: k})
				case 5, 6, 7:
					e1, q2, ok1 := q.DeleteMin()
					e2, ok2 := model.DeleteMin()
					if ok1 != ok2 || (ok1 && e1 != e2) {
						t.Fatalf("b=%d seed=%d op=%d: DeleteMin %v,%t vs %v,%t", b, seed, op, e1, ok1, e2, ok2)
					}
					q = q2
				case 8, 9:
					n := rng.Intn(50)
					q2 := New(d, b)
					m2 := pqa.New()
					for i := 0; i < n; i++ {
						k := rng.Int63n(1 << 14)
						q2 = q2.InsertAndAttrite(Elem{Key: k})
						m2.InsertAndAttrite(Elem{Key: k})
					}
					q2 = q2.BiasUntilReady()
					q = CatenateAndAttrite(q, q2)
					model.CatenateAndAttrite(m2)
				}
				if msg := q.CheckInvariants(); msg != "" {
					t.Fatalf("b=%d seed=%d op=%d: invariant: %s", b, seed, op, msg)
				}
				got := q.Contents()
				want := model.Items()
				if len(got) != len(want) {
					t.Fatalf("b=%d seed=%d op=%d: len %d vs %d", b, seed, op, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("b=%d seed=%d op=%d: elem %d", b, seed, op, i)
					}
				}
			}
		}
	}
}
