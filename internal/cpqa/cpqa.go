// Package cpqa implements the I/O-efficient catenable priority queue with
// attrition (I/O-CPQA) of §4.1: FindMin, DeleteMin, InsertAndAttrite and
// CatenateAndAttrite, all in O(1) worst-case I/Os and O(1/b) amortized
// I/Os when the critical records are memory resident, with parameter
// 1 ≤ b ≤ B.
//
// A queue consists of a first buffer F ([b,4b] sorted elements, fewer
// only when the whole queue is small), a last buffer L ([0,4b]), and
// deques of records: the clean deque C, the buffer deque B, and dirty
// deques D1..Dk. A record is a sorted buffer of [b,4b] elements plus an
// optional pointer to a child I/O-CPQA (invariant I.6: records in C and B
// are simple, i.e. child-less). Attrition is lazy: dirty deques and L may
// store already-attrited elements, resolved incrementally by Bias. The
// structure maintains invariants I.1–I.9 of the paper; see
// (*Queue).CheckInvariants.
//
// Persistence: the paper makes the ephemeral structure confluently
// persistent by replacing its deques with purely functional real-time
// catenable deques (Kaplan–Tarjan), at O(1) worst-case overhead. This
// implementation achieves the same interface more directly by making
// every queue and record immutable: operations return new queues that
// share records with their inputs. Each operation still touches O(1)
// records, so the I/O bounds are unchanged; the dynamic structure of §4.2
// can therefore read internal-node queues without destroying them.
//
// Elements are (Key, Aux) pairs ordered by Key; attrition removes
// elements with Key >= the newly arrived Key.
package cpqa

import (
	"repro/internal/emio"
	"repro/internal/pqa"
)

// Elem is re-exported from pqa so the two structures share a vocabulary.
type Elem = pqa.Elem

// record is an immutable sorted buffer with an optional child queue.
type record struct {
	buf   []Elem // sorted ascending by Key, len in [1, 4b]
	child *Queue // nil for a simple record
	total int    // len(buf) + child.size: elements stored beneath

	block emio.BlockID
	words int
}

func (r *record) min() Elem { return r.buf[0] }
func (r *record) max() Elem { return r.buf[len(r.buf)-1] }

// rdeq is an immutable deque of records. Operations copy the spine; the
// spine of a deque with m records occupies O(m/B) blocks on a real
// machine and every operation below touches only its ends, so charging
// record accesses (not spine traversals) matches the paper's accounting
// with catenable deques as black boxes.
type rdeq []*record

func (q rdeq) empty() bool    { return len(q) == 0 }
func (q rdeq) first() *record { return q[0] }
func (q rdeq) last() *record  { return q[len(q)-1] }
func (q rdeq) rest() rdeq     { return q[1:] }
func (q rdeq) front() rdeq    { return q[:len(q)-1] }
func (q rdeq) pushFront(r *record) rdeq {
	out := make(rdeq, 0, len(q)+1)
	out = append(out, r)
	return append(out, q...)
}
func (q rdeq) pushBack(r *record) rdeq {
	out := make(rdeq, 0, len(q)+1)
	out = append(out, q...)
	return append(out, r)
}
func (q rdeq) concat(o rdeq) rdeq {
	out := make(rdeq, 0, len(q)+len(o))
	out = append(out, q...)
	return append(out, o...)
}
func (q rdeq) total() int {
	t := 0
	for _, r := range q {
		t += r.total
	}
	return t
}

// Queue is an immutable I/O-CPQA. The zero value is not usable; obtain
// queues from New, Singleton, or the operations.
type Queue struct {
	disk *emio.Disk
	b    int

	f, l  []Elem // first and last buffers, sorted ascending
	c, bq rdeq   // clean and buffer deques (simple records only)
	d     []rdeq // dirty deques D1..Dk

	size int // elements stored (attrited-but-present included)

	fBlock, lBlock emio.BlockID
	fWords, lWords int

	// origF/origL are the parent version's buffers, used by finish to
	// detect structurally shared (hence not rewritten) buffers.
	origF, origL []Elem
}

// New returns an empty queue bound to a disk with buffer parameter b
// (1 <= b <= B is the intended range; larger b means fewer, bigger
// records).
func New(d *emio.Disk, b int) *Queue {
	if b < 1 {
		panic("cpqa: b must be >= 1")
	}
	return &Queue{disk: d, b: b}
}

// Singleton returns the one-element queue used by InsertAndAttrite.
func Singleton(d *emio.Disk, b int, e Elem) *Queue {
	q := &Queue{disk: d, b: b, f: []Elem{e}, size: 1}
	q.chargeBuffers()
	return q
}

// derive creates a mutable scratch copy of q used while assembling the
// next version; call finish() on it before returning it to a caller.
// The copy remembers the parent's F/L slices so finish can recognise
// unchanged buffers and share their spans (a functional structure does
// not rewrite what it structurally shares).
func (q *Queue) derive() *Queue {
	nq := *q
	nq.origF, nq.origL = q.f, q.l
	return &nq
}

// sameSlice reports whether two slices are the identical view of the
// same backing array (or a suffix of it, which a functional deque pop
// produces without copying).
func sameSlice(a, b []Elem) bool {
	if len(a) == 0 {
		return len(b) == 0
	}
	if len(b) < len(a) {
		return false
	}
	tail := b[len(b)-len(a):]
	return &a[0] == &tail[0]
}

// finish normalises and seals a newly assembled queue version: it drops
// empty dirty deques, applies the paper's recurring fix-up "if this
// causes min(L(Q)) <= min(first(D1(Q))), we discard all dirty queues"
// (restoring I.5; the dirty deques are then fully attrited), recomputes
// the cached size, and charges the buffer writes.
func (q *Queue) finish() *Queue {
	if len(q.d) > 0 {
		kept := q.d[:0:0]
		for _, dq := range q.d {
			if !dq.empty() {
				kept = append(kept, dq)
			}
		}
		q.d = kept
		if len(q.d) == 0 {
			q.d = nil
		}
	}
	if len(q.l) > 0 && len(q.d) > 0 && !q.d[0].empty() &&
		q.l[0].Key <= q.d[0].first().min().Key {
		q.d = nil
	}
	// Symmetric fix-up for the buffer deque: if min(first(B)) is at
	// least the head of something that arrived after B (D1 or L), the
	// whole of B is attrited (I.2 makes B increasing), restoring I.3.
	// Head comparisons touch only critical records, so this is free.
	if !q.bq.empty() {
		cut := int64(1)<<62 - 1
		have := false
		if len(q.d) > 0 && !q.d[0].empty() {
			if v := q.d[0].first().min().Key; v < cut {
				cut, have = v, true
			}
		}
		if len(q.l) > 0 && q.l[0].Key < cut {
			cut, have = q.l[0].Key, true
		}
		if have && q.bq.first().min().Key >= cut {
			q.bq = nil
		}
	}
	q.size = len(q.f) + len(q.l) + q.c.total() + q.bq.total()
	for _, dq := range q.d {
		q.size += dq.total()
	}
	q.chargeBuffers()
	return q
}

// chargeBuffers accounts the F/L buffers of this queue version: on a
// real machine they are the (re)written critical blocks of the new
// version. A buffer that is the parent version's slice (or a suffix of
// it, as after a functional pop) keeps the parent's span — nothing was
// rewritten.
func (q *Queue) chargeBuffers() {
	switch {
	case len(q.f) == 0:
		q.fWords = 0
	case sameSlice(q.f, q.origF):
		// Shared with the parent version; span unchanged.
	default:
		q.fWords = len(q.f)
		q.fBlock = q.disk.AllocSpan(q.fWords)
		q.disk.WriteSpan(q.fBlock, q.fWords)
	}
	switch {
	case len(q.l) == 0:
		q.lWords = 0
	case sameSlice(q.l, q.origL):
	default:
		q.lWords = len(q.l)
		q.lBlock = q.disk.AllocSpan(q.lWords)
		q.disk.WriteSpan(q.lBlock, q.lWords)
	}
	q.origF, q.origL = nil, nil
}

// newRecord materialises an immutable record: one allocation plus a
// streaming write of its buffer.
func (q *Queue) newRecord(buf []Elem, child *Queue) *record {
	if len(buf) == 0 {
		panic("cpqa: empty record")
	}
	r := &record{buf: buf, child: child, total: len(buf)}
	if child != nil {
		r.total += child.size
	}
	r.words = len(buf)
	r.block = q.disk.AllocSpan(r.words)
	q.disk.WriteSpan(r.block, r.words)
	return r
}

// touch charges the read of a record's buffer.
func (q *Queue) touch(r *record) {
	q.disk.ReadSpan(r.block, r.words)
}

// Len returns the number of stored elements |Q| (including
// lazily-attrited ones, matching the paper's definition of size).
func (q *Queue) Len() int { return q.size }

// Empty reports whether the queue holds no elements at all.
func (q *Queue) Empty() bool { return q.size == 0 }

// small reports |Q| < b: the queue consists only of F (invariant I.8).
func (q *Queue) small() bool { return q.size < q.b }

// k returns the number of dirty deques.
func (q *Queue) k() int { return len(q.d) }

// State returns ∆(Q) = |C| − Σ|Di| − k, the credit balance of invariant
// I.7.
func (q *Queue) State() int {
	s := len(q.c)
	for _, dq := range q.d {
		s -= len(dq) + 1
	}
	return s
}

// FindMin returns the minimum element (min(F), by I.2–I.5).
func (q *Queue) FindMin() (Elem, bool) {
	if q.size == 0 {
		return Elem{}, false
	}
	if len(q.f) == 0 {
		panic("cpqa: non-empty queue with empty F (I.8 violated)")
	}
	q.disk.ReadSpan(q.fBlock, q.fWords)
	return q.f[0], true
}

// DeleteMin removes the minimum element, returning it and the new queue.
func (q *Queue) DeleteMin() (Elem, *Queue, bool) {
	if q.size == 0 {
		return Elem{}, q, false
	}
	q.disk.ReadSpan(q.fBlock, q.fWords)
	e := q.f[0]
	nq := q.derive()
	nq.f = q.f[1:]
	nq = nq.finish()
	nq = nq.fill()
	return e, nq, true
}

// InsertAndAttrite adds e and removes every element >= e, returning the
// new queue. It is CatenateAndAttrite with a singleton right operand
// (footnote 8 of the paper).
func (q *Queue) InsertAndAttrite(e Elem) *Queue {
	return CatenateAndAttrite(q, Singleton(q.disk, q.b, e))
}

// minValue returns min(Q) without charging I/Os (used internally where
// the relevant record was just touched).
func (q *Queue) minValue() (Elem, bool) {
	if len(q.f) > 0 {
		return q.f[0], true
	}
	// Child queues have F = L = ∅ (I.9); their minimum is the head of
	// the queue order restricted to non-attrited elements, which by
	// I.1–I.5 is the smallest of the deque heads and L.
	best, ok := Elem{}, false
	consider := func(e Elem) {
		if !ok || e.Key < best.Key {
			best, ok = e, true
		}
	}
	if !q.c.empty() {
		consider(q.c.first().min())
	}
	if !q.bq.empty() {
		consider(q.bq.first().min())
	}
	if len(q.d) > 0 && !q.d[0].empty() {
		consider(q.d[0].first().min())
	}
	if len(q.l) > 0 {
		consider(q.l[0])
	}
	return best, ok
}

// attriteSorted returns the prefix of the sorted slice with Key < e.Key.
func attriteSorted(s []Elem, e Elem) []Elem {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid].Key < e.Key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return s[:lo]
}

// mergeSorted concatenates two sorted slices where every element of a is
// smaller than every element of bs.
func mergeSorted(a, bs []Elem) []Elem {
	out := make([]Elem, 0, len(a)+len(bs))
	out = append(out, a...)
	return append(out, bs...)
}
