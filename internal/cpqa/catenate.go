package cpqa

import "repro/internal/emio"

// This file transcribes the paper's §4.1 operation CatenateAndAttrite
// case by case. Cases are evaluated in the paper's order; comments quote
// the governing conditions. All operations construct new queue versions;
// inputs are never mutated (see the package comment on persistence).

// CatenateAndAttrite returns the queue {e ∈ Q1 | e < min(Q2)} ∪ Q2.
// O(1) worst-case I/Os.
func CatenateAndAttrite(q1, q2 *Queue) *Queue {
	if q2 == nil || q2.Empty() {
		return q1
	}
	if q1 == nil || q1.Empty() {
		return q2
	}
	if q1.b != q2.b {
		panic("cpqa: catenating queues with different b")
	}
	e, _ := q2.FindMin()
	b := q1.b

	// ---- |Q1| < b: Q1 consists only of F(Q1). ----
	if q1.small() {
		f1 := attriteSorted(q1.f, e)
		nq := q2.derive()
		nq.f = mergeSorted(f1, q2.f)
		if len(nq.f) > 4*b {
			// Spill the last (largest) 2b elements as a new first
			// clean record; they precede everything in C (I.3).
			cut := len(nq.f) - 2*b
			rec := nq.newRecord(append([]Elem(nil), nq.f[cut:]...), nil)
			nq.f = nq.f[:cut]
			nq.c = nq.c.pushFront(rec)
		}
		return nq.finish()
	}

	// In every remaining case Q1 is large. If e <= min(F(Q1)), the
	// whole of Q1 is attrited (everything in Q1 is >= min(F), by
	// I.1–I.5); this is the paper's sub-case 1 of both analyses, hoisted
	// because it does not depend on the last record existing.
	if e.Key <= q1.f[0].Key {
		return q2
	}
	// Eagerly drop the attrited tail of F(Q1). F is a critical
	// (memory-resident) buffer, so the trim is free; keeping attrited
	// elements in F would break min(Q) = min(F) after DeleteMins.
	if q1.f[len(q1.f)-1].Key >= e.Key {
		t := q1.derive()
		t.f = attriteSorted(q1.f, e)
		q1 = t.finish()
	}

	// If e cuts strictly inside the final record's buffer, trim that
	// buffer eagerly (the last record is critical, so the trim is one
	// O(1) touch); its child — entirely above the buffer by I.1 — is
	// attrited outright. Records earlier in queue order are below
	// min(r) < e by I.2/I.3 and need no trimming; B's lazy tail is
	// handled by Bias as usual.
	if r, _, ok := q1.lastRecord(); ok && r.min().Key < e.Key && e.Key <= r.max().Key {
		q1.touch(r)
		nr := q1.newRecord(attriteSorted(r.buf, e), nil)
		q1 = replaceLastRecord(q1, nr).finish()
	}

	// ---- |Q2| < b: Q2 consists only of F(Q2). ----
	if q2.small() {
		return catenateSmallRight(q1, q2, e).fill()
	}

	// ---- both |Q1| >= b and |Q2| >= b ----
	return catenateLarge(q1, q2, e).fill()
}

// lastRecord returns the final record in queue order (last of Dk, else
// last of B, else last of C) along with a removal closure producing the
// queue without it; ok is false when Q has no records.
func (q *Queue) lastRecord() (r *record, remove func() *Queue, ok bool) {
	if kq := q.k(); kq > 0 {
		dq := q.d[kq-1]
		r = dq.last()
		return r, func() *Queue {
			nq := q.derive()
			nd := append([]rdeq(nil), q.d...)
			if len(dq) == 1 {
				nd = nd[:kq-1]
			} else {
				nd[kq-1] = dq.front()
			}
			nq.d = nd
			return nq
		}, true
	}
	if !q.bq.empty() {
		r = q.bq.last()
		return r, func() *Queue {
			nq := q.derive()
			nq.bq = q.bq.front()
			return nq
		}, true
	}
	if !q.c.empty() {
		r = q.c.last()
		return r, func() *Queue {
			nq := q.derive()
			nq.c = q.c.front()
			return nq
		}, true
	}
	return nil, nil, false
}

// catenateSmallRight handles |Q1| >= b, |Q2| < b. Q2 = F(Q2) only.
func catenateSmallRight(q1, q2 *Queue, e Elem) *Queue {
	b := q1.b
	r, removeR, haveR := q1.lastRecord()
	if haveR {
		q1.touch(r)
	}

	// Case 1: e <= min(r) — the last record is fully attrited
	// (including its child, whose elements exceed max(l) by I.1).
	if haveR && e.Key <= r.min().Key {
		q1r := removeR()

		// (Sub-case 1, e <= min(F(Q1)), was handled by the caller.)
		// 2) e <= max(last(C(Q1))): B, D and L are fully attrited
		// (I.3, I.5); C survives partially, demoted to the buffer
		// deque for lazy attrition.
		if v, ok := maxLastC(q1r); ok && e.Key <= v.Key {
			nq := q1r.derive()
			fRec := nq.newRecord(append([]Elem(nil), q1r.f...), nil)
			nq.bq = q1r.c.pushFront(fRec)
			nq.f = nil
			nq.c = nil
			nq.d = nil
			nq.l = append([]Elem(nil), q2.f...)
			out := nq.finish()
			out = bias(out)
			return out.fill()
		}
		// 3) e <= min(first(B)) or e <= min(first(D1)): dirty deques
		// and L are fully attrited; B is too when the first condition
		// holds (I.3 orders B before D1).
		bOK := false
		if v, ok := minFirstB(q1r); ok && e.Key <= v.Key {
			bOK = true
		}
		dOK := false
		if v, ok := minFirstD1(q1r); ok && e.Key <= v.Key {
			dOK = true
		}
		if bOK || dOK {
			nq := q1r.derive()
			nq.d = nil
			nq.l = append([]Elem(nil), q2.f...)
			if bOK {
				nq.bq = nil
			}
			return nq.finish()
		}
		// 4) Partial attrition of L only.
		lPrime := attriteSorted(q1r.l, e)
		combined := mergeSorted(lPrime, q2.f)
		nq := q1r.derive()
		if len(combined) <= 4*b {
			nq.l = combined
			return nq.finish()
		}
		rec := nq.newRecord(append([]Elem(nil), combined[:4*b]...), nil)
		nq.d = append(append([]rdeq(nil), q1r.d...), rdeq{rec})
		nq.l = combined[4*b:]
		out := nq.finish()
		out = bias(out)
		out = bias(out)
		return out
	}

	// Case 2: e <= min(L(Q1)) (vacuously true when L is empty): L is
	// fully attrited and replaced by F(Q2).
	if len(q1.l) == 0 || e.Key <= q1.l[0].Key {
		nq := q1.derive()
		nq.l = append([]Elem(nil), q2.f...)
		return nq.finish()
	}

	// Case 3: min(L(Q1)) < e. The last record r may itself hold
	// elements already attrited by L; l′ is its surviving prefix.
	minL := q1.l[0]
	lPrime := attriteSorted(q1.l, e) // L under attrition by e
	combined := mergeSorted(lPrime, q2.f)
	if len(combined) <= 4*b {
		nq := q1.derive()
		nq.l = combined
		return nq.finish()
	}
	// |L′|+|F2| > 4b: repack.
	nq := q1
	addBias := false
	if haveR {
		lp := attriteSorted(r.buf, minL)
		if len(lp) < len(r.buf) {
			// Refill r up to 4b with the smallest combined
			// elements; r's child (all > max(buf) >= min(L)) is
			// attrited.
			take := 4*b - len(lp)
			if take > len(combined) {
				take = len(combined)
			}
			newBuf := mergeSorted(lp, combined[:take])
			combined = combined[take:]
			nq = replaceLastRecord(q1, nq.newRecord(newBuf, nil))
		}
	}
	out := nq.derive()
	if len(combined) > 3*b {
		rec := out.newRecord(append([]Elem(nil), combined[:3*b]...), nil)
		nd := append([]rdeq(nil), out.d...)
		if len(nd) == 0 {
			nd = []rdeq{{rec}}
		} else {
			nd[len(nd)-1] = nd[len(nd)-1].pushBack(rec)
		}
		out.d = nd
		out.l = combined[3*b:]
		addBias = true
	} else {
		out.l = combined
	}
	res := out.finish()
	if addBias {
		res = bias(res)
	}
	return res
}

// replaceLastRecord returns q with its final record swapped for nr.
func replaceLastRecord(q *Queue, nr *record) *Queue {
	nq := q.derive()
	if kq := q.k(); kq > 0 {
		nd := append([]rdeq(nil), q.d...)
		nd[kq-1] = nd[kq-1].front().pushBack(nr)
		nq.d = nd
	} else if !q.bq.empty() {
		nq.bq = q.bq.front().pushBack(nr)
	} else if !q.c.empty() {
		nq.c = q.c.front().pushBack(nr)
	} else {
		panic("cpqa: replaceLastRecord on record-less queue")
	}
	return nq
}

// catenateLarge handles |Q1| >= b and |Q2| >= b. Any I/Os here are paid
// for amortization-wise by the disappearance of one large queue.
func catenateLarge(q1, q2 *Queue, e Elem) *Queue {
	b := q1.b

	// (Case 1, e <= min(F(Q1)), was handled by the caller.)
	// 2) e <= max(last(C(Q1))): C1 survives (partially, lazily); F1 is
	// demoted into it; everything later in Q1 is attrited (I.3, I.5).
	// Q2 hangs off a single dirty record whose buffer is F(Q2).
	if v, ok := maxLastC(q1); ok && e.Key <= v.Key {
		nq := q1.derive()
		fRec := nq.newRecord(append([]Elem(nil), q1.f...), nil)
		newB := q1.c.pushFront(fRec)
		dRec, lTail := q2.detachHead()
		nq.f = nil
		nq.c = nil
		nq.bq = newB
		nq.d = []rdeq{{dRec}}
		nq.l = lTail
		out := nq.finish()
		out = bias(out)
		out = bias(out)
		return out.fill()
	}

	// 3) e <= min(first(B(Q1))) or e <= min(first(D1(Q1))): dirty
	// deques and L of Q1 are attrited; B survives only in the second
	// case.
	bOK := false
	if v, ok := minFirstB(q1); ok && e.Key <= v.Key {
		bOK = true
	}
	dOK := false
	if v, ok := minFirstD1(q1); ok && e.Key <= v.Key {
		dOK = true
	}
	if bOK || dOK {
		nq := q1.derive()
		dRec, lTail := q2.detachHead()
		nq.d = []rdeq{{dRec}}
		nq.l = lTail
		if bOK {
			nq.bq = nil
		}
		out := nq.finish()
		out = bias(out)
		out = bias(out)
		return out
	}

	// 4) Otherwise only L(Q1) is (partially) attrited. L′+F2 become
	// the leading record(s) of Q2's clean deque; the first of them is
	// pulled out as a new last dirty deque of the result, pointing at
	// the rest of Q2.
	lPrime := attriteSorted(q1.l, e)
	combined := mergeSorted(lPrime, q2.f)
	var headBuf []Elem
	var restC rdeq = q2.c
	if len(combined) <= 4*b {
		headBuf = combined
	} else {
		half := len(combined) / 2
		headBuf = combined[:half]
		nqTmp := q2 // allocation context only
		second := nqTmp.newRecord(append([]Elem(nil), combined[half:]...), nil)
		restC = q2.c.pushFront(second)
	}
	child := childQueue(q2.disk, b, restC, q2.bq, q2.d)
	nq := q1.derive()
	dRec := nq.newRecord(append([]Elem(nil), headBuf...), child)
	nq.d = append(append([]rdeq(nil), q1.d...), rdeq{dRec})
	nq.l = append([]Elem(nil), q2.l...)
	out := nq.finish()
	out = bias(out)
	out = bias(out)
	return out
}

// detachHead turns Q2 (large) into the pieces used by the large-catenate
// cases 2 and 3: a dirty record whose buffer is F(Q2) and whose child is
// the rest of Q2 (C, B, D; with F and L stripped per I.9), plus Q2's L
// buffer which migrates to the result's L.
func (q2 *Queue) detachHead() (*record, []Elem) {
	child := childQueue(q2.disk, q2.b, q2.c, q2.bq, q2.d)
	rec := q2.newRecord(append([]Elem(nil), q2.f...), child)
	return rec, append([]Elem(nil), q2.l...)
}

// childQueue assembles a child I/O-CPQA (F = L = ∅, invariant I.9) from
// deque components, returning nil when it would be empty.
func childQueue(d *emio.Disk, b int, c, bq rdeq, dd []rdeq) *Queue {
	size := c.total() + bq.total()
	for _, dq := range dd {
		size += dq.total()
	}
	if size == 0 {
		return nil
	}
	q := &Queue{disk: d, b: b, c: c, bq: bq, d: dd, size: size}
	return q
}
