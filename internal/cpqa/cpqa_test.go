package cpqa

import (
	"math/rand"
	"testing"

	"repro/internal/emio"
	"repro/internal/pqa"
)

func newDisk() *emio.Disk { return emio.NewDisk(emio.Config{B: 16, M: 1 << 20}) }

func checkAgainstModel(t *testing.T, q *Queue, model *pqa.PQA, ctx string) {
	t.Helper()
	if msg := q.CheckInvariants(); msg != "" {
		t.Fatalf("%s: invariant violated: %s", ctx, msg)
	}
	got := q.Contents()
	want := model.Items()
	if len(got) != len(want) {
		t.Fatalf("%s: contents %v != model %v", ctx, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: contents[%d] = %v, model %v", ctx, i, got[i], want[i])
		}
	}
}

func TestInsertFindDeleteBasic(t *testing.T) {
	d := newDisk()
	q := New(d, 2)
	model := pqa.New()
	for _, k := range []int64{50, 30, 70, 20, 60, 10} {
		q = q.InsertAndAttrite(Elem{Key: k})
		model.InsertAndAttrite(Elem{Key: k})
		checkAgainstModel(t, q, model, "insert")
	}
	// After inserting 10 last, everything >= 10 was attrited.
	if got := q.Contents(); len(got) != 1 || got[0].Key != 10 {
		t.Fatalf("contents = %v, want [10]", got)
	}
	e, q2, ok := q.DeleteMin()
	if !ok || e.Key != 10 {
		t.Fatalf("DeleteMin = %v, %t", e, ok)
	}
	if !q2.Empty() {
		t.Fatalf("queue should be empty, has %d", q2.Len())
	}
}

func TestIncreasingInsertsKeepAll(t *testing.T) {
	d := newDisk()
	for _, b := range []int{1, 2, 4, 8, 16} {
		q := New(d, b)
		model := pqa.New()
		for i := int64(0); i < 200; i++ {
			q = q.InsertAndAttrite(Elem{Key: i, Aux: i * 7})
			model.InsertAndAttrite(Elem{Key: i, Aux: i * 7})
		}
		checkAgainstModel(t, q, model, "increasing")
		if q.Len() < 200 {
			t.Fatalf("b=%d: increasing inserts lost elements: %d", b, q.Len())
		}
		// Drain and verify order.
		prev := int64(-1)
		for {
			e, nq, ok := q.DeleteMin()
			if !ok {
				break
			}
			if e.Key <= prev {
				t.Fatalf("b=%d: drain out of order: %d after %d", b, e.Key, prev)
			}
			prev = e.Key
			q = nq
		}
		if prev != 199 {
			t.Fatalf("b=%d: drain ended at %d, want 199", b, prev)
		}
	}
}

func TestRandomOpsDifferential(t *testing.T) {
	for _, b := range []int{1, 2, 3, 4, 8} {
		for seed := int64(0); seed < 4; seed++ {
			d := newDisk()
			rng := rand.New(rand.NewSource(seed*100 + int64(b)))
			q := New(d, b)
			model := pqa.New()
			for op := 0; op < 1500; op++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4, 5:
					k := rng.Int63n(1 << 20)
					q = q.InsertAndAttrite(Elem{Key: k})
					model.InsertAndAttrite(Elem{Key: k})
				case 6, 7:
					e1, q2, ok1 := q.DeleteMin()
					e2, ok2 := model.DeleteMin()
					if ok1 != ok2 || (ok1 && e1 != e2) {
						t.Fatalf("b=%d seed=%d op=%d: DeleteMin %v,%t vs %v,%t",
							b, seed, op, e1, ok1, e2, ok2)
					}
					q = q2
				case 8:
					e1, ok1 := q.FindMin()
					e2, ok2 := model.FindMin()
					if ok1 != ok2 || (ok1 && e1 != e2) {
						t.Fatalf("b=%d seed=%d op=%d: FindMin %v,%t vs %v,%t",
							b, seed, op, e1, ok1, e2, ok2)
					}
				case 9:
					// Catenate with a fresh random queue.
					n := rng.Intn(30)
					q2 := New(d, b)
					m2 := pqa.New()
					for i := 0; i < n; i++ {
						k := rng.Int63n(1 << 20)
						q2 = q2.InsertAndAttrite(Elem{Key: k})
						m2.InsertAndAttrite(Elem{Key: k})
					}
					q = CatenateAndAttrite(q, q2)
					model.CatenateAndAttrite(m2)
				}
				if op%50 == 0 {
					checkAgainstModel(t, q, model, "random")
				}
			}
			checkAgainstModel(t, q, model, "final")
		}
	}
}

func TestCatenateManyQueues(t *testing.T) {
	for _, b := range []int{1, 2, 4} {
		for seed := int64(0); seed < 5; seed++ {
			d := newDisk()
			rng := rand.New(rand.NewSource(seed + 40))
			var qs []*Queue
			var models []*pqa.PQA
			for i := 0; i < 12; i++ {
				q := New(d, b)
				m := pqa.New()
				for j := 0; j < rng.Intn(60); j++ {
					k := rng.Int63n(1 << 16)
					q = q.InsertAndAttrite(Elem{Key: k})
					m.InsertAndAttrite(Elem{Key: k})
				}
				q = q.BiasUntilReady()
				qs = append(qs, q)
				models = append(models, m)
			}
			q := CatenateAll(qs)
			model := models[len(models)-1]
			for i := len(models) - 2; i >= 0; i-- {
				m := models[i]
				m.CatenateAndAttrite(model)
				model = m
			}
			checkAgainstModel(t, q, model, "catenate-all")
		}
	}
}

// TestPersistence: operations must not destroy their inputs (the
// confluent persistence the dynamic structure relies on).
func TestPersistence(t *testing.T) {
	d := newDisk()
	b := 2
	q1 := New(d, b)
	for i := int64(0); i < 100; i++ {
		q1 = q1.InsertAndAttrite(Elem{Key: i * 3})
	}
	before := q1.Contents()
	q2 := New(d, b)
	for i := int64(0); i < 50; i++ {
		q2 = q2.InsertAndAttrite(Elem{Key: i*2 + 1})
	}
	before2 := q2.Contents()

	merged := CatenateAndAttrite(q1, q2)
	_, _, _ = merged.DeleteMin()
	_ = merged.InsertAndAttrite(Elem{Key: -5})

	after := q1.Contents()
	after2 := q2.Contents()
	if len(after) != len(before) || len(after2) != len(before2) {
		t.Fatal("catenation mutated its inputs")
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("q1 contents changed")
		}
	}
	for i := range before2 {
		if before2[i] != after2[i] {
			t.Fatal("q2 contents changed")
		}
	}
}

// TestWorstCaseIOsPerOp: Theorem 3's O(1) worst-case I/Os, measured with
// no cache at all (M = 0) so every block touch counts.
func TestWorstCaseIOsPerOp(t *testing.T) {
	for _, b := range []int{1, 4, 16} {
		d := emio.NewDisk(emio.Config{B: 16, M: 0})
		rng := rand.New(rand.NewSource(9))
		q := New(d, b)
		blocksPerRecord := uint64(d.Config().BlocksFor(4*b) + 1)
		var worst uint64
		for op := 0; op < 3000; op++ {
			before := d.Stats().IOs()
			switch rng.Intn(4) {
			case 0, 1:
				q = q.InsertAndAttrite(Elem{Key: rng.Int63n(1 << 20)})
			case 2:
				_, q2, _ := q.DeleteMin()
				q = q2
			case 3:
				q2 := New(d, b).InsertAndAttrite(Elem{Key: rng.Int63n(1 << 20)})
				q2 = q2.InsertAndAttrite(Elem{Key: rng.Int63n(1 << 20)})
				q = CatenateAndAttrite(q, q2)
			}
			cost := d.Stats().IOs() - before
			if cost > worst {
				worst = cost
			}
		}
		// Every op touches O(1) records of O(b) words each.
		budget := 40 * blocksPerRecord
		if worst > budget {
			t.Errorf("b=%d: worst op cost %d I/Os, budget %d", b, worst, budget)
		}
	}
}

// TestAmortizedIOs: with the critical blocks cache-resident (large M),
// long op sequences cost far less than one I/O per operation.
func TestAmortizedIOs(t *testing.T) {
	d := emio.NewDisk(emio.Config{B: 64, M: 1 << 24})
	b := 64
	q := New(d, b)
	rng := rand.New(rand.NewSource(11))
	n := 20000
	d.ResetStats()
	for op := 0; op < n; op++ {
		if rng.Intn(3) == 0 {
			_, q2, _ := q.DeleteMin()
			q = q2
		} else {
			q = q.InsertAndAttrite(Elem{Key: rng.Int63n(1 << 30)})
		}
	}
	total := d.Stats().IOs()
	if float64(total) > 0.5*float64(n) {
		t.Errorf("amortized: %d ops cost %d I/Os (>= 0.5/op); expected o(1) per op", n, total)
	}
}

// TestSpaceBound: Theorem 3's O((n−m)/b) blocks, i.e. O(n−m) words.
func TestSpaceBound(t *testing.T) {
	d := newDisk()
	b := 8
	q := New(d, b)
	inserted, deleted := 0, 0
	rng := rand.New(rand.NewSource(13))
	for op := 0; op < 5000; op++ {
		if rng.Intn(4) == 0 {
			if _, q2, ok := q.DeleteMin(); ok {
				q = q2
				deleted++
			}
		} else {
			q = q.InsertAndAttrite(Elem{Key: rng.Int63n(1 << 30)})
			inserted++
		}
	}
	words := q.ReachableWords()
	if words > 4*(inserted-deleted)+20*b {
		t.Errorf("reachable words %d exceed 4(n-m)+20b = %d",
			words, 4*(inserted-deleted)+20*b)
	}
}

// TestFigure8QueueAnatomy: a queue built to have all components exercises
// the queue-order definition of Figure 8 (F, C, B, D1..Dk, L).
func TestFigure8QueueAnatomy(t *testing.T) {
	d := newDisk()
	b := 2
	// Build two large queues and catenate so the right one hangs off a
	// dirty record (large-catenate case 3/4), giving a non-trivial
	// anatomy.
	q1 := New(d, b)
	for i := int64(0); i < 60; i++ {
		q1 = q1.InsertAndAttrite(Elem{Key: i})
	}
	q2 := New(d, b)
	for i := int64(100); i < 160; i++ {
		q2 = q2.InsertAndAttrite(Elem{Key: i})
	}
	q := CatenateAndAttrite(q1, q2)
	if msg := q.CheckInvariants(); msg != "" {
		t.Fatalf("invariants after anatomy catenate: %s", msg)
	}
	got := q.Contents()
	if len(got) != 120 {
		t.Fatalf("anatomy queue has %d elements, want 120", len(got))
	}
	// The queue order must equal sorted order for a valid CPQA.
	for i := 1; i < len(got); i++ {
		if got[i-1].Key >= got[i].Key {
			t.Fatal("contents not strictly increasing")
		}
	}
}

func TestEmptyQueueOps(t *testing.T) {
	d := newDisk()
	q := New(d, 4)
	if _, ok := q.FindMin(); ok {
		t.Error("FindMin on empty queue returned ok")
	}
	if _, _, ok := q.DeleteMin(); ok {
		t.Error("DeleteMin on empty queue returned ok")
	}
	q2 := CatenateAndAttrite(q, New(d, 4))
	if !q2.Empty() {
		t.Error("catenation of empty queues not empty")
	}
	q3 := q.InsertAndAttrite(Elem{Key: 5})
	if got := q3.Contents(); len(got) != 1 || got[0].Key != 5 {
		t.Errorf("insert into empty = %v", got)
	}
}

func TestSingletonAttritesEverything(t *testing.T) {
	d := newDisk()
	for _, b := range []int{1, 2, 8} {
		q := New(d, b)
		for i := int64(0); i < 500; i++ {
			q = q.InsertAndAttrite(Elem{Key: i + 10})
		}
		q = q.InsertAndAttrite(Elem{Key: 1})
		got := q.Contents()
		if len(got) != 1 || got[0].Key != 1 {
			t.Fatalf("b=%d: global attrition left %v", b, got)
		}
		if msg := q.CheckInvariants(); msg != "" {
			t.Fatalf("b=%d: %s", b, msg)
		}
	}
}

func TestCatenateChains(t *testing.T) {
	// Deep chains of catenations exercise child-queue merging in Bias
	// (Figure 9) when the result is drained.
	d := newDisk()
	b := 2
	rng := rand.New(rand.NewSource(17))
	model := pqa.New()
	q := New(d, b)
	base := int64(1 << 40)
	for round := 0; round < 30; round++ {
		q2 := New(d, b)
		m2 := pqa.New()
		lo := base - int64(round)*1000
		for i := int64(0); i < 40; i++ {
			k := lo + rng.Int63n(900)
			q2 = q2.InsertAndAttrite(Elem{Key: k})
			m2.InsertAndAttrite(Elem{Key: k})
		}
		q = CatenateAndAttrite(q, q2)
		model.CatenateAndAttrite(m2)
	}
	checkAgainstModel(t, q, model, "chain")
	// Drain fully, comparing step by step.
	for {
		e1, q2, ok1 := q.DeleteMin()
		e2, ok2 := model.DeleteMin()
		if ok1 != ok2 || (ok1 && e1 != e2) {
			t.Fatalf("drain mismatch: %v,%t vs %v,%t", e1, ok1, e2, ok2)
		}
		if !ok1 {
			break
		}
		q = q2
	}
}
