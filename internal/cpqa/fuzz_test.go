package cpqa

import (
	"encoding/binary"
	"testing"

	"repro/internal/emio"
	"repro/internal/pqa"
)

// FuzzQueueOps drives a random operation sequence — InsertAndAttrite,
// DeleteMin, FindMin, CatenateAndAttrite — decoded from the fuzz input
// against a flat reference queue (pqa.PQA, Sundar's in-memory structure),
// asserting CheckInvariants and min/contents consistency along the way.
// The first byte selects the buffer parameter b, so one corpus covers
// every record geometry. Run with:
//
//	go test ./internal/cpqa -fuzz FuzzQueueOps -fuzztime 30s
func FuzzQueueOps(f *testing.F) {
	f.Add([]byte{2, 0, 1, 2, 0, 3, 4, 8, 12, 1, 5})
	f.Add([]byte{1, 0, 255, 255, 0, 0, 0, 8, 3, 9})
	// Increasing keys (nothing attrited), then a global attriter.
	f.Add([]byte{4, 0, 0, 1, 0, 0, 2, 0, 0, 3, 0, 0, 0})
	// Catenate-heavy sequence.
	f.Add([]byte{8, 3, 5, 0, 9, 0, 7, 3, 4, 0, 1, 0, 2, 2, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		b := int(data[0]%8) + 1
		data = data[1:]
		d := emio.NewDisk(emio.Config{B: 16, M: 1 << 20})
		q := New(d, b)
		model := pqa.New()

		next16 := func() (int64, bool) {
			if len(data) < 2 {
				return 0, false
			}
			k := int64(binary.LittleEndian.Uint16(data))
			data = data[2:]
			return k, true
		}
		check := func(ctx string) {
			if msg := q.CheckInvariants(); msg != "" {
				t.Fatalf("%s: invariant violated: %s", ctx, msg)
			}
			got, want := q.Contents(), model.Items()
			if len(got) != len(want) {
				t.Fatalf("%s: contents %v != model %v", ctx, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: contents[%d] = %v, want %v", ctx, i, got[i], want[i])
				}
			}
		}

		ops := 0
		for len(data) > 0 && ops < 400 {
			op := data[0]
			data = data[1:]
			ops++
			switch op % 4 {
			case 0, 1:
				k, ok := next16()
				if !ok {
					break
				}
				q = q.InsertAndAttrite(Elem{Key: k})
				model.InsertAndAttrite(Elem{Key: k})
			case 2:
				e1, nq, ok1 := q.DeleteMin()
				e2, ok2 := model.DeleteMin()
				if ok1 != ok2 || (ok1 && e1 != e2) {
					t.Fatalf("op %d: DeleteMin %v,%t vs model %v,%t", ops, e1, ok1, e2, ok2)
				}
				q = nq
			case 3:
				n := 0
				if len(data) > 0 {
					n = int(data[0] % 20)
					data = data[1:]
				}
				q2 := New(d, b)
				m2 := pqa.New()
				for i := 0; i < n; i++ {
					k, ok := next16()
					if !ok {
						break
					}
					q2 = q2.InsertAndAttrite(Elem{Key: k})
					m2.InsertAndAttrite(Elem{Key: k})
				}
				q = CatenateAndAttrite(q, q2)
				model.CatenateAndAttrite(m2)
			}
			if e1, ok1 := q.FindMin(); true {
				e2, ok2 := model.FindMin()
				if ok1 != ok2 || (ok1 && e1 != e2) {
					t.Fatalf("op %d: FindMin %v,%t vs model %v,%t", ops, e1, ok1, e2, ok2)
				}
			}
			if ops%8 == 0 {
				check("mid")
			}
		}
		check("final")
	})
}
