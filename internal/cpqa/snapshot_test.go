package cpqa

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/emio"
)

// captured is a queue handle pinned mid-sequence together with the
// answers it gave at capture time.
type captured struct {
	q     *Queue
	op    int
	min   Elem
	minOK bool
	items []int64
}

// runHandleProperty is the confluent-persistence property the snapshot
// layer (core.DB.Snapshot) is built on: a queue handle captured at ANY
// point of an operation sequence keeps answering FindMin and full
// iteration (Contents) byte-identically, no matter what operations —
// inserts, attriting deletes, catenations — derive later queues from
// it on the same disk. Ops are decoded from data exactly like
// FuzzQueueOps, so the two fuzz targets share a corpus shape.
func runHandleProperty(t *testing.T, data []byte) {
	if len(data) == 0 {
		return
	}
	b := int(data[0]%8) + 1
	data = data[1:]
	d := emio.NewDisk(emio.Config{B: 16, M: 1 << 20})
	q := New(d, b)

	next16 := func() (int64, bool) {
		if len(data) < 2 {
			return 0, false
		}
		k := int64(binary.LittleEndian.Uint16(data))
		data = data[2:]
		return k, true
	}
	capture := func(op int) captured {
		c := captured{q: q, op: op}
		c.min, c.minOK = q.FindMin()
		c.items = append([]int64(nil), keys(q.Contents())...)
		return c
	}
	var pins []captured

	ops := 0
	for len(data) > 0 && ops < 400 {
		op := data[0]
		data = data[1:]
		ops++
		switch op % 4 {
		case 0, 1:
			k, ok := next16()
			if !ok {
				break
			}
			q = q.InsertAndAttrite(Elem{Key: k})
		case 2:
			_, nq, _ := q.DeleteMin()
			q = nq
		case 3:
			n := 0
			if len(data) > 0 {
				n = int(data[0] % 20)
				data = data[1:]
			}
			q2 := New(d, b)
			for i := 0; i < n; i++ {
				k, ok := next16()
				if !ok {
					break
				}
				q2 = q2.InsertAndAttrite(Elem{Key: k})
			}
			q = CatenateAndAttrite(q, q2)
		}
		if ops%4 == 0 && len(pins) < 40 {
			pins = append(pins, capture(ops))
		}
	}
	pins = append(pins, capture(ops))

	// Every captured handle answers exactly as it did at capture time.
	for _, c := range pins {
		if msg := c.q.CheckInvariants(); msg != "" {
			t.Fatalf("handle at op %d: invariant violated after sequence: %s", c.op, msg)
		}
		m, ok := c.q.FindMin()
		if ok != c.minOK || (ok && m != c.min) {
			t.Fatalf("handle at op %d: FindMin = %v,%t; was %v,%t at capture",
				c.op, m, ok, c.min, c.minOK)
		}
		got := keys(c.q.Contents())
		if len(got) != len(c.items) {
			t.Fatalf("handle at op %d: %d items, was %d at capture", c.op, len(got), len(c.items))
		}
		for i := range got {
			if got[i] != c.items[i] {
				t.Fatalf("handle at op %d: item %d = %v, was %v at capture",
					c.op, i, got[i], c.items[i])
			}
		}
	}
}

func keys(es []Elem) []int64 {
	out := make([]int64, len(es))
	for i, e := range es {
		out[i] = e.Key
	}
	return out
}

// FuzzSnapshotHandles fuzzes the captured-handle property. Run with:
//
//	go test ./internal/cpqa -fuzz FuzzSnapshotHandles -fuzztime 30s
func FuzzSnapshotHandles(f *testing.F) {
	// The FuzzQueueOps seeds, so the corpora stay interchangeable.
	f.Add([]byte{2, 0, 1, 2, 0, 3, 4, 8, 12, 1, 5})
	f.Add([]byte{1, 0, 255, 255, 0, 0, 0, 8, 3, 9})
	f.Add([]byte{4, 0, 0, 1, 0, 0, 2, 0, 0, 3, 0, 0, 0})
	f.Add([]byte{8, 3, 5, 0, 9, 0, 7, 3, 4, 0, 1, 0, 2, 2, 2})
	// Delete-heavy: derived queues retire the most shared structure.
	f.Add([]byte{3, 0, 9, 0, 0, 7, 0, 0, 5, 0, 2, 2, 2, 2, 2})
	f.Fuzz(runHandleProperty)
}

// TestSnapshotHandleProperty drives the same property on seeded random
// sequences, so plain `go test` covers it without the fuzz engine.
func TestSnapshotHandleProperty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed + 600))
		data := make([]byte, 200+rng.Intn(400))
		rng.Read(data)
		runHandleProperty(t, data)
	}
}
