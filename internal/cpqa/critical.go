package cpqa

import "repro/internal/emio"

// This file exposes the queue's critical records (§4.1: "the first three
// records of C(Q), last(C(Q)), first(B(Q)), first(D1(Q)), last(DkQ(Q))
// and last(front(DkQ(Q))) if it exists, otherwise last(DkQ−1(Q))"), plus
// the F and L buffers. The dynamic structure of §4.2 keeps copies of
// these in each internal node's representative block, which is what
// makes Lemma 7's no-I/O multi-way catenation possible.

// span is a contiguous run of blocks.
type span struct {
	block emio.BlockID
	words int
}

// criticalSpans returns the block spans of the queue's critical records
// and buffers.
func (q *Queue) criticalSpans() []span {
	var out []span
	if q.fWords > 0 {
		out = append(out, span{q.fBlock, q.fWords})
	}
	if q.lWords > 0 {
		out = append(out, span{q.lBlock, q.lWords})
	}
	add := func(r *record) {
		if r != nil {
			out = append(out, span{r.block, r.words})
		}
	}
	for i := 0; i < 3 && i < len(q.c); i++ {
		add(q.c[i])
	}
	if !q.c.empty() {
		add(q.c.last())
	}
	if !q.bq.empty() {
		add(q.bq.first())
	}
	if kq := q.k(); kq > 0 {
		add(q.d[0].first())
		dk := q.d[kq-1]
		add(dk.last())
		if len(dk) > 1 {
			add(dk.front().last())
		} else if kq > 1 {
			add(q.d[kq-2].last())
		}
	}
	return out
}

// CriticalWords returns the total words of the critical spans: the size
// contribution of this queue to its parent's representative block.
func (q *Queue) CriticalWords() int {
	w := 0
	for _, s := range q.criticalSpans() {
		w += s.words
	}
	return w
}

// AdmitCritical marks the critical records memory-resident without a
// charge. Callers must have just paid for reading a packed copy (the
// representative block); see emio.Admit.
func (q *Queue) AdmitCritical() {
	for _, s := range q.criticalSpans() {
		q.disk.AdmitSpan(s.block, s.words)
	}
}

// PinCritical pins the critical records in memory (charging reads for
// any that are cold), returning an unpin function. This realises the
// paper's "constant number of blocks pinned in main memory" assumption
// behind the O(1/b) amortized bounds.
func (q *Queue) PinCritical() (unpin func()) {
	spans := q.criticalSpans()
	for _, s := range spans {
		q.disk.PinSpan(s.block, s.words)
	}
	return func() {
		for _, s := range spans {
			q.disk.UnpinSpan(s.block, s.words)
		}
	}
}

// FromAscending builds a queue over strictly increasing elements in
// O(1 + len/B) I/Os by packing all records into one contiguous span.
// The §4.2 structure uses it to create leaf queues (and query-time
// partial-leaf queues) in O(1) I/Os, since a leaf holds O(B) elements.
func FromAscending(d *emio.Disk, b int, elems []Elem) *Queue {
	for i := 1; i < len(elems); i++ {
		if elems[i-1].Key >= elems[i].Key {
			panic("cpqa: FromAscending input not strictly increasing")
		}
	}
	q := &Queue{disk: d, b: b}
	if len(elems) == 0 {
		return q
	}
	if len(elems) <= 4*b {
		q.f = append([]Elem(nil), elems...)
		q.size = len(elems)
		q.chargeBuffers()
		return q
	}
	q.f = append([]Elem(nil), elems[:2*b]...)
	rest := elems[2*b:]
	// Pack the clean records into one span so that building charges
	// O(words/B) I/Os, as a streaming write would.
	spanStart := d.AllocSpan(len(rest))
	d.WriteSpan(spanStart, len(rest))
	off := 0
	for off < len(rest) {
		sz := 2 * b
		if len(rest)-off < sz+b {
			sz = len(rest) - off // final record up to 3b
		}
		chunk := rest[off : off+sz]
		r := &record{
			buf:   append([]Elem(nil), chunk...),
			total: len(chunk),
			block: spanStart + emio.BlockID(off/d.Config().B),
			words: len(chunk),
		}
		q.c = q.c.pushBack(r)
		off += sz
	}
	q.size = len(elems)
	q.chargeBuffers()
	return q
}
