package cpqa

import (
	"fmt"
	"math"
)

// This file provides the semantic view of a queue (Contents), the
// invariant checker used by the test suite, the Lemma 7 multi-way
// catenation, and space accounting.

// stored returns every element physically present, in queue order
// (F, C, B, D1..Dk, L; a record contributes its buffer followed by the
// Euler tour of its child, per the paper's ordering definition).
func (q *Queue) stored() []Elem {
	var out []Elem
	var emit func(dq rdeq)
	emit = func(dq rdeq) {
		for _, r := range dq {
			out = append(out, r.buf...)
			if r.child != nil {
				out = append(out, r.child.stored()...)
			}
		}
	}
	out = append(out, q.f...)
	emit(q.c)
	emit(q.bq)
	for _, dq := range q.d {
		emit(dq)
	}
	out = append(out, q.l...)
	return out
}

// Contents returns the non-attrited elements in queue order: an element
// survives iff it is strictly smaller than everything that follows it
// (later arrivals attrite earlier elements >= them). The result is
// strictly increasing. Host-side; used by tests and by callers that need
// a full drain without I/O accounting.
func (q *Queue) Contents() []Elem {
	s := q.stored()
	keep := make([]bool, len(s))
	minAfter := int64(math.MaxInt64)
	for i := len(s) - 1; i >= 0; i-- {
		if s[i].Key < minAfter {
			keep[i] = true
			minAfter = s[i].Key
		}
	}
	var out []Elem
	for i, k := range keep {
		if k {
			out = append(out, s[i])
		}
	}
	return out
}

// CheckInvariants verifies invariants I.1–I.9 on q (recursively on child
// queues) and returns a description of the first violation, or "".
func (q *Queue) CheckInvariants() string {
	return q.check(true)
}

func (q *Queue) check(root bool) string {
	b := q.b
	// Buffer size bounds.
	if len(q.f) > 4*b {
		return fmt.Sprintf("F has %d > 4b elements", len(q.f))
	}
	if len(q.l) > 4*b {
		return fmt.Sprintf("L has %d > 4b elements", len(q.l))
	}
	if !sortedStrict(q.f) {
		return "F not sorted"
	}
	if !sortedStrict(q.l) {
		return "L not sorted"
	}
	// I.9: child queues carry no F or L.
	if !root && (len(q.f) > 0 || len(q.l) > 0) {
		return "I.9: child queue with non-empty F or L"
	}
	// I.8 (root queues): |F| < b iff |Q| < b.
	if root && q.size > 0 {
		if (len(q.f) < b) != (q.size < b) {
			return fmt.Sprintf("I.8: |F|=%d, |Q|=%d, b=%d", len(q.f), q.size, b)
		}
	}
	// I.7: state non-negative.
	if q.State() < 0 {
		return fmt.Sprintf("I.7: state %d < 0", q.State())
	}
	// I.6: records in C and B are simple.
	for _, r := range q.c {
		if r.child != nil {
			return "I.6: non-simple record in C"
		}
	}
	for _, r := range q.bq {
		if r.child != nil {
			return "I.6: non-simple record in B"
		}
	}
	// Record buffer bounds: [1, 4b] (the lower bound b is relaxed to 1
	// in transient states the paper allows for small queues).
	checkDeque := func(name string, dq rdeq) string {
		prev := int64(math.MinInt64)
		for _, r := range dq {
			if len(r.buf) == 0 || len(r.buf) > 4*b {
				return fmt.Sprintf("%s record size %d outside [1,4b]", name, len(r.buf))
			}
			if !sortedStrict(r.buf) {
				return name + " record buffer not sorted"
			}
			// I.2: strictly increasing across the deque.
			if r.min().Key <= prev {
				return "I.2: deque " + name + " not increasing"
			}
			prev = r.max().Key
			// I.1: child entirely above the buffer.
			if r.child != nil {
				if m, ok := minStored(r.child); ok && m <= r.max().Key {
					return "I.1: child not above record buffer"
				}
				if msg := r.child.check(false); msg != "" {
					return msg
				}
			}
		}
		return ""
	}
	if msg := checkDeque("C", q.c); msg != "" {
		return msg
	}
	if msg := checkDeque("B", q.bq); msg != "" {
		return msg
	}
	for i, dq := range q.d {
		if dq.empty() {
			return "empty dirty deque"
		}
		if msg := checkDeque(fmt.Sprintf("D%d", i+1), dq); msg != "" {
			return msg
		}
	}
	// I.3: max(F) < min(first(C)) < max(last(C)) < min(first(B)) and
	// < min(first(D1)).
	if len(q.f) > 0 && !q.c.empty() && q.f[len(q.f)-1].Key >= q.c.first().min().Key {
		return "I.3: F not below C"
	}
	if !q.c.empty() {
		top := q.c.last().max().Key
		if v, ok := minFirstB(q); ok && top >= v.Key {
			return "I.3: C not below B"
		}
		if v, ok := minFirstD1(q); ok && top >= v.Key {
			return "I.3: C not below D1"
		}
	}
	if vb, ok := minFirstB(q); ok {
		if vd, ok2 := minFirstD1(q); ok2 && vb.Key >= vd.Key {
			return "I.3: B not below D1"
		}
	}
	// I.4: min(first(D1)) is the smallest element in the dirty deques.
	if v, ok := minFirstD1(q); ok {
		for _, dq := range q.d {
			for _, r := range dq {
				if r.min().Key < v.Key {
					return "I.4: dirty element below min(first(D1))"
				}
			}
		}
	}
	// I.5: min(first(D1)) < min(L).
	if v, ok := minFirstD1(q); ok {
		if lv, ok2 := minL(q); ok2 && v.Key >= lv.Key {
			return "I.5: min(first(D1)) >= min(L)"
		}
	}
	// Size bookkeeping.
	if got := len(q.stored()); got != q.size {
		return fmt.Sprintf("size cache %d != stored %d", q.size, got)
	}
	return ""
}

func sortedStrict(s []Elem) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1].Key >= s[i].Key {
			return false
		}
	}
	return true
}

// minStored returns the smallest element physically stored in q.
func minStored(q *Queue) (int64, bool) {
	s := q.stored()
	if len(s) == 0 {
		return 0, false
	}
	m := s[0].Key
	for _, e := range s {
		if e.Key < m {
			m = e.Key
		}
	}
	return m, true
}

// BiasUntilReady applies Bias until the state satisfies Lemma 7's
// precondition (∆ >= 2, or the queue has at most two records), returning
// the prepared queue. Each Bias is O(1) I/Os and the loop runs O(1)
// times amortized; the dynamic structure runs this when (re)building a
// node's queue.
func (q *Queue) BiasUntilReady() *Queue {
	cur := q
	for guard := 0; cur.State() < 2 && cur.hasRecords(); guard++ {
		if guard > 64 {
			panic("cpqa: BiasUntilReady failed to converge")
		}
		next := bias(cur)
		if next == cur {
			break
		}
		cur = next
	}
	return cur
}

func (q *Queue) hasRecords() bool {
	if !q.c.empty() || !q.bq.empty() {
		return true
	}
	for _, dq := range q.d {
		if !dq.empty() {
			return true
		}
	}
	return false
}

// CatenateAll concatenates the queues right to left (Lemma 7):
// CatenateAndAttrite(q[0], CatenateAndAttrite(q[1], ... q[ℓ-1])).
// Callers that maintain each queue BiasUntilReady and keep critical
// records resident obtain the lemma's no-extra-I/O behaviour; the
// simulation charges whatever record traffic actually occurs.
func CatenateAll(qs []*Queue) *Queue {
	if len(qs) == 0 {
		return nil
	}
	acc := qs[len(qs)-1]
	for i := len(qs) - 2; i >= 0; i-- {
		acc = CatenateAndAttrite(qs[i], acc)
	}
	return acc
}

// ReachableWords returns the number of words reachable from this queue
// version: record buffers (including children) plus the F/L buffers.
// With the ephemeral usage pattern (drop old versions), this is the
// O((n−m)/b)-block space bound of Theorem 3; the persistent history that
// immutability retains is not counted, matching a real implementation
// that garbage-collects unreachable versions.
func (q *Queue) ReachableWords() int {
	seen := map[*record]bool{}
	var walk func(q *Queue) int
	walk = func(q *Queue) int {
		if q == nil {
			return 0
		}
		w := len(q.f) + len(q.l)
		visit := func(dq rdeq) {
			for _, r := range dq {
				if seen[r] {
					continue
				}
				seen[r] = true
				w += len(r.buf)
				w += walk(r.child)
			}
		}
		visit(q.c)
		visit(q.bq)
		for _, dq := range q.d {
			visit(dq)
		}
		return w
	}
	return walk(q)
}
