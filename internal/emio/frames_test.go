package emio

import "testing"

// TestFrameTableLRUDiscipline pins the eviction order the Disk and the
// pager both rely on: least recently used unpinned frame first, pinned
// frames never.
func TestFrameTableLRUDiscipline(t *testing.T) {
	var evicted []uint64
	ft := NewFrameTable(2, func(f *Frame) { evicted = append(evicted, f.ID) })
	ft.Admit(1, false, 0)
	ft.Admit(2, false, 0)
	ft.Touch(ft.Get(1), false) // 2 is now LRU
	ft.Admit(3, false, 0)
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Fatalf("evicted %v, want [2]", evicted)
	}
	if ft.Get(2) != nil || ft.Get(1) == nil || ft.Get(3) == nil {
		t.Fatalf("residency after eviction wrong")
	}

	// Pin 1; admitting two more must evict 3 (unpinned) and then
	// overflow by the pinned frame rather than evict it.
	ft.Pin(ft.Get(1))
	ft.Admit(4, false, 0)
	ft.Admit(5, false, 0)
	if ft.Get(1) == nil {
		t.Fatalf("pinned frame evicted")
	}
	if ft.Pinned() != 1 {
		t.Fatalf("Pinned() = %d, want 1", ft.Pinned())
	}
	ft.Unpin(ft.Get(1))
	if ft.Pinned() != 0 || ft.Unpinned() != ft.Len() {
		t.Fatalf("pin accounting drifted: pinned=%d unpinned=%d len=%d",
			ft.Pinned(), ft.Unpinned(), ft.Len())
	}
}

// TestFrameTableEvictAllOrder pins that EvictAll visits unpinned frames
// LRU-first and leaves pinned frames resident — Disk.DropCache's
// contract.
func TestFrameTableEvictAllOrder(t *testing.T) {
	var evicted []uint64
	ft := NewFrameTable(10, func(f *Frame) { evicted = append(evicted, f.ID) })
	ft.Admit(1, true, 0)
	ft.Admit(2, false, 0)
	ft.Admit(3, false, 1) // pinned at admission
	ft.EvictAll()
	if len(evicted) != 2 || evicted[0] != 1 || evicted[1] != 2 {
		t.Fatalf("evicted %v, want [1 2]", evicted)
	}
	if ft.Get(3) == nil || ft.Len() != 1 {
		t.Fatalf("pinned frame did not survive EvictAll")
	}
}

// TestFreePinnedPanics: freeing a still-pinned block is a model
// violation (the pin claims the block is a critical record held in
// memory) and must panic rather than silently strand the pin — the
// old behavior discarded the frame, so a later Unpin would panic as
// "unpinned" and the pin population counts drifted.
func TestFreePinnedPanics(t *testing.T) {
	d := NewDisk(Config{B: 8, M: 64})
	id := d.Alloc()
	d.Pin(id)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("Free of a pinned block did not panic")
			}
		}()
		d.Free(id)
	}()
	// The failed Free must not have mutated anything: the block is
	// still live, still pinned, and a clean Unpin+Free still works.
	if !d.Resident(id) {
		t.Fatalf("block lost residency after rejected Free")
	}
	d.Unpin(id)
	d.Free(id)
	if d.LiveBlocks() != 0 {
		t.Fatalf("LiveBlocks = %d after final Free, want 0", d.LiveBlocks())
	}
}

// TestBlocksForZero pins the documented corner: no words, no blocks.
func TestBlocksForZero(t *testing.T) {
	c := Config{B: 256, M: 0}
	if got := c.BlocksFor(0); got != 0 {
		t.Fatalf("BlocksFor(0) = %d, want 0", got)
	}
	if got := c.BlocksFor(1); got != 1 {
		t.Fatalf("BlocksFor(1) = %d, want 1", got)
	}
	if got := c.BlocksFor(257); got != 2 {
		t.Fatalf("BlocksFor(257) = %d, want 2", got)
	}
}
