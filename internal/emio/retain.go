// Deferred frees: the storage half of snapshot reads. A confluently
// persistent structure never mutates its records, so a point-in-time
// view of it is just a root captured while the live structure moves on
// — EXCEPT that the live structure recycles the few mutable spans it
// owns (dyntop leaf spans and representative blocks). Freeing such a
// span while a snapshot still walks it would trip the
// access-to-unallocated panic that guards the simulated machine.
//
// A Retention closes that window with epoch semantics instead of
// per-block reference counts: opening one (RetainFrees) stamps the
// disk's epoch sequence, and every Free/FreeSpan that arrives while any
// retention is open is DEFERRED — the block stays live (readable,
// still charged to LiveWords) and is tagged with the current epoch.
// A deferred block is actually released once every retention opened
// before its free has been released: a retention opened AFTER the free
// cannot reference the block (the live structure had already dropped
// its last pointer when that snapshot was pinned), so only the earlier
// epochs hold it. Releases are O(deferred) on the last holder and O(1)
// amortized otherwise; the tags are monotone, so the deferred queue
// drains from the front.
//
// The epoch trade: a block freed during a snapshot's lifetime is held
// until that snapshot drops even if the snapshot never touches it.
// That is the same slack a generation/epoch reclamation scheme accepts
// everywhere (RCU, epoch-based memory reclamation), and it is bounded:
// DeferredBlocks is exposed exactly so tests can prove the count
// returns to zero at quiescence — no leaked retired spans.
package emio

import "fmt"

// deferredFree is one block whose Free arrived while a retention was
// open: it is released once every retention with seq <= epoch is gone.
type deferredFree struct {
	id    BlockID
	epoch uint64
}

// Retention defers every Free on the disk until released. Obtained
// from Disk.RetainFrees; Release is idempotent. The zero value is not
// usable.
type Retention struct {
	d   *Disk
	seq uint64
}

// RetainFrees opens a retention: until it is released, blocks freed on
// the disk stay readable (deferred) instead of being released. Callers
// pinning a snapshot open the retention FIRST, then capture their
// roots, so no free can slip between the two. Safe on a guarded disk
// concurrently with operations; on an unguarded disk the usual
// single-goroutine contract applies.
func (d *Disk) RetainFrees() *Retention {
	d.lock()
	defer d.unlock()
	d.retainSeq++
	r := &Retention{d: d, seq: d.retainSeq}
	d.retained[r.seq] = struct{}{}
	return r
}

// Release ends the retention. Deferred frees whose epoch no open
// retention predates are applied now; the last release applies them
// all. Releasing twice is a no-op.
func (r *Retention) Release() {
	d := r.d
	d.lock()
	defer d.unlock()
	if _, open := d.retained[r.seq]; !open {
		return
	}
	delete(d.retained, r.seq)
	// minOpen is the oldest still-open retention; deferred frees
	// stamped at or before every open retention's birth are clear.
	minOpen := d.retainSeq + 1
	for seq := range d.retained {
		if seq < minOpen {
			minOpen = seq
		}
	}
	i := 0
	for ; i < len(d.deferred); i++ {
		df := d.deferred[i]
		if df.epoch >= minOpen {
			// A retention opened before this free is still alive; the
			// tags are monotone, so everything after it waits too.
			break
		}
		delete(d.deferredSet, df.id)
		d.reclaim(df.id)
	}
	d.deferred = d.deferred[i:]
}

// Retained reports the number of open retentions.
func (d *Disk) Retained() int {
	d.lock()
	defer d.unlock()
	return len(d.retained)
}

// DeferredBlocks reports the number of blocks whose Free is deferred
// behind open retentions. At quiescence with no open retentions it is
// zero — the leak check snapshot tests assert.
func (d *Disk) DeferredBlocks() int {
	d.lock()
	defer d.unlock()
	return len(d.deferred)
}

// deferFree queues id for release once the retentions open now are
// gone. The block stays live and readable. Caller holds the lock.
func (d *Disk) deferFree(id BlockID) {
	if _, ok := d.live[id]; !ok {
		panic(fmt.Sprintf("emio: Free of unknown block %d", id))
	}
	if d.deferredSet[id] {
		panic(fmt.Sprintf("emio: double Free of deferred block %d", id))
	}
	d.deferredSet[id] = true
	d.deferred = append(d.deferred, deferredFree{id: id, epoch: d.retainSeq})
}
