// FrameTable: the LRU frame cache extracted from Disk so that every
// cache of fixed-size storage units in the repository shares one
// eviction and pin discipline. Disk uses it for its simulated block
// frames; internal/pager uses it for the 4 KB page frames of the real
// file-backed store. The discipline is exactly the one the paper's
// I/O accounting rests on:
//
//   - frames form an LRU list; admitting past capacity evicts the
//     least recently used UNPINNED frame (the eviction callback sees
//     it before it is dropped, so a dirty frame can be written back);
//   - pinned frames are never evicted — the cache may overflow by
//     pinned frames only, mirroring the paper's assumption M = Ω(ℓb)
//     that the critical records always fit in memory;
//   - pins nest, and the pinned/unpinned population counts are
//     maintained exactly, so owners can assert the accounting that the
//     paper's amortized bounds rest on.
//
// The table is not safe for concurrent use; owners guard it with their
// own mutex (Disk's guarded mode, the pager's lock).
package emio

// Frame is one cache slot of a FrameTable, holding the residency state
// of one fixed-size storage unit (a simulated block, a pager page).
// Owners attach payloads by keying on ID in a side table.
type Frame struct {
	// ID names the cached unit.
	ID uint64
	// Dirty marks content that must be written back on eviction.
	Dirty bool
	// Pins counts nested pins; a pinned frame is never evicted.
	Pins int

	prev *Frame // LRU list; more recently used towards head
	next *Frame
}

// FrameTable is an LRU table of resident frames with a pin discipline.
type FrameTable struct {
	resident map[uint64]*Frame
	head     *Frame // most recently used
	tail     *Frame // least recently used
	unpinned int    // resident frames with Pins == 0
	pinned   int    // resident frames with Pins > 0
	capacity int    // total frames permitted (pins may overflow it)
	onEvict  func(*Frame)
}

// NewFrameTable returns an empty table holding up to capacity frames.
// onEvict, which may be nil, is called with each frame chosen for
// eviction (and by EvictAll) before the frame is dropped — the hook
// where a dirty frame's write-back happens.
func NewFrameTable(capacity int, onEvict func(*Frame)) *FrameTable {
	return &FrameTable{
		resident: make(map[uint64]*Frame),
		capacity: capacity,
		onEvict:  onEvict,
	}
}

// Len returns the number of resident frames.
func (t *FrameTable) Len() int { return len(t.resident) }

// Pinned returns the number of resident frames with at least one pin.
func (t *FrameTable) Pinned() int { return t.pinned }

// Unpinned returns the number of resident frames with no pins.
func (t *FrameTable) Unpinned() int { return t.unpinned }

// Get returns the resident frame for id, or nil. Residency is not a
// use; callers that mean "access" follow up with Touch.
func (t *FrameTable) Get(id uint64) *Frame { return t.resident[id] }

// Touch moves a resident frame to the most-recently-used position and
// ORs dirty into its dirty bit.
func (t *FrameTable) Touch(f *Frame, dirty bool) {
	t.unlink(f)
	t.pushFront(f)
	if dirty {
		f.Dirty = true
	}
}

// Admit inserts a frame for id at the most-recently-used position and
// evicts least-recently-used unpinned frames while the table is over
// capacity. pins > 0 admits the frame already pinned (fetch-and-pin
// must be atomic so the new frame cannot be chosen as its own eviction
// victim when the cache is saturated with pins). The caller guarantees
// id is not resident.
func (t *FrameTable) Admit(id uint64, dirty bool, pins int) *Frame {
	f := &Frame{ID: id, Dirty: dirty, Pins: pins}
	t.pushFront(f)
	t.resident[id] = f
	if pins > 0 {
		t.pinned++
	} else {
		t.unpinned++
	}
	for len(t.resident) > t.capacity {
		victim := t.lruUnpinned()
		if victim == nil {
			// Everything is pinned; the table is allowed to overflow
			// by pinned frames only (M = Ω(ℓb)).
			break
		}
		t.evict(victim)
	}
	return f
}

// Pin adds one pin to a resident frame and makes it most recently used.
func (t *FrameTable) Pin(f *Frame) {
	t.unlink(f)
	t.pushFront(f)
	if f.Pins == 0 {
		t.unpinned--
		t.pinned++
	}
	f.Pins++
}

// Unpin releases one pin.
func (t *FrameTable) Unpin(f *Frame) {
	f.Pins--
	if f.Pins == 0 {
		t.pinned--
		t.unpinned++
	}
}

// Remove drops a frame without the eviction callback — the path for
// freeing a dead unit whose content must NOT be written back.
func (t *FrameTable) Remove(f *Frame) {
	if f.Pins > 0 {
		t.pinned--
	} else {
		t.unpinned--
	}
	t.unlink(f)
	delete(t.resident, f.ID)
}

// EvictAll evicts every unpinned frame (running the eviction callback
// on each), least recently used first. Pinned frames stay resident.
func (t *FrameTable) EvictAll() {
	for f := t.tail; f != nil; {
		prev := f.prev
		if f.Pins == 0 {
			t.evict(f)
		}
		f = prev
	}
}

// evict runs the callback and drops the (unpinned) frame.
func (t *FrameTable) evict(f *Frame) {
	if t.onEvict != nil {
		t.onEvict(f)
	}
	t.unlink(f)
	delete(t.resident, f.ID)
	t.unpinned--
}

// lruUnpinned returns the least recently used unpinned frame, or nil.
func (t *FrameTable) lruUnpinned() *Frame {
	for f := t.tail; f != nil; f = f.prev {
		if f.Pins == 0 {
			return f
		}
	}
	return nil
}

func (t *FrameTable) pushFront(f *Frame) {
	f.prev = nil
	f.next = t.head
	if t.head != nil {
		t.head.prev = f
	}
	t.head = f
	if t.tail == nil {
		t.tail = f
	}
}

func (t *FrameTable) unlink(f *Frame) {
	if f.prev != nil {
		f.prev.next = f.next
	} else {
		t.head = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else {
		t.tail = f.prev
	}
	f.prev, f.next = nil, nil
}
