// Package emio simulates the external-memory (EM) model of Aggarwal and
// Vitter: a machine with M words of main memory and a disk of unbounded
// size divided into blocks of B consecutive words. The cost of an
// algorithm is the number of block transfers (I/Os) it performs; CPU time
// is free.
//
// Every data structure in this repository stores its nodes and records in
// emio blocks and routes each access through a Disk, so the I/O counters
// measure exactly the quantity the paper's theorems bound. The Disk keeps
// an LRU cache of M/B block frames; an access to a resident block is free,
// an access to a non-resident block costs one read I/O (plus one write I/O
// when the evicted frame is dirty). Blocks may be pinned, which models the
// paper's "critical records ... loaded in main memory" assumption used for
// the O(1/B) amortized bounds.
//
// A Disk is single-threaded by default. Simulations that share one disk
// between goroutines (the sharded engine of internal/shard) enable the
// guarded mode with NewConcurrentDisk or Guard: every public operation
// then takes the disk's mutex, and the I/O counters — which are atomic in
// both modes — may be read at any time without synchronizing with the
// operations that advance them.
package emio

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// BlockID identifies one allocated block on the simulated disk.
// The zero value is never a valid block.
type BlockID uint64

// Config fixes the machine parameters of the simulated EM machine.
type Config struct {
	// B is the number of words per disk block. Must be >= 1.
	B int
	// M is the number of words of main memory. The block cache holds
	// M/B frames. M < B disables caching entirely (every access is an
	// I/O), which models the strict worst case. Must be >= 0.
	M int
}

// DefaultConfig returns the configuration used by most experiments:
// 256-word blocks and enough memory for 64 frames.
func DefaultConfig() Config { return Config{B: 256, M: 256 * 64} }

// Frames returns the number of block frames the cache holds.
func (c Config) Frames() int {
	if c.B <= 0 {
		return 0
	}
	return c.M / c.B
}

// BlocksFor returns the number of B-word blocks needed to hold the given
// number of words, i.e. ceil(words/B). It returns 0 for words <= 0:
// callers with nothing to store should not allocate at all.
func (c Config) BlocksFor(words int) int {
	if words <= 0 {
		return 0
	}
	return (words + c.B - 1) / c.B
}

// Stats counts the I/O traffic performed through a Disk since the last
// ResetStats.
type Stats struct {
	// Reads counts block transfers from disk to memory.
	Reads uint64
	// Writes counts block transfers from memory to disk (dirty
	// evictions and explicit flushes).
	Writes uint64
}

// IOs returns Reads + Writes.
func (s Stats) IOs() uint64 { return s.Reads + s.Writes }

// Sub returns the element-wise difference s - o. It is used to measure
// the cost of a region of code from two snapshots.
func (s Stats) Sub(o Stats) Stats {
	return Stats{Reads: s.Reads - o.Reads, Writes: s.Writes - o.Writes}
}

// Add returns the element-wise sum s + o. It is used to aggregate the
// per-shard disks of a sharded engine into one total.
func (s Stats) Add(o Stats) Stats {
	return Stats{Reads: s.Reads + o.Reads, Writes: s.Writes + o.Writes}
}

func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d ios=%d", s.Reads, s.Writes, s.IOs())
}

// Disk is a simulated external-memory disk with an LRU cache.
//
// By default a Disk is not safe for concurrent use; each simulation owns
// its Disk. A disk created with NewConcurrentDisk (or switched with
// Guard) serializes every operation behind a mutex, so goroutines may
// share it. The I/O counters are atomic in both modes, so Stats is always
// safe to call concurrently with operations.
type Disk struct {
	cfg Config

	// guarded selects the concurrent mode; mu is taken by every public
	// operation when it is set. guarded never changes while operations
	// are in flight (Guard is called before the disk is shared).
	guarded bool
	mu      sync.Mutex

	reads  atomic.Uint64
	writes atomic.Uint64

	nextID uint64

	// live maps allocated blocks to their size in words (for space
	// accounting). Blocks are bookkeeping only; payload lives in the
	// data structures themselves because CPU and RAM of the *host* are
	// free in the model.
	live      map[BlockID]int
	liveWords int64
	peakWords int64

	// frames is the LRU cache of resident blocks: the frame, pin and
	// eviction discipline shared with the file-backed pager
	// (internal/pager). Evicting a dirty frame charges one write I/O
	// through the table's eviction callback.
	frames *FrameTable

	// Snapshot retention state (see retain.go): while retained is
	// non-empty, frees are deferred — the block stays live so pinned
	// point-in-time views can keep reading it — and applied once every
	// retention that could reference it is released.
	retainSeq   uint64
	retained    map[uint64]struct{}
	deferred    []deferredFree
	deferredSet map[BlockID]bool
}

// NewDisk returns a Disk for the given machine configuration.
func NewDisk(cfg Config) *Disk {
	if cfg.B < 1 {
		panic("emio: config.B must be >= 1")
	}
	if cfg.M < 0 {
		panic("emio: config.M must be >= 0")
	}
	d := &Disk{
		cfg:         cfg,
		live:        make(map[BlockID]int),
		retained:    make(map[uint64]struct{}),
		deferredSet: make(map[BlockID]bool),
	}
	d.frames = NewFrameTable(cfg.Frames(), func(f *Frame) {
		if f.Dirty {
			d.writes.Add(1)
		}
	})
	return d
}

// NewConcurrentDisk returns a Disk in guarded mode: safe for concurrent
// use by multiple goroutines. Operations serialize behind a mutex, which
// models the single disk arm of the EM machine; the I/O accounting is
// identical to the unguarded disk's.
func NewConcurrentDisk(cfg Config) *Disk {
	d := NewDisk(cfg)
	d.guarded = true
	return d
}

// Guard switches the disk into guarded (concurrent) mode. It must be
// called before the disk is shared between goroutines; there is no way
// back.
func (d *Disk) Guard() { d.guarded = true }

// Guarded reports whether the disk is in guarded mode.
func (d *Disk) Guarded() bool { return d.guarded }

func (d *Disk) lock() {
	if d.guarded {
		d.mu.Lock()
	}
}

func (d *Disk) unlock() {
	if d.guarded {
		d.mu.Unlock()
	}
}

// Config returns the machine parameters of the disk.
func (d *Disk) Config() Config { return d.cfg }

// Stats returns the I/O counters accumulated since the last ResetStats.
// Safe to call at any time, even while another goroutine operates on a
// guarded disk.
func (d *Disk) Stats() Stats {
	return Stats{Reads: d.reads.Load(), Writes: d.writes.Load()}
}

// ResetStats zeroes the I/O counters. Resident and pinned blocks are
// unaffected, so a measurement region sees a warm cache unless DropCache
// is called as well.
func (d *Disk) ResetStats() {
	d.reads.Store(0)
	d.writes.Store(0)
}

// LiveBlocks returns the number of currently allocated blocks; it is the
// space usage of all structures on this disk, in blocks.
func (d *Disk) LiveBlocks() int {
	d.lock()
	defer d.unlock()
	return len(d.live)
}

// LiveWords returns the number of allocated words.
func (d *Disk) LiveWords() int64 {
	d.lock()
	defer d.unlock()
	return d.liveWords
}

// PeakWords returns the high-water mark of allocated words.
func (d *Disk) PeakWords() int64 {
	d.lock()
	defer d.unlock()
	return d.peakWords
}

// Alloc allocates a new block of up to B words and returns its id. The
// block becomes resident and dirty (it was produced in memory and must be
// written back eventually); the read I/O is not charged because nothing
// is fetched.
func (d *Disk) Alloc() BlockID {
	d.lock()
	defer d.unlock()
	return d.allocWords(d.cfg.B)
}

// AllocWords allocates a block accounted as holding the given number of
// words (clamped to [1, B]). Structures that pack less than a full block
// use this for precise space accounting.
func (d *Disk) AllocWords(words int) BlockID {
	d.lock()
	defer d.unlock()
	return d.allocWords(words)
}

func (d *Disk) allocWords(words int) BlockID {
	if words < 1 {
		words = 1
	}
	if words > d.cfg.B {
		words = d.cfg.B
	}
	d.nextID++
	id := BlockID(d.nextID)
	d.live[id] = words
	d.liveWords += int64(words)
	if d.liveWords > d.peakWords {
		d.peakWords = d.liveWords
	}
	d.frames.Admit(uint64(id), true, 0)
	return id
}

// Free releases a block. A resident frame is discarded without a
// write-back (the data is dead). Freeing a block that is still pinned
// panics: a pin models a critical record the structure claims to hold
// in memory, so freeing it is a model violation — silently discarding
// the frame would strand the outstanding pins, make the later Unpin
// panic as "unpinned", and drift the pin accounting the paper's
// M = Ω(ℓb) assumption rests on. While a retention is open (see
// retain.go) the free is deferred: the block stays readable for the
// snapshots that may still walk it and is released when the last
// retention that could reference it drops.
func (d *Disk) Free(id BlockID) {
	d.lock()
	defer d.unlock()
	d.free(id)
}

// free defers the release behind any open retention, and reclaims
// immediately otherwise. Caller holds the lock.
func (d *Disk) free(id BlockID) {
	if len(d.retained) > 0 {
		d.deferFree(id)
		return
	}
	d.reclaim(id)
}

// reclaim actually releases a block, bypassing retention deferral (the
// path Retention.Release drains the deferred queue through). Caller
// holds the lock.
func (d *Disk) reclaim(id BlockID) {
	words, ok := d.live[id]
	if !ok {
		panic(fmt.Sprintf("emio: Free of unknown block %d", id))
	}
	if f := d.frames.Get(uint64(id)); f != nil {
		if f.Pins > 0 {
			panic(fmt.Sprintf("emio: Free of pinned block %d (%d outstanding pins)", id, f.Pins))
		}
		d.frames.Remove(f)
	}
	delete(d.live, id)
	d.liveWords -= int64(words)
}

// Read touches a block for reading. If the block is not resident one read
// I/O is charged and the block is brought into the cache (possibly
// evicting the least recently used unpinned frame, charging a write I/O
// if it was dirty).
func (d *Disk) Read(id BlockID) {
	d.lock()
	defer d.unlock()
	d.touch(id, false)
}

// Write touches a block for writing. Same residency rules as Read; the
// frame is additionally marked dirty so its eventual eviction costs a
// write I/O.
func (d *Disk) Write(id BlockID) {
	d.lock()
	defer d.unlock()
	d.touch(id, true)
}

// ReadCold charges one read I/O unconditionally, bypassing the cache and
// leaving residency unchanged. It models an access pattern with no
// locality (for example, the located-leaf searches of a generic PPB-tree
// bulk-loader on inputs without the bottom-update property), used by
// ablation baselines.
func (d *Disk) ReadCold(id BlockID) {
	d.lock()
	defer d.unlock()
	if _, ok := d.live[id]; !ok {
		panic(fmt.Sprintf("emio: access to unallocated block %d", id))
	}
	d.reads.Add(1)
}

// ReadSpan touches a logical node spanning the given number of words,
// stored in consecutive blocks starting at id. It charges one Read per
// constituent block. Structures whose nodes exceed one block (for
// example, 4b-element CPQA records with b = B) use this.
func (d *Disk) ReadSpan(id BlockID, words int) {
	d.lock()
	defer d.unlock()
	for i := 0; i < d.cfg.BlocksFor(words); i++ {
		d.touch(id+BlockID(i), false)
	}
}

// WriteSpan is the dirty counterpart of ReadSpan.
func (d *Disk) WriteSpan(id BlockID, words int) {
	d.lock()
	defer d.unlock()
	for i := 0; i < d.cfg.BlocksFor(words); i++ {
		d.touch(id+BlockID(i), true)
	}
}

// AllocSpan allocates ceil(words/B) consecutive blocks accounting a total
// of words words and returns the first id. The ids are consecutive.
func (d *Disk) AllocSpan(words int) BlockID {
	d.lock()
	defer d.unlock()
	n := d.cfg.BlocksFor(words)
	if n == 0 {
		n = 1
	}
	var first BlockID
	remaining := words
	for i := 0; i < n; i++ {
		w := remaining
		if w > d.cfg.B {
			w = d.cfg.B
		}
		if w < 1 {
			w = 1
		}
		id := d.allocWords(w)
		if i == 0 {
			first = id
		}
		remaining -= w
	}
	return first
}

// FreeSpan frees the consecutive blocks of a span allocated with
// AllocSpan.
func (d *Disk) FreeSpan(id BlockID, words int) {
	d.lock()
	defer d.unlock()
	for i := 0; i < d.cfg.BlocksFor(words); i++ {
		d.free(id + BlockID(i))
	}
}

// Pin marks a block as pinned in memory: it is made resident (charging a
// read if needed) and will never be evicted until unpinned. Pins nest.
// Pinned frames model the paper's critical records.
func (d *Disk) Pin(id BlockID) {
	d.lock()
	defer d.unlock()
	d.pin(id)
}

func (d *Disk) pin(id BlockID) {
	if _, ok := d.live[id]; !ok {
		panic(fmt.Sprintf("emio: Pin of unallocated block %d", id))
	}
	if f := d.frames.Get(uint64(id)); f != nil {
		d.frames.Pin(f)
		return
	}
	// Fetch and pin atomically (Admit with pins=1) so the new frame
	// cannot be chosen as its own eviction victim when the cache is
	// saturated with pins.
	d.reads.Add(1)
	d.frames.Admit(uint64(id), false, 1)
}

// Unpin releases one pin of a block.
func (d *Disk) Unpin(id BlockID) {
	d.lock()
	defer d.unlock()
	d.unpin(id)
}

func (d *Disk) unpin(id BlockID) {
	f := d.frames.Get(uint64(id))
	if f == nil || f.Pins == 0 {
		panic(fmt.Sprintf("emio: Unpin of unpinned block %d", id))
	}
	d.frames.Unpin(f)
}

// PinSpan pins every block of a multi-block node.
func (d *Disk) PinSpan(id BlockID, words int) {
	d.lock()
	defer d.unlock()
	for i := 0; i < d.cfg.BlocksFor(words); i++ {
		d.pin(id + BlockID(i))
	}
}

// UnpinSpan unpins every block of a multi-block node.
func (d *Disk) UnpinSpan(id BlockID, words int) {
	d.lock()
	defer d.unlock()
	for i := 0; i < d.cfg.BlocksFor(words); i++ {
		d.unpin(id + BlockID(i))
	}
}

// Admit marks a block resident (clean) without charging a read. It
// models data that is already in memory because a copy of its content
// was just read from elsewhere — e.g. a child queue's critical records
// admitted after reading the parent's packed representative block in the
// §4.2 dynamic structure. Use only when such a justification exists.
func (d *Disk) Admit(id BlockID) {
	d.lock()
	defer d.unlock()
	d.admitClean(id)
}

func (d *Disk) admitClean(id BlockID) {
	if _, ok := d.live[id]; !ok {
		panic(fmt.Sprintf("emio: Admit of unallocated block %d", id))
	}
	if d.frames.Get(uint64(id)) != nil {
		return
	}
	d.frames.Admit(uint64(id), false, 0)
}

// AdmitSpan admits every block of a multi-block node.
func (d *Disk) AdmitSpan(id BlockID, words int) {
	d.lock()
	defer d.unlock()
	for i := 0; i < d.cfg.BlocksFor(words); i++ {
		d.admitClean(id + BlockID(i))
	}
}

// DropCache evicts every unpinned frame (charging writes for dirty ones),
// producing a cold cache for worst-case measurements.
func (d *Disk) DropCache() {
	d.lock()
	defer d.unlock()
	d.dropCache()
}

func (d *Disk) dropCache() {
	d.frames.EvictAll()
}

// Resident reports whether the block currently occupies a cache frame.
func (d *Disk) Resident(id BlockID) bool {
	d.lock()
	defer d.unlock()
	return d.frames.Get(uint64(id)) != nil
}

// touch makes id resident, charging I/Os as needed, and moves it to the
// front of the LRU list.
func (d *Disk) touch(id BlockID, write bool) {
	if _, ok := d.live[id]; !ok {
		panic(fmt.Sprintf("emio: access to unallocated block %d", id))
	}
	if f := d.frames.Get(uint64(id)); f != nil {
		d.frames.Touch(f, write)
		return
	}
	d.reads.Add(1)
	d.frames.Admit(uint64(id), write, 0)
}

// Measure runs fn with a cold cache and returns the I/O stats it
// incurred. Pinned frames stay resident, matching the model where
// critical records live in memory across operations. The lock is not
// held across fn, so fn may use the disk freely (but concurrent traffic
// from other goroutines would be attributed to fn on a shared disk).
func (d *Disk) Measure(fn func()) Stats {
	d.DropCache()
	before := d.Stats()
	fn()
	return d.Stats().Sub(before)
}
