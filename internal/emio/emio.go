// Package emio simulates the external-memory (EM) model of Aggarwal and
// Vitter: a machine with M words of main memory and a disk of unbounded
// size divided into blocks of B consecutive words. The cost of an
// algorithm is the number of block transfers (I/Os) it performs; CPU time
// is free.
//
// Every data structure in this repository stores its nodes and records in
// emio blocks and routes each access through a Disk, so the I/O counters
// measure exactly the quantity the paper's theorems bound. The Disk keeps
// an LRU cache of M/B block frames; an access to a resident block is free,
// an access to a non-resident block costs one read I/O (plus one write I/O
// when the evicted frame is dirty). Blocks may be pinned, which models the
// paper's "critical records ... loaded in main memory" assumption used for
// the O(1/B) amortized bounds.
package emio

import (
	"fmt"
	"sync/atomic"
)

// BlockID identifies one allocated block on the simulated disk.
// The zero value is never a valid block.
type BlockID uint64

// Config fixes the machine parameters of the simulated EM machine.
type Config struct {
	// B is the number of words per disk block. Must be >= 1.
	B int
	// M is the number of words of main memory. The block cache holds
	// M/B frames. M < B disables caching entirely (every access is an
	// I/O), which models the strict worst case. Must be >= 0.
	M int
}

// DefaultConfig returns the configuration used by most experiments:
// 256-word blocks and enough memory for 64 frames.
func DefaultConfig() Config { return Config{B: 256, M: 256 * 64} }

// Frames returns the number of block frames the cache holds.
func (c Config) Frames() int {
	if c.B <= 0 {
		return 0
	}
	return c.M / c.B
}

// BlocksFor returns the number of B-word blocks needed to hold the given
// number of words, i.e. ceil(words/B) (at least 1 for words == 0 callers
// should not allocate at all).
func (c Config) BlocksFor(words int) int {
	if words <= 0 {
		return 0
	}
	return (words + c.B - 1) / c.B
}

// Stats counts the I/O traffic performed through a Disk since the last
// ResetStats.
type Stats struct {
	// Reads counts block transfers from disk to memory.
	Reads uint64
	// Writes counts block transfers from memory to disk (dirty
	// evictions and explicit flushes).
	Writes uint64
}

// IOs returns Reads + Writes.
func (s Stats) IOs() uint64 { return s.Reads + s.Writes }

// Sub returns the element-wise difference s - o. It is used to measure
// the cost of a region of code from two snapshots.
func (s Stats) Sub(o Stats) Stats {
	return Stats{Reads: s.Reads - o.Reads, Writes: s.Writes - o.Writes}
}

func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d ios=%d", s.Reads, s.Writes, s.IOs())
}

// frame is a cache slot holding one resident block.
type frame struct {
	id    BlockID
	dirty bool
	pins  int
	prev  *frame // LRU list; more recently used towards head
	next  *frame
}

// Disk is a simulated external-memory disk with an LRU cache.
// Disk is not safe for concurrent use; each simulation owns its Disk.
type Disk struct {
	cfg   Config
	stats Stats

	nextID uint64

	// live maps allocated blocks to their size in words (for space
	// accounting). Blocks are bookkeeping only; payload lives in the
	// data structures themselves because CPU and RAM of the *host* are
	// free in the model.
	live      map[BlockID]int
	liveWords int64
	peakWords int64

	// LRU cache of resident frames.
	resident map[BlockID]*frame
	head     *frame // most recently used
	tail     *frame // least recently used
	unpinned int    // resident frames with pins == 0
	capacity int    // total frames permitted
	pinned   int    // resident frames with pins > 0
}

// NewDisk returns a Disk for the given machine configuration.
func NewDisk(cfg Config) *Disk {
	if cfg.B < 1 {
		panic("emio: config.B must be >= 1")
	}
	if cfg.M < 0 {
		panic("emio: config.M must be >= 0")
	}
	return &Disk{
		cfg:      cfg,
		live:     make(map[BlockID]int),
		resident: make(map[BlockID]*frame),
		capacity: cfg.Frames(),
	}
}

// Config returns the machine parameters of the disk.
func (d *Disk) Config() Config { return d.cfg }

// Stats returns the I/O counters accumulated since the last ResetStats.
func (d *Disk) Stats() Stats { return d.stats }

// ResetStats zeroes the I/O counters. Resident and pinned blocks are
// unaffected, so a measurement region sees a warm cache unless DropCache
// is called as well.
func (d *Disk) ResetStats() { d.stats = Stats{} }

// LiveBlocks returns the number of currently allocated blocks; it is the
// space usage of all structures on this disk, in blocks.
func (d *Disk) LiveBlocks() int { return len(d.live) }

// LiveWords returns the number of allocated words.
func (d *Disk) LiveWords() int64 { return d.liveWords }

// PeakWords returns the high-water mark of allocated words.
func (d *Disk) PeakWords() int64 { return d.peakWords }

// Alloc allocates a new block of up to B words and returns its id. The
// block becomes resident and dirty (it was produced in memory and must be
// written back eventually); the read I/O is not charged because nothing
// is fetched.
func (d *Disk) Alloc() BlockID {
	return d.AllocWords(d.cfg.B)
}

// AllocWords allocates a block accounted as holding the given number of
// words (clamped to [1, B]). Structures that pack less than a full block
// use this for precise space accounting.
func (d *Disk) AllocWords(words int) BlockID {
	if words < 1 {
		words = 1
	}
	if words > d.cfg.B {
		words = d.cfg.B
	}
	id := BlockID(atomic.AddUint64(&d.nextID, 1))
	d.live[id] = words
	d.liveWords += int64(words)
	if d.liveWords > d.peakWords {
		d.peakWords = d.liveWords
	}
	d.admit(id, true)
	return id
}

// Free releases a block. A resident frame is discarded without a
// write-back (the data is dead).
func (d *Disk) Free(id BlockID) {
	words, ok := d.live[id]
	if !ok {
		panic(fmt.Sprintf("emio: Free of unknown block %d", id))
	}
	delete(d.live, id)
	d.liveWords -= int64(words)
	if f, ok := d.resident[id]; ok {
		if f.pins > 0 {
			d.pinned--
		} else {
			d.unpinned--
		}
		d.unlink(f)
		delete(d.resident, id)
	}
}

// Read touches a block for reading. If the block is not resident one read
// I/O is charged and the block is brought into the cache (possibly
// evicting the least recently used unpinned frame, charging a write I/O
// if it was dirty).
func (d *Disk) Read(id BlockID) {
	d.touch(id, false)
}

// Write touches a block for writing. Same residency rules as Read; the
// frame is additionally marked dirty so its eventual eviction costs a
// write I/O.
func (d *Disk) Write(id BlockID) {
	d.touch(id, true)
}

// ReadCold charges one read I/O unconditionally, bypassing the cache and
// leaving residency unchanged. It models an access pattern with no
// locality (for example, the located-leaf searches of a generic PPB-tree
// bulk-loader on inputs without the bottom-update property), used by
// ablation baselines.
func (d *Disk) ReadCold(id BlockID) {
	if _, ok := d.live[id]; !ok {
		panic(fmt.Sprintf("emio: access to unallocated block %d", id))
	}
	d.stats.Reads++
}

// ReadSpan touches a logical node spanning the given number of words,
// stored in consecutive blocks starting at id. It charges one Read per
// constituent block. Structures whose nodes exceed one block (for
// example, 4b-element CPQA records with b = B) use this.
func (d *Disk) ReadSpan(id BlockID, words int) {
	for i := 0; i < d.cfg.BlocksFor(words); i++ {
		d.Read(id + BlockID(i))
	}
}

// WriteSpan is the dirty counterpart of ReadSpan.
func (d *Disk) WriteSpan(id BlockID, words int) {
	for i := 0; i < d.cfg.BlocksFor(words); i++ {
		d.Write(id + BlockID(i))
	}
}

// AllocSpan allocates ceil(words/B) consecutive blocks accounting a total
// of words words and returns the first id. The ids are consecutive.
func (d *Disk) AllocSpan(words int) BlockID {
	n := d.cfg.BlocksFor(words)
	if n == 0 {
		n = 1
	}
	var first BlockID
	remaining := words
	for i := 0; i < n; i++ {
		w := remaining
		if w > d.cfg.B {
			w = d.cfg.B
		}
		if w < 1 {
			w = 1
		}
		id := d.AllocWords(w)
		if i == 0 {
			first = id
		}
		remaining -= w
	}
	return first
}

// FreeSpan frees the consecutive blocks of a span allocated with
// AllocSpan.
func (d *Disk) FreeSpan(id BlockID, words int) {
	for i := 0; i < d.cfg.BlocksFor(words); i++ {
		d.Free(id + BlockID(i))
	}
}

// Pin marks a block as pinned in memory: it is made resident (charging a
// read if needed) and will never be evicted until unpinned. Pins nest.
// Pinned frames model the paper's critical records.
func (d *Disk) Pin(id BlockID) {
	if _, ok := d.live[id]; !ok {
		panic(fmt.Sprintf("emio: Pin of unallocated block %d", id))
	}
	if f, ok := d.resident[id]; ok {
		d.unlink(f)
		d.pushFront(f)
		if f.pins == 0 {
			d.unpinned--
			d.pinned++
		}
		f.pins++
		return
	}
	// Fetch and pin atomically so the new frame cannot be chosen as
	// its own eviction victim when the cache is saturated with pins.
	d.stats.Reads++
	f := &frame{id: id, pins: 1}
	d.pushFront(f)
	d.resident[id] = f
	d.pinned++
	for len(d.resident) > d.capacity {
		victim := d.lruUnpinned()
		if victim == nil {
			break
		}
		d.evict(victim)
	}
}

// Unpin releases one pin of a block.
func (d *Disk) Unpin(id BlockID) {
	f, ok := d.resident[id]
	if !ok || f.pins == 0 {
		panic(fmt.Sprintf("emio: Unpin of unpinned block %d", id))
	}
	f.pins--
	if f.pins == 0 {
		d.pinned--
		d.unpinned++
	}
}

// PinSpan pins every block of a multi-block node.
func (d *Disk) PinSpan(id BlockID, words int) {
	for i := 0; i < d.cfg.BlocksFor(words); i++ {
		d.Pin(id + BlockID(i))
	}
}

// UnpinSpan unpins every block of a multi-block node.
func (d *Disk) UnpinSpan(id BlockID, words int) {
	for i := 0; i < d.cfg.BlocksFor(words); i++ {
		d.Unpin(id + BlockID(i))
	}
}

// Admit marks a block resident (clean) without charging a read. It
// models data that is already in memory because a copy of its content
// was just read from elsewhere — e.g. a child queue's critical records
// admitted after reading the parent's packed representative block in the
// §4.2 dynamic structure. Use only when such a justification exists.
func (d *Disk) Admit(id BlockID) {
	if _, ok := d.live[id]; !ok {
		panic(fmt.Sprintf("emio: Admit of unallocated block %d", id))
	}
	if _, ok := d.resident[id]; ok {
		return
	}
	d.admit(id, false)
}

// AdmitSpan admits every block of a multi-block node.
func (d *Disk) AdmitSpan(id BlockID, words int) {
	for i := 0; i < d.cfg.BlocksFor(words); i++ {
		d.Admit(id + BlockID(i))
	}
}

// DropCache evicts every unpinned frame (charging writes for dirty ones),
// producing a cold cache for worst-case measurements.
func (d *Disk) DropCache() {
	for f := d.tail; f != nil; {
		prev := f.prev
		if f.pins == 0 {
			d.evict(f)
		}
		f = prev
	}
}

// Resident reports whether the block currently occupies a cache frame.
func (d *Disk) Resident(id BlockID) bool {
	_, ok := d.resident[id]
	return ok
}

// touch makes id resident, charging I/Os as needed, and moves it to the
// front of the LRU list.
func (d *Disk) touch(id BlockID, write bool) {
	if _, ok := d.live[id]; !ok {
		panic(fmt.Sprintf("emio: access to unallocated block %d", id))
	}
	if f, ok := d.resident[id]; ok {
		d.unlink(f)
		d.pushFront(f)
		if write {
			f.dirty = true
		}
		return
	}
	d.stats.Reads++
	d.admit(id, write)
}

// admit inserts a (new or fetched) frame for id, evicting if over
// capacity.
func (d *Disk) admit(id BlockID, dirty bool) {
	f := &frame{id: id, dirty: dirty}
	d.pushFront(f)
	d.resident[id] = f
	d.unpinned++
	for len(d.resident) > d.capacity {
		victim := d.lruUnpinned()
		if victim == nil {
			// Everything is pinned; the cache is allowed to
			// overflow only by pinned frames, mirroring the
			// paper's assumption M = Ω(ℓb).
			break
		}
		d.evict(victim)
	}
}

// lruUnpinned returns the least recently used unpinned frame, or nil.
func (d *Disk) lruUnpinned() *frame {
	for f := d.tail; f != nil; f = f.prev {
		if f.pins == 0 {
			return f
		}
	}
	return nil
}

func (d *Disk) evict(f *frame) {
	if f.dirty {
		d.stats.Writes++
	}
	d.unlink(f)
	delete(d.resident, f.id)
	d.unpinned--
}

func (d *Disk) pushFront(f *frame) {
	f.prev = nil
	f.next = d.head
	if d.head != nil {
		d.head.prev = f
	}
	d.head = f
	if d.tail == nil {
		d.tail = f
	}
}

func (d *Disk) unlink(f *frame) {
	if f.prev != nil {
		f.prev.next = f.next
	} else {
		d.head = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else {
		d.tail = f.prev
	}
	f.prev, f.next = nil, nil
}

// Measure runs fn with a cold cache and returns the I/O stats it
// incurred. Pinned frames stay resident, matching the model where
// critical records live in memory across operations.
func (d *Disk) Measure(fn func()) Stats {
	d.DropCache()
	before := d.stats
	fn()
	return d.stats.Sub(before)
}
