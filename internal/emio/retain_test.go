package emio

import (
	"sync"
	"testing"
)

// TestRetainDefersFree pins the core contract: a block freed while a
// retention is open stays readable, and is released when the retention
// drops.
func TestRetainDefersFree(t *testing.T) {
	d := NewDisk(Config{B: 4, M: 16})
	id := d.Alloc()
	r := d.RetainFrees()
	d.Free(id)
	if got := d.DeferredBlocks(); got != 1 {
		t.Fatalf("DeferredBlocks = %d, want 1", got)
	}
	// The free is deferred: reading the block must not panic, and the
	// block still counts as live.
	d.Read(id)
	if d.LiveBlocks() != 1 {
		t.Fatalf("LiveBlocks = %d, want 1 while deferred", d.LiveBlocks())
	}
	r.Release()
	if got := d.DeferredBlocks(); got != 0 {
		t.Fatalf("DeferredBlocks = %d after release, want 0", got)
	}
	if d.LiveBlocks() != 0 {
		t.Fatalf("LiveBlocks = %d after release, want 0", d.LiveBlocks())
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("read of reclaimed block did not panic")
		}
	}()
	d.Read(id)
}

// TestRetainEpochOrdering verifies the epoch rule: a free is held
// exactly by the retentions opened BEFORE it, not by ones opened after.
func TestRetainEpochOrdering(t *testing.T) {
	d := NewDisk(Config{B: 4, M: 16})
	early := d.Alloc()
	late := d.Alloc()

	r1 := d.RetainFrees()
	d.Free(early) // epoch 1: held by r1 only
	r2 := d.RetainFrees()
	d.Free(late) // epoch 2: held by r1 and r2

	// r2 cannot be referencing early (it was freed before r2 opened),
	// but releasing r2 must free NOTHING: r1 predates both frees.
	r2.Release()
	if got := d.DeferredBlocks(); got != 2 {
		t.Fatalf("DeferredBlocks = %d after releasing r2, want 2 (r1 still open)", got)
	}
	r1.Release()
	if got := d.DeferredBlocks(); got != 0 {
		t.Fatalf("DeferredBlocks = %d after releasing r1, want 0", got)
	}
	if d.LiveBlocks() != 0 {
		t.Fatalf("LiveBlocks = %d, want 0", d.LiveBlocks())
	}
}

// TestRetainPartialDrain: releasing the oldest retention frees the
// blocks only newer retentions postdate, and keeps the rest.
func TestRetainPartialDrain(t *testing.T) {
	d := NewDisk(Config{B: 4, M: 16})
	a := d.Alloc()
	b := d.Alloc()

	r1 := d.RetainFrees()
	d.Free(a) // epoch 1
	r2 := d.RetainFrees()
	d.Free(b) // epoch 2
	r1.Release()
	// a's free (epoch 1) predates r2 (seq 2)? No: r2 opened AFTER a was
	// freed, so r2 cannot reference a — a is reclaimed. b was freed
	// while r2 was open — b stays.
	if got := d.DeferredBlocks(); got != 1 {
		t.Fatalf("DeferredBlocks = %d after releasing r1, want 1", got)
	}
	if d.LiveBlocks() != 1 {
		t.Fatalf("LiveBlocks = %d, want 1 (only b held)", d.LiveBlocks())
	}
	r2.Release()
	if d.LiveBlocks() != 0 || d.DeferredBlocks() != 0 {
		t.Fatalf("blocks leaked after all releases: live=%d deferred=%d",
			d.LiveBlocks(), d.DeferredBlocks())
	}
	_ = a
	_ = b
}

// TestRetainReleaseIdempotent: double Release is a no-op.
func TestRetainReleaseIdempotent(t *testing.T) {
	d := NewDisk(Config{B: 4, M: 16})
	id := d.Alloc()
	r1 := d.RetainFrees()
	r2 := d.RetainFrees()
	d.Free(id)
	r1.Release()
	r1.Release() // must not disturb r2's hold
	if got := d.DeferredBlocks(); got != 1 {
		t.Fatalf("DeferredBlocks = %d, want 1 (r2 still open)", got)
	}
	r2.Release()
	if got := d.DeferredBlocks(); got != 0 {
		t.Fatalf("DeferredBlocks = %d, want 0", got)
	}
}

// TestRetainDoubleFreePanics: freeing an already-deferred block is the
// same model violation as any double free.
func TestRetainDoubleFreePanics(t *testing.T) {
	d := NewDisk(Config{B: 4, M: 16})
	id := d.Alloc()
	r := d.RetainFrees()
	defer r.Release()
	d.Free(id)
	defer func() {
		if recover() == nil {
			t.Fatalf("double free of deferred block did not panic")
		}
	}()
	d.Free(id)
}

// TestRetainSpan: FreeSpan defers every constituent block and releases
// them together.
func TestRetainSpan(t *testing.T) {
	d := NewDisk(Config{B: 4, M: 16})
	span := d.AllocSpan(10) // 3 blocks at B=4
	r := d.RetainFrees()
	d.FreeSpan(span, 10)
	if got := d.DeferredBlocks(); got != 3 {
		t.Fatalf("DeferredBlocks = %d, want 3", got)
	}
	d.ReadSpan(span, 10) // still readable
	r.Release()
	if d.LiveBlocks() != 0 {
		t.Fatalf("LiveBlocks = %d, want 0", d.LiveBlocks())
	}
}

// TestRetainConcurrent hammers retentions, frees and reads on a guarded
// disk from many goroutines; run with -race. At quiescence nothing may
// remain deferred.
func TestRetainConcurrent(t *testing.T) {
	d := NewConcurrentDisk(Config{B: 4, M: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := d.Alloc()
				r := d.RetainFrees()
				d.Free(id)
				d.Read(id) // deferred: must stay readable
				r.Release()
			}
		}()
	}
	wg.Wait()
	if got := d.DeferredBlocks(); got != 0 {
		t.Fatalf("DeferredBlocks = %d at quiescence, want 0", got)
	}
	if got := d.Retained(); got != 0 {
		t.Fatalf("Retained = %d at quiescence, want 0", got)
	}
	if d.LiveBlocks() != 0 {
		t.Fatalf("LiveBlocks = %d at quiescence, want 0", d.LiveBlocks())
	}
}
