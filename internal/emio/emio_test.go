package emio

import (
	"testing"
	"testing/quick"
)

func TestConfigFrames(t *testing.T) {
	tests := []struct {
		cfg  Config
		want int
	}{
		{Config{B: 256, M: 256 * 64}, 64},
		{Config{B: 256, M: 255}, 0},
		{Config{B: 1, M: 10}, 10},
		{Config{B: 4, M: 0}, 0},
	}
	for _, tc := range tests {
		if got := tc.cfg.Frames(); got != tc.want {
			t.Errorf("Frames(%+v) = %d, want %d", tc.cfg, got, tc.want)
		}
	}
}

func TestConfigBlocksFor(t *testing.T) {
	cfg := Config{B: 8, M: 0}
	tests := []struct{ words, want int }{
		{0, 0}, {1, 1}, {8, 1}, {9, 2}, {16, 2}, {17, 3},
	}
	for _, tc := range tests {
		if got := cfg.BlocksFor(tc.words); got != tc.want {
			t.Errorf("BlocksFor(%d) = %d, want %d", tc.words, got, tc.want)
		}
	}
}

func TestAllocChargesNoRead(t *testing.T) {
	d := NewDisk(Config{B: 4, M: 16})
	id := d.Alloc()
	if got := d.Stats().Reads; got != 0 {
		t.Fatalf("Alloc charged %d reads, want 0", got)
	}
	if !d.Resident(id) {
		t.Fatal("freshly allocated block should be resident")
	}
}

func TestReadMissAndHit(t *testing.T) {
	d := NewDisk(Config{B: 4, M: 8}) // 2 frames
	a := d.Alloc()
	b := d.Alloc()
	c := d.Alloc() // evicts a (dirty) -> 1 write
	if got := d.Stats().Writes; got != 1 {
		t.Fatalf("expected 1 write from dirty eviction, got %d", got)
	}
	d.ResetStats()
	d.Read(b) // hit
	d.Read(c) // hit
	if got := d.Stats().Reads; got != 0 {
		t.Fatalf("cache hits charged %d reads, want 0", got)
	}
	d.Read(a) // miss
	if got := d.Stats().Reads; got != 1 {
		t.Fatalf("miss charged %d reads, want 1", got)
	}
}

func TestCleanEvictionChargesNoWrite(t *testing.T) {
	d := NewDisk(Config{B: 4, M: 4}) // 1 frame
	a := d.Alloc()
	_ = d.Alloc() // evicts a, dirty -> write
	d.ResetStats()
	d.Read(a) // fetch a (clean), evicting b (dirty -> 1 write)
	_ = d.Alloc()
	// Read(a) evicts dirty b (1 write); Alloc evicts clean a (free).
	if got := d.Stats().Writes; got != 1 {
		t.Fatalf("writes = %d, want 1 (dirty b only)", got)
	}
}

func TestCleanEvictionExact(t *testing.T) {
	d := NewDisk(Config{B: 4, M: 4}) // 1 frame
	a := d.Alloc()
	d.DropCache() // a written back once
	d.ResetStats()
	d.Read(a)     // miss: 1 read, a clean
	d.DropCache() // clean eviction: no write
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 0 {
		t.Fatalf("stats = %v, want reads=1 writes=0", st)
	}
}

func TestPinPreventsEviction(t *testing.T) {
	d := NewDisk(Config{B: 4, M: 8}) // 2 frames
	a := d.Alloc()
	d.Pin(a)
	for i := 0; i < 10; i++ {
		d.Alloc()
	}
	if !d.Resident(a) {
		t.Fatal("pinned block was evicted")
	}
	d.ResetStats()
	d.Read(a)
	if got := d.Stats().Reads; got != 0 {
		t.Fatalf("pinned block read charged %d I/Os, want 0", got)
	}
	d.Unpin(a)
	d.DropCache()
	if d.Resident(a) {
		t.Fatal("unpinned block survived DropCache")
	}
}

func TestPinNesting(t *testing.T) {
	d := NewDisk(Config{B: 4, M: 8})
	a := d.Alloc()
	d.Pin(a)
	d.Pin(a)
	d.Unpin(a)
	d.DropCache()
	if !d.Resident(a) {
		t.Fatal("block with one remaining pin was evicted")
	}
	d.Unpin(a)
}

func TestFreeReleasesSpace(t *testing.T) {
	d := NewDisk(Config{B: 4, M: 16})
	a := d.AllocWords(3)
	if d.LiveWords() != 3 {
		t.Fatalf("LiveWords = %d, want 3", d.LiveWords())
	}
	b := d.AllocWords(4)
	if d.LiveBlocks() != 2 {
		t.Fatalf("LiveBlocks = %d, want 2", d.LiveBlocks())
	}
	d.Free(a)
	d.Free(b)
	if d.LiveWords() != 0 || d.LiveBlocks() != 0 {
		t.Fatalf("after Free: words=%d blocks=%d, want 0/0", d.LiveWords(), d.LiveBlocks())
	}
	if d.PeakWords() != 7 {
		t.Fatalf("PeakWords = %d, want 7", d.PeakWords())
	}
}

func TestSpanAccounting(t *testing.T) {
	d := NewDisk(Config{B: 4, M: 64})
	id := d.AllocSpan(10) // 3 blocks: 4+4+2 words
	if d.LiveBlocks() != 3 || d.LiveWords() != 10 {
		t.Fatalf("span alloc: blocks=%d words=%d, want 3/10", d.LiveBlocks(), d.LiveWords())
	}
	d.DropCache()
	d.ResetStats()
	d.ReadSpan(id, 10)
	if got := d.Stats().Reads; got != 3 {
		t.Fatalf("ReadSpan charged %d reads, want 3", got)
	}
	d.FreeSpan(id, 10)
	if d.LiveBlocks() != 0 {
		t.Fatalf("FreeSpan left %d blocks", d.LiveBlocks())
	}
}

func TestMeasureColdCache(t *testing.T) {
	d := NewDisk(Config{B: 4, M: 64})
	ids := make([]BlockID, 8)
	for i := range ids {
		ids[i] = d.Alloc()
	}
	st := d.Measure(func() {
		for _, id := range ids {
			d.Read(id)
		}
	})
	if st.Reads != 8 {
		t.Fatalf("cold measure reads = %d, want 8", st.Reads)
	}
	// Second measurement is also cold.
	st = d.Measure(func() {
		for _, id := range ids {
			d.Read(id)
		}
	})
	if st.Reads != 8 {
		t.Fatalf("second cold measure reads = %d, want 8", st.Reads)
	}
}

func TestMeasureKeepsPins(t *testing.T) {
	d := NewDisk(Config{B: 4, M: 64})
	a := d.Alloc()
	d.Pin(a)
	st := d.Measure(func() { d.Read(a) })
	if st.Reads != 0 {
		t.Fatalf("pinned block cost %d reads under Measure, want 0", st.Reads)
	}
	d.Unpin(a)
}

func TestZeroMemoryEveryAccessIsIO(t *testing.T) {
	d := NewDisk(Config{B: 4, M: 0})
	a := d.Alloc()
	d.ResetStats()
	for i := 0; i < 5; i++ {
		d.Read(a)
	}
	if got := d.Stats().Reads; got != 5 {
		t.Fatalf("with M=0 expected 5 reads, got %d", got)
	}
}

func TestAccessUnallocatedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on access to unallocated block")
		}
	}()
	d := NewDisk(Config{B: 4, M: 16})
	d.Read(BlockID(999))
}

func TestFreeUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Free of unknown block")
		}
	}()
	d := NewDisk(Config{B: 4, M: 16})
	d.Free(BlockID(999))
}

func TestUnpinUnpinnedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Unpin of unpinned block")
		}
	}()
	d := NewDisk(Config{B: 4, M: 16})
	a := d.Alloc()
	d.Unpin(a)
}

func TestStatsSub(t *testing.T) {
	a := Stats{Reads: 10, Writes: 4}
	b := Stats{Reads: 3, Writes: 1}
	got := a.Sub(b)
	if got.Reads != 7 || got.Writes != 3 || got.IOs() != 10 {
		t.Fatalf("Sub = %+v", got)
	}
}

// Property: the LRU cache never holds more unpinned frames than capacity,
// and hit/miss accounting matches a reference simulation.
func TestQuickLRUMatchesReference(t *testing.T) {
	f := func(ops []uint8) bool {
		cfg := Config{B: 2, M: 8} // 4 frames
		d := NewDisk(cfg)
		var ids []BlockID
		// reference: list of resident ids, most recent first
		type refFrame struct {
			id    BlockID
			dirty bool
		}
		var ref []refFrame
		var refReads, refWrites uint64
		refTouch := func(id BlockID, write bool) {
			for i, f := range ref {
				if f.id == id {
					ref = append(ref[:i], ref[i+1:]...)
					if write {
						f.dirty = true
					}
					ref = append([]refFrame{f}, ref...)
					return
				}
			}
			refReads++
			ref = append([]refFrame{{id: id, dirty: write}}, ref...)
			for len(ref) > cfg.Frames() {
				victim := ref[len(ref)-1]
				if victim.dirty {
					refWrites++
				}
				ref = ref[:len(ref)-1]
			}
		}
		for _, op := range ops {
			switch op % 4 {
			case 0:
				id := d.Alloc()
				ids = append(ids, id)
				// Alloc admits dirty without read.
				ref = append([]refFrame{{id: id, dirty: true}}, ref...)
				for len(ref) > cfg.Frames() {
					victim := ref[len(ref)-1]
					if victim.dirty {
						refWrites++
					}
					ref = ref[:len(ref)-1]
				}
			case 1, 2:
				if len(ids) == 0 {
					continue
				}
				id := ids[int(op)%len(ids)]
				d.Read(id)
				refTouch(id, false)
			case 3:
				if len(ids) == 0 {
					continue
				}
				id := ids[int(op)%len(ids)]
				d.Write(id)
				refTouch(id, true)
			}
		}
		st := d.Stats()
		return st.Reads == refReads && st.Writes == refWrites
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
