package emio

import (
	"sync"
	"testing"
)

// TestGuardedAccountingMatchesUnguarded runs one deterministic
// single-threaded op sequence on both disk modes: the guarded mode must
// change synchronization only, never the I/O accounting.
func TestGuardedAccountingMatchesUnguarded(t *testing.T) {
	cfg := Config{B: 8, M: 8 * 4}
	run := func(d *Disk) Stats {
		var ids []BlockID
		for i := 0; i < 20; i++ {
			ids = append(ids, d.AllocWords(5))
		}
		for i, id := range ids {
			d.Write(id)
			d.Read(ids[(i+7)%len(ids)])
		}
		d.Pin(ids[0])
		d.DropCache()
		d.Unpin(ids[0])
		span := d.AllocSpan(3 * 8)
		d.ReadSpan(span, 3*8)
		d.WriteSpan(span, 3*8)
		d.FreeSpan(span, 3*8)
		for _, id := range ids {
			d.Free(id)
		}
		return d.Stats()
	}
	plain := run(NewDisk(cfg))
	guarded := run(NewConcurrentDisk(cfg))
	if plain != guarded {
		t.Fatalf("guarded accounting %v != unguarded %v", guarded, plain)
	}
	if NewConcurrentDisk(cfg).Guarded() == false || NewDisk(cfg).Guarded() == true {
		t.Fatal("Guarded() flag wrong")
	}
}

// TestConcurrentDiskStress hammers one guarded disk from many goroutines
// — private block lifecycles plus concurrent stats/space polling — and
// is meaningful chiefly under -race (the CI race job). The final
// bookkeeping must balance.
func TestConcurrentDiskStress(t *testing.T) {
	// Two cache frames only, so the three-block working set of each
	// round forces evictions (hence read and write traffic).
	d := NewConcurrentDisk(Config{B: 16, M: 16 * 2})
	const workers = 8
	const rounds = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				id := d.AllocWords(9)
				d.Write(id)
				d.Read(id)
				d.Pin(id)
				d.Unpin(id)
				span := d.AllocSpan(2 * 16)
				d.WriteSpan(span, 2*16)
				d.ReadSpan(span, 2*16)
				d.FreeSpan(span, 2*16)
				d.Free(id)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			_ = d.Stats()
			_ = d.LiveBlocks()
			_ = d.LiveWords()
		}
	}()
	wg.Wait()
	if d.LiveBlocks() != 0 || d.LiveWords() != 0 {
		t.Fatalf("leaked: %d blocks, %d words", d.LiveBlocks(), d.LiveWords())
	}
	if d.Stats().IOs() == 0 {
		t.Fatal("stress performed no I/Os")
	}
	d.ResetStats()
	if d.Stats().IOs() != 0 {
		t.Fatal("ResetStats did not zero the counters")
	}
}
