// Package pqa provides the classic internal-memory priority queue with
// attrition of Sundar (the paper's [36]) in its semantic form: a
// structure over an ordered set supporting FindMin, DeleteMin and
// InsertAndAttrite, where inserting e removes every element >= e.
//
// The content of a PQA is always a strictly increasing sequence in
// insertion order, so the structure is a monotone deque. This
// implementation takes the monotone-deque form directly: O(1) amortized
// time per operation (Sundar's contribution was making the attrition
// incremental for O(1) *worst-case* time; the worst-case-I/O variant
// with catenation is package cpqa, the paper's §4.1). It serves as the
// semantic oracle for cpqa's differential tests and as the in-memory
// baseline of experiment E8.
package pqa

// Elem is a PQA element: ordered by Key, with an auxiliary payload word
// (the dynamic skyline structures store x there).
type Elem struct {
	Key int64
	Aux int64
}

// Less orders elements by key.
func Less(a, b Elem) bool { return a.Key < b.Key }

// PQA is a priority queue with attrition. The zero value is an empty
// queue ready for use.
type PQA struct {
	// items is strictly increasing by Key; items[0] is the minimum.
	items []Elem
}

// New returns an empty PQA.
func New() *PQA { return &PQA{} }

// Len returns the number of (non-attrited) elements.
func (q *PQA) Len() int { return len(q.items) }

// FindMin returns the minimum element; ok is false when the queue is
// empty.
func (q *PQA) FindMin() (Elem, bool) {
	if len(q.items) == 0 {
		return Elem{}, false
	}
	return q.items[0], true
}

// DeleteMin removes and returns the minimum element.
func (q *PQA) DeleteMin() (Elem, bool) {
	if len(q.items) == 0 {
		return Elem{}, false
	}
	e := q.items[0]
	q.items = q.items[1:]
	return e, true
}

// InsertAndAttrite appends e, removing every element with key >= e.Key.
// Amortized O(1): each element is removed at most once.
func (q *PQA) InsertAndAttrite(e Elem) {
	for len(q.items) > 0 && q.items[len(q.items)-1].Key >= e.Key {
		q.items = q.items[:len(q.items)-1]
	}
	q.items = append(q.items, e)
}

// CatenateAndAttrite appends the contents of other to q, attriting every
// element of q that is >= other's minimum. other is consumed.
// This is the semantic reference for cpqa.CatenateAndAttrite.
func (q *PQA) CatenateAndAttrite(other *PQA) {
	if other.Len() == 0 {
		return
	}
	m := other.items[0]
	for len(q.items) > 0 && q.items[len(q.items)-1].Key >= m.Key {
		q.items = q.items[:len(q.items)-1]
	}
	q.items = append(q.items, other.items...)
	other.items = nil
}

// Items returns the current contents in queue order (a strictly
// increasing sequence). The returned slice is a copy.
func (q *PQA) Items() []Elem {
	return append([]Elem(nil), q.items...)
}

// Clone returns an independent copy.
func (q *PQA) Clone() *PQA {
	return &PQA{items: append([]Elem(nil), q.items...)}
}
