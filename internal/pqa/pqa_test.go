package pqa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	q := New()
	if _, ok := q.FindMin(); ok {
		t.Error("FindMin on empty queue")
	}
	for _, k := range []int64{50, 30, 70, 20, 60} {
		q.InsertAndAttrite(Elem{Key: k})
	}
	// 20 attrited 30/70; 60 > 20 kept: content = [20, 60].
	if got := q.Items(); len(got) != 2 || got[0].Key != 20 || got[1].Key != 60 {
		t.Fatalf("Items = %v", got)
	}
	if e, ok := q.DeleteMin(); !ok || e.Key != 20 {
		t.Fatalf("DeleteMin = %v,%t", e, ok)
	}
	if e, ok := q.DeleteMin(); !ok || e.Key != 60 {
		t.Fatalf("DeleteMin = %v,%t", e, ok)
	}
	if _, ok := q.DeleteMin(); ok {
		t.Error("DeleteMin on drained queue")
	}
}

// TestQuickContentIsIncreasingSuffix: after any insert sequence the
// content equals the strictly increasing suffix-minima subsequence.
func TestQuickContentIsIncreasingSuffix(t *testing.T) {
	f := func(keys []int16) bool {
		q := New()
		for _, k := range keys {
			q.InsertAndAttrite(Elem{Key: int64(k)})
		}
		// Oracle: e survives iff it is < everything after it.
		var want []int64
		for i, k := range keys {
			ok := true
			for _, k2 := range keys[i+1:] {
				if int64(k2) <= int64(k) {
					ok = false
					break
				}
			}
			if ok {
				want = append(want, int64(k))
			}
		}
		got := q.Items()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Key != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCatenateAndAttrite(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		q1, q2 := New(), New()
		var all []int64
		for i := 0; i < rng.Intn(40); i++ {
			k := rng.Int63n(1000)
			q1.InsertAndAttrite(Elem{Key: k})
			all = append(all, k)
		}
		for i := 0; i < rng.Intn(40); i++ {
			k := rng.Int63n(1000)
			q2.InsertAndAttrite(Elem{Key: k})
			all = append(all, k)
		}
		q1.CatenateAndAttrite(q2)
		// Oracle: process the whole arrival sequence in one queue.
		want := New()
		for _, k := range all {
			want.InsertAndAttrite(Elem{Key: k})
		}
		g, w := q1.Items(), want.Items()
		if len(g) != len(w) {
			t.Fatalf("catenate mismatch: %v vs %v", g, w)
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("catenate mismatch at %d", i)
			}
		}
		if q2.Len() != 0 {
			t.Fatal("catenate left elements in consumed queue")
		}
	}
}

func TestClone(t *testing.T) {
	q := New()
	q.InsertAndAttrite(Elem{Key: 5})
	c := q.Clone()
	c.InsertAndAttrite(Elem{Key: 1})
	if q.Len() != 1 || c.Len() != 1 {
		t.Fatal("clone not independent")
	}
	if e, _ := q.FindMin(); e.Key != 5 {
		t.Fatal("original mutated by clone op")
	}
}
