package lowerbound

import (
	"testing"

	"repro/internal/geom"
)

func TestRhoBasics(t *testing.T) {
	// ω=4, λ=2 (Figure 10): ρ(i) reverses base-4 digits and complements
	// against 3. i = 0 = (00)₄ -> (33)₄ = 15.
	if got := Rho(4, 2, 0); got != 15 {
		t.Errorf("Rho(4,2,0) = %d, want 15", got)
	}
	// i = 1 = (01)₄ -> reverse (10)₄ -> complement (23)₄ = 11.
	if got := Rho(4, 2, 1); got != 11 {
		t.Errorf("Rho(4,2,1) = %d, want 11", got)
	}
	// ρ is a permutation.
	seen := map[int64]bool{}
	for i := int64(0); i < 16; i++ {
		v := Rho(4, 2, i)
		if v < 0 || v >= 16 || seen[v] {
			t.Fatalf("Rho not a permutation at %d -> %d", i, v)
		}
		seen[v] = true
	}
}

// TestFigure10 reproduces the paper's example instance: ω=4, λ=2 gives
// 16 points and 8 queries of output size exactly 4 with pairwise overlap
// at most 1.
func TestFigure10(t *testing.T) {
	pts := Input(4, 2)
	if len(pts) != 16 {
		t.Fatalf("|P| = %d, want 16", len(pts))
	}
	qs := Queries(4, 2)
	if len(qs) != 8 { // λ·ω^{λ-1} = 2·4
		t.Fatalf("|G| = %d, want 8", len(qs))
	}
	ok, worst := Verify(4, pts, qs)
	if !ok {
		t.Fatalf("workload not (2,ω)-favorable: worst pair overlap %d", worst)
	}
}

func TestFavorableAcrossParameters(t *testing.T) {
	cases := []struct{ omega, lambda int }{
		{2, 2}, {2, 4}, {3, 3}, {4, 3}, {8, 2}, {5, 3},
	}
	for _, c := range cases {
		pts := Input(c.omega, c.lambda)
		qs := Queries(c.omega, c.lambda)
		wantQ := c.lambda * int(pow(c.omega, c.lambda-1))
		if len(qs) != wantQ {
			t.Errorf("ω=%d λ=%d: %d queries, want %d", c.omega, c.lambda, len(qs), wantQ)
		}
		ok, worst := Verify(c.omega, pts, qs)
		if !ok {
			t.Errorf("ω=%d λ=%d: not favorable (overlap %d)", c.omega, c.lambda, worst)
		}
	}
}

func TestInputGeneralPosition(t *testing.T) {
	pts := Input(4, 3)
	if !geom.IsGeneralPosition(pts) {
		t.Fatal("lower-bound input not in general position")
	}
}
