// Package lowerbound constructs the adversarial workload of Lemma 8 and
// Figure 10: for integers ω, λ ≥ 1, a set P of ω^λ points and a set G of
// λ·ω^{λ−1} anti-dominance queries such that every query reports exactly
// ω points and no two queries share more than one point — a
// (2, ω)-favorable workload in the sense of Chazelle–Liu. Theorem 5
// feeds it to the indexability argument to show that any linear-size
// structure needs Ω((n/B)^ε + k/B) I/Os for anti-dominance (hence
// left-open and 4-sided) queries; experiment E4 runs the Theorem 6
// structure on it and checks the measured polynomial growth.
//
// Construction: write 0 ≤ i < ω^λ in base ω; ρ_ω(i) reverses the digits
// and complements each against ω−1. P₀ = {(i, ρ_ω(i))}. Queries come
// from a full trie of depth λ over the ρ values: a node at depth d
// groups its subtree's points — sorted by y — by picking every
// ω^{λ−d−1}-th element. Each group is a descending staircase captured
// exactly by one upper-right quadrant; inverting both coordinates turns
// those into the paper's anti-dominance (lower-left) queries over
// P = {(−i, −ρ_ω(i))}.
package lowerbound

import "repro/internal/geom"

// Rho returns ρ_ω(i): digits of i in base ω, reversed and complemented.
func Rho(omega, lambda int, i int64) int64 {
	var out int64
	for d := 0; d < lambda; d++ {
		digit := i % int64(omega)
		out = out*int64(omega) + (int64(omega) - 1 - digit)
		i /= int64(omega)
	}
	return out
}

// Input returns the inverted point set P = {(−i, −ρ_ω(i))}: anti-
// dominance queries over it are the inverse anti-dominance queries of
// the construction. |P| = ω^λ.
func Input(omega, lambda int) []geom.Point {
	n := pow(omega, lambda)
	pts := make([]geom.Point, n)
	for i := int64(0); i < n; i++ {
		pts[i] = geom.Point{X: -i, Y: -Rho(omega, lambda, i)}
	}
	return pts
}

// Queries returns the λ·ω^{λ−1} anti-dominance rectangles. Every query
// reports exactly ω points of Input(ω, λ).
func Queries(omega, lambda int) []geom.Rect {
	n := pow(omega, lambda)
	// y-sorted order of the original points is simply ρ value order;
	// invert the permutation: byY[v] = i with ρ(i) = v.
	byY := make([]int64, n)
	for i := int64(0); i < n; i++ {
		byY[Rho(omega, lambda, i)] = i
	}
	var out []geom.Rect
	for d := 0; d < lambda; d++ {
		subtree := pow(omega, lambda-d)  // points per depth-d node
		stride := pow(omega, lambda-d-1) // picking stride
		for node := int64(0); node < n/subtree; node++ {
			base := node * subtree // ρ-value range of the node
			for g := int64(0); g < stride; g++ {
				// Group: ρ values base+g, base+g+stride, ...
				minY := base + g // smallest y in the group
				maxI := int64(0)
				for j := int64(0); j < int64(omega); j++ {
					i := byY[base+g+j*stride]
					if i > maxI {
						maxI = i
					}
				}
				// Original quadrant: x >= smallest group x? The
				// staircase descends, so the largest original x
				// pairs with the smallest y; anchor inclusively at
				// (min x, min y) — equivalently, inverted, at
				// (−min x, −min y) = (−(xmin), ...). The group's
				// minimum x is ω^λ−... the smallest x among picked
				// indices:
				minX := int64(1) << 62
				for j := int64(0); j < int64(omega); j++ {
					i := byY[base+g+j*stride]
					if i < minX {
						minX = i
					}
				}
				out = append(out, geom.AntiDominance(-minX, -minY))
			}
		}
	}
	return out
}

// Verify checks the Lemma 8 guarantees on a workload: every query
// reports exactly ω points, and no two queries share more than one
// point. It returns ok plus the worst pairwise overlap observed.
func Verify(omega int, pts []geom.Point, queries []geom.Rect) (bool, int) {
	owner := map[geom.Point][]int{}
	for qi, q := range queries {
		ans := geom.RangeSkyline(pts, q)
		if len(ans) != omega {
			return false, 0
		}
		for _, p := range ans {
			owner[p] = append(owner[p], qi)
		}
	}
	pairCount := map[[2]int]int{}
	worst := 0
	for _, qs := range owner {
		for i := 0; i < len(qs); i++ {
			for j := i + 1; j < len(qs); j++ {
				k := [2]int{qs[i], qs[j]}
				pairCount[k]++
				if pairCount[k] > worst {
					worst = pairCount[k]
				}
			}
		}
	}
	return worst <= 1, worst
}

func pow(b, e int) int64 {
	out := int64(1)
	for ; e > 0; e-- {
		out *= int64(b)
	}
	return out
}
