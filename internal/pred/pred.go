// Package pred provides a static O(log log_B U)-I/O predecessor
// structure over a set of keys from the universe [U], used by
// Corollary 1 to convert query coordinates in [U]² into rank space. It
// is a van Emde Boas recursion whose base case is a universe of size B
// (one bitmap block, O(1) I/Os); each level squares the effective block
// budget, so the recursion depth — and the query cost — is
// O(log log_B U), matching the Pătraşcu–Thorup bound the paper cites.
package pred

import (
	"sort"

	"repro/internal/emio"
)

// Structure answers predecessor queries over a static key set.
type Structure struct {
	disk *emio.Disk
	u    int64 // universe size
	keys []int64

	root   *vnode
	blocks int
}

type vnode struct {
	block emio.BlockID
	words int

	u        int64 // universe size of this node
	min, max int64 // smallest/largest key present (-1 if empty)
	// Base case: sorted keys (at most B of them in a universe of B).
	base []int64
	// Recursive case: clusters of size sqrtU, plus a summary over the
	// non-empty cluster indices.
	sqrtU    int64
	summary  *vnode
	clusters map[int64]*vnode
}

// Build constructs the structure over keys (distinct, in [0, U)).
func Build(d *emio.Disk, u int64, keys []int64) *Structure {
	s := &Structure{disk: d, u: u, keys: append([]int64(nil), keys...)}
	sort.Slice(s.keys, func(i, j int) bool { return s.keys[i] < s.keys[j] })
	for i, k := range s.keys {
		if k < 0 || k >= u {
			panic("pred: key outside universe")
		}
		if i > 0 && s.keys[i-1] == k {
			panic("pred: duplicate key")
		}
	}
	if len(s.keys) > 0 {
		s.root = s.build(u, s.keys)
	}
	return s
}

func (s *Structure) build(u int64, keys []int64) *vnode {
	nd := &vnode{u: u, min: keys[0], max: keys[len(keys)-1]}
	nd.words = 4
	B := int64(s.disk.Config().B)
	if u <= B || int64(len(keys)) <= 2 {
		nd.base = append([]int64(nil), keys...)
		nd.words += len(nd.base)
		nd.block = s.disk.AllocSpan(nd.words)
		s.disk.WriteSpan(nd.block, nd.words)
		s.blocks++
		return nd
	}
	// Split into clusters of ~sqrt(u).
	sq := int64(1)
	for sq*sq < u {
		sq *= 2
	}
	nd.sqrtU = sq
	nd.clusters = make(map[int64]*vnode)
	var summaryKeys []int64
	i := 0
	for i < len(keys) {
		hi := keys[i] / sq
		j := i
		var lows []int64
		for j < len(keys) && keys[j]/sq == hi {
			lows = append(lows, keys[j]%sq)
			j++
		}
		nd.clusters[hi] = s.build(sq, lows)
		summaryKeys = append(summaryKeys, hi)
		i = j
	}
	upper := (u + sq - 1) / sq
	nd.summary = s.build(upper, summaryKeys)
	nd.words += 2 // directory handle
	nd.block = s.disk.AllocSpan(nd.words)
	s.disk.WriteSpan(nd.block, nd.words)
	s.blocks++
	return nd
}

// Predecessor returns the largest key <= x, with ok=false when every key
// exceeds x. Cost: O(log log_B U) I/Os.
func (s *Structure) Predecessor(x int64) (int64, bool) {
	if s.root == nil {
		return 0, false
	}
	return s.pred(s.root, x)
}

func (s *Structure) pred(nd *vnode, x int64) (int64, bool) {
	s.disk.ReadSpan(nd.block, nd.words)
	if x < nd.min {
		return 0, false
	}
	if x >= nd.max {
		return nd.max, true
	}
	if nd.base != nil {
		i := sort.Search(len(nd.base), func(j int) bool { return nd.base[j] > x })
		return nd.base[i-1], true
	}
	hi, lo := x/nd.sqrtU, x%nd.sqrtU
	if c, ok := nd.clusters[hi]; ok && lo >= c.min {
		v, ok2 := s.pred(c, lo)
		if ok2 {
			return hi*nd.sqrtU + v, true
		}
	}
	// Fall back to the maximum of the preceding non-empty cluster.
	ph, ok := s.pred(nd.summary, hi-1)
	if !ok {
		return 0, false
	}
	c := nd.clusters[ph]
	s.disk.ReadSpan(c.block, c.words)
	return ph*nd.sqrtU + c.max, true
}

// Successor returns the smallest key >= x.
func (s *Structure) Successor(x int64) (int64, bool) {
	if s.root == nil {
		return 0, false
	}
	return s.succ(s.root, x)
}

func (s *Structure) succ(nd *vnode, x int64) (int64, bool) {
	s.disk.ReadSpan(nd.block, nd.words)
	if x > nd.max {
		return 0, false
	}
	if x <= nd.min {
		return nd.min, true
	}
	if nd.base != nil {
		i := sort.Search(len(nd.base), func(j int) bool { return nd.base[j] >= x })
		return nd.base[i], true
	}
	hi, lo := x/nd.sqrtU, x%nd.sqrtU
	if c, ok := nd.clusters[hi]; ok && lo <= c.max {
		v, ok2 := s.succ(c, lo)
		if ok2 {
			return hi*nd.sqrtU + v, true
		}
	}
	sh, ok := s.succ(nd.summary, hi+1)
	if !ok {
		return 0, false
	}
	c := nd.clusters[sh]
	s.disk.ReadSpan(c.block, c.words)
	return sh*nd.sqrtU + c.min, true
}

// Blocks returns the number of nodes (≈ blocks) in the structure.
func (s *Structure) Blocks() int { return s.blocks }
