package pred

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/emio"
)

func TestPredecessorSuccessorOracle(t *testing.T) {
	d := emio.NewDisk(emio.Config{B: 16, M: 16 * 64})
	rng := rand.New(rand.NewSource(1))
	u := int64(1 << 30)
	keySet := map[int64]bool{}
	var keys []int64
	for len(keys) < 500 {
		k := rng.Int63n(u)
		if !keySet[k] {
			keySet[k] = true
			keys = append(keys, k)
		}
	}
	s := Build(d, u, keys)
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for q := 0; q < 2000; q++ {
		x := rng.Int63n(u)
		i := sort.Search(len(keys), func(j int) bool { return keys[j] > x })
		got, ok := s.Predecessor(x)
		if (i > 0) != ok || (ok && got != keys[i-1]) {
			t.Fatalf("Predecessor(%d) = %d,%t; want idx %d", x, got, ok, i-1)
		}
		i = sort.Search(len(keys), func(j int) bool { return keys[j] >= x })
		got, ok = s.Successor(x)
		if (i < len(keys)) != ok || (ok && got != keys[i]) {
			t.Fatalf("Successor(%d) = %d,%t", x, got, ok)
		}
	}
}

func TestEmptyAndEdges(t *testing.T) {
	d := emio.NewDisk(emio.Config{B: 16, M: 16 * 64})
	s := Build(d, 100, nil)
	if _, ok := s.Predecessor(50); ok {
		t.Error("predecessor on empty set")
	}
	s = Build(d, 100, []int64{42})
	if v, ok := s.Predecessor(42); !ok || v != 42 {
		t.Errorf("Predecessor(42) = %d,%t", v, ok)
	}
	if _, ok := s.Predecessor(41); ok {
		t.Error("Predecessor(41) should not exist")
	}
	if v, ok := s.Successor(43); ok {
		t.Errorf("Successor(43) = %d should not exist", v)
	}
}

// TestDoubleLogCost verifies the O(log log_B U) shape: query cost grows
// very slowly with U and is far below log2(n).
func TestDoubleLogCost(t *testing.T) {
	cfg := emio.Config{B: 64, M: 64 * 4}
	rng := rand.New(rand.NewSource(5))
	for _, logU := range []int{16, 30, 44, 58} {
		u := int64(1) << logU
		keySet := map[int64]bool{}
		var keys []int64
		for len(keys) < 4000 {
			k := rng.Int63n(u)
			if !keySet[k] {
				keySet[k] = true
				keys = append(keys, k)
			}
		}
		d := emio.NewDisk(cfg)
		s := Build(d, u, keys)
		var worst uint64
		for q := 0; q < 50; q++ {
			x := rng.Int63n(u)
			st := d.Measure(func() { s.Predecessor(x) })
			if st.IOs() > worst {
				worst = st.IOs()
			}
		}
		// log log_B U is at most ~4 for these parameters; allow
		// constant slack. Crucially this does not grow like log n=12.
		if worst > 14 {
			t.Errorf("logU=%d: worst predecessor cost %d I/Os", logU, worst)
		}
	}
}
