package wal

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/geom"
)

func pts(vals ...int64) []geom.Point {
	var out []geom.Point
	for i := 0; i+1 < len(vals); i += 2 {
		out = append(out, geom.Point{X: vals[i], Y: vals[i+1]})
	}
	return out
}

func mustOpen(t *testing.T, path string) (*Log, ScanResult) {
	t.Helper()
	l, res, err := Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return l, res
}

func sameRecord(a, b Record) bool {
	if a.Seq != b.Seq || len(a.Dels) != len(b.Dels) || len(a.Inss) != len(b.Inss) {
		return false
	}
	for i := range a.Dels {
		if a.Dels[i] != b.Dels[i] {
			return false
		}
	}
	for i := range a.Inss {
		if a.Inss[i] != b.Inss[i] {
			return false
		}
	}
	return true
}

// TestAppendScanRoundTrip: what Append wrote, Open's scan returns,
// byte-exactly and in order.
func TestAppendScanRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, res := mustOpen(t, path)
	if len(res.Records) != 0 || res.Torn {
		t.Fatalf("fresh log scanned as %+v", res)
	}
	want := []Record{
		{Seq: 1, Inss: pts(1, 10, 2, 9)},
		{Seq: 2, Dels: pts(1, 10)},
		{Seq: 3, Dels: pts(2, 9), Inss: pts(3, 8, 4, 7, 5, 6)},
	}
	for _, r := range want {
		seq, err := l.Append(r.Dels, r.Inss)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if seq != r.Seq {
			t.Fatalf("Append seq = %d, want %d", seq, r.Seq)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, res2 := mustOpen(t, path)
	defer l2.Close()
	if res2.Torn {
		t.Fatalf("clean log scanned as torn")
	}
	if len(res2.Records) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(res2.Records), len(want))
	}
	for i := range want {
		if !sameRecord(res2.Records[i], want[i]) {
			t.Fatalf("record %d = %+v, want %+v", i, res2.Records[i], want[i])
		}
	}
	if l2.Seq() != 3 {
		t.Fatalf("Seq after reopen = %d, want 3", l2.Seq())
	}
}

// TestTornFinalRecord: truncating the file mid-record — the on-disk
// state a crash mid-append leaves — must drop exactly the torn tail,
// keep every complete record, and leave the log appendable.
func TestTornFinalRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := mustOpen(t, path)
	if _, err := l.Append(nil, pts(1, 10)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if _, err := l.Append(pts(1, 10), pts(2, 9, 3, 8)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	full := l.Size()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Tear the final record at every possible byte boundary.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	firstLen := headerSize + 1*pointSize + 4
	for cut := firstLen + 1; cut < int(full); cut++ {
		torn := filepath.Join(t.TempDir(), "torn.log")
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		l2, res := mustOpen(t, torn)
		if !res.Torn {
			t.Fatalf("cut=%d: not reported torn", cut)
		}
		if res.DroppedBytes != int64(cut-firstLen) {
			t.Fatalf("cut=%d: dropped %d bytes, want %d", cut, res.DroppedBytes, cut-firstLen)
		}
		if len(res.Records) != 1 || res.Records[0].Seq != 1 {
			t.Fatalf("cut=%d: scanned %d records, want the intact first", cut, len(res.Records))
		}
		// The log must be appendable after the tear: the torn bytes
		// are gone from the file, and the next record lands cleanly.
		if _, err := l2.Append(nil, pts(4, 7)); err != nil {
			t.Fatalf("cut=%d: Append after tear: %v", cut, err)
		}
		if err := l2.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		l3, res3 := mustOpen(t, torn)
		if res3.Torn || len(res3.Records) != 2 {
			t.Fatalf("cut=%d: reopen after heal: torn=%v records=%d", cut, res3.Torn, len(res3.Records))
		}
		l3.Close()
	}
}

// TestCorruptMiddleBitStopsScan: a flipped bit in a record's payload
// fails its CRC, and the scan keeps only the records before it — a
// prefix, never a subsequence with a hole.
func TestCorruptMiddleBitStopsScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := mustOpen(t, path)
	l.Append(nil, pts(1, 10))
	l.Append(nil, pts(2, 9))
	l.Append(nil, pts(3, 8))
	l.Close()
	data, _ := os.ReadFile(path)
	recLen := headerSize + pointSize + 4
	data[recLen+headerSize] ^= 0x40 // corrupt record 2's payload
	os.WriteFile(path, data, 0o644)

	l2, res := mustOpen(t, path)
	defer l2.Close()
	if !res.Torn {
		t.Fatalf("corruption not reported")
	}
	if len(res.Records) != 1 || res.Records[0].Seq != 1 {
		t.Fatalf("scan kept %d records, want only the one before the corruption", len(res.Records))
	}
}

// TestResetAndSeqMonotonicity: Reset empties the file but never the
// sequence counter, and SetSeq only raises it — sequences are never
// reused, the invariant replay idempotence keys on.
func TestResetAndSeqMonotonicity(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := mustOpen(t, path)
	l.Append(nil, pts(1, 10))
	l.Append(nil, pts(2, 9))
	if err := l.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if l.Size() != 0 {
		t.Fatalf("Size after Reset = %d", l.Size())
	}
	seq, err := l.Append(nil, pts(3, 8))
	if err != nil || seq != 3 {
		t.Fatalf("Append after Reset: seq=%d err=%v, want 3", seq, err)
	}
	l.Close()

	// A reopened empty-after-reset log resumes from the checkpoint
	// sequence via SetSeq, not from zero.
	l2, res := mustOpen(t, path)
	if len(res.Records) != 1 || res.Records[0].Seq != 3 {
		t.Fatalf("reopen after reset: %+v", res)
	}
	l2.SetSeq(10)
	l2.SetSeq(5) // lowering is ignored
	if seq, _ := l2.Append(nil, pts(4, 7)); seq != 11 {
		t.Fatalf("Append after SetSeq = %d, want 11", seq)
	}
	l2.Close()
}

// TestEmptyBatchRejected: an empty record would burn a sequence for
// nothing; Append refuses it.
func TestEmptyBatchRejected(t *testing.T) {
	l, _ := mustOpen(t, filepath.Join(t.TempDir(), "wal.log"))
	defer l.Close()
	if _, err := l.Append(nil, nil); err == nil {
		t.Fatalf("empty Append accepted")
	}
	if l.Seq() != 0 {
		t.Fatalf("empty Append advanced Seq to %d", l.Seq())
	}
}

// TestDuplicateReplayIdempotence: replaying the same scan twice yields
// the same records with the same sequences — the caller-side seq
// filter (apply only seq > checkpoint) then guarantees nothing applies
// twice. This pins that scan is deterministic and side-effect-free on
// a clean log.
func TestDuplicateReplayIdempotence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := mustOpen(t, path)
	l.Append(pts(9, 9), pts(1, 10, 2, 8))
	l.Append(nil, pts(3, 7))
	l.Close()

	l1, res1 := mustOpen(t, path)
	l1.Close()
	l2, res2 := mustOpen(t, path)
	l2.Close()
	if len(res1.Records) != len(res2.Records) {
		t.Fatalf("scan lengths differ: %d vs %d", len(res1.Records), len(res2.Records))
	}
	for i := range res1.Records {
		if !sameRecord(res1.Records[i], res2.Records[i]) {
			t.Fatalf("record %d differs across replays", i)
		}
	}
}
