package wal

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/geom"
)

// FuzzWALReplay drives the scanner with crashed and corrupted logs and
// differential-checks it against a never-crashed twin. The fuzz input
// is interpreted twice:
//
//   - ops: a byte stream decoded into update batches, appended to a
//     fresh log — the twin is the in-memory list of appended records;
//   - damage: a truncation point and one byte flip applied to the file,
//     simulating a torn final append or bit rot.
//
// The invariant: whatever the damage, scan returns a PREFIX of the
// twin's records — never a reordering, never a record past the first
// invalid byte, never a crash — and a second scan of the healed file
// returns exactly the same prefix (duplicate replay idempotence).
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{3, 1, 2, 0, 2, 2}, uint16(0), uint16(0), byte(0))
	f.Add([]byte{1, 0, 1, 1, 1, 2, 255, 7}, uint16(21), uint16(4), byte(0x80))
	f.Add([]byte{9, 9, 9, 9}, uint16(65535), uint16(65535), byte(1))
	f.Fuzz(func(t *testing.T, ops []byte, cut, mutPos uint16, mutBit byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "wal.log")
		l, _, err := Open(path)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}

		// Decode ops into batches: each byte b contributes point
		// (i, b) as a delete when b is odd, an insert otherwise; every
		// third byte closes the batch.
		var twin []Record
		var dels, inss []geom.Point
		flush := func() {
			if len(dels)+len(inss) == 0 {
				return
			}
			seq, err := l.Append(dels, inss)
			if err != nil {
				t.Fatalf("Append: %v", err)
			}
			twin = append(twin, Record{Seq: seq, Dels: dels, Inss: inss})
			dels, inss = nil, nil
		}
		for i, b := range ops {
			p := geom.Point{X: int64(i), Y: int64(b)}
			if b%2 == 1 {
				dels = append(dels, p)
			} else {
				inss = append(inss, p)
			}
			if i%3 == 2 {
				flush()
			}
		}
		flush()
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		// Damage the file: truncate at cut (mod size+1), then flip one
		// bit at mutPos if it still exists.
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		if n := len(data) + 1; n > 0 {
			data = data[:int(cut)%n]
		}
		if len(data) > 0 && mutBit != 0 {
			data[int(mutPos)%len(data)] ^= mutBit
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}

		l2, res, err := Open(path)
		if err != nil {
			t.Fatalf("Open damaged: %v", err)
		}
		l2.Close()

		// Prefix check against the twin. Damage may invalidate any
		// suffix, but a scanned record must equal the twin's at the
		// same position, except when the bit flip happened to produce
		// another VALID record — only possible for flips that keep the
		// CRC consistent, which a single-bit flip over CRC-32 cannot.
		if len(res.Records) > len(twin) {
			t.Fatalf("scan returned %d records, twin has %d", len(res.Records), len(twin))
		}
		for i, rec := range res.Records {
			if !sameRecord(rec, twin[i]) {
				t.Fatalf("record %d diverged from twin: %+v vs %+v", i, rec, twin[i])
			}
		}

		// Idempotence: scanning the healed file again returns the
		// identical prefix.
		l3, res2, err := Open(path)
		if err != nil {
			t.Fatalf("Open healed: %v", err)
		}
		l3.Close()
		if res2.Torn {
			t.Fatalf("healed file still torn on second scan")
		}
		if len(res2.Records) != len(res.Records) {
			t.Fatalf("second scan %d records, first %d", len(res2.Records), len(res.Records))
		}
		for i := range res2.Records {
			if !sameRecord(res2.Records[i], res.Records[i]) {
				t.Fatalf("record %d differs across scans", i)
			}
		}
	})
}
