// Package wal is the write-ahead log of the durable index: an
// append-only file of update batches, each exactly one drain of the
// async update queue (or one synchronous write, which is a batch of
// one). Logging at drain granularity is what makes durability nearly
// free — the queue already batches writes at FlushPoints boundaries,
// so the WAL adds one sequential append per structure-lock acquisition
// instead of one per point.
//
// Record format (little-endian, CRC-framed):
//
//	magic   uint32  0x314C4157 ("WAL1")
//	seq     uint64  strictly increasing, never reused
//	nDels   uint32  number of deleted points
//	nInss   uint32  number of inserted points
//	points  (nDels+nInss) × 16 bytes  (x int64, y int64; deletes first)
//	crc     uint32  IEEE CRC-32 of everything above
//
// Open scans the existing file and truncates an invalid tail — a torn
// final record from a crash mid-append, or trailing garbage — so the
// log is always left in a state where Append can continue. Everything
// before the first invalid byte is replayable; everything after it was
// never acknowledged (the append did not return), so dropping it loses
// nothing the caller was promised.
//
// Replay idempotence is by sequence number: the pager's metadata page
// records the sequence the last checkpoint covered, and recovery
// applies only records with seq > that — replaying a stream twice, or
// replaying records already folded into the snapshot, applies nothing
// twice. Reset truncates the log after a checkpoint and re-bases the
// sequence counter.
//
// Durability scope: Append hands records to the OS with a single
// positional write on the file descriptor — no user-space buffering —
// so an appended record survives any death of the process (os.Exit,
// panic, kill -9). Surviving kernel death or power loss additionally
// needs Sync, which callers opt into per-batch (core.Options.SyncWAL).
//
// All filesystem access goes through a vfs.FS (vfs.OS by default).
// Append writes the record with WriteAt at the current end of the
// valid log, never with a cursored Write, so retrying a transiently
// failed or torn append rewrites the same bytes at the same offset —
// idempotent by construction. A tear that outlives the retry budget is
// exactly what the next Open's scan truncates away.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"repro/internal/geom"
	"repro/internal/vfs"
)

// recordMagic starts every record ("WAL1", little-endian).
const recordMagic uint32 = 0x314C4157

// headerSize is the fixed prefix before the points: magic, seq, nDels,
// nInss.
const headerSize = 4 + 8 + 4 + 4

// pointSize is the on-disk size of one point (x, y as int64).
const pointSize = 16

// Record is one logged update batch: the deletes and inserts of a
// single drain. Deletes apply before inserts, exactly as the queue
// drains them (a delete-then-reinsert of the same point depends on it).
type Record struct {
	// Seq is the record's sequence number; strictly increasing across
	// the life of the log, never reused even across Reset.
	Seq uint64
	// Dels are the points the batch deletes (they may miss; a replay
	// through the presence-check-first batched path applies nothing
	// for a miss).
	Dels []geom.Point
	// Inss are the points the batch inserts.
	Inss []geom.Point
}

// Ops returns the number of operations in the record.
func (r Record) Ops() int { return len(r.Dels) + len(r.Inss) }

// ScanResult reports what Open found in an existing log file.
type ScanResult struct {
	// Records are the valid records, in append order.
	Records []Record
	// Torn reports that the file ended in an invalid or incomplete
	// record, which Open truncated away. A torn tail is the expected
	// signature of a crash mid-append, not corruption of history:
	// records are CRC-framed, so the prefix before the tear is intact.
	Torn bool
	// DroppedBytes is the size of the truncated tail.
	DroppedBytes int64
}

// Log is an append-only write-ahead log backed by one file.
type Log struct {
	f       vfs.File
	path    string
	retry   vfs.RetryPolicy
	retries vfs.RetryCounters
	seq     uint64 // last assigned sequence number
	size    int64  // current valid file size
	buf     []byte // append encoding buffer, reused
}

// Open opens the log at path on the real filesystem with the default
// retry policy. See OpenFS.
func Open(path string) (*Log, ScanResult, error) {
	return OpenFS(path, vfs.OS, vfs.RetryPolicy{})
}

// OpenFS opens (creating if necessary) the log at path on fsys (nil
// means vfs.OS), retrying transient I/O failures per retry (the zero
// policy means vfs.DefaultRetryPolicy), and scans it, truncating an
// invalid tail so the file ends on a record boundary. The returned
// ScanResult holds every valid record for replay; the next Append
// continues after the highest sequence seen. Callers whose checkpoints
// outpaced the log re-base with SetSeq.
func OpenFS(path string, fsys vfs.FS, retry vfs.RetryPolicy) (*Log, ScanResult, error) {
	if fsys == nil {
		fsys = vfs.OS
	}
	l := &Log{path: path, retry: retry}
	var f vfs.File
	if err := l.retry.Do(&l.retries, func() error {
		var err error
		f, err = fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
		return err
	}); err != nil {
		return nil, ScanResult{}, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l.f = f
	res, err := l.scan()
	if err != nil {
		f.Close() //errlint:ok open failed half-way; best-effort release
		return nil, ScanResult{}, err
	}
	return l, res, nil
}

// scan reads the whole file, validating records and truncating the
// tail at the first invalid byte.
func (l *Log) scan() (ScanResult, error) {
	var size int64
	if err := l.retry.Do(&l.retries, func() error {
		var err error
		size, err = l.f.Size()
		return err
	}); err != nil {
		return ScanResult{}, fmt.Errorf("wal: size %s: %w", l.path, err)
	}
	data := make([]byte, size)
	if size > 0 {
		if err := l.retry.Do(&l.retries, func() error {
			_, err := l.f.ReadAt(data, 0)
			return err
		}); err != nil {
			return ScanResult{}, fmt.Errorf("wal: scan %s: %w", l.path, err)
		}
	}
	var res ScanResult
	off := 0
	for {
		rec, n, ok := decodeRecord(data[off:])
		if !ok {
			break
		}
		// A sequence that does not increase is not a record that a
		// Log ever appended; treat it as the start of an invalid tail.
		if rec.Seq <= l.seq && len(res.Records) > 0 {
			break
		}
		res.Records = append(res.Records, rec)
		l.seq = rec.Seq
		off += n
	}
	if off < len(data) {
		res.Torn = true
		res.DroppedBytes = int64(len(data) - off)
		if err := l.retry.Do(&l.retries, func() error {
			return l.f.Truncate(int64(off))
		}); err != nil {
			return res, fmt.Errorf("wal: truncate torn tail of %s: %w", l.path, err)
		}
	}
	l.size = int64(off)
	return res, nil
}

// decodeRecord decodes one record from the front of data, returning
// its encoded length and whether it was valid and complete.
func decodeRecord(data []byte) (Record, int, bool) {
	if len(data) < headerSize {
		return Record{}, 0, false
	}
	if binary.LittleEndian.Uint32(data[0:4]) != recordMagic {
		return Record{}, 0, false
	}
	seq := binary.LittleEndian.Uint64(data[4:12])
	nDels := int(binary.LittleEndian.Uint32(data[12:16]))
	nInss := int(binary.LittleEndian.Uint32(data[16:20]))
	// Reject absurd counts before computing a length that could
	// overflow or force a huge allocation on garbage input.
	if nDels < 0 || nInss < 0 || nDels+nInss > (len(data)-headerSize)/pointSize {
		return Record{}, 0, false
	}
	total := headerSize + (nDels+nInss)*pointSize + 4
	if len(data) < total {
		return Record{}, 0, false
	}
	want := binary.LittleEndian.Uint32(data[total-4 : total])
	if crc32.ChecksumIEEE(data[:total-4]) != want {
		return Record{}, 0, false
	}
	rec := Record{Seq: seq}
	off := headerSize
	decode := func(n int) []geom.Point {
		if n == 0 {
			return nil
		}
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i].X = geom.Coord(binary.LittleEndian.Uint64(data[off : off+8]))
			pts[i].Y = geom.Coord(binary.LittleEndian.Uint64(data[off+8 : off+16]))
			off += pointSize
		}
		return pts
	}
	rec.Dels = decode(nDels)
	rec.Inss = decode(nInss)
	return rec, total, true
}

// Append logs one update batch — deletes applying before inserts —
// and returns its sequence number. The record reaches the OS before
// Append returns (one positional write, no user-space buffering), so
// an acknowledged batch survives process death; call Sync to also
// survive power loss. Transient write failures are retried in place:
// the record always lands at the same offset, so a torn first attempt
// is simply overwritten by the retry. An empty batch is rejected: it
// would burn a sequence number for a record that changes nothing.
func (l *Log) Append(dels, inss []geom.Point) (uint64, error) {
	if len(dels)+len(inss) == 0 {
		return 0, fmt.Errorf("wal: empty batch")
	}
	seq := l.seq + 1
	total := headerSize + (len(dels)+len(inss))*pointSize + 4
	if cap(l.buf) < total {
		l.buf = make([]byte, total)
	}
	b := l.buf[:total]
	binary.LittleEndian.PutUint32(b[0:4], recordMagic)
	binary.LittleEndian.PutUint64(b[4:12], seq)
	binary.LittleEndian.PutUint32(b[12:16], uint32(len(dels)))
	binary.LittleEndian.PutUint32(b[16:20], uint32(len(inss)))
	off := headerSize
	for _, pts := range [][]geom.Point{dels, inss} {
		for _, p := range pts {
			binary.LittleEndian.PutUint64(b[off:off+8], uint64(p.X))
			binary.LittleEndian.PutUint64(b[off+8:off+16], uint64(p.Y))
			off += pointSize
		}
	}
	binary.LittleEndian.PutUint32(b[total-4:total], crc32.ChecksumIEEE(b[:total-4]))
	if err := l.retry.Do(&l.retries, func() error {
		_, err := l.f.WriteAt(b, l.size)
		return err
	}); err != nil {
		// The write may have landed partially; the torn record is
		// exactly what the next Open's scan truncates away, and the
		// caller treats the batch as unacknowledged.
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.seq = seq
	l.size += int64(total)
	return seq, nil
}

// Sync flushes the log to stable storage (fsync), retrying transient
// failures.
func (l *Log) Sync() error {
	if err := l.retry.Do(&l.retries, l.f.Sync); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// Seq returns the last assigned sequence number.
func (l *Log) Seq() uint64 { return l.seq }

// Size returns the current log size in bytes.
func (l *Log) Size() int64 { return l.size }

// Retries exposes the transient-failure counters of the log's retry
// loop; DB.Resilience aggregates them.
func (l *Log) Retries() *vfs.RetryCounters { return &l.retries }

// SetSeq raises the sequence counter to at least seq. Recovery uses it
// when the checkpoint metadata names a higher sequence than the
// (truncated, possibly empty) log file holds, so new appends never
// reuse a sequence a previous checkpoint already covered.
func (l *Log) SetSeq(seq uint64) {
	if seq > l.seq {
		l.seq = seq
	}
}

// Reset truncates the log after a checkpoint: every record is covered
// by the snapshot, so the file restarts empty. The sequence counter is
// NOT reset — sequences are never reused, which is what keeps replay
// idempotent across overlapping histories.
func (l *Log) Reset() error {
	if err := l.retry.Do(&l.retries, func() error {
		return l.f.Truncate(0)
	}); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	l.size = 0
	return nil
}

// Close syncs and closes the file.
func (l *Log) Close() error {
	if err := l.retry.Do(&l.retries, l.f.Sync); err != nil {
		l.f.Close() //errlint:ok close after failed sync; sync error wins
		return fmt.Errorf("wal: close sync: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}
