// Package sweep implements the §2.2 reduction machinery: converting a
// point set P (sorted by x) into the horizontal segment set Σ(P), where
// each point p becomes σ(p) = [x_p, x_q) × y_p with q = leftdom(p), the
// leftmost point dominating p (x_q = +∞ if none). The stack sweep emits
// Σ(P) in non-descending order of right endpoints in O(n/B) I/Os, and the
// package provides checkers for the two structural properties of Lemma 2
// (nesting and monotonicity) on which the SABE PPB-tree construction
// depends.
package sweep

import (
	"sort"

	"repro/internal/emio"
	"repro/internal/extsort"
	"repro/internal/geom"
)

// Segment is the horizontal segment σ(p) = [P.X, XEnd) × P.Y derived from
// point P. XEnd is geom.PosInf when leftdom(p) does not exist.
type Segment struct {
	P    geom.Point
	XEnd geom.Coord
}

// SegmentWords is the record width of a Segment: three machine words.
const SegmentWords = 3

// Intersects reports whether the segment crosses the vertical segment
// x × [y1, y2]: x ∈ [P.X, XEnd) and P.Y ∈ [y1, y2].
func (s Segment) Intersects(x, y1, y2 geom.Coord) bool {
	return s.P.X <= x && x < s.XEnd && y1 <= s.P.Y && s.P.Y <= y2
}

// Segments computes Σ(P) for pts, which must be sorted by x and in
// general position. The result is in the sweep's output order:
// non-descending right endpoint, ties broken by favoring lower points.
// Host-memory version (the oracle); see SegmentsEM for the charged one.
func Segments(pts []geom.Point) []Segment {
	var out []Segment
	var stack []geom.Point
	for _, p := range pts {
		for len(stack) > 0 && stack[len(stack)-1].Y < p.Y {
			q := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			out = append(out, Segment{P: q, XEnd: p.X})
		}
		stack = append(stack, p)
	}
	// Remaining stack = skyline of P; their segments extend to +∞.
	// Pop from the top (lowest y first) to respect the tie-break rule.
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, Segment{P: q, XEnd: geom.PosInf})
	}
	return out
}

// SegmentsEM runs the sweep on an x-sorted file of points, charging
// I/Os: one sequential read pass over the input, one sequential write
// pass for the output, plus stack traffic. The stack is kept in an emio
// file whose top block is effectively resident, so the total cost is
// O(n/B) I/Os. The input file is preserved.
func SegmentsEM(d *emio.Disk, f *extsort.File[geom.Point]) *extsort.File[Segment] {
	out := extsort.NewFile[Segment](d, SegmentWords)
	stack := extsort.NewFile[geom.Point](d, PointWords)
	top := -1 // index of stack top within the stack file
	f.Scan(func(_ int, p geom.Point) bool {
		for top >= 0 {
			q := stack.Get(top)
			if q.Y >= p.Y {
				break
			}
			top--
			out.Append(Segment{P: q, XEnd: p.X})
		}
		top++
		if top < stack.Len() {
			stack.Set(top, p)
		} else {
			stack.Append(p)
		}
		return true
	})
	for ; top >= 0; top-- {
		out.Append(Segment{P: stack.Get(top), XEnd: geom.PosInf})
	}
	stack.Free()
	return out
}

// PointWords mirrors skyline.PointWords without importing it (a point is
// two machine words).
const PointWords = 2

// CheckNesting verifies Lemma 2's nesting property: the x-intervals of
// any two segments are either disjoint or one contains the other. It
// returns the offending pair if violated. O(n log n) host time via a
// sweep over sorted endpoints.
func CheckNesting(segs []Segment) (a, b Segment, ok bool) {
	// Sort by left endpoint; for intervals sorted by start, nesting
	// fails iff some interval starts inside a previous one and ends
	// after it.
	s := append([]Segment(nil), segs...)
	sort.Slice(s, func(i, j int) bool {
		if s[i].P.X != s[j].P.X {
			return s[i].P.X < s[j].P.X
		}
		return s[i].XEnd > s[j].XEnd
	})
	var stack []Segment
	for _, cur := range s {
		for len(stack) > 0 && stack[len(stack)-1].XEnd <= cur.P.X {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			encl := stack[len(stack)-1]
			if cur.XEnd > encl.XEnd {
				return encl, cur, false
			}
		}
		stack = append(stack, cur)
	}
	return Segment{}, Segment{}, true
}

// CheckMonotonic verifies Lemma 2's monotonicity property: on any
// vertical line, the segments crossing it, in ascending y order, have
// non-decreasing x-interval lengths (with the convention that an interval
// reaching +∞ is longest and ties among +∞ are allowed). It checks every
// combinatorially distinct vertical line. Quadratic host time; for tests.
func CheckMonotonic(segs []Segment) bool {
	// Candidate x positions: every left endpoint.
	for _, probe := range segs {
		x := probe.P.X
		var hit []Segment
		for _, s := range segs {
			if s.P.X <= x && x < s.XEnd {
				hit = append(hit, s)
			}
		}
		sort.Slice(hit, func(i, j int) bool { return hit[i].P.Y < hit[j].P.Y })
		for i := 1; i < len(hit); i++ {
			if width(hit[i]) < width(hit[i-1]) {
				return false
			}
			// Stronger consequence used by Observation 2: left
			// endpoints decrease as y increases.
			if hit[i].P.X > hit[i-1].P.X {
				return false
			}
		}
	}
	return true
}

func width(s Segment) uint64 {
	if s.XEnd == geom.PosInf {
		return ^uint64(0)
	}
	return uint64(s.XEnd - s.P.X)
}

// OutputOrderOK verifies the sweep's output contract: segments appear in
// non-descending right-endpoint order, ties broken by lower y first.
func OutputOrderOK(segs []Segment) bool {
	for i := 1; i < len(segs); i++ {
		a, b := segs[i-1], segs[i]
		if a.XEnd > b.XEnd {
			return false
		}
		if a.XEnd == b.XEnd && a.P.Y > b.P.Y {
			return false
		}
	}
	return true
}
