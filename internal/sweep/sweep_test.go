package sweep

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/emio"
	"repro/internal/extsort"
	"repro/internal/geom"
)

// TestFigure3Reduction reproduces Figure 3a: three points on a rising
// chain; each point's segment ends at its leftdom's x.
func TestFigure3Reduction(t *testing.T) {
	p1 := geom.Point{X: 1, Y: 1}
	p2 := geom.Point{X: 3, Y: 4}
	p3 := geom.Point{X: 6, Y: 7}
	segs := Segments([]geom.Point{p1, p2, p3})
	bySeg := map[geom.Point]geom.Coord{}
	for _, s := range segs {
		bySeg[s.P] = s.XEnd
	}
	if bySeg[p1] != 3 {
		t.Errorf("σ(p1) ends at %d, want 3 (leftdom = p2)", bySeg[p1])
	}
	if bySeg[p2] != 6 {
		t.Errorf("σ(p2) ends at %d, want 6 (leftdom = p3)", bySeg[p2])
	}
	if bySeg[p3] != geom.PosInf {
		t.Errorf("σ(p3) ends at %d, want +inf", bySeg[p3])
	}
}

func TestSegmentsMatchLeftDomOracle(t *testing.T) {
	pts := geom.GenUniform(500, 1<<20, 17)
	geom.SortByX(pts)
	segs := Segments(pts)
	if len(segs) != len(pts) {
		t.Fatalf("got %d segments for %d points", len(segs), len(pts))
	}
	for _, s := range segs {
		q, ok := geom.LeftDom(pts, s.P)
		want := geom.Coord(geom.PosInf)
		if ok {
			want = q.X
		}
		if s.XEnd != want {
			t.Fatalf("σ(%v) ends at %d, want %d", s.P, s.XEnd, want)
		}
	}
}

func TestLemma2Properties(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		pts := geom.GenUniform(300, 1<<16, seed)
		geom.SortByX(pts)
		segs := Segments(pts)
		if a, b, ok := CheckNesting(segs); !ok {
			t.Fatalf("seed %d: nesting violated by %v and %v", seed, a, b)
		}
		if !CheckMonotonic(segs) {
			t.Fatalf("seed %d: monotonicity violated", seed)
		}
		if !OutputOrderOK(segs) {
			t.Fatalf("seed %d: output order violated", seed)
		}
	}
}

func TestQuickLemma2(t *testing.T) {
	f := func(raw []int16) bool {
		var pts []geom.Point
		seenX := map[geom.Coord]bool{}
		seenY := map[geom.Coord]bool{}
		for i := 0; i+1 < len(raw); i += 2 {
			p := geom.Point{X: geom.Coord(raw[i]), Y: geom.Coord(raw[i+1])}
			if seenX[p.X] || seenY[p.Y] {
				continue
			}
			seenX[p.X], seenY[p.Y] = true, true
			pts = append(pts, p)
		}
		geom.SortByX(pts)
		segs := Segments(pts)
		if _, _, ok := CheckNesting(segs); !ok {
			return false
		}
		return CheckMonotonic(segs) && OutputOrderOK(segs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentsEMMatchesHost(t *testing.T) {
	d := emio.NewDisk(emio.Config{B: 8, M: 64})
	pts := geom.GenUniform(400, 1<<20, 23)
	geom.SortByX(pts)
	f := extsort.FromSlice(d, PointWords, pts)
	out := SegmentsEM(d, f)
	got := extsort.ToSlice(out)
	want := Segments(pts)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("SegmentsEM disagrees with host Segments")
	}
}

// TestSegmentsEMLinearIO: the sweep is O(n/B) I/Os as §2.2 claims.
func TestSegmentsEMLinearIO(t *testing.T) {
	cfg := emio.Config{B: 32, M: 32 * 8}
	for _, n := range []int{1000, 4000, 16000} {
		d := emio.NewDisk(cfg)
		pts := geom.GenUniform(n, 1<<30, int64(n))
		geom.SortByX(pts)
		f := extsort.FromSlice(d, PointWords, pts)
		d.DropCache()
		d.ResetStats()
		out := SegmentsEM(d, f)
		d.DropCache()
		st := d.Stats()
		nb := float64(n) / float64(cfg.B)
		// input read (2 words/pt) + output write (3 words/seg) +
		// stack traffic; generous constant 12.
		if float64(st.IOs()) > 12*nb+20 {
			t.Errorf("n=%d: sweep cost %d I/Os, budget %.0f", n, st.IOs(), 12*nb+20)
		}
		out.Free()
	}
}

// TestSweepWorstCaseStack: an anti-staircase forces the whole set onto
// the stack; cost must stay linear.
func TestSweepWorstCaseStack(t *testing.T) {
	cfg := emio.Config{B: 32, M: 32 * 8}
	d := emio.NewDisk(cfg)
	n := 8000
	pts := geom.GenStaircase(n, 3) // descending: every point pops fast
	geom.SortByX(pts)
	f := extsort.FromSlice(d, PointWords, pts)
	st := d.Measure(func() { SegmentsEM(d, f).Free() })
	nb := float64(n) / float64(cfg.B)
	if float64(st.IOs()) > 12*nb+20 {
		t.Errorf("staircase sweep cost %d I/Os, budget %.0f", st.IOs(), 12*nb+20)
	}

	d2 := emio.NewDisk(cfg)
	pts2 := geom.GenAntiStaircase(n, 3) // ascending: stack stays size 1
	geom.SortByX(pts2)
	f2 := extsort.FromSlice(d2, PointWords, pts2)
	st2 := d2.Measure(func() { SegmentsEM(d2, f2).Free() })
	if float64(st2.IOs()) > 12*nb+20 {
		t.Errorf("anti-staircase sweep cost %d I/Os, budget %.0f", st2.IOs(), 12*nb+20)
	}
}

func TestSegmentIntersects(t *testing.T) {
	s := Segment{P: geom.Point{X: 2, Y: 5}, XEnd: 8}
	cases := []struct {
		x, y1, y2 geom.Coord
		want      bool
	}{
		{5, 0, 10, true},
		{2, 5, 5, true},
		{8, 0, 10, false}, // right endpoint is exclusive
		{1, 0, 10, false},
		{5, 6, 10, false},
		{5, 0, 4, false},
	}
	for _, tc := range cases {
		if got := s.Intersects(tc.x, tc.y1, tc.y2); got != tc.want {
			t.Errorf("Intersects(%d,[%d,%d]) = %t, want %t", tc.x, tc.y1, tc.y2, got, tc.want)
		}
	}
}

// TestSkylineSegmentsUnbounded: exactly the skyline points get unbounded
// segments.
func TestSkylineSegmentsUnbounded(t *testing.T) {
	pts := geom.GenUniform(200, 1<<16, 29)
	geom.SortByX(pts)
	sky := map[geom.Point]bool{}
	for _, p := range geom.Skyline(pts) {
		sky[p] = true
	}
	for _, s := range Segments(pts) {
		if (s.XEnd == geom.PosInf) != sky[s.P] {
			t.Fatalf("segment %v unbounded=%t but skyline=%t",
				s.P, s.XEnd == geom.PosInf, sky[s.P])
		}
	}
}
