// Package statbtree provides a static external-memory B-tree over sorted
// int64 keys with an associated value per key and subtree-maximum
// augmentation. Theorem 1 uses it as the "range-max B-tree indexing the
// x-coordinates in P" that finds β′ (the highest y-coordinate inside the
// query range) in O(log_B n) I/Os; it also serves as the predecessor
// structure wherever a plain O(log_B n) search is required. Being static,
// it is built bottom-up from sorted input in O(n/B) I/Os, so it is SABE.
package statbtree

import (
	"math"

	"repro/internal/emio"
)

// Entry is one key with its associated value.
type Entry struct {
	Key, Val int64
}

// node is one block of the tree: at most fanout entries. For leaves,
// entries are the (key, value) pairs; for internal nodes, entry i routes
// to child i with Key = smallest key in the child's subtree and Val = the
// maximum value in the child's subtree.
type node struct {
	block    emio.BlockID
	entries  []Entry
	children []*node // nil for leaves
	maxKey   int64   // largest key in the subtree
}

// Tree is the static range-max B-tree.
type Tree struct {
	disk   *emio.Disk
	fanout int
	root   *node
	height int
	n      int
}

// wordsPerEntry: a key and a value.
const wordsPerEntry = 2

// Build constructs the tree over entries, which must be sorted by Key
// (strictly increasing). Cost: O(n/B) I/Os (one streaming write per
// level, and level sizes shrink geometrically).
func Build(d *emio.Disk, entries []Entry) *Tree {
	fanout := d.Config().B / wordsPerEntry
	if fanout < 2 {
		fanout = 2
	}
	t := &Tree{disk: d, fanout: fanout, n: len(entries)}
	if len(entries) == 0 {
		return t
	}
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Key >= entries[i].Key {
			panic("statbtree: keys must be strictly increasing")
		}
	}
	// Leaf level.
	var level []*node
	for lo := 0; lo < len(entries); lo += fanout {
		hi := lo + fanout
		if hi > len(entries) {
			hi = len(entries)
		}
		nd := &node{entries: append([]Entry(nil), entries[lo:hi]...)}
		nd.maxKey = nd.entries[len(nd.entries)-1].Key
		nd.block = d.AllocWords(len(nd.entries) * wordsPerEntry)
		level = append(level, nd)
	}
	t.height = 1
	// Internal levels.
	for len(level) > 1 {
		var up []*node
		for lo := 0; lo < len(level); lo += fanout {
			hi := lo + fanout
			if hi > len(level) {
				hi = len(level)
			}
			nd := &node{children: append([]*node(nil), level[lo:hi]...)}
			for _, c := range nd.children {
				nd.entries = append(nd.entries, Entry{
					Key: c.entries[0].Key,
					Val: subtreeMax(c),
				})
			}
			nd.maxKey = nd.children[len(nd.children)-1].maxKey
			nd.block = d.AllocWords(len(nd.entries) * wordsPerEntry)
			up = append(up, nd)
		}
		level = up
		t.height++
	}
	t.root = level[0]
	return t
}

func subtreeMax(nd *node) int64 {
	best := int64(math.MinInt64)
	for _, e := range nd.entries {
		if e.Val > best {
			best = e.Val
		}
	}
	return best
}

// Len returns the number of keys.
func (t *Tree) Len() int { return t.n }

// Height returns the number of levels (0 for an empty tree).
func (t *Tree) Height() int { return t.height }

// Free releases the tree's blocks.
func (t *Tree) Free() {
	var rec func(*node)
	rec = func(nd *node) {
		if nd == nil {
			return
		}
		for _, c := range nd.children {
			rec(c)
		}
		t.disk.Free(nd.block)
	}
	rec(t.root)
	t.root = nil
}

// Predecessor returns the entry with the largest key <= x, and ok=false
// if every key exceeds x. Cost: O(log_B n) I/Os.
func (t *Tree) Predecessor(x int64) (Entry, bool) {
	if t.root == nil {
		return Entry{}, false
	}
	nd := t.root
	for {
		t.disk.Read(nd.block)
		// Largest entry with Key <= x.
		idx := -1
		for i, e := range nd.entries {
			if e.Key <= x {
				idx = i
			} else {
				break
			}
		}
		if idx < 0 {
			return Entry{}, false
		}
		if nd.children == nil {
			return nd.entries[idx], true
		}
		nd = nd.children[idx]
	}
}

// Successor returns the entry with the smallest key >= x, and ok=false if
// every key is below x. Cost: O(log_B n) I/Os.
func (t *Tree) Successor(x int64) (Entry, bool) {
	if t.root == nil || t.root.maxKey < x {
		return Entry{}, false
	}
	nd := t.root
	for {
		t.disk.Read(nd.block)
		if nd.children == nil {
			for _, e := range nd.entries {
				if e.Key >= x {
					return e, true
				}
			}
			// Unreachable: descent guaranteed maxKey >= x.
			return Entry{}, false
		}
		for _, c := range nd.children {
			if c.maxKey >= x {
				nd = c
				break
			}
		}
	}
}

// keyBounds returns the key range [lo, hi] covered by child/entry i of an
// internal node: the child's first routed key through its true max key.
func keyBounds(nd *node, i int) (lo, hi int64) {
	return nd.entries[i].Key, nd.children[i].maxKey
}

// MaxInRange returns the maximum value among keys in [x1, x2], and
// ok=false if the range is empty. Cost: O(log_B n) I/Os — the search
// visits the two boundary paths and uses the max augmentation for the
// O(B)-ary middle.
func (t *Tree) MaxInRange(x1, x2 int64) (int64, bool) {
	if t.root == nil || x1 > x2 {
		return 0, false
	}
	best := int64(math.MinInt64)
	found := false
	var rec func(nd *node, lo, hi int64)
	rec = func(nd *node, lo, hi int64) {
		t.disk.Read(nd.block)
		if nd.children == nil {
			for _, e := range nd.entries {
				if e.Key >= lo && e.Key <= hi {
					if !found || e.Val > best {
						best, found = e.Val, true
					}
				}
			}
			return
		}
		for i, e := range nd.entries {
			cLo, cHi := keyBounds(nd, i)
			if cHi < lo || cLo > hi {
				continue
			}
			if cLo >= lo && cHi <= hi {
				// Fully covered: use the augmentation, no descent.
				if !found || e.Val > best {
					best, found = e.Val, true
				}
				continue
			}
			rec(nd.children[i], lo, hi)
		}
	}
	rec(t.root, x1, x2)
	if !found {
		return 0, false
	}
	return best, true
}

// Blocks returns the number of blocks the tree occupies.
func (t *Tree) Blocks() int {
	count := 0
	var rec func(*node)
	rec = func(nd *node) {
		if nd == nil {
			return
		}
		count++
		for _, c := range nd.children {
			rec(c)
		}
	}
	rec(t.root)
	return count
}
