package statbtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/emio"
)

func buildRandom(t *testing.T, d *emio.Disk, n int, seed int64) ([]Entry, *Tree) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	keys := map[int64]bool{}
	var entries []Entry
	for len(entries) < n {
		k := rng.Int63n(int64(n) * 10)
		if keys[k] {
			continue
		}
		keys[k] = true
		entries = append(entries, Entry{Key: k, Val: rng.Int63n(1 << 30)})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	return entries, Build(d, entries)
}

func TestEmptyTree(t *testing.T) {
	d := emio.NewDisk(emio.Config{B: 16, M: 256})
	tr := Build(d, nil)
	if _, ok := tr.Predecessor(5); ok {
		t.Error("Predecessor on empty tree returned ok")
	}
	if _, ok := tr.Successor(5); ok {
		t.Error("Successor on empty tree returned ok")
	}
	if _, ok := tr.MaxInRange(0, 10); ok {
		t.Error("MaxInRange on empty tree returned ok")
	}
}

func TestPredecessorSuccessor(t *testing.T) {
	d := emio.NewDisk(emio.Config{B: 8, M: 64})
	entries, tr := buildRandom(t, d, 500, 1)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		x := rng.Int63n(6000) - 500
		// Oracle.
		var predWant, succWant *Entry
		for j := range entries {
			e := entries[j]
			if e.Key <= x && (predWant == nil || e.Key > predWant.Key) {
				predWant = &entries[j]
			}
			if e.Key >= x && (succWant == nil || e.Key < succWant.Key) {
				succWant = &entries[j]
			}
		}
		if got, ok := tr.Predecessor(x); ok != (predWant != nil) || (ok && got != *predWant) {
			t.Fatalf("Predecessor(%d) = %v,%t want %v", x, got, ok, predWant)
		}
		if got, ok := tr.Successor(x); ok != (succWant != nil) || (ok && got != *succWant) {
			t.Fatalf("Successor(%d) = %v,%t want %v", x, got, ok, succWant)
		}
	}
}

func TestMaxInRangeOracle(t *testing.T) {
	d := emio.NewDisk(emio.Config{B: 8, M: 64})
	entries, tr := buildRandom(t, d, 400, 3)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 400; i++ {
		x1 := rng.Int63n(5000) - 500
		x2 := x1 + rng.Int63n(2000)
		want := int64(math.MinInt64)
		found := false
		for _, e := range entries {
			if e.Key >= x1 && e.Key <= x2 && (!found || e.Val > want) {
				want, found = e.Val, true
			}
		}
		got, ok := tr.MaxInRange(x1, x2)
		if ok != found || (ok && got != want) {
			t.Fatalf("MaxInRange(%d,%d) = %d,%t want %d,%t", x1, x2, got, ok, want, found)
		}
	}
}

func TestMaxInRangeEmptyAndInverted(t *testing.T) {
	d := emio.NewDisk(emio.Config{B: 8, M: 64})
	_, tr := buildRandom(t, d, 50, 5)
	if _, ok := tr.MaxInRange(10, 5); ok {
		t.Error("inverted range returned ok")
	}
}

func TestQueryCostLogarithmic(t *testing.T) {
	cfg := emio.Config{B: 16, M: 16 * 4}
	for _, n := range []int{100, 1000, 10000, 50000} {
		d := emio.NewDisk(cfg)
		entries := make([]Entry, n)
		for i := range entries {
			entries[i] = Entry{Key: int64(i * 3), Val: int64(i % 97)}
		}
		tr := Build(d, entries)
		fanout := cfg.B / 2
		height := 1
		for m := (n + fanout - 1) / fanout; m > 1; m = (m + fanout - 1) / fanout {
			height++
		}
		if tr.Height() != height {
			t.Errorf("n=%d: height %d, want %d", n, tr.Height(), height)
		}
		st := d.Measure(func() { tr.Predecessor(int64(n)) })
		if int(st.Reads) > height {
			t.Errorf("n=%d: predecessor cost %d reads > height %d", n, st.Reads, height)
		}
		st = d.Measure(func() { tr.MaxInRange(int64(n/4), int64(n*2)) })
		if int(st.Reads) > 2*height+2 {
			t.Errorf("n=%d: range-max cost %d reads > 2h+2 = %d", n, st.Reads, 2*height+2)
		}
	}
}

func TestSpaceLinear(t *testing.T) {
	cfg := emio.Config{B: 16, M: 16 * 4}
	d := emio.NewDisk(cfg)
	n := 10000
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Key: int64(i), Val: int64(i)}
	}
	tr := Build(d, entries)
	fanout := cfg.B / 2
	// Total nodes <= 2 * ceil(n/fanout) + 1.
	maxBlocks := 2*(n/fanout) + 3
	if tr.Blocks() > maxBlocks {
		t.Errorf("tree uses %d blocks, budget %d", tr.Blocks(), maxBlocks)
	}
	tr.Free()
	if d.LiveBlocks() != 0 {
		t.Errorf("Free leaked %d blocks", d.LiveBlocks())
	}
}

func TestBuildCostLinear(t *testing.T) {
	cfg := emio.Config{B: 32, M: 32 * 8}
	d := emio.NewDisk(cfg)
	n := 20000
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Key: int64(i), Val: int64(i)}
	}
	d.ResetStats()
	tr := Build(d, entries)
	d.DropCache()
	st := d.Stats()
	nb := float64(n) / float64(cfg.B)
	if float64(st.IOs()) > 6*nb+10 {
		t.Errorf("build cost %d I/Os, budget %.0f", st.IOs(), 6*nb+10)
	}
	_ = tr
}

func TestUnsortedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsorted keys")
		}
	}()
	d := emio.NewDisk(emio.Config{B: 16, M: 256})
	Build(d, []Entry{{Key: 5}, {Key: 3}})
}

func TestQuickPredecessorMatchesSort(t *testing.T) {
	f := func(keys []int64, probes []int64) bool {
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		var entries []Entry
		for i, k := range keys {
			if i > 0 && k == keys[i-1] {
				continue
			}
			entries = append(entries, Entry{Key: k, Val: k * 2})
		}
		d := emio.NewDisk(emio.Config{B: 6, M: 36})
		tr := Build(d, entries)
		for _, x := range probes {
			i := sort.Search(len(entries), func(j int) bool { return entries[j].Key > x })
			got, ok := tr.Predecessor(x)
			if (i > 0) != ok {
				return false
			}
			if ok && got != entries[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
