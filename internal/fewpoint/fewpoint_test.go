package fewpoint

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/emio"
	"repro/internal/geom"
)

func sameAnswer(got, want []geom.Point) bool {
	if len(got) == 0 && len(want) == 0 {
		return true
	}
	return reflect.DeepEqual(got, want)
}

func TestRayDragOracle(t *testing.T) {
	pts := geom.GenUniform(300, 3000, 121)
	geom.SortByX(pts)
	d := emio.NewDisk(emio.Config{B: 16, M: 16 * 64})
	r := NewRayDrag(d, 3000, pts)
	rng := rand.New(rand.NewSource(122))
	for q := 0; q < 500; q++ {
		alpha := geom.Coord(rng.Int63n(3300)) - 150
		beta := geom.Coord(rng.Int63n(3300)) - 150
		var want geom.Point
		found := false
		for _, p := range pts {
			if p.X <= alpha && p.Y >= beta && (!found || p.X > want.X) {
				want, found = p, true
			}
		}
		got, ok := r.Query(alpha, beta)
		if ok != found || (ok && got != want) {
			t.Fatalf("RayDrag(%d,%d) = %v,%t; want %v,%t", alpha, beta, got, ok, want, found)
		}
	}
}

// TestRayDragConstantIOs: Lemma 4's O(1) query cost.
func TestRayDragConstantIOs(t *testing.T) {
	cfg := emio.Config{B: 64, M: 64 * 4}
	rng := rand.New(rand.NewSource(123))
	for _, m := range []int{100, 1000, 5000} {
		pts := geom.GenUniform(m, int64(m)*8, int64(m))
		geom.SortByX(pts)
		d := emio.NewDisk(cfg)
		r := NewRayDrag(d, int64(m)*8, pts)
		var worst uint64
		for q := 0; q < 50; q++ {
			alpha := geom.Coord(rng.Int63n(int64(m) * 9))
			beta := geom.Coord(rng.Int63n(int64(m) * 9))
			st := d.Measure(func() { r.Query(alpha, beta) })
			if st.IOs() > worst {
				worst = st.IOs()
			}
		}
		// Two descents of the constant-height tree.
		if worst > 12 {
			t.Errorf("m=%d: worst ray-drag cost %d I/Os", m, worst)
		}
	}
}

func TestFewPointMatchesOracle(t *testing.T) {
	pts := geom.GenUniform(400, 4000, 124)
	geom.SortByX(pts)
	d := emio.NewDisk(emio.Config{B: 16, M: 16 * 64})
	s := Build(d, 4000, pts)
	rng := rand.New(rand.NewSource(125))
	for q := 0; q < 400; q++ {
		x1 := geom.Coord(rng.Int63n(4400)) - 200
		x2 := x1 + geom.Coord(rng.Int63n(2500))
		beta := geom.Coord(rng.Int63n(4400)) - 200
		got := s.Query(x1, x2, beta)
		want := geom.RangeSkyline(pts, geom.TopOpen(x1, x2, beta))
		if !sameAnswer(got, want) {
			t.Fatalf("Query(%d,%d,%d) = %v, want %v", x1, x2, beta, got, want)
		}
	}
}

func TestFewPointEmpty(t *testing.T) {
	d := emio.NewDisk(emio.Config{B: 16, M: 16 * 64})
	s := Build(d, 100, nil)
	if got := s.Query(0, 10, 0); got != nil {
		t.Fatalf("empty structure returned %v", got)
	}
}

// TestFewPointIOCost: Lemma 5's O(1 + k/B).
func TestFewPointIOCost(t *testing.T) {
	cfg := emio.Config{B: 64, M: 64 * 8}
	n := 4000
	pts := geom.GenStaircase(n, 126)
	geom.SortByX(pts)
	d := emio.NewDisk(cfg)
	s := Build(d, int64(n)*8, pts)
	rng := rand.New(rand.NewSource(127))
	for q := 0; q < 50; q++ {
		x1 := geom.Coord(rng.Int63n(int64(n) * 2))
		x2 := x1 + geom.Coord(rng.Int63n(int64(n)*2))
		beta := geom.Coord(rng.Int63n(int64(n) * 3))
		var res []geom.Point
		st := d.Measure(func() { res = s.Query(x1, x2, beta) })
		budget := 20.0 + 16*float64(len(res))/float64(cfg.B)
		if float64(st.IOs()) > budget {
			t.Errorf("few-point query k=%d cost %d I/Os, budget %.0f", len(res), st.IOs(), budget)
		}
	}
}
