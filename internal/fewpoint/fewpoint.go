// Package fewpoint implements the building blocks of Theorem 2:
//
//   - Lemma 4's ray-drag tree: for m = (B log U)^{O(1)} points, a
//     constant-height structure answering ray-dragging queries — the
//     first point hit by the vertical ray α × [β, U] as it moves left,
//     i.e. the point maximising x among {p : x_p ≤ α, y_p ≥ β} — in
//     O(1) I/Os. (The paper uses fusion trees for the in-node
//     predecessor steps; in the EM model a constant-height block tree
//     has the same I/O cost, since word-level parallelism only saves
//     CPU, which is free. See DESIGN.md, substitutions.)
//
//   - Lemma 5's few-point structure: for n ≤ (B log U)^{O(1)} points, a
//     linear-size structure answering top-open range skyline queries in
//     O(1 + k/B) I/Os, by ray-dragging to the lowest answer point and
//     walking host-leaf sibling pointers in a PPB-tree over Σ(P)
//     (Observations 1 and 2).
package fewpoint

import (
	"math"
	"sort"

	"repro/internal/emio"
	"repro/internal/extsort"
	"repro/internal/geom"
	"repro/internal/ppb"
)

// RayDrag is Lemma 4's structure.
type RayDrag struct {
	disk *emio.Disk
	root *rnode
	n    int
}

type rnode struct {
	block emio.BlockID
	words int

	pts      []geom.Point // leaf payload, sorted by x
	children []*rnode
	// ymax[i] is the highest point in children[i]'s subtree: the
	// minute-structure content Y*max(u) of Lemma 4.
	ymax       []geom.Point
	minX, maxX geom.Coord
}

func (nd *rnode) leaf() bool { return nd.children == nil }

// NewRayDrag builds the structure over pts sorted by x, for universe
// size u (which fixes the fan-out b^{1/3} with b = B·log₂U).
func NewRayDrag(d *emio.Disk, u int64, pts []geom.Point) *RayDrag {
	r := &RayDrag{disk: d, n: len(pts)}
	if len(pts) == 0 {
		return r
	}
	for i := 1; i < len(pts); i++ {
		if pts[i-1].X >= pts[i].X {
			panic("fewpoint: ray-drag input not sorted by x")
		}
	}
	b := float64(d.Config().B) * math.Log2(float64(u)+2)
	fan := int(math.Cbrt(b))
	if fan < 2 {
		fan = 2
	}
	leafCap := d.Config().B
	if leafCap < 2 {
		leafCap = 2
	}
	var level []*rnode
	for lo := 0; lo < len(pts); lo += leafCap {
		hi := lo + leafCap
		if hi > len(pts) {
			hi = len(pts)
		}
		nd := &rnode{pts: append([]geom.Point(nil), pts[lo:hi]...)}
		nd.minX, nd.maxX = nd.pts[0].X, nd.pts[len(nd.pts)-1].X
		nd.words = 2 * len(nd.pts)
		nd.block = d.AllocSpan(nd.words)
		d.WriteSpan(nd.block, nd.words)
		level = append(level, nd)
	}
	for len(level) > 1 {
		var up []*rnode
		for lo := 0; lo < len(level); lo += fan {
			hi := lo + fan
			if hi > len(level) {
				hi = len(level)
			}
			nd := &rnode{children: append([]*rnode(nil), level[lo:hi]...)}
			for _, c := range nd.children {
				nd.ymax = append(nd.ymax, subtreeYmax(c))
			}
			nd.minX = nd.children[0].minX
			nd.maxX = nd.children[len(nd.children)-1].maxX
			nd.words = 3 * len(nd.children)
			nd.block = d.AllocSpan(nd.words)
			d.WriteSpan(nd.block, nd.words)
			up = append(up, nd)
		}
		level = up
	}
	r.root = level[0]
	return r
}

func subtreeYmax(nd *rnode) geom.Point {
	if nd.leaf() {
		best := nd.pts[0]
		for _, p := range nd.pts {
			if p.Y > best.Y {
				best = p
			}
		}
		return best
	}
	best := nd.ymax[0]
	for _, p := range nd.ymax {
		if p.Y > best.Y {
			best = p
		}
	}
	return best
}

// Query returns the first point hit by the ray α × [β, ∞) moving left:
// the maximum-x point with x <= α and y >= β. O(1) I/Os (two
// constant-length root-to-leaf descents).
func (r *RayDrag) Query(alpha, beta geom.Coord) (geom.Point, bool) {
	if r.root == nil {
		return geom.Point{}, false
	}
	return r.query(r.root, alpha, beta)
}

func (r *RayDrag) query(nd *rnode, alpha, beta geom.Coord) (geom.Point, bool) {
	r.disk.ReadSpan(nd.block, nd.words)
	if nd.leaf() {
		var best geom.Point
		found := false
		for _, p := range nd.pts {
			if p.X <= alpha && p.Y >= beta && (!found || p.X > best.X) {
				best, found = p, true
			}
		}
		return best, found
	}
	for i := len(nd.children) - 1; i >= 0; i-- {
		c := nd.children[i]
		if c.minX > alpha {
			continue
		}
		if c.maxX <= alpha {
			// Fully left: the subtree has a qualifying point iff its
			// highest point reaches β, and any qualifying point here
			// beats all further-left siblings.
			if nd.ymax[i].Y >= beta {
				return r.maxXAbove(c, beta), true
			}
			continue
		}
		// Boundary child: search it; qualifying points inside beat
		// all points in fully-left siblings.
		if p, ok := r.query(c, alpha, beta); ok {
			return p, true
		}
	}
	return geom.Point{}, false
}

// maxXAbove returns the maximum-x point with y >= beta in a subtree
// known to contain one. O(height) I/Os.
func (r *RayDrag) maxXAbove(nd *rnode, beta geom.Coord) geom.Point {
	r.disk.ReadSpan(nd.block, nd.words)
	if nd.leaf() {
		var best geom.Point
		found := false
		for _, p := range nd.pts {
			if p.Y >= beta && (!found || p.X > best.X) {
				best, found = p, true
			}
		}
		if !found {
			panic("fewpoint: maxXAbove on subtree without qualifying point")
		}
		return best
	}
	for i := len(nd.children) - 1; i >= 0; i-- {
		if nd.ymax[i].Y >= beta {
			return r.maxXAbove(nd.children[i], beta)
		}
	}
	panic("fewpoint: maxXAbove descent failed")
}

// Structure is Lemma 5's few-point top-open structure.
type Structure struct {
	disk *emio.Disk
	segs *ppb.Tree
	ray  *RayDrag
	xs   []geom.Coord // x of point i in build (x-sorted) order
	n    int
}

// Build constructs the structure over pts sorted by x (general
// position), for universe size u.
func Build(d *emio.Disk, u int64, pts []geom.Point) *Structure {
	s := &Structure{disk: d, n: len(pts)}
	if len(pts) == 0 {
		return s
	}
	f := extsort.FromSlice(d, 2, pts)
	s.segs = ppb.BuildSABE(d, f)
	f.Free()
	s.ray = NewRayDrag(d, u, pts)
	s.xs = make([]geom.Coord, len(pts))
	for i, p := range pts {
		s.xs[i] = p.X
	}
	return s
}

// Len returns the number of indexed points.
func (s *Structure) Len() int { return s.n }

// Query answers the top-open query [x1,x2] × [beta, ∞) in O(1 + k/B)
// I/Os: a ray-drag locates the lowest result point p, and the walk over
// the host-leaf sibling chain of σ(p) reports the rest bottom-up until a
// segment's left endpoint leaves the x-range (Observation 2).
func (s *Structure) Query(x1, x2, beta geom.Coord) []geom.Point {
	if s.n == 0 || x1 > x2 {
		return nil
	}
	p, ok := s.ray.Query(x2, beta)
	if !ok || p.X < x1 {
		return nil
	}
	idx := sort.Search(len(s.xs), func(j int) bool { return s.xs[j] >= p.X })
	var rev []geom.Point
	s.segs.WalkUp(idx, func(q geom.Point) bool {
		if q.X < x1 {
			return false
		}
		rev = append(rev, q)
		return true
	})
	out := make([]geom.Point, len(rev))
	for i, q := range rev {
		out[len(rev)-1-i] = q
	}
	return out
}
