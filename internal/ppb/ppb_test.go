package ppb

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/emio"
	"repro/internal/extsort"
	"repro/internal/geom"
	"repro/internal/sweep"
)

func pt(x, y geom.Coord) geom.Point { return geom.Point{X: x, Y: y} }

func buildFor(t testing.TB, cfg emio.Config, pts []geom.Point, mode Mode) (*emio.Disk, *Tree) {
	t.Helper()
	d := emio.NewDisk(cfg)
	sorted := append([]geom.Point(nil), pts...)
	geom.SortByX(sorted)
	f := extsort.FromSlice(d, 2, sorted)
	var tr *Tree
	if mode == SABE {
		tr = BuildSABE(d, f)
	} else {
		tr = BuildClassic(d, f)
	}
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatalf("invariant violated: %s", msg)
	}
	return d, tr
}

// oracle answers a stabbing query brute-force on the segment set.
func oracle(pts []geom.Point, x, ylo, yhi geom.Coord) []geom.Point {
	sorted := append([]geom.Point(nil), pts...)
	geom.SortByX(sorted)
	segs := sweep.Segments(sorted)
	var out []geom.Point
	for _, s := range segs {
		if s.Intersects(x, ylo, yhi) {
			out = append(out, s.P)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Y < out[j].Y })
	return out
}

func TestQueryMatchesOracleSmall(t *testing.T) {
	pts := []geom.Point{pt(1, 9), pt(2, 4), pt(3, 7), pt(5, 6), pt(6, 2), pt(7, 5), pt(8, 1), pt(9, 3)}
	_, tr := buildFor(t, emio.Config{B: 16, M: 256}, pts, SABE)
	for x := geom.Coord(0); x <= 10; x++ {
		for ylo := geom.Coord(0); ylo <= 10; ylo += 2 {
			for yhi := ylo; yhi <= 10; yhi += 3 {
				got := tr.Query(x, ylo, yhi)
				want := oracle(pts, x, ylo, yhi)
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("Query(%d,%d,%d) = %v, want %v", x, ylo, yhi, got, want)
				}
			}
		}
	}
}

func TestQueryMatchesOracleRandom(t *testing.T) {
	for _, cfg := range []emio.Config{
		{B: 16, M: 16 * 8},
		{B: 32, M: 32 * 8},
		{B: 64, M: 64 * 16},
	} {
		for seed := int64(0); seed < 3; seed++ {
			pts := geom.GenUniform(400, 4000, seed)
			_, tr := buildFor(t, cfg, pts, SABE)
			rng := rand.New(rand.NewSource(seed + 100))
			for q := 0; q < 200; q++ {
				x := geom.Coord(rng.Int63n(4400)) - 200
				ylo := geom.Coord(rng.Int63n(4400)) - 200
				yhi := ylo + geom.Coord(rng.Int63n(2000))
				got := tr.Query(x, ylo, yhi)
				want := oracle(pts, x, ylo, yhi)
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("cfg=%+v seed=%d: Query(%d,%d,%d) = %v, want %v",
						cfg, seed, x, ylo, yhi, got, want)
				}
			}
		}
	}
}

func TestClassicProducesSameAnswers(t *testing.T) {
	pts := geom.GenUniform(300, 3000, 77)
	_, trS := buildFor(t, emio.Config{B: 32, M: 32 * 8}, pts, SABE)
	_, trC := buildFor(t, emio.Config{B: 32, M: 32 * 8}, pts, Classic)
	rng := rand.New(rand.NewSource(78))
	for q := 0; q < 100; q++ {
		x := geom.Coord(rng.Int63n(3300))
		ylo := geom.Coord(rng.Int63n(3300))
		yhi := ylo + geom.Coord(rng.Int63n(1500))
		a := trS.Query(x, ylo, yhi)
		b := trC.Query(x, ylo, yhi)
		if len(a) == 0 && len(b) == 0 {
			continue
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("mode mismatch at (%d,%d,%d): %v vs %v", x, ylo, yhi, a, b)
		}
	}
}

func TestQuickQueryMatchesOracle(t *testing.T) {
	f := func(raw []int16, qx, qlo int16, span uint8) bool {
		var pts []geom.Point
		seenX := map[geom.Coord]bool{}
		seenY := map[geom.Coord]bool{}
		for i := 0; i+1 < len(raw); i += 2 {
			p := geom.Point{X: geom.Coord(raw[i]), Y: geom.Coord(raw[i+1])}
			if seenX[p.X] || seenY[p.Y] {
				continue
			}
			seenX[p.X], seenY[p.Y] = true, true
			pts = append(pts, p)
		}
		if len(pts) == 0 {
			return true
		}
		d := emio.NewDisk(emio.Config{B: 16, M: 16 * 6})
		sorted := append([]geom.Point(nil), pts...)
		geom.SortByX(sorted)
		file := extsort.FromSlice(d, 2, sorted)
		tr := BuildSABE(d, file)
		if tr.CheckInvariants() != "" {
			return false
		}
		x, ylo := geom.Coord(qx), geom.Coord(qlo)
		yhi := ylo + geom.Coord(span)
		got := tr.Query(x, ylo, yhi)
		want := oracle(pts, x, ylo, yhi)
		if len(got) == 0 && len(want) == 0 {
			return true
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestWalkUpEnumeratesSnapshot(t *testing.T) {
	pts := geom.GenUniform(300, 3000, 5)
	_, tr := buildFor(t, emio.Config{B: 32, M: 32 * 8}, pts, SABE)
	sorted := append([]geom.Point(nil), pts...)
	geom.SortByX(sorted)
	for i, p := range sorted {
		var got []geom.Point
		tr.WalkUp(i, func(q geom.Point) bool {
			got = append(got, q)
			return true
		})
		want := oracle(pts, p.X, p.Y, geom.PosInf)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("WalkUp(%d)=%v want %v", i, got, want)
		}
	}
}

func TestWalkUpEarlyStop(t *testing.T) {
	pts := geom.GenUniform(200, 2000, 6)
	_, tr := buildFor(t, emio.Config{B: 32, M: 32 * 8}, pts, SABE)
	var got []geom.Point
	tr.WalkUp(0, func(q geom.Point) bool {
		got = append(got, q)
		return len(got) < 3
	})
	if len(got) > 3 {
		t.Fatalf("WalkUp ignored early stop: %d visits", len(got))
	}
}

// TestSpaceLinear: O(n/B) blocks (Theorem 1's space claim).
func TestSpaceLinear(t *testing.T) {
	cfg := emio.Config{B: 32, M: 32 * 8}
	for _, n := range []int{500, 2000, 8000} {
		pts := geom.GenUniform(n, int64(n)*10, int64(n))
		_, tr := buildFor(t, cfg, pts, SABE)
		cap := tr.Cap()
		// MVBT: every reorg consumes >= cap/8 events, each event
		// appears O(1) times => nodes <= c * n/cap.
		maxNodes := 16*n/cap + 8
		if tr.NodesCreated() > maxNodes {
			t.Errorf("n=%d: %d nodes created, budget %d", n, tr.NodesCreated(), maxNodes)
		}
	}
}

// TestSABEBuildLinearIO: Theorem 1's SABE claim, O(n/B) build I/Os.
func TestSABEBuildLinearIO(t *testing.T) {
	cfg := emio.Config{B: 32, M: 32 * 16}
	for _, n := range []int{1000, 4000, 16000} {
		d := emio.NewDisk(cfg)
		pts := geom.GenUniform(n, int64(n)*8, 3)
		geom.SortByX(pts)
		f := extsort.FromSlice(d, 2, pts)
		d.DropCache()
		d.ResetStats()
		tr := BuildSABE(d, f)
		d.DropCache()
		st := d.Stats()
		nb := float64(n) / float64(cfg.B)
		if float64(st.IOs()) > 40*nb+50 {
			t.Errorf("n=%d: SABE build cost %d I/Os, budget %.0f", n, st.IOs(), 40*nb+50)
		}
		tr.Free()
		f.Free()
		if d.LiveBlocks() != 0 {
			t.Errorf("n=%d: leaked %d blocks", n, d.LiveBlocks())
		}
	}
}

// TestClassicBuildSlower: the E9 ablation signal — classic loading pays
// a log_B factor over SABE.
func TestClassicBuildSlower(t *testing.T) {
	cfg := emio.Config{B: 32, M: 32 * 16}
	n := 16000
	pts := geom.GenUniform(n, int64(n)*8, 3)
	geom.SortByX(pts)

	measure := func(mode Mode) uint64 {
		d := emio.NewDisk(cfg)
		f := extsort.FromSlice(d, 2, pts)
		d.DropCache()
		d.ResetStats()
		if mode == SABE {
			BuildSABE(d, f)
		} else {
			BuildClassic(d, f)
		}
		d.DropCache()
		return d.Stats().IOs()
	}
	sabe := measure(SABE)
	classic := measure(Classic)
	if classic < 2*sabe {
		t.Errorf("classic build (%d I/Os) not clearly slower than SABE (%d I/Os)", classic, sabe)
	}
}

// TestQueryIOCost: O(log_B n + k/B) with explicit constants.
func TestQueryIOCost(t *testing.T) {
	cfg := emio.Config{B: 64, M: 64 * 8}
	n := 20000
	pts := geom.GenStaircase(n, 9) // heavy-output adversary
	d, tr := buildFor(t, cfg, pts, SABE)
	height := float64(tr.Levels())
	capacity := float64(tr.Cap())
	rng := rand.New(rand.NewSource(10))
	for q := 0; q < 50; q++ {
		x := geom.Coord(rng.Int63n(int64(n) * 2))
		ylo := geom.Coord(rng.Int63n(int64(n) * 2))
		yhi := ylo + geom.Coord(rng.Int63n(int64(n)))
		var res []geom.Point
		st := d.Measure(func() { res = tr.Query(x, ylo, yhi) })
		k := float64(len(res))
		budget := 4*height + 8 + 16*k/capacity
		if float64(st.IOs()) > budget {
			t.Errorf("query k=%d cost %d I/Os, budget %.0f (h=%v cap=%v)",
				len(res), st.IOs(), budget, height, capacity)
		}
	}
}

func TestHeightLogarithmic(t *testing.T) {
	cfg := emio.Config{B: 64, M: 64 * 8}
	_, tr := buildFor(t, cfg, geom.GenUniform(20000, 200000, 4), SABE)
	// Height should be about log_{cap/4}(n/cap) + O(1).
	capQ := float64(tr.Cap()) / 4
	want := math.Log(20000.0/float64(tr.Cap()))/math.Log(capQ) + 3
	if float64(tr.Levels()) > want {
		t.Errorf("height %d exceeds %f", tr.Levels(), want)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	d := emio.NewDisk(emio.Config{B: 16, M: 256})
	f := extsort.NewFile[geom.Point](d, 2)
	tr := BuildSABE(d, f)
	if got := tr.Query(5, 0, 10); got != nil {
		t.Fatalf("empty tree returned %v", got)
	}

	f2 := extsort.FromSlice(d, 2, []geom.Point{pt(3, 4)})
	tr2 := BuildSABE(d, f2)
	if got := tr2.Query(3, 0, 10); len(got) != 1 || got[0] != pt(3, 4) {
		t.Fatalf("singleton query = %v", got)
	}
	if got := tr2.Query(2, 0, 10); got != nil {
		t.Fatalf("query before birth returned %v", got)
	}
}

func TestUnsortedInputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsorted input")
		}
	}()
	d := emio.NewDisk(emio.Config{B: 16, M: 256})
	f := extsort.FromSlice(d, 2, []geom.Point{pt(5, 1), pt(3, 2)})
	BuildSABE(d, f)
}

// TestFigure4NodeRectangles: every finalized node's rectangle lifetime is
// well-formed and its entries' lifetimes nest within it, the structural
// content of Figure 4.
func TestFigure4NodeRectangles(t *testing.T) {
	pts := geom.GenUniform(1000, 10000, 12)
	_, tr := buildFor(t, emio.Config{B: 16, M: 16 * 8}, pts, SABE)
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	// Additionally verify the level-1 "segments" (bottom edges of leaf
	// rectangles, Lemma 3) are nesting and monotonic.
	var segs []sweep.Segment
	for _, nd := range tr.allNodes {
		if nd.level != 0 {
			continue
		}
		segs = append(segs, sweep.Segment{
			P:    geom.Point{X: nd.x1, Y: nd.ylow},
			XEnd: nd.x2,
		})
	}
	if a, b, ok := sweep.CheckNesting(segs); !ok {
		t.Fatalf("Lemma 3 nesting violated by %v and %v", a, b)
	}
}
