// Package ppb implements the partially persistent B-tree (PPB-tree, also
// known as the multiversion B-tree of Becker et al., the paper's [6])
// over the segment set Σ(P) of §2.1, specialised to inputs satisfying the
// nesting and monotonicity properties of Lemma 2.
//
// The tree is the union of every snapshot B-tree T(ℓ) produced by
// sweeping a vertical line ℓ across Σ(P): when ℓ hits a segment's left
// (right) endpoint, the segment's y-coordinate is inserted into (deleted
// from) T(ℓ). Because Σ(P) is nesting and monotonic, every update happens
// at the *bottom* of ℓ (§2.3), so the affected node at every level is
// always the leftmost one and can be kept buffered. This makes the
// construction sort-aware build-efficient (SABE): O(n/B) I/Os given
// x-sorted input, versus the O(n log_B n) of generic PPB-tree loading.
// Both modes are implemented (BuildSABE / BuildClassic) for the E9
// ablation.
//
// Unlike the paper's presentation, which builds level i+1 in a separate
// pass over the finalized node rectangles of level i (Lemma 3 shows the
// rectangle set Σ_{i+1} is again nesting and monotonic), this builder
// maintains all levels online in a single sweep. The event sequence seen
// by each level is identical, so the structure and the O(n/B) total cost
// are the same; the online form additionally lets the classic-mode
// ablation charge per-update root descents against a real current tree.
// One node per level is buffered (pinned), the multi-level analogue of
// the paper's single buffered leftmost leaf.
package ppb

import (
	"fmt"
	"sort"

	"repro/internal/emio"
	"repro/internal/extsort"
	"repro/internal/geom"
	"repro/internal/sweep"
)

// Mode selects the construction algorithm.
type Mode int

const (
	// SABE exploits Lemma 2/3: bottom nodes stay pinned, O(n/B) I/Os.
	SABE Mode = iota
	// Classic models the generic update-driven PPB-tree load: every
	// one of the 2n updates pays a root-to-leaf search, O(n log_B n).
	Classic
)

// entryWords is the on-disk width of one node entry (y, birth, death,
// pointer), and nodeHeaderWords the per-node header (lifetime, ylow,
// sibling).
const (
	entryWords      = 4
	nodeHeaderWords = 4
)

// entry is one slot of a node: a segment occurrence (leaf level) or a
// child occurrence (internal levels), alive during [birth, death).
type entry struct {
	y     geom.Coord
	birth geom.Coord
	death geom.Coord // PosInf until stamped
	pt    geom.Point // leaf payload: σ's left endpoint, i.e. the point
	child *node      // internal levels
}

func (e *entry) liveAt(x geom.Coord) bool { return e.birth <= x && x < e.death }

// node is one PPB-tree node, visualisable as the rectangle
// [x1,x2) × [ylow, sibling's ylow) of Figure 4.
type node struct {
	level   int
	block   emio.BlockID
	words   int
	x1, x2  geom.Coord // lifetime; x2 = PosInf while alive
	ylow    geom.Coord // routing key: min live y at creation
	entries []*entry
	live    int  // build-time live count
	pinned  bool // SABE: currently the buffered bottom node

	// sibling is the node directly above this one in every snapshot
	// during this node's lifetime (footnote 3 of the paper: one
	// pointer suffices because all updates happen below).
	sibling *node

	// parentEntry is the live entry currently representing this node
	// one level up (nil while no parent level exists).
	parentEntry *entry
}

// Tree is the queryable PPB-tree.
type Tree struct {
	disk *emio.Disk
	cap  int // entries per node

	levels   int
	nodes    int // total nodes ever created
	allNodes []*node

	rootLog   []rootAt // root per version interval, ascending x
	rootBlock emio.BlockID
	rootWords int

	// hostLeaf[i] is the leaf alive at x = pts[i].X containing
	// pts[i].Y at that version: the "host leaf" of Lemma 5.
	hostLeaf  []*node
	hostBlock emio.BlockID
	hostWords int
	pts       []geom.Point
}

type rootAt struct {
	x    geom.Coord
	node *node
}

// builder carries per-level construction state. Builders form a doubly
// linked chain (parent/child) from the leaf level upward.
type builder struct {
	t     *Tree
	level int
	stack []*node // live nodes, bottom (lowest y) first
	mode  Mode

	parent *builder
	child  *builder
}

// capFor returns the entries-per-node capacity for a block size.
func capFor(cfg emio.Config) int {
	c := (cfg.B - nodeHeaderWords) / entryWords
	if c < 4 {
		c = 4
	}
	return c
}

func (t *Tree) strongMin() int { return t.cap / 4 }
func (t *Tree) strongMax() int { return t.cap - t.cap/4 }
func (t *Tree) weakMin() int {
	w := t.cap / 8
	if w < 1 {
		w = 1
	}
	return w
}

// BuildSABE constructs the PPB-tree over Σ(P) for the points of pts
// (sorted by x, general position) in O(n/B) I/Os. The input file is
// preserved.
func BuildSABE(d *emio.Disk, pts *extsort.File[geom.Point]) *Tree {
	return build(d, pts, SABE)
}

// BuildClassic constructs the same tree but charges every update a
// root-to-leaf search with no locality, modelling generic PPB-tree
// loading: O(n log_B n) I/Os.
func BuildClassic(d *emio.Disk, pts *extsort.File[geom.Point]) *Tree {
	return build(d, pts, Classic)
}

func build(d *emio.Disk, ptsFile *extsort.File[geom.Point], mode Mode) *Tree {
	t := &Tree{disk: d, cap: capFor(d.Config())}
	// Death events: the sweep emits Σ(P) in non-descending right
	// endpoint order, ties lower-y first — exactly the order deletions
	// must be applied. Unbounded (skyline) segments never die.
	deaths := sweep.SegmentsEM(d, ptsFile)
	defer deaths.Free()

	lb := &builder{t: t, level: 0, mode: mode}
	t.pts = extsort.ToSlice(ptsFile)
	t.hostLeaf = make([]*node, len(t.pts))

	dr := extsort.NewReader(deaths)
	nextDeath, haveDeath := dr.Next()
	skipUnbounded := func() {
		for haveDeath && nextDeath.XEnd == geom.PosInf {
			nextDeath, haveDeath = dr.Next()
		}
	}
	skipUnbounded()
	for i, p := range t.pts {
		if i > 0 && t.pts[i-1].X >= p.X {
			panic("ppb: input not sorted by x")
		}
		// Deaths at x <= p.X happen before σ(p) is born (a point's
		// arrival finalises the segments it dominates first).
		for haveDeath && nextDeath.XEnd <= p.X {
			lb.classicDescent()
			death := nextDeath
			nextDeath, haveDeath = dr.Next()
			skipUnbounded()
			lb.deleteLowest(death.XEnd, death.P)
			t.fixRoot(lb, death.XEnd)
		}
		lb.classicDescent()
		leaf := lb.insertBottom(&entry{y: p.Y, birth: p.X, death: geom.PosInf, pt: p}, p.X)
		t.hostLeaf[i] = leaf
		t.fixRoot(lb, p.X)
	}
	if haveDeath {
		panic("ppb: dangling bounded death events")
	}

	// Unpin the still-live bottom nodes: construction is over.
	for b := lb; b != nil; b = b.parent {
		for _, nd := range b.stack {
			if nd.pinned {
				t.disk.UnpinSpan(nd.block, nd.words)
				nd.pinned = false
			}
		}
	}

	// Auxiliary arrays: host-leaf pointers (n words) and the root log
	// (two words per root change), both written sequentially.
	if n := len(t.pts); n > 0 {
		t.hostWords = n
		t.hostBlock = d.AllocSpan(t.hostWords)
		d.WriteSpan(t.hostBlock, t.hostWords)
		t.rootWords = 2 * len(t.rootLog)
		t.rootBlock = d.AllocSpan(t.rootWords)
		d.WriteSpan(t.rootBlock, t.rootWords)
	}
	return t
}

// classicDescent charges the root-to-leaf search a generic loader pays
// per update (Classic mode only). The path consists of the bottom node
// of every level; ReadCold models the absence of locality guarantees in
// generic bulk-loading.
func (b *builder) classicDescent() {
	if b.mode != Classic {
		return
	}
	top := b
	for top.parent != nil {
		top = top.parent
	}
	for lb := top; lb != nil; lb = lb.child {
		if len(lb.stack) > 0 {
			b.t.disk.ReadCold(lb.stack[0].block)
		}
	}
}

// fixRoot records the current effective root (the single live node of
// the topmost non-empty level) whenever it changes.
func (t *Tree) fixRoot(leafB *builder, x geom.Coord) {
	top := leafB
	for top.parent != nil {
		top = top.parent
	}
	for top != nil && len(top.stack) == 0 {
		top = top.child
	}
	if top == nil {
		return
	}
	root := top.stack[0]
	if n := len(t.rootLog); n > 0 && t.rootLog[n-1].node == root {
		return
	}
	if n := len(t.rootLog); n > 0 && t.rootLog[n-1].x == x {
		// Same position: overwrite, queries never see the transient.
		t.rootLog[n-1].node = root
		return
	}
	t.rootLog = append(t.rootLog, rootAt{x: x, node: root})
}

// insertBottom inserts a newborn entry at the bottom of the level and
// returns the node it ends up in after any reorganisation.
func (b *builder) insertBottom(e *entry, x geom.Coord) *node {
	t := b.t
	if len(b.stack) == 0 {
		nd := b.newNode(x, []*entry{e})
		b.pushBottom(nd, x)
		return nd
	}
	nd := b.stack[0]
	nd.entries = append(nd.entries, e)
	nd.live++
	t.writeNode(nd)
	if len(nd.entries) >= t.cap {
		nd = b.reorg(x)
	}
	return nd
}

// deleteLowest stamps the death of the lowest live entry of the level,
// which must carry the given point (leaf-level assertion of the
// bottom-update discipline).
func (b *builder) deleteLowest(x geom.Coord, p geom.Point) {
	b.deleteEntry(x, func(e *entry) {
		if e.pt != p {
			panic(fmt.Sprintf("ppb: death order violated: got %v want %v", e.pt, p))
		}
	})
}

// deleteEntryFor stamps the death of the live entry representing child nd.
func (b *builder) deleteEntryFor(x geom.Coord, nd *node) {
	b.deleteEntry(x, func(e *entry) {
		if e.child != nd {
			panic("ppb: internal death order violated")
		}
	})
}

func (b *builder) deleteEntry(x geom.Coord, check func(*entry)) {
	t := b.t
	if len(b.stack) == 0 {
		panic("ppb: delete from empty level")
	}
	nd := b.stack[0]
	e := lowestLive(nd, x)
	if e == nil {
		panic("ppb: bottom node has no live entry")
	}
	check(e)
	e.death = x
	nd.live--
	t.writeNode(nd)
	if nd.live == 0 && len(b.stack) == 1 {
		b.stack = b.stack[:0]
		b.finalize(nd, x)
		return
	}
	if nd.live < t.weakMin() && len(b.stack) > 1 {
		b.reorg(x)
	}
}

// lowestLive returns the live entry with minimum y at version x.
func lowestLive(nd *node, x geom.Coord) *entry {
	var best *entry
	for _, e := range nd.entries {
		if e.death > x && (best == nil || e.y < best.y) {
			best = e
		}
	}
	return best
}

// reorg performs version copy / split / merge at the bottom of the
// level: it finalizes the bottom node (absorbing the node above while
// the live count stays below the strong minimum), then recreates the
// live entries as fresh nodes whose live counts lie within
// [strongMin, strongMax]. Returns the new bottom node (nil if the level
// emptied). O(1) node reads and writes per call, and each created node
// absorbs Ω(cap) further events before it can trigger another reorg —
// the MVBT amortisation that bounds total nodes by O(n/cap).
func (b *builder) reorg(x geom.Coord) *node {
	t := b.t
	var liveEntries []*entry
	absorb := func() {
		nd := b.stack[0]
		b.stack = b.stack[1:]
		t.readNode(nd) // the node above may be cold; the bottom is pinned
		for _, e := range nd.entries {
			if e.death > x {
				liveEntries = append(liveEntries, e)
			}
		}
		b.finalize(nd, x)
	}
	absorb()
	for len(liveEntries) < t.strongMin() && len(b.stack) > 0 {
		absorb()
	}
	sort.Slice(liveEntries, func(i, j int) bool { return liveEntries[i].y < liveEntries[j].y })

	total := len(liveEntries)
	if total == 0 {
		return nil
	}
	// Chunk into ceil(total/strongMax) balanced nodes, upper chunks
	// first so each push happens at the current bottom.
	parts := (total + t.strongMax() - 1) / t.strongMax()
	var bottom *node
	for i := parts - 1; i >= 0; i-- {
		lo, hi := i*total/parts, (i+1)*total/parts
		chunk := liveEntries[lo:hi]
		copies := make([]*entry, len(chunk))
		for j, e := range chunk {
			copies[j] = &entry{y: e.y, birth: x, death: e.death, pt: e.pt, child: e.child}
			if e.child != nil {
				e.child.parentEntry = copies[j]
			}
		}
		nd := b.newNode(x, copies)
		b.pushBottom(nd, x)
		bottom = nd
	}
	return bottom
}

// newNode allocates a node whose initial entries are the given live set
// (sorted ascending y).
func (b *builder) newNode(x geom.Coord, initial []*entry) *node {
	t := b.t
	words := nodeHeaderWords + t.cap*entryWords
	nd := &node{
		level:   b.level,
		words:   words,
		x1:      x,
		x2:      geom.PosInf,
		entries: initial,
		live:    len(initial),
	}
	if len(initial) > 0 {
		nd.ylow = initial[0].y
		for _, e := range initial {
			if e.y < nd.ylow {
				nd.ylow = e.y
			}
		}
	}
	nd.block = t.disk.AllocSpan(words)
	t.nodes++
	t.allNodes = append(t.allNodes, nd)
	if b.level+1 > t.levels {
		t.levels = b.level + 1
	}
	t.writeNode(nd)
	return nd
}

// pushBottom makes nd the new bottom of the level: it takes over the
// buffered (pinned) slot, sets its sibling pointer, and announces its
// birth to the parent level, spawning the parent when this level first
// holds two live nodes.
func (b *builder) pushBottom(nd *node, x geom.Coord) {
	t := b.t
	if len(b.stack) > 0 {
		nd.sibling = b.stack[0]
		if old := b.stack[0]; old.pinned {
			t.disk.UnpinSpan(old.block, old.words)
			old.pinned = false
		}
	}
	if b.mode == SABE {
		t.disk.PinSpan(nd.block, nd.words)
		nd.pinned = true
	}
	b.stack = append([]*node{nd}, b.stack...)
	if b.parent != nil {
		e := &entry{y: nd.ylow, birth: x, death: geom.PosInf, child: nd}
		nd.parentEntry = e
		b.parent.insertBottom(e, x)
		return
	}
	if len(b.stack) >= 2 {
		b.spawnParent(x)
	}
}

// spawnParent creates the parent level seeded with this level's current
// live nodes, top first so that each insertion lands at the parent's
// bottom.
func (b *builder) spawnParent(x geom.Coord) {
	b.parent = &builder{t: b.t, level: b.level + 1, mode: b.mode, child: b}
	for i := len(b.stack) - 1; i >= 0; i-- {
		nd := b.stack[i]
		e := &entry{y: nd.ylow, birth: x, death: geom.PosInf, child: nd}
		nd.parentEntry = e
		b.parent.insertBottom(e, x)
	}
}

// finalize version-copies nd out of existence at x. The caller must
// already have removed nd from the stack.
func (b *builder) finalize(nd *node, x geom.Coord) {
	t := b.t
	nd.x2 = x
	t.writeNode(nd)
	if nd.pinned {
		t.disk.UnpinSpan(nd.block, nd.words)
		nd.pinned = false
	}
	if b.parent != nil && nd.parentEntry != nil {
		b.parent.deleteEntryFor(x, nd)
	}
}

func (t *Tree) readNode(nd *node)  { t.disk.ReadSpan(nd.block, nd.words) }
func (t *Tree) writeNode(nd *node) { t.disk.WriteSpan(nd.block, nd.words) }
