package ppb

import (
	"sort"

	"repro/internal/emio"
	"repro/internal/geom"
)

// rootAtVersion returns the root node governing version x (nil if the
// tree was empty at x). Costs one I/O for the root-log lookup.
func (t *Tree) rootAtVersion(x geom.Coord) *node {
	if len(t.rootLog) == 0 {
		return nil
	}
	t.disk.Read(t.rootBlock)
	i := sort.Search(len(t.rootLog), func(j int) bool { return t.rootLog[j].x > x }) - 1
	if i < 0 {
		return nil
	}
	return t.rootLog[i].node
}

// Query reports the points whose segments are alive at version x with
// y ∈ [ylo, yhi] — i.e. the segments of Σ(P) intersecting the vertical
// segment x × [ylo, yhi] — in ascending y order.
// Cost: O(log_B n + k/B) I/Os.
func (t *Tree) Query(x, ylo, yhi geom.Coord) []geom.Point {
	root := t.rootAtVersion(x)
	if root == nil || ylo > yhi {
		return nil
	}
	var out []geom.Point
	t.queryNode(root, x, ylo, yhi, &out)
	sort.Slice(out, func(i, j int) bool { return out[i].Y < out[j].Y })
	return out
}

func (t *Tree) queryNode(nd *node, x, ylo, yhi geom.Coord, out *[]geom.Point) {
	t.readNode(nd)
	if nd.level == 0 {
		for _, e := range nd.entries {
			if e.liveAt(x) && e.y >= ylo && e.y <= yhi {
				*out = append(*out, e.pt)
			}
		}
		return
	}
	// Live children sorted by routing key; child i covers
	// [ylow_i, ylow_{i+1}), with the bottom child additionally covering
	// everything below its ylow (births always land at the bottom).
	var live []*entry
	for _, e := range nd.entries {
		if e.liveAt(x) {
			live = append(live, e)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].y < live[j].y })
	for i, e := range live {
		lower := e.y
		if i == 0 {
			lower = geom.NegInf
		}
		upper := geom.Coord(geom.PosInf)
		if i+1 < len(live) {
			upper = live[i+1].y - 1
		}
		if upper < ylo || lower > yhi {
			continue
		}
		t.queryNode(e.child, x, ylo, yhi, out)
	}
}

// WalkUp implements Observation 2 / Lemma 5's reporting walk: starting
// from the host leaf of input point i (the leaf of the snapshot tree
// T(x_p) containing y_p), it visits the points of the segments alive at
// x = pts[i].X in ascending y order beginning with pts[i] itself,
// calling visit for each; the walk stops when visit returns false or the
// snapshot is exhausted. Because the host leaf is the bottom leaf of its
// snapshot and each leaf holds Ω(cap) live entries, visiting k points
// costs O(1 + k/B) I/Os (one for the host-pointer array plus one per
// leaf).
func (t *Tree) WalkUp(i int, visit func(p geom.Point) bool) {
	if i < 0 || i >= len(t.hostLeaf) {
		panic("ppb: WalkUp index out of range")
	}
	t.disk.Read(t.hostBlock + emio.BlockID(i/t.disk.Config().B))
	x := t.pts[i].X
	yFrom := t.pts[i].Y
	for leaf := t.hostLeaf[i]; leaf != nil; leaf = leaf.sibling {
		t.readNode(leaf)
		var ys []*entry
		for _, e := range leaf.entries {
			if e.liveAt(x) && e.y >= yFrom {
				ys = append(ys, e)
			}
		}
		sort.Slice(ys, func(a, b int) bool { return ys[a].y < ys[b].y })
		for _, e := range ys {
			if !visit(e.pt) {
				return
			}
		}
	}
}

// Point returns the i-th input point (build order), charging the array
// lookup.
func (t *Tree) Point(i int) geom.Point {
	t.disk.Read(t.hostBlock + emio.BlockID(i/t.disk.Config().B))
	return t.pts[i]
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.pts) }

// Levels returns the height of the tree in levels.
func (t *Tree) Levels() int { return t.levels }

// NodesCreated returns the total number of nodes the build produced; the
// MVBT discipline bounds it by O(n / cap).
func (t *Tree) NodesCreated() int { return t.nodes }

// Cap returns the per-node entry capacity.
func (t *Tree) Cap() int { return t.cap }

// SpaceWords returns the structure's total footprint in words.
func (t *Tree) SpaceWords() int {
	return t.nodes*(nodeHeaderWords+t.cap*entryWords) + t.hostWords + t.rootWords
}

// Free releases every block of the tree.
func (t *Tree) Free() {
	for _, nd := range t.allNodes {
		t.disk.FreeSpan(nd.block, nd.words)
	}
	t.allNodes = nil
	if t.hostWords > 0 {
		t.disk.FreeSpan(t.hostBlock, t.hostWords)
	}
	if t.rootWords > 0 {
		t.disk.FreeSpan(t.rootBlock, t.rootWords)
	}
	t.hostWords, t.rootWords = 0, 0
}

// CheckInvariants validates structural invariants of the finished tree;
// it returns a non-nil error description on the first violation. Used by
// tests.
func (t *Tree) CheckInvariants() string {
	for _, nd := range t.allNodes {
		if len(nd.entries) > t.cap {
			return "node exceeds capacity"
		}
		// Zero-length lifetimes are legitimate: the paper notes a
		// version copy creates a rectangle with "a zero-length
		// x-interval [α,α]" when cascades happen at one position.
		if nd.x2 != geom.PosInf && nd.x1 > nd.x2 {
			return "node with negative lifetime"
		}
		for _, e := range nd.entries {
			if e.birth < nd.x1 {
				return "entry born before node"
			}
			if e.death != geom.PosInf && e.death < e.birth {
				return "entry with negative lifetime"
			}
			if nd.x2 != geom.PosInf && e.birth > nd.x2 {
				return "entry born after node finalized"
			}
			if nd.level > 0 && e.child == nil {
				return "internal entry without child"
			}
			if nd.level == 0 && e.child != nil {
				return "leaf entry with child"
			}
		}
	}
	return ""
}
