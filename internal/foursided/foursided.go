// Package foursided implements Theorem 6: a linear-size dynamic
// structure answering general (4-sided) range skyline queries — and so
// also left-open, bottom-open and anti-dominance queries — in
// O((n/B)^ε + k/B) I/Os, with O(log(n/B)) amortized update cost. By
// Theorem 5 the query cost is optimal for linear space in the
// indexability model.
//
// The structure is a constant-height fan-out tree over the
// x-coordinates: leaves hold Θ(B) points, internal nodes have
// Θ(f) children with f ≈ (n/B)^ε / log(n/B), so the height is
// O(logf(n/B)) = O(1/ε). Every internal node u carries a secondary
// structure R(u): a Theorem 4 (dyntop) structure over the transposed
// points of its subtree, answering the right-open band queries
// (-∞,∞) × [β*, β2] the 4-sided algorithm issues while sweeping the
// O((n/B)^ε / log(n/B)) canonical nodes right to left and maintaining
// the running threshold β*.
//
// Updates go into the leaf array and into every R(u) along the path
// (O(1) nodes × O(log(n/B)) each); internal nodes split when their
// fan-out doubles, rebuilding the two halves' secondaries (amortized
// against the Ω(fB) updates between splits), and the entire structure is
// rebuilt after n/2 updates, which keeps every parameter calibrated and
// makes the total update cost O(log(n/B)) amortized.
package foursided

import (
	"math"
	"sort"

	"repro/internal/dyntop"
	"repro/internal/emio"
	"repro/internal/geom"
)

type node struct {
	parent   *node
	children []*node

	// Leaves: points sorted by x, in a charged span.
	pts      []geom.Point
	ptsBlock emio.BlockID
	ptsWords int

	// Internal nodes: the right-open secondary over the subtree,
	// i.e. a dyntop tree on transposed points. Live nodes hold the
	// mutable tree in r; snapshot clones hold a pinned handle in rh.
	r  *dyntop.Tree
	rh *dyntop.Handle

	minX, maxX geom.Coord
}

func (nd *node) leaf() bool { return nd.r == nil && nd.rh == nil && nd.children == nil }

// Index is the 4-sided range skyline structure.
type Index struct {
	disk *emio.Disk
	eps  float64

	root    *node
	n       int
	n0      int // size at last rebuild
	updates int // updates since last rebuild
	fanout  int
}

// Build constructs the index over pts (any order; they are sorted here)
// with query exponent ε ∈ (0, 1].
func Build(d *emio.Disk, eps float64, pts []geom.Point) *Index {
	if eps <= 0 || eps > 1 {
		panic("foursided: epsilon must be in (0,1]")
	}
	ix := &Index{disk: d, eps: eps}
	sorted := append([]geom.Point(nil), pts...)
	geom.SortByX(sorted)
	ix.rebuild(sorted)
	return ix
}

// rebuild reconstructs the whole structure from x-sorted points.
func (ix *Index) rebuild(sorted []geom.Point) {
	d := ix.disk
	ix.root = nil
	ix.n = len(sorted)
	ix.n0 = len(sorted)
	ix.updates = 0
	if len(sorted) == 0 {
		return
	}
	B := d.Config().B
	nb := math.Max(1, float64(len(sorted))/float64(B))
	f := int(math.Pow(nb, ix.eps) / math.Max(1, math.Log2(nb)))
	if f < 2 {
		f = 2
	}
	ix.fanout = f

	var level []*node
	for lo := 0; lo < len(sorted); lo += B {
		hi := lo + B
		if hi > len(sorted) {
			hi = len(sorted)
		}
		nd := &node{pts: append([]geom.Point(nil), sorted[lo:hi]...)}
		ix.refreshLeaf(nd)
		level = append(level, nd)
	}
	for len(level) > 1 {
		var up []*node
		for lo := 0; lo < len(level); lo += f {
			hi := lo + f
			if hi > len(level) {
				hi = len(level)
			}
			nd := &node{children: append([]*node(nil), level[lo:hi]...)}
			for _, c := range nd.children {
				c.parent = nd
			}
			ix.refreshInternal(nd)
			up = append(up, nd)
		}
		level = up
	}
	ix.root = level[0]
}

func (ix *Index) refreshLeaf(nd *node) {
	if nd.ptsWords > 0 {
		ix.disk.FreeSpan(nd.ptsBlock, nd.ptsWords)
	}
	nd.ptsWords = 2 * len(nd.pts)
	if nd.ptsWords > 0 {
		nd.ptsBlock = ix.disk.AllocSpan(nd.ptsWords)
		ix.disk.WriteSpan(nd.ptsBlock, nd.ptsWords)
	}
	if len(nd.pts) > 0 {
		nd.minX, nd.maxX = nd.pts[0].X, nd.pts[len(nd.pts)-1].X
	}
}

// refreshInternal (re)builds R(u) from scratch over the subtree's
// transposed points, sorted by y.
func (ix *Index) refreshInternal(nd *node) {
	var tp []geom.Point
	var collect func(*node)
	collect = func(c *node) {
		if c.leaf() {
			for _, p := range c.pts {
				tp = append(tp, geom.Point{X: p.Y, Y: p.X})
			}
			return
		}
		for _, cc := range c.children {
			collect(cc)
		}
	}
	for _, c := range nd.children {
		collect(c)
	}
	sort.Slice(tp, func(i, j int) bool { return tp[i].X < tp[j].X })
	// Right-open secondaries use ε = 0: query O(log(n/B) + k/B),
	// update O(log(n/B)) worst case — exactly what Theorem 6 needs.
	nd.r = dyntop.BuildSABE(ix.disk, 0, tp)
	nd.minX = nd.children[0].minX
	nd.maxX = nd.children[len(nd.children)-1].maxX
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return ix.n }

// bandSkyline answers the right-open query (-∞,∞) × [y1, y2] on R(u):
// the skyline of P(u) within the y-band, in increasing-x order. The
// node dispatches to its live tree or, on snapshot clones, the pinned
// handle — both run the same Theorem 4 query.
func (nd *node) bandSkyline(y1, y2 geom.Coord) []geom.Point {
	var tq []geom.Point
	if nd.rh != nil {
		tq = nd.rh.Query(y1, y2, geom.NegInf)
	} else {
		tq = nd.r.Query(y1, y2, geom.NegInf)
	}
	out := make([]geom.Point, len(tq))
	for i, p := range tq {
		// Transposed results ascend in y of the original points;
		// reverse to ascend in x.
		out[len(tq)-1-i] = geom.Point{X: p.Y, Y: p.X}
	}
	return out
}

// view is the read-only query machinery, shared between the live Index
// and its pinned snapshots.
type view struct {
	disk *emio.Disk
	root *node
}

// leafSkyline computes the skyline of the leaf's points inside rect,
// charging the leaf read.
func (v view) leafSkyline(nd *node, r geom.Rect) []geom.Point {
	v.disk.ReadSpan(nd.ptsBlock, nd.ptsWords)
	return geom.RangeSkyline(nd.pts, r)
}

// Query answers the 4-sided range skyline query [x1,x2] × [y1,y2] in
// O((n/B)^ε + k/B) I/Os, returning the maxima in increasing-x order.
func (ix *Index) Query(q geom.Rect) []geom.Point {
	return view{disk: ix.disk, root: ix.root}.query(q)
}

func (v view) query(q geom.Rect) []geom.Point {
	if v.root == nil || q.X1 > q.X2 || q.Y1 > q.Y2 {
		return nil
	}
	// Canonical decomposition of [x1,x2]: partial leaves on the two
	// boundaries plus maximal fully-contained nodes in between,
	// gathered in ascending x order.
	type part struct {
		leafNode *node // set for boundary leaves
		inner    *node // set for contained subtrees
	}
	var parts []part
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd.maxX < q.X1 || nd.minX > q.X2 {
			return
		}
		if nd.leaf() {
			parts = append(parts, part{leafNode: nd})
			return
		}
		if nd.minX >= q.X1 && nd.maxX <= q.X2 {
			parts = append(parts, part{inner: nd})
			return
		}
		for _, c := range nd.children {
			if c.maxX < q.X1 || c.minX > q.X2 {
				continue
			}
			if c.minX >= q.X1 && c.maxX <= q.X2 && !c.leaf() {
				parts = append(parts, part{inner: c})
			} else {
				walk(c)
			}
		}
	}
	walk(v.root)

	// Sweep right to left maintaining β*, the highest y seen so far
	// (any point below it is dominated by a point to its right
	// inside Q).
	betaStar := q.Y1
	groups := make([][]geom.Point, len(parts))
	for i := len(parts) - 1; i >= 0; i-- {
		p := parts[i]
		band := geom.Rect{X1: q.X1, X2: q.X2, Y1: betaStar, Y2: q.Y2}
		var res []geom.Point
		if p.leafNode != nil {
			res = v.leafSkyline(p.leafNode, band)
		} else {
			res = p.inner.bandSkyline(betaStar, q.Y2)
		}
		groups[i] = res
		if len(res) > 0 {
			// The first (leftmost) reported point is the highest.
			if top := res[0].Y; top > betaStar {
				betaStar = top
			}
		}
	}
	var out []geom.Point
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

// LeftOpen answers the left-open query (-∞,x] × [y1,y2].
func (ix *Index) LeftOpen(x, y1, y2 geom.Coord) []geom.Point {
	return ix.Query(geom.LeftOpen(x, y1, y2))
}

// AntiDominance answers the anti-dominance query (-∞,x] × (-∞,y].
func (ix *Index) AntiDominance(x, y geom.Coord) []geom.Point {
	return ix.Query(geom.AntiDominance(x, y))
}

// Insert adds a point: O(log(n/B)) amortized I/Os.
func (ix *Index) Insert(p geom.Point) {
	ix.updates++
	if ix.root == nil || ix.updates*2 > ix.n0+2 {
		ix.rebuild(ix.allPoints(p, geom.Point{}, true))
		return
	}
	nd := ix.root
	for !nd.leaf() {
		nd.r.Insert(geom.Point{X: p.Y, Y: p.X})
		next := nd.children[len(nd.children)-1]
		for _, c := range nd.children {
			if p.X <= c.maxX {
				next = c
				break
			}
		}
		nd = next
	}
	ix.disk.ReadSpan(nd.ptsBlock, nd.ptsWords)
	i := sort.Search(len(nd.pts), func(j int) bool { return nd.pts[j].X >= p.X })
	// Copy-on-write: a pinned snapshot may share the old array, so the
	// insert builds a fresh one instead of shifting in place.
	np := make([]geom.Point, len(nd.pts)+1)
	copy(np, nd.pts[:i])
	np[i] = p
	copy(np[i+1:], nd.pts[i:])
	nd.pts = np
	ix.refreshLeaf(nd)
	ix.n++
	ix.splitUp(nd)
}

// Delete removes the point; reports whether it was present.
// O(log(n/B)) amortized I/Os.
func (ix *Index) Delete(p geom.Point) bool {
	if ix.root == nil {
		return false
	}
	// Verify presence first so failed deletes do not corrupt R(u)s.
	nd := ix.root
	for !nd.leaf() {
		next := nd.children[len(nd.children)-1]
		for _, c := range nd.children {
			if p.X <= c.maxX {
				next = c
				break
			}
		}
		nd = next
	}
	ix.disk.ReadSpan(nd.ptsBlock, nd.ptsWords)
	i := sort.Search(len(nd.pts), func(j int) bool { return nd.pts[j].X >= p.X })
	if i >= len(nd.pts) || nd.pts[i] != p {
		return false
	}
	ix.updates++
	if ix.updates*2 > ix.n0+2 {
		ix.rebuild(ix.allPoints(geom.Point{}, p, false))
		return true
	}
	for u := ix.root; !u.leaf(); {
		u.r.Delete(geom.Point{X: p.Y, Y: p.X})
		next := u.children[len(u.children)-1]
		for _, c := range u.children {
			if p.X <= c.maxX {
				next = c
				break
			}
		}
		u = next
	}
	// Copy-on-write, as in Insert: never shift a possibly-shared array.
	np := make([]geom.Point, 0, len(nd.pts)-1)
	np = append(np, nd.pts[:i]...)
	np = append(np, nd.pts[i+1:]...)
	nd.pts = np
	ix.refreshLeaf(nd)
	ix.n--
	if len(nd.pts) == 0 {
		ix.pruneEmpty(nd)
	}
	return true
}

// splitUp restores occupancy: leaves split at 2B, internal nodes at
// 2*fanout (rebuilding the halves' secondaries, amortized against the
// updates that grew them).
func (ix *Index) splitUp(nd *node) {
	B := ix.disk.Config().B
	for nd != nil {
		par := nd.parent
		if nd.leaf() && len(nd.pts) > 2*B {
			half := len(nd.pts) / 2
			right := &node{pts: append([]geom.Point(nil), nd.pts[half:]...), parent: par}
			nd.pts = nd.pts[:half]
			ix.refreshLeaf(nd)
			ix.refreshLeaf(right)
			ix.attachSibling(nd, right)
		} else if !nd.leaf() && len(nd.children) > 2*ix.fanout {
			half := len(nd.children) / 2
			right := &node{children: append([]*node(nil), nd.children[half:]...), parent: par}
			nd.children = nd.children[:half]
			for _, c := range right.children {
				c.parent = right
			}
			ix.refreshInternal(nd)
			ix.refreshInternal(right)
			ix.attachSibling(nd, right)
		} else if !nd.leaf() {
			nd.minX = nd.children[0].minX
			nd.maxX = nd.children[len(nd.children)-1].maxX
		}
		nd = par
	}
}

func (ix *Index) attachSibling(nd, right *node) {
	par := nd.parent
	if par == nil {
		r := &node{children: []*node{nd, right}}
		nd.parent, right.parent = r, r
		ix.refreshInternal(r)
		ix.root = r
		return
	}
	for i, c := range par.children {
		if c == nd {
			par.children = append(par.children, nil)
			copy(par.children[i+2:], par.children[i+1:])
			par.children[i+1] = right
			return
		}
	}
	panic("foursided: attachSibling parent mismatch")
}

func (ix *Index) pruneEmpty(nd *node) {
	par := nd.parent
	if par == nil {
		ix.root = nil
		return
	}
	for i, c := range par.children {
		if c == nd {
			par.children = append(par.children[:i], par.children[i+1:]...)
			break
		}
	}
	if len(par.children) == 0 {
		ix.pruneEmpty(par)
		return
	}
	par.minX = par.children[0].minX
	par.maxX = par.children[len(par.children)-1].maxX
}

// allPoints gathers the current point set (plus an optional pending
// insert, minus an optional pending delete), x-sorted, for rebuilds.
func (ix *Index) allPoints(add, del geom.Point, doAdd bool) []geom.Point {
	var out []geom.Point
	var rec func(*node)
	rec = func(nd *node) {
		if nd == nil {
			return
		}
		if nd.leaf() {
			out = append(out, nd.pts...)
			return
		}
		for _, c := range nd.children {
			rec(c)
		}
	}
	rec(ix.root)
	if !doAdd {
		for i, p := range out {
			if p == del {
				out = append(out[:i], out[i+1:]...)
				break
			}
		}
	} else {
		out = append(out, add)
	}
	geom.SortByX(out)
	return out
}

// Fanout exposes the internal fan-out chosen for the current n and ε.
func (ix *Index) Fanout() int { return ix.fanout }

// Height returns the tree height.
func (ix *Index) Height() int {
	h := 0
	for nd := ix.root; nd != nil; {
		h++
		if nd.leaf() {
			break
		}
		nd = nd.children[0]
	}
	return h
}

// Handle is an immutable point-in-time view of an Index, pinned by
// Snapshot. As with dyntop, the payloads (leaf point arrays, CPQA
// queues inside the secondaries, block ids) are shared with the live
// index and immutable from the snapshot's perspective; the node graph
// and the secondaries' node graphs are copied, because the live index
// mutates both in place. The spans the live index recycles under the
// snapshot (leaf spans, secondary-internal spans) must be held by an
// emio retention (Disk.RetainFrees) opened before the Snapshot call.
type Handle struct {
	view
	n int
}

// Snapshot captures the current index as an immutable Handle: zero
// simulated I/Os, O(n/B) host words for the primary node graph plus
// the secondaries' graphs. Rebuilds and splits in the live index
// replace secondaries wholesale (old spans are retired, never reused),
// so a pinned secondary handle stays valid for the snapshot's
// lifetime.
func (ix *Index) Snapshot() *Handle {
	return &Handle{view: view{disk: ix.disk, root: cloneNodes(ix.root, nil)}, n: ix.n}
}

// cloneNodes deep-copies the node graph, pinning each internal node's
// secondary via dyntop's own Snapshot.
func cloneNodes(nd, parent *node) *node {
	if nd == nil {
		return nil
	}
	c := &node{
		parent:   parent,
		pts:      nd.pts,
		ptsBlock: nd.ptsBlock,
		ptsWords: nd.ptsWords,
		minX:     nd.minX,
		maxX:     nd.maxX,
	}
	if nd.r != nil {
		c.rh = nd.r.Snapshot()
	}
	if nd.children != nil {
		c.children = make([]*node, len(nd.children))
		for i, ch := range nd.children {
			c.children[i] = cloneNodes(ch, c)
		}
	}
	return c
}

// Query answers the 4-sided query against the pinned state,
// byte-identically to what the live index would have answered at the
// pin point.
func (h *Handle) Query(q geom.Rect) []geom.Point { return h.view.query(q) }

// LeftOpen answers the left-open query (-∞,x] × [y1,y2] on the pinned
// state.
func (h *Handle) LeftOpen(x, y1, y2 geom.Coord) []geom.Point {
	return h.Query(geom.LeftOpen(x, y1, y2))
}

// AntiDominance answers the anti-dominance query (-∞,x] × (-∞,y] on
// the pinned state.
func (h *Handle) AntiDominance(x, y geom.Coord) []geom.Point {
	return h.Query(geom.AntiDominance(x, y))
}

// Len returns the number of points in the pinned state.
func (h *Handle) Len() int { return h.n }
