package foursided

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/emio"
	"repro/internal/geom"
)

func pt(x, y geom.Coord) geom.Point { return geom.Point{X: x, Y: y} }

func sameAnswer(got, want []geom.Point) bool {
	if len(got) == 0 && len(want) == 0 {
		return true
	}
	return reflect.DeepEqual(got, want)
}

func TestQueryMatchesOracle(t *testing.T) {
	pts := geom.GenUniform(500, 5000, 111)
	for _, eps := range []float64{0.3, 0.5, 1} {
		d := emio.NewDisk(emio.Config{B: 16, M: 16 * 64})
		ix := Build(d, eps, pts)
		rng := rand.New(rand.NewSource(112))
		for q := 0; q < 200; q++ {
			x1 := geom.Coord(rng.Int63n(5500)) - 250
			x2 := x1 + geom.Coord(rng.Int63n(3500))
			y1 := geom.Coord(rng.Int63n(5500)) - 250
			y2 := y1 + geom.Coord(rng.Int63n(3500))
			r := geom.Rect{X1: x1, X2: x2, Y1: y1, Y2: y2}
			got := ix.Query(r)
			want := geom.RangeSkyline(pts, r)
			if !sameAnswer(got, want) {
				t.Fatalf("eps=%.1f Query(%v) = %v, want %v", eps, r, got, want)
			}
		}
	}
}

func TestVariantQueries(t *testing.T) {
	pts := geom.GenUniform(300, 3000, 113)
	d := emio.NewDisk(emio.Config{B: 16, M: 16 * 64})
	ix := Build(d, 0.5, pts)
	rng := rand.New(rand.NewSource(114))
	for q := 0; q < 100; q++ {
		x := geom.Coord(rng.Int63n(3300)) - 150
		y1 := geom.Coord(rng.Int63n(3300)) - 150
		y2 := y1 + geom.Coord(rng.Int63n(2000))
		if got, want := ix.LeftOpen(x, y1, y2), geom.RangeSkyline(pts, geom.LeftOpen(x, y1, y2)); !sameAnswer(got, want) {
			t.Fatalf("LeftOpen(%d,%d,%d) = %v, want %v", x, y1, y2, got, want)
		}
		if got, want := ix.AntiDominance(x, y1), geom.RangeSkyline(pts, geom.AntiDominance(x, y1)); !sameAnswer(got, want) {
			t.Fatalf("AntiDominance(%d,%d) = %v, want %v", x, y1, got, want)
		}
	}
}

func TestDynamicMatchesOracle(t *testing.T) {
	d := emio.NewDisk(emio.Config{B: 16, M: 16 * 64})
	base := geom.GenUniform(200, 1<<20, 115)
	ix := Build(d, 0.5, base)
	present := append([]geom.Point(nil), base...)
	extra := geom.GenUniform(400, 1<<20, 116)
	// Shift extras to avoid coordinate collisions with base.
	for i := range extra {
		extra[i].X += 1 << 21
		extra[i].Y += 1 << 21
	}
	rng := rand.New(rand.NewSource(117))
	for op := 0; op < 400; op++ {
		if len(extra) > 0 && (len(present) == 0 || rng.Intn(2) == 0) {
			p := extra[0]
			extra = extra[1:]
			ix.Insert(p)
			present = append(present, p)
		} else {
			i := rng.Intn(len(present))
			p := present[i]
			present = append(present[:i], present[i+1:]...)
			if !ix.Delete(p) {
				t.Fatalf("op %d: Delete(%v) failed", op, p)
			}
		}
		if op%29 == 0 {
			x1 := geom.Coord(rng.Int63n(1 << 22))
			x2 := x1 + geom.Coord(rng.Int63n(1<<21))
			y1 := geom.Coord(rng.Int63n(1 << 22))
			y2 := y1 + geom.Coord(rng.Int63n(1<<21))
			r := geom.Rect{X1: x1, X2: x2, Y1: y1, Y2: y2}
			got := ix.Query(r)
			want := geom.RangeSkyline(present, r)
			if !sameAnswer(got, want) {
				t.Fatalf("op %d: Query(%v) = %v, want %v", op, r, got, want)
			}
		}
	}
	if ix.Len() != len(present) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(present))
	}
}

func TestDeleteAbsent(t *testing.T) {
	d := emio.NewDisk(emio.Config{B: 16, M: 16 * 64})
	ix := Build(d, 0.5, []geom.Point{pt(1, 1), pt(2, 2)})
	if ix.Delete(pt(3, 3)) {
		t.Error("deleting absent point succeeded")
	}
	if ix.Len() != 2 {
		t.Errorf("Len changed to %d on failed delete", ix.Len())
	}
}

func TestEmptyIndex(t *testing.T) {
	d := emio.NewDisk(emio.Config{B: 16, M: 16 * 64})
	ix := Build(d, 0.5, nil)
	if got := ix.Query(geom.Rect{X1: 0, X2: 10, Y1: 0, Y2: 10}); got != nil {
		t.Errorf("empty query = %v", got)
	}
	ix.Insert(pt(5, 5))
	if got := ix.Query(geom.Rect{X1: 0, X2: 10, Y1: 0, Y2: 10}); len(got) != 1 {
		t.Errorf("query after first insert = %v", got)
	}
}

// TestQueryIOPolynomial measures the Theorem 6 shape: query cost grows
// like (n/B)^ε, far below the naive n/B scan, and reporting adds k/B.
func TestQueryIOPolynomial(t *testing.T) {
	cfg := emio.Config{B: 64, M: 64 * 32}
	eps := 0.5
	for _, n := range []int{4000, 16000, 64000} {
		d := emio.NewDisk(cfg)
		pts := geom.GenUniform(n, int64(n)*16, int64(n))
		ix := Build(d, eps, pts)
		rng := rand.New(rand.NewSource(3))
		var worst uint64
		for q := 0; q < 15; q++ {
			span := int64(n) * 4
			x1 := geom.Coord(rng.Int63n(span * 2))
			x2 := x1 + geom.Coord(rng.Int63n(span))
			y1 := geom.Coord(rng.Int63n(span * 2))
			y2 := y1 + geom.Coord(rng.Int63n(span))
			var res []geom.Point
			st := d.Measure(func() { res = ix.Query(geom.Rect{X1: x1, X2: x2, Y1: y1, Y2: y2}) })
			cost := st.IOs() - uint64(8*len(res)/cfg.B)
			if cost > worst {
				worst = cost
			}
		}
		nb := float64(n) / float64(cfg.B)
		budget := 400 * math.Pow(nb, eps) // generous constant, shape check
		if float64(worst) > budget {
			t.Errorf("n=%d: worst query cost %d, (n/B)^eps budget %.0f", n, worst, budget)
		}
	}
}

// TestAmortizedUpdateCost: Theorem 6's O(log(n/B)) amortized updates,
// including the periodic global rebuilds.
func TestAmortizedUpdateCost(t *testing.T) {
	cfg := emio.Config{B: 64, M: 64 * 64}
	d := emio.NewDisk(cfg)
	n := 8000
	pts := geom.GenUniform(n, int64(n)*16, 7)
	ix := Build(d, 0.5, pts)
	extra := geom.GenUniform(n, int64(n)*16, 8)
	for i := range extra {
		extra[i].X += int64(n) * 32
		extra[i].Y += int64(n) * 32
	}
	d.DropCache()
	d.ResetStats()
	for _, p := range extra {
		ix.Insert(p)
	}
	total := d.Stats().IOs()
	perOp := float64(total) / float64(len(extra))
	logNB := math.Log2(float64(n) / float64(cfg.B))
	if perOp > 60*logNB {
		t.Errorf("amortized insert cost %.1f I/Os, budget %.1f", perOp, 60*logNB)
	}
}

func TestRebuildKeepsAnswers(t *testing.T) {
	d := emio.NewDisk(emio.Config{B: 16, M: 16 * 64})
	pts := geom.GenUniform(100, 10000, 9)
	ix := Build(d, 0.5, pts)
	present := append([]geom.Point(nil), pts...)
	// Force several global rebuilds.
	for i := 0; i < 300; i++ {
		p := pt(geom.Coord(20000+i*3), geom.Coord(20000+i*7))
		ix.Insert(p)
		present = append(present, p)
	}
	r := geom.Rect{X1: 0, X2: 30000, Y1: 0, Y2: 30000}
	if got, want := ix.Query(r), geom.RangeSkyline(present, r); !sameAnswer(got, want) {
		t.Fatalf("after rebuilds: %v, want %v", got, want)
	}
}
