// Package core assembles the paper's structures into one database-style
// index for planar range skyline reporting — the primary deliverable of
// the reproduction. Query execution is delegated to an engine.Planner
// that routes each query kind (Figure 2) to the asymptotically best
// registered backend:
//
//   - top-open, dominance and contour queries go to the Theorem 1 static
//     structure (O(log_B n + k/B)) or, when the index is opened dynamic,
//     to the Theorem 4 structure (O(log²_{B^ε}(n/B) + k/B^{1−ε}) with
//     O(log²_{B^ε}(n/B)) updates);
//   - with Options.Mirrors, right-open queries (and every rectangle
//     with a grounded right edge) go to a top-open structure over the
//     transposed point set, which answers them in the top-open bounds —
//     the transpose preserves dominance, so the answers are
//     byte-identical to the Theorem 6 structure's;
//   - 4-sided, left-open, bottom-open and anti-dominance queries (and
//     right-open ones, without mirrors) go to the Theorem 6 structure
//     (O((n/B)^ε + k/B), optimal at linear space by Theorem 5; updates
//     O(log(n/B)) amortized);
//   - with Options.Shards > 1, every shape is served by the sharded
//     concurrent engine (internal/shard), whose per-shard structures are
//     the same two families on x-disjoint partitions, so its answers are
//     byte-identical to the single-disk structures'.
//
// Updates — single-point and batched — fan out through the same planner
// to every registered backend, so all backends always index the same
// point set. Everything runs on a simulated external-memory machine
// (emio), so every operation reports exactly the I/O cost the theorems
// bound.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dyntop"
	"repro/internal/emio"
	"repro/internal/engine"
	"repro/internal/extsort"
	"repro/internal/foursided"
	"repro/internal/geom"
	"repro/internal/pager"
	"repro/internal/shard"
	"repro/internal/topopen"
	"repro/internal/vfs"
	"repro/internal/wal"
)

// Options configures an index.
type Options struct {
	// Machine is the simulated external-memory machine; zero means
	// emio.DefaultConfig().
	Machine emio.Config
	// Epsilon trades query cost against update cost for the dynamic
	// structures (Theorems 4 and 6); zero means 0.5.
	Epsilon float64
	// Dynamic selects updatable structures. A static index answers
	// 3-sided queries faster and builds in O(n/B) after sorting, but
	// rejects Insert and Delete.
	Dynamic bool
	// Shards > 1 partitions the point set by x-range and serves every
	// Figure-2 query shape from a sharded concurrent engine
	// (internal/shard), each shard owning a private guarded disk with
	// its own top-open and 4-sided structures. The answers are
	// identical to the single-disk structures'; the engine additionally
	// admits concurrent callers and batched updates that take each
	// shard lock once per batch.
	Shards int
	// Workers bounds the sharded engine's concurrent per-shard tasks;
	// zero means Shards. Ignored when Shards <= 1.
	Workers int
	// Mirrors trades space for query speed on the grounded-right-edge
	// query family: it maintains a transposed (x↔y) copy of the point
	// set under its own top-open structure — sharded alongside the
	// primary engine when Shards > 1, on a private disk otherwise — and
	// routes right-open queries (Figure 2b, plus the unnamed rectangles
	// with a grounded right edge) to it, replacing the Theorem 6
	// Ω((n/B)^ε) cost with the Theorem 1/4 O(log) bounds. On a static
	// index the win is immediate (Theorem 1: O(log_B n + k/B), measured
	// in E13); on a dynamic index the mirror is a Theorem 4 tree whose
	// polylog search beats (n/B)^ε asymptotically but whose k/B^{1-ε}
	// reporting term exceeds Theorem 6's k/B, so the crossover arrives
	// at larger n for queries with large answers. The extra
	// copy costs roughly one more top-open structure (≈2× the top-open
	// footprint, well under 2× the whole index) and every update is
	// applied to it too. Bottom-open, left-open and anti-dominance
	// queries are NOT accelerated: no other axis reflection preserves
	// dominance, and Theorem 5 proves those shapes cannot beat the
	// Theorem 6 bound at linear space.
	Mirrors bool
	// CacheEntries > 0 puts a read-through cache (engine.CacheBackend)
	// in front of the whole planner, memoizing up to CacheEntries
	// RangeSkyline answers in an LRU map keyed by the canonicalized
	// query rectangle — hot rectangles are re-answered from memory at
	// zero simulated I/O, byte-identically to the uncached answers.
	// Updates invalidate shard-aware: with Shards > 1 the cache learns
	// the engine's x-cuts (and, with Mirrors, the mirrored engine's
	// y-cuts) and a write evicts only the entries whose rectangles
	// intersect the written point's slab; unsharded indexes flush the
	// cache on every applied write. A Delete that misses evicts
	// nothing.
	CacheEntries int
	// AsyncWrites buffers Insert/Delete (and the batched forms) in an
	// engine.AsyncQueue in front of everything else: writes append to
	// per-x-slab buffers (the sharded engine's shards, or one buffer
	// unsharded) and return without touching any structure, so writer
	// latency is independent of structure rebuild costs. Buffers drain
	// through the batched paths — one structure lock per shard per
	// drain, and one cache invalidation sweep per drain when
	// CacheEntries > 0 — when a buffer reaches FlushPoints, every
	// FlushInterval, and on DB.Flush/DB.Close. Reads stay exact: a
	// query first drains every buffer its rectangle's x-range
	// intersects, so answers (buffered deletes included) are
	// byte-identical to a synchronous index's. Requires Dynamic. In
	// this mode Delete/BatchDelete report ACCEPTANCE, not presence
	// (hit-or-miss resolves at drain), and Len flushes first so it
	// stays exact. The concurrency contract is unchanged: concurrent
	// callers require Shards > 1. The background drainer is safe even
	// unsharded with a single caller — it only applies non-empty
	// buffers, a buffer can only be non-empty through that caller's
	// own writes (which every read of the single slab drains first),
	// and drains serialize with drain-on-read through the per-slab
	// drain lock.
	AsyncWrites bool
	// FlushPoints is the per-buffer drain threshold when AsyncWrites
	// is set; zero means 128.
	FlushPoints int
	// FlushInterval is the background drainer's period when
	// AsyncWrites is set; zero means 100ms, negative disables the
	// background drainer (reads, FlushPoints and explicit Flush still
	// drain — the fully deterministic configuration).
	FlushInterval time.Duration
	// Dir, when non-empty, makes the index durable: real files under
	// Dir — a 4 KB-page snapshot store (skyline.pages, internal/pager)
	// and a write-ahead log (skyline.wal, internal/wal). Every
	// acknowledged update batch is WAL-appended before it is applied
	// (engine.LogBackend); DB.Flush and DB.Close checkpoint — snapshot
	// the live set and truncate the WAL — and reopening the same Dir
	// recovers: structures rebuild from the snapshot, then the WAL
	// tail replays through the batched update paths (DB.Recover
	// reports the counts). A fresh Dir is seeded from pts and
	// checkpointed at Open; an existing Dir requires len(pts) == 0.
	// Empty Dir (the default) keeps the index purely simulated — the
	// CI oracle configuration. With AsyncWrites, "acknowledged" means
	// drained: buffered writes not yet drained are lost by a crash,
	// the documented async-commit trade.
	Dir string
	// SyncWAL fsyncs the WAL after every logged batch. Without it a
	// record survives process death (the append is a plain write(2) —
	// no user-space buffering) but not power loss. Ignored without
	// Dir.
	SyncWAL bool
	// PageCacheFrames bounds the pager's in-memory page cache when Dir
	// is set; zero means pager.DefaultCacheFrames. The cache reuses
	// the simulated machine's frame/pin/eviction discipline
	// (emio.FrameTable) over real 4 KB pages.
	PageCacheFrames int
	// FS is the filesystem the durable files live on; nil means the
	// real one (vfs.OS). Fault-injection tests and the E18 resilience
	// experiment pass a vfs.FaultFS to fail chosen operations
	// deterministically. Ignored without Dir.
	FS vfs.FS
	// Retry bounds how the pager and WAL retry transient storage
	// failures (vfs.Transient): the zero value means
	// vfs.DefaultRetryPolicy (4 retries, exponential backoff
	// 500µs→4ms); set Retry.Disabled to fail fast. Errors that outlive
	// the budget surface as ErrRetryExhausted and latch degraded
	// read-only mode. Ignored without Dir.
	Retry vfs.RetryPolicy
	// MaxBuffered caps each async-queue slab buffer when AsyncWrites
	// is set: a write that would push a slab past the cap blocks (the
	// writer drains the slab inline) or, with ShedWrites, is rejected
	// with ErrBackpressure. Zero means unlimited.
	MaxBuffered int
	// ShedWrites selects shedding over blocking for MaxBuffered
	// overflow. Ignored unless AsyncWrites and MaxBuffered are set.
	ShedWrites bool
	// Rebalance enables online shard rebalancing: the sharded engines
	// (the primary and, with Mirrors, the transposed mirror on its own
	// axis) track per-shard load and split hot shards / merge cold
	// neighbors live, rebuilding off to the side and swapping under a
	// brief topology lock. Cut changes propagate to the cache's slab
	// tags and the async queue's buffers automatically; open snapshots
	// keep serving the topology they pinned. Requires Dynamic and
	// Shards > 1. Answers are unaffected — only the work distribution
	// moves (DB.RebalanceStats reports the activity).
	Rebalance bool
	// MaxShardSkew is the rebalance trigger ratio: a shard hotter than
	// MaxShardSkew × the mean per-shard load splits, an adjacent pair
	// jointly colder than mean/MaxShardSkew merges. Zero means 2.0.
	// Ignored without Rebalance.
	MaxShardSkew float64
	// AdaptiveFlush lets each async-queue slab adapt its drain
	// threshold to its traffic (hot slabs drain bigger batches, slabs
	// that readers keep draining stay shallow). Ignored without
	// AsyncWrites; off by default so drain points stay fixed for
	// deterministic I/O accounting.
	AdaptiveFlush bool
}

// DB is a planar range skyline index over a simulated EM machine. All
// queries and updates flow through an engine.Planner over the registered
// backends.
type DB struct {
	opts Options
	disk *emio.Disk

	plan *engine.Planner

	// front is the backend every query and update flows through: the
	// read-through cache when Options.CacheEntries > 0 (wrapping the
	// planner), the planner itself otherwise. Updates must pass
	// through it so the cache sees every invalidating write.
	front engine.Backend

	// cache is the memoizing backend; non-nil iff CacheEntries > 0.
	cache *engine.CacheBackend

	// queue is the asynchronous write buffer; non-nil iff AsyncWrites.
	// It is the OUTERMOST layer: reads must hit it first so the
	// drain-on-read rule covers cache hits too, and its drains flow
	// through the cache's batched paths so invalidation fires once per
	// drain instead of once per point.
	queue *engine.AsyncQueue

	// Durable storage; all non-nil iff Options.Dir != "". The logb
	// layer sits between the queue and the cache, so the queue's drain
	// batches are the WAL records and each drain costs one append plus
	// one cache invalidation sweep.
	pager *pager.Pager
	wal   *wal.Log
	logb  *engine.LogBackend
	recov RecoveryStats

	// closed flips on the first Close; writes are rejected after.
	// closeMu serializes Close callers so none returns before the
	// first finished draining and quiescing.
	closed  atomic.Bool
	closeMu sync.Mutex

	// degrade is the fatal-storage-error latch (see DB.Degraded): once
	// set, writes return ErrDegraded, checkpoints are skipped so the
	// WAL keeps its replayable records, and reads serve the applied
	// state until a reopen recovers.
	degrade degradeState

	// Sharded engine serving every query shape; non-nil iff
	// Options.Shards > 1, replacing the single-disk backends.
	eng *shard.Engine

	// meng is the sharded mirror engine; non-nil iff Shards > 1 and
	// Mirrors. Kept so rebalancing can be wired and forced on the
	// mirror's axis too.
	meng *shard.Engine

	// n is atomic so Len and the update paths are safe for the
	// concurrent callers the sharded engine admits. The single-disk
	// backends themselves serialize nothing — concurrent updates are
	// only safe when sharded, exactly as for the underlying engine.
	n atomic.Int64

	// openSnaps counts unclosed snapshots (see DB.Snapshot); the leak
	// checks pair it with the disks' deferred-free counts.
	openSnaps atomic.Int64
}

// Open creates an index over pts (any order; sorted internally). For a
// purely in-memory oracle use geom.RangeSkyline instead.
func Open(opts Options, pts []geom.Point) (*DB, error) {
	if opts.Machine.B == 0 {
		opts.Machine = emio.DefaultConfig()
	}
	if opts.Epsilon == 0 {
		opts.Epsilon = 0.5
	}
	if opts.Epsilon < 0 || opts.Epsilon > 1 {
		return nil, fmt.Errorf("core: epsilon %v outside [0,1]", opts.Epsilon)
	}
	if !geom.IsGeneralPosition(pts) {
		return nil, fmt.Errorf("core: input not in general position (duplicate x or y)")
	}
	if opts.Rebalance {
		if !opts.Dynamic {
			return nil, fmt.Errorf("core: Rebalance requires Options.Dynamic (transitions rebuild shard structures)")
		}
		if opts.Shards <= 1 {
			return nil, fmt.Errorf("core: Rebalance requires Options.Shards > 1 (nothing to rebalance unsharded)")
		}
	}
	sorted := append([]geom.Point(nil), pts...)
	geom.SortByX(sorted)

	// Durable storage opens first: recovery replaces the seed with the
	// checkpoint snapshot, and the structures build from that.
	var dur *durable
	if opts.Dir != "" {
		var err error
		dur, err = openDurable(opts, sorted)
		if err != nil {
			return nil, err
		}
		sorted = dur.base
	}

	// The disk is guarded even unsharded: snapshot readers
	// (DB.Snapshot) run lock-free against live writers, and both sides
	// charge I/Os to this disk.
	db := &DB{opts: opts, disk: emio.NewConcurrentDisk(opts.Machine), plan: new(engine.Planner)}
	if dur != nil {
		db.pager, db.wal, db.recov = dur.pager, dur.wal, dur.recov
	}
	// Construction past this point can fail after engines, goroutines
	// or file descriptors exist; every error return must release them
	// all, or each failed Open leaks (the queue's drainer goroutine,
	// the shard engines' worker pools, the two durable files).
	ok := false
	defer func() {
		if !ok {
			db.cleanup()
		}
	}()
	db.n.Store(int64(len(sorted)))
	if opts.Shards > 1 {
		eng, err := shard.New(shard.Options{
			Machine:   opts.Machine,
			Epsilon:   opts.Epsilon,
			Shards:    opts.Shards,
			Workers:   opts.Workers,
			Dynamic:   opts.Dynamic,
			Rebalance: opts.Rebalance,
			MaxSkew:   opts.MaxShardSkew,
		}, sorted)
		if err != nil {
			return nil, err
		}
		db.eng = eng
		// One backend serves both families: the per-shard merge keeps
		// its answers identical to the single-disk structures'.
		db.plan.RegisterTopOpen(eng)
		db.plan.RegisterGeneral(eng)
	} else {
		db.plan.RegisterTopOpen(buildTopOpen(db.disk, opts.Epsilon, opts.Dynamic, sorted))
		four := foursided.Build(db.disk, opts.Epsilon, sorted)
		db.plan.RegisterGeneral(engine.NewFourSided(four, db.disk))
	}
	if opts.Mirrors {
		if err := db.addMirror(sorted); err != nil {
			return nil, err
		}
	}
	db.front = db.plan
	if opts.CacheEntries > 0 {
		// The cache wraps the WHOLE planner, not one backend: keys are
		// the original (canonicalized) rectangles, so a right-open
		// query shares its entry whether the planner routes it to a
		// mirror or to the Theorem 6 structure, and every update path
		// below flows through the cache to invalidate it.
		cache, err := engine.NewCache(db.plan, opts.CacheEntries)
		if err != nil {
			return nil, err
		}
		db.cache = cache
		db.front = cache
	}
	if dur != nil {
		// The WAL layer wraps the cache (one invalidation sweep per
		// logged batch) and sits under the queue (drain batches are
		// the log records). Replay happens here — the stack below is
		// complete, and the layers above (the queue) only buffer.
		db.logb = engine.NewLogBackend(db.front, dur.sink, sorted)
		db.front = db.logb
		for _, rec := range dur.replay {
			hits, err := db.logb.Replay(rec.Dels, rec.Inss)
			if err != nil {
				return nil, fmt.Errorf("core: replay WAL record seq %d: %w", rec.Seq, err)
			}
			db.recov.RecordsReplayed++
			db.recov.ReplayedInserts += len(rec.Inss)
			db.recov.ReplayedDeletes += hits
		}
		db.recov.WALSeq = db.wal.Seq()
		db.n.Store(int64(db.logb.Live()))
	}
	if opts.AsyncWrites {
		if !opts.Dynamic {
			return nil, fmt.Errorf("core: AsyncWrites requires Options.Dynamic (a static index rejects writes)")
		}
		// The queue is the OUTERMOST layer, in front of the cache:
		// every read must pass its drain-on-read check before a cache
		// hit can be served (a hit on an entry missing a buffered
		// write would be stale), and its drains apply through the
		// cache's batched paths, so a drain costs one shard-aware
		// invalidation sweep instead of one eviction scan per point.
		queue, err := engine.NewAsyncQueue(db.front, engine.QueueOptions{
			FlushPoints:   opts.FlushPoints,
			FlushInterval: opts.FlushInterval,
			MaxBuffered:   opts.MaxBuffered,
			ShedWrites:    opts.ShedWrites,
			AdaptiveFlush: opts.AdaptiveFlush,
		})
		if err != nil {
			return nil, err
		}
		db.queue = queue
		db.front = queue
	}
	if opts.Rebalance {
		// Wire cut propagation last, once every layer exists: a primary
		// transition moves the cache's x-slab tags and re-learns the
		// queue's slabs (migrating buffered ops); a mirror transition
		// moves the cache's y-slab tags (the mirrored frame's x is the
		// original y — the queue slabs only by original x). The
		// listeners run with no engine locks held, so they may call
		// back into any layer.
		db.eng.SetCutsListener(func(cuts []geom.Coord) {
			if db.cache != nil {
				db.cache.SetXCuts(cuts)
			}
			if db.queue != nil {
				db.queue.SetCuts(cuts)
			}
		})
		if db.meng != nil {
			db.meng.SetCutsListener(func(cuts []geom.Coord) {
				if db.cache != nil {
					db.cache.SetYCuts(cuts)
				}
			})
		}
	}
	ok = true
	return db, nil
}

// buildTopOpen builds the top-open-family backend over sorted points on
// d: the Theorem 4 dynamic tree, or the Theorem 1 static index. The one
// recipe serves both the primary unsharded backend and the unsharded
// mirror, so the two can never drift apart.
func buildTopOpen(d *emio.Disk, eps float64, dynamic bool, sorted []geom.Point) engine.Backend {
	if dynamic {
		return engine.NewDynTop(dyntop.BuildSABE(d, eps, sorted), d)
	}
	f := extsort.FromSlice(d, 2, sorted)
	top := topopen.Build(d, f)
	f.Free()
	return engine.NewTopOpen(top, d)
}

// addMirror builds the transposed fast path: a top-open structure (or a
// sharded TopOnly engine, when the primary is sharded) over the x↔y
// reflected point set, registered with the planner as a mirror so the
// grounded-right-edge query family is served in the top-open bounds.
// The mirrored points are strictly sorted by reflected x because the
// input is in general position (no duplicate y).
func (db *DB) addMirror(sorted []geom.Point) error {
	ref := geom.ReflectSwapXY
	mirrored := ref.Pts(sorted)
	geom.SortByX(mirrored)
	var inner engine.Backend
	if db.opts.Shards > 1 {
		meng, err := shard.New(shard.Options{
			Machine:   db.opts.Machine,
			Epsilon:   db.opts.Epsilon,
			Shards:    db.opts.Shards,
			Workers:   db.opts.Workers,
			Dynamic:   db.opts.Dynamic,
			TopOnly:   true,
			Rebalance: db.opts.Rebalance,
			MaxSkew:   db.opts.MaxShardSkew,
		}, mirrored)
		if err != nil {
			return err
		}
		db.meng = meng
		inner = meng
	} else {
		// Guarded for the same reason as the primary disk: snapshot
		// readers reach the mirror's storage without any lock.
		inner = buildTopOpen(emio.NewConcurrentDisk(db.opts.Machine), db.opts.Epsilon, db.opts.Dynamic, mirrored)
	}
	m, err := engine.NewMirror(ref, inner)
	if err != nil {
		return err
	}
	db.plan.RegisterMirror(m)
	return nil
}

// Sharded returns the sharded concurrent engine serving every query
// shape, or nil when the index was opened with Shards <= 1.
func (db *DB) Sharded() *shard.Engine { return db.eng }

// RebalanceStats reports the online-rebalancing activity of both
// sharded engines: splits/merges completed, current shard counts, and
// the load skew (max/mean per-shard load) accumulated since the last
// transition. Zero value without Options.Rebalance.
type RebalanceStats struct {
	// Splits and Merges count the primary engine's completed
	// transitions; Shards is its current partition count; Skew its
	// current max/mean load ratio (0 while idle).
	Splits uint64  `json:"splits"`
	Merges uint64  `json:"merges"`
	Shards int     `json:"shards"`
	Skew   float64 `json:"skew"`
	// MirrorSplits/MirrorMerges/MirrorShards are the transposed mirror
	// engine's counterparts (it rebalances on the original y-axis).
	MirrorSplits uint64 `json:"mirror_splits,omitempty"`
	MirrorMerges uint64 `json:"mirror_merges,omitempty"`
	MirrorShards int    `json:"mirror_shards,omitempty"`
}

// RebalanceStats returns the current rebalancing totals; the zero value
// when the index was opened without Options.Rebalance (or unsharded).
func (db *DB) RebalanceStats() RebalanceStats {
	if db.eng == nil || !db.opts.Rebalance {
		return RebalanceStats{}
	}
	c := db.eng.RebalanceCounters()
	st := RebalanceStats{Splits: c.Splits, Merges: c.Merges, Shards: c.Shards, Skew: c.Skew}
	if db.meng != nil {
		m := db.meng.RebalanceCounters()
		st.MirrorSplits, st.MirrorMerges, st.MirrorShards = m.Splits, m.Merges, m.Shards
	}
	return st
}

// ForceSplit splits shard i of the primary engine regardless of load
// (i < 0 selects the most populous shard); with Mirrors, the transposed
// mirror engine splits its own most populous shard too, so both axes
// transition. A test and operational hook — the load policy exercises
// the identical transition path. Requires Options.Rebalance.
func (db *DB) ForceSplit(i int) error {
	if db.eng == nil || !db.opts.Rebalance {
		return fmt.Errorf("core: rebalancing disabled; open with Options.Rebalance")
	}
	err := db.eng.ForceSplit(i)
	if db.meng != nil {
		if merr := db.meng.ForceSplit(-1); merr != nil && err == nil {
			err = merr
		}
	}
	return err
}

// ForceMerge merges shards i and i+1 of the primary engine (i < 0
// selects the least populous adjacent pair); with Mirrors, the mirror
// engine merges its own coldest pair. Requires Options.Rebalance.
func (db *DB) ForceMerge(i int) error {
	if db.eng == nil || !db.opts.Rebalance {
		return fmt.Errorf("core: rebalancing disabled; open with Options.Rebalance")
	}
	err := db.eng.ForceMerge(i)
	if db.meng != nil {
		if merr := db.meng.ForceMerge(-1); merr != nil && err == nil {
			err = merr
		}
	}
	return err
}

// Cache returns the read-through cache in front of the planner, or nil
// when the index was opened with CacheEntries <= 0. Its Counters
// report hits, misses, evictions and invalidations.
func (db *DB) Cache() *engine.CacheBackend { return db.cache }

// Queue returns the asynchronous write queue in front of everything
// else, or nil when the index was opened without AsyncWrites.
func (db *DB) Queue() *engine.AsyncQueue { return db.queue }

// QueueCounters returns the async queue's operation totals (enqueued,
// drained, coalesced, forced drains, and the buffered writes those
// read-forced drains applied — ReadDrains, the contention snapshot
// reads avoid); the zero value when the index was opened without
// AsyncWrites.
func (db *DB) QueueCounters() engine.QueueCounters {
	if db.queue == nil {
		return engine.QueueCounters{}
	}
	return db.queue.Counters()
}

// CacheCounters returns the read-through cache's operation totals
// (hits, misses, evictions, invalidations); the zero value when the
// index was opened without CacheEntries.
func (db *DB) CacheCounters() engine.CacheCounters {
	if db.cache == nil {
		return engine.CacheCounters{}
	}
	return db.cache.Counters()
}

// Flush drains every buffered write to the underlying structures and,
// with Options.Dir, checkpoints: the live point set is snapshotted to
// the page file and the WAL truncated, so the next Open rebuilds
// without replay. Without AsyncWrites or Dir it is a no-op; with the
// queue, Flush is the explicit third drain trigger next to FlushPoints
// and FlushInterval (and surfaces any drain error an earlier
// background or drain-on-read pass latched).
//
// When the drain reports an error — this pass's or a latched earlier
// one — or the index is degraded, the checkpoint is SKIPPED and the
// error returned: the live set is missing the failed applies, and
// checkpointing it would truncate the WAL records that still hold
// them, turning a recoverable failure (reopen and replay) into a
// permanent loss. Flush on a closed index returns ErrClosed instead of
// touching closed file descriptors.
func (db *DB) Flush() error {
	db.closeMu.Lock()
	defer db.closeMu.Unlock()
	if db.closed.Load() {
		return fmt.Errorf("core: flush: %w", engine.ErrClosed)
	}
	if db.queue != nil {
		if err := db.queue.Flush(); err != nil {
			db.noteWriteErr(err)
			// A storage-fault drain error has latched by now; return the
			// wrapped form so callers match ErrDegraded. Other errors
			// pass through unchanged.
			if d := db.Degraded(); d != nil {
				return d
			}
			return err
		}
	}
	if err := db.Degraded(); err != nil {
		return err
	}
	if db.logb != nil {
		err := db.checkpoint()
		db.noteWriteErr(err)
		return err
	}
	return nil
}

// Close quiesces the index: it stops the async queue's background
// drainer and drains every remaining buffered write, then waits for the
// sharded engines' in-flight per-shard tasks — the primary's and every
// sharded mirror's — to complete, so no goroutine owned by the index
// outlives Close and no structure is mid-mutation afterwards. With
// Options.Dir it then checkpoints (snapshot + WAL truncate) and closes
// the durable files. Further writes are rejected; reads keep working
// against the fully-applied state. Close is idempotent, and concurrent
// callers all observe the quiesced state.
func (db *DB) Close() error {
	db.closeMu.Lock()
	defer db.closeMu.Unlock()
	alreadyClosed := db.closed.Swap(true)
	var firstErr error
	if db.queue != nil {
		// Idempotent, and because Close callers serialize on closeMu a
		// second caller cannot return before the first finished
		// draining and quiescing.
		firstErr = db.queue.Close()
		db.noteWriteErr(firstErr)
		if firstErr != nil {
			// As in Flush: surface the latched ErrDegraded-wrapped form
			// of a storage-fault drain error.
			if d := db.Degraded(); d != nil {
				firstErr = d
			}
		}
	}
	if alreadyClosed {
		return firstErr
	}
	for _, b := range db.plan.Backends() {
		if m, ok := b.(*engine.MirrorBackend); ok {
			b = m.Inner()
		}
		if qc, ok := b.(interface{ Quiesce() }); ok {
			qc.Quiesce()
		}
	}
	if db.logb != nil {
		// Everything acknowledged is applied (queue closed above) and
		// nothing new can arrive (closed flag): checkpoint, then
		// release the files. Only the FIRST Close runs this — a second
		// would checkpoint through closed file descriptors. A drain
		// error or a degraded latch skips the checkpoint, like Flush:
		// the WAL must keep the records whose apply failed so a reopen
		// can replay them.
		if firstErr == nil {
			firstErr = db.Degraded()
		}
		if firstErr == nil {
			firstErr = db.checkpoint()
			db.noteWriteErr(firstErr)
		}
		if err := db.wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := db.pager.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Planner exposes the query planner for inspection (which backend a
// rectangle routes to, the registered backends).
func (db *DB) Planner() *engine.Planner { return db.plan }

// Disk exposes the simulated machine for I/O measurements. When sharded,
// the per-shard disks are reached through Sharded().ShardDisk.
func (db *DB) Disk() *emio.Disk { return db.disk }

// Len returns the number of indexed points. Safe to call while
// operations are in flight. With AsyncWrites it first drains every
// buffer — a buffered delete's hit-or-miss only resolves at drain — so
// the count stays exact, at the cost of making Len a flushing read.
func (db *DB) Len() int {
	if db.queue != nil {
		db.queue.Flush() //errlint:ok Len cannot surface drain errors; they latch sticky and degrade
		return int(db.n.Load() + db.queue.AppliedDelta())
	}
	return int(db.n.Load())
}

// RangeSkyline reports the maximal points of P ∩ q in increasing-x
// order, routing the rectangle's shape through the planner (behind the
// read-through cache when one is configured; cached answers are shared
// slices and must not be mutated).
func (db *DB) RangeSkyline(q geom.Rect) []geom.Point {
	return db.front.RangeSkyline(q)
}

// Skyline reports the skyline of the whole point set.
func (db *DB) Skyline() []geom.Point {
	return db.RangeSkyline(geom.Rect{X1: geom.NegInf, X2: geom.PosInf, Y1: geom.NegInf, Y2: geom.PosInf})
}

// TopOpen reports the range skyline of [x1,x2] × [beta, ∞) (Figure 2a).
func (db *DB) TopOpen(x1, x2, beta geom.Coord) []geom.Point {
	return db.RangeSkyline(geom.TopOpen(x1, x2, beta))
}

// RightOpen reports the range skyline of [x,∞) × [y1,y2] (Figure 2b).
func (db *DB) RightOpen(x, y1, y2 geom.Coord) []geom.Point {
	return db.RangeSkyline(geom.RightOpen(x, y1, y2))
}

// BottomOpen reports the range skyline of [x1,x2] × (-∞,y] (Figure 2c).
func (db *DB) BottomOpen(x1, x2, y geom.Coord) []geom.Point {
	return db.RangeSkyline(geom.BottomOpen(x1, x2, y))
}

// LeftOpen reports the range skyline of (-∞,x] × [y1,y2] (Figure 2d).
func (db *DB) LeftOpen(x, y1, y2 geom.Coord) []geom.Point {
	return db.RangeSkyline(geom.LeftOpen(x, y1, y2))
}

// Dominance reports the skyline of the points dominating (x, y)
// (Figure 2e).
func (db *DB) Dominance(x, y geom.Coord) []geom.Point {
	return db.RangeSkyline(geom.Dominance(x, y))
}

// AntiDominance reports the range skyline of (-∞,x] × (-∞,y]
// (Figure 2f).
func (db *DB) AntiDominance(x, y geom.Coord) []geom.Point {
	return db.RangeSkyline(geom.AntiDominance(x, y))
}

// Contour reports the skyline of the points with x-coordinate <= x
// (Figure 2g).
func (db *DB) Contour(x geom.Coord) []geom.Point {
	return db.RangeSkyline(geom.Contour(x))
}

// writable reports why the index rejects writes: opened static,
// closed, or degraded. Reads are always allowed — a closed index is
// quiesced, a degraded one keeps serving the applied state.
func (db *DB) writable() error {
	if !db.opts.Dynamic {
		return fmt.Errorf("core: write: %w", ErrStatic)
	}
	if db.closed.Load() {
		return fmt.Errorf("core: write: %w", engine.ErrClosed)
	}
	if err := db.Degraded(); err != nil {
		return err
	}
	return nil
}

// Insert adds a point to a dynamic index, applying it to every backend
// (or buffering it, with AsyncWrites — the queue's drains keep Len
// exact in that mode, so n is only counted here synchronously).
func (db *DB) Insert(p geom.Point) error {
	if err := db.writable(); err != nil {
		return err
	}
	if err := db.front.Insert(p); err != nil {
		db.noteWriteErr(err)
		return err
	}
	if db.queue == nil {
		db.n.Add(1)
	}
	return nil
}

// Delete removes a point from a dynamic index, reporting presence. The
// planner consults the primary (top-open) backend first and only mutates
// the remaining backends after it confirms presence, so a miss never
// leaves the backends inconsistent. With AsyncWrites the delete is
// buffered and the bool reports ACCEPTANCE; presence resolves at drain
// through the same presence-check-first batched path, and a miss
// applies nothing anywhere.
func (db *DB) Delete(p geom.Point) (bool, error) {
	if err := db.writable(); err != nil {
		return false, err
	}
	ok, err := db.front.Delete(p)
	db.noteWriteErr(err)
	if ok && db.queue == nil {
		// Even when err reports backend disagreement, the primary
		// backend did remove the point; keep n consistent with it.
		db.n.Add(-1)
	}
	return ok, err
}

// BatchInsert adds many points to a dynamic index through each backend's
// batched path; the sharded engine takes each shard lock once per batch
// instead of once per point. The points must preserve general position.
func (db *DB) BatchInsert(pts []geom.Point) error {
	if err := db.writable(); err != nil {
		return err
	}
	if err := db.front.BatchInsert(pts); err != nil {
		db.noteWriteErr(err)
		return err
	}
	if db.queue == nil {
		db.n.Add(int64(len(pts)))
	}
	return nil
}

// BatchDelete removes many points from a dynamic index through each
// backend's batched path, returning how many were present and removed
// (misses are skipped, not errors). With AsyncWrites the count is the
// ACCEPTED batch size, like Delete's bool; resolution happens at drain.
func (db *DB) BatchDelete(pts []geom.Point) (int, error) {
	if err := db.writable(); err != nil {
		return 0, err
	}
	removed, err := db.front.BatchDelete(pts)
	db.noteWriteErr(err)
	if db.queue == nil {
		db.n.Add(-int64(removed))
	}
	return removed, err
}

// BatchDeleteRemoved is BatchDelete reporting the removed points
// themselves — the per-point resolution a caller multiplexing many
// clients' deletes into one batch (the HTTP front end's group commit)
// needs to answer each client individually. On a synchronous index the
// returned slice is the confirmed-removed subset in batch order,
// straight from the planner's presence-check-first path. With
// AsyncWrites it is the ACCEPTED batch — the whole of pts, matching
// Delete's acceptance bool — because hit-or-miss only resolves at
// drain; a nil slice with a non-nil error means nothing was accepted.
func (db *DB) BatchDeleteRemoved(pts []geom.Point) ([]geom.Point, error) {
	if err := db.writable(); err != nil {
		return nil, err
	}
	if db.queue != nil {
		if _, err := db.queue.BatchDelete(pts); err != nil {
			db.noteWriteErr(err)
			return nil, err
		}
		return pts, nil
	}
	rep, ok := db.front.(interface {
		BatchDeleteRemoved(pts []geom.Point) ([]geom.Point, error)
	})
	if !ok {
		// Not a configuration Open builds: every dynamic front
		// (planner, cache, log backend) reports its removed subset.
		return nil, fmt.Errorf("core: engine stack cannot report removed points")
	}
	removed, err := rep.BatchDeleteRemoved(pts)
	db.noteWriteErr(err)
	db.n.Add(-int64(len(removed)))
	return removed, err
}

// Stats returns the I/O counters since the last ResetStats, aggregated
// by the planner over every registered backend — the single-disk
// structures, every shard disk, and every mirror's private storage —
// counting each distinct disk exactly once.
func (db *DB) Stats() emio.Stats {
	return db.front.Stats()
}

// ResetStats zeroes the I/O counters of every registered backend and
// the cache's hit/miss/eviction counters. Memoized entries are kept:
// resetting measurement state does not change what the next query
// costs.
func (db *DB) ResetStats() {
	db.front.ResetStats()
}
