// Package core assembles the paper's structures into one database-style
// index for planar range skyline reporting — the primary deliverable of
// the reproduction. It routes each query kind (Figure 2) to the
// asymptotically best structure:
//
//   - top-open, right-open, dominance and contour queries go to the
//     Theorem 1 static structure (O(log_B n + k/B)) or, when the index
//     is opened dynamic, to the Theorem 4 structure
//     (O(log²_{B^ε}(n/B) + k/B^{1−ε}) with O(log²_{B^ε}(n/B)) updates);
//   - 4-sided, left-open, bottom-open and anti-dominance queries go to
//     the Theorem 6 structure (O((n/B)^ε + k/B), optimal at linear
//     space by Theorem 5; updates O(log(n/B)) amortized).
//
// Everything runs on a simulated external-memory machine (emio), so
// every operation reports exactly the I/O cost the theorems bound.
package core

import (
	"fmt"

	"repro/internal/dyntop"
	"repro/internal/emio"
	"repro/internal/extsort"
	"repro/internal/foursided"
	"repro/internal/geom"
	"repro/internal/shard"
	"repro/internal/topopen"
)

// Options configures an index.
type Options struct {
	// Machine is the simulated external-memory machine; zero means
	// emio.DefaultConfig().
	Machine emio.Config
	// Epsilon trades query cost against update cost for the dynamic
	// structures (Theorems 4 and 6); zero means 0.5.
	Epsilon float64
	// Dynamic selects updatable structures. A static index answers
	// 3-sided queries faster and builds in O(n/B) after sorting, but
	// rejects Insert and Delete.
	Dynamic bool
	// Shards > 1 partitions the point set by x-range and serves the
	// top-open query family from a sharded concurrent engine
	// (internal/shard), each shard owning a private guarded disk. The
	// answers are identical to the single-disk structures'; the engine
	// additionally admits concurrent callers.
	Shards int
	// Workers bounds the sharded engine's concurrent per-shard tasks;
	// zero means Shards. Ignored when Shards <= 1.
	Workers int
}

// DB is a planar range skyline index over a simulated EM machine.
type DB struct {
	opts Options
	disk *emio.Disk

	// Static engine (3-sided).
	top *topopen.Index

	// Dynamic engines.
	dyn  *dyntop.Tree
	four *foursided.Index

	// Sharded engine (3-sided, static or dynamic); non-nil iff
	// Options.Shards > 1, replacing top/dyn.
	eng *shard.Engine

	n int
}

// Open creates an index over pts (any order; sorted internally). For a
// purely in-memory oracle use geom.RangeSkyline instead.
func Open(opts Options, pts []geom.Point) (*DB, error) {
	if opts.Machine.B == 0 {
		opts.Machine = emio.DefaultConfig()
	}
	if opts.Epsilon == 0 {
		opts.Epsilon = 0.5
	}
	if opts.Epsilon < 0 || opts.Epsilon > 1 {
		return nil, fmt.Errorf("core: epsilon %v outside [0,1]", opts.Epsilon)
	}
	if !geom.IsGeneralPosition(pts) {
		return nil, fmt.Errorf("core: input not in general position (duplicate x or y)")
	}
	db := &DB{opts: opts, disk: emio.NewDisk(opts.Machine), n: len(pts)}
	sorted := append([]geom.Point(nil), pts...)
	geom.SortByX(sorted)
	switch {
	case opts.Shards > 1:
		eng, err := shard.New(shard.Options{
			Machine: opts.Machine,
			Epsilon: opts.Epsilon,
			Shards:  opts.Shards,
			Workers: opts.Workers,
			Dynamic: opts.Dynamic,
		}, sorted)
		if err != nil {
			return nil, err
		}
		db.eng = eng
	case opts.Dynamic:
		db.dyn = dyntop.BuildSABE(db.disk, opts.Epsilon, sorted)
	default:
		f := extsort.FromSlice(db.disk, 2, sorted)
		db.top = topopen.Build(db.disk, f)
		f.Free()
	}
	db.four = foursided.Build(db.disk, opts.Epsilon, sorted)
	return db, nil
}

// Sharded returns the sharded concurrent engine serving the top-open
// query family, or nil when the index was opened with Shards <= 1.
func (db *DB) Sharded() *shard.Engine { return db.eng }

// Disk exposes the simulated machine for I/O measurements.
func (db *DB) Disk() *emio.Disk { return db.disk }

// Len returns the number of indexed points.
func (db *DB) Len() int { return db.n }

// RangeSkyline reports the maximal points of P ∩ q in increasing-x
// order, dispatching on the rectangle's shape.
func (db *DB) RangeSkyline(q geom.Rect) []geom.Point {
	if q.IsTopOpen() {
		switch {
		case db.eng != nil:
			return db.eng.TopOpen(q.X1, q.X2, q.Y1)
		case db.dyn != nil:
			return db.dyn.Query(q.X1, q.X2, q.Y1)
		default:
			return db.top.Query(q.X1, q.X2, q.Y1)
		}
	}
	return db.four.Query(q)
}

// Skyline reports the skyline of the whole point set.
func (db *DB) Skyline() []geom.Point {
	return db.RangeSkyline(geom.Rect{X1: geom.NegInf, X2: geom.PosInf, Y1: geom.NegInf, Y2: geom.PosInf})
}

// TopOpen reports the range skyline of [x1,x2] × [beta, ∞) (Figure 2a).
func (db *DB) TopOpen(x1, x2, beta geom.Coord) []geom.Point {
	return db.RangeSkyline(geom.TopOpen(x1, x2, beta))
}

// Dominance reports the skyline of the points dominating (x, y)
// (Figure 2e).
func (db *DB) Dominance(x, y geom.Coord) []geom.Point {
	return db.RangeSkyline(geom.Dominance(x, y))
}

// Contour reports the skyline of the points with x-coordinate <= x
// (Figure 2g).
func (db *DB) Contour(x geom.Coord) []geom.Point {
	return db.RangeSkyline(geom.Contour(x))
}

// LeftOpen reports the range skyline of (-∞,x] × [y1,y2] (Figure 2d).
func (db *DB) LeftOpen(x, y1, y2 geom.Coord) []geom.Point {
	return db.RangeSkyline(geom.LeftOpen(x, y1, y2))
}

// AntiDominance reports the range skyline of (-∞,x] × (-∞,y]
// (Figure 2f).
func (db *DB) AntiDominance(x, y geom.Coord) []geom.Point {
	return db.RangeSkyline(geom.AntiDominance(x, y))
}

// Insert adds a point to a dynamic index.
func (db *DB) Insert(p geom.Point) error {
	if !db.opts.Dynamic {
		return fmt.Errorf("core: index opened static; reopen with Options.Dynamic")
	}
	if db.eng != nil {
		if err := db.eng.Insert(p); err != nil {
			return err
		}
	} else {
		db.dyn.Insert(p)
	}
	db.four.Insert(p)
	db.n++
	return nil
}

// Delete removes a point from a dynamic index, reporting presence.
func (db *DB) Delete(p geom.Point) (bool, error) {
	if !db.opts.Dynamic {
		return false, fmt.Errorf("core: index opened static; reopen with Options.Dynamic")
	}
	var a bool
	if db.eng != nil {
		var err error
		if a, err = db.eng.Delete(p); err != nil {
			return false, err
		}
	} else {
		a = db.dyn.Delete(p)
	}
	b := db.four.Delete(p)
	if a != b {
		return false, fmt.Errorf("core: engines disagree on presence of %v", p)
	}
	if a {
		db.n--
	}
	return a, nil
}

// Stats returns the I/O counters since the last ResetStats, summed over
// the index's disk and (when sharded) every shard disk.
func (db *DB) Stats() emio.Stats {
	s := db.disk.Stats()
	if db.eng != nil {
		s = s.Add(db.eng.Stats())
	}
	return s
}

// ResetStats zeroes the I/O counters.
func (db *DB) ResetStats() {
	db.disk.ResetStats()
	if db.eng != nil {
		db.eng.ResetStats()
	}
}
