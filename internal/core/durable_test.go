package core

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/emio"
	"repro/internal/geom"
	"repro/internal/pager"
	"repro/internal/wal"
)

// smallMachine keeps the simulated structures tiny in durable tests.
var smallMachine = emio.Config{B: 16, M: 16 * 64}

// sevenShapes builds one query of every Figure-2 shape (plus the whole
// plane) around the given coordinate scale.
func sevenShapes(scale geom.Coord) []geom.Rect {
	lo, mid, hi := scale/4, scale/2, 3*scale/4
	return []geom.Rect{
		geom.TopOpen(lo, hi, mid),
		geom.RightOpen(mid, lo, hi),
		geom.BottomOpen(lo, hi, mid),
		geom.LeftOpen(mid, lo, hi),
		geom.Dominance(mid, mid),
		geom.AntiDominance(mid, mid),
		geom.Contour(mid),
		{X1: geom.NegInf, X2: geom.PosInf, Y1: geom.NegInf, Y2: geom.PosInf},
	}
}

// assertSameAnswers compares got against a never-crashed twin on every
// query shape, byte-for-byte.
func assertSameAnswers(t *testing.T, label string, got, twin *DB, scale geom.Coord) {
	t.Helper()
	for _, r := range sevenShapes(scale) {
		g, w := got.RangeSkyline(r), twin.RangeSkyline(r)
		if !sameAnswer(g, w) {
			t.Fatalf("%s: RangeSkyline(%v) = %v, twin says %v", label, r, g, w)
		}
	}
}

// TestDurableLifecycle: a durable index seeds, mutates, closes, and a
// reopen of the directory restores the exact point set — answers on
// every query shape byte-identical to a purely simulated twin.
func TestDurableLifecycle(t *testing.T) {
	dir := t.TempDir()
	seed := geom.GenUniform(300, 4000, 97)
	db, err := Open(Options{Machine: smallMachine, Dynamic: true, Dir: dir}, seed)
	if err != nil {
		t.Fatalf("Open durable: %v", err)
	}
	if r := db.Recover(); r.Recovered {
		t.Fatalf("fresh directory reported recovered: %+v", r)
	}
	live := append([]geom.Point(nil), seed...)
	for i := 0; i < 50; i++ {
		p := geom.Point{X: 5000 + geom.Coord(i), Y: 5000 - geom.Coord(i)}
		if err := db.Insert(p); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		live = append(live, p)
	}
	for i := 0; i < 20; i++ {
		if ok, err := db.Delete(seed[i]); !ok || err != nil {
			t.Fatalf("Delete(%v) = %v, %v", seed[i], ok, err)
		}
	}
	live = live[20:]
	wantLen := db.Len()
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	re, err := Open(Options{Machine: smallMachine, Dynamic: true, Dir: dir}, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	rec := re.Recover()
	if !rec.Recovered || rec.SnapshotPoints != wantLen || rec.RecordsReplayed != 0 {
		t.Fatalf("reopen after clean Close: %+v (want snapshot of %d, no replay)", rec, wantLen)
	}
	if re.Len() != wantLen {
		t.Fatalf("recovered Len = %d, want %d", re.Len(), wantLen)
	}
	twin, err := Open(Options{Machine: smallMachine, Dynamic: true}, live)
	if err != nil {
		t.Fatalf("twin: %v", err)
	}
	defer twin.Close()
	assertSameAnswers(t, "reopen", re, twin, 6000)
}

// TestDurableExistingDirRejectsSeed: reopening an existing durable
// directory with seed points is an error, not a silent merge.
func TestDurableExistingDirRejectsSeed(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Machine: smallMachine, Dir: dir, Dynamic: true}, geom.GenUniform(10, 100, 1))
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	if _, err := Open(Options{Machine: smallMachine, Dir: dir, Dynamic: true}, geom.GenUniform(5, 100, 2)); err == nil {
		t.Fatalf("existing directory accepted a non-empty seed")
	}
}

// TestDurableReplaySeqFilter: a WAL holding records the snapshot
// already covers — the on-disk state of a crash between a checkpoint's
// snapshot write and its WAL truncate — must replay only the tail
// beyond meta.WALSeq. The files are crafted directly through the pager
// and wal packages.
func TestDurableReplaySeqFilter(t *testing.T) {
	dir := t.TempDir()
	base := []geom.Point{{X: 10, Y: 90}, {X: 20, Y: 80}, {X: 30, Y: 70}}

	l, _, err := wal.Open(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	// Records 1..3 are absorbed by the snapshot below; 4..5 are not.
	l.Append(nil, []geom.Point{{X: 1, Y: 1}})   // seq 1 (covered)
	l.Append([]geom.Point{{X: 1, Y: 1}}, nil)   // seq 2 (covered)
	l.Append(nil, []geom.Point{{X: 2, Y: 2}})   // seq 3 (covered)
	l.Append(nil, []geom.Point{{X: 40, Y: 60}}) // seq 4: insert
	l.Append([]geom.Point{{X: 10, Y: 90}}, nil) // seq 5: delete hit
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	p, err := pager.Open(filepath.Join(dir, pagesFile), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WriteSnapshot(base, 3); err != nil { // snapshot covers seq <= 3
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	db, err := Open(Options{Machine: smallMachine, Dynamic: true, Dir: dir}, nil)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer db.Close()
	rec := db.Recover()
	if rec.RecordsReplayed != 2 || rec.ReplayedInserts != 1 || rec.ReplayedDeletes != 1 {
		t.Fatalf("replayed %+v, want exactly records 4 and 5", rec)
	}
	if rec.WALSeq != 5 {
		t.Fatalf("WALSeq after recovery = %d, want 5", rec.WALSeq)
	}
	want := []geom.Point{{X: 20, Y: 80}, {X: 30, Y: 70}, {X: 40, Y: 60}}
	twin, err := Open(Options{Machine: smallMachine, Dynamic: true}, want)
	if err != nil {
		t.Fatal(err)
	}
	defer twin.Close()
	if db.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", db.Len(), len(want))
	}
	assertSameAnswers(t, "seq-filter", db, twin, 100)
}

// TestDurableAsyncDrainsAreRecords: with AsyncWrites, WAL records are
// the queue's drain batches — buffered writes log nothing until a
// drain, and a queue flush (without checkpoint) makes them durable.
func TestDurableAsyncDrainsAreRecords(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{
		Machine: smallMachine, Dynamic: true, Dir: dir,
		AsyncWrites: true, FlushPoints: 1 << 20, FlushInterval: -time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := db.Insert(geom.Point{X: geom.Coord(i), Y: geom.Coord(100 - i)}); err != nil {
			t.Fatal(err)
		}
	}
	if sz := db.WAL().Size(); sz != 0 {
		t.Fatalf("buffered writes reached the WAL: %d bytes", sz)
	}
	if err := db.Queue().Flush(); err != nil { // drain, no checkpoint
		t.Fatal(err)
	}
	if db.WAL().Size() == 0 {
		t.Fatalf("drained batch produced no WAL record")
	}
	if got := db.WAL().Seq(); got != 1 {
		t.Fatalf("one drain produced %d records, want 1", got)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenErrorPathsReleaseEverything: every construction failure in
// Open must quiesce what was already built — no goroutine may outlive
// the error, and the durable files must be closed and reopenable. The
// goroutine check is the regression test for the resource leak the
// deferred cleanup fixes.
func TestOpenErrorPathsReleaseEverything(t *testing.T) {
	dir := t.TempDir()
	// A durable dir whose WAL tail cannot replay into a static index:
	// Open gets past the files and the engines, then fails in replay —
	// the deepest error return in the constructor.
	db, err := Open(Options{Machine: smallMachine, Dynamic: true, Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	db.Insert(geom.Point{X: 1, Y: 1}) // sync durable: one WAL record
	// Leave the WAL non-empty: bypass Close's checkpoint by closing the
	// files directly through cleanup.
	db.cleanup()

	fail := func(label string, o Options, pts []geom.Point) {
		t.Helper()
		if _, err := Open(o, pts); err == nil {
			t.Fatalf("%s: Open succeeded, expected failure", label)
		}
	}
	baseline := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		fail("queue after engines", Options{Machine: smallMachine, Shards: 4, Dynamic: true, AsyncWrites: true, FlushPoints: -1}, geom.GenUniform(64, 1000, 7))
		fail("async without dynamic", Options{Machine: smallMachine, Shards: 4, AsyncWrites: true}, geom.GenUniform(64, 1000, 8))
		fail("replay into static", Options{Machine: smallMachine, Dir: dir}, nil)
		fail("seed into existing dir", Options{Machine: smallMachine, Dynamic: true, Dir: dir}, geom.GenUniform(8, 100, 9))
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > baseline {
		t.Fatalf("failed Opens leaked goroutines: %d running, baseline %d", got, baseline)
	}

	// The files the failed Opens touched are intact and reopenable: the
	// dynamic recovery still works and replays the one record.
	re, err := Open(Options{Machine: smallMachine, Dynamic: true, Dir: dir}, nil)
	if err != nil {
		t.Fatalf("reopen after failed Opens: %v", err)
	}
	defer re.Close()
	if rec := re.Recover(); rec.RecordsReplayed != 1 || rec.ReplayedInserts != 1 {
		t.Fatalf("recovery after failed Opens: %+v, want the 1 logged insert", rec)
	}
	if re.Len() != 1 {
		t.Fatalf("Len = %d, want 1", re.Len())
	}
}

// TestFlushSkipsCheckpointOnDrainError: when a drain latches an apply
// error, Flush and Close must NOT checkpoint — the live set is missing
// the failed writes, and snapshotting it while truncating the WAL
// would permanently discard records a reopen-replay can still recover.
func TestFlushSkipsCheckpointOnDrainError(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{
		Machine: smallMachine, Dynamic: true, Dir: dir,
		AsyncWrites: true, FlushPoints: 1 << 20, FlushInterval: -time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, db, 0, 10)
	if err := db.Queue().Flush(); err != nil { // drain: WAL record 1, no checkpoint
		t.Fatal(err)
	}
	before := db.Pager().Meta()
	applyOps(t, db, 10, 20) // buffered
	db.WAL().Close()        // break the log: the next drain's append fails
	if err := db.Flush(); err == nil {
		t.Fatalf("Flush over a failed drain reported success")
	}
	if got := db.Pager().Meta(); got != before {
		t.Fatalf("Flush checkpointed despite the drain error: meta %+v, want %+v", got, before)
	}
	if err := db.Close(); err == nil {
		t.Fatalf("Close over a latched drain error reported success")
	}
	// The WAL record whose writes DID apply survives the skipped
	// checkpoints; recovery replays it. Ops 10..20 were never
	// acknowledged (their append failed, and Flush errored), so the
	// acknowledged set is exactly ops [0,10).
	assertRecovered(t, "drain-error", dir, 10)
}

// TestFlushAfterCloseRejected: Flush racing (or following) Close must
// not checkpoint through the file descriptors Close released.
func TestFlushAfterCloseRejected(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Machine: smallMachine, Dynamic: true, Dir: dir}, geom.GenUniform(20, 500, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatalf("Flush while open: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err == nil {
		t.Fatalf("Flush after Close reported success")
	}
}

// TestDurableFreshDirWithOrphanWAL: a directory holding a WAL but no
// page file is ambiguous (half-deleted index?); Open refuses to guess.
func TestDurableFreshDirWithOrphanWAL(t *testing.T) {
	dir := t.TempDir()
	l, _, err := wal.Open(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	l.Append(nil, []geom.Point{{X: 1, Y: 1}})
	l.Close()
	if _, err := Open(Options{Machine: smallMachine, Dynamic: true, Dir: dir}, nil); err == nil {
		t.Fatalf("orphan WAL silently discarded")
	}
	// The refused open left the directory untouched: no page file was
	// created, so a second attempt still refuses instead of silently
	// replaying the orphan records into an empty snapshot.
	if _, err := os.Stat(filepath.Join(dir, pagesFile)); !os.IsNotExist(err) {
		t.Fatalf("refused open created %s (stat err %v)", pagesFile, err)
	}
	if _, err := Open(Options{Machine: smallMachine, Dynamic: true, Dir: dir}, nil); err == nil {
		t.Fatalf("second open accepted the orphan WAL")
	}
}
