package core

import (
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/emio"
	"repro/internal/engine"
	"repro/internal/geom"
)

func sameAnswer(got, want []geom.Point) bool {
	if len(got) == 0 && len(want) == 0 {
		return true
	}
	return reflect.DeepEqual(got, want)
}

func TestStaticDispatch(t *testing.T) {
	pts := geom.GenUniform(400, 4000, 201)
	db, err := Open(Options{Machine: emio.Config{B: 32, M: 32 * 32}}, pts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(202))
	for q := 0; q < 150; q++ {
		x1 := geom.Coord(rng.Int63n(4400)) - 200
		x2 := x1 + geom.Coord(rng.Int63n(3000))
		y1 := geom.Coord(rng.Int63n(4400)) - 200
		y2 := y1 + geom.Coord(rng.Int63n(3000))
		for _, r := range []geom.Rect{
			geom.TopOpen(x1, x2, y1),
			{X1: x1, X2: x2, Y1: y1, Y2: y2},
			geom.LeftOpen(x2, y1, y2),
			geom.AntiDominance(x2, y2),
			geom.Dominance(x1, y1),
			geom.Contour(x2),
		} {
			got := db.RangeSkyline(r)
			want := geom.RangeSkyline(pts, r)
			if !sameAnswer(got, want) {
				t.Fatalf("RangeSkyline(%v) = %v, want %v", r, got, want)
			}
		}
	}
	if _, err := Open(Options{Epsilon: 2}, pts); err == nil {
		t.Error("epsilon 2 accepted")
	}
	if err := db.Insert(geom.Point{X: 1, Y: 1}); err == nil {
		t.Error("static index accepted Insert")
	}
}

func TestDynamicLifecycle(t *testing.T) {
	base := geom.GenUniform(200, 1<<20, 203)
	db, err := Open(Options{Machine: emio.Config{B: 16, M: 16 * 64}, Dynamic: true}, base)
	if err != nil {
		t.Fatal(err)
	}
	present := append([]geom.Point(nil), base...)
	extra := geom.GenUniform(150, 1<<20, 204)
	for i := range extra {
		extra[i].X += 1 << 21
		extra[i].Y += 1 << 21
	}
	rng := rand.New(rand.NewSource(205))
	for op := 0; op < 250; op++ {
		if len(extra) > 0 && rng.Intn(2) == 0 {
			p := extra[0]
			extra = extra[1:]
			if err := db.Insert(p); err != nil {
				t.Fatal(err)
			}
			present = append(present, p)
		} else if len(present) > 0 {
			i := rng.Intn(len(present))
			p := present[i]
			present = append(present[:i], present[i+1:]...)
			ok, err := db.Delete(p)
			if err != nil || !ok {
				t.Fatalf("Delete(%v) = %t, %v", p, ok, err)
			}
		}
		if op%31 == 0 {
			x1 := geom.Coord(rng.Int63n(1 << 22))
			x2 := x1 + geom.Coord(rng.Int63n(1<<21))
			y := geom.Coord(rng.Int63n(1 << 22))
			if got, want := db.TopOpen(x1, x2, y), geom.RangeSkyline(present, geom.TopOpen(x1, x2, y)); !sameAnswer(got, want) {
				t.Fatalf("op %d: TopOpen mismatch: %v vs %v", op, got, want)
			}
			r := geom.Rect{X1: x1, X2: x2, Y1: y, Y2: y + geom.Coord(rng.Int63n(1<<21))}
			if got, want := db.RangeSkyline(r), geom.RangeSkyline(present, r); !sameAnswer(got, want) {
				t.Fatalf("op %d: 4-sided mismatch", op)
			}
		}
	}
	if db.Len() != len(present) {
		t.Fatalf("Len = %d, want %d", db.Len(), len(present))
	}
}

// TestSevenShapeDispatch drives every named Figure-2 entry point —
// including the RightOpen and BottomOpen conveniences — against the
// oracle, for a static single-disk index, a dynamic one, and a sharded
// one, and checks each shape routes to the expected backend family.
func TestSevenShapeDispatch(t *testing.T) {
	pts := geom.GenUniform(400, 4000, 211)
	cfg := emio.Config{B: 32, M: 32 * 32}
	for _, opts := range []Options{
		{Machine: cfg},
		{Machine: cfg, Dynamic: true},
		{Machine: cfg, Dynamic: true, Shards: 4, Workers: 2},
	} {
		db, err := Open(opts, pts)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(212))
		for q := 0; q < 60; q++ {
			x1 := geom.Coord(rng.Int63n(4400)) - 200
			x2 := x1 + geom.Coord(rng.Int63n(3000))
			y1 := geom.Coord(rng.Int63n(4400)) - 200
			y2 := y1 + geom.Coord(rng.Int63n(3000))
			shapes := []struct {
				name string
				got  []geom.Point
				r    geom.Rect
			}{
				{"TopOpen", db.TopOpen(x1, x2, y1), geom.TopOpen(x1, x2, y1)},
				{"RightOpen", db.RightOpen(x1, y1, y2), geom.RightOpen(x1, y1, y2)},
				{"BottomOpen", db.BottomOpen(x1, x2, y2), geom.BottomOpen(x1, x2, y2)},
				{"LeftOpen", db.LeftOpen(x2, y1, y2), geom.LeftOpen(x2, y1, y2)},
				{"Dominance", db.Dominance(x1, y1), geom.Dominance(x1, y1)},
				{"AntiDominance", db.AntiDominance(x2, y2), geom.AntiDominance(x2, y2)},
				{"Contour", db.Contour(x2), geom.Contour(x2)},
			}
			for _, s := range shapes {
				if want := geom.RangeSkyline(pts, s.r); !sameAnswer(s.got, want) {
					t.Fatalf("opts=%+v %s(%v) = %v, want %v", opts, s.name, s.r, s.got, want)
				}
				if db.plan.Route(s.r) == nil {
					t.Fatalf("no backend for %s", s.name)
				}
			}
		}
		// Dispatch: with distinct backends, the top-open family must hit
		// the top-open backend, everything else the general backend.
		backends := db.plan.Backends()
		if opts.Shards > 1 {
			if len(backends) != 1 || backends[0] != db.plan.Route(geom.Contour(9)) {
				t.Fatalf("sharded: want a single backend serving everything")
			}
		} else {
			if len(backends) != 2 {
				t.Fatalf("unsharded: %d backends, want 2", len(backends))
			}
			if db.plan.Route(geom.TopOpen(1, 9, 3)) != backends[0] {
				t.Fatal("top-open not routed to the top-open backend")
			}
			if db.plan.Route(geom.RightOpen(1, 2, 8)) != backends[1] {
				t.Fatal("right-open not routed to the general backend")
			}
		}
	}
}

// TestDeletePresenceCheckFirst is the regression test for the update
// ordering fix: a Delete whose primary engine reports the point absent
// must not mutate the 4-sided backend, even if (through corruption or
// drift) that backend still holds the point.
func TestDeletePresenceCheckFirst(t *testing.T) {
	pts := geom.GenUniform(120, 2000, 213)
	db, err := Open(Options{Machine: emio.Config{B: 16, M: 16 * 64}, Dynamic: true}, pts)
	if err != nil {
		t.Fatal(err)
	}
	p := pts[17]
	// Simulate drift: remove p from the primary (top-open) backend
	// directly, behind the planner's back. The 4-sided backend still
	// holds p.
	primary := db.plan.Backends()[0]
	if ok, err := primary.Delete(p); err != nil || !ok {
		t.Fatalf("primary.Delete(%v) = %t, %v", p, ok, err)
	}
	// The routed Delete must now report a miss without error and —
	// crucially — without mutating the 4-sided backend (the old code
	// deleted from it unconditionally and returned a disagreement
	// error after the damage was done).
	if ok, err := db.Delete(p); err != nil || ok {
		t.Fatalf("Delete(%v) = %t, %v; want miss without error", p, ok, err)
	}
	four := db.plan.Backends()[1]
	band := geom.Rect{X1: p.X, X2: p.X, Y1: p.Y, Y2: p.Y}
	if got := four.RangeSkyline(band); len(got) != 1 || got[0] != p {
		t.Fatalf("4-sided backend lost %v on a primary miss: %v", p, got)
	}
	// A delete of a genuinely absent point is a plain miss everywhere.
	if ok, err := db.Delete(geom.Point{X: 1 << 40, Y: 1 << 40}); err != nil || ok {
		t.Fatalf("Delete(absent) = %t, %v", ok, err)
	}
}

// TestBatchUpdatesThroughCore pushes BatchInsert/BatchDelete through
// core for both the single-disk and sharded layouts.
func TestBatchUpdatesThroughCore(t *testing.T) {
	cfg := emio.Config{B: 32, M: 32 * 32}
	all := geom.GenUniform(700, 20000, 214)
	base, batch := all[:400], all[400:]
	for _, opts := range []Options{
		{Machine: cfg, Dynamic: true},
		{Machine: cfg, Dynamic: true, Shards: 4, Workers: 4},
	} {
		db, err := Open(opts, base)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.BatchInsert(batch); err != nil {
			t.Fatal(err)
		}
		if db.Len() != len(all) {
			t.Fatalf("Len = %d, want %d", db.Len(), len(all))
		}
		if got, want := db.Skyline(), geom.Skyline(all); !sameAnswer(got, want) {
			t.Fatalf("opts=%+v post-batch skyline mismatch", opts)
		}
		removed, err := db.BatchDelete(append([]geom.Point(nil), batch...))
		if err != nil || removed != len(batch) {
			t.Fatalf("BatchDelete = %d, %v; want %d", removed, err, len(batch))
		}
		// A second batch delete of the same points is all misses.
		removed, err = db.BatchDelete(append([]geom.Point(nil), batch...))
		if err != nil || removed != 0 {
			t.Fatalf("repeat BatchDelete = %d, %v; want 0", removed, err)
		}
		if db.Len() != len(base) {
			t.Fatalf("Len = %d, want %d", db.Len(), len(base))
		}
		if got, want := db.Skyline(), geom.Skyline(base); !sameAnswer(got, want) {
			t.Fatalf("opts=%+v post-batch-delete skyline mismatch", opts)
		}
	}
	// Static indexes reject the batched paths.
	db, err := Open(Options{Machine: cfg}, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.BatchInsert(batch); err == nil {
		t.Fatal("static index accepted BatchInsert")
	}
	if _, err := db.BatchDelete(batch); err == nil {
		t.Fatal("static index accepted BatchDelete")
	}
}

// TestConcurrentShardedDB drives a sharded core.DB from concurrent
// goroutines — queriers over both families, per-point and batched
// updaters, Len/Stats pollers — then verifies against the oracle after
// quiescence. Under -race (CI's race job covers this package) it proves
// the routed path, including the DB's size accounting, is safe for the
// concurrent callers the sharded engine admits.
func TestConcurrentShardedDB(t *testing.T) {
	const nBase, perUpdater, nUpdaters = 600, 200, 2
	all := geom.GenUniform(nBase+nUpdaters*perUpdater, 40000, 215)
	base := append([]geom.Point(nil), all[:nBase]...)
	db, err := Open(Options{Machine: emio.Config{B: 32, M: 32 * 32}, Dynamic: true, Shards: 4, Workers: 4}, base)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for u := 0; u < nUpdaters; u++ {
		pool := all[nBase+u*perUpdater : nBase+(u+1)*perUpdater]
		batched := u%2 == 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			if batched {
				if err := db.BatchInsert(pool); err != nil {
					t.Error(err)
					return
				}
				var victims []geom.Point
				for i := 1; i < len(pool); i += 2 {
					victims = append(victims, pool[i])
				}
				if got, err := db.BatchDelete(victims); err != nil || got != len(victims) {
					t.Errorf("BatchDelete = %d, %v", got, err)
				}
			} else {
				for _, p := range pool {
					if err := db.Insert(p); err != nil {
						t.Error(err)
						return
					}
				}
				for i := 1; i < len(pool); i += 2 {
					if ok, err := db.Delete(pool[i]); err != nil || !ok {
						t.Errorf("Delete(%v) = %t, %v", pool[i], ok, err)
					}
				}
			}
		}()
	}
	for g := 0; g < 3; g++ {
		seed := int64(g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for q := 0; q < 120; q++ {
				x1 := geom.Coord(rng.Int63n(40000))
				y1 := geom.Coord(rng.Int63n(40000))
				if q%2 == 0 {
					db.TopOpen(x1, x1+8000, y1)
				} else {
					db.RangeSkyline(geom.Rect{X1: x1, X2: x1 + 8000, Y1: y1, Y2: y1 + 8000})
				}
				_ = db.Len()
				_ = db.Stats()
			}
		}()
	}
	wg.Wait()
	ref := append([]geom.Point(nil), base...)
	for u := 0; u < nUpdaters; u++ {
		pool := all[nBase+u*perUpdater : nBase+(u+1)*perUpdater]
		for i := 0; i < len(pool); i += 2 {
			ref = append(ref, pool[i])
		}
	}
	if db.Len() != len(ref) {
		t.Fatalf("final Len = %d, want %d", db.Len(), len(ref))
	}
	rng := rand.New(rand.NewSource(216))
	for q := 0; q < 30; q++ {
		x1 := geom.Coord(rng.Int63n(40000))
		y1 := geom.Coord(rng.Int63n(40000))
		r := geom.Rect{X1: x1, X2: x1 + 12000, Y1: y1, Y2: y1 + 12000}
		if got, want := db.RangeSkyline(r), geom.RangeSkyline(ref, r); !sameAnswer(got, want) {
			t.Fatalf("final q=%d: %v vs %v", q, got, want)
		}
	}
}

func TestGeneralPositionRejected(t *testing.T) {
	if _, err := Open(Options{}, []geom.Point{{X: 1, Y: 2}, {X: 1, Y: 3}}); err == nil {
		t.Fatal("duplicate x accepted")
	}
}

func TestSkylineWhole(t *testing.T) {
	pts := geom.GenUniform(300, 3000, 206)
	db, err := Open(Options{Machine: emio.Config{B: 16, M: 16 * 64}}, pts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := db.Skyline(), geom.Skyline(pts); !sameAnswer(got, want) {
		t.Fatalf("Skyline = %v, want %v", got, want)
	}
}

// TestMirrorRouting pins Options.Mirrors end to end: the planner serves
// the grounded-right-edge family from the mirror backend, every other
// shape keeps its pre-mirror route, and all answers stay byte-identical
// to a mirror-less index — static and dynamic, unsharded and sharded.
func TestMirrorRouting(t *testing.T) {
	cfg := emio.Config{B: 32, M: 32 * 32}
	const n = 260
	span := geom.Coord(n * 16)
	pts := geom.GenUniform(n, span, 61)
	for _, opts := range []Options{
		{Machine: cfg, Mirrors: true},
		{Machine: cfg, Mirrors: true, Dynamic: true},
		{Machine: cfg, Mirrors: true, Dynamic: true, Shards: 4, Workers: 3},
	} {
		db, err := Open(opts, pts)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := Open(Options{Machine: cfg, Dynamic: opts.Dynamic, Shards: opts.Shards, Workers: opts.Workers}, pts)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(db.Planner().Mirrors()); got != 1 {
			t.Fatalf("Mirrors: registered %d mirror backends, want 1", got)
		}
		mirror := db.Planner().Mirrors()[0]
		rng := rand.New(rand.NewSource(62))
		for i := 0; i < 60; i++ {
			x := rng.Int63n(span)
			y1 := rng.Int63n(span)
			y2 := y1 + rng.Int63n(span/2+1)
			x2 := x + rng.Int63n(span/2+1)
			fast := []geom.Rect{
				geom.RightOpen(x, y1, y2),
				{X1: x, X2: geom.PosInf, Y1: geom.NegInf, Y2: y2},
				{X1: geom.NegInf, X2: geom.PosInf, Y1: y1, Y2: y2},
			}
			slow := []geom.Rect{
				geom.BottomOpen(x, x2, y2),
				geom.LeftOpen(x, y1, y2),
				geom.AntiDominance(x, y2),
				{X1: x, X2: x2, Y1: y1, Y2: y2},
			}
			for _, q := range fast {
				if db.Planner().Route(q) != engine.Backend(mirror) {
					t.Fatalf("%v should route to the mirror", q)
				}
				if !sameAnswer(db.RangeSkyline(q), plain.RangeSkyline(q)) {
					t.Fatalf("%v: mirrored answer differs from Theorem 6 answer", q)
				}
			}
			for _, q := range slow {
				if db.Planner().Route(q) == engine.Backend(mirror) {
					t.Fatalf("%v must not route to the mirror (Theorem 5)", q)
				}
				if !sameAnswer(db.RangeSkyline(q), plain.RangeSkyline(q)) {
					t.Fatalf("%v: answer differs with mirrors enabled", q)
				}
			}
			// Top-open family stays on the primary top-open backend.
			if to := geom.TopOpen(x, x2, y1); db.Planner().Route(to) == engine.Backend(mirror) {
				t.Fatalf("%v must not route to the mirror", to)
			}
		}
	}
}

// TestMirrorUpdatesStaySynchronized drives single and batched updates
// through a mirrored dynamic DB and checks the mirror's answers track
// the primary's exactly.
func TestMirrorUpdatesStaySynchronized(t *testing.T) {
	cfg := emio.Config{B: 32, M: 32 * 32}
	const n, extra = 200, 140
	span := geom.Coord((n + extra) * 16)
	all := geom.GenUniform(n+extra, span, 63)
	base := append([]geom.Point(nil), all[:n]...)
	pool := all[n:]
	for _, shards := range []int{1, 4} {
		db, err := Open(Options{Machine: cfg, Dynamic: true, Shards: shards, Workers: 3, Mirrors: true}, base)
		if err != nil {
			t.Fatal(err)
		}
		ref := append([]geom.Point(nil), base...)
		check := func(ctx string) {
			t.Helper()
			rng := rand.New(rand.NewSource(64))
			for i := 0; i < 40; i++ {
				x := rng.Int63n(span)
				y1 := rng.Int63n(span)
				q := geom.RightOpen(x, y1, y1+rng.Int63n(span/2+1))
				if !sameAnswer(db.RangeSkyline(q), geom.RangeSkyline(ref, q)) {
					t.Fatalf("shards=%d %s: %v wrong after updates", shards, ctx, q)
				}
			}
		}
		for _, p := range pool[:40] {
			if err := db.Insert(p); err != nil {
				t.Fatal(err)
			}
			ref = append(ref, p)
		}
		check("inserts")
		if err := db.BatchInsert(pool[40:]); err != nil {
			t.Fatal(err)
		}
		ref = append(ref, pool[40:]...)
		check("batch insert")
		if ok, err := db.Delete(pool[0]); err != nil || !ok {
			t.Fatalf("Delete = %t, %v", ok, err)
		}
		ref = ref[:0]
		for _, p := range append(append([]geom.Point(nil), base...), pool[1:]...) {
			ref = append(ref, p)
		}
		check("delete")
		victims := append([]geom.Point(nil), pool[1:80]...)
		victims = append(victims, pool[1], geom.Point{X: span * 2, Y: span * 2}) // dup + absentee
		removed, err := db.BatchDelete(victims)
		if err != nil || removed != 79 {
			t.Fatalf("BatchDelete = %d, %v; want 79", removed, err)
		}
		ref = append(append([]geom.Point(nil), base...), pool[80:]...)
		check("batch delete")
		if db.Len() != len(ref) {
			t.Fatalf("Len = %d, want %d", db.Len(), len(ref))
		}
	}
}

// TestStatsAggregationWithMirrors pins DB.Stats truthfulness (the
// skybench contract): stats aggregate over every registered backend
// including the mirror's private storage, each distinct disk counted
// once, and ResetStats really zeroes the total.
func TestStatsAggregationWithMirrors(t *testing.T) {
	cfg := emio.Config{B: 32, M: 32 * 32}
	pts := geom.GenUniform(500, 500*16, 65)
	db, err := Open(Options{Machine: cfg, Mirrors: true}, pts)
	if err != nil {
		t.Fatal(err)
	}
	db.ResetStats()
	if got := db.Stats().IOs(); got != 0 {
		t.Fatalf("after ResetStats, IOs = %d", got)
	}
	// A right-open query touches only the mirror's disk.
	db.RangeSkyline(geom.RightOpen(0, 0, 500*16))
	mirrorIOs := db.Stats().IOs()
	if mirrorIOs == 0 {
		t.Fatal("mirror query reported zero I/Os through DB.Stats")
	}
	if got := db.Disk().Stats().IOs(); got != 0 {
		t.Fatalf("mirror query charged %d I/Os to the primary disk", got)
	}
	// A 4-sided query touches only the primary disk; the total must be
	// the exact sum of the two disks (no double counting).
	db.RangeSkyline(geom.Rect{X1: 10, X2: 5000, Y1: 10, Y2: 5000})
	primaryIOs := db.Disk().Stats().IOs()
	if primaryIOs == 0 {
		t.Fatal("4-sided query reported zero I/Os on the primary disk")
	}
	mirror := db.Planner().Mirrors()[0]
	if got, want := db.Stats(), db.Disk().Stats().Add(mirror.Stats()); got != want {
		t.Fatalf("Stats() = %+v, want primary+mirror = %+v", got, want)
	}
	db.ResetStats()
	if got := db.Stats().IOs(); got != 0 {
		t.Fatalf("ResetStats left IOs = %d", got)
	}
	if got := db.Disk().Stats().IOs(); got != 0 {
		t.Fatalf("ResetStats left primary disk IOs = %d", got)
	}
}

// TestAsyncWritesRequireDynamic pins the option validation: a static
// index cannot buffer writes it would reject anyway.
func TestAsyncWritesRequireDynamic(t *testing.T) {
	pts := geom.GenUniform(64, 1024, 6001)
	if _, err := Open(Options{AsyncWrites: true}, pts); err == nil {
		t.Fatal("Open(AsyncWrites, static) succeeded; want error")
	}
}

// TestAsyncQueueStacking pins the layer order Open builds: the queue is
// the outermost front (reads must drain before a cache hit can be
// served) and the cache sits between queue and planner, learning the
// sharded engine's cuts through the stack in both directions.
func TestAsyncQueueStacking(t *testing.T) {
	pts := geom.GenUniform(256, 4096, 6101)
	db, err := Open(Options{
		Machine: emio.Config{B: 32, M: 32 * 32}, Dynamic: true,
		Shards: 4, Workers: 2, AsyncWrites: true, CacheEntries: 8, FlushInterval: -1,
	}, pts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	q := db.Queue()
	if q == nil {
		t.Fatal("Open(AsyncWrites) built no queue")
	}
	if q.Inner() != engine.Backend(db.Cache()) {
		t.Fatal("queue does not drain through the cache")
	}
	if db.Cache().Inner() != engine.Backend(db.Planner()) {
		t.Fatal("cache does not wrap the planner")
	}
	if q.NumSlabs() != db.Sharded().NumShards() {
		t.Fatalf("queue slabs %d, want %d shards", q.NumSlabs(), db.Sharded().NumShards())
	}
}

// TestAsyncLenExact pins Len's flushing-read contract: buffered inserts,
// coalesced pairs and delete misses must all resolve before counting,
// so Len matches a synchronous index at every quiescent point.
func TestAsyncLenExact(t *testing.T) {
	pts := geom.GenUniform(200, 3200, 6201)
	db, err := Open(Options{
		Machine: emio.Config{B: 32, M: 32 * 32}, Dynamic: true,
		Shards: 4, Workers: 2, AsyncWrites: true, FlushPoints: 1 << 20, FlushInterval: -1,
	}, pts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	span := geom.Coord(3200)
	fresh := []geom.Point{{X: span + 1, Y: span + 1}, {X: span + 2, Y: span + 2}, {X: span + 3, Y: span + 3}}
	if err := db.BatchInsert(fresh); err != nil {
		t.Fatal(err)
	}
	if got := db.Len(); got != len(pts)+3 {
		t.Fatalf("Len after buffered batch = %d, want %d", got, len(pts)+3)
	}
	// A delete miss buffered alongside a real delete: only the hit may
	// count.
	if _, err := db.Delete(geom.Point{X: span + 99, Y: span + 99}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Delete(fresh[0]); err != nil {
		t.Fatal(err)
	}
	if got := db.Len(); got != len(pts)+2 {
		t.Fatalf("Len after miss+hit deletes = %d, want %d", got, len(pts)+2)
	}
	if ctr := db.QueueCounters(); ctr.Enqueued == 0 {
		t.Fatalf("queue counters never moved: %+v", ctr)
	}
}

// TestCloseDuringWritesNoGoroutineLeak is the Close regression test:
// closing while writers are in flight must stop the queue's background
// drainer, quiesce the sharded engines' worker pools, and leave no
// goroutine owned by the index behind (checked against the pre-Open
// baseline, with retries for scheduler lag).
func TestCloseDuringWritesNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	all := geom.GenUniform(1200, 1200*16, 6301)
	base := append([]geom.Point(nil), all[:800]...)
	geom.SortByX(base)
	db, err := Open(Options{
		Machine: emio.Config{B: 32, M: 32 * 32}, Dynamic: true,
		Shards: 4, Workers: 4, Mirrors: true, AsyncWrites: true,
		FlushPoints: 16, FlushInterval: time.Millisecond,
	}, base)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		pool := all[800+w*200 : 800+(w+1)*200]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, p := range pool {
				var err error
				if i%3 == 0 {
					err = db.BatchInsert(pool[i : i+1])
				} else {
					err = db.Insert(p)
				}
				// A writer racing Close may be rejected; that is the
				// contract, not a failure.
				if err != nil {
					return
				}
			}
		}()
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	if err := db.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := db.Insert(geom.Point{X: 1 << 30, Y: 1 << 30}); err == nil {
		t.Fatal("Insert after Close succeeded")
	}
	if _, err := db.BatchDelete([]geom.Point{base[0]}); err == nil {
		t.Fatal("BatchDelete after Close succeeded")
	}
	// Reads keep working against the quiesced state.
	if got := db.RangeSkyline(geom.Contour(geom.PosInf)); len(got) == 0 {
		t.Fatal("read after Close returned nothing")
	}
	// The drainer and every worker goroutine must be gone; allow the
	// runtime a moment to reap exited goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after Close: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
