package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/emio"
	"repro/internal/geom"
)

func sameAnswer(got, want []geom.Point) bool {
	if len(got) == 0 && len(want) == 0 {
		return true
	}
	return reflect.DeepEqual(got, want)
}

func TestStaticDispatch(t *testing.T) {
	pts := geom.GenUniform(400, 4000, 201)
	db, err := Open(Options{Machine: emio.Config{B: 32, M: 32 * 32}}, pts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(202))
	for q := 0; q < 150; q++ {
		x1 := geom.Coord(rng.Int63n(4400)) - 200
		x2 := x1 + geom.Coord(rng.Int63n(3000))
		y1 := geom.Coord(rng.Int63n(4400)) - 200
		y2 := y1 + geom.Coord(rng.Int63n(3000))
		for _, r := range []geom.Rect{
			geom.TopOpen(x1, x2, y1),
			{X1: x1, X2: x2, Y1: y1, Y2: y2},
			geom.LeftOpen(x2, y1, y2),
			geom.AntiDominance(x2, y2),
			geom.Dominance(x1, y1),
			geom.Contour(x2),
		} {
			got := db.RangeSkyline(r)
			want := geom.RangeSkyline(pts, r)
			if !sameAnswer(got, want) {
				t.Fatalf("RangeSkyline(%v) = %v, want %v", r, got, want)
			}
		}
	}
	if _, err := Open(Options{Epsilon: 2}, pts); err == nil {
		t.Error("epsilon 2 accepted")
	}
	if err := db.Insert(geom.Point{X: 1, Y: 1}); err == nil {
		t.Error("static index accepted Insert")
	}
}

func TestDynamicLifecycle(t *testing.T) {
	base := geom.GenUniform(200, 1<<20, 203)
	db, err := Open(Options{Machine: emio.Config{B: 16, M: 16 * 64}, Dynamic: true}, base)
	if err != nil {
		t.Fatal(err)
	}
	present := append([]geom.Point(nil), base...)
	extra := geom.GenUniform(150, 1<<20, 204)
	for i := range extra {
		extra[i].X += 1 << 21
		extra[i].Y += 1 << 21
	}
	rng := rand.New(rand.NewSource(205))
	for op := 0; op < 250; op++ {
		if len(extra) > 0 && rng.Intn(2) == 0 {
			p := extra[0]
			extra = extra[1:]
			if err := db.Insert(p); err != nil {
				t.Fatal(err)
			}
			present = append(present, p)
		} else if len(present) > 0 {
			i := rng.Intn(len(present))
			p := present[i]
			present = append(present[:i], present[i+1:]...)
			ok, err := db.Delete(p)
			if err != nil || !ok {
				t.Fatalf("Delete(%v) = %t, %v", p, ok, err)
			}
		}
		if op%31 == 0 {
			x1 := geom.Coord(rng.Int63n(1 << 22))
			x2 := x1 + geom.Coord(rng.Int63n(1<<21))
			y := geom.Coord(rng.Int63n(1 << 22))
			if got, want := db.TopOpen(x1, x2, y), geom.RangeSkyline(present, geom.TopOpen(x1, x2, y)); !sameAnswer(got, want) {
				t.Fatalf("op %d: TopOpen mismatch: %v vs %v", op, got, want)
			}
			r := geom.Rect{X1: x1, X2: x2, Y1: y, Y2: y + geom.Coord(rng.Int63n(1<<21))}
			if got, want := db.RangeSkyline(r), geom.RangeSkyline(present, r); !sameAnswer(got, want) {
				t.Fatalf("op %d: 4-sided mismatch", op)
			}
		}
	}
	if db.Len() != len(present) {
		t.Fatalf("Len = %d, want %d", db.Len(), len(present))
	}
}

func TestGeneralPositionRejected(t *testing.T) {
	if _, err := Open(Options{}, []geom.Point{{X: 1, Y: 2}, {X: 1, Y: 3}}); err == nil {
		t.Fatal("duplicate x accepted")
	}
}

func TestSkylineWhole(t *testing.T) {
	pts := geom.GenUniform(300, 3000, 206)
	db, err := Open(Options{Machine: emio.Config{B: 16, M: 16 * 64}}, pts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := db.Skyline(), geom.Skyline(pts); !sameAnswer(got, want) {
		t.Fatalf("Skyline = %v, want %v", got, want)
	}
}
