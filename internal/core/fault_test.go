package core

import (
	"errors"
	"fmt"
	"slices"
	"syscall"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/vfs"
)

// Fault-injection tests: a vfs.FaultFS between the durable stack and
// the disk fires transient and fatal faults at every filesystem
// operation class, and the assertions pin the resilience contract:
//
//   - transient faults are absorbed below the API (bounded retry) and
//     never surface to a caller;
//   - fatal faults latch degraded read-only mode — reads, Len and
//     Snapshot keep serving the applied state byte-identically to an
//     oracle, writes return ErrDegraded — and reopening the directory
//     recovers every acknowledged write;
//   - no error ever escapes untyped: anything a write path returns
//     satisfies vfs.IsStorageErr or errors.Is one of the sentinels.
//
// The op sequence and its oracle are crash_test.go's (opPoint,
// applyOps, expectedSet, assertRecovered), so fault scenarios and crash
// scenarios check the same acknowledged-prefix invariant.

// noSleep makes retry backoff free (and deterministic) in tests.
func noSleep(time.Duration) {}

// fastRetry is the default budget with free backoff.
func fastRetry() vfs.RetryPolicy { return vfs.RetryPolicy{Sleep: noSleep} }

// TestFaultSweepAllOps drives one scenario per vfs injection point:
// each arms a single deterministic rule on one operation class, runs a
// reopen/update/checkpoint workload through it, and requires the fault
// to have FIRED and the acknowledged state to survive. Together the
// scenarios fire every vfs.AllOps() injection point — the sweep's
// coverage assertion at the bottom.
func TestFaultSweepAllOps(t *testing.T) {
	const seeded = 40 // ops acknowledged before any fault is armed
	covered := map[vfs.Op]bool{}
	scenarios := []struct {
		name string
		op   vfs.Op
		rule vfs.Fault
		// broken: the rule hits an operation the stack cannot retry
		// (the stale-shadow Remove tolerates only ErrNotExist), so the
		// faulted reopen must FAIL with a typed storage error — and the
		// next open, fault cleared, must recover everything.
		broken bool
		// flush runs a checkpoint during the faulted phase; the rules
		// targeting install-only ops (sync, truncate, rename, syncdir,
		// close) need one to fire.
		flush bool
	}{
		{name: "open", op: vfs.OpOpen, rule: vfs.Fault{Op: vfs.OpOpen, Nth: 1}},
		{name: "stat", op: vfs.OpStat, rule: vfs.Fault{Op: vfs.OpStat, Nth: 1}},
		{name: "readat", op: vfs.OpReadAt, rule: vfs.Fault{Op: vfs.OpReadAt, Nth: 1}},
		{name: "size", op: vfs.OpSize, rule: vfs.Fault{Op: vfs.OpSize, Nth: 1}},
		{name: "writeat", op: vfs.OpWriteAt, rule: vfs.Fault{Op: vfs.OpWriteAt, Path: walFile, Nth: 1}},
		{name: "torn-writeat", op: vfs.OpWriteAt, rule: vfs.Fault{Op: vfs.OpWriteAt, Path: walFile, Nth: 2, Short: true}},
		{name: "sync", op: vfs.OpSync, rule: vfs.Fault{Op: vfs.OpSync, Nth: 1}, flush: true},
		{name: "truncate", op: vfs.OpTruncate, rule: vfs.Fault{Op: vfs.OpTruncate, Path: walFile, Nth: 1}, flush: true},
		{name: "rename", op: vfs.OpRename, rule: vfs.Fault{Op: vfs.OpRename, Nth: 1}, flush: true},
		{name: "syncdir", op: vfs.OpSyncDir, rule: vfs.Fault{Op: vfs.OpSyncDir, Nth: 1}, flush: true},
		// The first Close in the faulted phase is WriteSnapshot retiring
		// the pre-install fd — deliberately best-effort, so the injected
		// error is swallowed where a real EBADF would be.
		{name: "close", op: vfs.OpClose, rule: vfs.Fault{Op: vfs.OpClose, Nth: 1}, flush: true},
		{name: "remove", op: vfs.OpRemove, rule: vfs.Fault{Op: vfs.OpRemove, Nth: 1}, broken: true},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			dir := t.TempDir()
			ffs := vfs.NewFaultFS(vfs.OS, 0x5EED)
			opts := Options{Machine: smallMachine, Dynamic: true, Dir: dir, FS: ffs, Retry: fastRetry()}
			db, err := Open(opts, nil)
			if err != nil {
				t.Fatalf("clean open: %v", err)
			}
			applyOps(t, db, 0, seeded)
			if err := db.Flush(); err != nil {
				t.Fatalf("clean checkpoint: %v", err)
			}
			if err := db.Close(); err != nil {
				t.Fatalf("clean close: %v", err)
			}

			ffs.AddFault(sc.rule)
			acked := seeded
			if sc.broken {
				if _, err := Open(opts, nil); err == nil {
					t.Fatalf("reopen absorbed a %v fault the stack cannot retry", sc.op)
				} else if !vfs.IsStorageErr(err) {
					t.Fatalf("untyped reopen error: %v", err)
				}
			} else {
				db2, err := Open(opts, nil)
				if err != nil {
					t.Fatalf("faulted reopen: %v", err)
				}
				applyOps(t, db2, seeded, seeded+20)
				acked += 20
				if sc.flush {
					if err := db2.Flush(); err != nil {
						t.Fatalf("faulted checkpoint: %v", err)
					}
				}
				if res := db2.Resilience(); res.Degraded || res.Exhausted != 0 {
					t.Fatalf("transient %v fault was not absorbed: %+v", sc.op, res)
				}
				ffs.ClearFaults()
				if err := db2.Close(); err != nil {
					t.Fatalf("close: %v", err)
				}
			}
			fired := ffs.FiredOps()
			if !slices.Contains(fired, sc.op) {
				t.Fatalf("scenario %s: fault on %v never fired (fired: %v)", sc.name, sc.op, fired)
			}
			for _, op := range fired {
				covered[op] = true
			}
			ffs.ClearFaults()
			assertRecovered(t, sc.name, dir, acked)
		})
	}
	for _, op := range vfs.AllOps() {
		if !covered[op] {
			t.Errorf("injection point %v never fired in the sweep", op)
		}
	}
}

// TestTransientBurstsInvisible runs a workload through periodic
// transient faults on writes, fsyncs and reads: every fault must be
// absorbed by the retry loop (Retried > 0, Exhausted == 0, nothing
// surfaced), and the final state must equal the oracle's.
func TestTransientBurstsInvisible(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, 77,
		vfs.Fault{Op: vfs.OpWriteAt, Every: 7},
		vfs.Fault{Op: vfs.OpSync, Every: 3},
		vfs.Fault{Op: vfs.OpReadAt, Every: 5},
	)
	opts := Options{Machine: smallMachine, Dynamic: true, Dir: dir, FS: ffs, Retry: fastRetry(), SyncWAL: true}
	db, err := Open(opts, nil)
	if err != nil {
		t.Fatalf("open through faults: %v", err)
	}
	applyOps(t, db, 0, 150)
	if err := db.Flush(); err != nil {
		t.Fatalf("checkpoint through faults: %v", err)
	}
	res := db.Resilience()
	if res.Retried == 0 {
		t.Fatalf("no retries recorded; the burst never hit: %+v (injected %d)", res, ffs.Injected())
	}
	if res.Exhausted != 0 || res.Degraded {
		t.Fatalf("transient bursts should be invisible: %+v", res)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close through faults: %v", err)
	}
	if ffs.Injected() == 0 {
		t.Fatal("fault injector never fired; the test is vacuous")
	}
	ffs.ClearFaults()
	assertRecovered(t, "transient-burst", dir, 150)
}

// TestRetryExhaustionDegrades pins the transient→fatal promotion: a
// fault that keeps firing past the whole retry budget surfaces
// ErrRetryExhausted, latches degraded mode, and the reopen still
// recovers every acknowledged write.
func TestRetryExhaustionDegrades(t *testing.T) {
	const acked = 30
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, 1,
		// Permanent transient failure from the 31st WAL append on.
		vfs.Fault{Op: vfs.OpWriteAt, Path: walFile, After: acked})
	opts := Options{Machine: smallMachine, Dynamic: true, Dir: dir, FS: ffs,
		Retry: vfs.RetryPolicy{MaxRetries: 3, Sleep: noSleep}}
	db, err := Open(opts, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	applyOps(t, db, 0, acked)
	err = applyOp(db, acked)
	if err == nil {
		t.Fatal("write past the fault wall succeeded")
	}
	if !errors.Is(err, ErrRetryExhausted) || !vfs.IsStorageErr(err) {
		t.Fatalf("exhaustion error is untyped: %v", err)
	}
	if db.Degraded() == nil {
		t.Fatal("retry exhaustion did not latch degraded mode")
	}
	if err := db.Insert(opPoint(500)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("write on a degraded index = %v, want ErrDegraded", err)
	}
	res := db.Resilience()
	if res.Exhausted == 0 || res.Retried < 3 || !res.Degraded {
		t.Fatalf("counters missed the exhaustion: %+v", res)
	}
	// Reads keep serving the applied (acknowledged) state.
	want := expectedSet(acked)
	if got := db.Len(); got != len(want) {
		t.Fatalf("degraded Len = %d, want %d", got, len(want))
	}
	twin, err := Open(Options{Machine: smallMachine, Dynamic: true}, want)
	if err != nil {
		t.Fatal(err)
	}
	defer twin.Close()
	assertSameAnswers(t, "exhausted", db, twin, 1_100_000)
	// The latch never clears in-process, even once the disk recovers.
	ffs.ClearFaults()
	if err := db.Close(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Close of a degraded index = %v, want ErrDegraded (checkpoint must be skipped)", err)
	}
	assertRecovered(t, "exhausted", dir, acked)
}

// TestFatalFaultDegradedLifecycle is the sticky-error lifecycle matrix:
// across every stack shape (±shards, ±mirrors, ±cache, ±async) a fatal
// ENOSPC on the WAL latches degraded read-only mode — typed write
// rejection, reads and Snapshot byte-identical to the oracle — and a
// reopen of the directory recovers all acknowledged state.
func TestFatalFaultDegradedLifecycle(t *testing.T) {
	const acked = 80
	configs := []struct {
		name   string
		mutate func(*Options)
	}{
		{"plain", func(o *Options) {}},
		{"sharded", func(o *Options) { o.Shards = 3; o.Workers = 2 }},
		{"mirrored", func(o *Options) { o.Mirrors = true }},
		{"cached", func(o *Options) { o.CacheEntries = 32 }},
		{"async", func(o *Options) {
			o.AsyncWrites = true
			o.FlushPoints = 1 << 20
			o.FlushInterval = -time.Millisecond
		}},
		{"full", func(o *Options) {
			o.Shards = 3
			o.Workers = 2
			o.Mirrors = true
			o.CacheEntries = 32
			o.AsyncWrites = true
			o.FlushPoints = 1 << 20
			o.FlushInterval = -time.Millisecond
		}},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			dir := t.TempDir()
			ffs := vfs.NewFaultFS(vfs.OS, 7)
			opts := Options{Machine: smallMachine, Dynamic: true, Dir: dir, FS: ffs, Retry: fastRetry()}
			cfg.mutate(&opts)
			db, err := Open(opts, nil)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			applyOps(t, db, 0, acked)
			if opts.AsyncWrites {
				// Acknowledged means drained: flush so the 80 ops are
				// WAL records before the disk fills up.
				if err := db.Queue().Flush(); err != nil {
					t.Fatalf("pre-fault drain: %v", err)
				}
			}

			// The disk fills up: every further WAL append fails fatally.
			ffs.AddFault(vfs.Fault{Op: vfs.OpWriteAt, Path: walFile, Err: syscall.ENOSPC})
			if opts.AsyncWrites {
				if err := applyOp(db, acked); err != nil {
					t.Fatalf("buffered write rejected before any drain: %v", err)
				}
				err = db.Flush()
			} else {
				err = applyOp(db, acked)
			}
			if err == nil {
				t.Fatal("write through a full disk succeeded")
			}
			if !vfs.IsStorageErr(err) || !errors.Is(err, syscall.ENOSPC) {
				t.Fatalf("fatal fault surfaced untyped: %v", err)
			}

			// Degraded: typed write rejection, no retry of the fatal op.
			if db.Degraded() == nil {
				t.Fatal("fatal storage error did not latch degraded mode")
			}
			if err := db.Insert(opPoint(600)); !errors.Is(err, ErrDegraded) {
				t.Fatalf("Insert on degraded index = %v, want ErrDegraded", err)
			}
			if _, err := db.Delete(opPoint(601)); !errors.Is(err, ErrDegraded) {
				t.Fatalf("Delete on degraded index = %v, want ErrDegraded", err)
			}
			if err := db.Flush(); err == nil {
				t.Fatal("Flush on degraded index succeeded; the checkpoint would truncate unreplayed WAL records")
			}
			if res := db.Resilience(); !res.Degraded {
				t.Fatalf("Resilience does not report degradation: %+v", res)
			}

			// Reads, Len and Snapshot keep serving the applied state,
			// byte-identical to the oracle of the acknowledged prefix.
			want := expectedSet(acked)
			if got := db.Len(); got != len(want) {
				t.Fatalf("degraded Len = %d, want %d", got, len(want))
			}
			twin, err := Open(Options{Machine: smallMachine, Dynamic: true}, want)
			if err != nil {
				t.Fatal(err)
			}
			defer twin.Close()
			assertSameAnswers(t, cfg.name, db, twin, 1_100_000)
			snap, err := db.Snapshot()
			if err != nil {
				t.Fatalf("Snapshot on degraded index: %v", err)
			}
			for _, r := range sevenShapes(1_100_000) {
				if g, w := snap.RangeSkyline(r), twin.RangeSkyline(r); !sameAnswer(g, w) {
					t.Fatalf("degraded snapshot RangeSkyline(%v) = %v, twin says %v", r, g, w)
				}
			}
			snap.Close()

			// Reopen-replay is the recovery path.
			ffs.ClearFaults()
			if err := db.Close(); !errors.Is(err, ErrDegraded) {
				t.Fatalf("Close of degraded index = %v, want ErrDegraded", err)
			}
			assertRecovered(t, cfg.name, dir, acked)
		})
	}
}

// TestRandomizedFaultSweep is the seed-enumerated randomized harness:
// for each seed, probabilistic transient faults (plus a rare fatal EIO)
// pepper a synchronous durable workload. Whatever happens, the
// invariants hold: every surfaced error is typed, an error implies the
// degraded latch, reads always serve exactly the acknowledged set, and
// a reopen recovers it.
func TestRandomizedFaultSweep(t *testing.T) {
	var totalInjected uint64
	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			ffs := vfs.NewFaultFS(vfs.OS, seed)
			opts := Options{Machine: smallMachine, Dynamic: true, Dir: dir, FS: ffs,
				Retry: vfs.RetryPolicy{MaxRetries: 2, Sleep: noSleep}, SyncWAL: true}
			db, err := Open(opts, nil)
			if err != nil {
				t.Fatalf("clean open: %v", err)
			}
			ffs.AddFault(vfs.Fault{Op: vfs.OpWriteAt, Prob: 0.04})
			ffs.AddFault(vfs.Fault{Op: vfs.OpWriteAt, Prob: 0.01, Short: true})
			ffs.AddFault(vfs.Fault{Op: vfs.OpSync, Prob: 0.05})
			ffs.AddFault(vfs.Fault{Op: vfs.OpRename, Prob: 0.10})
			ffs.AddFault(vfs.Fault{Op: vfs.OpSyncDir, Prob: 0.10})
			ffs.AddFault(vfs.Fault{Op: vfs.OpTruncate, Prob: 0.10})
			ffs.AddFault(vfs.Fault{Op: vfs.OpWriteAt, Prob: 0.003, Err: syscall.EIO})

			live := map[geom.Point]struct{}{}
			degraded := false
			requireTyped := func(err error, what string, i int) {
				t.Helper()
				if !vfs.IsStorageErr(err) && !errors.Is(err, ErrDegraded) {
					t.Fatalf("%s %d surfaced an untyped error: %v", what, i, err)
				}
				if db.Degraded() == nil {
					t.Fatalf("%s %d failed (%v) without latching degraded mode", what, i, err)
				}
				degraded = true
			}
			for i := 0; i < 160; i++ {
				if err := applyOp(db, i); err != nil {
					requireTyped(err, "op", i)
				} else if i%5 == 4 {
					delete(live, opPoint(i-4))
				} else {
					live[opPoint(i)] = struct{}{}
				}
				if i%40 == 39 {
					if err := db.Flush(); err != nil {
						requireTyped(err, "flush", i)
					}
				}
			}

			// Reads serve exactly the acknowledged set, faulted or not.
			if got := db.Len(); got != len(live) {
				t.Fatalf("Len = %d, acknowledged set has %d (degraded=%v)", got, len(live), degraded)
			}
			want := make([]geom.Point, 0, len(live))
			for p := range live {
				want = append(want, p)
			}
			geom.SortByX(want)
			twin, err := Open(Options{Machine: smallMachine, Dynamic: true}, want)
			if err != nil {
				t.Fatal(err)
			}
			defer twin.Close()
			assertSameAnswers(t, "randomized", db, twin, 1_100_000)

			// The disk recovers; the latch does not — reopen does.
			ffs.ClearFaults()
			closeErr := db.Close()
			if degraded && closeErr == nil {
				t.Fatal("Close of a degraded index returned nil")
			}
			if !degraded && closeErr != nil {
				t.Fatalf("Close of a healthy index: %v", closeErr)
			}
			re, err := Open(Options{Machine: smallMachine, Dynamic: true, Dir: dir}, nil)
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			defer re.Close()
			if !re.Recover().Recovered {
				t.Fatalf("reopen did not recover: %+v", re.Recover())
			}
			if got := re.Len(); got != len(live) {
				t.Fatalf("recovered Len = %d, acknowledged set has %d", got, len(live))
			}
			for _, p := range want {
				q := geom.Rect{X1: p.X, X2: p.X, Y1: p.Y, Y2: p.Y}
				if got := re.RangeSkyline(q); len(got) != 1 || got[0] != p {
					t.Fatalf("acknowledged point %v lost (query got %v)", p, got)
				}
			}
			assertSameAnswers(t, "recovered", re, twin, 1_100_000)
			totalInjected += ffs.Injected()
		})
	}
	if totalInjected == 0 {
		t.Fatal("no seed injected a single fault; the sweep is vacuous")
	}
}

// TestCoreBackpressure pins the Options plumbing of the queue's
// admission control: MaxBuffered + ShedWrites sheds with a typed
// ErrBackpressure; the default block policy drains inline and admits.
func TestCoreBackpressure(t *testing.T) {
	t.Run("shed", func(t *testing.T) {
		db, err := Open(Options{Machine: smallMachine, Dynamic: true,
			AsyncWrites: true, FlushPoints: 1 << 20, FlushInterval: -time.Millisecond,
			MaxBuffered: 3, ShedWrites: true}, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		for i := 0; i < 3; i++ {
			if err := db.Insert(opPoint(i)); err != nil {
				t.Fatalf("Insert %d under cap: %v", i, err)
			}
		}
		if err := db.Insert(opPoint(3)); !errors.Is(err, ErrBackpressure) {
			t.Fatalf("Insert over cap = %v, want ErrBackpressure", err)
		}
		if res := db.Resilience(); res.Shed != 1 || res.Blocked != 0 {
			t.Fatalf("Resilience = %+v, want Shed 1", res)
		}
		if err := db.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		if err := db.Insert(opPoint(3)); err != nil {
			t.Fatalf("retry after Flush: %v", err)
		}
		if got := db.Len(); got != 4 {
			t.Fatalf("Len = %d, want 4", got)
		}
	})
	t.Run("block", func(t *testing.T) {
		db, err := Open(Options{Machine: smallMachine, Dynamic: true,
			AsyncWrites: true, FlushPoints: 1 << 20, FlushInterval: -time.Millisecond,
			MaxBuffered: 3}, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		for i := 0; i < 4; i++ {
			if err := db.Insert(opPoint(i)); err != nil {
				t.Fatalf("Insert %d: %v", i, err)
			}
		}
		if res := db.Resilience(); res.Blocked != 1 || res.Shed != 0 {
			t.Fatalf("Resilience = %+v, want Blocked 1", res)
		}
		if got := db.Len(); got != 4 {
			t.Fatalf("Len = %d, want 4", got)
		}
	})
}
