// Typed sentinel errors and the degraded-mode machinery of core.DB.
//
// The sentinels re-export the engine's and vfs's so callers (and the
// repro root package) classify failures with errors.Is against ONE
// package instead of importing internals:
//
//	ErrClosed          write after Close — the index is gone on purpose
//	ErrDegraded        write after a fatal storage error latched; reads,
//	                   Len and Snapshot keep serving, reopen recovers
//	ErrBackpressure    write shed by the async queue's MaxBuffered cap
//	                   (shed policy only); retry after a Flush
//	ErrRetryExhausted  a transient storage fault outlived the bounded
//	                   retry budget; chains inside the latched error
//
// Degraded mode is the DB-level half of the queue's freeze-on-fatal
// rule: the first fatal storage error — surfaced by a synchronous
// write, a queue drain, or a checkpoint — latches, writes are rejected
// with ErrDegraded from then on, and checkpoints are skipped so the
// WAL keeps the records a reopen needs to replay. The latch is never
// cleared in-process; reopening the directory is the recovery path.
package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/vfs"
)

// Sentinel errors, matched with errors.Is. See the package comment of
// this file for the contract each one carries.
var (
	ErrClosed         = engine.ErrClosed
	ErrDegraded       = engine.ErrDegraded
	ErrBackpressure   = engine.ErrBackpressure
	ErrRetryExhausted = vfs.ErrRetryExhausted

	// ErrStatic rejects writes on an index opened without
	// Options.Dynamic. The index is healthy and serves every query; it
	// was simply built immutable (the Theorem 1 static structure).
	// Unlike the sentinels above it can never appear mid-stream: either
	// every write fails with it or none does, so callers — the HTTP
	// front end maps it to 409 Conflict — should not retry.
	ErrStatic = errors.New("index opened static (reads only); reopen with Options.Dynamic")
)

// degradeState is the DB's sticky fatal-error latch.
type degradeState struct {
	mu  sync.Mutex
	err error
}

// latch records err as the degradation cause, wrapping it so the chain
// always carries ErrDegraded. First error wins.
func (d *degradeState) latch(err error) {
	d.mu.Lock()
	if d.err == nil {
		if errors.Is(err, engine.ErrDegraded) {
			d.err = err
		} else {
			d.err = fmt.Errorf("%w: %w", engine.ErrDegraded, err)
		}
	}
	d.mu.Unlock()
}

// get returns the latched error, or nil.
func (d *degradeState) get() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}

// noteWriteErr inspects an error a write path surfaced and latches
// degraded mode when it is a storage fault (vfs.OpError anywhere in
// the chain — the WAL append, a page write-back, a checkpoint) or the
// queue's own degradation. Contract violations (static index, general
// position, closed) never latch: nothing about the storage is wrong.
func (db *DB) noteWriteErr(err error) {
	if err == nil {
		return
	}
	if vfs.IsStorageErr(err) || errors.Is(err, engine.ErrDegraded) {
		db.degrade.latch(err)
	}
}

// Degraded returns the latched fatal storage error, or nil while the
// index is healthy. A degraded index keeps serving reads, Len and
// Snapshot from the applied state — byte-identical to what a
// reopen-replay of the WAL reconstructs — and rejects writes with
// ErrDegraded. Reopening Options.Dir recovers every acknowledged
// write.
func (db *DB) Degraded() error {
	if err := db.degrade.get(); err != nil {
		return err
	}
	// The queue latches drain errors on paths that never return them
	// to a DB method (background ticks, drain-on-read); adopt its
	// sticky error so Degraded is authoritative either way.
	if db.queue != nil {
		if err := db.queue.Err(); err != nil {
			db.degrade.latch(err)
			return db.degrade.get()
		}
	}
	return nil
}

// ResilienceStats aggregates what the storage stack absorbed or shed;
// see DB.Resilience.
type ResilienceStats struct {
	// Retried counts transient storage-operation failures the pager
	// and WAL retried (each backoff counts one).
	Retried uint64
	// Exhausted counts operations whose transient failures outlived
	// the whole retry budget and surfaced ErrRetryExhausted.
	Exhausted uint64
	// Shed and Blocked are the async queue's backpressure totals
	// (writes rejected with ErrBackpressure; writes that drained their
	// slab inline before admission).
	Shed, Blocked uint64
	// Degraded reports the fatal-error latch (see DB.Degraded).
	Degraded bool
}

// Resilience reports the fault-handling counters of the whole stack:
// pager and WAL retry totals, queue backpressure totals, and the
// degraded latch. Safe to call concurrently; zero without the
// corresponding options.
func (db *DB) Resilience() ResilienceStats {
	var rs ResilienceStats
	if db.pager != nil {
		rs.Retried += db.pager.Retries().Retried()
		rs.Exhausted += db.pager.Retries().Exhausted()
	}
	if db.wal != nil {
		rs.Retried += db.wal.Retries().Retried()
		rs.Exhausted += db.wal.Retries().Exhausted()
	}
	if db.queue != nil {
		c := db.queue.Counters()
		rs.Shed, rs.Blocked = c.Shed, c.Blocked
	}
	rs.Degraded = db.Degraded() != nil
	return rs
}
