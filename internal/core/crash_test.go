package core

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/vfs"
)

// Crash-injection tests: a child process (this test binary re-executed
// with SKYLINE_CRASH_MODE set) applies a deterministic op sequence to a
// durable index and dies with os.Exit(137) — the file-state equivalent
// of kill -9 — at a scenario-specific point. The parent then recovers
// the directory and differential-checks it against a never-crashed
// twin holding exactly the acknowledged prefix: same Len, same answer
// on every query shape, and per-point presence for the whole set.
//
// The op sequence is shared by parent and child: op i inserts
// opPoint(i), except every fifth op (i%5 == 4), which deletes the
// point op i-4 inserted. All coordinates are distinct, so general
// position holds throughout.

func opPoint(i int) geom.Point {
	return geom.Point{X: geom.Coord(13*i + 5), Y: geom.Coord(1_000_000 - 17*i)}
}

func applyOp(db *DB, i int) error {
	if i%5 == 4 {
		_, err := db.Delete(opPoint(i - 4))
		return err
	}
	return db.Insert(opPoint(i))
}

func applyOps(t *testing.T, db *DB, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		if err := applyOp(db, i); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
}

// expectedSet is the point set after ops [0, n) — what recovery must
// reproduce when exactly n ops were acknowledged.
func expectedSet(n int) []geom.Point {
	live := map[geom.Point]struct{}{}
	for i := 0; i < n; i++ {
		if i%5 == 4 {
			delete(live, opPoint(i-4))
		} else {
			live[opPoint(i)] = struct{}{}
		}
	}
	out := make([]geom.Point, 0, len(live))
	for p := range live {
		out = append(out, p)
	}
	geom.SortByX(out)
	return out
}

const (
	crashModeEnv = "SKYLINE_CRASH_MODE"
	crashDirEnv  = "SKYLINE_CRASH_DIR"
)

// TestCrashChild is the child half of the harness; without the env it
// is a no-op in a normal test run.
func TestCrashChild(t *testing.T) {
	mode := os.Getenv(crashModeEnv)
	if mode == "" {
		t.Skip("crash-injection child; driven by TestCrashRecovery")
	}
	dir := os.Getenv(crashDirEnv)
	switch mode {
	case "sync":
		// Synchronous durable writes: every op is a WAL record the
		// moment it returns. Dying without Close loses nothing.
		db := mustOpenCrashDB(t, dir, false)
		applyOps(t, db, 0, 200)
	case "asyncdrain":
		// Async: acknowledged means DRAINED. 200 ops drain into the
		// WAL (one record, no checkpoint); 50 more stay buffered and
		// die with the process — the documented async-commit trade.
		db := mustOpenCrashDB(t, dir, true)
		applyOps(t, db, 0, 200)
		if err := db.Queue().Flush(); err != nil {
			t.Fatalf("queue flush: %v", err)
		}
		applyOps(t, db, 200, 250)
	case "midappend":
		// Die between a record becoming durable and its apply — the
		// tightest window: op 37's record is acknowledged-by-log but
		// the structures never saw it. Recovery must replay it.
		appends := 0
		testAfterWALAppend = func() {
			appends++
			if appends == 37 {
				os.Exit(137)
			}
		}
		db := mustOpenCrashDB(t, dir, false)
		applyOps(t, db, 0, 200)
		t.Fatalf("survived all 200 ops; hook never fired")
	case "checkpoint":
		// Checkpoint mid-history: the snapshot absorbs ops [0,100),
		// the WAL holds [100,160), and the crash leaves both.
		db := mustOpenCrashDB(t, dir, false)
		applyOps(t, db, 0, 100)
		if err := db.Flush(); err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
		applyOps(t, db, 100, 160)
	case "snapwritten", "snapinstalled":
		// Die INSIDE a checkpoint's snapshot install — the window the
		// shadow-file rename makes atomic. The vfs hook observes every
		// filesystem op BEFORE it runs, so exiting at the install's
		// rename kills after the shadow is durable but before the
		// rename ("snapwritten": the old snapshot must recover, with
		// the full WAL tail replayed over it), and exiting at the
		// directory sync kills after the rename but before the WAL
		// truncate ("snapinstalled": the new snapshot must recover,
		// its metadata sequence filtering out every now-duplicate WAL
		// record).
		ffs := vfs.NewFaultFS(vfs.OS, 1)
		db := mustOpenCrashDBFS(t, dir, false, ffs)
		applyOps(t, db, 0, 100)
		if err := db.Flush(); err != nil { // hook not armed yet
			t.Fatalf("checkpoint: %v", err)
		}
		applyOps(t, db, 100, 160)
		stage := vfs.OpRename
		if mode == "snapinstalled" {
			stage = vfs.OpSyncDir
		}
		ffs.Hook = func(op vfs.Op, path string) {
			if op == stage {
				os.Exit(137)
			}
		}
		db.Flush() //nolint:errcheck // the hook exits inside this call
		t.Fatalf("survived the checkpoint; install hook never fired")
	default:
		t.Fatalf("unknown crash mode %q", mode)
	}
	os.Exit(137)
}

func mustOpenCrashDB(t *testing.T, dir string, async bool) *DB {
	t.Helper()
	return mustOpenCrashDBFS(t, dir, async, nil)
}

func mustOpenCrashDBFS(t *testing.T, dir string, async bool, fsys vfs.FS) *DB {
	t.Helper()
	o := Options{Machine: smallMachine, Dynamic: true, Dir: dir, FS: fsys}
	if async {
		o.AsyncWrites = true
		o.FlushPoints = 1 << 20
		o.FlushInterval = -time.Millisecond
	}
	db, err := Open(o, nil)
	if err != nil {
		t.Fatalf("child Open: %v", err)
	}
	return db
}

// runCrashChild re-executes the test binary in child mode and requires
// it to die with exit code 137.
func runCrashChild(t *testing.T, mode, dir string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashChild$")
	cmd.Env = append(os.Environ(), crashModeEnv+"="+mode, crashDirEnv+"="+dir)
	out, err := cmd.CombinedOutput()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 137 {
		t.Fatalf("child (%s) did not die with 137: err=%v\n%s", mode, err, out)
	}
}

// assertRecovered opens dir, checks the recovered index holds EXACTLY
// the acknowledged set — no lost write, no resurrected delete — and
// answers every query shape byte-identically to a never-crashed twin.
func assertRecovered(t *testing.T, label, dir string, acked int) RecoveryStats {
	t.Helper()
	re, err := Open(Options{Machine: smallMachine, Dynamic: true, Dir: dir}, nil)
	if err != nil {
		t.Fatalf("%s: recover: %v", label, err)
	}
	defer re.Close()
	want := expectedSet(acked)
	rec := re.Recover()
	if !rec.Recovered {
		t.Fatalf("%s: reopen did not recover: %+v", label, rec)
	}
	if got := re.Len(); got != len(want) {
		t.Fatalf("%s: recovered Len = %d, acknowledged set has %d", label, got, len(want))
	}
	// Per-point presence: a degenerate one-point rectangle answers [p]
	// iff p is indexed, so this checks the full set membership-exactly
	// (Len above rules out extras).
	for _, p := range want {
		q := geom.Rect{X1: p.X, X2: p.X, Y1: p.Y, Y2: p.Y}
		if got := re.RangeSkyline(q); len(got) != 1 || got[0] != p {
			t.Fatalf("%s: acknowledged point %v lost by crash (query got %v)", label, p, got)
		}
	}
	twin, err := Open(Options{Machine: smallMachine, Dynamic: true}, want)
	if err != nil {
		t.Fatalf("%s: twin: %v", label, err)
	}
	defer twin.Close()
	assertSameAnswers(t, label, re, twin, 1_100_000)
	return rec
}

// TestCrashRecovery is the parent half: every scenario kills a child
// at a different point in the write path and proves zero acknowledged
// writes are lost.
func TestCrashRecovery(t *testing.T) {
	if os.Getenv(crashModeEnv) != "" {
		t.Skip("child process")
	}
	if testing.Short() {
		t.Skip("re-executes the test binary")
	}

	t.Run("sync", func(t *testing.T) {
		dir := t.TempDir()
		runCrashChild(t, "sync", dir)
		rec := assertRecovered(t, "sync", dir, 200)
		if rec.RecordsReplayed != 200 || rec.SnapshotPoints != 0 {
			t.Fatalf("sync: %+v, want 200 replayed records over the empty snapshot", rec)
		}
	})

	t.Run("asyncdrain", func(t *testing.T) {
		dir := t.TempDir()
		runCrashChild(t, "asyncdrain", dir)
		// Acknowledged = drained: the 200 flushed ops, not the 50
		// buffered ones the crash vaporized.
		rec := assertRecovered(t, "asyncdrain", dir, 200)
		if rec.RecordsReplayed == 0 || rec.RecordsReplayed > 2 {
			t.Fatalf("asyncdrain: %d replayed records, want the drain batches (1 or 2)", rec.RecordsReplayed)
		}
	})

	t.Run("midappend", func(t *testing.T) {
		dir := t.TempDir()
		runCrashChild(t, "midappend", dir)
		// Record 37 is durable but was never applied in the child;
		// replay must include it.
		rec := assertRecovered(t, "midappend", dir, 37)
		if rec.RecordsReplayed != 37 {
			t.Fatalf("midappend: replayed %d records, want 37", rec.RecordsReplayed)
		}
	})

	t.Run("checkpoint", func(t *testing.T) {
		dir := t.TempDir()
		runCrashChild(t, "checkpoint", dir)
		rec := assertRecovered(t, "checkpoint", dir, 160)
		if rec.SnapshotPoints != len(expectedSet(100)) {
			t.Fatalf("checkpoint: snapshot holds %d points, want %d", rec.SnapshotPoints, len(expectedSet(100)))
		}
		if rec.RecordsReplayed != 60 {
			t.Fatalf("checkpoint: replayed %d records, want the 60 post-checkpoint ops", rec.RecordsReplayed)
		}
	})

	t.Run("snapwritten", func(t *testing.T) {
		// Killed between the shadow file becoming durable and the
		// rename: the live page file was never touched, so the old
		// (100-op) snapshot plus the 60-record WAL tail recover — and
		// the orphaned shadow must be swept, not mistaken for state.
		dir := t.TempDir()
		runCrashChild(t, "snapwritten", dir)
		shadow := filepath.Join(dir, pagesFile+".tmp")
		if _, err := os.Stat(shadow); err != nil {
			t.Fatalf("crash before rename left no shadow file: %v", err)
		}
		rec := assertRecovered(t, "snapwritten", dir, 160)
		if rec.SnapshotPoints != len(expectedSet(100)) {
			t.Fatalf("snapwritten: snapshot holds %d points, want the old checkpoint's %d",
				rec.SnapshotPoints, len(expectedSet(100)))
		}
		if rec.RecordsReplayed != 60 {
			t.Fatalf("snapwritten: replayed %d records, want 60", rec.RecordsReplayed)
		}
		if _, err := os.Stat(shadow); !os.IsNotExist(err) {
			t.Fatalf("recovery did not sweep the orphaned shadow: %v", err)
		}
	})

	t.Run("snapinstalled", func(t *testing.T) {
		// Killed between the rename and the WAL truncate: the NEW
		// snapshot recovers, and the sequence filter skips every WAL
		// record it already covers — nothing replays, nothing doubles.
		dir := t.TempDir()
		runCrashChild(t, "snapinstalled", dir)
		rec := assertRecovered(t, "snapinstalled", dir, 160)
		if rec.SnapshotPoints != len(expectedSet(160)) {
			t.Fatalf("snapinstalled: snapshot holds %d points, want the new checkpoint's %d",
				rec.SnapshotPoints, len(expectedSet(160)))
		}
		if rec.RecordsReplayed != 0 {
			t.Fatalf("snapinstalled: replayed %d records, want 0 (snapshot covers them)", rec.RecordsReplayed)
		}
	})

	t.Run("torntail", func(t *testing.T) {
		// Power-loss flavor: after a sync crash, hand-tear the WAL's
		// final record (as an un-fsynced tail would be). The torn
		// record's op is the ONLY loss; everything before it survives.
		dir := t.TempDir()
		runCrashChild(t, "sync", dir)
		walPath := filepath.Join(dir, walFile)
		st, err := os.Stat(walPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(walPath, st.Size()-3); err != nil {
			t.Fatal(err)
		}
		rec := assertRecovered(t, "torntail", dir, 199)
		if !rec.TornTail || rec.DroppedBytes == 0 {
			t.Fatalf("torntail: tear not reported: %+v", rec)
		}
		if rec.RecordsReplayed != 199 {
			t.Fatalf("torntail: replayed %d records, want 199", rec.RecordsReplayed)
		}
	})

	t.Run("doublerecovery", func(t *testing.T) {
		// Recovering, closing WITHOUT writes, and recovering again is
		// idempotent: the first Close's checkpoint absorbs the replayed
		// records, and the second open replays nothing yet answers
		// identically.
		dir := t.TempDir()
		runCrashChild(t, "sync", dir)
		first := assertRecovered(t, "doublerecovery-1", dir, 200)
		if first.RecordsReplayed == 0 {
			t.Fatalf("first recovery replayed nothing")
		}
		second := assertRecovered(t, "doublerecovery-2", dir, 200)
		if second.RecordsReplayed != 0 {
			t.Fatalf("second recovery replayed %d records; the checkpoint should cover them", second.RecordsReplayed)
		}
		if second.SnapshotPoints != len(expectedSet(200)) {
			t.Fatalf("second recovery snapshot = %d points, want %d", second.SnapshotPoints, len(expectedSet(200)))
		}
	})
}

// TestCrashWindowEveryOp sweeps the in-process crash window: for a
// range of cutoffs, simulate "crash after op k was logged" by building
// the files a crash would leave (checkpoint at op c, WAL records for
// (c, k]) and recovering. Complements the subprocess tests with dense
// coverage of drain/checkpoint interleavings, without process spawns.
func TestCrashWindowEveryOp(t *testing.T) {
	for _, tc := range []struct{ checkpointAt, crashAt int }{
		{0, 1}, {0, 4}, {0, 5}, {0, 23},
		{10, 11}, {10, 25}, {25, 60}, {50, 50}, {60, 61},
	} {
		label := fmt.Sprintf("c%d-k%d", tc.checkpointAt, tc.crashAt)
		dir := t.TempDir()
		db, err := Open(Options{Machine: smallMachine, Dynamic: true, Dir: dir}, nil)
		if err != nil {
			t.Fatal(err)
		}
		applyOps(t, db, 0, tc.checkpointAt)
		if err := db.Flush(); err != nil {
			t.Fatalf("%s: checkpoint: %v", label, err)
		}
		applyOps(t, db, tc.checkpointAt, tc.crashAt)
		// A real crash closes nothing; cleanup only releases the fds
		// (the kernel would anyway) without checkpointing, so the
		// on-disk state is exactly the crash state.
		db.cleanup()
		rec := assertRecovered(t, label, dir, tc.crashAt)
		if rec.RecordsReplayed != tc.crashAt-tc.checkpointAt {
			t.Fatalf("%s: replayed %d, want %d", label, rec.RecordsReplayed, tc.crashAt-tc.checkpointAt)
		}
	}
}
