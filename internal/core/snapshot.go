// DB.Snapshot: non-blocking point-in-time reads. A Snapshot pins a
// consistent view of the index at a drain boundary and serves all
// seven Figure-2 query shapes from it without taking shard write
// locks or forcing drains — writers keep streaming, and every answer
// is byte-identical to what the live index would have answered at the
// pin point, no matter how many writes, drains or checkpoints land
// afterwards.
//
// Where the pin sits in the stack (cf. the DESIGN.md diagram):
//
//	AsyncQueue  — flushes once; the flush IS the boundary
//	LogBackend  — passed through (reads are not logged)
//	CacheBackend— passed through (cache bypassed: snapshot answers
//	              are frozen by construction, live entries must not
//	              serve them)
//	Planner     — frozen into a routing table over pinned views
//	structures  — immutable root handles + emio retentions
//
// Generation accounting: each pinned structure opens a retention on
// its disk (emio.RetainFrees), so spans the live index retires while
// the snapshot is open are deferred, not reclaimed. Retentions are
// epoch-ordered; when the LAST snapshot holding an epoch closes, every
// span retired under it is reclaimed at once — DeferredBlocks returns
// to zero at quiescence, which the race stress asserts.
package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/geom"
)

// Snapshot is a pinned point-in-time view of a DB. All query methods
// mirror the DB's and are safe for concurrent use (the pinned state is
// immutable; the disks are guarded). Close releases the pinned
// storage — snapshots left unclosed hold every span the live index has
// retired since the pin, forever.
type Snapshot struct {
	db     *DB
	view   engine.View
	closed atomic.Bool
}

// Snapshot pins the index's current state at a drain boundary: with
// AsyncWrites the queue's buffers are flushed once (establishing the
// boundary — the one drain a snapshot ever costs), and every
// registered backend's roots are captured under brief per-shard locks
// with storage retentions opened first. No global quiesce, no cache
// interaction. Reads on the returned Snapshot never drain and never
// take shard write locks.
//
// Snapshot may race writers exactly where writers may race each other:
// the sharded engine (its per-shard locks order the pin against every
// update). An unsharded index admits one mutator at a time, and a pin
// counts as a mutator — the same contract as its updates.
func (db *DB) Snapshot() (*Snapshot, error) {
	s, ok := db.front.(engine.Snapshottable)
	if !ok {
		return nil, fmt.Errorf("core: engine stack does not support snapshots")
	}
	v, err := s.Snapshot()
	if err != nil {
		return nil, err
	}
	db.openSnaps.Add(1)
	return &Snapshot{db: db, view: v}, nil
}

// OpenSnapshots reports the number of unclosed snapshots.
func (db *DB) OpenSnapshots() int { return int(db.openSnaps.Load()) }

// DeferredBlocks sums, over every distinct storage unit behind the
// planner (single-disk structures, shard disks, mirror storage), the
// blocks the live index has retired that open snapshots hold alive.
// Zero at quiescence with every snapshot closed — the no-leak
// invariant the race stress asserts.
func (db *DB) DeferredBlocks() int { return db.plan.DeferredBlocks() }

// RetainedCount sums the open storage retentions (one per storage unit
// per unclosed snapshot).
func (db *DB) RetainedCount() int { return db.plan.Retained() }

// Close releases the snapshot's pinned storage. When the last snapshot
// holding a retired span closes, the span is reclaimed (the emio
// deferred-free drain). Idempotent.
func (s *Snapshot) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.view.Release()
	s.db.openSnaps.Add(-1)
}

// RangeSkyline reports the maximal points of the PINNED point set ∩ q
// in increasing-x order, routed through the frozen planner exactly
// like a live query.
func (s *Snapshot) RangeSkyline(q geom.Rect) []geom.Point {
	return s.view.RangeSkyline(q)
}

// Skyline reports the skyline of the whole pinned point set.
func (s *Snapshot) Skyline() []geom.Point {
	return s.RangeSkyline(geom.Rect{X1: geom.NegInf, X2: geom.PosInf, Y1: geom.NegInf, Y2: geom.PosInf})
}

// TopOpen reports the pinned range skyline of [x1,x2] × [beta, ∞)
// (Figure 2a).
func (s *Snapshot) TopOpen(x1, x2, beta geom.Coord) []geom.Point {
	return s.RangeSkyline(geom.TopOpen(x1, x2, beta))
}

// RightOpen reports the pinned range skyline of [x,∞) × [y1,y2]
// (Figure 2b).
func (s *Snapshot) RightOpen(x, y1, y2 geom.Coord) []geom.Point {
	return s.RangeSkyline(geom.RightOpen(x, y1, y2))
}

// BottomOpen reports the pinned range skyline of [x1,x2] × (-∞,y]
// (Figure 2c).
func (s *Snapshot) BottomOpen(x1, x2, y geom.Coord) []geom.Point {
	return s.RangeSkyline(geom.BottomOpen(x1, x2, y))
}

// LeftOpen reports the pinned range skyline of (-∞,x] × [y1,y2]
// (Figure 2d).
func (s *Snapshot) LeftOpen(x, y1, y2 geom.Coord) []geom.Point {
	return s.RangeSkyline(geom.LeftOpen(x, y1, y2))
}

// Dominance reports the pinned skyline of the points dominating (x, y)
// (Figure 2e).
func (s *Snapshot) Dominance(x, y geom.Coord) []geom.Point {
	return s.RangeSkyline(geom.Dominance(x, y))
}

// AntiDominance reports the pinned range skyline of (-∞,x] × (-∞,y]
// (Figure 2f).
func (s *Snapshot) AntiDominance(x, y geom.Coord) []geom.Point {
	return s.RangeSkyline(geom.AntiDominance(x, y))
}

// Contour reports the pinned skyline of the points with x-coordinate
// <= x (Figure 2g).
func (s *Snapshot) Contour(x geom.Coord) []geom.Point {
	return s.RangeSkyline(geom.Contour(x))
}
