// Durable storage for core: the real-file layer behind Options.Dir.
//
// The simulated machine (emio) is bookkeeping-only — it counts the
// I/Os the theorems bound but stores no payloads — so durability is
// LOGICAL: what persists is the point set and the update history, not
// page images of the structures.
//
//   - skyline.pages (internal/pager): 4 KB-page snapshot of the live
//     point set as of the last checkpoint; page 0 is metadata carrying
//     the WAL sequence the snapshot covers.
//   - skyline.wal (internal/wal): one record per update batch the
//     index acknowledged after that checkpoint — the async queue's
//     drain batches, or individual writes when synchronous.
//
// An engine.LogBackend in the stack appends every batch to the WAL
// BEFORE applying it, so the two files always satisfy: snapshot state
// + WAL records with seq > meta.WALSeq = every acknowledged write.
// Recovery rebuilds the structures from the snapshot and replays the
// WAL tail through the planner's batched paths; a checkpoint
// (DB.Flush, DB.Close) snapshots the live set and truncates the WAL.
package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/pager"
	"repro/internal/vfs"
	"repro/internal/wal"
)

// File names inside Options.Dir.
const (
	pagesFile = "skyline.pages"
	walFile   = "skyline.wal"
)

// RecoveryStats reports what opening a durable directory involved.
type RecoveryStats struct {
	// Recovered is true when the directory already held an index: the
	// structures were rebuilt from its snapshot and WAL rather than
	// from seed points.
	Recovered bool
	// SnapshotPoints is the point count of the checkpoint snapshot the
	// rebuild started from.
	SnapshotPoints int
	// RecordsReplayed counts the WAL records applied on top of the
	// snapshot — the acknowledged batches a crash left un-checkpointed.
	RecordsReplayed int
	// ReplayedInserts and ReplayedDeletes count the point writes those
	// records carried (deletes count hits: a replayed miss applies
	// nothing, by the presence-check-first rule).
	ReplayedInserts int
	ReplayedDeletes int
	// TornTail is true when the WAL ended mid-record — the signature
	// of a crash during an append. The torn bytes were never
	// acknowledged; they are dropped and counted here.
	TornTail     bool
	DroppedBytes int64
	// WALSeq is the sequence number recovery resumed at: new batches
	// get strictly larger sequences, so re-replaying an old record is
	// impossible.
	WALSeq uint64
}

// durable carries the opened storage from openDurable to the point in
// Open where the engine stack exists to replay into.
type durable struct {
	pager *pager.Pager
	wal   *wal.Log
	sink  *walSink

	// base is what the structures build from: the seed points (fresh
	// directory) or the checkpoint snapshot (existing one). x-sorted.
	base []geom.Point
	// replay holds the WAL records not covered by the snapshot.
	replay []wal.Record
	recov  RecoveryStats
}

// openDurable opens (or initializes) the two files under opts.Dir on
// opts.FS (nil means the real filesystem) with opts.Retry bounding
// transient-failure retries. seed is the caller's x-sorted seed set; a
// fresh directory checkpoints it immediately — the acknowledged-write
// guarantee starts at Open, not at the first Flush — while an existing
// directory rejects a non-empty seed rather than guess how to merge
// two point sets.
func openDurable(opts Options, seed []geom.Point) (*durable, error) {
	dir := opts.Dir
	fsys := opts.FS
	if fsys == nil {
		fsys = vfs.OS
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: create durable dir: %w", err)
	}
	pagesPath := filepath.Join(dir, pagesFile)
	walPath := filepath.Join(dir, walFile)
	_, statErr := fsys.Stat(pagesPath)
	fresh := errors.Is(statErr, os.ErrNotExist)
	if fresh {
		// A WAL without a page file is ambiguous — a half-deleted
		// index, or foreign files. Refuse BEFORE creating anything, so
		// the refused open leaves the directory exactly as it found it.
		if st, err := fsys.Stat(walPath); err == nil && st.Size() > 0 {
			return nil, fmt.Errorf("core: %s has a WAL but no page file; refusing to guess", dir)
		}
	}
	p, err := pager.OpenFS(pagesPath, opts.PageCacheFrames, fsys, opts.Retry)
	if err != nil {
		return nil, err
	}
	l, scan, err := wal.OpenFS(walPath, fsys, opts.Retry)
	if err != nil {
		p.Close() //errlint:ok open failed half-way; best-effort release
		return nil, err
	}
	d := &durable{pager: p, wal: l, sink: &walSink{log: l, sync: opts.SyncWAL}}
	fail := func(err error) (*durable, error) {
		l.Close() //errlint:ok open failed half-way; the original error wins
		p.Close() //errlint:ok open failed half-way; the original error wins
		return nil, err
	}

	if fresh {
		if err := p.WriteSnapshot(seed, l.Seq()); err != nil {
			return fail(err)
		}
		d.base = seed
		return d, nil
	}

	if len(seed) != 0 {
		return fail(fmt.Errorf("core: durable directory %s already holds an index; open it with no seed points", dir))
	}
	snap, err := p.ReadSnapshot()
	if err != nil {
		return fail(err)
	}
	meta := p.Meta()
	d.base = snap
	d.recov = RecoveryStats{
		Recovered:      true,
		SnapshotPoints: len(snap),
		TornTail:       scan.Torn,
		DroppedBytes:   scan.DroppedBytes,
	}
	// The snapshot covers every record with seq <= meta.WALSeq; replay
	// only the tail. (A WAL older than the snapshot appears when a
	// checkpoint's truncate was lost — records below the cut replay as
	// duplicates unless filtered, which is exactly why sequences exist.)
	for _, rec := range scan.Records {
		if rec.Seq <= meta.WALSeq {
			continue
		}
		d.replay = append(d.replay, rec)
	}
	// An empty-after-checkpoint WAL scans to seq 0; new appends must
	// still land above the sequences the snapshot absorbed.
	l.SetSeq(meta.WALSeq)
	return d, nil
}

// walSink adapts *wal.Log to engine.UpdateLog — the LogBackend's
// append target.
type walSink struct {
	log  *wal.Log
	sync bool
}

func (s *walSink) LogBatch(dels, inss []geom.Point) error {
	if _, err := s.log.Append(dels, inss); err != nil {
		return err
	}
	if s.sync {
		if err := s.log.Sync(); err != nil {
			return err
		}
	}
	if testAfterWALAppend != nil {
		testAfterWALAppend()
	}
	return nil
}

// testAfterWALAppend, when non-nil, runs after a WAL append returns
// and before the batch is applied to the structures — the
// crash-injection tests' hook for dying in the window where a write is
// durable but not yet indexed. Recovery must replay it.
var testAfterWALAppend func()

// checkpoint makes the snapshot current and empties the WAL: the live
// set is materialized under the LogBackend's write mutex and installed
// by the pager's shadow-file rename — crash-atomic, so the page file
// at every instant holds either the old snapshot or the new one, each
// consistent with the WAL sequence its metadata records — and only
// then is the WAL truncated. A crash before the rename recovers the
// old snapshot and replays the full WAL tail; a crash after the rename
// but before the truncate replays nothing (the sequence filter in
// openDurable skips records the new snapshot covers).
func (db *DB) checkpoint() error {
	return db.logb.Checkpoint(func(live []geom.Point) error {
		if err := db.pager.WriteSnapshot(live, db.wal.Seq()); err != nil {
			return err
		}
		return db.wal.Reset()
	})
}

// Recover reports how the index came back from Options.Dir: zero
// unless the directory already held an index, in which case it counts
// the snapshot and the replayed WAL tail. Useful for asserting crash
// recovery actually exercised the replay path.
func (db *DB) Recover() RecoveryStats { return db.recov }

// Pager exposes the durable page store, or nil without Options.Dir.
// Its Stats count real file I/O, next to the simulated machine's.
func (db *DB) Pager() *pager.Pager { return db.pager }

// WAL exposes the write-ahead log, or nil without Options.Dir.
func (db *DB) WAL() *wal.Log { return db.wal }

// cleanup releases everything a partially-constructed DB owns, in
// reverse construction order: the queue's background drainer first
// (nothing may apply writes once the layers below are gone), then the
// engines' in-flight tasks, then the real files. Open defers it on
// every error return so no construction failure leaks a goroutine or
// file descriptor; it is also the failure-path twin of Close.
func (db *DB) cleanup() {
	if db.queue != nil {
		db.queue.Close() //errlint:ok failure-path teardown; the construction error wins
	}
	for _, b := range db.plan.Backends() {
		if m, ok := b.(*engine.MirrorBackend); ok {
			b = m.Inner()
		}
		if qc, ok := b.(interface{ Quiesce() }); ok {
			qc.Quiesce()
		}
	}
	if db.wal != nil {
		db.wal.Close() //errlint:ok failure-path teardown; the construction error wins
	}
	if db.pager != nil {
		db.pager.Close() //errlint:ok failure-path teardown; the construction error wins
	}
}
