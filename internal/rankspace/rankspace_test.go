package rankspace

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/emio"
	"repro/internal/geom"
)

func sameAnswer(got, want []geom.Point) bool {
	if len(got) == 0 && len(want) == 0 {
		return true
	}
	return reflect.DeepEqual(got, want)
}

func TestQueryMatchesOracle(t *testing.T) {
	for _, n := range []int{50, 500, 3000} {
		pts := geom.GenPermutation(n, int64(n))
		d := emio.NewDisk(emio.Config{B: 16, M: 16 * 64})
		ix := Build(d, int64(n), pts)
		rng := rand.New(rand.NewSource(int64(n) + 1))
		for q := 0; q < 300; q++ {
			x1 := geom.Coord(rng.Int63n(int64(n)))
			x2 := x1 + geom.Coord(rng.Int63n(int64(n)))
			beta := geom.Coord(rng.Int63n(int64(n)))
			got := ix.Query(x1, x2, beta)
			want := geom.RangeSkyline(pts, geom.TopOpen(x1, x2, beta))
			if !sameAnswer(got, want) {
				t.Fatalf("n=%d Query(%d,%d,%d) = %v, want %v", n, x1, x2, beta, got, want)
			}
		}
	}
}

func TestQueryCrossChunkBoundaries(t *testing.T) {
	n := 2000
	pts := geom.GenPermutation(n, 77)
	d := emio.NewDisk(emio.Config{B: 8, M: 8 * 64}) // small B: many chunks
	ix := Build(d, int64(n), pts)
	rng := rand.New(rand.NewSource(78))
	for q := 0; q < 400; q++ {
		x1 := geom.Coord(rng.Int63n(int64(n)))
		x2 := x1 + geom.Coord(rng.Int63n(int64(n)/2))
		beta := geom.Coord(rng.Int63n(int64(n)))
		got := ix.Query(x1, x2, beta)
		want := geom.RangeSkyline(pts, geom.TopOpen(x1, x2, beta))
		if !sameAnswer(got, want) {
			t.Fatalf("Query(%d,%d,%d) = %v, want %v", x1, x2, beta, got, want)
		}
	}
}

func TestEmptyAndFullRange(t *testing.T) {
	n := 300
	pts := geom.GenPermutation(n, 5)
	d := emio.NewDisk(emio.Config{B: 16, M: 16 * 64})
	ix := Build(d, int64(n), pts)
	got := ix.Query(0, geom.Coord(n-1), 0)
	want := geom.Skyline(pts)
	if !sameAnswer(got, want) {
		t.Fatalf("full query = %v, want %v", got, want)
	}
	if got := ix.Query(5, 4, 0); got != nil {
		t.Fatalf("inverted range = %v", got)
	}
	empty := Build(d, 10, nil)
	if got := empty.Query(0, 5, 0); got != nil {
		t.Fatalf("empty index = %v", got)
	}
}

// TestConstantQueryCost: Theorem 2's O(1 + k/B) — cost must not grow
// with n for fixed output size.
func TestConstantQueryCost(t *testing.T) {
	cfg := emio.Config{B: 32, M: 32 * 8}
	rng := rand.New(rand.NewSource(9))
	var worstSmall [3]uint64
	for i, n := range []int{2000, 8000, 32000} {
		pts := geom.GenPermutation(n, 11)
		d := emio.NewDisk(cfg)
		ix := Build(d, int64(n), pts)
		var worst uint64
		for q := 0; q < 40; q++ {
			// Narrow queries with small answers.
			x1 := geom.Coord(rng.Int63n(int64(n - 10)))
			x2 := x1 + 5
			beta := geom.Coord(rng.Int63n(int64(n)))
			var res []geom.Point
			st := d.Measure(func() { res = ix.Query(x1, x2, beta) })
			if len(res) > 10 {
				continue
			}
			if st.IOs() > worst {
				worst = st.IOs()
			}
		}
		worstSmall[i] = worst
	}
	// Flat in n: the largest input may cost at most a small factor more
	// than the smallest (constant-bound, not log-bound, growth).
	if worstSmall[2] > 2*worstSmall[0]+16 {
		t.Errorf("small-output query cost grows with n: %v", worstSmall)
	}
}

func TestGridMatchesOracle(t *testing.T) {
	u := int64(1 << 24)
	pts := geom.GenUniform(800, u, 13)
	d := emio.NewDisk(emio.Config{B: 16, M: 16 * 64})
	g := BuildGrid(d, u, pts)
	rng := rand.New(rand.NewSource(14))
	for q := 0; q < 300; q++ {
		x1 := geom.Coord(rng.Int63n(u))
		x2 := x1 + geom.Coord(rng.Int63n(u/2))
		beta := geom.Coord(rng.Int63n(u))
		got := g.Query(x1, x2, beta)
		want := geom.RangeSkyline(pts, geom.TopOpen(x1, x2, beta))
		if !sameAnswer(got, want) {
			t.Fatalf("Grid Query(%d,%d,%d) = %v, want %v", x1, x2, beta, got, want)
		}
	}
}

func TestGridOpenEdges(t *testing.T) {
	u := int64(1 << 20)
	pts := geom.GenUniform(200, u, 15)
	d := emio.NewDisk(emio.Config{B: 16, M: 16 * 64})
	g := BuildGrid(d, u, pts)
	got := g.Query(geom.NegInf, geom.PosInf, geom.NegInf)
	want := geom.Skyline(pts)
	if !sameAnswer(got, want) {
		t.Fatalf("open-edge query = %v, want %v", got, want)
	}
}
