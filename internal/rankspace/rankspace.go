// Package rankspace implements Theorem 2: a linear-size structure on n
// points in rank space [O(n)]² answering top-open range skyline queries
// in optimal O(1 + k/B) I/Os, plus the Corollary 1 wrapper for a general
// grid [U]² with O(log log_B U + k/B) queries via predecessor-based
// coordinate conversion.
//
// The x-axis is cut into chunks of λ = B·log₂U consecutive coordinates;
// a complete binary tree T sits over the chunks. Each chunk carries a
// Lemma 5 few-point structure. Each internal node u stores high(u) — the
// (at most) B highest skyline points of its subtree — and MAX(u), the
// skyline of the high-sets of the right siblings hanging off the path
// from highend(u)'s chunk to u. Each (chunk z, proper ancestor u) pair
// stores LMAX(z,u) and RMAX(z,u), the skylines of the high-sets of the
// left/right siblings of the path from z to u's child. A query walks
// these precomputed staircases top-down (Lemma 6), charging O(1/B) I/Os
// per reported point.
//
// The traversal gathers a candidate superset that contains the true
// answer and lies inside the query rectangle with only constant-factor
// over-report (the paper's charging argument); a final in-memory skyline
// pass — free in the EM model — removes the duplicates that Lemma 6's
// re-reporting introduces.
package rankspace

import (
	"math"
	"sort"

	"repro/internal/emio"
	"repro/internal/fewpoint"
	"repro/internal/geom"
	"repro/internal/pred"
)

// list is an x-sorted staircase stored in a charged span.
type list struct {
	pts   []geom.Point // ascending x, hence descending y
	block emio.BlockID
	words int
}

func newList(d *emio.Disk, pts []geom.Point) *list {
	l := &list{pts: pts, words: 2*len(pts) + 1}
	l.block = d.AllocSpan(l.words)
	d.WriteSpan(l.block, l.words)
	return l
}

// above returns the prefix of points with y > beta (the staircase is
// descending in y), charging only the blocks the scan touches.
func (l *list) above(d *emio.Disk, beta geom.Coord) []geom.Point {
	i := 0
	for i < len(l.pts) && l.pts[i].Y > beta {
		i++
	}
	d.ReadSpan(l.block, 2*i+1)
	return l.pts[:i]
}

type tnode struct {
	parent      *tnode
	left, right *tnode
	depth       int
	chunkIdx    int // leaves only; -1 otherwise

	lo, hi geom.Coord // x-range [lo, hi)

	high    *list       // up to B highest skyline points of P(u)
	highend *geom.Point // lowest point of high when |high| == B
	max     *list       // MAX(u), when highend exists

	// Leaves: LMAX/RMAX per proper-ancestor depth, and the chunk's
	// few-point structure.
	lmax, rmax map[int]*list
	fp         *fewpoint.Structure
	pts        []geom.Point
}

func (nd *tnode) leaf() bool { return nd.left == nil }

// Index is the Theorem 2 structure over rank-space points.
type Index struct {
	disk   *emio.Disk
	u      int64 // universe side length
	lambda int64
	leaves []*tnode
	root   *tnode
	n      int
	capB   int
}

// Build constructs the index over pts whose coordinates lie in [0, u).
func Build(d *emio.Disk, u int64, pts []geom.Point) *Index {
	ix := &Index{disk: d, u: u, n: len(pts), capB: d.Config().B}
	lam := int64(d.Config().B) * int64(math.Max(1, math.Log2(float64(u)+2)))
	ix.lambda = lam
	numChunks := int((u + lam - 1) / lam)
	if numChunks < 1 {
		numChunks = 1
	}
	// Round up to a power of two for a complete binary tree.
	size := 1
	for size < numChunks {
		size *= 2
	}
	sorted := append([]geom.Point(nil), pts...)
	geom.SortByX(sorted)

	ix.leaves = make([]*tnode, size)
	for i := range ix.leaves {
		lo := int64(i) * lam
		nd := &tnode{chunkIdx: i, lo: lo, hi: lo + lam,
			lmax: map[int]*list{}, rmax: map[int]*list{}}
		a := sort.Search(len(sorted), func(j int) bool { return sorted[j].X >= lo })
		b := sort.Search(len(sorted), func(j int) bool { return sorted[j].X >= lo+lam })
		nd.pts = sorted[a:b]
		nd.fp = fewpoint.Build(d, u, nd.pts)
		ix.leaves[i] = nd
	}
	level := append([]*tnode(nil), ix.leaves...)
	for len(level) > 1 {
		var up []*tnode
		for i := 0; i < len(level); i += 2 {
			nd := &tnode{left: level[i], right: level[i+1], chunkIdx: -1,
				lo: level[i].lo, hi: level[i+1].hi}
			level[i].parent, level[i+1].parent = nd, nd
			up = append(up, nd)
		}
		level = up
	}
	ix.root = level[0]
	var setDepth func(nd *tnode, dep int)
	setDepth = func(nd *tnode, dep int) {
		nd.depth = dep
		if !nd.leaf() {
			setDepth(nd.left, dep+1)
			setDepth(nd.right, dep+1)
		}
	}
	setDepth(ix.root, 0)

	ix.computeHigh(ix.root)
	ix.computeMax(ix.root)
	ix.computeSideMax()
	return ix
}

// subtreePoints returns P(u) (host-side; build time only).
func subtreePoints(nd *tnode) []geom.Point {
	if nd.leaf() {
		return nd.pts
	}
	return append(append([]geom.Point(nil), subtreePoints(nd.left)...),
		subtreePoints(nd.right)...)
}

func (ix *Index) computeHigh(nd *tnode) {
	sky := geom.Skyline(subtreePoints(nd))
	// Skyline ascending x = descending y; the B highest are the first B.
	m := ix.capB
	if m > len(sky) {
		m = len(sky)
	}
	nd.high = newList(ix.disk, append([]geom.Point(nil), sky[:m]...))
	if m == ix.capB && m > 0 {
		p := sky[m-1]
		nd.highend = &p
	}
	if !nd.leaf() {
		ix.computeHigh(nd.left)
		ix.computeHigh(nd.right)
	}
}

// pathRightSiblings returns the right siblings of the nodes on the path
// from leaf z up to (and including) the child of u that is z's ancestor.
func pathRightSiblings(z, u *tnode) []*tnode {
	var out []*tnode
	for nd := z; nd != u && nd.parent != nil; nd = nd.parent {
		if nd.parent.left == nd && nd.parent.right != nil {
			out = append(out, nd.parent.right)
		}
		if nd.parent == u {
			break
		}
	}
	return out
}

func pathLeftSiblings(z, u *tnode) []*tnode {
	var out []*tnode
	for nd := z; nd != u && nd.parent != nil; nd = nd.parent {
		if nd.parent.right == nd {
			out = append(out, nd.parent.left)
		}
		if nd.parent == u {
			break
		}
	}
	return out
}

// skylineOfHighs returns the skyline of the union of the nodes' high
// sets, ascending x.
func skylineOfHighs(nodes []*tnode) []geom.Point {
	var all []geom.Point
	for _, v := range nodes {
		all = append(all, v.high.pts...)
	}
	return geom.Skyline(all)
}

func (ix *Index) computeMax(nd *tnode) {
	if !nd.leaf() {
		ix.computeMax(nd.left)
		ix.computeMax(nd.right)
	}
	if nd.leaf() || nd.highend == nil {
		return
	}
	z := ix.leafFor(nd.highend.X)
	nd.max = newList(ix.disk, skylineOfHighs(pathRightSiblings(z, nd)))
}

func (ix *Index) computeSideMax() {
	for _, z := range ix.leaves {
		for u := z.parent; u != nil; u = u.parent {
			z.lmax[u.depth] = newList(ix.disk, skylineOfHighs(pathLeftSiblings(z, u)))
			z.rmax[u.depth] = newList(ix.disk, skylineOfHighs(pathRightSiblings(z, u)))
		}
	}
}

func (ix *Index) leafFor(x geom.Coord) *tnode {
	i := int(x / ix.lambda)
	if i < 0 {
		i = 0
	}
	if i >= len(ix.leaves) {
		i = len(ix.leaves) - 1
	}
	return ix.leaves[i]
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return ix.n }

// Query answers the top-open query [x1,x2] × [beta, ∞) in O(1 + k/B)
// I/Os, returning the maxima in increasing-x order.
func (ix *Index) Query(x1, x2, beta geom.Coord) []geom.Point {
	if ix.n == 0 || x1 > x2 {
		return nil
	}
	if x1 < 0 {
		x1 = 0
	}
	if x2 >= ix.u {
		x2 = ix.u - 1
	}
	if beta < 0 {
		beta = 0 // rank-space coordinates are non-negative
	}
	if x1 > x2 {
		return nil
	}
	z1, z2 := ix.leafFor(x1), ix.leafFor(x2)
	var cand []geom.Point
	if z1 == z2 {
		cand = z1.fp.Query(x1, x2, beta)
		return ix.finish(cand, x1, x2, beta)
	}
	u := lca(z1, z2)

	// Step 1: the right boundary chunk.
	s := z2.fp.Query(x1, x2, beta)
	cand = append(cand, s...)
	betaStar := beta - 1 // strict thresholds below use y > betaStar
	if len(s) > 0 {
		betaStar = s[0].Y
	}

	// Step 2: LMAX(z2, u) and the subtrees it opens.
	s2 := z2.lmax[u.depth].above(ix.disk, betaStar)
	cand = append(cand, s2...)
	ix.openSubtrees(pathLeftSiblings(z2, u), s2, betaStar, beta, &cand)
	if len(s2) > 0 {
		betaStar = s2[0].Y
	}

	// Step 3: RMAX(z1, u) and its subtrees.
	s1 := z1.rmax[u.depth].above(ix.disk, betaStar)
	cand = append(cand, s1...)
	ix.openSubtrees(pathRightSiblings(z1, u), s1, betaStar, beta, &cand)
	if len(s1) > 0 {
		betaStar = s1[0].Y
	}

	// Step 4: the left boundary chunk above the final threshold.
	cand = append(cand, z1.fp.Query(x1, x2, betaStar+1)...)
	return ix.finish(cand, x1, x2, beta)
}

// openSubtrees applies the Lemma 6 recursion to every sibling subtree
// whose entire high-set survives in the staircase s (the pruning test of
// the query algorithm: fewer than B survivors mean the subtree is fully
// covered by s or dominated).
func (ix *Index) openSubtrees(sibs []*tnode, s []geom.Point, betaStar, beta geom.Coord, cand *[]geom.Point) {
	inS := make(map[geom.Point]int, len(s))
	for i, p := range s {
		inS[p] = i
	}
	for _, v := range sibs {
		ix.disk.ReadSpan(v.high.block, v.high.words)
		if v.highend == nil {
			continue // the whole subtree skyline is inside high(v)
		}
		count := 0
		for _, p := range v.high.pts {
			if _, ok := inS[p]; ok {
				count++
			}
		}
		if count < ix.capB {
			continue
		}
		bi := betaStar
		if idx, ok := inS[*v.highend]; ok && idx+1 < len(s) {
			bi = s[idx+1].Y
		}
		ix.lemma6(v, bi, cand)
	}
}

// lemma6 reports the skyline of P(u, β) — the subtree's points with
// y > β — into cand, in O(1 + k/B) I/Os (Lemma 6).
func (ix *Index) lemma6(u *tnode, beta geom.Coord, cand *[]geom.Point) {
	if u.leaf() {
		*cand = append(*cand, u.fp.Query(geom.NegInf, geom.PosInf, beta+1)...)
		return
	}
	ix.disk.ReadSpan(u.high.block, u.high.words)
	reported := 0
	for _, p := range u.high.pts {
		if p.Y > beta {
			*cand = append(*cand, p)
			reported++
		}
	}
	if reported < ix.capB || u.highend == nil {
		return
	}
	p := *u.highend
	// (i) subtrees hanging right of highend's chunk, via MAX(u).
	s := u.max.above(ix.disk, beta)
	*cand = append(*cand, s...)
	z := ix.leafFor(p.X)
	ix.openSubtrees(pathRightSiblings(z, u), s, beta, beta, cand)
	// (ii) the remainder of highend's own chunk, right of highend.
	beta0 := beta
	if len(s) > 0 {
		beta0 = s[0].Y
	}
	*cand = append(*cand, z.fp.Query(p.X+1, geom.PosInf, beta0+1)...)
}

// finish prunes the candidate superset to the exact answer: restrict to
// the rectangle and take the in-memory skyline (free of I/Os; removes
// Lemma 6's constant-factor re-reports).
func (ix *Index) finish(cand []geom.Point, x1, x2, beta geom.Coord) []geom.Point {
	var in []geom.Point
	for _, p := range cand {
		if p.X >= x1 && p.X <= x2 && p.Y >= beta {
			in = append(in, p)
		}
	}
	return geom.Skyline(in)
}

func lca(a, b *tnode) *tnode {
	for a != b {
		if a.depth >= b.depth {
			a = a.parent
		} else {
			b = b.parent
		}
	}
	return a
}

// Grid is the Corollary 1 wrapper: a rank-space Index plus predecessor
// structures converting [U]² query coordinates in O(log log_B U) I/Os.
type Grid struct {
	inner  *Index
	xs, ys []geom.Coord
	px, py *pred.Structure
}

// BuildGrid indexes points with coordinates in [0, u).
func BuildGrid(d *emio.Disk, u int64, pts []geom.Point) *Grid {
	rp, xs, ys := geom.RankSpace(pts)
	g := &Grid{xs: xs, ys: ys}
	side := int64(len(xs))
	if int64(len(ys)) > side {
		side = int64(len(ys))
	}
	if side == 0 {
		side = 1
	}
	g.inner = Build(d, side, rp)
	g.px = pred.Build(d, u, xs)
	g.py = pred.Build(d, u, ys)
	return g
}

// Query answers the top-open query [x1,x2] × [beta, ∞) over the original
// grid coordinates in O(log log_B U + k/B) I/Os: each bound is converted
// to rank space with one predecessor/successor search (charged on the
// pred structures), then the rank-space index answers in O(1 + k/B).
func (g *Grid) Query(x1, x2, beta geom.Coord) []geom.Point {
	if g.inner.Len() == 0 || x1 > x2 {
		return nil
	}
	// Lower bounds round up to the next present coordinate, the upper
	// bound rounds down; an empty rounding means an empty answer.
	sx, ok := g.px.Successor(clampLo(x1))
	if !ok {
		return nil
	}
	rx1 := geom.RankLo(g.xs, sx)
	pxv, ok := g.px.Predecessor(clampU(x2))
	if !ok {
		return nil
	}
	rx2 := geom.RankHi(g.xs, pxv)
	rb := geom.Coord(0)
	if sy, ok := g.py.Successor(clampLo(beta)); ok {
		rb = geom.RankLo(g.ys, sy)
	} else {
		return nil // every point lies below beta
	}
	pts := g.inner.Query(rx1, rx2, rb)
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		out[i] = geom.Point{X: g.xs[p.X], Y: g.ys[p.Y]}
	}
	return out
}

func clampLo(x geom.Coord) int64 {
	if x < 0 {
		return 0
	}
	if x == geom.PosInf {
		return int64(1)<<62 - 1
	}
	return x
}

func clampU(x geom.Coord) int64 {
	if x == geom.PosInf {
		return int64(1)<<62 - 1
	}
	if x < 0 {
		return 0
	}
	return x
}
