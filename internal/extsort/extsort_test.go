package extsort

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/emio"
)

func intLess(a, b int64) bool { return a < b }

func TestFileAppendGet(t *testing.T) {
	d := emio.NewDisk(emio.Config{B: 8, M: 64})
	f := NewFile[int64](d, 1)
	for i := int64(0); i < 100; i++ {
		f.Append(i * 3)
	}
	if f.Len() != 100 {
		t.Fatalf("Len = %d, want 100", f.Len())
	}
	if f.Blocks() != 13 { // ceil(100/8)
		t.Fatalf("Blocks = %d, want 13", f.Blocks())
	}
	for i := 0; i < 100; i++ {
		if got := f.Get(i); got != int64(i*3) {
			t.Fatalf("Get(%d) = %d, want %d", i, got, i*3)
		}
	}
}

func TestSequentialScanCost(t *testing.T) {
	d := emio.NewDisk(emio.Config{B: 8, M: 64})
	f := NewFile[int64](d, 1)
	const n = 256
	for i := int64(0); i < n; i++ {
		f.Append(i)
	}
	st := d.Measure(func() {
		f.Scan(func(_ int, _ int64) bool { return true })
	})
	wantReads := uint64(n / 8)
	if st.Reads != wantReads {
		t.Fatalf("scan of %d records cost %d reads, want %d", n, st.Reads, wantReads)
	}
}

func TestSortSmall(t *testing.T) {
	d := emio.NewDisk(emio.Config{B: 4, M: 32})
	f := FromSlice(d, 1, []int64{5, 3, 9, 1, 7, 2, 8, 0, 6, 4})
	s := Sort(f, intLess)
	got := ToSlice(s)
	want := []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Sort = %v, want %v", got, want)
	}
}

func TestSortEmpty(t *testing.T) {
	d := emio.NewDisk(emio.Config{B: 4, M: 32})
	f := NewFile[int64](d, 1)
	s := Sort(f, intLess)
	if s.Len() != 0 {
		t.Fatalf("sorted empty file has %d records", s.Len())
	}
}

func TestSortFreesInput(t *testing.T) {
	d := emio.NewDisk(emio.Config{B: 4, M: 32})
	f := FromSlice(d, 1, []int64{3, 1, 2})
	s := Sort(f, intLess)
	// Only the output file's blocks should be live.
	if got, want := d.LiveBlocks(), s.Blocks(); got != want {
		t.Fatalf("LiveBlocks = %d, want %d (sort leaked)", got, want)
	}
}

func TestQuickSortMatchesStdlib(t *testing.T) {
	fcheck := func(vals []int64, b8 uint8) bool {
		b := 2 + int(b8%8)
		d := emio.NewDisk(emio.Config{B: b, M: b * 6})
		f := FromSlice(d, 1, vals)
		s := Sort(f, intLess)
		got := ToSlice(s)
		want := append([]int64(nil), vals...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) == 0 && len(want) == 0 {
			return true
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(fcheck, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSortStability(t *testing.T) {
	type rec struct{ k, id int64 }
	d := emio.NewDisk(emio.Config{B: 8, M: 64})
	rng := rand.New(rand.NewSource(1))
	f := NewFile[rec](d, 2)
	for i := int64(0); i < 500; i++ {
		f.Append(rec{k: int64(rng.Intn(10)), id: i})
	}
	s := Sort(f, func(a, b rec) bool { return a.k < b.k })
	out := ToSlice(s)
	for i := 1; i < len(out); i++ {
		if out[i-1].k == out[i].k && out[i-1].id > out[i].id {
			t.Fatalf("sort not stable at %d: %v %v", i, out[i-1], out[i])
		}
	}
}

// TestSortIOComplexity verifies the O((n/B) log_{M/B}(n/B)) bound with an
// explicit constant: I/Os <= c * (n/B) * (1 + ceil(log_{fanIn}(runs))).
func TestSortIOComplexity(t *testing.T) {
	cfg := emio.Config{B: 16, M: 16 * 8} // 8 frames, fan-in 7
	for _, n := range []int{100, 1000, 10000} {
		d := emio.NewDisk(cfg)
		rng := rand.New(rand.NewSource(42))
		f := NewFile[int64](d, 1)
		for i := 0; i < n; i++ {
			f.Append(rng.Int63())
		}
		d.DropCache()
		d.ResetStats()
		s := Sort(f, intLess)
		d.DropCache() // flush dirty output
		st := d.Stats()
		nb := float64(n) / float64(cfg.B)
		runs := math.Ceil(float64(n) / float64(cfg.M))
		passes := 1.0
		if runs > 1 {
			passes += math.Ceil(math.Log(runs) / math.Log(7))
		}
		budget := 6 * nb * passes // reads+writes both phases, slack 3x
		if float64(st.IOs()) > budget {
			t.Errorf("n=%d: sort cost %d I/Os, budget %.0f", n, st.IOs(), budget)
		}
		if !IsSorted(s, intLess) {
			t.Fatalf("n=%d: output not sorted", n)
		}
		s.Free()
	}
}

func TestReaderPeek(t *testing.T) {
	d := emio.NewDisk(emio.Config{B: 4, M: 32})
	f := FromSlice(d, 1, []int64{10, 20})
	r := NewReader(f)
	if v, ok := r.Peek(); !ok || v != 10 {
		t.Fatalf("Peek = %d,%t", v, ok)
	}
	if v, ok := r.Next(); !ok || v != 10 {
		t.Fatalf("Next = %d,%t", v, ok)
	}
	if v, ok := r.Next(); !ok || v != 20 {
		t.Fatalf("Next = %d,%t", v, ok)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("Next past end should report !ok")
	}
}

func TestOversizedRecords(t *testing.T) {
	type big struct{ a, b, c, d, e int64 }
	d := emio.NewDisk(emio.Config{B: 4, M: 32})
	f := NewFile[big](d, 5) // record bigger than a block
	for i := int64(0); i < 10; i++ {
		f.Append(big{a: i})
	}
	if f.Len() != 10 {
		t.Fatalf("Len = %d", f.Len())
	}
	s := Sort(f, func(x, y big) bool { return x.a > y.a })
	out := ToSlice(s)
	if out[0].a != 9 || out[9].a != 0 {
		t.Fatalf("descending sort wrong: %v", out)
	}
}
