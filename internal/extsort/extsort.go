// Package extsort provides sequential files of fixed-width records stored
// in emio blocks, and the classic external-memory mergesort over them:
// O((n/B) log_{M/B}(n/B)) I/Os. It is the substrate of the paper's naive
// baseline (§1.2: "scan the entire point set ... then find the skyline by
// the fastest skyline algorithm on non-preprocessed input sets") and of
// the sorting step that the SABE builders assume has already happened.
package extsort

import (
	"sort"

	"repro/internal/emio"
)

// File is a sequence of fixed-width records laid out in consecutive
// B-word blocks on a Disk. Record payloads live in host memory (CPU and
// host RAM are free in the EM model); each Get/Set/Append charges the
// block access that a real machine would perform.
type File[T any] struct {
	disk     *emio.Disk
	words    int // words per record, >= 1
	perBlock int // records per block
	recs     []T
	blocks   []emio.BlockID
}

// NewFile creates an empty file of records occupying wordsPerRecord words
// each.
func NewFile[T any](d *emio.Disk, wordsPerRecord int) *File[T] {
	if wordsPerRecord < 1 {
		panic("extsort: wordsPerRecord must be >= 1")
	}
	per := d.Config().B / wordsPerRecord
	if per < 1 {
		per = 1 // oversized records: one (span of) block(s) each; keep 1:1
	}
	return &File[T]{disk: d, words: wordsPerRecord, perBlock: per}
}

// Len returns the number of records in the file.
func (f *File[T]) Len() int { return len(f.recs) }

// Blocks returns the number of blocks the file occupies.
func (f *File[T]) Blocks() int { return len(f.blocks) }

// Append adds a record at the end of the file, allocating a fresh block
// whenever the last one is full. Freshly allocated blocks are resident
// and dirty, so sequential writing costs one write I/O per block (charged
// at eviction), exactly the streaming-write cost of the model.
func (f *File[T]) Append(v T) {
	idx := len(f.recs)
	if idx/f.perBlock >= len(f.blocks) {
		f.blocks = append(f.blocks, f.disk.AllocWords(f.words))
	} else if idx%f.perBlock == 0 {
		// Shouldn't happen: block allocated exactly when needed.
	}
	f.recs = append(f.recs, v)
	blk := f.blocks[idx/f.perBlock]
	f.disk.Write(blk)
}

// Get returns record i, touching its block.
func (f *File[T]) Get(i int) T {
	f.disk.Read(f.blocks[i/f.perBlock])
	return f.recs[i]
}

// Set overwrites record i, touching its block for writing.
func (f *File[T]) Set(i int, v T) {
	f.disk.Write(f.blocks[i/f.perBlock])
	f.recs[i] = v
}

// Free releases every block of the file.
func (f *File[T]) Free() {
	for _, b := range f.blocks {
		f.disk.Free(b)
	}
	f.blocks = nil
	f.recs = nil
}

// Scan calls fn for each record in order. It costs one read per block.
func (f *File[T]) Scan(fn func(i int, v T) bool) {
	for i := 0; i < len(f.recs); i++ {
		if i%f.perBlock == 0 {
			f.disk.Read(f.blocks[i/f.perBlock])
		}
		if !fn(i, f.recs[i]) {
			return
		}
	}
}

// Reader iterates a file sequentially, charging one read per block.
type Reader[T any] struct {
	f   *File[T]
	pos int
}

// NewReader returns a Reader positioned at the start of f.
func NewReader[T any](f *File[T]) *Reader[T] { return &Reader[T]{f: f} }

// Next returns the next record, or ok=false at end of file.
func (r *Reader[T]) Next() (v T, ok bool) {
	if r.pos >= r.f.Len() {
		return v, false
	}
	v = r.f.Get(r.pos)
	r.pos++
	return v, true
}

// Peek returns the next record without consuming it.
func (r *Reader[T]) Peek() (v T, ok bool) {
	if r.pos >= r.f.Len() {
		return v, false
	}
	return r.f.Get(r.pos), true
}

// Sort sorts the file's records by less using external mergesort and
// returns a new sorted file; the input is freed. Memory use respects M:
// initial runs hold M/words records, and merges use a fan-in of
// max(2, M/B − 1) input streams.
func Sort[T any](f *File[T], less func(a, b T) bool) *File[T] {
	d := f.disk
	cfg := d.Config()
	runRecs := cfg.M / f.words
	if runRecs < 2*f.perBlock {
		runRecs = 2 * f.perBlock // degenerate tiny-memory guard
	}

	// Phase 1: run formation.
	var runs []*File[T]
	buf := make([]T, 0, runRecs)
	flush := func() {
		if len(buf) == 0 {
			return
		}
		sort.SliceStable(buf, func(i, j int) bool { return less(buf[i], buf[j]) })
		run := NewFile[T](d, f.words)
		for _, v := range buf {
			run.Append(v)
		}
		runs = append(runs, run)
		buf = buf[:0]
	}
	f.Scan(func(_ int, v T) bool {
		buf = append(buf, v)
		if len(buf) == runRecs {
			flush()
		}
		return true
	})
	flush()
	f.Free()

	if len(runs) == 0 {
		return NewFile[T](d, f.words)
	}

	// Phase 2: repeated fan-in-way merge.
	fanIn := cfg.Frames() - 1
	if fanIn < 2 {
		fanIn = 2
	}
	for len(runs) > 1 {
		var next []*File[T]
		for lo := 0; lo < len(runs); lo += fanIn {
			hi := lo + fanIn
			if hi > len(runs) {
				hi = len(runs)
			}
			next = append(next, merge(d, runs[lo:hi], f.words, less))
		}
		runs = next
	}
	return runs[0]
}

// merge performs one multiway merge of sorted runs into a fresh file,
// freeing the inputs.
func merge[T any](d *emio.Disk, runs []*File[T], words int, less func(a, b T) bool) *File[T] {
	out := NewFile[T](d, words)
	readers := make([]*Reader[T], len(runs))
	heads := make([]T, len(runs))
	alive := make([]bool, len(runs))
	for i, r := range runs {
		readers[i] = NewReader(r)
		heads[i], alive[i] = readers[i].Next()
	}
	for {
		best := -1
		for i := range readers {
			if !alive[i] {
				continue
			}
			if best == -1 || less(heads[i], heads[best]) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		out.Append(heads[best])
		heads[best], alive[best] = readers[best].Next()
	}
	for _, r := range runs {
		r.Free()
	}
	return out
}

// FromSlice builds a file from a host slice (charging the streaming
// writes).
func FromSlice[T any](d *emio.Disk, wordsPerRecord int, items []T) *File[T] {
	f := NewFile[T](d, wordsPerRecord)
	for _, v := range items {
		f.Append(v)
	}
	return f
}

// ToSlice reads out the whole file sequentially.
func ToSlice[T any](f *File[T]) []T {
	out := make([]T, 0, f.Len())
	f.Scan(func(_ int, v T) bool {
		out = append(out, v)
		return true
	})
	return out
}

// IsSorted reports whether the file is sorted under less, scanning it.
func IsSorted[T any](f *File[T], less func(a, b T) bool) bool {
	ok := true
	var prev T
	first := true
	f.Scan(func(_ int, v T) bool {
		if !first && less(v, prev) {
			ok = false
			return false
		}
		prev, first = v, false
		return true
	})
	return ok
}
