package skyline

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/emio"
	"repro/internal/extsort"
	"repro/internal/geom"
)

func newDisk() *emio.Disk { return emio.NewDisk(emio.Config{B: 16, M: 16 * 8}) }

func TestExternalMatchesOracle(t *testing.T) {
	for _, n := range []int{0, 1, 2, 50, 500} {
		d := newDisk()
		pts := geom.GenUniform(n, 1<<20, int64(n)+1)
		f := extsort.FromSlice(d, PointWords, pts)
		sky := External(d, f)
		got := extsort.ToSlice(sky)
		want := geom.Skyline(pts)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: External = %v, want %v", n, got, want)
		}
	}
}

func TestExternalStaircase(t *testing.T) {
	d := newDisk()
	pts := geom.GenStaircase(300, 4)
	f := extsort.FromSlice(d, PointWords, pts)
	sky := External(d, f)
	if sky.Len() != 300 {
		t.Fatalf("staircase skyline has %d points, want 300", sky.Len())
	}
}

func TestNaiveRangeSkylineMatchesOracle(t *testing.T) {
	d := newDisk()
	pts := geom.GenUniform(400, 1<<16, 9)
	f := extsort.FromSlice(d, PointWords, pts)
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 30; i++ {
		x1 := geom.Coord(rng.Int63n(1 << 16))
		x2 := x1 + geom.Coord(rng.Int63n(1<<15))
		y1 := geom.Coord(rng.Int63n(1 << 16))
		var q geom.Rect
		if i%2 == 0 {
			q = geom.TopOpen(x1, x2, y1)
		} else {
			q = geom.Rect{X1: x1, X2: x2, Y1: y1, Y2: y1 + geom.Coord(rng.Int63n(1<<15))}
		}
		got := NaiveRangeSkyline(d, f, q)
		want := geom.RangeSkyline(pts, q)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %v: got %v want %v", q, got, want)
		}
	}
}

// TestNaiveCostIsSortBound verifies the baseline costs
// Θ((n/B) log_{M/B}(n/B)) I/Os even when the answer is tiny — the
// motivation for the paper's indexes.
func TestNaiveCostIsSortBound(t *testing.T) {
	cfg := emio.Config{B: 16, M: 16 * 8}
	d := emio.NewDisk(cfg)
	n := 20000
	pts := geom.GenUniform(n, 1<<30, 13)
	f := extsort.FromSlice(d, PointWords, pts)
	q := geom.TopOpen(5, 10, 1<<29) // nearly empty answer
	var got []geom.Point
	st := d.Measure(func() { got = NaiveRangeSkyline(d, f, q) })
	if len(got) > 3 {
		t.Fatalf("expected tiny answer, got %d points", len(got))
	}
	nb := float64(n) / float64(cfg.B)
	// Even with an empty answer the scan alone is n/B reads.
	if float64(st.Reads) < nb {
		t.Fatalf("baseline cost %d reads < n/B = %.0f; scan not charged?", st.Reads, nb)
	}
	passes := 1 + math.Ceil(math.Log(math.Ceil(float64(n)/float64(cfg.M)))/math.Log(7))
	budget := 8 * nb * passes
	if float64(st.IOs()) > budget {
		t.Fatalf("baseline cost %d I/Os exceeds sort budget %.0f", st.IOs(), budget)
	}
}

func TestNaivePreservesInput(t *testing.T) {
	d := newDisk()
	pts := geom.GenUniform(100, 1<<16, 21)
	f := extsort.FromSlice(d, PointWords, pts)
	_ = NaiveRangeSkyline(d, f, geom.Contour(1<<15))
	if got := extsort.ToSlice(f); !reflect.DeepEqual(got, pts) {
		t.Fatal("NaiveRangeSkyline corrupted the input file")
	}
}
