// Package skyline implements external-memory skyline algorithms on
// non-preprocessed inputs. Sorting followed by a single backward scan is
// the optimal O((n/B) log_{M/B}(n/B))-I/O skyline algorithm for 2D
// (Sheng and Tao, PODS 2011, cited as the paper's [35]); combined with a
// filtering scan it is exactly the naive range-skyline baseline of §1.2
// that every indexed structure in this repository is measured against
// (experiment E10).
package skyline

import (
	"repro/internal/emio"
	"repro/internal/extsort"
	"repro/internal/geom"
)

// PointWords is the record width of a point: two machine words.
const PointWords = 2

// External computes the skyline of the points in f (in any order) using
// external sort + backward scan, returning a new file holding the skyline
// in increasing-x order. The input file is freed.
func External(d *emio.Disk, f *extsort.File[geom.Point]) *extsort.File[geom.Point] {
	sorted := extsort.Sort(f, geom.Less)
	defer sorted.Free()

	// Backward scan keeping the running max y; collect in a file in
	// reverse, then reverse with one more pass.
	rev := extsort.NewFile[geom.Point](d, PointWords)
	best := geom.Coord(geom.NegInf)
	for i := sorted.Len() - 1; i >= 0; i-- {
		p := sorted.Get(i)
		if p.Y > best {
			rev.Append(p)
			best = p.Y
		}
	}
	out := extsort.NewFile[geom.Point](d, PointWords)
	for i := rev.Len() - 1; i >= 0; i-- {
		out.Append(rev.Get(i))
	}
	rev.Free()
	return out
}

// NaiveRangeSkyline answers a range skyline query by the paper's §1.2
// baseline: scan the entire point set to eliminate points outside Q, then
// run the external skyline algorithm on the survivors. Cost is
// Θ((n/B) log_{M/B}(n/B)) I/Os regardless of the output size. The input
// file is preserved.
func NaiveRangeSkyline(d *emio.Disk, f *extsort.File[geom.Point], q geom.Rect) []geom.Point {
	inside := extsort.NewFile[geom.Point](d, PointWords)
	f.Scan(func(_ int, p geom.Point) bool {
		if q.Contains(p) {
			inside.Append(p)
		}
		return true
	})
	sky := External(d, inside)
	out := extsort.ToSlice(sky)
	sky.Free()
	return out
}
