// Differential and race coverage for online shard rebalancing
// (core.Options.Rebalance). The correctness claim under test: cut
// placement never affects answers — the sharded engine's right-to-left
// merge is indifferent to where the x-partition sits — so a DB whose
// shards split and merge mid-stream must stay byte-identical to a
// fixed-cut twin running the same ops, and a snapshot pinned before a
// transition must keep serving its frozen view untouched.
package skyline_test

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
)

// forceTransition drives one forced split or merge on the rebalancing
// DB, tolerating only the legitimate refusals (a shard too small to
// split, nothing left to merge).
func forceTransition(t *testing.T, db *core.DB, split bool, ctx string) {
	t.Helper()
	var err error
	if split {
		err = db.ForceSplit(-1)
	} else {
		err = db.ForceMerge(-1)
	}
	if err != nil && !strings.Contains(err.Error(), "too small") && !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("%s: forced transition: %v", ctx, err)
	}
}

// TestDifferentialRebalance runs seeded mixed workloads on a
// rebalancing DB and a fixed-cut twin side by side, forcing splits and
// merges throughout (the load policy may add its own), and checks
// every answer across all seven Figure-2 shapes byte-identical to the
// twin and the O(n²) oracle. A snapshot pinned mid-stream must keep
// answering from its frozen view across every later transition. The
// matrix covers mirrors (transitions on both axes), the read-through
// cache (re-tagged on every cut change), the async queue (slabs
// migrated with coalescing state intact), and a durable directory.
func TestDifferentialRebalance(t *testing.T) {
	configs := []struct {
		name    string
		opts    core.Options
		durable bool
	}{
		{"sharded", core.Options{Machine: diffCfg, Dynamic: true, Shards: 4, Workers: 3}, false},
		{"mirrored", core.Options{Machine: diffCfg, Dynamic: true, Shards: 4, Workers: 3, Mirrors: true}, false},
		{"cached", core.Options{Machine: diffCfg, Dynamic: true, Shards: 4, Workers: 3, CacheEntries: 32}, false},
		{"mirrored-cached-async", core.Options{Machine: diffCfg, Dynamic: true, Shards: 4, Workers: 3,
			Mirrors: true, CacheEntries: 32, AsyncWrites: true, FlushPoints: 16, FlushInterval: -1}, false},
		{"durable", core.Options{Machine: diffCfg, Dynamic: true, Shards: 4, Workers: 3}, true},
	}
	const n, extra = 200, 200
	span := geom.Coord((n + extra) * 16)
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
					all := geom.GenUniform(n+extra, span, seed+9100)
					base := append([]geom.Point(nil), all[:n]...)
					pool := append([]geom.Point(nil), all[n:]...)
					geom.SortByX(base)
					fixedOpts := cfg.opts
					if cfg.durable {
						fixedOpts.Dir = t.TempDir()
					}
					fixed, err := core.Open(fixedOpts, base)
					if err != nil {
						t.Fatal(err)
					}
					rebalOpts := cfg.opts
					rebalOpts.Rebalance = true
					rebalOpts.MaxShardSkew = 2.0
					if cfg.durable {
						rebalOpts.Dir = t.TempDir()
					}
					rebal, err := core.Open(rebalOpts, base)
					if err != nil {
						t.Fatal(err)
					}
					ref := append([]geom.Point(nil), base...)
					dbs := []*core.DB{fixed, rebal}

					rng := rand.New(rand.NewSource(seed + 91))
					qpool := make([]geom.Rect, 12)
					for i := range qpool {
						qpool[i] = randAnyShape(rng, span)
					}

					// Pinned mid-stream: its view must survive every
					// later transition bit for bit.
					var snap *core.Snapshot
					var snapRects []geom.Rect
					var snapWant [][]geom.Point
					checkSnap := func(ctx string) {
						if snap == nil {
							return
						}
						for i, r := range snapRects {
							diffPoints(t, snap.RangeSkyline(r), snapWant[i],
								fmt.Sprintf("%s: pinned snapshot drifted on %v", ctx, r))
						}
					}

					for op := 0; op < 170; op++ {
						ctx := fmt.Sprintf("%s seed=%d op=%d", cfg.name, seed, op)
						if op == 60 {
							snap, err = rebal.Snapshot()
							if err != nil {
								t.Fatalf("%s: %v", ctx, err)
							}
							frozen := append([]geom.Point(nil), ref...)
							for i := 0; i < 6; i++ {
								r := randAnyShape(rng, span)
								snapRects = append(snapRects, r)
								snapWant = append(snapWant, naiveRangeSkyline(frozen, r))
							}
							checkSnap(ctx)
						}
						if op%20 == 10 {
							forceTransition(t, rebal, op%40 == 10, ctx)
							checkSnap(ctx)
						}
						switch rng.Intn(12) {
						case 0, 1: // single insert
							if len(pool) == 0 {
								continue
							}
							p := pool[len(pool)-1]
							pool = pool[:len(pool)-1]
							for _, db := range dbs {
								if err := db.Insert(p); err != nil {
									t.Fatalf("%s: %v", ctx, err)
								}
							}
							ref = append(ref, p)
						case 2: // batch insert
							if len(pool) < 2 {
								continue
							}
							k := 1 + rng.Intn(len(pool)/2)
							batch := append([]geom.Point(nil), pool[:k]...)
							pool = pool[k:]
							for _, db := range dbs {
								if err := db.BatchInsert(batch); err != nil {
									t.Fatalf("%s: %v", ctx, err)
								}
							}
							ref = append(ref, batch...)
						case 3, 4: // single delete (sometimes a miss)
							if rng.Intn(4) == 0 || len(ref) == 0 {
								absent := geom.Point{X: span + geom.Coord(op) + 1, Y: span + geom.Coord(op) + 1}
								for _, db := range dbs {
									if ok, err := db.Delete(absent); err != nil {
										t.Fatalf("%s: Delete(absent) = %t, %v", ctx, ok, err)
									}
								}
								continue
							}
							j := rng.Intn(len(ref))
							p := ref[j]
							ref = append(ref[:j], ref[j+1:]...)
							for i, db := range dbs {
								if ok, err := db.Delete(p); !ok || err != nil {
									t.Fatalf("%s: db%d.Delete(%v) = %t, %v", ctx, i, p, ok, err)
								}
							}
						case 5: // flush the queued config, exact length
							for _, db := range dbs {
								if err := db.Flush(); err != nil {
									t.Fatalf("%s: %v", ctx, err)
								}
								if got := db.Len(); got != len(ref) {
									t.Fatalf("%s: Len = %d, want %d", ctx, got, len(ref))
								}
							}
						default: // query, mostly from the recurring pool
							var q geom.Rect
							if rng.Intn(4) == 0 {
								q = randAnyShape(rng, span)
								qpool[rng.Intn(len(qpool))] = q
							} else {
								q = qpool[rng.Intn(len(qpool))]
							}
							want := naiveRangeSkyline(ref, q)
							fromFixed := fixed.RangeSkyline(q)
							diffPoints(t, fromFixed, want, ctx+fmt.Sprintf(" %v fixed", q))
							diffPoints(t, rebal.RangeSkyline(q), fromFixed, ctx+fmt.Sprintf(" %v rebal vs fixed", q))
						}
					}

					st := rebal.RebalanceStats()
					if st.Splits == 0 && st.Merges == 0 {
						t.Fatalf("%s seed=%d: no transition completed — the test exercised nothing", cfg.name, seed)
					}
					checkSnap("final")
					if snap != nil {
						snap.Close()
					}
					for _, db := range dbs {
						if err := db.Flush(); err != nil {
							t.Fatal(err)
						}
						if db.Len() != len(ref) {
							t.Fatalf("%s seed=%d: Len = %d, want %d", cfg.name, seed, db.Len(), len(ref))
						}
					}
					rng2 := rand.New(rand.NewSource(seed + 92))
					for q := 0; q < 40; q++ {
						r := randAnyShape(rng2, span)
						diffPoints(t, rebal.RangeSkyline(r), naiveRangeSkyline(ref, r),
							fmt.Sprintf("%s seed=%d final q=%d %v", cfg.name, seed, q, r))
					}
					if eng := rebal.Sharded(); eng.Retained() != 0 {
						t.Fatalf("%s seed=%d: %d retentions leaked after snapshot release", cfg.name, seed, eng.Retained())
					}
					for _, db := range dbs {
						if err := db.Close(); err != nil {
							t.Fatal(err)
						}
					}
				})
			}
		})
	}
}

// TestRebalanceRaceStress is the -race mix the transition protocol
// exists for: concurrent readers, two writers, snapshot holders, and a
// dedicated goroutine forcing splits and merges, all on one
// sharded+mirrored+cached+async rebalancing DB (the load policy runs
// too). Snapshot holders assert their pinned views never drift while
// the topology changes beneath them; readers assert staircase shape
// and, once every delete was issued, that victims never resurface.
// After quiescence the full point set is verified against the oracle
// and the retention ledger must be empty — transitions must not leak
// retired storage.
func TestRebalanceRaceStress(t *testing.T) {
	const (
		nBase       = 600
		perUpdater  = 200
		nQueriers   = 3
		queries     = 100
		transitions = 30
	)
	span := geom.Coord((nBase + 2*perUpdater) * 16)
	all := geom.GenUniform(nBase+2*perUpdater, span, 9300)
	base := append([]geom.Point(nil), all[:nBase]...)
	geom.SortByX(base)
	db, err := core.Open(core.Options{
		Machine: diffCfg, Dynamic: true, Shards: 4, Workers: 4, Mirrors: true,
		CacheEntries: 32, AsyncWrites: true, FlushPoints: 16,
		FlushInterval: time.Millisecond,
		Rebalance:     true, MaxShardSkew: 2.0,
	}, base)
	if err != nil {
		t.Fatal(err)
	}
	victims := make(map[geom.Point]bool)
	for u := 0; u < 2; u++ {
		pool := all[nBase+u*perUpdater : nBase+(u+1)*perUpdater]
		for i := 1; i < len(pool); i += 2 {
			victims[pool[i]] = true
		}
	}
	deleted := make(chan struct{})
	prng := rand.New(rand.NewSource(9301))
	qpool := make([]geom.Rect, 24)
	for i := range qpool {
		qpool[i] = randAnyShape(prng, span)
	}

	var wg sync.WaitGroup
	var deletersDone sync.WaitGroup

	// The transition driver: alternating forced splits and merges racing
	// everything else (plus whatever the load policy decides on its own).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < transitions; i++ {
			forceTransition(t, db, i%2 == 0, fmt.Sprintf("driver i=%d", i))
		}
	}()

	for u := 0; u < 2; u++ {
		pool := all[nBase+u*perUpdater : nBase+(u+1)*perUpdater]
		wg.Add(1)
		deletersDone.Add(1)
		go func() {
			defer wg.Done()
			defer deletersDone.Done()
			for _, p := range pool {
				if err := db.Insert(p); err != nil {
					t.Error(err)
					return
				}
			}
			for i := 1; i < len(pool); i += 2 {
				if ok, err := db.Delete(pool[i]); err != nil || !ok {
					t.Errorf("Delete(%v) = %t, %v", pool[i], ok, err)
					return
				}
			}
		}()
	}
	go func() {
		deletersDone.Wait()
		close(deleted)
	}()

	for g := 0; g < nQueriers; g++ {
		seed := int64(g + 9400)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			checkVictims := false
			for q := 0; q < queries; q++ {
				select {
				case <-deleted:
					checkVictims = true
				default:
				}
				r := qpool[rng.Intn(len(qpool))]
				sky := db.RangeSkyline(r)
				for i, p := range sky {
					if !r.Contains(p) {
						t.Errorf("query %d: %v outside %v", q, p, r)
						return
					}
					if i > 0 && (sky[i-1].X >= p.X || sky[i-1].Y <= p.Y) {
						t.Errorf("query %d: not a staircase at %d: %v, %v", q, i, sky[i-1], p)
						return
					}
					if checkVictims && victims[p] {
						t.Errorf("query %d: deleted point %v resurfaced in %v", q, p, r)
						return
					}
				}
			}
		}()
	}

	// Snapshot holders: pin, capture three answers, then re-query while
	// transitions land — the pinned view must never drift — and release.
	for h := 0; h < 2; h++ {
		seed := int64(h + 9500)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for round := 0; round < 5; round++ {
				snap, err := db.Snapshot()
				if err != nil {
					t.Error(err)
					return
				}
				rects := make([]geom.Rect, 3)
				want := make([][]geom.Point, 3)
				for i := range rects {
					rects[i] = qpool[rng.Intn(len(qpool))]
					want[i] = snap.RangeSkyline(rects[i])
				}
				for rep := 0; rep < 10; rep++ {
					i := rng.Intn(len(rects))
					got := snap.RangeSkyline(rects[i])
					if len(got) != len(want[i]) {
						t.Errorf("snapshot drifted on %v: %d points, want %d", rects[i], len(got), len(want[i]))
						snap.Close()
						return
					}
					for j := range got {
						if got[j] != want[i][j] {
							t.Errorf("snapshot drifted on %v at %d", rects[i], j)
							snap.Close()
							return
						}
					}
				}
				snap.Close()
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 150; i++ {
			_ = db.Len()
			_ = db.QueueCounters()
			_ = db.RebalanceStats()
		}
	}()
	wg.Wait()

	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	ref := append([]geom.Point(nil), base...)
	for u := 0; u < 2; u++ {
		pool := all[nBase+u*perUpdater : nBase+(u+1)*perUpdater]
		for i := 0; i < len(pool); i += 2 {
			ref = append(ref, pool[i])
		}
	}
	if db.Len() != len(ref) {
		t.Fatalf("final Len = %d, want %d", db.Len(), len(ref))
	}
	rng := rand.New(rand.NewSource(9302))
	for q := 0; q < 40; q++ {
		r := randAnyShape(rng, span)
		diffPoints(t, db.RangeSkyline(r), naiveRangeSkyline(ref, r), fmt.Sprintf("final q=%d %v", q, r))
	}
	st := db.RebalanceStats()
	if st.Splits == 0 && st.Merges == 0 {
		t.Fatal("no transition completed under race — the stress exercised nothing")
	}
	if got := db.Sharded().Retained(); got != 0 {
		t.Fatalf("%d retentions leaked after every snapshot was released", got)
	}
	if ctr := db.QueueCounters(); ctr.Enqueued != ctr.Drained+ctr.Coalesced {
		t.Fatalf("quiescent invariant violated: %+v", ctr)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
