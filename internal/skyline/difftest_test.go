// Differential test harness: randomized workloads (inserts, deletes,
// mixed x/β queries) cross-checked against a naive O(n²) skyline oracle
// for every query engine in the repository — the Theorem 1 static index
// (topopen), the Theorem 4 dynamic tree (dyntop), the Theorem 6 4-sided
// structure (foursided), and the sharded concurrent engine
// (internal/shard, both directly and routed through core.Open). Every
// workload is seeded and each seed runs as its own subtest, so a failure
// names the exact subtest to replay:
//
//	go test ./internal/skyline -run 'TestDifferentialDynamic/seed=3'
package skyline_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/dyntop"
	"repro/internal/emio"
	"repro/internal/extsort"
	"repro/internal/foursided"
	"repro/internal/geom"
	"repro/internal/shard"
	"repro/internal/topopen"
)

var diffCfg = emio.Config{B: 32, M: 32 * 32}

// naiveRangeSkyline is the O(n²) oracle: a point of pts ∩ r is reported
// iff no other point of pts ∩ r dominates it. It is deliberately
// independent of geom.Skyline so the harness cross-checks that oracle
// too.
func naiveRangeSkyline(pts []geom.Point, r geom.Rect) []geom.Point {
	var in []geom.Point
	for _, p := range pts {
		if r.Contains(p) {
			in = append(in, p)
		}
	}
	var out []geom.Point
	for _, p := range in {
		maximal := true
		for _, q := range in {
			if q.Dominates(p) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return geom.Less(out[i], out[j]) })
	return out
}

func diffPoints(t *testing.T, got, want []geom.Point, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d points %v, want %d %v", ctx, len(got), got, len(want), want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: point %d = %v, want %v", ctx, i, got[i], want[i])
		}
	}
}

// randTopOpen mixes bounded and grounded query sides.
func randTopOpen(rng *rand.Rand, span geom.Coord) (x1, x2, beta geom.Coord) {
	x1 = rng.Int63n(span)
	x2 = x1 + rng.Int63n(span/2+1)
	beta = rng.Int63n(span)
	switch rng.Intn(8) {
	case 0:
		x1 = geom.NegInf
	case 1:
		x2 = geom.PosInf
	case 2:
		beta = geom.NegInf
	case 3:
		x1, x2, beta = geom.NegInf, geom.PosInf, geom.NegInf
	case 4:
		x2 = x1 // degenerate slab
	}
	return x1, x2, beta
}

// randFourSided draws a rectangle whose top edge may or may not be
// bounded, exercising both dispatch paths of core.DB.
func randFourSided(rng *rand.Rand, span geom.Coord) geom.Rect {
	x1 := rng.Int63n(span)
	y1 := rng.Int63n(span)
	r := geom.Rect{X1: x1, X2: x1 + rng.Int63n(span/2+1), Y1: y1, Y2: y1 + rng.Int63n(span/2+1)}
	switch rng.Intn(6) {
	case 0:
		r.X1 = geom.NegInf
	case 1:
		r.Y1 = geom.NegInf
	case 2:
		r.X2 = geom.PosInf
	}
	return r
}

// TestDifferentialStatic cross-checks the static engines — topopen,
// foursided, and the static sharded engine — on random query mixes.
func TestDifferentialStatic(t *testing.T) {
	const n = 300
	span := geom.Coord(n * 16)
	for seed := int64(0); seed < 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			pts := geom.GenUniform(n, span, seed+500)
			geom.SortByX(pts)
			d := emio.NewDisk(diffCfg)
			f := extsort.FromSlice(d, 2, pts)
			top := topopen.Build(d, f)
			four := foursided.Build(emio.NewDisk(diffCfg), 0.5, pts)
			eng, err := shard.New(shard.Options{Machine: diffCfg, Shards: 4, Workers: 2}, pts)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			for q := 0; q < 80; q++ {
				x1, x2, beta := randTopOpen(rng, span)
				r := geom.TopOpen(x1, x2, beta)
				want := naiveRangeSkyline(pts, r)
				ctx := fmt.Sprintf("seed=%d q=%d %v", seed, q, r)
				diffPoints(t, top.Query(x1, x2, beta), want, ctx+" topopen")
				diffPoints(t, eng.TopOpen(x1, x2, beta), want, ctx+" shard")
				diffPoints(t, geom.RangeSkyline(pts, r), want, ctx+" geom oracle")

				fr := randFourSided(rng, span)
				fctx := fmt.Sprintf("seed=%d q=%d %v", seed, q, fr)
				single := four.Query(fr)
				diffPoints(t, single, naiveRangeSkyline(pts, fr), fctx+" foursided")
				// The static sharded engine serves the 4-sided family
				// too, byte-identically to the single-disk structure.
				diffPoints(t, eng.RangeSkyline(fr), single, fctx+" shard 4-sided vs single")
			}
		})
	}
}

// TestDifferentialDynamic drives a mixed insert/delete/query workload
// against three engines at once: a single-disk dyntop tree, a direct
// sharded engine, and a sharded core.DB (which also exercises foursided
// and the Figure 2 dispatch). The sharded answers must be byte-identical
// to the single-disk tree's, and all must match the naive oracle.
func TestDifferentialDynamic(t *testing.T) {
	const n, extra = 220, 260
	span := geom.Coord((n + extra) * 16)
	for seed := int64(0); seed < 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			all := geom.GenUniform(n+extra, span, seed+900)
			base := append([]geom.Point(nil), all[:n]...)
			pool := append([]geom.Point(nil), all[n:]...)
			geom.SortByX(base)

			tree := dyntop.BuildSABE(emio.NewDisk(diffCfg), 0.5, base)
			four := foursided.Build(emio.NewDisk(diffCfg), 0.5, base)
			eng, err := shard.New(shard.Options{Machine: diffCfg, Shards: 4, Workers: 3, Dynamic: true}, base)
			if err != nil {
				t.Fatal(err)
			}
			db, err := core.Open(core.Options{Machine: diffCfg, Dynamic: true, Shards: 4, Workers: 3}, base)
			if err != nil {
				t.Fatal(err)
			}
			if db.Sharded() == nil {
				t.Fatal("core.Open(Shards: 4) did not build the sharded engine")
			}
			ref := append([]geom.Point(nil), base...)

			rng := rand.New(rand.NewSource(seed))
			for op := 0; op < 250; op++ {
				ctx := fmt.Sprintf("seed=%d op=%d", seed, op)
				switch rng.Intn(10) {
				case 0, 1, 2: // insert
					if len(pool) == 0 {
						continue
					}
					p := pool[len(pool)-1]
					pool = pool[:len(pool)-1]
					tree.Insert(p)
					four.Insert(p)
					if err := eng.Insert(p); err != nil {
						t.Fatalf("%s: %v", ctx, err)
					}
					if err := db.Insert(p); err != nil {
						t.Fatalf("%s: %v", ctx, err)
					}
					ref = append(ref, p)
				case 3, 4: // delete
					if len(ref) == 0 {
						continue
					}
					j := rng.Intn(len(ref))
					p := ref[j]
					if !tree.Delete(p) {
						t.Fatalf("%s: dyntop lost %v", ctx, p)
					}
					if !four.Delete(p) {
						t.Fatalf("%s: foursided lost %v", ctx, p)
					}
					if ok, err := eng.Delete(p); err != nil || !ok {
						t.Fatalf("%s: shard Delete(%v) = %t, %v", ctx, p, ok, err)
					}
					if ok, err := db.Delete(p); err != nil || !ok {
						t.Fatalf("%s: db Delete(%v) = %t, %v", ctx, p, ok, err)
					}
					ref = append(ref[:j], ref[j+1:]...)
				default: // query
					x1, x2, beta := randTopOpen(rng, span)
					r := geom.TopOpen(x1, x2, beta)
					want := naiveRangeSkyline(ref, r)
					single := tree.Query(x1, x2, beta)
					diffPoints(t, single, want, ctx+fmt.Sprintf(" %v dyntop", r))
					diffPoints(t, eng.TopOpen(x1, x2, beta), single, ctx+fmt.Sprintf(" %v shard vs dyntop", r))
					diffPoints(t, db.RangeSkyline(r), single, ctx+fmt.Sprintf(" %v db vs dyntop", r))

					fr := randFourSided(rng, span)
					single4 := four.Query(fr)
					diffPoints(t, single4, naiveRangeSkyline(ref, fr),
						ctx+fmt.Sprintf(" %v foursided", fr))
					diffPoints(t, eng.RangeSkyline(fr), single4,
						ctx+fmt.Sprintf(" %v shard 4-sided vs single", fr))
					diffPoints(t, db.RangeSkyline(fr), single4,
						ctx+fmt.Sprintf(" %v db 4-sided vs single", fr))
				}
			}
			if db.Len() != len(ref) || eng.Len() != len(ref) || tree.Len() != len(ref) {
				t.Fatalf("seed=%d: Len db=%d eng=%d tree=%d, want %d",
					seed, db.Len(), eng.Len(), tree.Len(), len(ref))
			}
		})
	}
}

// TestDifferentialBatch drives batched updates — BatchInsert and
// BatchDelete, through both the sharded engine directly and the routed
// core.DB — against the O(n²) oracle. Batches mix fresh points, present
// points, and absent points, and every round cross-checks both query
// families.
func TestDifferentialBatch(t *testing.T) {
	const n, extra = 200, 400
	span := geom.Coord((n + extra) * 16)
	for seed := int64(0); seed < 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			all := geom.GenUniform(n+extra, span, seed+1300)
			base := append([]geom.Point(nil), all[:n]...)
			pool := append([]geom.Point(nil), all[n:]...)
			geom.SortByX(base)

			eng, err := shard.New(shard.Options{Machine: diffCfg, Shards: 4, Workers: 4, Dynamic: true}, base)
			if err != nil {
				t.Fatal(err)
			}
			db, err := core.Open(core.Options{Machine: diffCfg, Dynamic: true, Shards: 4, Workers: 4}, base)
			if err != nil {
				t.Fatal(err)
			}
			ref := append([]geom.Point(nil), base...)
			rng := rand.New(rand.NewSource(seed + 77))
			for round := 0; round < 12; round++ {
				ctx := fmt.Sprintf("seed=%d round=%d", seed, round)
				if rng.Intn(2) == 0 && len(pool) > 0 {
					// Insert a batch drawn from the fresh pool.
					k := 1 + rng.Intn(len(pool))
					batch := append([]geom.Point(nil), pool[:k]...)
					pool = pool[k:]
					if err := eng.BatchInsert(batch); err != nil {
						t.Fatalf("%s: %v", ctx, err)
					}
					if err := db.BatchInsert(batch); err != nil {
						t.Fatalf("%s: %v", ctx, err)
					}
					ref = append(ref, batch...)
				} else if len(ref) > 0 {
					// Delete a batch: some present points (possibly
					// duplicated within the batch) plus guaranteed
					// absentees.
					k := 1 + rng.Intn(len(ref))
					perm := rng.Perm(len(ref))[:k]
					sort.Ints(perm)
					var batch []geom.Point
					for _, j := range perm {
						batch = append(batch, ref[j])
					}
					for i := len(perm) - 1; i >= 0; i-- {
						j := perm[i]
						ref = append(ref[:j], ref[j+1:]...)
					}
					want := len(batch)
					// Duplicates in the batch: the second delete of the
					// same point is a miss, not an error.
					if len(batch) > 0 && rng.Intn(2) == 0 {
						batch = append(batch, batch[0])
					}
					batch = append(batch, geom.Point{X: span + geom.Coord(round) + 1, Y: span + geom.Coord(round) + 1})
					got, err := eng.BatchDelete(batch)
					if err != nil || got != want {
						t.Fatalf("%s: eng.BatchDelete = %d, %v; want %d", ctx, got, err, want)
					}
					got, err = db.BatchDelete(batch)
					if err != nil || got != want {
						t.Fatalf("%s: db.BatchDelete = %d, %v; want %d", ctx, got, err, want)
					}
				}
				if eng.Len() != len(ref) || db.Len() != len(ref) {
					t.Fatalf("%s: Len eng=%d db=%d, want %d", ctx, eng.Len(), db.Len(), len(ref))
				}
				for q := 0; q < 10; q++ {
					x1, x2, beta := randTopOpen(rng, span)
					r := geom.TopOpen(x1, x2, beta)
					want := naiveRangeSkyline(ref, r)
					diffPoints(t, eng.TopOpen(x1, x2, beta), want, ctx+fmt.Sprintf(" %v shard", r))
					diffPoints(t, db.RangeSkyline(r), want, ctx+fmt.Sprintf(" %v db", r))

					fr := randFourSided(rng, span)
					want4 := naiveRangeSkyline(ref, fr)
					diffPoints(t, eng.RangeSkyline(fr), want4, ctx+fmt.Sprintf(" %v shard 4-sided", fr))
					diffPoints(t, db.RangeSkyline(fr), want4, ctx+fmt.Sprintf(" %v db 4-sided", fr))
				}
			}
		})
	}
}
