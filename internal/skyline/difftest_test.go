// Differential test harness: randomized workloads (inserts, deletes,
// mixed x/β queries) cross-checked against a naive O(n²) skyline oracle
// for every query engine in the repository — the Theorem 1 static index
// (topopen), the Theorem 4 dynamic tree (dyntop), the Theorem 6 4-sided
// structure (foursided), the sharded concurrent engine
// (internal/shard, both directly and routed through core.Open), and the
// mirrored fast paths (core.Options.Mirrors, unsharded and sharded,
// which must stay byte-identical to the Theorem 6 answers on the whole
// mirror family). Every
// workload is seeded and each seed runs as its own subtest, so a failure
// names the exact subtest to replay:
//
//	go test ./internal/skyline -run 'TestDifferentialDynamic/seed=3'
package skyline_test

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dyntop"
	"repro/internal/emio"
	"repro/internal/engine"
	"repro/internal/extsort"
	"repro/internal/foursided"
	"repro/internal/geom"
	"repro/internal/shard"
	"repro/internal/topopen"
)

var diffCfg = emio.Config{B: 32, M: 32 * 32}

// naiveRangeSkyline is the O(n²) oracle: a point of pts ∩ r is reported
// iff no other point of pts ∩ r dominates it. It is deliberately
// independent of geom.Skyline so the harness cross-checks that oracle
// too.
func naiveRangeSkyline(pts []geom.Point, r geom.Rect) []geom.Point {
	var in []geom.Point
	for _, p := range pts {
		if r.Contains(p) {
			in = append(in, p)
		}
	}
	var out []geom.Point
	for _, p := range in {
		maximal := true
		for _, q := range in {
			if q.Dominates(p) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return geom.Less(out[i], out[j]) })
	return out
}

func diffPoints(t *testing.T, got, want []geom.Point, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d points %v, want %d %v", ctx, len(got), got, len(want), want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: point %d = %v, want %v", ctx, i, got[i], want[i])
		}
	}
}

// randTopOpen mixes bounded and grounded query sides.
func randTopOpen(rng *rand.Rand, span geom.Coord) (x1, x2, beta geom.Coord) {
	x1 = rng.Int63n(span)
	x2 = x1 + rng.Int63n(span/2+1)
	beta = rng.Int63n(span)
	switch rng.Intn(8) {
	case 0:
		x1 = geom.NegInf
	case 1:
		x2 = geom.PosInf
	case 2:
		beta = geom.NegInf
	case 3:
		x1, x2, beta = geom.NegInf, geom.PosInf, geom.NegInf
	case 4:
		x2 = x1 // degenerate slab
	}
	return x1, x2, beta
}

// randFourSided draws a rectangle whose top edge may or may not be
// bounded, exercising both dispatch paths of core.DB.
func randFourSided(rng *rand.Rand, span geom.Coord) geom.Rect {
	x1 := rng.Int63n(span)
	y1 := rng.Int63n(span)
	r := geom.Rect{X1: x1, X2: x1 + rng.Int63n(span/2+1), Y1: y1, Y2: y1 + rng.Int63n(span/2+1)}
	switch rng.Intn(6) {
	case 0:
		r.X1 = geom.NegInf
	case 1:
		r.Y1 = geom.NegInf
	case 2:
		r.X2 = geom.PosInf
	}
	return r
}

// TestDifferentialStatic cross-checks the static engines — topopen,
// foursided, and the static sharded engine — on random query mixes.
func TestDifferentialStatic(t *testing.T) {
	const n = 300
	span := geom.Coord(n * 16)
	for seed := int64(0); seed < 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			pts := geom.GenUniform(n, span, seed+500)
			geom.SortByX(pts)
			d := emio.NewDisk(diffCfg)
			f := extsort.FromSlice(d, 2, pts)
			top := topopen.Build(d, f)
			four := foursided.Build(emio.NewDisk(diffCfg), 0.5, pts)
			eng, err := shard.New(shard.Options{Machine: diffCfg, Shards: 4, Workers: 2}, pts)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			for q := 0; q < 80; q++ {
				x1, x2, beta := randTopOpen(rng, span)
				r := geom.TopOpen(x1, x2, beta)
				want := naiveRangeSkyline(pts, r)
				ctx := fmt.Sprintf("seed=%d q=%d %v", seed, q, r)
				diffPoints(t, top.Query(x1, x2, beta), want, ctx+" topopen")
				diffPoints(t, eng.TopOpen(x1, x2, beta), want, ctx+" shard")
				diffPoints(t, geom.RangeSkyline(pts, r), want, ctx+" geom oracle")

				fr := randFourSided(rng, span)
				fctx := fmt.Sprintf("seed=%d q=%d %v", seed, q, fr)
				single := four.Query(fr)
				diffPoints(t, single, naiveRangeSkyline(pts, fr), fctx+" foursided")
				// The static sharded engine serves the 4-sided family
				// too, byte-identically to the single-disk structure.
				diffPoints(t, eng.RangeSkyline(fr), single, fctx+" shard 4-sided vs single")
			}
		})
	}
}

// TestDifferentialDynamic drives a mixed insert/delete/query workload
// against three engines at once: a single-disk dyntop tree, a direct
// sharded engine, and a sharded core.DB (which also exercises foursided
// and the Figure 2 dispatch). The sharded answers must be byte-identical
// to the single-disk tree's, and all must match the naive oracle.
func TestDifferentialDynamic(t *testing.T) {
	const n, extra = 220, 260
	span := geom.Coord((n + extra) * 16)
	for seed := int64(0); seed < 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			all := geom.GenUniform(n+extra, span, seed+900)
			base := append([]geom.Point(nil), all[:n]...)
			pool := append([]geom.Point(nil), all[n:]...)
			geom.SortByX(base)

			tree := dyntop.BuildSABE(emio.NewDisk(diffCfg), 0.5, base)
			four := foursided.Build(emio.NewDisk(diffCfg), 0.5, base)
			eng, err := shard.New(shard.Options{Machine: diffCfg, Shards: 4, Workers: 3, Dynamic: true}, base)
			if err != nil {
				t.Fatal(err)
			}
			db, err := core.Open(core.Options{Machine: diffCfg, Dynamic: true, Shards: 4, Workers: 3}, base)
			if err != nil {
				t.Fatal(err)
			}
			if db.Sharded() == nil {
				t.Fatal("core.Open(Shards: 4) did not build the sharded engine")
			}
			ref := append([]geom.Point(nil), base...)

			rng := rand.New(rand.NewSource(seed))
			for op := 0; op < 250; op++ {
				ctx := fmt.Sprintf("seed=%d op=%d", seed, op)
				switch rng.Intn(10) {
				case 0, 1, 2: // insert
					if len(pool) == 0 {
						continue
					}
					p := pool[len(pool)-1]
					pool = pool[:len(pool)-1]
					tree.Insert(p)
					four.Insert(p)
					if err := eng.Insert(p); err != nil {
						t.Fatalf("%s: %v", ctx, err)
					}
					if err := db.Insert(p); err != nil {
						t.Fatalf("%s: %v", ctx, err)
					}
					ref = append(ref, p)
				case 3, 4: // delete
					if len(ref) == 0 {
						continue
					}
					j := rng.Intn(len(ref))
					p := ref[j]
					if !tree.Delete(p) {
						t.Fatalf("%s: dyntop lost %v", ctx, p)
					}
					if !four.Delete(p) {
						t.Fatalf("%s: foursided lost %v", ctx, p)
					}
					if ok, err := eng.Delete(p); err != nil || !ok {
						t.Fatalf("%s: shard Delete(%v) = %t, %v", ctx, p, ok, err)
					}
					if ok, err := db.Delete(p); err != nil || !ok {
						t.Fatalf("%s: db Delete(%v) = %t, %v", ctx, p, ok, err)
					}
					ref = append(ref[:j], ref[j+1:]...)
				default: // query
					x1, x2, beta := randTopOpen(rng, span)
					r := geom.TopOpen(x1, x2, beta)
					want := naiveRangeSkyline(ref, r)
					single := tree.Query(x1, x2, beta)
					diffPoints(t, single, want, ctx+fmt.Sprintf(" %v dyntop", r))
					diffPoints(t, eng.TopOpen(x1, x2, beta), single, ctx+fmt.Sprintf(" %v shard vs dyntop", r))
					diffPoints(t, db.RangeSkyline(r), single, ctx+fmt.Sprintf(" %v db vs dyntop", r))

					fr := randFourSided(rng, span)
					single4 := four.Query(fr)
					diffPoints(t, single4, naiveRangeSkyline(ref, fr),
						ctx+fmt.Sprintf(" %v foursided", fr))
					diffPoints(t, eng.RangeSkyline(fr), single4,
						ctx+fmt.Sprintf(" %v shard 4-sided vs single", fr))
					diffPoints(t, db.RangeSkyline(fr), single4,
						ctx+fmt.Sprintf(" %v db 4-sided vs single", fr))
				}
			}
			if db.Len() != len(ref) || eng.Len() != len(ref) || tree.Len() != len(ref) {
				t.Fatalf("seed=%d: Len db=%d eng=%d tree=%d, want %d",
					seed, db.Len(), eng.Len(), tree.Len(), len(ref))
			}
		})
	}
}

// TestDifferentialBatch drives batched updates — BatchInsert and
// BatchDelete, through both the sharded engine directly and the routed
// core.DB — against the O(n²) oracle. Batches mix fresh points, present
// points, and absent points, and every round cross-checks both query
// families.
func TestDifferentialBatch(t *testing.T) {
	const n, extra = 200, 400
	span := geom.Coord((n + extra) * 16)
	for seed := int64(0); seed < 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			all := geom.GenUniform(n+extra, span, seed+1300)
			base := append([]geom.Point(nil), all[:n]...)
			pool := append([]geom.Point(nil), all[n:]...)
			geom.SortByX(base)

			eng, err := shard.New(shard.Options{Machine: diffCfg, Shards: 4, Workers: 4, Dynamic: true}, base)
			if err != nil {
				t.Fatal(err)
			}
			db, err := core.Open(core.Options{Machine: diffCfg, Dynamic: true, Shards: 4, Workers: 4}, base)
			if err != nil {
				t.Fatal(err)
			}
			ref := append([]geom.Point(nil), base...)
			rng := rand.New(rand.NewSource(seed + 77))
			for round := 0; round < 12; round++ {
				ctx := fmt.Sprintf("seed=%d round=%d", seed, round)
				if rng.Intn(2) == 0 && len(pool) > 0 {
					// Insert a batch drawn from the fresh pool.
					k := 1 + rng.Intn(len(pool))
					batch := append([]geom.Point(nil), pool[:k]...)
					pool = pool[k:]
					if err := eng.BatchInsert(batch); err != nil {
						t.Fatalf("%s: %v", ctx, err)
					}
					if err := db.BatchInsert(batch); err != nil {
						t.Fatalf("%s: %v", ctx, err)
					}
					ref = append(ref, batch...)
				} else if len(ref) > 0 {
					// Delete a batch: some present points (possibly
					// duplicated within the batch) plus guaranteed
					// absentees.
					k := 1 + rng.Intn(len(ref))
					perm := rng.Perm(len(ref))[:k]
					sort.Ints(perm)
					var batch []geom.Point
					for _, j := range perm {
						batch = append(batch, ref[j])
					}
					for i := len(perm) - 1; i >= 0; i-- {
						j := perm[i]
						ref = append(ref[:j], ref[j+1:]...)
					}
					want := len(batch)
					// Duplicates in the batch: the second delete of the
					// same point is a miss, not an error.
					if len(batch) > 0 && rng.Intn(2) == 0 {
						batch = append(batch, batch[0])
					}
					batch = append(batch, geom.Point{X: span + geom.Coord(round) + 1, Y: span + geom.Coord(round) + 1})
					got, err := eng.BatchDelete(batch)
					if err != nil || got != want {
						t.Fatalf("%s: eng.BatchDelete = %d, %v; want %d", ctx, got, err, want)
					}
					got, err = db.BatchDelete(batch)
					if err != nil || got != want {
						t.Fatalf("%s: db.BatchDelete = %d, %v; want %d", ctx, got, err, want)
					}
				}
				if eng.Len() != len(ref) || db.Len() != len(ref) {
					t.Fatalf("%s: Len eng=%d db=%d, want %d", ctx, eng.Len(), db.Len(), len(ref))
				}
				for q := 0; q < 10; q++ {
					x1, x2, beta := randTopOpen(rng, span)
					r := geom.TopOpen(x1, x2, beta)
					want := naiveRangeSkyline(ref, r)
					diffPoints(t, eng.TopOpen(x1, x2, beta), want, ctx+fmt.Sprintf(" %v shard", r))
					diffPoints(t, db.RangeSkyline(r), want, ctx+fmt.Sprintf(" %v db", r))

					fr := randFourSided(rng, span)
					want4 := naiveRangeSkyline(ref, fr)
					diffPoints(t, eng.RangeSkyline(fr), want4, ctx+fmt.Sprintf(" %v shard 4-sided", fr))
					diffPoints(t, db.RangeSkyline(fr), want4, ctx+fmt.Sprintf(" %v db 4-sided", fr))
				}
			}
		})
	}
}

// randMirrorFamily draws from the four bounded-top shapes whose
// rectangles reflect onto top-open ones — right-open, bottom-open,
// left-open, anti-dominance — plus the unnamed
// grounded-right rectangles the mirror also serves (lower-right
// quadrant, horizontal band, horizontal contour). Only the
// grounded-right ones ride the mirrored fast path; the rest must keep
// their Theorem 6 answers bit for bit.
func randMirrorFamily(rng *rand.Rand, span geom.Coord) geom.Rect {
	x := rng.Int63n(span)
	x2 := x + rng.Int63n(span/2+1)
	y1 := rng.Int63n(span)
	y2 := y1 + rng.Int63n(span/2+1)
	switch rng.Intn(7) {
	case 0:
		return geom.RightOpen(x, y1, y2)
	case 1:
		return geom.BottomOpen(x, x2, y2)
	case 2:
		return geom.LeftOpen(x, y1, y2)
	case 3:
		return geom.AntiDominance(x, y2)
	case 4: // lower-right quadrant [x,∞) × (-∞,y2]
		return geom.Rect{X1: x, X2: geom.PosInf, Y1: geom.NegInf, Y2: y2}
	case 5: // horizontal band (-∞,∞) × [y1,y2]
		return geom.Rect{X1: geom.NegInf, X2: geom.PosInf, Y1: y1, Y2: y2}
	default: // horizontal contour (-∞,∞) × (-∞,y2]
		return geom.Rect{X1: geom.NegInf, X2: geom.PosInf, Y1: geom.NegInf, Y2: y2}
	}
}

// TestDifferentialMirrors drives mixed single/batched updates and
// mirror-family queries against three engines at once — a mirror-less
// core.DB (the Theorem 6 reference), an unsharded mirrored DB, and a
// sharded mirrored DB — asserting all answers byte-identical to each
// other and to the O(n²) oracle, and that right-open really routes to
// the mirror while the Theorem 5 shapes never do.
func TestDifferentialMirrors(t *testing.T) {
	const n, extra = 200, 240
	span := geom.Coord((n + extra) * 16)
	for seed := int64(0); seed < 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			all := geom.GenUniform(n+extra, span, seed+1700)
			base := append([]geom.Point(nil), all[:n]...)
			pool := append([]geom.Point(nil), all[n:]...)
			geom.SortByX(base)

			ref6, err := core.Open(core.Options{Machine: diffCfg, Dynamic: true}, base)
			if err != nil {
				t.Fatal(err)
			}
			dbM, err := core.Open(core.Options{Machine: diffCfg, Dynamic: true, Mirrors: true}, base)
			if err != nil {
				t.Fatal(err)
			}
			dbMS, err := core.Open(core.Options{Machine: diffCfg, Dynamic: true, Mirrors: true, Shards: 4, Workers: 3}, base)
			if err != nil {
				t.Fatal(err)
			}
			for _, db := range []*core.DB{dbM, dbMS} {
				if len(db.Planner().Mirrors()) != 1 {
					t.Fatal("mirrored DB did not register a mirror backend")
				}
			}
			ref := append([]geom.Point(nil), base...)
			dbs := []*core.DB{ref6, dbM, dbMS}

			rng := rand.New(rand.NewSource(seed))
			for op := 0; op < 220; op++ {
				ctx := fmt.Sprintf("seed=%d op=%d", seed, op)
				switch rng.Intn(12) {
				case 0, 1: // single insert
					if len(pool) == 0 {
						continue
					}
					p := pool[len(pool)-1]
					pool = pool[:len(pool)-1]
					for _, db := range dbs {
						if err := db.Insert(p); err != nil {
							t.Fatalf("%s: %v", ctx, err)
						}
					}
					ref = append(ref, p)
				case 2: // batch insert
					if len(pool) < 2 {
						continue
					}
					k := 1 + rng.Intn(len(pool)/2)
					batch := append([]geom.Point(nil), pool[:k]...)
					pool = pool[k:]
					for _, db := range dbs {
						if err := db.BatchInsert(batch); err != nil {
							t.Fatalf("%s: %v", ctx, err)
						}
					}
					ref = append(ref, batch...)
				case 3, 4: // single delete
					if len(ref) == 0 {
						continue
					}
					j := rng.Intn(len(ref))
					p := ref[j]
					for _, db := range dbs {
						if ok, err := db.Delete(p); err != nil || !ok {
							t.Fatalf("%s: Delete(%v) = %t, %v", ctx, p, ok, err)
						}
					}
					ref = append(ref[:j], ref[j+1:]...)
				case 5: // batch delete with dup + absentee
					if len(ref) < 4 {
						continue
					}
					k := 1 + rng.Intn(len(ref)/2)
					perm := rng.Perm(len(ref))[:k]
					sort.Ints(perm)
					var batch []geom.Point
					for _, j := range perm {
						batch = append(batch, ref[j])
					}
					for i := len(perm) - 1; i >= 0; i-- {
						j := perm[i]
						ref = append(ref[:j], ref[j+1:]...)
					}
					want := len(batch)
					batch = append(batch, batch[0],
						geom.Point{X: span + geom.Coord(op) + 1, Y: span + geom.Coord(op) + 1})
					for i, db := range dbs {
						got, err := db.BatchDelete(batch)
						if err != nil || got != want {
							t.Fatalf("%s: db%d.BatchDelete = %d, %v; want %d", ctx, i, got, err, want)
						}
					}
				default: // mirror-family queries
					q := randMirrorFamily(rng, span)
					want := naiveRangeSkyline(ref, q)
					from6 := ref6.RangeSkyline(q)
					diffPoints(t, from6, want, ctx+fmt.Sprintf(" %v theorem6", q))
					diffPoints(t, dbM.RangeSkyline(q), from6, ctx+fmt.Sprintf(" %v mirrored vs theorem6", q))
					diffPoints(t, dbMS.RangeSkyline(q), from6, ctx+fmt.Sprintf(" %v sharded-mirrored vs theorem6", q))
					// Routing honesty: grounded right edge ⇔ mirror.
					for i, db := range []*core.DB{dbM, dbMS} {
						m := db.Planner().Mirrors()[0]
						toMirror := db.Planner().Route(q) == engine.Backend(m)
						if wantMirror := q.X2 == geom.PosInf && q.Y2 != geom.PosInf; toMirror != wantMirror {
							t.Fatalf("%s: db%d routes %v to mirror=%t, want %t", ctx, i, q, toMirror, wantMirror)
						}
					}
				}
			}
			for i, db := range dbs {
				if db.Len() != len(ref) {
					t.Fatalf("seed=%d: db%d.Len = %d, want %d", seed, i, db.Len(), len(ref))
				}
			}
		})
	}
}

// TestMirrorRaceStress is the -race variant with mirrors enabled: four
// queriers sweep the mirror family (so both the mirrored sharded engine
// and the primary engine serve concurrently) while two updaters mix
// single and batched updates and a poller reads stats. Mid-flight
// answers are checked structurally (containment + staircase); full
// answers are verified against the oracle after quiescence.
func TestMirrorRaceStress(t *testing.T) {
	const (
		nBase      = 900
		perUpdater = 240
		nQueriers  = 4
		queries    = 150
	)
	span := geom.Coord((nBase + 2*perUpdater) * 16)
	all := geom.GenUniform(nBase+2*perUpdater, span, 1900)
	base := append([]geom.Point(nil), all[:nBase]...)
	geom.SortByX(base)
	db, err := core.Open(core.Options{Machine: diffCfg, Dynamic: true, Shards: 4, Workers: 4, Mirrors: true}, base)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for u := 0; u < 2; u++ {
		pool := all[nBase+u*perUpdater : nBase+(u+1)*perUpdater]
		batched := u == 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			if batched {
				const chunk = 48
				for lo := 0; lo < len(pool); lo += chunk {
					hi := lo + chunk
					if hi > len(pool) {
						hi = len(pool)
					}
					if err := db.BatchInsert(pool[lo:hi]); err != nil {
						t.Error(err)
						return
					}
				}
				var victims []geom.Point
				for i := 1; i < len(pool); i += 2 {
					victims = append(victims, pool[i])
				}
				if got, err := db.BatchDelete(victims); err != nil || got != len(victims) {
					t.Errorf("BatchDelete = %d, %v; want %d", got, err, len(victims))
				}
			} else {
				for _, p := range pool {
					if err := db.Insert(p); err != nil {
						t.Error(err)
						return
					}
				}
				for i := 1; i < len(pool); i += 2 {
					if ok, err := db.Delete(pool[i]); err != nil || !ok {
						t.Errorf("Delete(%v) = %t, %v", pool[i], ok, err)
						return
					}
				}
			}
		}()
	}
	for g := 0; g < nQueriers; g++ {
		seed := int64(g + 3000)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for q := 0; q < queries; q++ {
				r := randMirrorFamily(rng, span)
				sky := db.RangeSkyline(r)
				for i, p := range sky {
					if !r.Contains(p) {
						t.Errorf("query %d: %v outside %v", q, p, r)
						return
					}
					if i > 0 && (sky[i-1].X >= p.X || sky[i-1].Y <= p.Y) {
						t.Errorf("query %d: not a staircase at %d: %v, %v", q, i, sky[i-1], p)
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 400; i++ {
			_ = db.Stats()
			_ = db.Len()
		}
	}()
	wg.Wait()

	ref := append([]geom.Point(nil), base...)
	for u := 0; u < 2; u++ {
		pool := all[nBase+u*perUpdater : nBase+(u+1)*perUpdater]
		for i := 0; i < len(pool); i += 2 {
			ref = append(ref, pool[i])
		}
	}
	if db.Len() != len(ref) {
		t.Fatalf("final Len = %d, want %d", db.Len(), len(ref))
	}
	rng := rand.New(rand.NewSource(1901))
	for q := 0; q < 40; q++ {
		r := randMirrorFamily(rng, span)
		diffPoints(t, db.RangeSkyline(r), naiveRangeSkyline(ref, r), fmt.Sprintf("final q=%d %v", q, r))
	}
}

// TestConcurrentOverlappingBatchDelete pins the presence-check-first
// batch fan-out: two goroutines batch-delete the SAME victim set on a
// sharded mirrored DB. The primary engine serializes per shard and
// resolves every contended point to exactly one caller, so the planner
// fans disjoint confirmed subsets out to the mirror — no spurious
// "backends disagree" corruption errors, counts summing to exactly one
// removal per victim, and a final state byte-identical to the oracle.
func TestConcurrentOverlappingBatchDelete(t *testing.T) {
	const n, nVictims = 800, 300
	span := geom.Coord(n * 16)
	pts := geom.GenUniform(n, span, 2500)
	geom.SortByX(pts)
	db, err := core.Open(core.Options{Machine: diffCfg, Dynamic: true, Shards: 4, Workers: 4, Mirrors: true}, pts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2501))
	perm := rng.Perm(n)[:nVictims]
	victims := make([]geom.Point, nVictims)
	for i, j := range perm {
		victims[i] = pts[j]
	}
	var wg sync.WaitGroup
	counts := make([]int, 2)
	errs := make([]error, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			counts[g], errs[g] = db.BatchDelete(victims)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: BatchDelete error: %v", g, err)
		}
	}
	if counts[0]+counts[1] != nVictims {
		t.Fatalf("removal counts %d + %d != %d victims", counts[0], counts[1], nVictims)
	}
	dead := make(map[geom.Point]bool, nVictims)
	for _, p := range victims {
		dead[p] = true
	}
	var ref []geom.Point
	for _, p := range pts {
		if !dead[p] {
			ref = append(ref, p)
		}
	}
	if db.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", db.Len(), len(ref))
	}
	for q := 0; q < 40; q++ {
		r := randMirrorFamily(rng, span)
		diffPoints(t, db.RangeSkyline(r), naiveRangeSkyline(ref, r), fmt.Sprintf("q=%d %v", q, r))
	}
}

// randAnyShape draws from every Figure-2 shape plus the general 4-sided
// rectangle: the full query surface the read-through cache must keep
// byte-identical to the uncached engines.
func randAnyShape(rng *rand.Rand, span geom.Coord) geom.Rect {
	x1 := rng.Int63n(span)
	x2 := x1 + rng.Int63n(span/2+1)
	y1 := rng.Int63n(span)
	y2 := y1 + rng.Int63n(span/2+1)
	switch rng.Intn(9) {
	case 0:
		return geom.TopOpen(x1, x2, y1)
	case 1:
		return geom.RightOpen(x1, y1, y2)
	case 2:
		return geom.BottomOpen(x1, x2, y2)
	case 3:
		return geom.LeftOpen(x2, y1, y2)
	case 4:
		return geom.Dominance(x1, y1)
	case 5:
		return geom.AntiDominance(x2, y2)
	case 6:
		return geom.Contour(x2)
	case 7:
		return geom.Rect{X1: geom.NegInf, X2: geom.PosInf, Y1: geom.NegInf, Y2: geom.PosInf}
	default:
		return geom.Rect{X1: x1, X2: x2, Y1: y1, Y2: y2}
	}
}

// TestDifferentialCache drives mixed workloads against cached and
// uncached DBs side by side — unsharded, sharded, and sharded+mirrored,
// all dynamic — cross-checking every answer against the uncached DB and
// the O(n²) oracle across all seven Figure-2 shapes. Queries are drawn
// from a recurring pool so the cache actually serves hits, and updates
// (single and batched, hits and misses) run between query rounds so
// invalidation is exercised on every configuration.
func TestDifferentialCache(t *testing.T) {
	configs := []struct {
		name string
		opts core.Options
	}{
		{"unsharded", core.Options{Machine: diffCfg, Dynamic: true, CacheEntries: 32}},
		{"sharded", core.Options{Machine: diffCfg, Dynamic: true, Shards: 4, Workers: 3, CacheEntries: 32}},
		{"sharded-mirrored", core.Options{Machine: diffCfg, Dynamic: true, Shards: 4, Workers: 3, Mirrors: true, CacheEntries: 32}},
	}
	const n, extra = 200, 160
	span := geom.Coord((n + extra) * 16)
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
					all := geom.GenUniform(n+extra, span, seed+3100)
					base := append([]geom.Point(nil), all[:n]...)
					pool := append([]geom.Point(nil), all[n:]...)
					geom.SortByX(base)
					uncachedOpts := cfg.opts
					uncachedOpts.CacheEntries = 0
					plain, err := core.Open(uncachedOpts, base)
					if err != nil {
						t.Fatal(err)
					}
					cached, err := core.Open(cfg.opts, base)
					if err != nil {
						t.Fatal(err)
					}
					if cached.Cache() == nil {
						t.Fatal("core.Open(CacheEntries: 32) did not build a cache")
					}
					ref := append([]geom.Point(nil), base...)

					rng := rand.New(rand.NewSource(seed + 31))
					// A recurring pool of rectangles, refreshed slowly, so
					// repeats hit the cache while updates invalidate.
					qpool := make([]geom.Rect, 12)
					for i := range qpool {
						qpool[i] = randAnyShape(rng, span)
					}
					for op := 0; op < 160; op++ {
						ctx := fmt.Sprintf("%s seed=%d op=%d", cfg.name, seed, op)
						switch rng.Intn(12) {
						case 0: // single insert
							if len(pool) == 0 {
								continue
							}
							p := pool[len(pool)-1]
							pool = pool[:len(pool)-1]
							if err := plain.Insert(p); err != nil {
								t.Fatalf("%s: %v", ctx, err)
							}
							if err := cached.Insert(p); err != nil {
								t.Fatalf("%s: %v", ctx, err)
							}
							ref = append(ref, p)
						case 1: // batch insert
							if len(pool) < 2 {
								continue
							}
							k := 1 + rng.Intn(len(pool)/2)
							batch := append([]geom.Point(nil), pool[:k]...)
							pool = pool[k:]
							if err := plain.BatchInsert(batch); err != nil {
								t.Fatalf("%s: %v", ctx, err)
							}
							if err := cached.BatchInsert(batch); err != nil {
								t.Fatalf("%s: %v", ctx, err)
							}
							ref = append(ref, batch...)
						case 2, 3: // single delete (sometimes a miss)
							if rng.Intn(4) == 0 || len(ref) == 0 {
								absent := geom.Point{X: span + geom.Coord(op) + 1, Y: span + geom.Coord(op) + 1}
								if ok, err := cached.Delete(absent); ok || err != nil {
									t.Fatalf("%s: Delete(absent) = %t, %v", ctx, ok, err)
								}
								if ok, err := plain.Delete(absent); ok || err != nil {
									t.Fatalf("%s: Delete(absent) = %t, %v", ctx, ok, err)
								}
								continue
							}
							j := rng.Intn(len(ref))
							p := ref[j]
							for _, db := range []*core.DB{plain, cached} {
								if ok, err := db.Delete(p); err != nil || !ok {
									t.Fatalf("%s: Delete(%v) = %t, %v", ctx, p, ok, err)
								}
							}
							ref = append(ref[:j], ref[j+1:]...)
						case 4: // batch delete with dup + absentee
							if len(ref) < 4 {
								continue
							}
							k := 1 + rng.Intn(len(ref)/2)
							perm := rng.Perm(len(ref))[:k]
							sort.Ints(perm)
							var batch []geom.Point
							for _, j := range perm {
								batch = append(batch, ref[j])
							}
							for i := len(perm) - 1; i >= 0; i-- {
								j := perm[i]
								ref = append(ref[:j], ref[j+1:]...)
							}
							want := len(batch)
							batch = append(batch, batch[0],
								geom.Point{X: span + geom.Coord(op) + 1, Y: span + geom.Coord(op) + 1})
							for _, db := range []*core.DB{plain, cached} {
								if got, err := db.BatchDelete(batch); err != nil || got != want {
									t.Fatalf("%s: BatchDelete = %d, %v; want %d", ctx, got, err, want)
								}
							}
						default: // query, mostly from the recurring pool
							var q geom.Rect
							if rng.Intn(4) == 0 {
								q = randAnyShape(rng, span)
								qpool[rng.Intn(len(qpool))] = q
							} else {
								q = qpool[rng.Intn(len(qpool))]
							}
							want := naiveRangeSkyline(ref, q)
							diffPoints(t, plain.RangeSkyline(q), want, ctx+fmt.Sprintf(" %v uncached", q))
							diffPoints(t, cached.RangeSkyline(q), want, ctx+fmt.Sprintf(" %v cached", q))
						}
					}
					if cached.Len() != len(ref) || plain.Len() != len(ref) {
						t.Fatalf("%s seed=%d: Len cached=%d plain=%d, want %d",
							cfg.name, seed, cached.Len(), plain.Len(), len(ref))
					}
					ctr := cached.Cache().Counters()
					if ctr.Hits == 0 {
						t.Fatalf("%s seed=%d: cache served no hits (counters %+v)", cfg.name, seed, ctr)
					}
				})
			}
		})
	}
}

// TestCacheRaceStress is the -race mix the cache's fill guard exists
// for: concurrent readers hammering a fixed rectangle pool (so entries
// are repeatedly filled and hit) while writers invalidate with single
// and batched updates and a poller reads counters. Mid-flight answers
// are checked structurally; after quiescence the exact pool rectangles
// — the entries most likely to have cached a stale fill — are verified
// against the oracle.
func TestCacheRaceStress(t *testing.T) {
	const (
		nBase      = 800
		perUpdater = 200
		nQueriers  = 4
		queries    = 200
	)
	span := geom.Coord((nBase + 2*perUpdater) * 16)
	all := geom.GenUniform(nBase+2*perUpdater, span, 4100)
	base := append([]geom.Point(nil), all[:nBase]...)
	geom.SortByX(base)
	db, err := core.Open(core.Options{
		Machine: diffCfg, Dynamic: true, Shards: 4, Workers: 4, Mirrors: true, CacheEntries: 48,
	}, base)
	if err != nil {
		t.Fatal(err)
	}
	prng := rand.New(rand.NewSource(4101))
	qpool := make([]geom.Rect, 32)
	for i := range qpool {
		qpool[i] = randAnyShape(prng, span)
	}

	var wg sync.WaitGroup
	for u := 0; u < 2; u++ {
		pool := all[nBase+u*perUpdater : nBase+(u+1)*perUpdater]
		batched := u == 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			if batched {
				const chunk = 40
				for lo := 0; lo < len(pool); lo += chunk {
					hi := lo + chunk
					if hi > len(pool) {
						hi = len(pool)
					}
					if err := db.BatchInsert(pool[lo:hi]); err != nil {
						t.Error(err)
						return
					}
				}
				var victims []geom.Point
				for i := 1; i < len(pool); i += 2 {
					victims = append(victims, pool[i])
				}
				if got, err := db.BatchDelete(victims); err != nil || got != len(victims) {
					t.Errorf("BatchDelete = %d, %v; want %d", got, err, len(victims))
				}
			} else {
				for _, p := range pool {
					if err := db.Insert(p); err != nil {
						t.Error(err)
						return
					}
				}
				for i := 1; i < len(pool); i += 2 {
					if ok, err := db.Delete(pool[i]); err != nil || !ok {
						t.Errorf("Delete(%v) = %t, %v", pool[i], ok, err)
						return
					}
				}
			}
		}()
	}
	for g := 0; g < nQueriers; g++ {
		seed := int64(g + 4200)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for q := 0; q < queries; q++ {
				r := qpool[rng.Intn(len(qpool))]
				sky := db.RangeSkyline(r)
				for i, p := range sky {
					if !r.Contains(p) {
						t.Errorf("query %d: %v outside %v", q, p, r)
						return
					}
					if i > 0 && (sky[i-1].X >= p.X || sky[i-1].Y <= p.Y) {
						t.Errorf("query %d: not a staircase at %d: %v, %v", q, i, sky[i-1], p)
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 400; i++ {
			_ = db.Cache().Counters()
			_ = db.Cache().Len()
			_ = db.Stats()
			_ = db.Len()
		}
	}()
	wg.Wait()

	ref := append([]geom.Point(nil), base...)
	for u := 0; u < 2; u++ {
		pool := all[nBase+u*perUpdater : nBase+(u+1)*perUpdater]
		for i := 0; i < len(pool); i += 2 {
			ref = append(ref, pool[i])
		}
	}
	if db.Len() != len(ref) {
		t.Fatalf("final Len = %d, want %d", db.Len(), len(ref))
	}
	// The pool rectangles are exactly the entries that could have
	// cached a stale fill during the race; each must now answer
	// byte-identically to the oracle (a hit on a poisoned entry would
	// differ).
	for i, r := range qpool {
		diffPoints(t, db.RangeSkyline(r), naiveRangeSkyline(ref, r), fmt.Sprintf("pool q=%d %v", i, r))
	}
	if ctr := db.Cache().Counters(); ctr.Hits == 0 || ctr.Invalidations == 0 {
		t.Fatalf("stress exercised no cache traffic: counters %+v", ctr)
	}
}

// TestDifferentialQueue drives the asynchronous write queue
// (core.Options.AsyncWrites) against a synchronous twin DB and the
// O(n²) oracle across every configuration axis — unsharded, sharded,
// sharded+mirrored, sharded+mirrored+cached — and all seven Figure-2
// shapes. Writes mix singles, batches, misses and coalescing
// insert/delete pairs; every query must be byte-identical to both
// references, and — the delete-aware visibility rule — a point whose
// delete is still buffered must already be invisible to the very next
// read. FlushPoints is small enough that size-triggered drains
// interleave with drain-on-read; the background drainer is disabled so
// failures replay deterministically by seed.
func TestDifferentialQueue(t *testing.T) {
	configs := []struct {
		name string
		opts core.Options
	}{
		{"unsharded", core.Options{Machine: diffCfg, Dynamic: true}},
		{"sharded", core.Options{Machine: diffCfg, Dynamic: true, Shards: 4, Workers: 3}},
		{"sharded-mirrored", core.Options{Machine: diffCfg, Dynamic: true, Shards: 4, Workers: 3, Mirrors: true}},
		{"sharded-mirrored-cached", core.Options{Machine: diffCfg, Dynamic: true, Shards: 4, Workers: 3, Mirrors: true, CacheEntries: 32}},
	}
	const n, extra = 180, 200
	span := geom.Coord((n + extra) * 16)
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
					all := geom.GenUniform(n+extra, span, seed+5100)
					base := append([]geom.Point(nil), all[:n]...)
					pool := append([]geom.Point(nil), all[n:]...)
					geom.SortByX(base)
					syncDB, err := core.Open(cfg.opts, base)
					if err != nil {
						t.Fatal(err)
					}
					asyncOpts := cfg.opts
					asyncOpts.AsyncWrites = true
					asyncOpts.FlushPoints = 16
					asyncOpts.FlushInterval = -1
					queued, err := core.Open(asyncOpts, base)
					if err != nil {
						t.Fatal(err)
					}
					if queued.Queue() == nil {
						t.Fatal("core.Open(AsyncWrites) built no queue")
					}
					ref := append([]geom.Point(nil), base...)

					// checkGone asserts the delete-before-drain rule: a
					// just-deleted point must not be visible as live,
					// buffered or not.
					checkGone := func(ctx string, p geom.Point) {
						t.Helper()
						probe := geom.Rect{X1: p.X, X2: p.X, Y1: p.Y, Y2: p.Y}
						if got := queued.RangeSkyline(probe); len(got) != 0 {
							t.Fatalf("%s: buffered-deleted %v still visible: %v", ctx, p, got)
						}
					}

					rng := rand.New(rand.NewSource(seed + 41))
					qpool := make([]geom.Rect, 12)
					for i := range qpool {
						qpool[i] = randAnyShape(rng, span)
					}
					for op := 0; op < 170; op++ {
						ctx := fmt.Sprintf("%s seed=%d op=%d", cfg.name, seed, op)
						switch rng.Intn(14) {
						case 0, 1: // single insert
							if len(pool) == 0 {
								continue
							}
							p := pool[len(pool)-1]
							pool = pool[:len(pool)-1]
							for _, db := range []*core.DB{syncDB, queued} {
								if err := db.Insert(p); err != nil {
									t.Fatalf("%s: %v", ctx, err)
								}
							}
							ref = append(ref, p)
						case 2: // batch insert
							if len(pool) < 2 {
								continue
							}
							k := 1 + rng.Intn(len(pool)/2)
							batch := append([]geom.Point(nil), pool[:k]...)
							pool = pool[k:]
							for _, db := range []*core.DB{syncDB, queued} {
								if err := db.BatchInsert(batch); err != nil {
									t.Fatalf("%s: %v", ctx, err)
								}
							}
							ref = append(ref, batch...)
						case 3, 4: // single delete: hit, or a guaranteed miss
							if rng.Intn(4) == 0 || len(ref) == 0 {
								absent := geom.Point{X: span + geom.Coord(op) + 1, Y: span + geom.Coord(op) + 1}
								if ok, err := syncDB.Delete(absent); ok || err != nil {
									t.Fatalf("%s: sync Delete(absent) = %t, %v", ctx, ok, err)
								}
								// The queue ACCEPTS the miss; it must
								// resolve to nothing at drain.
								if ok, err := queued.Delete(absent); !ok || err != nil {
									t.Fatalf("%s: queued Delete(absent) = %t, %v", ctx, ok, err)
								}
								continue
							}
							j := rng.Intn(len(ref))
							p := ref[j]
							ref = append(ref[:j], ref[j+1:]...)
							for i, db := range []*core.DB{syncDB, queued} {
								if ok, err := db.Delete(p); !ok || err != nil {
									t.Fatalf("%s: db%d.Delete(%v) = %t, %v", ctx, i, p, ok, err)
								}
							}
							checkGone(ctx, p)
						case 5: // batch delete with dup + absentee
							if len(ref) < 4 {
								continue
							}
							k := 1 + rng.Intn(len(ref)/2)
							perm := rng.Perm(len(ref))[:k]
							sort.Ints(perm)
							var batch []geom.Point
							for _, j := range perm {
								batch = append(batch, ref[j])
							}
							for i := len(perm) - 1; i >= 0; i-- {
								j := perm[i]
								ref = append(ref[:j], ref[j+1:]...)
							}
							want := len(batch)
							batch = append(batch, batch[0],
								geom.Point{X: span + geom.Coord(op) + 1, Y: span + geom.Coord(op) + 1})
							if got, err := syncDB.BatchDelete(batch); err != nil || got != want {
								t.Fatalf("%s: sync BatchDelete = %d, %v; want %d", ctx, got, err, want)
							}
							// The queue reports the ACCEPTED batch size;
							// the dup and the absentee resolve to nothing.
							if got, err := queued.BatchDelete(batch); err != nil || got != len(batch) {
								t.Fatalf("%s: queued BatchDelete = %d, %v; want accepted %d", ctx, got, err, len(batch))
							}
							checkGone(ctx, batch[0])
						case 6: // coalescing pair: insert fresh, delete at once
							if len(pool) == 0 {
								continue
							}
							p := pool[len(pool)-1]
							pool = pool[:len(pool)-1]
							for i, db := range []*core.DB{syncDB, queued} {
								if err := db.Insert(p); err != nil {
									t.Fatalf("%s: db%d insert: %v", ctx, i, err)
								}
								if ok, err := db.Delete(p); !ok || err != nil {
									t.Fatalf("%s: db%d.Delete(%v) = %t, %v", ctx, i, p, ok, err)
								}
							}
							checkGone(ctx, p)
						case 7: // explicit flush + exact length
							if err := queued.Flush(); err != nil {
								t.Fatalf("%s: %v", ctx, err)
							}
							if got := queued.Len(); got != len(ref) {
								t.Fatalf("%s: Len = %d, want %d", ctx, got, len(ref))
							}
						default: // query, mostly from the recurring pool
							var q geom.Rect
							if rng.Intn(4) == 0 {
								q = randAnyShape(rng, span)
								qpool[rng.Intn(len(qpool))] = q
							} else {
								q = qpool[rng.Intn(len(qpool))]
							}
							want := naiveRangeSkyline(ref, q)
							fromSync := syncDB.RangeSkyline(q)
							diffPoints(t, fromSync, want, ctx+fmt.Sprintf(" %v sync", q))
							diffPoints(t, queued.RangeSkyline(q), fromSync, ctx+fmt.Sprintf(" %v queued vs sync", q))
						}
					}
					if err := queued.Flush(); err != nil {
						t.Fatal(err)
					}
					if queued.Len() != len(ref) || syncDB.Len() != len(ref) {
						t.Fatalf("%s seed=%d: Len queued=%d sync=%d, want %d",
							cfg.name, seed, queued.Len(), syncDB.Len(), len(ref))
					}
					ctr := queued.QueueCounters()
					if ctr.Enqueued == 0 || ctr.Drained == 0 {
						t.Fatalf("%s seed=%d: queue never exercised: %+v", cfg.name, seed, ctr)
					}
					if ctr.Enqueued != ctr.Drained+ctr.Coalesced {
						t.Fatalf("%s seed=%d: quiescent invariant violated: %+v", cfg.name, seed, ctr)
					}
					if err := queued.Close(); err != nil {
						t.Fatal(err)
					}
					// A closed index still answers, from fully-applied
					// state.
					for i := 0; i < 5; i++ {
						q := qpool[i]
						diffPoints(t, queued.RangeSkyline(q), naiveRangeSkyline(ref, q),
							fmt.Sprintf("%s seed=%d post-close %v", cfg.name, seed, q))
					}
				})
			}
		})
	}
}

// TestQueueRaceStress is the -race mix the queue's drain locking exists
// for: concurrent readers racing the background drainer (FlushInterval
// 1ms) and two writers on a sharded+mirrored+cached async DB. Phase 1
// races structural-only readers against in-flight writes; once the
// writers have issued every delete (a happens-before edge via channel
// close), phase 2 readers assert the victims NEVER resurface — a
// drained delete must stay drained, and a buffered one must hide behind
// drain-on-read — while timer drains, flushing Len reads and cache
// fills keep running. After quiescence the full point set is verified
// against the oracle.
func TestQueueRaceStress(t *testing.T) {
	const (
		nBase      = 700
		perUpdater = 200
		nQueriers  = 4
		queries    = 120
	)
	span := geom.Coord((nBase + 2*perUpdater) * 16)
	all := geom.GenUniform(nBase+2*perUpdater, span, 7100)
	base := append([]geom.Point(nil), all[:nBase]...)
	geom.SortByX(base)
	db, err := core.Open(core.Options{
		Machine: diffCfg, Dynamic: true, Shards: 4, Workers: 4, Mirrors: true,
		CacheEntries: 32, AsyncWrites: true, FlushPoints: 16,
		FlushInterval: time.Millisecond,
	}, base)
	if err != nil {
		t.Fatal(err)
	}
	victims := make(map[geom.Point]bool)
	for u := 0; u < 2; u++ {
		pool := all[nBase+u*perUpdater : nBase+(u+1)*perUpdater]
		for i := 1; i < len(pool); i += 2 {
			victims[pool[i]] = true
		}
	}
	deleted := make(chan struct{}) // closed when every victim's delete was accepted
	prng := rand.New(rand.NewSource(7101))
	qpool := make([]geom.Rect, 24)
	for i := range qpool {
		qpool[i] = randAnyShape(prng, span)
	}

	var wg sync.WaitGroup
	var deletersDone sync.WaitGroup
	for u := 0; u < 2; u++ {
		pool := all[nBase+u*perUpdater : nBase+(u+1)*perUpdater]
		batched := u == 0
		wg.Add(1)
		deletersDone.Add(1)
		go func() {
			defer wg.Done()
			defer deletersDone.Done()
			if batched {
				const chunk = 40
				for lo := 0; lo < len(pool); lo += chunk {
					hi := lo + chunk
					if hi > len(pool) {
						hi = len(pool)
					}
					if err := db.BatchInsert(pool[lo:hi]); err != nil {
						t.Error(err)
						return
					}
				}
				var vs []geom.Point
				for i := 1; i < len(pool); i += 2 {
					vs = append(vs, pool[i])
				}
				if got, err := db.BatchDelete(vs); err != nil || got != len(vs) {
					t.Errorf("BatchDelete = %d, %v; want accepted %d", got, err, len(vs))
				}
			} else {
				for _, p := range pool {
					if err := db.Insert(p); err != nil {
						t.Error(err)
						return
					}
				}
				for i := 1; i < len(pool); i += 2 {
					if ok, err := db.Delete(pool[i]); err != nil || !ok {
						t.Errorf("Delete(%v) = %t, %v", pool[i], ok, err)
						return
					}
				}
			}
		}()
	}
	go func() {
		deletersDone.Wait()
		close(deleted)
	}()
	for g := 0; g < nQueriers; g++ {
		seed := int64(g + 7200)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			checkVictims := false
			for q := 0; q < queries; q++ {
				select {
				case <-deleted:
					checkVictims = true
				default:
				}
				r := qpool[rng.Intn(len(qpool))]
				sky := db.RangeSkyline(r)
				for i, p := range sky {
					if !r.Contains(p) {
						t.Errorf("query %d: %v outside %v", q, p, r)
						return
					}
					if i > 0 && (sky[i-1].X >= p.X || sky[i-1].Y <= p.Y) {
						t.Errorf("query %d: not a staircase at %d: %v, %v", q, i, sky[i-1], p)
						return
					}
					if checkVictims && victims[p] {
						t.Errorf("query %d: deleted point %v resurfaced in %v", q, p, r)
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = db.Len() // a flushing read racing the timer drains
			_ = db.QueueCounters()
			_ = db.Stats()
		}
	}()
	wg.Wait()

	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	ref := append([]geom.Point(nil), base...)
	for u := 0; u < 2; u++ {
		pool := all[nBase+u*perUpdater : nBase+(u+1)*perUpdater]
		for i := 0; i < len(pool); i += 2 {
			ref = append(ref, pool[i])
		}
	}
	if db.Len() != len(ref) {
		t.Fatalf("final Len = %d, want %d", db.Len(), len(ref))
	}
	rng := rand.New(rand.NewSource(7102))
	for q := 0; q < 40; q++ {
		r := randAnyShape(rng, span)
		diffPoints(t, db.RangeSkyline(r), naiveRangeSkyline(ref, r), fmt.Sprintf("final q=%d %v", q, r))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if ctr := db.QueueCounters(); ctr.Enqueued != ctr.Drained+ctr.Coalesced {
		t.Fatalf("quiescent invariant violated after Close: %+v", ctr)
	}
}
