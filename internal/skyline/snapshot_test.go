// Differential and stress tests for DB.Snapshot: a pinned view must
// answer every Figure-2 shape byte-identically to a synchronous twin
// DB frozen at the pin point, no matter how many writes, drains or
// checkpoints the live index absorbs afterwards — and closing the last
// snapshot must reclaim every retired span (the generation-accounting
// no-leak invariant).
package skyline_test

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

// pinnedTwin pairs a live snapshot with a synchronous twin DB built
// from the reference set frozen at the pin, plus the frozen set itself
// for the O(n²) oracle.
type pinnedTwin struct {
	snap   *core.Snapshot
	twin   *core.DB
	frozen []geom.Point
	op     int
}

// checkPin asserts one query answers identically on the snapshot, the
// frozen twin, and the oracle.
func checkPin(t *testing.T, pin pinnedTwin, q geom.Rect, ctx string) {
	t.Helper()
	fromTwin := pin.twin.RangeSkyline(q)
	diffPoints(t, fromTwin, naiveRangeSkyline(pin.frozen, q),
		ctx+fmt.Sprintf(" %v twin vs oracle (pin at op %d)", q, pin.op))
	diffPoints(t, pin.snap.RangeSkyline(q), fromTwin,
		ctx+fmt.Sprintf(" %v snapshot vs twin (pin at op %d)", q, pin.op))
}

// sevenShapes checks every named Figure-2 entry point of the snapshot
// against the twin's corresponding rectangle query.
func sevenShapes(t *testing.T, pin pinnedTwin, rng *rand.Rand, span geom.Coord, ctx string) {
	t.Helper()
	x1 := rng.Int63n(span)
	x2 := x1 + rng.Int63n(span/2+1)
	y1 := rng.Int63n(span)
	y2 := y1 + rng.Int63n(span/2+1)
	cases := []struct {
		name string
		got  []geom.Point
		rect geom.Rect
	}{
		{"TopOpen", pin.snap.TopOpen(x1, x2, y1), geom.TopOpen(x1, x2, y1)},
		{"RightOpen", pin.snap.RightOpen(x1, y1, y2), geom.RightOpen(x1, y1, y2)},
		{"BottomOpen", pin.snap.BottomOpen(x1, x2, y2), geom.BottomOpen(x1, x2, y2)},
		{"LeftOpen", pin.snap.LeftOpen(x2, y1, y2), geom.LeftOpen(x2, y1, y2)},
		{"Dominance", pin.snap.Dominance(x1, y1), geom.Dominance(x1, y1)},
		{"AntiDominance", pin.snap.AntiDominance(x2, y2), geom.AntiDominance(x2, y2)},
		{"Contour", pin.snap.Contour(x2), geom.Contour(x2)},
		{"Skyline", pin.snap.Skyline(), geom.Rect{X1: geom.NegInf, X2: geom.PosInf, Y1: geom.NegInf, Y2: geom.PosInf}},
	}
	for _, c := range cases {
		diffPoints(t, c.got, pin.twin.RangeSkyline(c.rect),
			ctx+fmt.Sprintf(" %s%v snapshot vs twin (pin at op %d)", c.name, c.rect, pin.op))
	}
}

// TestDifferentialSnapshot drives random workloads against every
// configuration axis — unsharded, sharded, mirrors, cache, async
// writes, durable storage — pinning snapshots mid-stream and holding
// them across later writes, drains, flushes and checkpoints. Each open
// snapshot must keep answering all seven Figure-2 shapes
// byte-identically to a synchronous twin DB opened over the reference
// set frozen at its pin, and to the O(n²) oracle. After the workload
// the snapshots close and the retirement accounting must read zero.
func TestDifferentialSnapshot(t *testing.T) {
	configs := []struct {
		name    string
		opts    func(t *testing.T) core.Options
		durable bool
	}{
		{"unsharded", func(*testing.T) core.Options {
			return core.Options{Machine: diffCfg, Dynamic: true}
		}, false},
		{"sharded", func(*testing.T) core.Options {
			return core.Options{Machine: diffCfg, Dynamic: true, Shards: 4, Workers: 3}
		}, false},
		{"sharded-mirrored-cached", func(*testing.T) core.Options {
			return core.Options{Machine: diffCfg, Dynamic: true, Shards: 4, Workers: 3, Mirrors: true, CacheEntries: 32}
		}, false},
		{"sharded-mirrored-async", func(*testing.T) core.Options {
			return core.Options{Machine: diffCfg, Dynamic: true, Shards: 4, Workers: 3, Mirrors: true,
				AsyncWrites: true, FlushPoints: 16, FlushInterval: -1}
		}, false},
		{"durable-async", func(t *testing.T) core.Options {
			return core.Options{Machine: diffCfg, Dynamic: true, Shards: 4, Workers: 3,
				AsyncWrites: true, FlushPoints: 16, FlushInterval: -1, Dir: t.TempDir()}
		}, true},
	}
	const n, extra = 160, 180
	span := geom.Coord((n + extra) * 16)
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
					all := geom.GenUniform(n+extra, span, seed+8100)
					base := append([]geom.Point(nil), all[:n]...)
					pool := append([]geom.Point(nil), all[n:]...)
					geom.SortByX(base)
					live, err := core.Open(cfg.opts(t), base)
					if err != nil {
						t.Fatal(err)
					}
					ref := append([]geom.Point(nil), base...)
					var pins []pinnedTwin

					rng := rand.New(rand.NewSource(seed + 83))
					for op := 0; op < 150; op++ {
						ctx := fmt.Sprintf("%s seed=%d op=%d", cfg.name, seed, op)
						switch rng.Intn(14) {
						case 0, 1: // single insert
							if len(pool) == 0 {
								continue
							}
							p := pool[len(pool)-1]
							pool = pool[:len(pool)-1]
							if err := live.Insert(p); err != nil {
								t.Fatalf("%s: %v", ctx, err)
							}
							ref = append(ref, p)
						case 2: // batch insert
							if len(pool) < 2 {
								continue
							}
							k := 1 + rng.Intn(len(pool)/2)
							batch := append([]geom.Point(nil), pool[:k]...)
							pool = pool[k:]
							if err := live.BatchInsert(batch); err != nil {
								t.Fatalf("%s: %v", ctx, err)
							}
							ref = append(ref, batch...)
						case 3, 4: // single delete
							if len(ref) == 0 {
								continue
							}
							j := rng.Intn(len(ref))
							p := ref[j]
							ref = append(ref[:j], ref[j+1:]...)
							if ok, err := live.Delete(p); !ok || err != nil {
								t.Fatalf("%s: Delete(%v) = %t, %v", ctx, p, ok, err)
							}
						case 5: // batch delete
							if len(ref) < 4 {
								continue
							}
							k := 1 + rng.Intn(len(ref)/2)
							perm := rng.Perm(len(ref))[:k]
							sort.Ints(perm)
							var batch []geom.Point
							for _, j := range perm {
								batch = append(batch, ref[j])
							}
							for i := len(perm) - 1; i >= 0; i-- {
								j := perm[i]
								ref = append(ref[:j], ref[j+1:]...)
							}
							if _, err := live.BatchDelete(batch); err != nil {
								t.Fatalf("%s: %v", ctx, err)
							}
						case 6: // flush: drains the queue, checkpoints durable storage
							if err := live.Flush(); err != nil {
								t.Fatalf("%s: %v", ctx, err)
							}
						case 7: // pin a snapshot + its frozen twin
							if len(pins) >= 4 {
								continue
							}
							snap, err := live.Snapshot()
							if err != nil {
								t.Fatalf("%s: Snapshot: %v", ctx, err)
							}
							frozen := append([]geom.Point(nil), ref...)
							sorted := append([]geom.Point(nil), frozen...)
							geom.SortByX(sorted)
							twin, err := core.Open(core.Options{Machine: diffCfg, Dynamic: true}, sorted)
							if err != nil {
								t.Fatalf("%s: twin: %v", ctx, err)
							}
							pins = append(pins, pinnedTwin{snap: snap, twin: twin, frozen: frozen, op: op})
						default: // query live + every open pin
							q := randAnyShape(rng, span)
							diffPoints(t, live.RangeSkyline(q), naiveRangeSkyline(ref, q), ctx+fmt.Sprintf(" %v live", q))
							for _, pin := range pins {
								checkPin(t, pin, randAnyShape(rng, span), ctx)
							}
						}
					}

					// The pins have now survived every later write, drain
					// and checkpoint; sweep all seven shapes on each.
					for _, pin := range pins {
						sevenShapes(t, pin, rng, span, fmt.Sprintf("%s seed=%d final", cfg.name, seed))
					}
					if got := live.OpenSnapshots(); got != len(pins) {
						t.Fatalf("OpenSnapshots = %d, want %d", got, len(pins))
					}
					if len(pins) > 0 && live.RetainedCount() == 0 {
						t.Fatal("open snapshots but no storage retentions")
					}
					for _, pin := range pins {
						pin.snap.Close()
						pin.snap.Close() // idempotent
					}
					if got := live.OpenSnapshots(); got != 0 {
						t.Fatalf("OpenSnapshots after close = %d, want 0", got)
					}
					if got := live.DeferredBlocks(); got != 0 {
						t.Fatalf("DeferredBlocks after close = %d, want 0 (leaked retired spans)", got)
					}
					if got := live.RetainedCount(); got != 0 {
						t.Fatalf("RetainedCount after close = %d, want 0", got)
					}
					// The live index is unharmed by the pins' lifecycle.
					for q := 0; q < 10; q++ {
						r := randAnyShape(rng, span)
						diffPoints(t, live.RangeSkyline(r), naiveRangeSkyline(ref, r),
							fmt.Sprintf("%s seed=%d post-close %v", cfg.name, seed, r))
					}
					if err := live.Close(); err != nil {
						t.Fatal(err)
					}
				})
			}
		})
	}
}

// TestSnapshotRaceStress is the -race mix DB.Snapshot exists for:
// snapshot readers hammering pinned views while two writers stream
// single and batched updates into a sharded+mirrored+cached+async DB,
// snapshots are pinned and closed mid-flight, and a poller reads the
// counters. Each reader pins once and asserts its answers NEVER change
// across the writers' progress (the point-in-time contract, checked
// against the view's own first answers); after quiescence the final
// state matches the oracle and the retirement accounting reads zero —
// no leaked retired roots.
func TestSnapshotRaceStress(t *testing.T) {
	const (
		nBase      = 800
		perUpdater = 220
		nReaders   = 4
		queries    = 120
	)
	span := geom.Coord((nBase + 2*perUpdater) * 16)
	all := geom.GenUniform(nBase+2*perUpdater, span, 9100)
	base := append([]geom.Point(nil), all[:nBase]...)
	geom.SortByX(base)
	db, err := core.Open(core.Options{
		Machine: diffCfg, Dynamic: true, Shards: 4, Workers: 4, Mirrors: true,
		CacheEntries: 32, AsyncWrites: true, FlushPoints: 24, FlushInterval: -1,
	}, base)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for u := 0; u < 2; u++ {
		pool := all[nBase+u*perUpdater : nBase+(u+1)*perUpdater]
		batched := u == 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			if batched {
				const chunk = 44
				for lo := 0; lo < len(pool); lo += chunk {
					hi := lo + chunk
					if hi > len(pool) {
						hi = len(pool)
					}
					if err := db.BatchInsert(pool[lo:hi]); err != nil {
						t.Error(err)
						return
					}
				}
				var victims []geom.Point
				for i := 1; i < len(pool); i += 2 {
					victims = append(victims, pool[i])
				}
				if _, err := db.BatchDelete(victims); err != nil {
					t.Error(err)
				}
			} else {
				for _, p := range pool {
					if err := db.Insert(p); err != nil {
						t.Error(err)
						return
					}
				}
				for i := 1; i < len(pool); i += 2 {
					if ok, err := db.Delete(pool[i]); err != nil || !ok {
						t.Errorf("Delete(%v) = %t, %v", pool[i], ok, err)
						return
					}
				}
			}
		}()
	}
	for g := 0; g < nReaders; g++ {
		seed := int64(g + 9200)
		wg.Add(1)
		go func() {
			defer wg.Done()
			snap, err := db.Snapshot()
			if err != nil {
				t.Error(err)
				return
			}
			defer snap.Close()
			rng := rand.New(rand.NewSource(seed))
			qpool := make([]geom.Rect, 8)
			first := make([][]geom.Point, len(qpool))
			for i := range qpool {
				qpool[i] = randAnyShape(rng, span)
				first[i] = snap.RangeSkyline(qpool[i])
				// Sanity: a pinned answer is a staircase inside its
				// rectangle.
				for j, p := range first[i] {
					if !qpool[i].Contains(p) {
						t.Errorf("pin q=%d: %v outside %v", i, p, qpool[i])
						return
					}
					if j > 0 && (first[i][j-1].X >= p.X || first[i][j-1].Y <= p.Y) {
						t.Errorf("pin q=%d: not a staircase", i)
						return
					}
				}
			}
			for q := 0; q < queries; q++ {
				i := rng.Intn(len(qpool))
				got := snap.RangeSkyline(qpool[i])
				if len(got) != len(first[i]) {
					t.Errorf("reader %d: pinned answer for %v changed: %d points, first saw %d",
						seed, qpool[i], len(got), len(first[i]))
					return
				}
				for j := range got {
					if got[j] != first[i][j] {
						t.Errorf("reader %d: pinned answer for %v changed at %d: %v vs %v",
							seed, qpool[i], j, got[j], first[i][j])
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			_ = db.QueueCounters()
			_ = db.Stats()
			_ = db.OpenSnapshots()
			_ = db.DeferredBlocks()
		}
	}()
	wg.Wait()

	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	ref := append([]geom.Point(nil), base...)
	for u := 0; u < 2; u++ {
		pool := all[nBase+u*perUpdater : nBase+(u+1)*perUpdater]
		for i := 0; i < len(pool); i += 2 {
			ref = append(ref, pool[i])
		}
	}
	if db.Len() != len(ref) {
		t.Fatalf("final Len = %d, want %d", db.Len(), len(ref))
	}
	rng := rand.New(rand.NewSource(9101))
	for q := 0; q < 40; q++ {
		r := randAnyShape(rng, span)
		diffPoints(t, db.RangeSkyline(r), naiveRangeSkyline(ref, r), fmt.Sprintf("final q=%d %v", q, r))
	}
	// Quiescence: every snapshot closed, every retired span reclaimed.
	if got := db.OpenSnapshots(); got != 0 {
		t.Fatalf("OpenSnapshots = %d, want 0", got)
	}
	if got := db.DeferredBlocks(); got != 0 {
		t.Fatalf("DeferredBlocks = %d, want 0 (leaked retired roots)", got)
	}
	if got := db.RetainedCount(); got != 0 {
		t.Fatalf("RetainedCount = %d, want 0", got)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
