package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/geom"
)

// TestCombinerDeliversEveryResult checks each waiter gets exactly its
// own slot of the batch result, whatever batches formed.
func TestCombinerDeliversEveryResult(t *testing.T) {
	var applied atomic.Int64
	c := newCombiner(0, func(pts []geom.Point) []geom.Coord {
		applied.Add(int64(len(pts)))
		out := make([]geom.Coord, len(pts))
		for i, p := range pts {
			out[i] = p.X * 2
		}
		return out
	})
	const n = 200
	var wg sync.WaitGroup
	fail := make(chan string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got := c.do(geom.Point{X: geom.Coord(i), Y: geom.Coord(-i)})
			if got != geom.Coord(2*i) {
				fail <- "wrong slot"
			}
		}(i)
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Error(msg)
	}
	if applied.Load() != n {
		t.Errorf("applied %d points, want %d", applied.Load(), n)
	}
}

// TestCombinerGroupsUnderContention proves batching emerges while a
// leader is inside the engine: waiters queued behind a blocked apply
// come out as ONE batch.
func TestCombinerGroupsUnderContention(t *testing.T) {
	release := make(chan struct{})
	var mu sync.Mutex
	var batches [][]geom.Point
	c := newCombiner(0, func(pts []geom.Point) []geom.Coord {
		mu.Lock()
		batches = append(batches, append([]geom.Point(nil), pts...))
		first := len(batches) == 1
		mu.Unlock()
		if first {
			<-release // hold the engine while followers queue
		}
		return make([]geom.Coord, len(pts))
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); c.do(geom.Point{X: 0, Y: 0}) }()
	// Wait until the leader is inside apply before queueing followers.
	for {
		mu.Lock()
		started := len(batches) > 0
		mu.Unlock()
		if started {
			break
		}
		time.Sleep(time.Millisecond)
	}
	const followers = 10
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); c.do(geom.Point{X: geom.Coord(i), Y: geom.Coord(i)}) }(i)
	}
	// Give every follower time to park on the queue, then release.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(batches) < 2 {
		t.Fatalf("expected the leader to apply a second batch, got %d batches", len(batches))
	}
	if got := len(batches[1]); got != followers {
		t.Errorf("second batch has %d points, want all %d queued followers", got, followers)
	}
}
