// Package serve is the network front end of the repository — the
// "skyline-as-a-service" layer cmd/skylined wraps in a binary. It
// exposes the full core.DB surface over HTTP/JSON:
//
//   - every Figure-2 query shape plus the general 4-sided rectangle
//     and the whole-set skyline (POST /v1/{ns}/query);
//   - single and batched inserts and deletes (POST /v1/{ns}/insert,
//     POST /v1/{ns}/delete), with single-point writes multiplexed
//     through a per-namespace group-commit combiner that feeds the
//     engine's BatchInsert/BatchDeleteRemoved paths — concurrent
//     clients share one structure lock per batch instead of paying it
//     per request;
//   - snapshot-pinned paginated reads (POST /v1/{ns}/snapshot to pin,
//     query with {"snapshot": id, "limit": k, "after_x": token} to
//     page without tearing, DELETE /v1/{ns}/snapshot/{id} to release);
//   - Len and the observability counters (GET /v1/{ns}/len,
//     GET /v1/{ns}/stats: queue, cache, resilience, recovery, I/O).
//
// Multi-tenancy is namespace-per-DB: the Config maps each namespace
// name to its own core.Options (shards, mirrors, cache, async queue,
// durable directory, admission caps), and the DB is opened lazily on
// the namespace's first request. Tenants share nothing but the
// process.
//
// Admission control maps the engine's typed failures onto HTTP status
// codes (see Status): ErrBackpressure → 429 with Retry-After,
// ErrDegraded and ErrClosed → 503 — a degraded namespace keeps serving
// reads, so only its writes fail — and ErrStatic → 409. Shutdown is
// graceful and ordered: stop accepting requests (the http.Server's
// job), then Server.Close every namespace — releasing snapshots,
// draining the async queues and checkpointing the durable ones — so an
// acknowledged write is never lost across SIGTERM and a reopen.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/emio"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/vfs"
)

// NamespaceConfig is the JSON-friendly subset of core.Options one
// namespace is opened with. The zero value is a purely in-memory
// dynamic index on the default simulated machine.
type NamespaceConfig struct {
	// B and M fix the simulated external-memory machine (block size
	// and memory, in words); zero means emio.DefaultConfig().
	B int `json:"b,omitempty"`
	M int `json:"m,omitempty"`
	// Epsilon is the paper's query/update trade knob; zero means 0.5.
	Epsilon float64 `json:"epsilon,omitempty"`
	// Static builds the immutable Theorem 1 index (writes return 409).
	// The default is dynamic — the wire is a write path, so the
	// polarity is inverted from core.Options.Dynamic.
	Static bool `json:"static,omitempty"`
	// Shards/Workers select the sharded concurrent engine.
	Shards  int `json:"shards,omitempty"`
	Workers int `json:"workers,omitempty"`
	// Mirrors maintains the transposed fast path for the
	// grounded-right-edge query family.
	Mirrors bool `json:"mirrors,omitempty"`
	// CacheEntries bounds the read-through LRU skyline cache.
	CacheEntries int `json:"cache_entries,omitempty"`
	// AsyncWrites buffers writes in the per-slab queue; FlushPoints
	// and FlushIntervalMS are its drain triggers (interval < 0
	// disables the background drainer).
	AsyncWrites     bool `json:"async_writes,omitempty"`
	FlushPoints     int  `json:"flush_points,omitempty"`
	FlushIntervalMS int  `json:"flush_interval_ms,omitempty"`
	// Dir makes the namespace durable (pager + WAL under Dir);
	// SyncWAL fsyncs every logged batch.
	Dir     string `json:"dir,omitempty"`
	SyncWAL bool   `json:"sync_wal,omitempty"`
	// MaxBuffered/ShedWrites are the async queue's admission cap: an
	// over-cap write drains inline (blocking) or, with ShedWrites, is
	// rejected — surfaced to clients as 429 + Retry-After.
	MaxBuffered int  `json:"max_buffered,omitempty"`
	ShedWrites  bool `json:"shed_writes,omitempty"`
	// Rebalance enables online shard rebalancing (requires a dynamic
	// namespace with shards > 1); MaxShardSkew is its max/mean load
	// trigger (0 means 2.0).
	Rebalance    bool    `json:"rebalance,omitempty"`
	MaxShardSkew float64 `json:"max_shard_skew,omitempty"`
	// AdaptiveFlush lets each async-queue slab tune its own flush
	// threshold to the observed drain pattern.
	AdaptiveFlush bool `json:"adaptive_flush,omitempty"`
}

// validate rejects a config that core.Open (or the engine below it)
// would reject later, naming the offending field — so a bad namespace
// fails at serve.New with a message an operator can act on, not on the
// namespace's first request.
func (c NamespaceConfig) validate() error {
	switch {
	case c.B < 0:
		return fmt.Errorf("field %q: must be >= 0, got %d", "b", c.B)
	case c.M < 0:
		return fmt.Errorf("field %q: must be >= 0, got %d", "m", c.M)
	case c.B == 0 && c.M > 0:
		return fmt.Errorf("field %q: set without %q (both or neither)", "m", "b")
	case c.Epsilon < 0 || c.Epsilon >= 1:
		return fmt.Errorf("field %q: must be in [0, 1), got %v", "epsilon", c.Epsilon)
	case c.Shards < 0:
		return fmt.Errorf("field %q: must be >= 0, got %d", "shards", c.Shards)
	case c.Workers < 0:
		return fmt.Errorf("field %q: must be >= 0, got %d", "workers", c.Workers)
	case c.CacheEntries < 0:
		return fmt.Errorf("field %q: must be >= 0, got %d", "cache_entries", c.CacheEntries)
	case c.FlushPoints < 0:
		return fmt.Errorf("field %q: must be >= 0, got %d", "flush_points", c.FlushPoints)
	case c.MaxBuffered < 0:
		return fmt.Errorf("field %q: must be >= 0, got %d", "max_buffered", c.MaxBuffered)
	case c.Static && c.AsyncWrites:
		return fmt.Errorf("field %q: a static namespace has no write path to buffer", "async_writes")
	case c.Rebalance && c.Static:
		return fmt.Errorf("field %q: a static namespace cannot rebalance", "rebalance")
	case c.Rebalance && c.Shards <= 1:
		return fmt.Errorf("field %q: requires %q > 1, got %d", "rebalance", "shards", c.Shards)
	case c.MaxShardSkew != 0 && c.MaxShardSkew < 1:
		return fmt.Errorf("field %q: must be >= 1 (max/mean load ratio), got %v", "max_shard_skew", c.MaxShardSkew)
	case c.MaxShardSkew != 0 && !c.Rebalance:
		return fmt.Errorf("field %q: set without %q", "max_shard_skew", "rebalance")
	case c.AdaptiveFlush && !c.AsyncWrites:
		return fmt.Errorf("field %q: set without %q", "adaptive_flush", "async_writes")
	}
	return nil
}

// Options translates the wire config into core.Options.
func (c NamespaceConfig) Options() core.Options {
	opts := core.Options{
		Epsilon:       c.Epsilon,
		Dynamic:       !c.Static,
		Shards:        c.Shards,
		Workers:       c.Workers,
		Mirrors:       c.Mirrors,
		CacheEntries:  c.CacheEntries,
		AsyncWrites:   c.AsyncWrites,
		FlushPoints:   c.FlushPoints,
		Dir:           c.Dir,
		SyncWAL:       c.SyncWAL,
		MaxBuffered:   c.MaxBuffered,
		ShedWrites:    c.ShedWrites,
		Rebalance:     c.Rebalance,
		MaxShardSkew:  c.MaxShardSkew,
		AdaptiveFlush: c.AdaptiveFlush,
	}
	if c.B > 0 {
		opts.Machine = emio.Config{B: c.B, M: c.M}
	}
	if c.FlushIntervalMS != 0 {
		opts.FlushInterval = time.Duration(c.FlushIntervalMS) * time.Millisecond
	}
	return opts
}

// Config is the server's whole configuration — cmd/skylined reads it
// from a JSON file.
type Config struct {
	// Listen is the address cmd/skylined binds (the library ignores
	// it; tests drive the Handler directly).
	Listen string `json:"listen,omitempty"`
	// Namespaces maps each tenant name to its index configuration.
	// A request for a name absent here is a 404 — namespaces are
	// declared, not created on demand, so a typo cannot silently open
	// an empty index.
	Namespaces map[string]NamespaceConfig `json:"namespaces"`
	// BatchWindow is how long the group-commit combiner waits after
	// the first single-point write of a batch for more to join. Zero
	// — the default — adds no latency: batches still form whenever
	// writes arrive while a previous batch is applying, which is
	// exactly when batching pays.
	BatchWindow time.Duration `json:"-"`
	// BatchWindowUS is BatchWindow for the JSON config file.
	BatchWindowUS int `json:"batch_window_us,omitempty"`
	// SnapshotTTL bounds how long an idle pinned snapshot may live
	// before the server releases it (snapshots hold retired storage
	// spans; an abandoned one would hold them forever). Zero means
	// DefaultSnapshotTTL. Each query against a snapshot renews it.
	SnapshotTTL time.Duration `json:"-"`
	// SnapshotTTLMS is SnapshotTTL for the JSON config file.
	SnapshotTTLMS int `json:"snapshot_ttl_ms,omitempty"`
	// MeasureIO serializes each query to measure its exact simulated
	// I/O cost (returned as "ios" in query responses). Off by default:
	// the measurement mutex would serialize concurrent readers.
	MeasureIO bool `json:"measure_io,omitempty"`
	// FS is the filesystem durable namespaces open their files on; nil
	// means the real one. Tests inject a vfs.FaultFS here.
	FS vfs.FS `json:"-"`
}

// DefaultSnapshotTTL is the idle lifetime of a pinned snapshot when
// Config.SnapshotTTL is zero.
const DefaultSnapshotTTL = 60 * time.Second

// Server serves the configured namespaces. Create with New, expose
// with Handler, shut down with Close (drain + checkpoint).
type Server struct {
	cfg Config

	mu  sync.Mutex
	nss map[string]*namespace

	// closed rejects new namespace opens and writes during shutdown.
	closed bool

	// stopJanitor ends the snapshot-TTL sweeper.
	stopJanitor chan struct{}
	janitorWG   sync.WaitGroup
}

// namespace is one tenant: a lazily opened DB plus the serving-tier
// state layered on it (write combiners, pinned snapshots).
type namespace struct {
	name string
	cfg  NamespaceConfig

	once sync.Once
	db   *core.DB
	err  error

	ins *combiner[error]
	del *combiner[delResult]

	// ioMu serializes queries when Config.MeasureIO is set, so the
	// before/after Stats() delta is exactly this query's cost.
	ioMu sync.Mutex

	snapMu   sync.Mutex
	snaps    map[string]*pinnedSnap
	nextSnap int
}

// pinnedSnap is one client-pinned snapshot with its idle deadline.
type pinnedSnap struct {
	snap     *core.Snapshot
	deadline time.Time
}

// delResult is the per-point answer of a combined delete batch.
type delResult struct {
	removed bool
	err     error
}

// New validates cfg and returns a Server. No namespace is opened yet —
// each opens on its first request, so a 20-tenant config does not pay
// 20 index builds to start serving the one hot tenant.
func New(cfg Config) (*Server, error) {
	if len(cfg.Namespaces) == 0 {
		return nil, fmt.Errorf("serve: config declares no namespaces")
	}
	if cfg.BatchWindow == 0 && cfg.BatchWindowUS > 0 {
		cfg.BatchWindow = time.Duration(cfg.BatchWindowUS) * time.Microsecond
	}
	if cfg.SnapshotTTL == 0 && cfg.SnapshotTTLMS > 0 {
		cfg.SnapshotTTL = time.Duration(cfg.SnapshotTTLMS) * time.Millisecond
	}
	if cfg.SnapshotTTL == 0 {
		cfg.SnapshotTTL = DefaultSnapshotTTL
	}
	s := &Server{
		cfg:         cfg,
		nss:         make(map[string]*namespace, len(cfg.Namespaces)),
		stopJanitor: make(chan struct{}),
	}
	for name, nc := range cfg.Namespaces {
		if name == "" {
			return nil, fmt.Errorf("serve: empty namespace name")
		}
		if err := nc.validate(); err != nil {
			return nil, fmt.Errorf("serve: namespace %q: %w", name, err)
		}
		s.nss[name] = &namespace{name: name, cfg: nc}
	}
	s.janitorWG.Add(1)
	go s.janitor()
	return s, nil
}

// janitor sweeps expired pinned snapshots so an abandoned client
// cannot hold retired storage spans forever.
func (s *Server) janitor() {
	defer s.janitorWG.Done()
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-s.stopJanitor:
			return
		case now := <-tick.C:
			s.mu.Lock()
			nss := make([]*namespace, 0, len(s.nss))
			for _, ns := range s.nss {
				nss = append(nss, ns)
			}
			s.mu.Unlock()
			for _, ns := range nss {
				ns.sweepSnaps(now)
			}
		}
	}
}

func (ns *namespace) sweepSnaps(now time.Time) {
	ns.snapMu.Lock()
	defer ns.snapMu.Unlock()
	for id, ps := range ns.snaps {
		if now.After(ps.deadline) {
			ps.snap.Close()
			delete(ns.snaps, id)
		}
	}
}

// open returns the namespace's DB, opening it on first use. The
// sync.Once makes concurrent first requests share one build; a failed
// open is sticky (the config is wrong — retrying cannot fix it).
func (s *Server) open(name string) (*namespace, error) {
	s.mu.Lock()
	ns, ok := s.nss[name]
	closed := s.closed
	s.mu.Unlock()
	if !ok {
		return nil, errUnknownNamespace
	}
	if closed {
		return nil, fmt.Errorf("serve: %w", core.ErrClosed)
	}
	ns.once.Do(func() {
		opts := ns.cfg.Options()
		opts.FS = s.cfg.FS
		ns.db, ns.err = core.Open(opts, nil)
		if ns.err != nil {
			return
		}
		ns.snaps = make(map[string]*pinnedSnap)
		db := ns.db
		ns.ins = newCombiner(s.cfg.BatchWindow, func(pts []geom.Point) []error {
			out := make([]error, len(pts))
			if err := db.BatchInsert(pts); err != nil {
				for i := range out {
					out[i] = err
				}
			}
			return out
		})
		ns.del = newCombiner(s.cfg.BatchWindow, func(pts []geom.Point) []delResult {
			out := make([]delResult, len(pts))
			removed, err := db.BatchDeleteRemoved(pts)
			hit := make(map[geom.Point]bool, len(removed))
			for _, p := range removed {
				hit[p] = true
			}
			for i, p := range pts {
				out[i] = delResult{removed: hit[p], err: err}
			}
			return out
		})
	})
	if ns.err != nil {
		return nil, fmt.Errorf("serve: open namespace %q: %w", name, ns.err)
	}
	return ns, nil
}

// Close shuts every opened namespace down in dependency order: pinned
// snapshots first (they hold retired storage), then the DBs — each
// Close drains the async queue and, when durable, checkpoints — so
// every write acknowledged before Close returns is applied and, with a
// Dir, on disk. The http.Server must stop accepting requests BEFORE
// Close runs (cmd/skylined orders exactly that on SIGTERM); requests
// racing past anyway get 503 from the closed flag.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	nss := make([]*namespace, 0, len(s.nss))
	for _, ns := range s.nss {
		nss = append(nss, ns)
	}
	s.mu.Unlock()
	close(s.stopJanitor)
	s.janitorWG.Wait()
	var firstErr error
	for _, ns := range nss {
		if ns.db == nil {
			continue
		}
		ns.snapMu.Lock()
		for id, ps := range ns.snaps {
			ps.snap.Close()
			delete(ns.snaps, id)
		}
		ns.snapMu.Unlock()
		if err := ns.db.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("serve: close namespace %q: %w", ns.name, err)
		}
	}
	return firstErr
}

// Handler returns the HTTP handler serving the wire protocol of
// docs/API.md.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/namespaces", s.handleNamespaces)
	mux.HandleFunc("POST /v1/{ns}/query", s.withNS(handleQuery))
	mux.HandleFunc("POST /v1/{ns}/insert", s.withNS(handleInsert))
	mux.HandleFunc("POST /v1/{ns}/delete", s.withNS(handleDelete))
	mux.HandleFunc("GET /v1/{ns}/len", s.withNS(handleLen))
	mux.HandleFunc("GET /v1/{ns}/stats", s.withNS(handleStats))
	mux.HandleFunc("POST /v1/{ns}/snapshot", s.withNS(handleSnapshotPin))
	mux.HandleFunc("DELETE /v1/{ns}/snapshot/{id}", s.withNS(handleSnapshotClose))
	return mux
}

// withNS resolves the {ns} path segment before the handler runs.
func (s *Server) withNS(h func(s *Server, ns *namespace, w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ns, err := s.open(r.PathValue("ns"))
		if err != nil {
			writeErr(w, err)
			return
		}
		h(s, ns, w, r)
	}
}

// handleHealthz reports process liveness plus per-namespace health:
// 200 while every opened namespace is healthy, 503 when any is
// degraded (its reads still serve; see docs/API.md).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	nss := make([]*namespace, 0, len(s.nss))
	for _, ns := range s.nss {
		nss = append(nss, ns)
	}
	s.mu.Unlock()
	type nsHealth struct {
		Status string `json:"status"`
	}
	resp := struct {
		Status     string              `json:"status"`
		Namespaces map[string]nsHealth `json:"namespaces"`
	}{Status: "ok", Namespaces: map[string]nsHealth{}}
	code := http.StatusOK
	if closed {
		resp.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	for _, ns := range nss {
		switch {
		case ns.db == nil:
			resp.Namespaces[ns.name] = nsHealth{Status: "unopened"}
		case ns.db.Degraded() != nil:
			resp.Namespaces[ns.name] = nsHealth{Status: "degraded"}
			resp.Status = "degraded"
			if code == http.StatusOK {
				code = http.StatusServiceUnavailable
			}
		default:
			resp.Namespaces[ns.name] = nsHealth{Status: "ok"}
		}
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleNamespaces(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	names := make([]string, 0, len(s.nss))
	for name := range s.nss {
		names = append(names, name)
	}
	s.mu.Unlock()
	sort.Strings(names)
	writeJSON(w, http.StatusOK, struct {
		Namespaces []string `json:"namespaces"`
	}{names})
}

// writeJSON writes v as the response body with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //errlint:ok response already committed; a broken client connection is its problem
}

// decode reads the request body into v, limited to 8 MiB so a rogue
// client cannot balloon the heap.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequestf("malformed request body: %v", err)
	}
	return nil
}

// renewFor computes the snapshot deadline from now.
func (s *Server) renewFor() time.Time { return time.Now().Add(s.cfg.SnapshotTTL) }

// retryAfter is the Retry-After value served with 429 and draining
// 503 responses: long enough for a queue flush, short enough that a
// load generator's backoff does not crater its throughput.
const retryAfter = "1"

var errUnknownNamespace = errors.New("unknown namespace")
var errUnknownSnapshot = errors.New("unknown snapshot")

// badRequest tags client errors for Status.
type badRequest struct{ msg string }

func (e badRequest) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return badRequest{fmt.Sprintf(format, args...)}
}

// Status maps an error from the engine stack (or the wire layer) onto
// the HTTP status code and machine-readable code string of docs/API.md.
// It is the single source of truth for the error table — the handler
// tests assert the mapping against the real sentinels.
func Status(err error) (httpStatus int, code string) {
	var br badRequest
	switch {
	case err == nil:
		return http.StatusOK, "ok"
	case errors.Is(err, errUnknownNamespace), errors.Is(err, errUnknownSnapshot):
		return http.StatusNotFound, "not-found"
	case errors.As(err, &br):
		return http.StatusBadRequest, "bad-request"
	case errors.Is(err, core.ErrBackpressure):
		return http.StatusTooManyRequests, "backpressure"
	case errors.Is(err, core.ErrDegraded):
		return http.StatusServiceUnavailable, "degraded"
	case errors.Is(err, core.ErrClosed):
		return http.StatusServiceUnavailable, "closed"
	case errors.Is(err, core.ErrStatic):
		return http.StatusConflict, "static"
	case vfs.IsStorageErr(err):
		// The fatal storage fault that LATCHES degraded mode: the same
		// 503 its successors get from the ErrDegraded latch, so
		// clients see one consistent signal from the first fault on.
		return http.StatusServiceUnavailable, "degraded"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// writeErr renders err per the Status table, attaching the headers the
// code calls for (Retry-After on 429 and on draining 503s).
func writeErr(w http.ResponseWriter, err error) {
	status, code := Status(err)
	if status == http.StatusTooManyRequests || code == "closed" {
		w.Header().Set("Retry-After", retryAfter)
	}
	if code == "degraded" {
		w.Header().Set("X-Skyline-Degraded", "true")
	}
	writeJSON(w, status, struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}{err.Error(), code})
}

// ioCost runs query under the namespace's measurement mutex and
// returns its exact simulated I/O cost; with MeasureIO off it just
// runs the query. engine.Backend.Stats aggregates every disk behind
// the planner, so the delta covers shards and mirrors too.
func (s *Server) ioCost(ns *namespace, query func() []geom.Point) (pts []geom.Point, ios uint64, measured bool) {
	if !s.cfg.MeasureIO {
		return query(), 0, false
	}
	ns.ioMu.Lock()
	defer ns.ioMu.Unlock()
	before := ns.db.Stats().IOs()
	pts = query()
	return pts, ns.db.Stats().IOs() - before, true
}

// --- wire types -----------------------------------------------------

// wirePoint is a point on the wire. Coordinates are int64 (geom.Coord)
// and decode exactly; JSON numbers with a fractional part are
// rejected.
type wirePoint struct {
	X geom.Coord `json:"x"`
	Y geom.Coord `json:"y"`
}

func (p wirePoint) pt() geom.Point { return geom.Point{X: p.X, Y: p.Y} }

func fromPoints(pts []geom.Point) []wirePoint {
	out := make([]wirePoint, len(pts))
	for i, p := range pts {
		out[i] = wirePoint{X: p.X, Y: p.Y}
	}
	return out
}

// queryReq is the body of POST /v1/{ns}/query. Shape selects which
// named parameters are required (see docs/API.md); grounded sides are
// implied by the shape, so clients never spell an infinity.
type queryReq struct {
	Shape string `json:"shape"`

	X1   *geom.Coord `json:"x1,omitempty"`
	X2   *geom.Coord `json:"x2,omitempty"`
	Y1   *geom.Coord `json:"y1,omitempty"`
	Y2   *geom.Coord `json:"y2,omitempty"`
	X    *geom.Coord `json:"x,omitempty"`
	Y    *geom.Coord `json:"y,omitempty"`
	Beta *geom.Coord `json:"beta,omitempty"`

	// Snapshot serves the query from a pinned snapshot instead of the
	// live index.
	Snapshot string `json:"snapshot,omitempty"`
	// Limit > 0 returns at most Limit points plus a resume token.
	Limit int `json:"limit,omitempty"`
	// AfterX resumes a paginated read: only points with x > AfterX
	// are reported. Sound for every shape — a skyline is reported in
	// increasing x, and a point's dominators never have smaller x.
	AfterX *geom.Coord `json:"after_x,omitempty"`
}

// queryResp is the answer: the (possibly paginated) skyline points,
// the resume token when Limit truncated, and the exact simulated I/O
// cost when the server measures it.
type queryResp struct {
	Points []wirePoint `json:"points"`
	More   bool        `json:"more,omitempty"`
	// NextAfterX is the after_x to pass for the next page.
	NextAfterX *geom.Coord `json:"next_after_x,omitempty"`
	IOs        *uint64     `json:"ios,omitempty"`
}

// rect builds the query rectangle from the shape's named parameters.
func (q *queryReq) rect() (geom.Rect, error) {
	need := func(name string, v *geom.Coord) (geom.Coord, error) {
		if v == nil {
			return 0, badRequestf("shape %q requires parameter %q", q.Shape, name)
		}
		return *v, nil
	}
	two := func(an string, a *geom.Coord, bn string, b *geom.Coord, f func(x, y geom.Coord) geom.Rect) (geom.Rect, error) {
		av, err := need(an, a)
		if err != nil {
			return geom.Rect{}, err
		}
		bv, err := need(bn, b)
		if err != nil {
			return geom.Rect{}, err
		}
		return f(av, bv), nil
	}
	three := func(an string, a *geom.Coord, bn string, b *geom.Coord, cn string, c *geom.Coord, f func(x, y, z geom.Coord) geom.Rect) (geom.Rect, error) {
		av, err := need(an, a)
		if err != nil {
			return geom.Rect{}, err
		}
		bv, err := need(bn, b)
		if err != nil {
			return geom.Rect{}, err
		}
		cv, err := need(cn, c)
		if err != nil {
			return geom.Rect{}, err
		}
		return f(av, bv, cv), nil
	}
	switch q.Shape {
	case "skyline":
		return geom.Rect{X1: geom.NegInf, X2: geom.PosInf, Y1: geom.NegInf, Y2: geom.PosInf}, nil
	case "top-open":
		return three("x1", q.X1, "x2", q.X2, "beta", q.Beta, geom.TopOpen)
	case "right-open":
		return three("x", q.X, "y1", q.Y1, "y2", q.Y2, geom.RightOpen)
	case "bottom-open":
		return three("x1", q.X1, "x2", q.X2, "y", q.Y, geom.BottomOpen)
	case "left-open":
		return three("x", q.X, "y1", q.Y1, "y2", q.Y2, geom.LeftOpen)
	case "dominance":
		return two("x", q.X, "y", q.Y, geom.Dominance)
	case "anti-dominance":
		return two("x", q.X, "y", q.Y, geom.AntiDominance)
	case "contour":
		x, err := need("x", q.X)
		if err != nil {
			return geom.Rect{}, err
		}
		return geom.Contour(x), nil
	case "4-sided":
		r1, err := two("x1", q.X1, "x2", q.X2, func(a, b geom.Coord) geom.Rect { return geom.Rect{X1: a, X2: b} })
		if err != nil {
			return geom.Rect{}, err
		}
		y1, err := need("y1", q.Y1)
		if err != nil {
			return geom.Rect{}, err
		}
		y2, err := need("y2", q.Y2)
		if err != nil {
			return geom.Rect{}, err
		}
		r1.Y1, r1.Y2 = y1, y2
		return r1, nil
	case "":
		return geom.Rect{}, badRequestf("missing query shape")
	default:
		return geom.Rect{}, badRequestf("unknown query shape %q", q.Shape)
	}
}

// handleQuery serves POST /v1/{ns}/query: classify the shape, narrow
// for pagination, run against the live index or a pinned snapshot,
// truncate to the page and hand back the resume token.
func handleQuery(s *Server, ns *namespace, w http.ResponseWriter, r *http.Request) {
	var req queryReq
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	rect, err := req.rect()
	if err != nil {
		writeErr(w, err)
		return
	}
	if req.Limit < 0 {
		writeErr(w, badRequestf("negative limit %d", req.Limit))
		return
	}
	// Pagination narrows the rectangle instead of re-reporting and
	// skipping: every remaining skyline point — and each of its
	// dominators — has x past the token, so the narrowed query's
	// answer IS the rest of the staircase.
	if req.AfterX != nil {
		if *req.AfterX == geom.PosInf {
			writeJSON(w, http.StatusOK, queryResp{Points: []wirePoint{}})
			return
		}
		if *req.AfterX+1 > rect.X1 {
			rect.X1 = *req.AfterX + 1
		}
	}
	var run func() []geom.Point
	if req.Snapshot != "" {
		snap, err := ns.lookupSnap(req.Snapshot, s.renewFor())
		if err != nil {
			writeErr(w, err)
			return
		}
		run = func() []geom.Point { return snap.RangeSkyline(rect) }
	} else {
		run = func() []geom.Point { return ns.db.RangeSkyline(rect) }
	}
	pts, ios, measured := s.ioCost(ns, run)
	resp := queryResp{}
	if measured {
		resp.IOs = &ios
	}
	if req.Limit > 0 && len(pts) > req.Limit {
		page := pts[:req.Limit]
		last := page[len(page)-1].X
		resp.Points = fromPoints(page)
		resp.More = true
		resp.NextAfterX = &last
	} else {
		resp.Points = fromPoints(pts)
	}
	writeJSON(w, http.StatusOK, resp)
}

// lookupSnap resolves a pinned snapshot id, renewing its TTL.
func (ns *namespace) lookupSnap(id string, deadline time.Time) (*core.Snapshot, error) {
	ns.snapMu.Lock()
	defer ns.snapMu.Unlock()
	ps, ok := ns.snaps[id]
	if !ok {
		return nil, fmt.Errorf("serve: snapshot %q: %w", id, errUnknownSnapshot)
	}
	ps.deadline = deadline
	return ps.snap, nil
}

// writeReq is the body of POST /v1/{ns}/insert and /v1/{ns}/delete:
// one point (multiplexed through the group-commit combiner) or a
// batch (fed to the engine's batched path directly).
type writeReq struct {
	Point  *wirePoint  `json:"point,omitempty"`
	Points []wirePoint `json:"points,omitempty"`
}

func (wr *writeReq) validate() ([]geom.Point, bool, error) {
	switch {
	case wr.Point != nil && wr.Points != nil:
		return nil, false, badRequestf(`exactly one of "point" and "points" must be set`)
	case wr.Point != nil:
		return []geom.Point{wr.Point.pt()}, true, nil
	case len(wr.Points) > 0:
		pts := make([]geom.Point, len(wr.Points))
		for i, p := range wr.Points {
			pts[i] = p.pt()
		}
		return pts, false, nil
	default:
		return nil, false, badRequestf(`missing "point" or "points"`)
	}
}

// handleInsert serves POST /v1/{ns}/insert. A 200 means the write is
// ACKNOWLEDGED: applied on a synchronous namespace, accepted into the
// queue on an async one (durable once drained — graceful shutdown
// drains, so acknowledged writes survive SIGTERM; kill -9 loses
// undrained ones, the documented async-commit trade).
func handleInsert(s *Server, ns *namespace, w http.ResponseWriter, r *http.Request) {
	var req writeReq
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	pts, single, err := req.validate()
	if err != nil {
		writeErr(w, err)
		return
	}
	if single {
		err = ns.ins.do(pts[0])
	} else {
		err = ns.db.BatchInsert(pts)
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Inserted int `json:"inserted"`
	}{len(pts)})
}

// handleDelete serves POST /v1/{ns}/delete, reporting how many of the
// batch were present and removed (on async namespaces: accepted — the
// hit/miss resolves at drain, exactly core.DB.Delete's contract).
func handleDelete(s *Server, ns *namespace, w http.ResponseWriter, r *http.Request) {
	var req writeReq
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	pts, single, err := req.validate()
	if err != nil {
		writeErr(w, err)
		return
	}
	removed := 0
	if single {
		res := ns.del.do(pts[0])
		if res.err != nil {
			writeErr(w, res.err)
			return
		}
		if res.removed {
			removed = 1
		}
	} else {
		got, err := ns.db.BatchDeleteRemoved(pts)
		if err != nil {
			writeErr(w, err)
			return
		}
		removed = len(got)
	}
	writeJSON(w, http.StatusOK, struct {
		Removed int `json:"removed"`
	}{removed})
}

func handleLen(s *Server, ns *namespace, w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Len int `json:"len"`
	}{ns.db.Len()})
}

// statsResp mirrors the DB's observability surface onto the wire.
type statsResp struct {
	Len        int                  `json:"len"`
	IOs        uint64               `json:"ios"`
	Queue      engine.QueueCounters `json:"queue"`
	Cache      engine.CacheCounters `json:"cache"`
	Resilience core.ResilienceStats `json:"resilience"`
	Recovery   core.RecoveryStats   `json:"recovery"`
	Snapshots  int                  `json:"open_snapshots"`
	// Rebalance reports shard-rebalancing activity; omitted for
	// namespaces opened without "rebalance": true.
	Rebalance *core.RebalanceStats `json:"rebalance,omitempty"`
}

func handleStats(s *Server, ns *namespace, w http.ResponseWriter, r *http.Request) {
	resp := statsResp{
		Len:        ns.db.Len(),
		IOs:        ns.db.Stats().IOs(),
		Queue:      ns.db.QueueCounters(),
		Cache:      ns.db.CacheCounters(),
		Resilience: ns.db.Resilience(),
		Recovery:   ns.db.Recover(),
		Snapshots:  ns.db.OpenSnapshots(),
	}
	if ns.cfg.Rebalance {
		rb := ns.db.RebalanceStats()
		resp.Rebalance = &rb
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSnapshotPin serves POST /v1/{ns}/snapshot: pin a point-in-time
// view and hand back its id. The client pages through it with query
// {"snapshot": id, "limit": k, "after_x": token} and releases it with
// DELETE — or lets the TTL reap it.
func handleSnapshotPin(s *Server, ns *namespace, w http.ResponseWriter, r *http.Request) {
	snap, err := ns.db.Snapshot()
	if err != nil {
		writeErr(w, err)
		return
	}
	deadline := s.renewFor()
	ns.snapMu.Lock()
	ns.nextSnap++
	id := "s" + strconv.Itoa(ns.nextSnap)
	ns.snaps[id] = &pinnedSnap{snap: snap, deadline: deadline}
	ns.snapMu.Unlock()
	writeJSON(w, http.StatusOK, struct {
		Snapshot string `json:"snapshot"`
		TTLMS    int64  `json:"ttl_ms"`
	}{id, s.cfg.SnapshotTTL.Milliseconds()})
}

func handleSnapshotClose(s *Server, ns *namespace, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ns.snapMu.Lock()
	ps, ok := ns.snaps[id]
	if ok {
		delete(ns.snaps, id)
	}
	ns.snapMu.Unlock()
	if !ok {
		writeErr(w, fmt.Errorf("serve: snapshot %q: %w", id, errUnknownSnapshot))
		return
	}
	ps.snap.Close()
	writeJSON(w, http.StatusOK, struct {
		Closed string `json:"closed"`
	}{id})
}
