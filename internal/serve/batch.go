// Group commit for single-point writes.
//
// The engine's batched paths (BatchInsert, BatchDeleteRemoved) take
// each structure or shard lock once per batch; the wire's unit of work
// is one point per request. The combiner bridges the two the way a WAL
// group-commits transactions: the first writer to arrive becomes the
// batch LEADER, gathers everything that queued behind it (optionally
// waiting a fixed window for stragglers), applies the whole batch with
// one engine call, and hands each waiter its own slot of the result.
//
// With window = 0 — the default — an uncontended write pays zero added
// latency: it is its own leader and its batch has one point. Batching
// emerges exactly when it pays: while a leader is inside the engine,
// every arriving writer parks on the queue, and whoever arrives first
// after the leader returns becomes the next leader and takes the whole
// accumulated queue in one call.
package serve

import (
	"sync"
	"time"

	"repro/internal/geom"
)

// combiner group-commits single-point writes. R is the per-point
// result type (error for inserts; delResult for deletes).
type combiner[R any] struct {
	mu      sync.Mutex
	queue   []waiter[R]
	leading bool

	window time.Duration
	apply  func(pts []geom.Point) []R
}

// waiter is one parked request: its point and the channel its slot of
// the batch result arrives on.
type waiter[R any] struct {
	pt   geom.Point
	done chan R
}

// newCombiner returns a combiner applying batches through apply, which
// must return exactly one R per input point, in order.
func newCombiner[R any](window time.Duration, apply func(pts []geom.Point) []R) *combiner[R] {
	return &combiner[R]{window: window, apply: apply}
}

// do submits one point and blocks until its batch is applied,
// returning this point's slot of the result.
func (c *combiner[R]) do(pt geom.Point) R {
	done := make(chan R, 1)
	c.mu.Lock()
	c.queue = append(c.queue, waiter[R]{pt: pt, done: done})
	if c.leading {
		// A leader is already collecting (or inside the engine); it —
		// or its successor — will take this waiter along.
		c.mu.Unlock()
		return <-done
	}
	c.leading = true
	c.mu.Unlock()

	if c.window > 0 {
		time.Sleep(c.window)
	}

	for {
		c.mu.Lock()
		batch := c.queue
		c.queue = nil
		if len(batch) == 0 {
			// Everything queued so far is applied; stop leading.
			c.leading = false
			c.mu.Unlock()
			return <-done
		}
		c.mu.Unlock()

		pts := make([]geom.Point, len(batch))
		for i, wtr := range batch {
			pts[i] = wtr.pt
		}
		results := c.apply(pts)
		for i, wtr := range batch {
			wtr.done <- results[i]
		}
		// Loop: writers may have queued while the engine ran; this
		// leader drains them too rather than making one of them block
		// anew as leader.
	}
}
