package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/emio"
	"repro/internal/geom"
	"repro/internal/load"
)

// Graceful-shutdown harness: a child process (this test binary
// re-executed with SKYLINED_SHUTDOWN_DIR set) serves a durable async
// namespace over a real listener and implements exactly cmd/skylined's
// SIGTERM ordering — stop accepting, drain in-flight requests, Close
// (drain + checkpoint). The parent loads it over HTTP, records every
// acknowledged write, SIGTERMs it mid-steam, waits for a clean exit,
// reopens the directory cold and proves no acknowledged write was
// lost.

const (
	shutdownDirEnv  = "SKYLINED_SHUTDOWN_DIR"
	shutdownAddrEnv = "SKYLINED_SHUTDOWN_ADDRFILE"
)

// TestShutdownChild is the child half; a no-op in a normal run.
func TestShutdownChild(t *testing.T) {
	dir := os.Getenv(shutdownDirEnv)
	if dir == "" {
		t.Skip("graceful-shutdown child; driven by TestGracefulShutdownNoLostAcks")
	}
	srv, err := New(Config{Namespaces: map[string]NamespaceConfig{
		"d": {B: 32, M: 32 * 32, Dir: dir,
			AsyncWrites: true, FlushPoints: 64, FlushIntervalMS: -1},
	}})
	if err != nil {
		fmt.Fprintf(os.Stderr, "child: %v\n", err)
		os.Exit(3)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "child listen: %v\n", err)
		os.Exit(3)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln) //errlint:ok Serve returns ErrServerClosed on the Shutdown below

	// Publish the picked port, atomically (write + rename).
	addrFile := os.Getenv(shutdownAddrEnv)
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		os.Exit(3)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		os.Exit(3)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM)
	<-sigc
	// cmd/skylined's ordering: stop admitting and wait out in-flight
	// requests first, close the namespaces second.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "child shutdown: %v\n", err)
		os.Exit(4)
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "child close: %v\n", err)
		os.Exit(4)
	}
	os.Exit(0)
}

func TestGracefulShutdownNoLostAcks(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	cmd := exec.Command(os.Args[0], "-test.run=^TestShutdownChild$")
	cmd.Env = append(os.Environ(),
		shutdownDirEnv+"="+filepath.Join(dir, "db"),
		shutdownAddrEnv+"="+addrFile)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting child: %v", err)
	}
	defer cmd.Process.Kill() //errlint:ok belt-and-braces if an assert fails first

	var addr string
	for deadline := time.Now().Add(10 * time.Second); ; {
		if blob, err := os.ReadFile(addrFile); err == nil {
			addr = strings.TrimSpace(string(blob))
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("child never published its address")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Write-heavy sequential load (conc 1 keeps the client's op order
	// the server's op order, so the acknowledged set is exact). The
	// SIGTERM lands mid-stream: ops still in flight either complete —
	// Shutdown waits them out, so their acks are binding — or fail
	// fast against the closed listener and never count.
	type loadOut struct {
		res *load.Result
		err error
	}
	loadc := make(chan loadOut, 1)
	go func() {
		res, err := load.Run(load.Config{
			BaseURL:   "http://" + addr,
			Namespace: "d",
			Ops:       4000,
			Conc:      1,
			ReadFrac:  0.25,
			Span:      1 << 16,
			Seed:      71,
		})
		loadc <- loadOut{res, err}
	}()
	time.Sleep(100 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signaling child: %v", err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("child exited dirty: %v", err)
	}
	out := <-loadc
	if out.err != nil {
		t.Fatalf("load: %v", out.err)
	}
	res := out.res
	t.Logf("load: %d ops acked (%d inserts, %d deletes), %d failed after drain began",
		res.Ops-res.Errors, res.Inserts, res.Deletes, res.Errors)
	if res.Inserts == 0 {
		t.Fatal("no insert was acknowledged before the SIGTERM; the test proved nothing")
	}

	// Reopen cold: every acknowledged write must have survived. (The
	// index may also hold writes whose 200 was cut off by the drain —
	// extras are allowed, losses are not.)
	want := res.Expected()
	re, err := core.Open(core.Options{Machine: emio.Config{B: 32, M: 32 * 32},
		Dynamic: true, Dir: filepath.Join(dir, "db")}, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close() //errlint:ok read-only reopen in a test
	lost := 0
	for p := range want {
		hit := re.RangeSkyline(geom.Rect{X1: p.X, X2: p.X, Y1: p.Y, Y2: p.Y})
		if len(hit) != 1 || hit[0] != p {
			lost++
			t.Errorf("acknowledged insert %v lost across graceful shutdown", p)
		}
	}
	if lost == 0 && re.Len() < len(want) {
		t.Errorf("reopened index has %d points, fewer than %d acknowledged", re.Len(), len(want))
	}
}
