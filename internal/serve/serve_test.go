package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/vfs"
)

// newTestServer starts a Server over cfg behind an httptest listener.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close() //errlint:ok idempotent cleanup; tests that care assert the first Close
	})
	return srv, hs
}

// call issues one JSON request and decodes the response body into out
// (which may be nil).
func call(t *testing.T, method, url string, body, out any) (int, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close() //errlint:ok test client
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("unmarshal %q: %v", raw, err)
		}
	}
	return resp.StatusCode, resp.Header
}

func wire(pts []geom.Point) []map[string]geom.Coord {
	out := make([]map[string]geom.Coord, len(pts))
	for i, p := range pts {
		out[i] = map[string]geom.Coord{"x": p.X, "y": p.Y}
	}
	return out
}

func pointsOf(resp queryResp) []geom.Point {
	out := make([]geom.Point, len(resp.Points))
	for i, p := range resp.Points {
		out[i] = geom.Point{X: p.X, Y: p.Y}
	}
	return out
}

func samePts(a, b []geom.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

var testNS = map[string]NamespaceConfig{"t": {B: 32, M: 32 * 32}}

// TestShapesVsOracle drives every query shape through the wire and
// compares byte-for-byte against the in-memory oracle.
func TestShapesVsOracle(t *testing.T) {
	_, hs := newTestServer(t, Config{Namespaces: testNS})
	pts := geom.GenUniform(500, 1<<14, 42)
	var ins struct {
		Inserted int `json:"inserted"`
	}
	if code, _ := call(t, "POST", hs.URL+"/v1/t/insert", map[string]any{"points": wire(pts)}, &ins); code != 200 {
		t.Fatalf("batch insert: status %d", code)
	}
	if ins.Inserted != len(pts) {
		t.Fatalf("inserted %d, want %d", ins.Inserted, len(pts))
	}

	const a, b, c = 3000, 11000, 7000
	cases := []struct {
		req  map[string]any
		rect geom.Rect
	}{
		{map[string]any{"shape": "skyline"}, geom.Rect{X1: geom.NegInf, X2: geom.PosInf, Y1: geom.NegInf, Y2: geom.PosInf}},
		{map[string]any{"shape": "top-open", "x1": a, "x2": b, "beta": c}, geom.TopOpen(a, b, c)},
		{map[string]any{"shape": "right-open", "x": a, "y1": c, "y2": b}, geom.RightOpen(a, c, b)},
		{map[string]any{"shape": "bottom-open", "x1": a, "x2": b, "y": c}, geom.BottomOpen(a, b, c)},
		{map[string]any{"shape": "left-open", "x": b, "y1": a, "y2": c}, geom.LeftOpen(b, a, c)},
		{map[string]any{"shape": "dominance", "x": a, "y": c}, geom.Dominance(a, c)},
		{map[string]any{"shape": "anti-dominance", "x": b, "y": c}, geom.AntiDominance(b, c)},
		{map[string]any{"shape": "contour", "x": a}, geom.Contour(a)},
		{map[string]any{"shape": "4-sided", "x1": a, "x2": b, "y1": 100, "y2": 12000}, geom.Rect{X1: a, X2: b, Y1: 100, Y2: 12000}},
	}
	for _, tc := range cases {
		var resp queryResp
		if code, _ := call(t, "POST", hs.URL+"/v1/t/query", tc.req, &resp); code != 200 {
			t.Fatalf("%v: status %d", tc.req, code)
		}
		want := geom.RangeSkyline(pts, tc.rect)
		if got := pointsOf(resp); !samePts(got, want) {
			t.Errorf("%v: got %d points, want %d", tc.req, len(got), len(want))
		}
	}
}

// TestPagination pages a skyline with limit/after_x and checks the
// concatenation equals the unpaginated answer.
func TestPagination(t *testing.T) {
	_, hs := newTestServer(t, Config{Namespaces: testNS})
	pts := geom.GenStaircase(200, 7) // all maximal: 200-point skyline
	call(t, "POST", hs.URL+"/v1/t/insert", map[string]any{"points": wire(pts)}, nil)

	var full queryResp
	call(t, "POST", hs.URL+"/v1/t/query", map[string]any{"shape": "skyline"}, &full)
	if len(full.Points) != 200 {
		t.Fatalf("staircase skyline has %d points, want 200", len(full.Points))
	}

	var paged []geom.Point
	req := map[string]any{"shape": "skyline", "limit": 17}
	pages := 0
	for {
		var resp queryResp
		if code, _ := call(t, "POST", hs.URL+"/v1/t/query", req, &resp); code != 200 {
			t.Fatalf("page %d: status %d", pages, code)
		}
		paged = append(paged, pointsOf(resp)...)
		pages++
		if !resp.More {
			break
		}
		if resp.NextAfterX == nil {
			t.Fatal("more=true but no next_after_x")
		}
		req["after_x"] = *resp.NextAfterX
		if pages > 50 {
			t.Fatal("pagination did not terminate")
		}
	}
	if !samePts(paged, pointsOf(full)) {
		t.Fatalf("paged walk gave %d points, full answer %d", len(paged), len(full.Points))
	}
	if pages != 12 { // ceil(200/17)
		t.Errorf("took %d pages, want 12", pages)
	}
}

// TestSnapshotLifecycle pins a snapshot, mutates the live index, and
// checks the pinned view stays at the pin point until closed.
func TestSnapshotLifecycle(t *testing.T) {
	_, hs := newTestServer(t, Config{Namespaces: testNS})
	pts := geom.GenUniform(300, 1<<14, 9)
	call(t, "POST", hs.URL+"/v1/t/insert", map[string]any{"points": wire(pts)}, nil)

	var pin struct {
		Snapshot string `json:"snapshot"`
	}
	if code, _ := call(t, "POST", hs.URL+"/v1/t/snapshot", nil, &pin); code != 200 || pin.Snapshot == "" {
		t.Fatalf("pin failed: %q", pin.Snapshot)
	}
	var before queryResp
	call(t, "POST", hs.URL+"/v1/t/query", map[string]any{"shape": "skyline", "snapshot": pin.Snapshot}, &before)

	// A new global maximum changes the live skyline but not the pin.
	call(t, "POST", hs.URL+"/v1/t/insert", map[string]any{"point": map[string]geom.Coord{"x": 1 << 20, "y": 1 << 20}}, nil)
	var after, live queryResp
	call(t, "POST", hs.URL+"/v1/t/query", map[string]any{"shape": "skyline", "snapshot": pin.Snapshot}, &after)
	call(t, "POST", hs.URL+"/v1/t/query", map[string]any{"shape": "skyline"}, &live)
	if !samePts(pointsOf(before), pointsOf(after)) {
		t.Error("snapshot answer changed after a live write")
	}
	if samePts(pointsOf(live), pointsOf(after)) {
		t.Error("live answer still equals the snapshot's after a skyline-changing write")
	}

	if code, _ := call(t, "DELETE", hs.URL+"/v1/t/snapshot/"+pin.Snapshot, nil, nil); code != 200 {
		t.Fatalf("snapshot close: status %d", code)
	}
	if code, _ := call(t, "POST", hs.URL+"/v1/t/query", map[string]any{"shape": "skyline", "snapshot": pin.Snapshot}, nil); code != 404 {
		t.Fatalf("query on closed snapshot: status %d, want 404", code)
	}
	if code, _ := call(t, "DELETE", hs.URL+"/v1/t/snapshot/nope", nil, nil); code != 404 {
		t.Fatal("closing an unknown snapshot should 404")
	}
}

// TestSnapshotTTL lets the janitor reap an idle pinned snapshot.
func TestSnapshotTTL(t *testing.T) {
	_, hs := newTestServer(t, Config{Namespaces: testNS, SnapshotTTL: 50 * time.Millisecond})
	call(t, "POST", hs.URL+"/v1/t/insert", map[string]any{"points": wire(geom.GenUniform(50, 1<<12, 3))}, nil)
	var pin struct {
		Snapshot string `json:"snapshot"`
	}
	call(t, "POST", hs.URL+"/v1/t/snapshot", nil, &pin)
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _ := call(t, "POST", hs.URL+"/v1/t/query", map[string]any{"shape": "skyline", "snapshot": pin.Snapshot}, nil)
		if code == 404 {
			return // reaped
		}
		if time.Now().After(deadline) {
			t.Fatal("janitor never reaped the expired snapshot")
		}
		// Only off-TTL polls would renew it; wait out the deadline
		// without touching the snapshot.
		time.Sleep(1200 * time.Millisecond)
	}
}

// TestStatusTable pins the error → status mapping docs/API.md promises.
func TestStatusTable(t *testing.T) {
	cases := []struct {
		err    error
		status int
		code   string
	}{
		{nil, 200, "ok"},
		{fmt.Errorf("x: %w", core.ErrBackpressure), 429, "backpressure"},
		{fmt.Errorf("x: %w", core.ErrDegraded), 503, "degraded"},
		{fmt.Errorf("x: %w", core.ErrClosed), 503, "closed"},
		{fmt.Errorf("x: %w", core.ErrStatic), 409, "static"},
		{fmt.Errorf("x: %w", errUnknownNamespace), 404, "not-found"},
		{fmt.Errorf("x: %w", errUnknownSnapshot), 404, "not-found"},
		{badRequestf("no"), 400, "bad-request"},
		{errors.New("surprise"), 500, "internal"},
	}
	for _, tc := range cases {
		status, code := Status(tc.err)
		if status != tc.status || code != tc.code {
			t.Errorf("Status(%v) = %d %q, want %d %q", tc.err, status, code, tc.status, tc.code)
		}
	}
}

// TestErrorMappingLive exercises the real failure paths end to end:
// 404 unknown namespace, 400 malformed requests, 409 static, 429 shed
// with Retry-After, 503 degraded (reads keep serving), 503 closed.
func TestErrorMappingLive(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, 1,
		// One fatal fault on the 30th data write: enough room for the
		// open, then the namespace degrades mid-stream.
		vfs.Fault{Op: vfs.OpWriteAt, After: 29, Nth: 1, Err: syscall.EIO},
	)
	srv, hs := newTestServer(t, Config{
		FS: ffs,
		Namespaces: map[string]NamespaceConfig{
			"t":      {B: 32, M: 32 * 32},
			"static": {B: 32, M: 32 * 32, Static: true},
			"shed": {B: 32, M: 32 * 32, AsyncWrites: true,
				FlushPoints: 1 << 20, FlushIntervalMS: -1,
				MaxBuffered: 1, ShedWrites: true},
			"fragile": {B: 32, M: 32 * 32, Dir: dir, SyncWAL: true},
		},
	})

	pt := func(i int) map[string]any {
		return map[string]any{"point": map[string]geom.Coord{"x": geom.Coord(i), "y": geom.Coord(1000 - i)}}
	}

	if code, _ := call(t, "POST", hs.URL+"/v1/nope/query", map[string]any{"shape": "skyline"}, nil); code != 404 {
		t.Errorf("unknown namespace: status %d, want 404", code)
	}
	var errResp struct {
		Code string `json:"code"`
	}
	if code, _ := call(t, "POST", hs.URL+"/v1/t/query", map[string]any{"shape": "pentagon"}, &errResp); code != 400 || errResp.Code != "bad-request" {
		t.Errorf("unknown shape: %d %q, want 400 bad-request", code, errResp.Code)
	}
	if code, _ := call(t, "POST", hs.URL+"/v1/t/query", map[string]any{"shape": "top-open", "x1": 1}, nil); code != 400 {
		t.Errorf("missing shape params: status %d, want 400", code)
	}
	if code, _ := call(t, "POST", hs.URL+"/v1/t/insert", map[string]any{}, nil); code != 400 {
		t.Errorf("empty write: status %d, want 400", code)
	}

	if code, _ := call(t, "POST", hs.URL+"/v1/static/insert", pt(1), &errResp); code != 409 || errResp.Code != "static" {
		t.Errorf("static write: %d %q, want 409 static", code, errResp.Code)
	}
	if code, _ := call(t, "POST", hs.URL+"/v1/static/query", map[string]any{"shape": "skyline"}, nil); code != 200 {
		t.Errorf("static read: status %d, want 200", code)
	}

	// Shed: cap 1 slab, no drain trigger — the second write sheds.
	sawShed := false
	for i := 0; i < 10; i++ {
		code, hdr := call(t, "POST", hs.URL+"/v1/shed/insert", pt(i), &errResp)
		if code == 429 {
			if errResp.Code != "backpressure" {
				t.Errorf("shed code %q, want backpressure", errResp.Code)
			}
			if hdr.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
			sawShed = true
			break
		}
	}
	if !sawShed {
		t.Error("MaxBuffered=1 + ShedWrites never returned 429")
	}

	// Degraded: writes fail from the injected fatal fault on, reads
	// keep serving, healthz flips.
	sawDegraded := false
	for i := 0; i < 200; i++ {
		code, hdr := call(t, "POST", hs.URL+"/v1/fragile/insert", pt(i), &errResp)
		if code == 503 {
			if errResp.Code != "degraded" {
				t.Fatalf("fragile write failed with %q, want degraded", errResp.Code)
			}
			if hdr.Get("X-Skyline-Degraded") == "" && errResp.Code == "degraded" {
				// Header only set when the latch (not the raw fault)
				// answered; either is a valid first response.
				_ = hdr
			}
			sawDegraded = true
			break
		}
		if code != 200 {
			t.Fatalf("fragile insert %d: unexpected status %d %q", i, code, errResp.Code)
		}
	}
	if !sawDegraded {
		t.Fatal("fault schedule never degraded the namespace")
	}
	if code, _ := call(t, "POST", hs.URL+"/v1/fragile/query", map[string]any{"shape": "skyline"}, nil); code != 200 {
		t.Errorf("degraded read: status %d, want 200", code)
	}
	if code, _ := call(t, "POST", hs.URL+"/v1/fragile/insert", pt(999), &errResp); code != 503 || errResp.Code != "degraded" {
		t.Errorf("post-latch write: %d %q, want 503 degraded", code, errResp.Code)
	}
	var health struct {
		Status     string                       `json:"status"`
		Namespaces map[string]map[string]string `json:"namespaces"`
	}
	if code, _ := call(t, "GET", hs.URL+"/healthz", nil, &health); code != 503 || health.Namespaces["fragile"]["status"] != "degraded" {
		t.Errorf("healthz after degrade: %d %+v", code, health)
	}

	// Closed: after Close every request is a 503 "closed".
	if err := srv.Close(); err == nil || !errors.Is(err, core.ErrDegraded) {
		// fragile's skipped checkpoint must surface the degraded
		// latch from Close, not swallow it.
		t.Errorf("Close on a degraded durable namespace returned %v, want ErrDegraded", err)
	}
	if code, _ := call(t, "POST", hs.URL+"/v1/t/query", map[string]any{"shape": "skyline"}, &errResp); code != 503 || errResp.Code != "closed" {
		t.Errorf("post-close request: %d %q, want 503 closed", code, errResp.Code)
	}
}

// TestConcurrentNamespaces hammers several namespaces from many
// goroutines at once — the multi-tenant race test (run under -race in
// CI).
func TestConcurrentNamespaces(t *testing.T) {
	nss := map[string]NamespaceConfig{}
	for i := 0; i < 4; i++ {
		nss[fmt.Sprintf("n%d", i)] = NamespaceConfig{B: 32, M: 32 * 32, Shards: 2, Workers: 2, CacheEntries: 32}
	}
	_, hs := newTestServer(t, Config{Namespaces: nss})

	const perNS, writers = 60, 3
	var wg sync.WaitGroup
	errc := make(chan error, 4*writers+4)
	for i := 0; i < 4; i++ {
		ns := fmt.Sprintf("n%d", i)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(ns string, w int) {
				defer wg.Done()
				for k := 0; k < perNS; k++ {
					// Unique coordinates per (ns is its own DB; w,k
					// unique within it) keep general position.
					id := w*perNS + k
					body := map[string]any{"point": map[string]geom.Coord{
						"x": geom.Coord(id*7 + 1), "y": geom.Coord(1_000_000 - id*13)}}
					if code, _ := call(t, "POST", hs.URL+"/v1/"+ns+"/insert", body, nil); code != 200 {
						errc <- fmt.Errorf("%s insert %d: status %d", ns, id, code)
						return
					}
				}
			}(ns, w)
		}
		wg.Add(1)
		go func(ns string) {
			defer wg.Done()
			for k := 0; k < perNS; k++ {
				if code, _ := call(t, "POST", hs.URL+"/v1/"+ns+"/query", map[string]any{"shape": "skyline"}, nil); code != 200 {
					errc <- fmt.Errorf("%s query: status %d", ns, code)
					return
				}
			}
		}(ns)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	for i := 0; i < 4; i++ {
		var ln struct {
			Len int `json:"len"`
		}
		call(t, "GET", hs.URL+fmt.Sprintf("/v1/n%d/len", i), nil, &ln)
		if ln.Len != writers*perNS {
			t.Errorf("n%d has %d points, want %d", i, ln.Len, writers*perNS)
		}
	}
}

// TestStatsEndpoint sanity-checks the observability surface.
func TestStatsEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Config{Namespaces: map[string]NamespaceConfig{
		"t": {B: 32, M: 32 * 32, CacheEntries: 16, AsyncWrites: true, FlushPoints: 4, FlushIntervalMS: -1},
	}})
	call(t, "POST", hs.URL+"/v1/t/insert", map[string]any{"points": wire(geom.GenUniform(64, 1<<12, 5))}, nil)
	call(t, "POST", hs.URL+"/v1/t/query", map[string]any{"shape": "skyline"}, nil)
	call(t, "POST", hs.URL+"/v1/t/query", map[string]any{"shape": "skyline"}, nil)
	var stats statsResp
	if code, _ := call(t, "GET", hs.URL+"/v1/t/stats", nil, &stats); code != 200 {
		t.Fatalf("stats: status %d", code)
	}
	if stats.Len != 64 {
		t.Errorf("stats len %d, want 64", stats.Len)
	}
	if stats.Queue.Enqueued == 0 {
		t.Error("async namespace reports zero enqueued")
	}
	if stats.Cache.Hits == 0 {
		t.Error("repeated identical query never hit the cache")
	}
}

// TestMeasureIO checks the per-query I/O cost surfaces when enabled
// and stays absent when not.
func TestMeasureIO(t *testing.T) {
	_, hs := newTestServer(t, Config{Namespaces: testNS, MeasureIO: true})
	call(t, "POST", hs.URL+"/v1/t/insert", map[string]any{"points": wire(geom.GenUniform(400, 1<<14, 11))}, nil)
	var resp queryResp
	call(t, "POST", hs.URL+"/v1/t/query", map[string]any{"shape": "contour", "x": 0}, &resp)
	if resp.IOs == nil {
		t.Fatal("measure_io on but no ios in response")
	}

	_, hs2 := newTestServer(t, Config{Namespaces: testNS})
	call(t, "POST", hs2.URL+"/v1/t/insert", map[string]any{"points": wire(geom.GenUniform(50, 1<<12, 12))}, nil)
	var resp2 queryResp
	call(t, "POST", hs2.URL+"/v1/t/query", map[string]any{"shape": "skyline"}, &resp2)
	if resp2.IOs != nil {
		t.Error("measure_io off but ios present")
	}
}

// TestDeleteRemovedCount checks the wire reports how many of a delete
// batch were actually present.
func TestDeleteRemovedCount(t *testing.T) {
	_, hs := newTestServer(t, Config{Namespaces: testNS})
	pts := geom.GenUniform(20, 1<<12, 21)
	call(t, "POST", hs.URL+"/v1/t/insert", map[string]any{"points": wire(pts)}, nil)

	var del struct {
		Removed int `json:"removed"`
	}
	// Half present, half absent (GenUniform coordinates are < 1<<12).
	batch := append(wire(pts[:5]), wire([]geom.Point{{X: 1 << 20, Y: 1 << 20}, {X: 1<<20 + 1, Y: 1<<20 + 1}})...)
	if code, _ := call(t, "POST", hs.URL+"/v1/t/delete", map[string]any{"points": batch}, &del); code != 200 {
		t.Fatalf("batch delete: status %d", code)
	}
	if del.Removed != 5 {
		t.Errorf("removed %d, want 5", del.Removed)
	}
	var ln struct {
		Len int `json:"len"`
	}
	call(t, "GET", hs.URL+"/v1/t/len", nil, &ln)
	if ln.Len != 15 {
		t.Errorf("len %d after deletes, want 15", ln.Len)
	}

	// Single-point deletes through the combiner report per-point hits.
	call(t, "POST", hs.URL+"/v1/t/delete", map[string]any{"point": wire(pts[6:7])[0]}, &del)
	if del.Removed != 1 {
		t.Errorf("present single delete removed %d, want 1", del.Removed)
	}
	call(t, "POST", hs.URL+"/v1/t/delete", map[string]any{"point": wire(pts[6:7])[0]}, &del)
	if del.Removed != 0 {
		t.Errorf("repeat single delete removed %d, want 0", del.Removed)
	}
}
