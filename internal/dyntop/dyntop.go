// Package dyntop implements the dynamic top-open range skyline structure
// of Theorem 4 (§4.2): an (a,2a)-tree over the mirrored point set
// P̃ = {(x, −y)}, augmented with confluently persistent I/O-CPQAs, with
//
//	query  O(log_{2B^ε}(n/B) + k/B^{1−ε}) I/Os,
//	update O(log_{2B^ε}(n/B)) I/Os,
//	space  O(n/B) blocks, construction O(n/B) I/Os after x-sorting (SABE),
//
// for any parameter 0 ≤ ε ≤ 1. The base tree has fan-out a = 2⌈B^ε⌉ and
// leaves of [B, 2B] points; the CPQAs use buffer size b = ⌊B^{1−ε}⌋, so
// the critical records of a node's Θ(B^ε) children total O(B) words and
// fit in the node's O(1)-block representative block. A point (x, y)
// becomes the element (key = −y, aux = x) inserted at "time" x; a point
// is attrited exactly when it is dominated (Figure 7), so a node's queue
// — the left-to-right catenation of its children's queues — holds the
// skyline of its subtree, and a top-open query drains the catenation of
// O(log) canonical queues until y < β.
package dyntop

import (
	"math"
	"sort"

	"repro/internal/cpqa"
	"repro/internal/emio"
	"repro/internal/geom"
)

type node struct {
	parent   *node
	children []*node // nil for leaves

	// Leaves hold the raw points sorted by x in a span of their own.
	pts      []geom.Point
	ptsBlock emio.BlockID
	ptsWords int

	// Every node carries the I/O-CPQA over its subtree and, for
	// internal nodes, the packed representative block holding copies
	// of the children's critical records.
	q        *cpqa.Queue
	repBlock emio.BlockID
	repWords int

	minX, maxX geom.Coord
}

func (nd *node) leaf() bool { return nd.children == nil }

// Tree is the dynamic top-open index.
type Tree struct {
	disk *emio.Disk
	eps  float64
	a    int // internal fan-out in [a, 2a]
	b    int // CPQA buffer parameter
	kMin int // leaf occupancy in [kMin, 2*kMin]
	root *node
	n    int
}

// New returns an empty tree with the given ε.
func New(d *emio.Disk, eps float64) *Tree {
	if eps < 0 || eps > 1 {
		panic("dyntop: epsilon must be in [0,1]")
	}
	B := float64(d.Config().B)
	a := int(math.Ceil(2 * math.Pow(B, eps)))
	if a < 2 {
		a = 2
	}
	b := int(math.Pow(B, 1-eps))
	if b < 1 {
		b = 1
	}
	kMin := d.Config().B
	if kMin < 4 {
		kMin = 4
	}
	return &Tree{disk: d, eps: eps, a: a, b: b, kMin: kMin}
}

// BuildSABE bulk-loads the tree from points sorted by x in O(n/B) I/Os.
func BuildSABE(d *emio.Disk, eps float64, pts []geom.Point) *Tree {
	t := New(d, eps)
	for i := 1; i < len(pts); i++ {
		if pts[i-1].X >= pts[i].X {
			panic("dyntop: input not sorted by x")
		}
	}
	if len(pts) == 0 {
		return t
	}
	t.n = len(pts)
	// Leaves of ~1.5·kMin points.
	target := t.kMin + t.kMin/2
	var level []*node
	for lo := 0; lo < len(pts); lo += target {
		hi := lo + target
		if hi > len(pts) {
			hi = len(pts)
		}
		chunk := append([]geom.Point(nil), pts[lo:hi]...)
		// Avoid an undersized final leaf.
		if len(chunk) < t.kMin && len(level) > 0 {
			prev := level[len(level)-1]
			cut := len(prev.pts) - t.kMin/2
			steal := append([]geom.Point(nil), prev.pts[cut:]...)
			chunk = append(steal, chunk...)
			prev.pts = prev.pts[:cut]
			t.refreshLeaf(prev)
		}
		nd := &node{pts: chunk}
		t.refreshLeaf(nd)
		level = append(level, nd)
	}
	// Internal levels of ~1.5a children.
	for len(level) > 1 {
		fan := t.a + t.a/2
		var up []*node
		for lo := 0; lo < len(level); lo += fan {
			hi := lo + fan
			if hi > len(level) {
				hi = len(level)
			}
			kids := append([]*node(nil), level[lo:hi]...)
			if len(kids) < t.a && len(up) > 0 {
				prev := up[len(up)-1]
				steal := prev.children[len(prev.children)-t.a/2:]
				prev.children = prev.children[:len(prev.children)-t.a/2]
				kids = append(append([]*node(nil), steal...), kids...)
				t.refreshInternal(prev)
			}
			nd := &node{children: kids}
			for _, c := range kids {
				c.parent = nd
			}
			t.refreshInternal(nd)
			up = append(up, nd)
		}
		level = up
	}
	t.root = level[0]
	return t
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.n }

// Epsilon returns the structure's ε parameter.
func (t *Tree) Epsilon() float64 { return t.eps }

// elem converts a point to its mirrored CPQA element.
func elem(p geom.Point) cpqa.Elem { return cpqa.Elem{Key: -p.Y, Aux: p.X} }

// point converts back.
func point(e cpqa.Elem) geom.Point { return geom.Point{X: e.Aux, Y: -e.Key} }

// staircase returns the mirrored-skyline elements of points sorted by x:
// the strictly increasing (in key = −y) subsequence that survives
// attrition. Host CPU only; used when (re)building leaf queues.
func staircase(pts []geom.Point) []cpqa.Elem {
	var out []cpqa.Elem
	// Scan right to left keeping the running maximum y.
	best := geom.Coord(math.MinInt64)
	idx := make([]int, 0, len(pts))
	for i := len(pts) - 1; i >= 0; i-- {
		if pts[i].Y > best {
			idx = append(idx, i)
			best = pts[i].Y
		}
	}
	for i := len(idx) - 1; i >= 0; i-- {
		out = append(out, elem(pts[idx[i]]))
	}
	return out
}

// refreshLeaf rewrites a leaf's point span and rebuilds its queue:
// O(1) I/Os (a leaf holds O(B) points).
func (t *Tree) refreshLeaf(nd *node) {
	if nd.ptsWords > 0 {
		t.disk.FreeSpan(nd.ptsBlock, nd.ptsWords)
	}
	nd.ptsWords = 2 * len(nd.pts)
	if nd.ptsWords > 0 {
		nd.ptsBlock = t.disk.AllocSpan(nd.ptsWords)
		t.disk.WriteSpan(nd.ptsBlock, nd.ptsWords)
	}
	nd.q = cpqa.FromAscending(t.disk, t.b, staircase(nd.pts)).BiasUntilReady()
	if len(nd.pts) > 0 {
		nd.minX, nd.maxX = nd.pts[0].X, nd.pts[len(nd.pts)-1].X
	}
}

// refreshInternal rebuilds an internal node's queue as the Lemma 7
// catenation of its children's queues and rewrites its representative
// block: O(1) I/Os beyond the children's already-resident criticals.
func (t *Tree) refreshInternal(nd *node) {
	// Read the (old) representative block to bring the children's
	// critical records into memory, then catenate without further
	// charges.
	if nd.repWords > 0 {
		t.disk.ReadSpan(nd.repBlock, nd.repWords)
		t.disk.FreeSpan(nd.repBlock, nd.repWords)
		nd.repWords = 0
	}
	qs := make([]*cpqa.Queue, 0, len(nd.children))
	var unpins []func()
	for _, c := range nd.children {
		c.q.AdmitCritical()
		unpins = append(unpins, c.q.PinCritical())
		qs = append(qs, c.q)
	}
	nd.q = cpqa.CatenateAll(qs).BiasUntilReady()
	for _, u := range unpins {
		u()
	}
	nd.minX = nd.children[0].minX
	nd.maxX = nd.children[len(nd.children)-1].maxX
	// Pack copies of the children's critical records.
	w := 0
	for _, c := range nd.children {
		w += c.q.CriticalWords()
	}
	if w == 0 {
		w = 1
	}
	nd.repWords = w
	nd.repBlock = t.disk.AllocSpan(w)
	t.disk.WriteSpan(nd.repBlock, w)
}

// leafFor descends to the leaf whose x-range should contain x.
func (t *Tree) leafFor(x geom.Coord) *node {
	nd := t.root
	for nd != nil && !nd.leaf() {
		t.disk.ReadSpan(nd.repBlock, nd.repWords)
		chosen := nd.children[len(nd.children)-1]
		for _, c := range nd.children {
			if x <= c.maxX {
				chosen = c
				break
			}
		}
		nd = chosen
	}
	return nd
}

// Insert adds point p (whose x and y must not collide with indexed
// points; callers enforce general position). O(log²_{B^ε}(n/B)) I/Os.
func (t *Tree) Insert(p geom.Point) {
	if t.root == nil {
		t.root = &node{pts: []geom.Point{p}}
		t.refreshLeaf(t.root)
		t.n = 1
		return
	}
	leaf := t.leafFor(p.X)
	t.disk.ReadSpan(leaf.ptsBlock, leaf.ptsWords)
	i := sort.Search(len(leaf.pts), func(j int) bool { return leaf.pts[j].X >= p.X })
	// Copy-on-write: a pinned snapshot may share the old array, so the
	// insert builds a fresh one instead of shifting in place. The copy
	// is O(B) host words, dominated by the refreshLeaf rebuild below.
	np := make([]geom.Point, len(leaf.pts)+1)
	copy(np, leaf.pts[:i])
	np[i] = p
	copy(np[i+1:], leaf.pts[i:])
	leaf.pts = np
	t.n++
	t.refreshLeaf(leaf)
	t.rebalanceUp(leaf)
}

// Delete removes the point with the given coordinates; it reports
// whether the point was present. O(log²_{B^ε}(n/B)) I/Os.
func (t *Tree) Delete(p geom.Point) bool {
	if t.root == nil {
		return false
	}
	leaf := t.leafFor(p.X)
	t.disk.ReadSpan(leaf.ptsBlock, leaf.ptsWords)
	i := sort.Search(len(leaf.pts), func(j int) bool { return leaf.pts[j].X >= p.X })
	if i >= len(leaf.pts) || leaf.pts[i] != p {
		return false
	}
	// Copy-on-write, as in Insert: never shift a possibly-shared array.
	np := make([]geom.Point, 0, len(leaf.pts)-1)
	np = append(np, leaf.pts[:i]...)
	np = append(np, leaf.pts[i+1:]...)
	leaf.pts = np
	t.n--
	t.refreshLeaf(leaf)
	t.rebalanceUp(leaf)
	return true
}

// rebalanceUp restores occupancy invariants from a modified node to the
// root, rebuilding every ancestor's queue and representative block.
func (t *Tree) rebalanceUp(nd *node) {
	for nd != nil {
		par := nd.parent
		if nd.leaf() {
			t.fixLeaf(nd)
		} else {
			t.fixInternal(nd)
		}
		if par != nil {
			t.refreshInternal(par)
		}
		nd = par
	}
}

func (t *Tree) fixLeaf(nd *node) {
	par := nd.parent
	switch {
	case len(nd.pts) > 2*t.kMin:
		half := len(nd.pts) / 2
		right := &node{pts: append([]geom.Point(nil), nd.pts[half:]...), parent: par}
		nd.pts = nd.pts[:half]
		t.refreshLeaf(nd)
		t.refreshLeaf(right)
		if par == nil {
			t.growRoot(nd, right)
		} else {
			insertChildAfter(par, nd, right)
		}
	case len(nd.pts) < t.kMin && par != nil:
		sib, after := sibling(par, nd)
		t.disk.ReadSpan(sib.ptsBlock, sib.ptsWords)
		var merged []geom.Point
		if after {
			merged = append(append([]geom.Point(nil), nd.pts...), sib.pts...)
		} else {
			merged = append(append([]geom.Point(nil), sib.pts...), nd.pts...)
		}
		removeChild(par, sib)
		t.disk.FreeSpan(sib.ptsBlock, sib.ptsWords)
		nd.pts = merged
		if len(nd.pts) > 2*t.kMin {
			t.refreshLeaf(nd)
			t.fixLeaf(nd) // split back
		} else {
			t.refreshLeaf(nd)
		}
	case par == nil && len(nd.pts) == 0:
		t.root = nil
	}
}

func (t *Tree) fixInternal(nd *node) {
	par := nd.parent
	switch {
	case len(nd.children) > 2*t.a:
		half := len(nd.children) / 2
		right := &node{children: append([]*node(nil), nd.children[half:]...), parent: par}
		nd.children = nd.children[:half]
		for _, c := range right.children {
			c.parent = right
		}
		t.refreshInternal(nd)
		t.refreshInternal(right)
		if par == nil {
			t.growRoot(nd, right)
		} else {
			insertChildAfter(par, nd, right)
		}
	case par == nil && len(nd.children) == 1:
		// Shrink the root.
		t.root = nd.children[0]
		t.root.parent = nil
	case len(nd.children) < t.a && par != nil:
		sib, after := sibling(par, nd)
		var merged []*node
		if after {
			merged = append(append([]*node(nil), nd.children...), sib.children...)
		} else {
			merged = append(append([]*node(nil), sib.children...), nd.children...)
		}
		removeChild(par, sib)
		if sib.repWords > 0 {
			t.disk.FreeSpan(sib.repBlock, sib.repWords)
		}
		nd.children = merged
		for _, c := range nd.children {
			c.parent = nd
		}
		if len(nd.children) > 2*t.a {
			t.refreshInternal(nd)
			t.fixInternal(nd)
		} else {
			t.refreshInternal(nd)
		}
	}
}

func (t *Tree) growRoot(left, right *node) {
	r := &node{children: []*node{left, right}}
	left.parent, right.parent = r, r
	t.refreshInternal(r)
	t.root = r
}

func sibling(par, nd *node) (*node, bool) {
	for i, c := range par.children {
		if c == nd {
			if i+1 < len(par.children) {
				return par.children[i+1], true
			}
			return par.children[i-1], false
		}
	}
	panic("dyntop: node not found among parent's children")
}

func insertChildAfter(par, nd, right *node) {
	for i, c := range par.children {
		if c == nd {
			par.children = append(par.children, nil)
			copy(par.children[i+2:], par.children[i+1:])
			par.children[i+1] = right
			return
		}
	}
	panic("dyntop: node not found for insertChildAfter")
}

func removeChild(par, nd *node) {
	for i, c := range par.children {
		if c == nd {
			par.children = append(par.children[:i], par.children[i+1:]...)
			return
		}
	}
	panic("dyntop: removeChild target missing")
}

// view is the read-only query machinery, shared between the live tree
// and its pinned snapshots: everything a top-open query needs is the
// root, the CPQA buffer parameter and the disk the I/Os are charged to.
type view struct {
	disk *emio.Disk
	b    int
	root *node
}

// Query answers the top-open query [x1,x2] × [β, ∞): the maximal points
// of the indexed set inside the rectangle, in increasing-x order.
// O(log_{2B^ε}(n/B) + k/B^{1−ε}) I/Os.
func (t *Tree) Query(x1, x2, beta geom.Coord) []geom.Point {
	return view{disk: t.disk, b: t.b, root: t.root}.query(x1, x2, beta)
}

func (v view) query(x1, x2, beta geom.Coord) []geom.Point {
	if v.root == nil || x1 > x2 {
		return nil
	}
	var qs []*cpqa.Queue
	var unpins []func()
	v.collect(v.root, x1, x2, &qs, &unpins)
	merged := cpqa.CatenateAll(qs)
	for _, u := range unpins {
		u()
	}
	var out []geom.Point
	for merged != nil && !merged.Empty() {
		e, nq, ok := merged.DeleteMin()
		if !ok || -e.Key < beta {
			break
		}
		out = append(out, point(e))
		merged = nq
	}
	// Keys come out ascending (= descending y = ascending x).
	return out
}

// collect gathers, in ascending x order, the queues covering [x1,x2]:
// whole-node queues for maximal contained subtrees and fresh partial
// queues for the boundary leaves.
func (v view) collect(nd *node, x1, x2 geom.Coord, qs *[]*cpqa.Queue, unpins *[]func()) {
	if nd.maxX < x1 || nd.minX > x2 || (nd.leaf() && len(nd.pts) == 0) {
		return
	}
	if nd.leaf() {
		v.disk.ReadSpan(nd.ptsBlock, nd.ptsWords)
		if nd.minX >= x1 && nd.maxX <= x2 {
			nd.q.AdmitCritical()
			*unpins = append(*unpins, nd.q.PinCritical())
			*qs = append(*qs, nd.q)
			return
		}
		lo := sort.Search(len(nd.pts), func(j int) bool { return nd.pts[j].X >= x1 })
		hi := sort.Search(len(nd.pts), func(j int) bool { return nd.pts[j].X > x2 })
		if lo >= hi {
			return
		}
		*qs = append(*qs, cpqa.FromAscending(v.disk, v.b, staircase(nd.pts[lo:hi])))
		return
	}
	// Internal: one representative-block read makes every child's
	// critical records resident.
	v.disk.ReadSpan(nd.repBlock, nd.repWords)
	for _, c := range nd.children {
		if c.maxX < x1 || c.minX > x2 {
			continue
		}
		if c.minX >= x1 && c.maxX <= x2 {
			c.q.AdmitCritical()
			*unpins = append(*unpins, c.q.PinCritical())
			*qs = append(*qs, c.q)
			continue
		}
		v.collect(c, x1, x2, qs, unpins)
	}
}

// Handle is an immutable point-in-time view of a Tree, pinned by
// Snapshot. It answers Query from the captured roots while the live
// tree keeps mutating; the CPQA queues it reaches are confluently
// persistent (no operation ever mutates a record), so the only state
// the handle must protect is the base tree's node graph — captured by
// copy — and the leaf/representative spans the live tree recycles,
// which the caller protects with an emio retention
// (Disk.RetainFrees) opened before Snapshot and released when the
// handle is dropped. Handles perform no I/O at pin time.
type Handle struct {
	view
	n int
}

// Snapshot captures the current tree as an immutable Handle: the node
// graph is copied (host pointers only — the queues, point arrays and
// block ids are shared with the live tree, which copy-on-writes its
// leaf arrays and never mutates a published queue), so the capture
// charges zero simulated I/Os and costs O(n/B) host words. Callers
// composing with concurrent updaters must hold the structure's
// external lock across the call and open a retention on the disk
// first; see internal/shard.Engine.Snapshot for the composed recipe.
func (t *Tree) Snapshot() *Handle {
	return &Handle{view: view{disk: t.disk, b: t.b, root: cloneNodes(t.root, nil)}, n: t.n}
}

// cloneNodes deep-copies the node graph. Shared payloads (pts arrays,
// queues, span ids) are NOT copied: they are immutable from the
// snapshot's perspective.
func cloneNodes(nd, parent *node) *node {
	if nd == nil {
		return nil
	}
	c := &node{
		parent:   parent,
		pts:      nd.pts,
		ptsBlock: nd.ptsBlock,
		ptsWords: nd.ptsWords,
		q:        nd.q,
		repBlock: nd.repBlock,
		repWords: nd.repWords,
		minX:     nd.minX,
		maxX:     nd.maxX,
	}
	if nd.children != nil {
		c.children = make([]*node, len(nd.children))
		for i, ch := range nd.children {
			c.children[i] = cloneNodes(ch, c)
		}
	}
	return c
}

// Query answers the top-open query [x1,x2] × [β, ∞) against the pinned
// state, byte-identically to what the live tree would have answered at
// the pin point. Concurrent Query calls on one handle are safe when
// the disk is guarded (emio.NewConcurrentDisk): the handle's state is
// immutable and CPQA operations only derive new queues.
func (h *Handle) Query(x1, x2, beta geom.Coord) []geom.Point {
	return h.view.query(x1, x2, beta)
}

// Len returns the number of points in the pinned state.
func (h *Handle) Len() int { return h.n }

// Height returns the number of levels of the base tree.
func (t *Tree) Height() int {
	h := 0
	for nd := t.root; nd != nil; {
		h++
		if nd.leaf() {
			break
		}
		nd = nd.children[0]
	}
	return h
}

// SpaceWords returns the footprint of the base tree (leaf spans and
// representative blocks) plus the reachable words of every node queue.
func (t *Tree) SpaceWords() int {
	total := 0
	var rec func(nd *node)
	rec = func(nd *node) {
		if nd == nil {
			return
		}
		total += nd.ptsWords + nd.repWords
		if nd.q != nil {
			total += nd.q.ReachableWords()
		}
		for _, c := range nd.children {
			rec(c)
		}
	}
	rec(t.root)
	return total
}
