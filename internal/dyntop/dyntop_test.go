package dyntop

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/emio"
	"repro/internal/geom"
)

func pt(x, y geom.Coord) geom.Point { return geom.Point{X: x, Y: y} }

func sameAnswer(got, want []geom.Point) bool {
	if len(got) == 0 && len(want) == 0 {
		return true
	}
	return reflect.DeepEqual(got, want)
}

func buildTree(t testing.TB, cfg emio.Config, eps float64, pts []geom.Point) (*emio.Disk, *Tree) {
	t.Helper()
	d := emio.NewDisk(cfg)
	sorted := append([]geom.Point(nil), pts...)
	geom.SortByX(sorted)
	return d, BuildSABE(d, eps, sorted)
}

func TestQueryMatchesOracleAcrossEps(t *testing.T) {
	pts := geom.GenUniform(600, 6000, 91)
	for _, eps := range []float64{0, 0.5, 1} {
		_, tr := buildTree(t, emio.Config{B: 16, M: 16 * 64}, eps, pts)
		rng := rand.New(rand.NewSource(92))
		for q := 0; q < 200; q++ {
			x1 := geom.Coord(rng.Int63n(6600)) - 300
			x2 := x1 + geom.Coord(rng.Int63n(4000))
			beta := geom.Coord(rng.Int63n(6600)) - 300
			got := tr.Query(x1, x2, beta)
			want := geom.RangeSkyline(pts, geom.TopOpen(x1, x2, beta))
			if !sameAnswer(got, want) {
				t.Fatalf("eps=%.1f Query(%d,%d,%d) = %v, want %v", eps, x1, x2, beta, got, want)
			}
		}
	}
}

func TestInsertThenQuery(t *testing.T) {
	d := emio.NewDisk(emio.Config{B: 16, M: 16 * 64})
	tr := New(d, 0.5)
	pts := geom.GenUniform(400, 4000, 93)
	var present []geom.Point
	rng := rand.New(rand.NewSource(94))
	for i, p := range pts {
		tr.Insert(p)
		present = append(present, p)
		if i%37 == 0 {
			x1 := geom.Coord(rng.Int63n(4400)) - 200
			x2 := x1 + geom.Coord(rng.Int63n(3000))
			beta := geom.Coord(rng.Int63n(4400)) - 200
			got := tr.Query(x1, x2, beta)
			want := geom.RangeSkyline(present, geom.TopOpen(x1, x2, beta))
			if !sameAnswer(got, want) {
				t.Fatalf("after %d inserts: Query(%d,%d,%d) = %v, want %v",
					i+1, x1, x2, beta, got, want)
			}
		}
	}
	if tr.Len() != len(pts) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(pts))
	}
}

func TestMixedInsertDelete(t *testing.T) {
	d := emio.NewDisk(emio.Config{B: 16, M: 16 * 64})
	tr := New(d, 0.5)
	rng := rand.New(rand.NewSource(95))
	present := map[geom.Point]bool{}
	var order []geom.Point
	nextX, nextY := geom.Coord(0), geom.Coord(1<<40)
	for op := 0; op < 1200; op++ {
		if len(order) == 0 || rng.Intn(3) != 0 {
			nextX += 1 + geom.Coord(rng.Int63n(50))
			nextY -= 1 + geom.Coord(rng.Int63n(50))
			// Shuffle y around to avoid a pure staircase.
			p := pt(nextX, nextY+geom.Coord(rng.Int63n(1<<20)))
			tr.Insert(p)
			present[p] = true
			order = append(order, p)
		} else {
			i := rng.Intn(len(order))
			p := order[i]
			order = append(order[:i], order[i+1:]...)
			if present[p] {
				if !tr.Delete(p) {
					t.Fatalf("Delete(%v) failed", p)
				}
				delete(present, p)
			}
		}
		if op%67 == 0 {
			var pts []geom.Point
			for p := range present {
				pts = append(pts, p)
			}
			x1 := geom.Coord(rng.Int63n(int64(nextX) + 10))
			x2 := x1 + geom.Coord(rng.Int63n(int64(nextX)+10))
			beta := geom.Coord(rng.Int63n(1 << 41))
			got := tr.Query(x1, x2, beta)
			want := geom.RangeSkyline(pts, geom.TopOpen(x1, x2, beta))
			if !sameAnswer(got, want) {
				t.Fatalf("op=%d: Query(%d,%d,%d) = %v, want %v", op, x1, x2, beta, got, want)
			}
		}
	}
	if tr.Len() != len(present) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(present))
	}
}

func TestDeleteAbsent(t *testing.T) {
	d := emio.NewDisk(emio.Config{B: 16, M: 16 * 64})
	tr := New(d, 0)
	tr.Insert(pt(5, 5))
	if tr.Delete(pt(5, 6)) {
		t.Error("deleting absent point reported success")
	}
	if !tr.Delete(pt(5, 5)) {
		t.Error("deleting present point failed")
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d after emptying", tr.Len())
	}
	if got := tr.Query(0, 10, 0); got != nil {
		t.Errorf("empty tree query = %v", got)
	}
}

func TestDrainToEmptyAndRefill(t *testing.T) {
	d := emio.NewDisk(emio.Config{B: 8, M: 8 * 64})
	tr := New(d, 0.5)
	pts := geom.GenUniform(200, 2000, 96)
	for _, p := range pts {
		tr.Insert(p)
	}
	for _, p := range pts {
		if !tr.Delete(p) {
			t.Fatalf("Delete(%v) failed", p)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("tree not empty after full drain: %d", tr.Len())
	}
	for _, p := range pts[:50] {
		tr.Insert(p)
	}
	got := tr.Query(geom.NegInf, geom.PosInf, geom.NegInf)
	want := geom.Skyline(pts[:50])
	if !sameAnswer(got, want) {
		t.Fatalf("refill query = %v, want %v", got, want)
	}
}

// TestQueryUpdateIOBounds measures the Theorem 4 shapes: logarithmic
// update cost and logarithmic-plus-output query cost.
func TestQueryUpdateIOBounds(t *testing.T) {
	cfg := emio.Config{B: 64, M: 64 * 16}
	for _, eps := range []float64{0, 0.5} {
		n := 20000
		pts := geom.GenStaircase(n, 97)
		d, tr := buildTree(t, cfg, eps, pts)
		h := float64(tr.Height())
		bParam := float64(tr.b)
		rng := rand.New(rand.NewSource(98))
		// Queries.
		for q := 0; q < 30; q++ {
			x1 := geom.Coord(rng.Int63n(int64(n) * 2))
			x2 := x1 + geom.Coord(rng.Int63n(int64(n)))
			beta := geom.Coord(rng.Int63n(int64(2*n) + 20))
			var res []geom.Point
			st := d.Measure(func() { res = tr.Query(x1, x2, beta) })
			k := float64(len(res))
			// O(h) node visits with O(1)-block rep reads each (the
			// rep constant is ~44 blocks; see package comment), plus
			// O(k/ B^{1-eps}) reporting.
			budget := 150*h + 100 + 8*k/bParam
			if float64(st.IOs()) > budget {
				t.Errorf("eps=%.1f: query k=%d cost %d I/Os, budget %.0f",
					eps, len(res), st.IOs(), budget)
			}
		}
		// Updates.
		for u := 0; u < 30; u++ {
			p := pt(geom.Coord(rng.Int63n(1<<40))+(1<<41), geom.Coord(rng.Int63n(1<<40))+(1<<41))
			st := d.Measure(func() { tr.Insert(p) })
			budget := 200.0*h + 100
			if float64(st.IOs()) > budget {
				t.Errorf("eps=%.1f: insert cost %d I/Os, budget %.0f", eps, st.IOs(), budget)
			}
			st = d.Measure(func() { tr.Delete(p) })
			if float64(st.IOs()) > budget {
				t.Errorf("eps=%.1f: delete cost %d I/Os, budget %.0f", eps, st.IOs(), budget)
			}
		}
	}
}

// TestSABEBuildLinear: construction is O(n/B) after sorting.
func TestSABEBuildLinear(t *testing.T) {
	cfg := emio.Config{B: 32, M: 32 * 32}
	d := emio.NewDisk(cfg)
	n := 20000
	pts := geom.GenUniform(n, int64(n)*8, 99)
	geom.SortByX(pts)
	d.ResetStats()
	tr := BuildSABE(d, 0.5, pts)
	d.DropCache()
	st := d.Stats()
	nb := float64(n) / float64(cfg.B)
	if float64(st.IOs()) > 80*nb+100 {
		t.Errorf("build cost %d I/Os, budget %.0f", st.IOs(), 80*nb+100)
	}
	_ = tr
}

func TestFigure7MirroredDrain(t *testing.T) {
	// Figure 7: draining the root queue yields the global skyline in
	// increasing x (decreasing y) order.
	pts := geom.GenUniform(300, 3000, 100)
	_, tr := buildTree(t, emio.Config{B: 16, M: 16 * 64}, 0.5, pts)
	got := tr.Query(geom.NegInf, geom.PosInf, geom.NegInf)
	want := geom.Skyline(pts)
	if !sameAnswer(got, want) {
		t.Fatalf("root drain = %v, want %v", got, want)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].X >= got[i].X || got[i-1].Y <= got[i].Y {
			t.Fatal("drain order is not the staircase order")
		}
	}
}
