package pager

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/geom"
)

func tmpFile(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "skyline.db")
}

// TestFreshFileMeta: a fresh file gets a valid empty metadata page,
// and a reopen reads it back.
func TestFreshFileMeta(t *testing.T) {
	path := tmpFile(t)
	p, err := Open(path, 0)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if m := p.Meta(); m.Pages != 0 || m.Points != 0 || m.WALSeq != 0 {
		t.Fatalf("fresh meta = %+v", m)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st, _ := os.Stat(path)
	if st.Size() != PageSize {
		t.Fatalf("fresh file size = %d, want one meta page", st.Size())
	}
	p2, err := Open(path, 0)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	p2.Close()
}

// TestNotAPagerFile: garbage and foreign files are rejected, not
// misread.
func TestNotAPagerFile(t *testing.T) {
	path := tmpFile(t)
	if err := os.WriteFile(path, make([]byte, 2*PageSize), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, 0); err == nil {
		t.Fatalf("zero-filled file accepted as pager file")
	}
}

// TestMetaCorruptionDetected: a flipped bit in page 0 fails the CRC.
func TestMetaCorruptionDetected(t *testing.T) {
	path := tmpFile(t)
	p, _ := Open(path, 0)
	if err := p.WriteSnapshot([]geom.Point{{X: 1, Y: 2}}, 7); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	p.Close()
	data, _ := os.ReadFile(path)
	data[12] ^= 1 // pages field
	os.WriteFile(path, data, 0o644)
	if _, err := Open(path, 0); err == nil {
		t.Fatalf("corrupt metadata accepted")
	}
}

// TestSnapshotRoundTrip: points written at a checkpoint come back
// byte-identically across a reopen, including multi-page snapshots
// with a partial last page.
func TestSnapshotRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, PointsPerPage, PointsPerPage + 1, 3*PointsPerPage - 5} {
		path := tmpFile(t)
		p, _ := Open(path, 4) // tiny cache: snapshot spills through evictions
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: int64(i * 3), Y: int64(-i)}
		}
		if err := p.WriteSnapshot(pts, uint64(n)); err != nil {
			t.Fatalf("n=%d WriteSnapshot: %v", n, err)
		}
		if err := p.Close(); err != nil {
			t.Fatalf("n=%d Close: %v", n, err)
		}

		p2, err := Open(path, 4)
		if err != nil {
			t.Fatalf("n=%d reopen: %v", n, err)
		}
		if m := p2.Meta(); m.WALSeq != uint64(n) || m.Points != uint64(n) {
			t.Fatalf("n=%d meta = %+v", n, m)
		}
		got, err := p2.ReadSnapshot()
		if err != nil {
			t.Fatalf("n=%d ReadSnapshot: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: read %d points", n, len(got))
		}
		for i := range got {
			if got[i] != pts[i] {
				t.Fatalf("n=%d: point %d = %v, want %v", n, i, got[i], pts[i])
			}
		}
		p2.Close()
	}
}

// TestSnapshotShrinks: a smaller snapshot truncates the file — the
// durable state never grows monotonically with history.
func TestSnapshotShrinks(t *testing.T) {
	path := tmpFile(t)
	p, _ := Open(path, 0)
	big := make([]geom.Point, 5*PointsPerPage)
	for i := range big {
		big[i] = geom.Point{X: int64(i), Y: int64(i)}
	}
	if err := p.WriteSnapshot(big, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteSnapshot(big[:3], 2); err != nil {
		t.Fatal(err)
	}
	p.Close()
	st, _ := os.Stat(path)
	if st.Size() != 2*PageSize { // meta + one data page
		t.Fatalf("file size after shrink = %d, want %d", st.Size(), 2*PageSize)
	}
	p2, err := Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p2.ReadSnapshot()
	if err != nil || len(got) != 3 {
		t.Fatalf("ReadSnapshot after shrink: %d points, err %v", len(got), err)
	}
	p2.Close()
}

// TestCacheDisciplineCounts: the page cache actually caches — a re-read
// of a resident page is a hit, an over-capacity workload evicts and
// re-fetches, and pinned pages survive eviction pressure.
func TestCacheDisciplineCounts(t *testing.T) {
	path := tmpFile(t)
	p, _ := Open(path, 2)
	var page [PageSize]byte
	for id := uint64(1); id <= 3; id++ {
		page[0] = byte(id)
		if err := p.Write(id, page[:]); err != nil {
			t.Fatal(err)
		}
	}
	// Cache holds 2 frames: writing 1,2,3 evicted page 1 (dirty →
	// one real write).
	if got := p.Stats().Writes; got < 1 {
		t.Fatalf("no write-back after over-capacity writes: %+v", p.Stats())
	}
	var out [PageSize]byte
	preReads := p.Stats().Reads
	if err := p.Read(3, out[:]); err != nil { // resident: hit
		t.Fatal(err)
	}
	if p.Stats().Reads != preReads || p.Stats().Hits == 0 {
		t.Fatalf("resident read missed: %+v", p.Stats())
	}
	if err := p.Read(1, out[:]); err != nil { // evicted: real read
		t.Fatal(err)
	}
	if out[0] != 1 {
		t.Fatalf("page 1 content lost across eviction: %d", out[0])
	}
	if p.Stats().Reads != preReads+1 {
		t.Fatalf("evicted read did not hit the file: %+v", p.Stats())
	}

	// Pin page 1; stream pages 2..5 through the 2-frame cache; page 1
	// must stay resident (no new read to serve it).
	if err := p.Pin(1); err != nil {
		t.Fatal(err)
	}
	for id := uint64(2); id <= 5; id++ {
		page[0] = byte(id)
		p.Write(id, page[:])
	}
	preReads = p.Stats().Reads
	p.Read(1, out[:])
	if p.Stats().Reads != preReads {
		t.Fatalf("pinned page was evicted under pressure")
	}
	p.Unpin(1)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEvictErrorDropsAdmittedFrame: when admitting a page fails
// because the eviction's dirty write-back failed, the just-admitted
// frame must not stay resident — on the create path it is a dirty
// all-zero page, and a later Flush/Close would write zeros over a page
// the metadata still describes.
func TestEvictErrorDropsAdmittedFrame(t *testing.T) {
	path := tmpFile(t)
	p, err := Open(path, 1)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var page [PageSize]byte
	page[0] = 1
	if err := p.Write(1, page[:]); err != nil { // dirty, resident
		t.Fatal(err)
	}
	p.f.Close() // break the file: the eviction write-back must fail
	if err := p.Write(2, page[:]); err == nil {
		t.Fatalf("Write over a broken write-back reported success")
	}
	if p.cache.Get(2) != nil {
		t.Fatalf("failed admission left frame 2 resident (a zeroed dirty page)")
	}
	if _, ok := p.pages[2]; ok {
		t.Fatalf("failed admission left page 2's payload in the side table")
	}
}

// TestLeftoverShadowSwept: a shadow file orphaned by a crash between
// write and rename is deleted at Open, and the data file — the
// authority — reads back unharmed.
func TestLeftoverShadowSwept(t *testing.T) {
	path := tmpFile(t)
	p, err := Open(path, 0)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	pts := []geom.Point{{X: 1, Y: 9}, {X: 4, Y: 2}}
	if err := p.WriteSnapshot(pts, 5); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	shadow := path + shadowSuffix
	if err := os.WriteFile(shadow, make([]byte, 3*PageSize), 0o644); err != nil {
		t.Fatal(err)
	}
	p2, err := Open(path, 0)
	if err != nil {
		t.Fatalf("reopen next to a shadow: %v", err)
	}
	defer p2.Close()
	if _, err := os.Stat(shadow); !os.IsNotExist(err) {
		t.Fatalf("Open did not sweep the orphaned shadow: %v", err)
	}
	got, err := p2.ReadSnapshot()
	if err != nil || len(got) != len(pts) {
		t.Fatalf("snapshot after sweep: %d points, err %v", len(got), err)
	}
	for i := range got {
		if got[i] != pts[i] {
			t.Fatalf("point %d = %v, want %v", i, got[i], pts[i])
		}
	}
}

// TestUnpinUnpinnedPanics matches the simulated disk's discipline.
func TestUnpinUnpinnedPanics(t *testing.T) {
	p, _ := Open(tmpFile(t), 0)
	defer p.Close()
	defer func() {
		if recover() == nil {
			t.Fatalf("Unpin of unpinned page did not panic")
		}
	}()
	p.Unpin(42)
}
