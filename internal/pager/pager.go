// Package pager is the real storage backend of the durable index: one
// data file of 4 KB OS-aligned pages accessed with ReadAt/WriteAt at
// offset = pageID × PageSize, fronted by an LRU page cache that reuses
// the frame/pin/eviction discipline of the simulated disk
// (emio.FrameTable) — the same rules the paper's I/O accounting runs
// on, now moving real bytes.
//
// Page 0 is reserved for metadata: a magic string, the format version,
// the number of data pages, the WAL sequence number the snapshot
// covers, the point count, and a CRC over all of it. Pages 1..Pages
// hold the checkpointed point set, 256 points per page (16 bytes
// each). The emio.Disk simulation stays bookkeeping-only — structures
// hold their payloads in host memory, so there are no structure pages
// to store; what the file persists is the POINT SET, from which Open
// rebuilds every structure, plus the WAL sequence that tells recovery
// which log records the snapshot already includes.
//
// Snapshot installs are crash-atomic: WriteSnapshot builds the whole
// new snapshot — data pages and metadata — in a shadow file beside the
// data file, fsyncs it, and rename(2)s it over the data file (then
// fsyncs the directory). The live file is never written in place, so
// at no instant does it hold a mix of old and new pages: a crash
// anywhere leaves either the complete old snapshot (whose metadata and
// WAL sequence are still mutually consistent — recovery replays the
// longer WAL suffix onto it and converges to the same state) or the
// complete new one. A shadow file orphaned by such a crash is deleted
// at the next Open; the data file is always the authority.
//
// All filesystem access goes through a vfs.FS (vfs.OS by default), so
// tests and resilience experiments can stand a vfs.FaultFS between the
// pager and the disk. Transient failures (see vfs.Transient) are
// absorbed below the API with bounded exponential backoff
// (vfs.RetryPolicy); every write here is positional, so a retry at the
// same offset is idempotent. Errors that escape the retry loop are
// fatal and surface to the caller. Crash-injection tests die inside
// vfs.FaultFS.Hook at the exact filesystem operation they target (the
// rename, the directory sync, …); the pager itself has no test hooks.
package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/emio"
	"repro/internal/geom"
	"repro/internal/vfs"
)

// PageSize is the fixed page size: 4 KB, matching the OS page size so
// aligned ReadAt/WriteAt never straddle kernel pages.
const PageSize = 4096

// PointsPerPage is how many 16-byte points one snapshot page holds.
const PointsPerPage = PageSize / 16

// DefaultCacheFrames is the page cache capacity used when the caller
// passes 0.
const DefaultCacheFrames = 64

// shadowSuffix names the shadow file WriteSnapshot builds next to the
// data file before renaming it into place.
const shadowSuffix = ".tmp"

// magic opens every data file.
var magic = [8]byte{'S', 'K', 'Y', 'P', 'A', 'G', 'E', '1'}

// version is the current file format version.
const version uint32 = 1

// Meta is the content of page 0.
type Meta struct {
	// Version is the file format version (currently 1).
	Version uint32
	// Pages is the number of snapshot data pages (excluding page 0).
	Pages uint64
	// WALSeq is the last WAL sequence number whose effects the
	// snapshot includes; recovery replays only records after it.
	WALSeq uint64
	// Points is the number of points in the snapshot.
	Points uint64
}

// Stats counts real page traffic since the pager was opened.
type Stats struct {
	// Reads counts pages fetched from the file (cache misses).
	Reads uint64
	// Writes counts pages written back to the file (dirty evictions
	// and flushes).
	Writes uint64
	// Hits counts page accesses served from the cache.
	Hits uint64
}

// Pager is a file-backed page store with an LRU page cache.
type Pager struct {
	fs      vfs.FS
	f       vfs.File
	path    string
	retry   vfs.RetryPolicy
	retries vfs.RetryCounters
	meta    Meta
	cache   *emio.FrameTable
	frames  int // cache capacity, for resets after a snapshot install
	onEvict func(*emio.Frame)
	pages   map[uint64][]byte // payload of every resident frame
	stats   Stats
	// evictErr records the first write-back error from inside the
	// eviction callback (which cannot return one); surfaced by the
	// next Flush/Close (or page admission, which then backs out the
	// admitted frame).
	evictErr error
}

// Open opens the data file at path on the real filesystem with the
// default retry policy. See OpenFS.
func Open(path string, cacheFrames int) (*Pager, error) {
	return OpenFS(path, cacheFrames, vfs.OS, vfs.RetryPolicy{})
}

// OpenFS opens (creating if necessary) the data file at path on fsys
// (nil means vfs.OS) with a cache of cacheFrames pages (0 means
// DefaultCacheFrames), retrying transient I/O failures per retry (the
// zero policy means vfs.DefaultRetryPolicy). A fresh file is
// initialized with an empty, fsynced metadata page; an existing file's
// metadata is validated (magic, version, CRC).
func OpenFS(path string, cacheFrames int, fsys vfs.FS, retry vfs.RetryPolicy) (*Pager, error) {
	if cacheFrames <= 0 {
		cacheFrames = DefaultCacheFrames
	}
	if fsys == nil {
		fsys = vfs.OS
	}
	p := &Pager{fs: fsys, path: path, retry: retry, frames: cacheFrames, pages: make(map[uint64][]byte)}
	// A shadow file here is a snapshot install a crash interrupted
	// before the rename; the data file is the authority, the shadow is
	// garbage.
	if err := fsys.Remove(path + shadowSuffix); err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("pager: remove stale shadow of %s: %w", path, err)
	}
	var f vfs.File
	if err := p.retry.Do(&p.retries, func() error {
		var err error
		f, err = fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
		return err
	}); err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	p.f = f
	p.onEvict = func(fr *emio.Frame) {
		if fr.Dirty {
			if err := p.writePage(fr.ID, p.pages[fr.ID]); err != nil && p.evictErr == nil {
				p.evictErr = err
			}
		}
		delete(p.pages, fr.ID)
	}
	p.cache = emio.NewFrameTable(cacheFrames, p.onEvict)
	var size int64
	if err := p.retry.Do(&p.retries, func() error {
		var err error
		size, err = f.Size()
		return err
	}); err != nil {
		f.Close() //errlint:ok open failed half-way; best-effort release
		return nil, fmt.Errorf("pager: size %s: %w", path, err)
	}
	if size == 0 {
		// Fresh file: write an empty metadata page so a reopen —
		// even one racing a crash before the first checkpoint — finds
		// a valid (empty) snapshot.
		p.meta = Meta{Version: version}
		if err := p.writeMeta(); err != nil {
			f.Close() //errlint:ok open failed half-way; best-effort release
			return nil, err
		}
		if err := p.retry.Do(&p.retries, f.Sync); err != nil {
			f.Close() //errlint:ok open failed half-way; best-effort release
			return nil, fmt.Errorf("pager: sync fresh %s: %w", path, err)
		}
		return p, nil
	}
	m, err := p.readMeta()
	if err != nil {
		f.Close() //errlint:ok open failed half-way; best-effort release
		return nil, err
	}
	p.meta = m
	return p, nil
}

// Meta returns the metadata read at Open or set by the last Checkpoint.
func (p *Pager) Meta() Meta { return p.meta }

// Stats returns the real-I/O counters.
func (p *Pager) Stats() Stats { return p.stats }

// Retries exposes the transient-failure counters of the pager's retry
// loop; DB.Resilience aggregates them.
func (p *Pager) Retries() *vfs.RetryCounters { return &p.retries }

// writePage writes one page at its aligned offset, retrying transient
// failures (positional writes are idempotent).
func (p *Pager) writePage(id uint64, data []byte) error {
	err := p.retry.Do(&p.retries, func() error {
		_, err := p.f.WriteAt(data, int64(id)*PageSize)
		return err
	})
	if err != nil {
		return fmt.Errorf("pager: write page %d: %w", id, err)
	}
	p.stats.Writes++
	return nil
}

// readPage reads one page at its aligned offset, retrying transient
// failures.
func (p *Pager) readPage(id uint64) ([]byte, error) {
	buf := make([]byte, PageSize)
	err := p.retry.Do(&p.retries, func() error {
		_, err := p.f.ReadAt(buf, int64(id)*PageSize)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("pager: read page %d: %w", id, err)
	}
	p.stats.Reads++
	return buf, nil
}

// page returns the cached frame buffer for id, fetching it on a miss
// (fetch = one real read; the admission may evict the LRU unpinned
// page, writing it back if dirty). create skips the fetch for a page
// about to be fully overwritten.
func (p *Pager) page(id uint64, create bool) ([]byte, error) {
	if fr := p.cache.Get(id); fr != nil {
		p.cache.Touch(fr, false)
		p.stats.Hits++
		return p.pages[id], nil
	}
	var buf []byte
	if create {
		buf = make([]byte, PageSize)
	} else {
		var err error
		if buf, err = p.readPage(id); err != nil {
			return nil, err
		}
	}
	p.pages[id] = buf
	fr := p.cache.Admit(id, create, 0)
	if err := p.evictErr; err != nil {
		// The admission's eviction failed to write a dirty page back.
		// Back the new frame out: on the create path it is a dirty
		// all-zero page, and leaving it resident would let a later
		// Flush/Close write zeros over a page the current metadata
		// still describes.
		p.evictErr = nil
		p.cache.Remove(fr)
		delete(p.pages, id)
		return nil, err
	}
	return buf, nil
}

// Read copies page id into out (len PageSize) through the cache.
func (p *Pager) Read(id uint64, out []byte) error {
	buf, err := p.page(id, false)
	if err != nil {
		return err
	}
	copy(out, buf)
	return nil
}

// Write replaces page id with data (len <= PageSize; the rest is
// zeroed) through the cache. The page is dirty until evicted or
// flushed.
func (p *Pager) Write(id uint64, data []byte) error {
	buf, err := p.page(id, true)
	if err != nil {
		return err
	}
	n := copy(buf, data)
	for i := n; i < PageSize; i++ {
		buf[i] = 0
	}
	if fr := p.cache.Get(id); fr != nil {
		p.cache.Touch(fr, true)
	}
	return nil
}

// Pin pins page id in the cache (fetching it if needed): it will not
// be evicted until unpinned, the same discipline the simulated disk
// applies to the paper's critical records.
func (p *Pager) Pin(id uint64) error {
	if fr := p.cache.Get(id); fr != nil {
		p.cache.Pin(fr)
		return nil
	}
	buf, err := p.readPage(id)
	if err != nil {
		return err
	}
	p.pages[id] = buf
	fr := p.cache.Admit(id, false, 1)
	if err := p.evictErr; err != nil {
		// Same backout as page(): a failed admission must not leave
		// the new frame (here additionally pinned) resident.
		p.evictErr = nil
		p.cache.Remove(fr)
		delete(p.pages, id)
		return err
	}
	return nil
}

// Unpin releases one pin of page id.
func (p *Pager) Unpin(id uint64) {
	fr := p.cache.Get(id)
	if fr == nil || fr.Pins == 0 {
		panic(fmt.Sprintf("pager: Unpin of unpinned page %d", id))
	}
	p.cache.Unpin(fr)
}

// Flush writes every dirty cached page back to the file (keeping the
// cache warm) and fsyncs. It also surfaces any write-back error a
// dirty eviction hit since the last call.
func (p *Pager) Flush() error {
	firstErr := p.evictErr
	p.evictErr = nil
	for id, buf := range p.pages {
		fr := p.cache.Get(id)
		if fr == nil || !fr.Dirty {
			continue
		}
		if err := p.writePage(id, buf); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		fr.Dirty = false
	}
	if firstErr != nil {
		return firstErr
	}
	if err := p.retry.Do(&p.retries, p.f.Sync); err != nil {
		return fmt.Errorf("pager: sync %s: %w", p.path, err)
	}
	return nil
}

// Close flushes and closes the file.
func (p *Pager) Close() error {
	flushErr := p.Flush()
	if err := p.f.Close(); err != nil && flushErr == nil {
		flushErr = fmt.Errorf("pager: close %s: %w", p.path, err)
	}
	return flushErr
}

// metaLen is the encoded metadata length: magic, version, pages,
// walSeq, points, crc.
const metaLen = 8 + 4 + 8 + 8 + 8 + 4

// writeMeta encodes p.meta into page 0 of the data file (direct, not
// through the cache: metadata must never be evicted-then-reordered
// around the data pages it describes). Only the fresh-file path in
// OpenFS uses it; snapshot installs write their metadata into the
// shadow file instead.
func (p *Pager) writeMeta() error {
	if err := p.writeMetaTo(p.f, p.meta); err != nil {
		return err
	}
	p.stats.Writes++
	return nil
}

// writeMetaTo encodes m into page 0 of f, retrying transient failures.
func (p *Pager) writeMetaTo(f vfs.File, m Meta) error {
	var b [PageSize]byte
	copy(b[0:8], magic[:])
	binary.LittleEndian.PutUint32(b[8:12], m.Version)
	binary.LittleEndian.PutUint64(b[12:20], m.Pages)
	binary.LittleEndian.PutUint64(b[20:28], m.WALSeq)
	binary.LittleEndian.PutUint64(b[28:36], m.Points)
	binary.LittleEndian.PutUint32(b[metaLen-4:metaLen], crc32.ChecksumIEEE(b[:metaLen-4]))
	err := p.retry.Do(&p.retries, func() error {
		_, err := f.WriteAt(b[:], 0)
		return err
	})
	if err != nil {
		return fmt.Errorf("pager: write meta: %w", err)
	}
	return nil
}

// readMeta decodes and validates page 0.
func (p *Pager) readMeta() (Meta, error) {
	var b [PageSize]byte
	err := p.retry.Do(&p.retries, func() error {
		_, err := p.f.ReadAt(b[:], 0)
		return err
	})
	if err != nil {
		return Meta{}, fmt.Errorf("pager: read meta of %s: %w", p.path, err)
	}
	p.stats.Reads++
	if [8]byte(b[0:8]) != magic {
		return Meta{}, fmt.Errorf("pager: %s is not a skyline pager file (bad magic)", p.path)
	}
	if crc32.ChecksumIEEE(b[:metaLen-4]) != binary.LittleEndian.Uint32(b[metaLen-4:metaLen]) {
		return Meta{}, fmt.Errorf("pager: %s metadata checksum mismatch", p.path)
	}
	m := Meta{
		Version: binary.LittleEndian.Uint32(b[8:12]),
		Pages:   binary.LittleEndian.Uint64(b[12:20]),
		WALSeq:  binary.LittleEndian.Uint64(b[20:28]),
		Points:  binary.LittleEndian.Uint64(b[28:36]),
	}
	if m.Version != version {
		return Meta{}, fmt.Errorf("pager: %s format version %d, want %d", p.path, m.Version, version)
	}
	return m, nil
}

// WriteSnapshot packs pts into data pages 1..ceil(n/PointsPerPage) of
// a shadow file (metadata naming walSeq on page 0), fsyncs it, and
// atomically installs it over the data file with rename(2). It is the
// whole durable state transition: after WriteSnapshot returns, a
// reopen recovers exactly pts plus whatever the WAL holds after
// walSeq. The install is crash-atomic — the live file is never
// partially overwritten, so a crash at any point leaves either the
// previous snapshot or the new one, each consistent with its recorded
// WAL sequence. The page cache is reset afterwards: the install
// replaced the whole file, superseding every cached page (dirty pages
// written through the generic Write API included).
func (p *Pager) WriteSnapshot(pts []geom.Point, walSeq uint64) error {
	shadowPath := p.path + shadowSuffix
	var shadow vfs.File
	if err := p.retry.Do(&p.retries, func() error {
		var err error
		shadow, err = p.fs.OpenFile(shadowPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		return err
	}); err != nil {
		return fmt.Errorf("pager: create shadow %s: %w", shadowPath, err)
	}
	abort := func(err error) error {
		shadow.Close()          //errlint:ok best-effort cleanup of an aborted install
		p.fs.Remove(shadowPath) //errlint:ok best-effort cleanup; next Open removes it too
		return err
	}
	m := Meta{Version: version, WALSeq: walSeq, Points: uint64(len(pts))}
	var buf [PageSize]byte
	for off := 0; off < len(pts); off += PointsPerPage {
		chunk := pts[off:min(off+PointsPerPage, len(pts))]
		for i, pt := range chunk {
			binary.LittleEndian.PutUint64(buf[i*16:i*16+8], uint64(pt.X))
			binary.LittleEndian.PutUint64(buf[i*16+8:i*16+16], uint64(pt.Y))
		}
		for i := len(chunk) * 16; i < PageSize; i++ {
			buf[i] = 0
		}
		m.Pages++
		if err := p.retry.Do(&p.retries, func() error {
			_, err := shadow.WriteAt(buf[:], int64(m.Pages)*PageSize)
			return err
		}); err != nil {
			return abort(fmt.Errorf("pager: write shadow page %d: %w", m.Pages, err))
		}
		p.stats.Writes++
	}
	if err := p.writeMetaTo(shadow, m); err != nil {
		return abort(err)
	}
	p.stats.Writes++
	if err := p.retry.Do(&p.retries, shadow.Sync); err != nil {
		return abort(fmt.Errorf("pager: sync shadow %s: %w", shadowPath, err))
	}
	if err := p.retry.Do(&p.retries, func() error {
		return p.fs.Rename(shadowPath, p.path)
	}); err != nil {
		return abort(fmt.Errorf("pager: install snapshot %s: %w", p.path, err))
	}
	// Past the rename the install has happened: the shadow fd now IS
	// the data file (rename does not invalidate it). Retire the old fd,
	// adopt the new state, and drop the superseded cache before
	// reporting any remaining durability error.
	old := p.f
	p.f = shadow
	old.Close() //errlint:ok fd superseded by the installed shadow
	p.meta = m
	p.cache = emio.NewFrameTable(p.frames, p.onEvict)
	p.pages = make(map[uint64][]byte)
	p.evictErr = nil
	// The rename is durable only once the directory entry is.
	return p.syncDir(filepath.Dir(p.path))
}

// syncDir fsyncs a directory, making renames inside it durable.
func (p *Pager) syncDir(dir string) error {
	if err := p.retry.Do(&p.retries, func() error { return p.fs.SyncDir(dir) }); err != nil {
		return fmt.Errorf("pager: sync dir %s: %w", dir, err)
	}
	return nil
}

// ReadSnapshot reads the checkpointed point set back, in the order it
// was written (sorted by x, as core checkpoints it).
func (p *Pager) ReadSnapshot() ([]geom.Point, error) {
	m := p.meta
	if m.Points == 0 {
		return nil, nil
	}
	if want := (m.Points + PointsPerPage - 1) / PointsPerPage; m.Pages != want {
		return nil, fmt.Errorf("pager: metadata inconsistent: %d points need %d pages, have %d",
			m.Points, want, m.Pages)
	}
	pts := make([]geom.Point, 0, m.Points)
	var buf [PageSize]byte
	remaining := int(m.Points)
	for page := uint64(1); page <= m.Pages; page++ {
		if err := p.Read(page, buf[:]); err != nil {
			return nil, err
		}
		n := min(remaining, PointsPerPage)
		for i := 0; i < n; i++ {
			pts = append(pts, geom.Point{
				X: geom.Coord(binary.LittleEndian.Uint64(buf[i*16 : i*16+8])),
				Y: geom.Coord(binary.LittleEndian.Uint64(buf[i*16+8 : i*16+16])),
			})
		}
		remaining -= n
	}
	return pts, nil
}
