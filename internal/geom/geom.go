// Package geom provides the planar primitives of the paper: points,
// axis-parallel query rectangles (including the grounded 3-, 2- and
// 1-sided variants of Figure 2), dominance, and in-memory skyline
// computation used as the correctness oracle by every structure's tests.
package geom

import (
	"fmt"
	"math"
	"sort"
)

// Coord is a point coordinate. The paper's universe is R²; we use int64
// coordinates (a machine word, as the paper assumes for the [U]² case).
// Real-valued inputs can be rank-reduced without changing any query
// answer.
type Coord = int64

// Sentinel coordinates representing the open sides of grounded queries.
const (
	NegInf Coord = math.MinInt64
	PosInf Coord = math.MaxInt64
)

// Point is a point in the plane.
type Point struct {
	X, Y Coord
}

func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Dominates reports whether p dominates q: p.X >= q.X and p.Y >= q.Y and
// p != q. With inputs in general position (no shared coordinates) this
// matches the paper's definition.
func (p Point) Dominates(q Point) bool {
	return p != q && p.X >= q.X && p.Y >= q.Y
}

// Less orders points by x, breaking ties by y. It is the canonical
// ordering used throughout the repository.
func Less(p, q Point) bool {
	if p.X != q.X {
		return p.X < q.X
	}
	return p.Y < q.Y
}

// Rect is an axis-parallel query rectangle [X1,X2] × [Y1,Y2], closed on
// all sides. Grounded sides use NegInf/PosInf.
type Rect struct {
	X1, X2, Y1, Y2 Coord
}

// TopOpen returns the 3-sided rectangle [x1,x2] × [y,∞) of a top-open
// query (Figure 2a).
func TopOpen(x1, x2, y Coord) Rect { return Rect{X1: x1, X2: x2, Y1: y, Y2: PosInf} }

// LeftOpen returns the 3-sided rectangle (-∞,x] × [y1,y2] of a left-open
// query (Figure 2d).
func LeftOpen(x, y1, y2 Coord) Rect { return Rect{X1: NegInf, X2: x, Y1: y1, Y2: y2} }

// RightOpen returns the 3-sided rectangle [x,∞) × [y1,y2] of a right-open
// query (Figure 2b).
func RightOpen(x, y1, y2 Coord) Rect { return Rect{X1: x, X2: PosInf, Y1: y1, Y2: y2} }

// BottomOpen returns the 3-sided rectangle [x1,x2] × (-∞,y] of a
// bottom-open query (Figure 2c).
func BottomOpen(x1, x2, y Coord) Rect { return Rect{X1: x1, X2: x2, Y1: NegInf, Y2: y} }

// Dominance returns the 2-sided rectangle [x,∞) × [y,∞) with top and
// right edges grounded (Figure 2e): the upper-right quadrant of (x,y).
// It is the special case of a top-open query with α2 = ∞, which is why
// the top-open structures answer it directly.
func Dominance(x, y Coord) Rect { return Rect{X1: x, X2: PosInf, Y1: y, Y2: PosInf} }

// AntiDominance returns the 2-sided rectangle (-∞,x] × (-∞,y] with
// bottom and left edges grounded (Figure 2f): the lower-left quadrant of
// (x,y). Theorem 5 proves this variant — and hence left-open and 4-sided
// queries — cannot be answered in sub-polynomial I/Os at linear space.
func AntiDominance(x, y Coord) Rect { return Rect{X1: NegInf, X2: x, Y1: NegInf, Y2: y} }

// Contour returns the 1-sided rectangle (-∞,x] × (-∞,∞) (Figure 2g).
func Contour(x Coord) Rect { return Rect{X1: NegInf, X2: x, Y1: NegInf, Y2: PosInf} }

// Contains reports whether the rectangle contains the point.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X1 && p.X <= r.X2 && p.Y >= r.Y1 && p.Y <= r.Y2
}

// IsTopOpen reports whether the rectangle's top edge is grounded.
func (r Rect) IsTopOpen() bool { return r.Y2 == PosInf }

func (r Rect) String() string {
	fmtSide := func(c Coord) string {
		switch c {
		case NegInf:
			return "-inf"
		case PosInf:
			return "+inf"
		default:
			return fmt.Sprintf("%d", c)
		}
	}
	return fmt.Sprintf("[%s,%s]x[%s,%s]",
		fmtSide(r.X1), fmtSide(r.X2), fmtSide(r.Y1), fmtSide(r.Y2))
}

// SortByX sorts points in place by x-coordinate, breaking ties by y.
func SortByX(pts []Point) {
	sort.Slice(pts, func(i, j int) bool { return Less(pts[i], pts[j]) })
}

// Skyline returns the maximal points of pts: those dominated by no other
// point. The result is sorted by increasing x (hence decreasing y). The
// input is not modified. O(n log n) host time; this is the in-memory
// oracle, not an EM algorithm.
func Skyline(pts []Point) []Point {
	if len(pts) == 0 {
		return nil
	}
	sorted := make([]Point, len(pts))
	copy(sorted, pts)
	SortByX(sorted)
	// Scan right to left keeping the running maximum y.
	var sky []Point
	best := Coord(math.MinInt64)
	for i := len(sorted) - 1; i >= 0; i-- {
		p := sorted[i]
		if i+1 < len(sorted) && p.X == sorted[i+1].X {
			// Same x: only the one with larger y can be maximal,
			// and it was already considered.
			continue
		}
		if p.Y > best {
			sky = append(sky, p)
			best = p.Y
		}
	}
	// Reverse to increasing x.
	for i, j := 0, len(sky)-1; i < j; i, j = i+1, j-1 {
		sky[i], sky[j] = sky[j], sky[i]
	}
	return sky
}

// RangeSkyline returns the skyline of pts ∩ r (the answer to a range
// skyline query, Figure 1b), sorted by increasing x. Brute force; the
// correctness oracle for all indexes.
func RangeSkyline(pts []Point, r Rect) []Point {
	var in []Point
	for _, p := range pts {
		if r.Contains(p) {
			in = append(in, p)
		}
	}
	return Skyline(in)
}

// IsGeneralPosition reports whether no two points share an x- or
// y-coordinate.
func IsGeneralPosition(pts []Point) bool {
	xs := make(map[Coord]bool, len(pts))
	ys := make(map[Coord]bool, len(pts))
	for _, p := range pts {
		if xs[p.X] || ys[p.Y] {
			return false
		}
		xs[p.X] = true
		ys[p.Y] = true
	}
	return true
}

// LeftDom returns leftdom(p): the leftmost point among the points of pts
// dominating p, and ok=false if no point dominates p. Brute force oracle
// for the Σ(P) sweep of §2.2.
func LeftDom(pts []Point, p Point) (Point, bool) {
	var best Point
	found := false
	for _, q := range pts {
		if q.Dominates(p) {
			if !found || q.X < best.X {
				best = q
				found = true
			}
		}
	}
	return best, found
}

// Mirror maps P to P̃ = {(x, -y)}: the transformation of Figure 7 that
// turns dominance into attrition for the dynamic structure of §4.
func Mirror(pts []Point) []Point {
	out := make([]Point, len(pts))
	for i, p := range pts {
		out[i] = Point{X: p.X, Y: -p.Y}
	}
	return out
}

// RankSpace maps pts to the rank-space grid [n]²: each coordinate is
// replaced by its rank among the distinct coordinates of its axis. The
// mapping preserves all dominance relations, hence all skyline and range
// skyline answers under the corresponding query-coordinate mapping. It
// returns the transformed points (in the input's order) plus the sorted
// coordinate tables needed to translate queries.
func RankSpace(pts []Point) (out []Point, xs, ys []Coord) {
	xs = make([]Coord, 0, len(pts))
	ys = make([]Coord, 0, len(pts))
	for _, p := range pts {
		xs = append(xs, p.X)
		ys = append(ys, p.Y)
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	sort.Slice(ys, func(i, j int) bool { return ys[i] < ys[j] })
	xs = dedup(xs)
	ys = dedup(ys)
	out = make([]Point, len(pts))
	for i, p := range pts {
		out[i] = Point{
			X: Coord(sort.Search(len(xs), func(j int) bool { return xs[j] >= p.X })),
			Y: Coord(sort.Search(len(ys), func(j int) bool { return ys[j] >= p.Y })),
		}
	}
	return out, xs, ys
}

// RankLo maps a query lower bound into the rank space of a table built by
// RankSpace: the smallest rank whose coordinate is >= c. Using RankLo for
// lower bounds and RankHi for upper bounds makes the transformed query
// return exactly the same point set.
func RankLo(table []Coord, c Coord) Coord {
	// Smallest rank r with table[r] >= c.
	return Coord(sort.Search(len(table), func(j int) bool { return table[j] >= c }))
}

// RankHi returns the largest rank whose coordinate is <= c, i.e. the
// predecessor rank; -1 if all table entries exceed c.
func RankHi(table []Coord, c Coord) Coord {
	return Coord(sort.Search(len(table), func(j int) bool { return table[j] > c })) - 1
}

func dedup(s []Coord) []Coord {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
