// Reflections of the plane, the algebra behind the engine's mirrored
// fast paths. A reflected copy of the point set lets a top-open
// structure (Theorems 1 and 4) answer query rectangles whose reflection
// is top-open — but only when the reflection preserves the dominance
// order, because a range skyline is the set of maxima under that fixed
// order. Of the axis reflections, exactly one nontrivial map qualifies:
// the transpose x↔y. It turns every rectangle with a grounded *right*
// edge into one with a grounded *top* edge, which is why right-open
// queries (Figure 2b) are really top-open queries in disguise.
//
// The y-negation map (and its composition with the transpose) reflects
// the *rectangles* of bottom-open, left-open and anti-dominance queries
// onto top-open rectangles too — but it does not preserve dominance, so
// the mirrored structure would report the wrong staircase (the
// south-east maxima instead of the north-east maxima). That is not an
// implementation gap: Theorem 5 proves anti-dominance — a special case
// of both bottom-open and left-open — needs Ω((n/B)^ε) I/Os at linear
// space, and a mirrored copy is linear space. The PreservesDominance
// gate (and TestReflectionFallacy) keeps that boundary honest.
package geom

// Reflection is an axis reflection of the plane. All four values are
// involutions: applying one twice is the identity.
type Reflection uint8

const (
	// ReflectIdentity maps (x,y) ↦ (x,y).
	ReflectIdentity Reflection = iota
	// ReflectSwapXY is the transpose (x,y) ↦ (y,x). It preserves
	// dominance, so skylines commute with it; it is the reflection
	// behind every sound mirrored fast path.
	ReflectSwapXY
	// ReflectNegY maps (x,y) ↦ (x,−y). It does NOT preserve dominance
	// (maxima become the south-east staircase), so it cannot serve
	// range skyline queries byte-identically; see the package comment.
	ReflectNegY
	// ReflectAntiTranspose maps (x,y) ↦ (−y,−x). It REVERSES dominance
	// (maxima become minima), so it cannot serve range skyline queries
	// either.
	ReflectAntiTranspose
)

var reflectionNames = map[Reflection]string{
	ReflectIdentity:      "identity",
	ReflectSwapXY:        "swap-xy",
	ReflectNegY:          "neg-y",
	ReflectAntiTranspose: "anti-transpose",
}

func (r Reflection) String() string { return reflectionNames[r] }

// negCoord negates a coordinate, mapping the grounded-side sentinels
// onto each other so reflected rectangles stay well-formed.
func negCoord(c Coord) Coord {
	switch c {
	case NegInf:
		return PosInf
	case PosInf:
		return NegInf
	}
	return -c
}

// Point applies the reflection to a point.
func (r Reflection) Point(p Point) Point {
	switch r {
	case ReflectSwapXY:
		return Point{X: p.Y, Y: p.X}
	case ReflectNegY:
		return Point{X: p.X, Y: negCoord(p.Y)}
	case ReflectAntiTranspose:
		return Point{X: negCoord(p.Y), Y: negCoord(p.X)}
	}
	return p
}

// Pts applies the reflection to every point, returning a new slice.
func (r Reflection) Pts(pts []Point) []Point {
	out := make([]Point, len(pts))
	for i, p := range pts {
		out[i] = r.Point(p)
	}
	return out
}

// Rect applies the reflection to a query rectangle, mapping grounded
// sides (NegInf/PosInf sentinels) onto grounded sides: the image of
// {p : q.Contains(p)} is exactly {p : r.Rect(q).Contains(r.Point(p))}.
func (r Reflection) Rect(q Rect) Rect {
	switch r {
	case ReflectSwapXY:
		return Rect{X1: q.Y1, X2: q.Y2, Y1: q.X1, Y2: q.X2}
	case ReflectNegY:
		return Rect{X1: q.X1, X2: q.X2, Y1: negCoord(q.Y2), Y2: negCoord(q.Y1)}
	case ReflectAntiTranspose:
		return Rect{X1: negCoord(q.Y2), X2: negCoord(q.Y1), Y1: negCoord(q.X2), Y2: negCoord(q.X1)}
	}
	return q
}

// Inverse returns the reflection undoing r. Every axis reflection here
// is an involution, so the inverse is the reflection itself; the method
// exists to keep call sites self-documenting.
func (r Reflection) Inverse() Reflection { return r }

// PreservesDominance reports whether p.Dominates(q) ⇔
// r.Point(p).Dominates(r.Point(q)) for all points. Only such
// reflections can serve range skyline (maxima) queries from a mirrored
// structure; the others change which points are maximal.
func (r Reflection) PreservesDominance() bool {
	return r == ReflectIdentity || r == ReflectSwapXY
}

// flipsSkylineOrder reports whether a skyline listed in increasing
// mirrored-x order maps back to *decreasing* original-x order. The
// transpose does: mirrored x is original y, and a skyline's y decreases
// as its x increases.
func (r Reflection) flipsSkylineOrder() bool {
	return r == ReflectSwapXY || r == ReflectAntiTranspose
}

// SkylineToOriginal maps a range skyline reported in the mirrored frame
// (increasing mirrored-x order) back to the original frame in the
// canonical increasing-x order. The input slice is not modified.
func (r Reflection) SkylineToOriginal(mirror []Point) []Point {
	if len(mirror) == 0 {
		return nil
	}
	out := make([]Point, len(mirror))
	inv := r.Inverse()
	if r.flipsSkylineOrder() {
		for i, p := range mirror {
			out[len(mirror)-1-i] = inv.Point(p)
		}
	} else {
		for i, p := range mirror {
			out[i] = inv.Point(p)
		}
	}
	return out
}
