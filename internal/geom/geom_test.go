package geom

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	tests := []struct {
		p, q Point
		want bool
	}{
		{Point{2, 2}, Point{1, 1}, true},
		{Point{1, 1}, Point{2, 2}, false},
		{Point{2, 1}, Point{1, 2}, false},
		{Point{1, 2}, Point{2, 1}, false},
		{Point{1, 1}, Point{1, 1}, false}, // a point does not dominate itself
		{Point{2, 1}, Point{1, 1}, true},
		{Point{1, 2}, Point{1, 1}, true},
	}
	for _, tc := range tests {
		if got := tc.p.Dominates(tc.q); got != tc.want {
			t.Errorf("%v dominates %v = %t, want %t", tc.p, tc.q, got, tc.want)
		}
	}
}

// TestFigure1Skyline reproduces the shape of Figure 1a: the skyline of a
// small point set forms a staircase of exactly the maximal points.
func TestFigure1Skyline(t *testing.T) {
	pts := []Point{
		{1, 9}, {2, 4}, {3, 7}, {5, 6}, {6, 2}, {7, 5}, {8, 1}, {9, 3},
	}
	got := Skyline(pts)
	want := []Point{{1, 9}, {3, 7}, {5, 6}, {7, 5}, {9, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Skyline = %v, want %v", got, want)
	}
	// The staircase property: x increasing, y decreasing.
	for i := 1; i < len(got); i++ {
		if got[i].X <= got[i-1].X || got[i].Y >= got[i-1].Y {
			t.Fatalf("skyline is not a staircase at %d: %v", i, got)
		}
	}
}

// TestFigure1RangeSkyline reproduces Figure 1b: a rectangle query returns
// the maxima of the points inside the rectangle only.
func TestFigure1RangeSkyline(t *testing.T) {
	pts := []Point{
		{1, 9}, {2, 4}, {3, 7}, {5, 6}, {6, 2}, {7, 5}, {8, 1}, {9, 3},
	}
	r := Rect{X1: 2, X2: 8, Y1: 2, Y2: 6}
	got := RangeSkyline(pts, r)
	want := []Point{{5, 6}, {7, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("RangeSkyline(%v) = %v, want %v", r, got, want)
	}
}

// TestFigure2Variants checks each grounded variant constructor against
// explicit membership, mirroring Figure 2's seven query shapes.
func TestFigure2Variants(t *testing.T) {
	in := Point{5, 5}
	cases := []struct {
		name string
		r    Rect
		yes  []Point
		no   []Point
	}{
		{"top-open", TopOpen(0, 10, 3), []Point{in, {0, 3}, {10, 100}}, []Point{{11, 5}, {5, 2}}},
		{"right-open", RightOpen(3, 0, 10), []Point{in, {100, 10}}, []Point{{2, 5}, {5, 11}}},
		{"bottom-open", BottomOpen(0, 10, 8), []Point{in, {3, -100}}, []Point{{5, 9}, {-1, 0}}},
		{"left-open", LeftOpen(8, 0, 10), []Point{in, {-100, 3}}, []Point{{9, 5}, {5, -1}}},
		{"dominance", Dominance(3, 3), []Point{in, {100, 100}}, []Point{{2, 5}, {5, 2}}},
		{"anti-dominance", AntiDominance(8, 8), []Point{in, {-5, -5}}, []Point{{9, 0}, {0, 9}}},
		{"contour", Contour(8), []Point{in, {-100, 100}}, []Point{{9, 5}}},
	}
	for _, tc := range cases {
		for _, p := range tc.yes {
			if !tc.r.Contains(p) {
				t.Errorf("%s %v should contain %v", tc.name, tc.r, p)
			}
		}
		for _, p := range tc.no {
			if tc.r.Contains(p) {
				t.Errorf("%s %v should not contain %v", tc.name, tc.r, p)
			}
		}
	}
}

func TestSkylineNoneDominated(t *testing.T) {
	pts := GenUniform(500, 1<<20, 7)
	sky := Skyline(pts)
	for _, s := range sky {
		for _, p := range pts {
			if p.Dominates(s) {
				t.Fatalf("skyline point %v dominated by %v", s, p)
			}
		}
	}
	// Every non-skyline point must be dominated by some skyline point.
	inSky := make(map[Point]bool)
	for _, s := range sky {
		inSky[s] = true
	}
	for _, p := range pts {
		if inSky[p] {
			continue
		}
		dominated := false
		for _, s := range sky {
			if s.Dominates(p) {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Fatalf("non-skyline point %v not dominated by any skyline point", p)
		}
	}
}

func TestQuickSkylineMatchesBruteForce(t *testing.T) {
	f := func(raw []int16) bool {
		// Build a point set (possibly with duplicates removed for
		// general position).
		var pts []Point
		seenX := map[Coord]bool{}
		seenY := map[Coord]bool{}
		for i := 0; i+1 < len(raw); i += 2 {
			p := Point{X: Coord(raw[i]), Y: Coord(raw[i+1])}
			if seenX[p.X] || seenY[p.Y] {
				continue
			}
			seenX[p.X], seenY[p.Y] = true, true
			pts = append(pts, p)
		}
		got := Skyline(pts)
		var want []Point
		for _, p := range pts {
			maximal := true
			for _, q := range pts {
				if q.Dominates(p) {
					maximal = false
					break
				}
			}
			if maximal {
				want = append(want, p)
			}
		}
		sort.Slice(want, func(i, j int) bool { return Less(want[i], want[j]) })
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRangeSkylineIsSkylineOfIntersection(t *testing.T) {
	pts := GenUniform(300, 1000, 11)
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 100; i++ {
		x1 := Coord(rng.Int63n(1200)) - 100
		x2 := x1 + Coord(rng.Int63n(600))
		y1 := Coord(rng.Int63n(1200)) - 100
		y2 := y1 + Coord(rng.Int63n(600))
		r := Rect{X1: x1, X2: x2, Y1: y1, Y2: y2}
		got := RangeSkyline(pts, r)
		for _, p := range got {
			if !r.Contains(p) {
				t.Fatalf("reported point %v outside %v", p, r)
			}
			for _, q := range pts {
				if r.Contains(q) && q.Dominates(p) {
					t.Fatalf("%v dominated inside %v by %v", p, r, q)
				}
			}
		}
	}
}

func TestLeftDomOracle(t *testing.T) {
	//     p3(6,9)
	//  p2(4,6)
	// p1(2,3)
	pts := []Point{{2, 3}, {4, 6}, {6, 9}}
	if q, ok := LeftDom(pts, Point{2, 3}); !ok || q != (Point{4, 6}) {
		t.Fatalf("LeftDom(p1) = %v,%t; want (4,6),true", q, ok)
	}
	if _, ok := LeftDom(pts, Point{6, 9}); ok {
		t.Fatal("LeftDom of the global maximum should not exist")
	}
}

func TestMirrorInvolutionAndAttrition(t *testing.T) {
	pts := GenUniform(100, 1000, 3)
	m := Mirror(Mirror(pts))
	if !reflect.DeepEqual(m, pts) {
		t.Fatal("Mirror is not an involution")
	}
	// Figure 7's claim: p dominated by q  <=>  mirrored p attrited by
	// mirrored q (same x-order, ỹq <= ỹp with xq > xp).
	mm := Mirror(pts)
	for i, p := range pts {
		for j, q := range pts {
			dom := q.Dominates(p) && q.X > p.X
			attr := mm[j].X > mm[i].X && mm[j].Y <= mm[i].Y
			if dom != attr {
				t.Fatalf("mirror mismatch for %v,%v", p, q)
			}
		}
	}
}

func TestRankSpacePreservesAnswers(t *testing.T) {
	pts := GenUniform(200, 1<<30, 5)
	rp, xs, ys := geomRank(pts)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		x1 := Coord(rng.Int63n(1 << 30))
		x2 := x1 + Coord(rng.Int63n(1<<29))
		y := Coord(rng.Int63n(1 << 30))
		r := TopOpen(x1, x2, y)
		want := RangeSkyline(pts, r)
		rq := Rect{X1: RankLo(xs, x1), X2: RankHi(xs, x2), Y1: RankLo(ys, y), Y2: PosInf}
		gotRank := RangeSkyline(rp, rq)
		// Map back.
		var got []Point
		for _, p := range gotRank {
			got = append(got, Point{X: xs[p.X], Y: ys[p.Y]})
		}
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("rank-space answer mismatch: got %v want %v", got, want)
		}
	}
}

func geomRank(pts []Point) ([]Point, []Coord, []Coord) { return RankSpace(pts) }

func TestGeneratorsGeneralPosition(t *testing.T) {
	gens := map[string][]Point{
		"uniform":        GenUniform(1000, 1<<20, 1),
		"staircase":      GenStaircase(1000, 2),
		"anti-staircase": GenAntiStaircase(1000, 3),
		"permutation":    GenPermutation(1000, 4),
		"clustered":      GenClustered(1000, 5, 1<<20, 5),
	}
	for name, pts := range gens {
		if len(pts) != 1000 {
			t.Errorf("%s: generated %d points, want 1000", name, len(pts))
		}
		if !IsGeneralPosition(pts) {
			t.Errorf("%s: points not in general position", name)
		}
	}
}

func TestStaircaseAllMaximal(t *testing.T) {
	pts := GenStaircase(200, 1)
	if got := len(Skyline(pts)); got != 200 {
		t.Fatalf("staircase skyline has %d points, want 200", got)
	}
	pts = GenAntiStaircase(200, 1)
	if got := len(Skyline(pts)); got != 1 {
		t.Fatalf("anti-staircase skyline has %d points, want 1", got)
	}
}

func TestPermutationIsRankSpace(t *testing.T) {
	pts := GenPermutation(64, 9)
	seen := map[Coord]bool{}
	for _, p := range pts {
		if p.X < 0 || p.X >= 64 || p.Y < 0 || p.Y >= 64 {
			t.Fatalf("point %v outside [64]²", p)
		}
		if seen[p.Y] {
			t.Fatalf("duplicate y %d", p.Y)
		}
		seen[p.Y] = true
	}
}
