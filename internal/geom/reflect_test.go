package geom

import (
	"fmt"
	"math/rand"
	"testing"
)

var allReflections = []Reflection{
	ReflectIdentity, ReflectSwapXY, ReflectNegY, ReflectAntiTranspose,
}

func randPointR(rng *rand.Rand, span Coord) Point {
	return Point{X: rng.Int63n(2*span) - span, Y: rng.Int63n(2*span) - span}
}

// randRectR mixes bounded and grounded sides, including every Figure-2
// shape, so the involution/containment properties cover the sentinels.
func randRectR(rng *rand.Rand, span Coord) Rect {
	x1 := rng.Int63n(2*span) - span
	y1 := rng.Int63n(2*span) - span
	r := Rect{X1: x1, X2: x1 + rng.Int63n(span), Y1: y1, Y2: y1 + rng.Int63n(span)}
	if rng.Intn(3) == 0 {
		r.X1 = NegInf
	}
	if rng.Intn(3) == 0 {
		r.X2 = PosInf
	}
	if rng.Intn(3) == 0 {
		r.Y1 = NegInf
	}
	if rng.Intn(3) == 0 {
		r.Y2 = PosInf
	}
	return r
}

// TestReflectionInvolution: applying any reflection twice is the
// identity, on points and on rectangles (including grounded sides).
func TestReflectionInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, ref := range allReflections {
		for i := 0; i < 500; i++ {
			p := randPointR(rng, 1<<20)
			if got := ref.Point(ref.Point(p)); got != p {
				t.Fatalf("%v: %v round-trips to %v", ref, p, got)
			}
			q := randRectR(rng, 1<<20)
			if got := ref.Rect(ref.Rect(q)); got != q {
				t.Fatalf("%v: %v round-trips to %v", ref, q, got)
			}
		}
	}
}

// TestReflectionContains: containment commutes with every reflection —
// the image of P ∩ q is exactly (reflected P) ∩ (reflected q).
func TestReflectionContains(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, ref := range allReflections {
		for i := 0; i < 2000; i++ {
			p := randPointR(rng, 1<<16)
			q := randRectR(rng, 1<<16)
			if q.Contains(p) != ref.Rect(q).Contains(ref.Point(p)) {
				t.Fatalf("%v: Contains disagrees for %v in %v (image %v in %v)",
					ref, p, q, ref.Point(p), ref.Rect(q))
			}
		}
	}
}

// TestReflectionDominance pins which reflections preserve the dominance
// order — the property that decides whether a mirrored top-open
// structure answers range skyline queries correctly.
func TestReflectionDominance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, ref := range allReflections {
		preserved, reversed := true, true
		for i := 0; i < 4000; i++ {
			p, q := randPointR(rng, 1<<12), randPointR(rng, 1<<12)
			rp, rq := ref.Point(p), ref.Point(q)
			if p.Dominates(q) != rp.Dominates(rq) {
				preserved = false
			}
			if p.Dominates(q) != rq.Dominates(rp) {
				reversed = false
			}
		}
		if preserved != ref.PreservesDominance() {
			t.Fatalf("%v: PreservesDominance() = %t, measured %t",
				ref, ref.PreservesDominance(), preserved)
		}
		// The anti-transpose reverses dominance exactly; neg-y does
		// neither (it preserves the x-order but flips the y-order).
		if ref == ReflectAntiTranspose && !reversed {
			t.Fatalf("anti-transpose should reverse dominance")
		}
		if ref == ReflectNegY && (preserved || reversed) {
			t.Fatalf("neg-y should neither preserve nor reverse dominance")
		}
	}
}

// TestSwapXYSkylineCommutes is the soundness property of the mirrored
// fast path: for the transpose, the range skyline of any rectangle can
// be computed in the mirrored frame and mapped back byte-identically —
// regardless of the rectangle's shape.
func TestSwapXYSkylineCommutes(t *testing.T) {
	ref := ReflectSwapXY
	for seed := int64(0); seed < 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed + 40))
			pts := GenUniform(200, 200*16, seed+40)
			mpts := ref.Pts(pts)
			for i := 0; i < 200; i++ {
				q := randRectR(rng, 200*16)
				want := RangeSkyline(pts, q)
				got := ref.SkylineToOriginal(RangeSkyline(mpts, ref.Rect(q)))
				if len(got) != len(want) {
					t.Fatalf("q=%v: got %d points %v, want %d %v",
						q, len(got), got, len(want), want)
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("q=%v: point %d = %v, want %v", q, j, got[j], want[j])
					}
				}
			}
		})
	}
}

// TestReflectionFallacy documents why the engine materializes no neg-y
// or anti-transpose mirrors: those reflections map the *rectangles* of
// bottom-open / left-open / anti-dominance queries onto top-open
// rectangles, but not the *answers* — the mirrored skyline is a
// different staircase. This is the geometric face of Theorem 5: those
// shapes provably cannot leave the Ω((n/B)^ε) Theorem 6 path at linear
// space, and any "fast path" for them would have to return wrong
// results. The counterexample is pinned so the fallacy cannot be
// reintroduced.
func TestReflectionFallacy(t *testing.T) {
	pts := []Point{{X: 1, Y: 1}, {X: 2, Y: 2}}
	// Anti-dominance query (-∞,3] × (-∞,3] contains both points;
	// (2,2) dominates (1,1), so the answer is {(2,2)}.
	q := AntiDominance(3, 3)
	want := RangeSkyline(pts, q)
	if len(want) != 1 || want[0] != (Point{X: 2, Y: 2}) {
		t.Fatalf("oracle answer = %v, want [(2,2)]", want)
	}
	for _, ref := range []Reflection{ReflectNegY, ReflectAntiTranspose} {
		if !ref.Rect(q).IsTopOpen() {
			t.Fatalf("%v should map the anti-dominance rectangle to a "+
				"top-open one (that is what makes the fallacy tempting)", ref)
		}
		got := ref.SkylineToOriginal(RangeSkyline(ref.Pts(pts), ref.Rect(q)))
		if len(got) == 1 && got[0] == want[0] {
			t.Fatalf("%v unexpectedly produced the correct answer; the "+
				"counterexample no longer demonstrates the fallacy", ref)
		}
	}
}

// TestSwapXYGroundedRightFamily pins the serving condition of the swap
// mirror: a rectangle reflects onto the top-open family exactly when
// its right edge is grounded.
func TestSwapXYGroundedRightFamily(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		q := randRectR(rng, 1<<16)
		if got, want := ReflectSwapXY.Rect(q).IsTopOpen(), q.X2 == PosInf; got != want {
			t.Fatalf("%v: reflected IsTopOpen = %t, want %t", q, got, want)
		}
	}
}
