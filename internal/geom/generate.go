package geom

import "math/rand"

// GenUniform returns n points in general position drawn uniformly from
// [0, span)², deterministically from the given seed. General position is
// enforced by sampling distinct coordinates per axis.
func GenUniform(n int, span Coord, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	xs := distinctCoords(rng, n, span)
	ys := distinctCoords(rng, n, span)
	rng.Shuffle(n, func(i, j int) { ys[i], ys[j] = ys[j], ys[i] })
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: xs[i], Y: ys[i]}
	}
	return pts
}

// GenStaircase returns n points that all lie on a descending staircase,
// so every point is maximal. This is the adversarial input for reporting
// cost: a contour query reports everything.
func GenStaircase(n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	x, y := Coord(0), Coord(2*int64(n)+10)
	for i := range pts {
		x += 1 + Coord(rng.Intn(3))
		y -= 1 + Coord(rng.Intn(2))
		pts[i] = Point{X: x, Y: y}
	}
	return pts
}

// GenAntiStaircase returns n points on an ascending chain, so the skyline
// is the single top-right point. The pathological "one answer" input.
func GenAntiStaircase(n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	x, y := Coord(0), Coord(0)
	for i := range pts {
		x += 1 + Coord(rng.Intn(3))
		y += 1 + Coord(rng.Intn(2))
		pts[i] = Point{X: x, Y: y}
	}
	return pts
}

// GenPermutation returns the n points {(i, π(i))} of a uniformly random
// permutation π of [n]: the canonical rank-space input of Theorem 2.
func GenPermutation(n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: Coord(i), Y: Coord(perm[i])}
	}
	return pts
}

// GenClustered returns n points in c Gaussian-ish clusters inside
// [0,span)², in general position. Models the correlated "product
// catalogue" workloads of the paper's introduction.
func GenClustered(n int, c int, span Coord, seed int64) []Point {
	if c < 1 {
		c = 1
	}
	rng := rand.New(rand.NewSource(seed))
	xs := distinctCoords(rng, n, span)
	// Assign x-ranks to clusters, then derive ys from a per-cluster
	// trend with jitter, finally rank-reduce ys to stay in general
	// position.
	type py struct {
		i int
		y float64
	}
	raw := make([]py, n)
	for i := 0; i < n; i++ {
		cl := rng.Intn(c)
		center := float64(span) * float64(cl+1) / float64(c+1)
		raw[i] = py{i: i, y: center + rng.NormFloat64()*float64(span)/(6*float64(c))}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Sort indices by raw y to assign distinct integer ys preserving order.
	for i := 1; i < n; i++ { // insertion sort is fine for clarity at gen time
		for j := i; j > 0 && raw[order[j]].y < raw[order[j-1]].y; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	ysorted := distinctCoords(rng, n, span)
	ys := make([]Coord, n)
	for rank, idx := range order {
		ys[idx] = ysorted[rank]
	}
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: xs[i], Y: ys[i]}
	}
	return pts
}

// distinctCoords returns n strictly increasing coordinates in [0, span)
// when span >= n, or in [0, n*4) otherwise.
func distinctCoords(rng *rand.Rand, n int, span Coord) []Coord {
	if n == 0 {
		return nil
	}
	if span < Coord(n) {
		span = Coord(n) * 4
	}
	// Sample gaps; total fits in span with high probability by scaling.
	step := span / Coord(n)
	if step < 1 {
		step = 1
	}
	out := make([]Coord, n)
	cur := Coord(0)
	for i := 0; i < n; i++ {
		cur += 1 + Coord(rng.Int63n(int64(step)))
		out[i] = cur
	}
	return out
}
