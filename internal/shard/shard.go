// Package shard implements a sharded, concurrent range skyline engine
// serving every Figure-2 query shape: the first scaling layer above the
// paper's single-machine structures. The point set is partitioned by
// x-range into K shards, each owning a private guarded emio.Disk with two
// structures on it: a top-open structure — the Theorem 4 dynamic tree
// (dyntop) or the Theorem 1 static index (topopen) — and a Theorem 6
// 4-sided structure (foursided) for the shapes with a bounded top edge.
// A query fans out to the shards whose x-ranges overlap [x1, x2] through
// a bounded worker pool, and the per-shard skylines are merged
// right-to-left: a point survives exactly when its y exceeds the maximum
// y reported by every shard to its right. Because the shards are
// x-disjoint and each per-shard answer is a range skyline (increasing x,
// decreasing y), the same merge is correct for both families, and the
// merged answer is identical to the single-disk structure's.
//
// Concurrency model: each shard serializes its own operations behind a
// mutex (one query or update at a time per shard — the simulated disk has
// one arm), so parallelism comes from spreading work across shards, the
// same seam that later layers (caching tiers, async update queues,
// multi-backend disks) plug into. Engine-level counters and the per-shard
// I/O statistics aggregate atomically and can be read at any time.
package shard

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dyntop"
	"repro/internal/emio"
	"repro/internal/extsort"
	"repro/internal/foursided"
	"repro/internal/geom"
	"repro/internal/topopen"
)

// Options configures a sharded engine.
type Options struct {
	// Machine is the simulated EM machine of each shard's private disk;
	// zero means emio.DefaultConfig().
	Machine emio.Config
	// Epsilon is the query/update trade-off parameter: the Theorem 4
	// exponent of the dynamic top-open structures and the Theorem 6
	// exponent of the per-shard 4-sided structures; zero means 0.5.
	Epsilon float64
	// Shards is the number of x-range partitions K; zero or one means a
	// single shard (no partitioning).
	Shards int
	// Workers bounds the number of per-shard tasks running
	// concurrently; zero means Shards.
	Workers int
	// Dynamic selects updatable per-shard structures (dyntop, Theorem
	// 4). A static engine uses topopen (Theorem 1) and rejects Insert
	// and Delete. The per-shard 4-sided structures exist in both modes
	// (Theorem 6 has no static variant); a static engine still answers
	// every query shape, it only refuses updates.
	Dynamic bool
	// TopOnly skips the per-shard Theorem 6 structures: the engine then
	// serves only the top-open family. This is the configuration of the
	// mirrored fast-path engine (engine.MirrorBackend over a sharded
	// backend): the mirror only ever receives reflected top-open
	// rectangles, so carrying 4-sided structures in the mirrored frame
	// would double its space for nothing.
	TopOnly bool
	// Rebalance enables online shard rebalancing: per-shard load
	// counters feed a policy that splits a hot shard's x-range in two or
	// merges two cold neighbors, rebuilding the affected structures off
	// to the side and swapping them in under a brief exclusive topology
	// lock (see rebalance.go for the transition protocol). Requires
	// Dynamic — a transition is a rebuild, and only dynamic engines keep
	// the per-shard point registry a rebuild reads.
	Rebalance bool
	// MaxSkew is the rebalance trigger: a shard whose load exceeds
	// MaxSkew × the mean per-shard load is split (and an adjacent pair
	// jointly colder than mean/MaxSkew is merged). Zero means 2.0;
	// values below 1 are an error.
	MaxSkew float64
	// MinShardPoints refuses splits that would leave a child below this
	// population; zero means 32.
	MinShardPoints int
	// MaxShards caps the shard count growth from splits; zero means
	// 4 × Shards.
	MaxShards int
	// RebalanceEvery is the policy check cadence in applied updates;
	// zero means 128.
	RebalanceEvery int
}

// Counters are the engine-level operation totals, aggregated atomically
// across all queries and updates.
type Counters struct {
	// Queries counts queries of every shape (TopOpen and FourSided).
	Queries uint64
	// Updates counts applied updates: Inserts (batch inserts count one
	// per point) and Deletes of present points. A Delete miss is not
	// counted.
	Updates uint64
	// Points counts skyline points reported by queries.
	Points uint64
}

// topIndex is the query interface both per-shard structures satisfy.
type topIndex interface {
	Query(x1, x2, beta geom.Coord) []geom.Point
}

// shard is one x-range partition. mu serializes every operation against
// the shard's structures and disk.
type shard struct {
	mu   sync.Mutex
	disk *emio.Disk
	top  topIndex
	dyn  *dyntop.Tree // non-nil iff the engine is dynamic
	four *foursided.Index
	// pts enumerates the shard's live points (rebalancing engines only):
	// the structures themselves cannot enumerate, and a split/merge
	// rebuild needs the exact point set. Guarded by mu.
	pts map[geom.Point]struct{}
	// gen counts mutations, guarded by mu: a rebuild captured at
	// generation g is only swapped in if the generation is still g.
	gen uint64
	// load counts operations routed to this shard since the last
	// rebalance decision; the policy reads the skew off these.
	load atomic.Uint64
}

// Engine is a sharded concurrent range skyline engine serving every
// Figure-2 query shape. It implements the engine.Backend interface.
type Engine struct {
	opts Options
	// topoMu guards shards and cuts as a pair. Every operation holds it
	// shared for its full duration (so the shard pointers it routed to
	// cannot be retired mid-flight); a rebalance transition builds new
	// shards unlocked and takes it exclusively only for the final swap.
	topoMu sync.RWMutex
	shards []*shard
	// cuts[i] is the largest x owned by shard i (len K-1): shard i
	// covers (cuts[i-1], cuts[i]], the last shard covers (cuts[K-2], ∞).
	cuts []geom.Coord
	// retired holds shards swapped out by transitions: their disks stay
	// pinned by open snapshots and their I/O history stays in Stats.
	// Appended under topoMu held exclusively; never mutated again.
	retired []*shard
	sem     chan struct{}

	// rebalMu serializes transitions (policy-triggered and forced) and
	// guards listener. Lock order: rebalMu before topoMu; shard.mu only
	// innermost. maybeRebalance uses TryLock, so update paths never
	// block on an in-flight transition.
	rebalMu  sync.Mutex
	listener func([]geom.Coord)
	splits   atomic.Uint64
	merges   atomic.Uint64
	rebalOps atomic.Uint64

	n atomic.Int64

	queries atomic.Uint64
	updates atomic.Uint64
	points  atomic.Uint64
}

// New builds an engine over pts, which must be strictly sorted by x (use
// geom.SortByX; general position is the caller's contract, as for the
// underlying structures). The points are split into K contiguous x-ranges
// of near-equal population.
func New(opts Options, pts []geom.Point) (*Engine, error) {
	if opts.Machine.B == 0 {
		opts.Machine = emio.DefaultConfig()
	}
	if opts.Epsilon == 0 {
		opts.Epsilon = 0.5
	}
	if opts.Epsilon < 0 || opts.Epsilon > 1 {
		return nil, fmt.Errorf("shard: epsilon %v outside [0,1]", opts.Epsilon)
	}
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	if opts.Workers < 1 {
		opts.Workers = opts.Shards
	}
	if opts.Rebalance {
		if !opts.Dynamic {
			return nil, fmt.Errorf("shard: Rebalance requires Dynamic")
		}
		if opts.MaxSkew == 0 {
			opts.MaxSkew = 2.0
		}
		if opts.MaxSkew < 1 {
			return nil, fmt.Errorf("shard: MaxSkew %v below 1", opts.MaxSkew)
		}
		if opts.MinShardPoints == 0 {
			opts.MinShardPoints = 32
		}
		if opts.MaxShards == 0 {
			opts.MaxShards = 4 * opts.Shards
		}
		if opts.RebalanceEvery == 0 {
			opts.RebalanceEvery = 128
		}
	}
	for i := 1; i < len(pts); i++ {
		if pts[i-1].X >= pts[i].X {
			return nil, fmt.Errorf("shard: input not strictly sorted by x at index %d", i)
		}
	}
	k := opts.Shards
	e := &Engine{
		opts: opts,
		sem:  make(chan struct{}, opts.Workers),
	}
	e.n.Store(int64(len(pts)))
	n := len(pts)
	prevCut := geom.Coord(math.MinInt64)
	for i := 0; i < k; i++ {
		lo, hi := i*n/k, (i+1)*n/k
		chunk := pts[lo:hi]
		s := &shard{disk: emio.NewConcurrentDisk(opts.Machine)}
		if opts.Dynamic {
			s.dyn = dyntop.BuildSABE(s.disk, opts.Epsilon, chunk)
			s.top = s.dyn
		} else {
			f := extsort.FromSlice(s.disk, 2, chunk)
			ix := topopen.Build(s.disk, f)
			f.Free()
			s.top = ix
		}
		if !opts.TopOnly {
			s.four = foursided.Build(s.disk, opts.Epsilon, chunk)
		}
		if opts.Rebalance {
			s.pts = make(map[geom.Point]struct{}, len(chunk))
			for _, p := range chunk {
				s.pts[p] = struct{}{}
			}
		}
		e.shards = append(e.shards, s)
		if i < k-1 {
			cut := prevCut
			if hi > lo {
				cut = chunk[len(chunk)-1].X
			}
			e.cuts = append(e.cuts, cut)
			prevCut = cut
		}
	}
	return e, nil
}

// Len returns the number of indexed points.
func (e *Engine) Len() int { return int(e.n.Load()) }

// NumShards returns the partition count K (which rebalancing engines
// change over time).
func (e *Engine) NumShards() int {
	e.topoMu.RLock()
	defer e.topoMu.RUnlock()
	return len(e.shards)
}

// Dynamic reports whether the engine accepts updates.
func (e *Engine) Dynamic() bool { return e.opts.Dynamic }

// Counters returns the engine-level operation totals. Safe to call while
// operations are in flight.
func (e *Engine) Counters() Counters {
	return Counters{
		Queries: e.queries.Load(),
		Updates: e.updates.Load(),
		Points:  e.points.Load(),
	}
}

// Stats aggregates the I/O counters of every shard disk, including
// shards retired by rebalance transitions, so the totals stay monotonic
// across topology changes. Safe to call while operations are in flight
// (the counters are atomic).
func (e *Engine) Stats() emio.Stats {
	e.topoMu.RLock()
	defer e.topoMu.RUnlock()
	var total emio.Stats
	for _, s := range e.shards {
		total = total.Add(s.disk.Stats())
	}
	for _, s := range e.retired {
		total = total.Add(s.disk.Stats())
	}
	return total
}

// ResetStats zeroes every shard disk's I/O counters (retired shards
// included, so a reset truly re-baselines Stats).
func (e *Engine) ResetStats() {
	e.topoMu.RLock()
	defer e.topoMu.RUnlock()
	for _, s := range e.shards {
		s.disk.ResetStats()
	}
	for _, s := range e.retired {
		s.disk.ResetStats()
	}
}

// ShardDisk exposes shard i's disk for per-shard measurements.
func (e *Engine) ShardDisk(i int) *emio.Disk {
	e.topoMu.RLock()
	defer e.topoMu.RUnlock()
	return e.shards[i].disk
}

// Quiesce blocks until every in-flight per-shard task has completed: it
// fills the worker semaphore (once all slots are held, no pooled
// goroutine can still be running) and takes each shard's mutex once (no
// caller-inlined task can be mid-operation), then releases everything.
// It does not stop NEW operations — callers wanting a true shutdown
// (core.DB.Close) stop issuing work first, then Quiesce guarantees the
// engine's goroutines and shard structures are at rest.
func (e *Engine) Quiesce() {
	for i := 0; i < cap(e.sem); i++ {
		e.sem <- struct{}{}
	}
	e.topoMu.RLock()
	for _, s := range e.shards {
		s.mu.Lock()
		s.mu.Unlock() //nolint:staticcheck // empty critical section is the point: a barrier
	}
	e.topoMu.RUnlock()
	for i := 0; i < cap(e.sem); i++ {
		<-e.sem
	}
}

// Cuts returns the x-coordinates partitioning the shards: cut i is the
// largest x owned by shard i, so shard i covers (cuts[i-1], cuts[i]]
// and the last shard covers (cuts[K-2], +∞). The cuts are fixed at
// build time unless Options.Rebalance moves them; SetCutsListener
// delivers every change. Cuts implements the engine.Partitioned
// interface, which is how a caching backend wrapping this engine learns
// to evict only the entries a write's shard can affect.
func (e *Engine) Cuts() []geom.Coord {
	e.topoMu.RLock()
	defer e.topoMu.RUnlock()
	return append([]geom.Coord(nil), e.cuts...)
}

// shardFor returns the index of the shard owning x.
func (e *Engine) shardFor(x geom.Coord) int {
	return sort.Search(len(e.cuts), func(i int) bool { return x <= e.cuts[i] })
}

// submit runs fn through the worker pool: on a free worker slot it runs
// in a new goroutine, otherwise the caller runs it inline (which bounds
// both goroutine count and queueing without risking deadlock).
func (e *Engine) submit(wg *sync.WaitGroup, fn func()) {
	wg.Add(1)
	select {
	case e.sem <- struct{}{}:
		go func() {
			defer func() { <-e.sem; wg.Done() }()
			fn()
		}()
	default:
		fn()
		wg.Done()
	}
}

// partsPool recycles the per-shard fan-out buffers: every query needs a
// [][]Point with one slot per overlapped shard, and allocating it fresh
// per query dominated the merge's allocation profile (see
// BenchmarkMergeAlloc). Entries are nilled before a buffer is returned
// so pooled buffers never pin per-shard answers.
var partsPool = sync.Pool{New: func() any { return new([][]geom.Point) }}

// fanOut runs query against every shard overlapping [x1, x2] through
// the worker pool and merges the per-shard skylines right-to-left. Both
// query families share it: shards are x-disjoint and each per-shard
// answer is a range skyline, so the max-y survivor merge is exact.
func (e *Engine) fanOut(x1, x2 geom.Coord, query func(*shard) []geom.Point) []geom.Point {
	e.queries.Add(1)
	if x1 > x2 {
		return nil
	}
	e.topoMu.RLock()
	defer e.topoMu.RUnlock()
	lo, hi := e.shardFor(x1), e.shardFor(x2)
	pp := partsPool.Get().(*[][]geom.Point)
	parts := *pp
	if need := hi - lo + 1; cap(parts) < need {
		parts = make([][]geom.Point, need)
	} else {
		parts = parts[:need]
	}
	var wg sync.WaitGroup
	for i := lo; i <= hi; i++ {
		s, slot := e.shards[i], i-lo
		s.load.Add(1)
		e.submit(&wg, func() {
			s.mu.Lock()
			parts[slot] = query(s)
			s.mu.Unlock()
		})
	}
	wg.Wait()
	out := mergeSkylines(parts)
	for i := range parts {
		parts[i] = nil
	}
	*pp = parts[:0]
	partsPool.Put(pp)
	e.points.Add(uint64(len(out)))
	return out
}

// TopOpen reports the range skyline of [x1,x2] × [beta, ∞) in
// increasing-x order, fanning the query out to the overlapping shards and
// merging their answers. The result is identical to a single-disk
// structure over the whole point set.
func (e *Engine) TopOpen(x1, x2, beta geom.Coord) []geom.Point {
	return e.fanOut(x1, x2, func(s *shard) []geom.Point {
		return s.top.Query(x1, x2, beta)
	})
}

// FourSided reports the range skyline of an arbitrary rectangle (the
// 4-sided family: 4-sided, left-open, right-open, bottom-open,
// anti-dominance) from the per-shard Theorem 6 structures, merged
// exactly like TopOpen. The result is identical to a single-disk
// foursided.Index over the whole point set. A TopOnly engine has no
// Theorem 6 structures and panics — its owner (the mirror backend)
// routes only reflected top-open rectangles here.
func (e *Engine) FourSided(q geom.Rect) []geom.Point {
	if e.opts.TopOnly {
		panic("shard: TopOnly engine serves only the top-open family")
	}
	if q.Y1 > q.Y2 {
		e.queries.Add(1)
		return nil
	}
	return e.fanOut(q.X1, q.X2, func(s *shard) []geom.Point {
		return s.four.Query(q)
	})
}

// RangeSkyline answers any Figure-2 rectangle, routing the top-open
// family to the per-shard top-open structures and everything else to the
// per-shard 4-sided structures.
func (e *Engine) RangeSkyline(q geom.Rect) []geom.Point {
	if q.IsTopOpen() {
		return e.TopOpen(q.X1, q.X2, q.Y1)
	}
	return e.FourSided(q)
}

// Skyline reports the skyline of the whole point set.
func (e *Engine) Skyline() []geom.Point {
	return e.TopOpen(geom.NegInf, geom.PosInf, geom.NegInf)
}

// mergeSkylines concatenates per-shard range skylines (ordered by shard,
// i.e. by x) after deleting cross-shard dominated points: scanning
// right-to-left, a point survives iff its y exceeds the best y of every
// shard to its right. Within a shard the skyline is decreasing in y, so
// the survivors of each shard form a prefix. When a single shard
// contributes every survivor — the common case for narrow queries — its
// buffer is handed through without copying (it is freshly allocated by
// the per-shard structure and owned by nobody else).
func mergeSkylines(parts [][]geom.Point) []geom.Point {
	best := geom.Coord(math.MinInt64)
	total := 0
	sole := -1 // index of the only contributing shard, -1 if several
	for i := len(parts) - 1; i >= 0; i-- {
		sky := parts[i]
		cut := sort.Search(len(sky), func(j int) bool { return sky[j].Y <= best })
		parts[i] = sky[:cut]
		if cut > 0 {
			if total == 0 {
				sole = i
			} else {
				sole = -1
			}
			total += cut
		}
		if len(sky) > 0 && sky[0].Y > best {
			best = sky[0].Y
		}
	}
	if total == 0 {
		return nil
	}
	if sole >= 0 {
		return parts[sole]
	}
	out := make([]geom.Point, 0, total)
	for _, sky := range parts {
		out = append(out, sky...)
	}
	return out
}

// insertLocked adds p to the shard's structures (the 4-sided one only
// when present — TopOnly engines carry none). Caller holds s.mu.
func (s *shard) insertLocked(p geom.Point) {
	s.dyn.Insert(p)
	if s.four != nil {
		s.four.Insert(p)
	}
	if s.pts != nil {
		s.pts[p] = struct{}{}
		s.gen++
	}
}

// deleteLocked removes p from both of the shard's structures,
// presence-check-first: the dyntop tree verifies presence before
// mutating, and the 4-sided structure is only touched after that
// confirmation, so a miss mutates nothing. The structures disagreeing is
// corruption; the bool is still true then — the top-open structure did
// remove the point — so callers keep their size accounting consistent.
// Caller holds s.mu.
func (s *shard) deleteLocked(p geom.Point) (bool, error) {
	if !s.dyn.Delete(p) {
		return false, nil
	}
	if s.four != nil && !s.four.Delete(p) {
		return true, fmt.Errorf("shard: structures disagree on presence of %v", p)
	}
	if s.pts != nil {
		delete(s.pts, p)
		s.gen++
	}
	return true, nil
}

// Insert adds a point to a dynamic engine, routing it to the shard owning
// its x-range. The point must preserve general position.
func (e *Engine) Insert(p geom.Point) error {
	if !e.opts.Dynamic {
		return fmt.Errorf("shard: engine opened static; reopen with Options.Dynamic")
	}
	e.topoMu.RLock()
	s := e.shards[e.shardFor(p.X)]
	s.load.Add(1)
	s.mu.Lock()
	s.insertLocked(p)
	s.mu.Unlock()
	e.topoMu.RUnlock()
	e.n.Add(1)
	e.updates.Add(1)
	e.maybeRebalance(1)
	return nil
}

// Delete removes a point from a dynamic engine, reporting presence.
func (e *Engine) Delete(p geom.Point) (bool, error) {
	if !e.opts.Dynamic {
		return false, fmt.Errorf("shard: engine opened static; reopen with Options.Dynamic")
	}
	e.topoMu.RLock()
	s := e.shards[e.shardFor(p.X)]
	s.load.Add(1)
	s.mu.Lock()
	ok, err := s.deleteLocked(p)
	s.mu.Unlock()
	e.topoMu.RUnlock()
	if ok {
		e.n.Add(-1)
		e.updates.Add(1)
		e.maybeRebalance(1)
	}
	return ok, err
}

// groupByShard splits pts by destination shard.
func (e *Engine) groupByShard(pts []geom.Point) map[int][]geom.Point {
	groups := make(map[int][]geom.Point)
	for _, p := range pts {
		i := e.shardFor(p.X)
		groups[i] = append(groups[i], p)
	}
	return groups
}

// BatchInsert adds many points at once: they are grouped by destination
// shard and each shard's group is applied as one task through the worker
// pool, so disjoint shards load in parallel and each shard's lock is
// taken once per batch instead of once per point.
func (e *Engine) BatchInsert(pts []geom.Point) error {
	if !e.opts.Dynamic {
		return fmt.Errorf("shard: engine opened static; reopen with Options.Dynamic")
	}
	var wg sync.WaitGroup
	e.topoMu.RLock()
	for i, group := range e.groupByShard(pts) {
		s, group := e.shards[i], group
		s.load.Add(uint64(len(group)))
		e.submit(&wg, func() {
			s.mu.Lock()
			for _, p := range group {
				s.insertLocked(p)
			}
			s.mu.Unlock()
		})
	}
	wg.Wait()
	e.topoMu.RUnlock()
	e.n.Add(int64(len(pts)))
	e.updates.Add(uint64(len(pts)))
	e.maybeRebalance(len(pts))
	return nil
}

// BatchDelete removes many points at once with the same per-shard
// grouping as BatchInsert: one lock acquisition per shard per batch. It
// returns how many of the points were present and removed (misses are
// skipped, not errors). The first structural-corruption error, if any,
// is returned after all groups finish.
func (e *Engine) BatchDelete(pts []geom.Point) (int, error) {
	removed, err := e.BatchDeleteRemoved(pts)
	return len(removed), err
}

// BatchDeleteRemoved is BatchDelete reporting the removed points
// themselves, not just their count. The planner uses it for its
// presence-check-first batch fan-out: because each shard serializes its
// deletes, concurrent overlapping batches resolve every contended point
// to exactly one caller, and the reported subsets are disjoint across
// those callers.
func (e *Engine) BatchDeleteRemoved(pts []geom.Point) ([]geom.Point, error) {
	if !e.opts.Dynamic {
		return nil, fmt.Errorf("shard: engine opened static; reopen with Options.Dynamic")
	}
	e.topoMu.RLock()
	groups := e.groupByShard(pts)
	removedGroups := make([][]geom.Point, len(groups))
	var errMu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	next := 0
	for i, group := range groups {
		s, group := e.shards[i], group
		s.load.Add(uint64(len(group)))
		slot := &removedGroups[next]
		next++
		e.submit(&wg, func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			for _, p := range group {
				ok, err := s.deleteLocked(p)
				if ok {
					*slot = append(*slot, p)
				}
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			}
		})
	}
	wg.Wait()
	e.topoMu.RUnlock()
	var removed []geom.Point
	for _, g := range removedGroups {
		removed = append(removed, g...)
	}
	e.n.Add(-int64(len(removed)))
	e.updates.Add(uint64(len(removed)))
	e.maybeRebalance(len(removed))
	return removed, firstErr
}
