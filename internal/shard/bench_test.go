package shard

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// BenchmarkMergeAlloc measures the allocation profile of the query hot
// path: fan-out over every shard plus the right-to-left merge. Run with
// -benchmem; the per-shard fan-out buffers come from partsPool and
// single-shard answers are handed through uncopied, so allocs/op stays
// flat as shard count grows. (Before pooling: one [][]Point per query
// plus one copy of every single-shard answer.)
func BenchmarkMergeAlloc(b *testing.B) {
	const n = 1 << 12
	span := geom.Coord(n * 16)
	pts := geom.GenUniform(n, span, 42)
	geom.SortByX(pts)
	for _, shards := range []int{4, 8} {
		eng, err := New(Options{Machine: testCfg, Shards: shards, Workers: 1}, pts)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(map[int]string{4: "shards=4", 8: "shards=8"}[shards], func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Alternate wide (every shard) and narrow (one shard)
				// queries: the narrow case exercises the no-copy
				// single-contributor path, the wide one the pooled
				// multi-shard merge.
				if i%2 == 0 {
					eng.TopOpen(geom.NegInf, geom.PosInf, rng.Int63n(span))
				} else {
					x1 := rng.Int63n(span)
					eng.TopOpen(x1, x1+span/geom.Coord(4*shards), rng.Int63n(span))
				}
			}
		})
	}
}

// BenchmarkMirrorShardTopOpen pins the mirrored sharded configuration
// (TopOnly) that engine.MirrorBackend runs on: top-open queries over
// the reflected frame, no Theorem 6 structures built.
func BenchmarkMirrorShardTopOpen(b *testing.B) {
	const n = 1 << 12
	span := geom.Coord(n * 16)
	pts := geom.GenUniform(n, span, 43)
	geom.SortByX(pts)
	eng, err := New(Options{Machine: testCfg, Shards: 8, Workers: 4, TopOnly: true}, pts)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x1 := rng.Int63n(span)
		eng.TopOpen(x1, x1+span/8, rng.Int63n(span))
	}
}
