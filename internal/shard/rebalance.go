package shard

import (
	"fmt"

	"repro/internal/dyntop"
	"repro/internal/emio"
	"repro/internal/foursided"
	"repro/internal/geom"
)

// Online rebalancing: transition protocol.
//
// A transition (split or merge) replaces one or two shards with freshly
// built ones covering the same x-range under different cuts. Because the
// shards are x-disjoint, the right-to-left merge argument that makes
// sharding answer-identical to a single structure is indifferent to
// WHERE the cuts sit — so a transition can never change an answer, only
// the work distribution. The protocol:
//
//  1. Capture: under topoMu.RLock + the shard's own mutex, copy the
//     shard's point registry and generation counter, then release both.
//  2. Build: construct the replacement shard structures (private disk,
//     dyntop + foursided) off to the side, with no locks held. Ordinary
//     traffic proceeds concurrently.
//  3. Swap: take topoMu exclusively — every in-flight operation holds it
//     shared for its full duration, so acquisition alone quiesces the
//     engine — and validate the generation. If unchanged, splice the
//     replacements into shards/cuts and retire the originals. If a
//     writer moved the generation, retry from 1; after a few failed
//     rounds the final attempt rebuilds while still holding the
//     exclusive lock, which blocks traffic for one rebuild but cannot
//     go stale.
//
// Retired shards are never mutated again: any open Snapshot pinned their
// structures and disk retentions, and those keep serving unchanged.
// rebalMu serializes transitions end to end, so the cuts listener
// observes every topology in order.

// RebalanceCounters reports the engine's rebalancing activity.
type RebalanceCounters struct {
	// Splits and Merges count completed transitions.
	Splits uint64
	Merges uint64
	// Shards is the current partition count.
	Shards int
	// Skew is the current max/mean per-shard load ratio accumulated
	// since the last transition (0 while idle).
	Skew float64
}

// RebalanceCounters returns the current rebalancing totals. Safe to call
// while operations and transitions are in flight.
func (e *Engine) RebalanceCounters() RebalanceCounters {
	e.topoMu.RLock()
	k := len(e.shards)
	var total, maxLoad uint64
	for _, s := range e.shards {
		l := s.load.Load()
		total += l
		if l > maxLoad {
			maxLoad = l
		}
	}
	e.topoMu.RUnlock()
	var skew float64
	if total > 0 {
		skew = float64(maxLoad) * float64(k) / float64(total)
	}
	return RebalanceCounters{
		Splits: e.splits.Load(),
		Merges: e.merges.Load(),
		Shards: k,
		Skew:   skew,
	}
}

// SetCutsListener registers fn to be called with the new cut set after
// every completed transition. Calls are serialized and delivered in
// transition order, with no engine locks held — fn may call back into
// the engine. This is how core propagates live cut changes to the cache
// tags and async-queue slabs (engine.Partitioned consumers).
func (e *Engine) SetCutsListener(fn func([]geom.Coord)) {
	e.rebalMu.Lock()
	e.listener = fn
	e.rebalMu.Unlock()
}

// ForceSplit splits shard i at its median x, regardless of load. i < 0
// selects the most populous shard. Used by tests and operational tooling;
// the load policy calls the same transition.
func (e *Engine) ForceSplit(i int) error {
	if !e.opts.Rebalance {
		return fmt.Errorf("shard: rebalancing disabled; open with Options.Rebalance")
	}
	e.rebalMu.Lock()
	defer e.rebalMu.Unlock()
	if i < 0 {
		i = e.pickHottestBySize()
	}
	return e.split(i, 2)
}

// ForceMerge merges shards i and i+1, regardless of load. i < 0 selects
// the least populous adjacent pair.
func (e *Engine) ForceMerge(i int) error {
	if !e.opts.Rebalance {
		return fmt.Errorf("shard: rebalancing disabled; open with Options.Rebalance")
	}
	e.rebalMu.Lock()
	defer e.rebalMu.Unlock()
	if i < 0 {
		i = e.pickColdestBySize()
	}
	return e.merge(i)
}

func (e *Engine) pickHottestBySize() int {
	e.topoMu.RLock()
	defer e.topoMu.RUnlock()
	best, size := 0, -1
	for j, s := range e.shards {
		s.mu.Lock()
		n := len(s.pts)
		s.mu.Unlock()
		if n > size {
			best, size = j, n
		}
	}
	return best
}

func (e *Engine) pickColdestBySize() int {
	e.topoMu.RLock()
	defer e.topoMu.RUnlock()
	best, size := 0, -1
	for j := 0; j+1 < len(e.shards); j++ {
		a, b := e.shards[j], e.shards[j+1]
		a.mu.Lock()
		n := len(a.pts)
		a.mu.Unlock()
		b.mu.Lock()
		n += len(b.pts)
		b.mu.Unlock()
		if size < 0 || n < size {
			best, size = j, n
		}
	}
	return best
}

// maybeRebalance runs the load policy every RebalanceEvery applied
// updates. It must be called with no engine locks held (a transition
// takes topoMu exclusively). TryLock keeps update latency flat: if a
// transition is already running, the check is simply skipped.
func (e *Engine) maybeRebalance(n int) {
	if !e.opts.Rebalance || n <= 0 {
		return
	}
	every := uint64(e.opts.RebalanceEvery)
	now := e.rebalOps.Add(uint64(n))
	if now/every == (now-uint64(n))/every {
		return
	}
	if !e.rebalMu.TryLock() {
		return
	}
	defer e.rebalMu.Unlock()
	e.rebalanceOnce()
}

// rebalanceOnce makes at most one policy decision: split the hottest
// shard if its load exceeds MaxSkew × mean, else merge the coldest
// adjacent pair if their combined load is far under the mean. Caller
// holds rebalMu.
//
// Two guards keep the policy stable. First, no decision is made until
// the window since the last transition holds at least 8 ops per shard
// (and RebalanceEvery overall): 128 ops spread over 32 shards is
// Poisson noise, not a load signal, and acting on it makes the
// topology oscillate. Loads are only zeroed at transitions, so a
// too-small window simply keeps accumulating until it is decisive.
// Second, a merge needs the pair's combined load under mean/(2 ×
// MaxSkew) — twice as cold as the split trigger is hot — so a shard
// the policy just split cannot flap back into a merge on sampling
// jitter.
func (e *Engine) rebalanceOnce() {
	e.topoMu.RLock()
	k := len(e.shards)
	loads := make([]uint64, k)
	sizes := make([]int, k)
	var total uint64
	for i, s := range e.shards {
		loads[i] = s.load.Load()
		total += loads[i]
		s.mu.Lock()
		sizes[i] = len(s.pts)
		s.mu.Unlock()
	}
	e.topoMu.RUnlock()
	if total < uint64(max(e.opts.RebalanceEvery, 8*k)) {
		return // not enough signal since the last transition
	}
	mean := float64(total) / float64(k)
	hot, hottest := -1, uint64(0)
	for i, l := range loads {
		if l > hottest && sizes[i] >= 2*e.opts.MinShardPoints {
			hot, hottest = i, l
		}
	}
	if hot >= 0 && float64(hottest) > e.opts.MaxSkew*mean && k < e.opts.MaxShards {
		_ = e.split(hot, 2*e.opts.MinShardPoints) //errlint:ok — policy transitions are best-effort
		return
	}
	if k < 2 {
		return
	}
	cold, coldest := -1, uint64(0)
	for i := 0; i+1 < k; i++ {
		c := loads[i] + loads[i+1]
		if cold < 0 || c < coldest {
			cold, coldest = i, c
		}
	}
	if cold >= 0 && float64(coldest) < mean/(2*e.opts.MaxSkew) {
		_ = e.merge(cold) //errlint:ok — policy transitions are best-effort
	}
}

// buildShard constructs a fresh dynamic shard over chunk, which must be
// sorted by x.
func (e *Engine) buildShard(chunk []geom.Point) *shard {
	s := &shard{disk: emio.NewConcurrentDisk(e.opts.Machine)}
	s.dyn = dyntop.BuildSABE(s.disk, e.opts.Epsilon, chunk)
	s.top = s.dyn
	if !e.opts.TopOnly {
		s.four = foursided.Build(s.disk, e.opts.Epsilon, chunk)
	}
	s.pts = make(map[geom.Point]struct{}, len(chunk))
	for _, p := range chunk {
		s.pts[p] = struct{}{}
	}
	return s
}

// split replaces shard i with two shards cut at its median x. Caller
// holds rebalMu. minPts is the population floor below which the split
// is refused (each child gets at least minPts/2 points).
func (e *Engine) split(i, minPts int) error {
	if minPts < 2 {
		minPts = 2
	}
	const maxRetries = 3
	for attempt := 0; ; attempt++ {
		e.topoMu.RLock()
		if i < 0 || i >= len(e.shards) {
			e.topoMu.RUnlock()
			return fmt.Errorf("shard: split index %d out of range", i)
		}
		s := e.shards[i]
		s.mu.Lock()
		pts := make([]geom.Point, 0, len(s.pts))
		for p := range s.pts {
			pts = append(pts, p)
		}
		gen := s.gen
		s.mu.Unlock()
		e.topoMu.RUnlock()
		if len(pts) < minPts {
			return fmt.Errorf("shard: shard %d too small to split (%d points, need %d)", i, len(pts), minPts)
		}
		geom.SortByX(pts)
		mid := len(pts) / 2
		left, right := e.buildShard(pts[:mid]), e.buildShard(pts[mid:])
		cut := pts[mid-1].X

		e.topoMu.Lock()
		s.mu.Lock()
		stale := s.gen != gen
		if stale && attempt >= maxRetries {
			// Final attempt: recapture and rebuild while holding the
			// topology lock exclusively — no writer can move the
			// generation now, at the cost of stalling the engine for
			// one rebuild.
			pts = pts[:0]
			for p := range s.pts {
				pts = append(pts, p)
			}
			s.mu.Unlock()
			if len(pts) < minPts {
				e.topoMu.Unlock()
				return fmt.Errorf("shard: shard %d too small to split (%d points, need %d)", i, len(pts), minPts)
			}
			geom.SortByX(pts)
			mid = len(pts) / 2
			left, right = e.buildShard(pts[:mid]), e.buildShard(pts[mid:])
			cut = pts[mid-1].X
			stale = false
		} else {
			s.mu.Unlock()
		}
		if stale {
			e.topoMu.Unlock()
			continue
		}
		shards := make([]*shard, 0, len(e.shards)+1)
		shards = append(shards, e.shards[:i]...)
		shards = append(shards, left, right)
		shards = append(shards, e.shards[i+1:]...)
		cuts := make([]geom.Coord, 0, len(e.cuts)+1)
		cuts = append(cuts, e.cuts[:i]...)
		cuts = append(cuts, cut)
		cuts = append(cuts, e.cuts[i:]...)
		e.finishTransition(shards, cuts, &e.splits, s)
		return nil
	}
}

// merge replaces shards i and i+1 with one shard covering both x-ranges.
// Caller holds rebalMu.
func (e *Engine) merge(i int) error {
	const maxRetries = 3
	for attempt := 0; ; attempt++ {
		e.topoMu.RLock()
		if i < 0 || i+1 >= len(e.shards) {
			e.topoMu.RUnlock()
			return fmt.Errorf("shard: merge index %d out of range", i)
		}
		a, b := e.shards[i], e.shards[i+1]
		a.mu.Lock()
		b.mu.Lock()
		pts := make([]geom.Point, 0, len(a.pts)+len(b.pts))
		for p := range a.pts {
			pts = append(pts, p)
		}
		for p := range b.pts {
			pts = append(pts, p)
		}
		genA, genB := a.gen, b.gen
		b.mu.Unlock()
		a.mu.Unlock()
		e.topoMu.RUnlock()
		geom.SortByX(pts)
		merged := e.buildShard(pts)

		e.topoMu.Lock()
		a.mu.Lock()
		b.mu.Lock()
		stale := a.gen != genA || b.gen != genB
		if stale && attempt >= maxRetries {
			pts = pts[:0]
			for p := range a.pts {
				pts = append(pts, p)
			}
			for p := range b.pts {
				pts = append(pts, p)
			}
			b.mu.Unlock()
			a.mu.Unlock()
			geom.SortByX(pts)
			merged = e.buildShard(pts)
			stale = false
		} else {
			b.mu.Unlock()
			a.mu.Unlock()
		}
		if stale {
			e.topoMu.Unlock()
			continue
		}
		shards := make([]*shard, 0, len(e.shards)-1)
		shards = append(shards, e.shards[:i]...)
		shards = append(shards, merged)
		shards = append(shards, e.shards[i+2:]...)
		cuts := append([]geom.Coord(nil), e.cuts[:i]...)
		cuts = append(cuts, e.cuts[i+1:]...)
		e.finishTransition(shards, cuts, &e.merges, a, b)
		return nil
	}
}

// finishTransition installs the new topology, retires the replaced
// shards, resets the load counters, and notifies the cuts listener.
// Caller holds rebalMu and topoMu exclusively; topoMu is released here
// so the listener runs lock-free.
func (e *Engine) finishTransition(shards []*shard, cuts []geom.Coord, counter interface{ Add(uint64) uint64 }, old ...*shard) {
	e.shards, e.cuts = shards, cuts
	e.retired = append(e.retired, old...)
	for _, sh := range shards {
		sh.load.Store(0)
	}
	newCuts := append([]geom.Coord(nil), cuts...)
	e.topoMu.Unlock()
	counter.Add(1)
	if e.listener != nil {
		e.listener(newCuts)
	}
}
