// Snapshot: the sharded engine's point-in-time read path. Pinning
// captures every shard's roots under the shard locks — held together
// just long enough for the O(n/B) host-pointer copies (zero simulated
// I/Os), which is what makes the pin brief without a global Quiesce:
// nothing waits for the worker pool, and in-flight queries only delay
// the capture by one per-shard operation. Before each shard's capture
// a retention is opened on its private disk, so every span the pinned
// roots reference survives until the snapshot is released, no matter
// how many leaf rewrites, splits or rebuilds the live shard performs
// meanwhile.
//
// Snapshot queries then fan out over the pinned roots through the SAME
// worker pool and right-to-left merge as live queries — but without
// taking any shard mutex, so they never serialize against writers:
// the pinned state is immutable and each shard's disk is guarded
// (emio.NewConcurrentDisk), which is all the concurrency control a
// read of immutable state needs.
package shard

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/emio"
	"repro/internal/engine"
	"repro/internal/geom"
)

// shardView is one shard's pinned state: the top-open root (a dyntop
// handle, or the static index itself — it never mutates), the 4-sided
// handle, and the retention holding the shard disk's retired spans.
type shardView struct {
	top  topIndex
	four fourIndex
	ret  *emio.Retention
}

// fourIndex is the 4-sided query interface both the live index and its
// pinned handle satisfy.
type fourIndex interface {
	Query(q geom.Rect) []geom.Point
}

// Snapshot is a pinned point-in-time view of the engine, answering
// every Figure-2 shape byte-identically to what the live engine would
// have answered at the pin point. It implements engine.View. Reads
// take no shard locks; Release drops the per-shard retentions (and is
// idempotent). Concurrent reads on one Snapshot are safe.
type Snapshot struct {
	e      *Engine
	shards []*shardView
	// cuts is the shard partition pinned at snapshot time: a rebalance
	// transition may move the live engine's cuts afterwards, but this
	// snapshot keeps routing over the topology its views were captured
	// from (the retired shards it pins are never mutated again).
	cuts     []geom.Coord
	n        int
	released atomic.Bool
}

// Snapshot pins the engine's current state. Under the shared topology
// lock the per-shard locks are all acquired (in shard order — every
// other locker takes at most one, so the order cannot deadlock), the
// roots and the cut set are captured by pointer copy with a retention
// opened per shard disk first, and the locks are released. It
// implements engine.Snapshottable.
func (e *Engine) Snapshot() (engine.View, error) {
	e.topoMu.RLock()
	for _, s := range e.shards {
		s.mu.Lock()
	}
	sv := &Snapshot{
		e:    e,
		cuts: append([]geom.Coord(nil), e.cuts...),
		n:    int(e.n.Load()),
	}
	for _, s := range e.shards {
		w := &shardView{ret: s.disk.RetainFrees()}
		if s.dyn != nil {
			w.top = s.dyn.Snapshot()
		} else {
			// Static index: immutable after build, the handle IS the
			// index (see topopen.Index.Snapshot); the retention alone
			// guards its spans.
			w.top = s.top
		}
		if s.four != nil {
			w.four = s.four.Snapshot()
		}
		sv.shards = append(sv.shards, w)
	}
	for _, s := range e.shards {
		s.mu.Unlock()
	}
	e.topoMu.RUnlock()
	return sv, nil
}

// Len returns the number of points in the pinned state.
func (sv *Snapshot) Len() int { return sv.n }

// Release drops every shard's retention, letting the spans the live
// engine retired during the snapshot's lifetime be reclaimed (the last
// holder reclaims them all — see emio's deferred frees). Idempotent.
func (sv *Snapshot) Release() {
	if sv.released.Swap(true) {
		return
	}
	for _, w := range sv.shards {
		w.ret.Release()
	}
}

// fanOut is the snapshot's lock-free counterpart of Engine.fanOut:
// same worker pool, same buffer recycling, same right-to-left merge —
// no shard mutexes, because the pinned state is immutable.
func (sv *Snapshot) fanOut(x1, x2 geom.Coord, query func(*shardView) []geom.Point) []geom.Point {
	if x1 > x2 {
		return nil
	}
	lo := sort.Search(len(sv.cuts), func(i int) bool { return x1 <= sv.cuts[i] })
	hi := sort.Search(len(sv.cuts), func(i int) bool { return x2 <= sv.cuts[i] })
	pp := partsPool.Get().(*[][]geom.Point)
	parts := *pp
	if need := hi - lo + 1; cap(parts) < need {
		parts = make([][]geom.Point, need)
	} else {
		parts = parts[:need]
	}
	var wg sync.WaitGroup
	for i := lo; i <= hi; i++ {
		w, slot := sv.shards[i], i-lo
		sv.e.submit(&wg, func() {
			parts[slot] = query(w)
		})
	}
	wg.Wait()
	out := mergeSkylines(parts)
	for i := range parts {
		parts[i] = nil
	}
	*pp = parts[:0]
	partsPool.Put(pp)
	return out
}

// TopOpen reports the pinned range skyline of [x1,x2] × [beta, ∞).
func (sv *Snapshot) TopOpen(x1, x2, beta geom.Coord) []geom.Point {
	return sv.fanOut(x1, x2, func(w *shardView) []geom.Point {
		return w.top.Query(x1, x2, beta)
	})
}

// FourSided reports the pinned range skyline of an arbitrary rectangle
// from the per-shard 4-sided handles.
func (sv *Snapshot) FourSided(q geom.Rect) []geom.Point {
	if sv.e.opts.TopOnly {
		panic("shard: TopOnly engine serves only the top-open family")
	}
	if q.Y1 > q.Y2 {
		return nil
	}
	return sv.fanOut(q.X1, q.X2, func(w *shardView) []geom.Point {
		return w.four.Query(q)
	})
}

// RangeSkyline answers any Figure-2 rectangle against the pinned
// state, routed exactly like the live engine.
func (sv *Snapshot) RangeSkyline(q geom.Rect) []geom.Point {
	if q.IsTopOpen() {
		return sv.TopOpen(q.X1, q.X2, q.Y1)
	}
	return sv.FourSided(q)
}

// DeferredBlocks sums the shard disks' deferred-free queues: blocks
// retired by the live engine but held for open snapshots. Zero at
// quiescence with every snapshot released — the no-leak invariant the
// race stress asserts.
func (e *Engine) DeferredBlocks() int {
	e.topoMu.RLock()
	defer e.topoMu.RUnlock()
	total := 0
	for _, s := range e.shards {
		total += s.disk.DeferredBlocks()
	}
	for _, s := range e.retired {
		total += s.disk.DeferredBlocks()
	}
	return total
}

// Retained sums the shard disks' open retentions (one per shard per
// unreleased snapshot), including shards retired by rebalance
// transitions — a snapshot pinned before a transition still holds
// retentions on the retired disks.
func (e *Engine) Retained() int {
	e.topoMu.RLock()
	defer e.topoMu.RUnlock()
	total := 0
	for _, s := range e.shards {
		total += s.disk.Retained()
	}
	for _, s := range e.retired {
		total += s.disk.Retained()
	}
	return total
}

var (
	_ engine.Snapshottable = (*Engine)(nil)
	_ engine.View          = (*Snapshot)(nil)
)
